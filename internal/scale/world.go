package scale

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/calendar"
	"repro/internal/clock"
	"repro/internal/controlplane"
	"repro/internal/core"
	"repro/internal/directory"
	"repro/internal/replication"
	"repro/internal/sim"
	"repro/internal/wal"
	"repro/internal/workload"
)

// Kernel timer cadences. Every per-device schedule is offset by the
// device index times epsilon so no two deadlines ever coincide: equal
// deadlines fire in After-call order, and the only window where After
// calls race (fleet boot, before Resume) would make that order — and
// therefore the whole run — nondeterministic.
const (
	worldStartHour = 8
	heartbeatBase  = 30 * time.Minute
	expireBase     = time.Hour
	leaseBase      = 10 * time.Minute
	pullBase       = 5 * time.Minute
	leaseCheckBase = 7 * time.Minute
	epsilon        = time.Microsecond
)

// hubCount is how many Zipf-head users the replicated topology backs
// with warm standbys.
const hubCount = 4

// world is one booted fleet.
type world struct {
	clk   *clock.FakeAuto
	net   *sim.Net
	dir   *directory.Client
	users []string
	nodes map[string]*core.Node
	cals  map[string]*calendar.Calendar

	followers []*replication.Follower
	dataRoot  string // removed at teardown when created by boot
	hubs      []string
}

// worldStart is the simulated workday's 08:00 (the paper's era).
func worldStart() time.Time {
	return time.Date(2003, 4, 21, worldStartHour, 0, 0, 0, time.UTC)
}

// boot builds the topology with the clock paused: directory plane,
// one calendar node per user (staggered heartbeat/expiry schedules),
// and — for Replicated — durable hub primaries with one warm standby
// each. Nothing advances until drive() calls Resume.
func boot(cfg Config) (*world, error) {
	ctx := context.Background()
	clk := clock.NewFakeAuto(worldStart())
	net := sim.New(sim.Config{Clock: clk, Seed: cfg.Seed})
	w := &world{
		clk:   clk,
		net:   net,
		users: workload.Users(cfg.Devices),
		nodes: make(map[string]*core.Node, cfg.Devices),
		cals:  make(map[string]*calendar.Calendar, cfg.Devices),
	}

	// Directory plane.
	dirAddr, cpAddr := "", ""
	switch cfg.Topology {
	case Single:
		srv := directory.NewServer(directory.WithClock(clk), directory.WithTTL(100*time.Hour))
		if _, err := net.Listen("dir", srv.Handler()); err != nil {
			w.teardown()
			return nil, err
		}
		dirAddr = "dir"
		w.dir = directory.NewClient(net, "dir")
	case Sharded4, Replicated:
		const shards = 4
		list := make([]controlplane.Shard, shards)
		servers := make([]*directory.Server, shards)
		for i := 0; i < shards; i++ {
			id := fmt.Sprintf("shard%d", i)
			srv := directory.NewServer(directory.WithClock(clk), directory.WithTTL(100*time.Hour), directory.WithShard(id))
			ln, err := net.Listen(fmt.Sprintf("dir%d", i), srv.Handler())
			if err != nil {
				w.teardown()
				return nil, err
			}
			list[i] = controlplane.Shard{ID: id, Addr: ln.Addr()}
			servers[i] = srv
		}
		ctl := controlplane.NewController(list)
		for _, srv := range servers {
			ctl.Subscribe(srv.SetTable)
		}
		if _, err := net.Listen("cp", ctl.Handler()); err != nil {
			w.teardown()
			return nil, err
		}
		cpAddr = "cp"
		w.dir = directory.NewShardedClient(net, "cp")
	default:
		w.teardown()
		return nil, fmt.Errorf("scale: unknown topology %q", cfg.Topology)
	}

	// Replicated: the Zipf head gets durable storage and a standby.
	if cfg.Topology == Replicated {
		w.hubs = append(w.hubs, w.users[:min(hubCount, cfg.Devices)]...)
		w.dataRoot = cfg.DataRoot
		if w.dataRoot == "" {
			root, err := os.MkdirTemp("", "sydscale-*")
			if err != nil {
				w.teardown()
				return nil, err
			}
			w.dataRoot = root
		}
	}

	// Fleet.
	commuters := commuterSet(cfg)
	for i, u := range w.users {
		eps := time.Duration(i) * epsilon
		nc := core.Config{
			User: u, Net: net, DirAddr: dirAddr, ControlPlaneAddr: cpAddr,
			Clock:          clk,
			HeartbeatEvery: heartbeatBase + eps,
			ExpireEvery:    expireBase + eps,
			DirCacheTTL:    10 * time.Minute,
			RouteCacheTTL:  10 * time.Minute,
		}
		if commuters[u] {
			nc.OfflineMode = true
			nc.OfflineQueueCap = 256
		}
		if w.isHub(u) {
			nc.DataDir = filepath.Join(w.dataRoot, "hub-"+u)
			nc.WALSync = wal.SyncNone
			nc.LeaseTTL = leaseBase + eps
			nc.Replicas = []string{"repl-" + u}
		}
		n, err := core.Start(ctx, nc)
		if err != nil {
			w.teardown()
			return nil, fmt.Errorf("scale: boot %s: %w", u, err)
		}
		c, err := calendar.New(ctx, n)
		if err != nil {
			w.teardown()
			return nil, fmt.Errorf("scale: calendar %s: %w", u, err)
		}
		if n.Offline != nil {
			c.EnableSync(n.Offline)
		}
		w.nodes[u] = n
		w.cals[u] = c
	}

	// Warm standbys for the hubs. The promotion path should stay cold —
	// hub leases are renewed on the same compressed clock — so an
	// actual promotion is reported as a harness error.
	for i, u := range w.hubs {
		eps := time.Duration(i) * epsilon
		u := u
		f, err := replication.StartFollower(ctx, replication.FollowerConfig{
			User: u, Net: net, Dir: w.dir,
			DataDir:         filepath.Join(w.dataRoot, "follower-"+u),
			ListenAddr:      "repl-" + u,
			LeaseTTL:        leaseBase + eps,
			Clock:           clk,
			PullEvery:       pullBase + eps,
			LeaseCheckEvery: leaseCheckBase + eps,
			Promote: func(context.Context, string) (string, error) {
				return "", fmt.Errorf("scale: unexpected promotion of %s (lease lost under a healthy primary)", u)
			},
		})
		if err != nil {
			w.teardown()
			return nil, fmt.Errorf("scale: follower %s: %w", u, err)
		}
		w.followers = append(w.followers, f)
	}
	return w, nil
}

func (w *world) isHub(u string) bool {
	for _, h := range w.hubs {
		if h == u {
			return true
		}
	}
	return false
}

// commuterSet marks the devices that run in offline mode for the flap
// scenario (every tenth device; empty for other scenarios).
func commuterSet(cfg Config) map[string]bool {
	out := map[string]bool{}
	if cfg.Scenario != "flap" {
		return out
	}
	users := workload.Users(cfg.Devices)
	for i, u := range users {
		if i%10 == 9 {
			out[u] = true
		}
	}
	return out
}

// teardown pauses virtual time and dismantles the fleet. It is safe on
// a partially built world.
func (w *world) teardown() {
	w.clk.Pause()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	for _, f := range w.followers {
		_ = f.Close()
	}
	for _, u := range w.users {
		if n := w.nodes[u]; n != nil {
			_ = n.Close(ctx)
		}
	}
	w.clk.Stop()
	if w.dataRoot != "" {
		_ = os.RemoveAll(w.dataRoot)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
