package scale

import (
	"math/rand"
	"sort"
	"time"

	"repro/internal/workload"
)

// Virtual service-time model. Operation latency is modeled, not
// measured: wall time on the build machine must never leak into the
// report or determinism dies. Each operation's service time is a fixed
// overhead plus a per-RPC cost scaled by the number of simulated
// requests the operation actually issued (so a 3-participant
// negotiation is modeled slower than a cache-hit lookup), plus seeded
// exponential noise.
const (
	opBaseService = 5 * time.Millisecond  // fixed per-op overhead
	opPerRPC      = 12 * time.Millisecond // one wireless-LAN round trip (§7)
	opNoiseMean   = 3 * time.Millisecond  // seeded exponential jitter
)

// opOutcome classifies one executed operation.
type opOutcome struct {
	// class is an Outcomes bucket: committed, tentative, aborted,
	// in_doubt, queued, or error. Empty for infrastructure steps
	// (partition cuts, reconnects) that are not operations.
	class string
	// drained counts offline-queue ops replayed by this step.
	drained int
	// measure includes the op in the latency/queue model.
	measure bool
}

// recorder runs the virtual-time queueing model: per-device busy
// periods, arrival-instant queue depths, and the latency sample set.
type recorder struct {
	rng       *rand.Rand
	busyUntil map[string]time.Duration
	pending   map[string][]time.Duration // per-device modeled finish times
	latencies []time.Duration
	outcomes  Outcomes
	depthSum  int64
	depthN    int64
	maxDepth  int
}

func newRecorder(seed int64) *recorder {
	return &recorder{
		rng:       rand.New(rand.NewSource(seed ^ 0x5ca1e)),
		busyUntil: make(map[string]time.Duration),
		pending:   make(map[string][]time.Duration),
	}
}

// record folds one operation into the model. at is the arrival offset
// from the run start, rpcs the number of simulated requests the op
// issued while executing.
func (r *recorder) record(dev string, at time.Duration, rpcs int64, out opOutcome) {
	r.outcomes.fold(out)
	if !out.measure {
		return
	}
	service := opBaseService + time.Duration(rpcs)*opPerRPC + workload.ExpDuration(r.rng, opNoiseMean)

	// Queue depth seen on arrival: ops at this device whose modeled
	// finish lies in the future.
	q := r.pending[dev][:0]
	for _, fin := range r.pending[dev] {
		if fin > at {
			q = append(q, fin)
		}
	}
	depth := len(q)
	if depth > r.maxDepth {
		r.maxDepth = depth
	}
	r.depthSum += int64(depth)
	r.depthN++

	// FIFO single-server per device: wait for the busy period, then run.
	start := at
	if bu := r.busyUntil[dev]; bu > start {
		start = bu
	}
	finish := start + service
	r.busyUntil[dev] = finish
	r.pending[dev] = append(q, finish)
	r.latencies = append(r.latencies, finish-at)
}

func (o *Outcomes) fold(out opOutcome) {
	o.Drained += out.drained
	switch out.class {
	case "committed":
		o.Committed++
	case "tentative":
		o.Tentative++
	case "aborted":
		o.Aborted++
	case "in_doubt":
		o.InDoubt++
	case "queued":
		o.Queued++
	case "error":
		o.Errors++
	}
}

// latencyStats computes exact percentiles over the sample set.
func (r *recorder) latencyStats() LatencyStats {
	n := len(r.latencies)
	if n == 0 {
		return LatencyStats{}
	}
	s := append([]time.Duration(nil), r.latencies...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	pct := func(p float64) float64 {
		idx := int(float64(n)*p/100+0.9999999) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= n {
			idx = n - 1
		}
		return ms(s[idx])
	}
	var sum time.Duration
	for _, d := range s {
		sum += d
	}
	return LatencyStats{
		P50MS:  pct(50),
		P95MS:  pct(95),
		P99MS:  pct(99),
		MaxMS:  ms(s[n-1]),
		MeanMS: ms(sum / time.Duration(n)),
	}
}

func (r *recorder) queueStats() QueueStats {
	qs := QueueStats{MaxDepth: r.maxDepth}
	if r.depthN > 0 {
		qs.MeanDepth = float64(r.depthSum) / float64(r.depthN)
	}
	return qs
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
