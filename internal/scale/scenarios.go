package scale

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/calendar"
	"repro/internal/links"
	"repro/internal/workload"
)

// timedOp is one scheduled step on the scenario timeline.
type timedOp struct {
	at  time.Duration // offset from the run start
	dev string        // device charged in the queueing model
	run func(ctx context.Context, w *world) opOutcome
}

// scenario is a prepared run: optional setup executed before virtual
// time starts, then a timeline the driver replays in order.
type scenario struct {
	name     string
	setup    func(ctx context.Context, w *world, cfg Config) error
	timeline []timedOp
}

// scenarioFor builds the scenario named by cfg. Timelines are fully
// materialized here from seeded generators — the world is only touched
// at run time — so the schedule itself is reproducible by construction.
func scenarioFor(cfg Config) (*scenario, error) {
	switch cfg.Scenario {
	case "storm":
		return stormScenario(cfg), nil
	case "fanout":
		return fanoutScenario(cfg), nil
	case "churn":
		return churnScenario(cfg), nil
	case "flap":
		return flapScenario(cfg), nil
	default:
		return nil, fmt.Errorf("scale: unknown scenario %q (have %v)", cfg.Scenario, Scenarios())
	}
}

// classifySchedule maps a ScheduleOrQueue result to an outcome bucket.
func classifySchedule(m *calendar.Meeting, queued bool, err error) opOutcome {
	switch {
	case err == nil && queued:
		return opOutcome{class: "queued", measure: true}
	case err == nil && m.Status == calendar.StatusConfirmed:
		return opOutcome{class: "committed", measure: true}
	case err == nil:
		return opOutcome{class: "tentative", measure: true}
	case links.IsInDoubt(err):
		return opOutcome{class: "in_doubt", measure: true}
	default:
		return opOutcome{class: "aborted", measure: true}
	}
}

// stormScenario: a meeting-setup storm with Zipf-skewed initiators and
// participants over pre-seeded personal appointments. The whole op
// budget arrives in a one-hour burst an hour into the day — the Monday
// 9am planning rush — so per-device arrival gaps shrink toward the
// modeled service time and the queueing model engages; slot contention
// on the head of the distribution drives the abort rate.
func stormScenario(cfg Config) *scenario {
	users := workload.Users(cfg.Devices)
	win := workload.DefaultWindow()
	slots := win.Slots()
	plans := workload.SkewedMeetingPlans(users, cfg.Ops, 3, 1.2, cfg.Seed)
	burst := cfg.Horizon / 8
	arrivals := workload.PoissonArrivals(cfg.Ops, burst, cfg.Seed+1)
	for i := range arrivals {
		arrivals[i] += cfg.Horizon / 8
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 2))

	sc := &scenario{
		name: "storm",
		setup: func(ctx context.Context, w *world, cfg Config) error {
			plan := workload.MakeBusyPlan(users, win, 0.12, cfg.Seed+7)
			for _, u := range users {
				if err := plan.ApplyToCalendar(u, w.cals[u]); err != nil {
					return err
				}
			}
			return nil
		},
	}
	for i, p := range plans {
		p := p
		slot := slots[rng.Intn(len(slots))]
		title := fmt.Sprintf("storm-%d", i)
		sc.timeline = append(sc.timeline, timedOp{
			at:  arrivals[i],
			dev: p.Initiator,
			run: func(ctx context.Context, w *world) opOutcome {
				m, queued, err := w.cals[p.Initiator].ScheduleOrQueue(ctx, calendar.Request{
					Title: title,
					Day:   slot.Day, Hour: slot.Hour, PinSlot: true,
					Must:     p.Participants,
					Priority: p.Priority,
				})
				return classifySchedule(m, queued, err)
			},
		})
	}
	return sc
}

// fanoutScenario: a few hub users (devices/64) each hold a standing
// meeting with a wide supervisor set; every operation tears the
// current meeting down and rebuilds it on a rotated slot, cascading a
// 1→N link fan-out both ways.
func fanoutScenario(cfg Config) *scenario {
	users := workload.Users(cfg.Devices)
	win := workload.DefaultWindow()
	slots := win.Slots()
	nHubs := cfg.Devices / 64
	if nHubs < 1 {
		nHubs = 1
	}
	hubs := users[:nHubs]
	width := min(16, cfg.Devices-1)
	// Supervisors: the width users following the hub, wrapping.
	supsOf := func(h int) []string {
		out := make([]string, 0, width)
		for j := 1; j <= width; j++ {
			out = append(out, users[(h+j)%len(users)])
		}
		return out
	}
	arrivals := workload.PoissonArrivals(cfg.Ops, cfg.Horizon, cfg.Seed+1)
	rng := rand.New(rand.NewSource(cfg.Seed + 2))
	current := make(map[string]string, nHubs) // hub -> live meeting id

	sc := &scenario{
		name: "fanout",
		setup: func(ctx context.Context, w *world, cfg Config) error {
			for h, u := range hubs {
				m, _, err := w.cals[u].ScheduleOrQueue(ctx, calendar.Request{
					Title: "standup-" + u,
					Day:   slots[h%len(slots)].Day, Hour: slots[h%len(slots)].Hour, PinSlot: true,
					Supervisors: supsOf(h),
					Priority:    5,
				})
				if err != nil {
					return fmt.Errorf("fanout setup %s: %w", u, err)
				}
				current[u] = m.ID
			}
			return nil
		},
	}
	for i := 0; i < cfg.Ops; i++ {
		h := rng.Intn(nHubs)
		hub := hubs[h]
		slot := slots[(h+i+1)%len(slots)]
		title := fmt.Sprintf("standup-%s-%d", hub, i)
		sups := supsOf(h)
		sc.timeline = append(sc.timeline, timedOp{
			at:  arrivals[i],
			dev: hub,
			run: func(ctx context.Context, w *world) opOutcome {
				// One op = cancel cascade + rebuild; both fan out to every
				// supervisor and are charged to the same latency sample.
				if id := current[hub]; id != "" {
					_ = w.cals[hub].CancelMeeting(ctx, id)
					current[hub] = ""
				}
				m, queued, err := w.cals[hub].ScheduleOrQueue(ctx, calendar.Request{
					Title: title,
					Day:   slot.Day, Hour: slot.Hour, PinSlot: true,
					Supervisors: sups,
					Priority:    5,
				})
				if err == nil && !queued {
					current[hub] = m.ID
				}
				return classifySchedule(m, queued, err)
			},
		})
	}
	return sc
}

// churnScenario: registration-plane load — the fleet hammers the
// directory with service resolution, heartbeats, and offline/online
// toggles, exercising shard routing and the control plane rather than
// negotiation.
func churnScenario(cfg Config) *scenario {
	users := workload.Users(cfg.Devices)
	arrivals := workload.PoissonArrivals(cfg.Ops, cfg.Horizon, cfg.Seed+1)
	rng := rand.New(rand.NewSource(cfg.Seed + 2))
	picker := workload.NewZipfPicker(cfg.Devices, 1.2, cfg.Seed+3)

	sc := &scenario{name: "churn"}
	for i := 0; i < cfg.Ops; i++ {
		dev := users[rng.Intn(len(users))]
		kind := rng.Float64()
		target := users[picker.Pick()]
		sc.timeline = append(sc.timeline, timedOp{
			at:  arrivals[i],
			dev: dev,
			run: func(ctx context.Context, w *world) opOutcome {
				dir := w.nodes[dev].Dir
				var err error
				switch {
				case kind < 0.60:
					_, err = dir.ResolveService(ctx, links.ServiceFor(target))
				case kind < 0.90:
					err = dir.Heartbeat(ctx, dev)
				default:
					if err = dir.SetOffline(ctx, dev, true); err == nil {
						err = dir.SetOffline(ctx, dev, false)
					}
				}
				if err != nil {
					return opOutcome{class: "error", measure: true}
				}
				return opOutcome{class: "committed", measure: true}
			},
		})
	}
	return sc
}

// flapScenario: every tenth device is a commuter running in offline
// mode; each commuter loses radio contact twice during the workday
// (isolated in both directions, including from the directory). Writes
// issued while out of range land in the durable op queue and drain
// through the reconnect session when coverage returns.
func flapScenario(cfg Config) *scenario {
	users := workload.Users(cfg.Devices)
	win := workload.DefaultWindow()
	slots := win.Slots()
	plans := workload.SkewedMeetingPlans(users, cfg.Ops, 2, 1.2, cfg.Seed)
	arrivals := workload.PoissonArrivals(cfg.Ops, cfg.Horizon, cfg.Seed+1)
	rng := rand.New(rand.NewSource(cfg.Seed + 2))

	sc := &scenario{name: "flap"}
	for i, p := range plans {
		p := p
		slot := slots[rng.Intn(len(slots))]
		title := fmt.Sprintf("flap-%d", i)
		sc.timeline = append(sc.timeline, timedOp{
			at:  arrivals[i],
			dev: p.Initiator,
			run: func(ctx context.Context, w *world) opOutcome {
				m, queued, err := w.cals[p.Initiator].ScheduleOrQueue(ctx, calendar.Request{
					Title: title,
					Day:   slot.Day, Hour: slot.Hour, PinSlot: true,
					Must:     p.Participants,
					Priority: p.Priority,
				})
				return classifySchedule(m, queued, err)
			},
		})
	}

	// Partition windows: two per commuter, one in each half of the
	// horizon, 10–40 simulated minutes out of range.
	for i, u := range users {
		if i%10 != 9 {
			continue
		}
		u := u
		for half := 0; half < 2; half++ {
			base := time.Duration(half) * (cfg.Horizon / 2)
			tOff := base + time.Duration(rng.Float64()*float64(cfg.Horizon/2-45*time.Minute))
			dur := 10*time.Minute + time.Duration(rng.Float64()*float64(30*time.Minute))
			sc.timeline = append(sc.timeline,
				timedOp{at: tOff, dev: u, run: func(ctx context.Context, w *world) opOutcome {
					// The sim keys inbound reachability by endpoint address
					// and outbound by the request's caller (the user id), so
					// radio loss is two cuts.
					w.net.Isolate(w.nodes[u].Addr(), true)
					w.net.Isolate(u, true)
					w.nodes[u].Offline.GoOffline(ctx)
					return opOutcome{}
				}},
				timedOp{at: tOff + dur, dev: u, run: func(ctx context.Context, w *world) opOutcome {
					w.net.Isolate(w.nodes[u].Addr(), false)
					w.net.Isolate(u, false)
					before := w.nodes[u].Offline.Queue().Len()
					err := w.nodes[u].Offline.TryReconnect(ctx)
					drained := before - w.nodes[u].Offline.Queue().Len()
					if err != nil {
						return opOutcome{class: "error", drained: drained, measure: true}
					}
					return opOutcome{drained: drained}
				}},
			)
		}
	}
	return sc
}

// drive replays the scenario timeline under compressed virtual time.
// The driver registers as a clock participant, so between operations —
// while it sleeps toward the next arrival — every staggered kernel
// timer in the window fires, one waiter at a time; while an operation
// runs, virtual time is frozen.
func (w *world) drive(cfg Config, sc *scenario) (*Report, error) {
	ctx := context.Background()
	wallStart := time.Now()
	if sc.setup != nil {
		if err := sc.setup(ctx, w, cfg); err != nil {
			return nil, fmt.Errorf("scale: %s setup: %w", sc.name, err)
		}
	}
	sort.SliceStable(sc.timeline, func(i, j int) bool { return sc.timeline[i].at < sc.timeline[j].at })

	rec := newRecorder(cfg.Seed)
	w.clk.RegisterGoroutine()
	w.clk.Resume()
	start := w.clk.Now()
	for _, op := range sc.timeline {
		if d := start.Add(op.at).Sub(w.clk.Now()); d > 0 {
			w.clk.Sleep(d)
		}
		req0 := w.net.Stats().Requests
		out := op.run(ctx, w)
		rec.record(op.dev, op.at, w.net.Stats().Requests-req0, out)
	}
	if d := start.Add(cfg.Horizon).Sub(w.clk.Now()); d > 0 {
		w.clk.Sleep(d)
	}
	w.clk.Pause()
	w.clk.UnregisterGoroutine()

	var locks links.LockStats
	for _, u := range w.users {
		s := w.nodes[u].Links.Locks.Stats()
		locks.Acquired += s.Acquired
		locks.Conflicts += s.Conflicts
		locks.Steals += s.Steals
	}
	st := w.net.Stats()
	return &Report{
		Scenario:  sc.name,
		Topology:  cfg.Topology,
		Devices:   cfg.Devices,
		Ops:       cfg.Ops,
		Seed:      cfg.Seed,
		VirtualMS: cfg.Horizon.Milliseconds(),
		Latency:   rec.latencyStats(),
		Outcomes:  rec.outcomes,
		Queue:     rec.queueStats(),
		Locks:     locks,
		Net: NetStats{
			Requests:  st.Requests,
			Responses: st.Responses,
			Events:    st.Events,
			Dropped:   st.Dropped,
		},
		ClockFired: w.clk.Fired(),
		WallMS:     time.Since(wallStart).Milliseconds(),
	}, nil
}
