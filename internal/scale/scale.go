// Package scale is the time-compressed fleet harness (ROADMAP item 4):
// it boots thousands of simulated devices — the paper's iPAQ-and-
// workstation deployment at a size the physical prototype could never
// reach — on the in-memory network under an auto-advancing fake clock,
// drives open-loop workloads against them, and reports SLO-shaped
// results (schedule-latency percentiles, negotiation outcome rates,
// queue depths, lock contention).
//
// Two properties make the harness useful as a CI gate:
//
//   - Time compression. Every kernel timer — heartbeats, link-expiry
//     sweeps, lease renewals, follower pulls, flap periods — waits on a
//     clock.FakeAuto, so a simulated eight-hour workday elapses in
//     wall-clock seconds. The clock advances only when every registered
//     goroutine is parked on it, one waiter at a time.
//   - Determinism. Execution is single-stepped: at most one clock
//     participant runs at any instant, every schedule is offset by a
//     per-device epsilon so no two deadlines collide, and operation
//     latency is *modeled* in virtual time (queue wait + an RPC-count-
//     driven service time) rather than measured in wall time. Two runs
//     with the same seed produce byte-identical reports, on any
//     machine, under any load.
package scale

import (
	"fmt"
	"time"

	"repro/internal/links"
)

// Topology selects the deployment shape under test.
type Topology string

const (
	// Single is one directory server at "dir".
	Single Topology = "single"
	// Sharded4 is a 4-shard directory behind the control plane at "cp".
	Sharded4 Topology = "sharded4"
	// Replicated is Sharded4 plus WAL-shipped warm standbys for the
	// hub users (the Zipf head that sees most of the traffic).
	Replicated Topology = "replicated"
)

// Topologies lists every topology in report order.
func Topologies() []Topology { return []Topology{Single, Sharded4, Replicated} }

// Scenarios lists every scenario name in report order.
func Scenarios() []string { return []string{"storm", "fanout", "churn", "flap"} }

// Config describes one harness run.
type Config struct {
	// Scenario is one of Scenarios(): "storm" (Zipf-skewed meeting
	// setup bursts), "fanout" (hub meetings rebuilt under wide
	// supervisor fan-out), "churn" (directory register/resolve/offline
	// churn), "flap" (commuter devices cycling through partition
	// windows with offline queues).
	Scenario string
	// Topology is the deployment shape (default Single).
	Topology Topology
	// Devices is the fleet size (default 500).
	Devices int
	// Ops is the operation count (default 4 per device).
	Ops int
	// Horizon is the simulated duration (default 8h — one workday).
	Horizon time.Duration
	// Seed makes the run reproducible; same seed, same report bytes.
	Seed int64
	// DataRoot hosts the replicated topology's WAL directories
	// (default: a fresh directory under os.TempDir, removed after the
	// run).
	DataRoot string
}

func (c Config) withDefaults() Config {
	if c.Topology == "" {
		c.Topology = Single
	}
	if c.Devices <= 0 {
		c.Devices = 500
	}
	if c.Ops <= 0 {
		c.Ops = 4 * c.Devices
	}
	if c.Horizon <= 0 {
		c.Horizon = 8 * time.Hour
	}
	return c
}

// LatencyStats are exact percentiles over the modeled operation
// latencies, in milliseconds of virtual time.
type LatencyStats struct {
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
	MaxMS  float64 `json:"max_ms"`
	MeanMS float64 `json:"mean_ms"`
}

// Outcomes counts operation results. Committed/Tentative/Aborted/
// InDoubt classify negotiation-backed operations (a tentative meeting
// committed its initiator slot but missed participants); Queued counts
// operations accepted into an offline op queue, Drained how many of
// those later replayed through a reconnect session; Errors is
// everything else.
type Outcomes struct {
	Committed int `json:"committed"`
	Tentative int `json:"tentative"`
	Aborted   int `json:"aborted"`
	InDoubt   int `json:"in_doubt"`
	Queued    int `json:"queued"`
	Drained   int `json:"drained"`
	Errors    int `json:"errors"`
}

// QueueStats summarize the per-device queueing model: how deep the
// busiest device's op queue got, and the mean depth observed at
// arrival instants.
type QueueStats struct {
	MaxDepth  int     `json:"max_depth"`
	MeanDepth float64 `json:"mean_depth"`
}

// NetStats snapshot the simulated network's traffic counters.
type NetStats struct {
	Requests  int64 `json:"requests"`
	Responses int64 `json:"responses"`
	Events    int64 `json:"events"`
	Dropped   int64 `json:"dropped"`
}

// Report is one scenario×topology run's result — the unit
// BENCH_scale.json stores and cmd/benchgate gates. Every field except
// WallMS is deterministic for a given (Config, code) pair.
type Report struct {
	Scenario  string          `json:"scenario"`
	Topology  Topology        `json:"topology"`
	Devices   int             `json:"devices"`
	Ops       int             `json:"ops"`
	Seed      int64           `json:"seed"`
	VirtualMS int64           `json:"virtual_ms"`
	Latency   LatencyStats    `json:"latency"`
	Outcomes  Outcomes        `json:"outcomes"`
	Queue     QueueStats      `json:"queue"`
	Locks     links.LockStats `json:"locks"`
	Net       NetStats        `json:"net"`
	// ClockFired counts fake-clock waiter deliveries — how many timer
	// events the compressed workday contained.
	ClockFired uint64 `json:"clock_fired"`
	// WallMS is the real elapsed time; informational only (machine-
	// dependent, excluded from determinism comparisons and gating).
	WallMS int64 `json:"wall_ms"`
}

// AbortRate is aborted / (committed+tentative+aborted+in_doubt), the
// negotiation failure fraction the storm scenario tracks.
func (r *Report) AbortRate() float64 {
	total := r.Outcomes.Committed + r.Outcomes.Tentative + r.Outcomes.Aborted + r.Outcomes.InDoubt
	if total == 0 {
		return 0
	}
	return float64(r.Outcomes.Aborted) / float64(total)
}

// Run executes one scenario against one topology and reports.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	sc, err := scenarioFor(cfg)
	if err != nil {
		return nil, err
	}
	w, err := boot(cfg)
	if err != nil {
		return nil, err
	}
	defer w.teardown()
	return w.drive(cfg, sc)
}

// RunAll executes every scenario × every topology at the given fleet
// size, in catalog order.
func RunAll(devices int, seed int64) ([]*Report, error) {
	var out []*Report
	for _, sc := range Scenarios() {
		for _, topo := range Topologies() {
			r, err := Run(Config{Scenario: sc, Topology: topo, Devices: devices, Seed: seed})
			if err != nil {
				return out, fmt.Errorf("scale: %s/%s: %w", sc, topo, err)
			}
			out = append(out, r)
		}
	}
	return out, nil
}
