package scale

import (
	"encoding/json"
	"os"
	"testing"
	"time"
)

// stripWall zeroes the only machine-dependent field so reports can be
// compared byte-for-byte.
func stripWall(r *Report) *Report {
	c := *r
	c.WallMS = 0
	return &c
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestScaleSmoke is the CI scale gate's inner loop: 500 devices, two
// scenarios, each run twice with the same seed. The runs must be
// byte-identical (minus wall time), finish their in-doubt ledger, and
// produce finite percentiles.
func TestScaleSmoke(t *testing.T) {
	for _, scn := range []string{"storm", "flap"} {
		scn := scn
		t.Run(scn, func(t *testing.T) {
			cfg := Config{Scenario: scn, Topology: Single, Devices: 500, Ops: 800, Seed: 1}
			a, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			ja, jb := mustJSON(t, stripWall(a)), mustJSON(t, stripWall(b))
			if ja != jb {
				t.Fatalf("same seed diverged:\n%s\n%s", ja, jb)
			}
			if a.Outcomes.InDoubt != 0 {
				t.Fatalf("in-doubt ops on a lossless network: %+v", a.Outcomes)
			}
			if a.Outcomes.Committed == 0 {
				t.Fatalf("nothing committed: %+v", a.Outcomes)
			}
			if a.Latency.P99MS <= 0 || a.Latency.P99MS < a.Latency.P50MS {
				t.Fatalf("bad percentiles: %+v", a.Latency)
			}
			if a.ClockFired == 0 {
				t.Fatal("virtual time never advanced")
			}
			t.Logf("%s: %s", scn, ja)
		})
	}
}

// TestRunAllTopologies sweeps the full scenario × topology catalog at a
// small fleet size — the shape BENCH_scale.json is generated from.
func TestRunAllTopologies(t *testing.T) {
	reports, err := RunAll(48, 7)
	if err != nil {
		t.Fatal(err)
	}
	want := len(Scenarios()) * len(Topologies())
	if len(reports) != want {
		t.Fatalf("got %d reports, want %d", len(reports), want)
	}
	seen := map[string]bool{}
	for _, r := range reports {
		key := r.Scenario + "/" + string(r.Topology)
		if seen[key] {
			t.Fatalf("duplicate report %s", key)
		}
		seen[key] = true
		if r.Outcomes.InDoubt != 0 {
			t.Errorf("%s: in-doubt ops: %+v", key, r.Outcomes)
		}
		if r.Ops <= 0 || r.Devices != 48 {
			t.Errorf("%s: bad config echo %+v", key, r)
		}
		if r.VirtualMS != (8 * time.Hour).Milliseconds() {
			t.Errorf("%s: virtual span %d", key, r.VirtualMS)
		}
	}
}

// TestStormContention: the storm scenario's Zipf head must actually
// contend — lock conflicts and aborts are the signal the harness
// exists to measure.
func TestStormContention(t *testing.T) {
	r, err := Run(Config{Scenario: "storm", Devices: 100, Ops: 400, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if r.Locks.Acquired == 0 {
		t.Fatalf("no locks acquired: %+v", r.Locks)
	}
	if r.Outcomes.Aborted == 0 {
		t.Fatalf("no contention aborts under a pinned-slot storm: %+v", r.Outcomes)
	}
	if rate := r.AbortRate(); rate <= 0 || rate >= 1 {
		t.Fatalf("abort rate %f out of (0,1)", rate)
	}
}

// TestFlapQueuesAndDrains: commuter writes issued out of range must
// queue, and reconnect sessions must drain them.
func TestFlapQueuesAndDrains(t *testing.T) {
	r, err := Run(Config{Scenario: "flap", Devices: 100, Ops: 600, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if r.Outcomes.Queued == 0 {
		t.Fatalf("no ops queued while out of range: %+v", r.Outcomes)
	}
	if r.Outcomes.Drained == 0 {
		t.Fatalf("no queued ops drained on reconnect: %+v", r.Outcomes)
	}
}

// TestChurnShardedDeterminism: the directory-churn scenario across the
// sharded control plane is deterministic too.
func TestChurnShardedDeterminism(t *testing.T) {
	cfg := Config{Scenario: "churn", Topology: Sharded4, Devices: 64, Ops: 300, Seed: 9}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ja, jb := mustJSON(t, stripWall(a)), mustJSON(t, stripWall(b)); ja != jb {
		t.Fatalf("sharded churn diverged:\n%s\n%s", ja, jb)
	}
	if a.Outcomes.Committed == 0 || a.Outcomes.Errors > a.Ops/10 {
		t.Fatalf("churn outcomes off: %+v", a.Outcomes)
	}
}

// TestReplicatedNoPromotion: under a healthy primary the warm standbys
// must never promote — the harness wires Promote to fail the run.
func TestReplicatedNoPromotion(t *testing.T) {
	r, err := Run(Config{Scenario: "fanout", Topology: Replicated, Devices: 32, Ops: 100, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if r.Outcomes.Committed == 0 {
		t.Fatalf("fanout committed nothing: %+v", r.Outcomes)
	}
}

func TestConfigDefaultsAndValidation(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Topology != Single || c.Devices != 500 || c.Ops != 2000 || c.Horizon != 8*time.Hour {
		t.Fatalf("defaults = %+v", c)
	}
	if _, err := Run(Config{Scenario: "nope", Devices: 4}); err == nil {
		t.Fatal("unknown scenario accepted")
	}
	if _, err := Run(Config{Scenario: "storm", Topology: Topology("weird"), Devices: 4, Ops: 4}); err == nil {
		t.Fatal("unknown topology accepted")
	}
}

// TestScaleFull10K is the acceptance run — 10k devices through an 8h
// storm — kept out of routine CI by an env guard (run with
// SCALE_FULL=1; must finish well under 5 minutes of wall time).
func TestScaleFull10K(t *testing.T) {
	if os.Getenv("SCALE_FULL") == "" {
		t.Skip("set SCALE_FULL=1 to run the 10k-device acceptance sweep")
	}
	start := time.Now()
	r, err := Run(Config{Scenario: "storm", Devices: 10000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("10k storm in %v: %s", time.Since(start), mustJSON(t, stripWall(r)))
	if r.Outcomes.InDoubt != 0 || r.Outcomes.Committed == 0 {
		t.Fatalf("outcomes off: %+v", r.Outcomes)
	}
}

func TestAbortRateEmpty(t *testing.T) {
	var r Report
	if r.AbortRate() != 0 {
		t.Fatal("empty report abort rate")
	}
	r.Outcomes = Outcomes{Committed: 3, Aborted: 1}
	if got := r.AbortRate(); got != 0.25 {
		t.Fatalf("abort rate %f", got)
	}
}
