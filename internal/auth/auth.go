// Package auth implements the calendar prototype's authentication
// scheme (paper §5.4): every user has a unique user id and password;
// each device keeps a table of authorized users; the client seals
// "userid:password" with TEA and sends it along with every request;
// the server unseals it and checks it against its authorized-user
// table before processing.
package auth

import (
	"encoding/hex"
	"errors"
	"fmt"
	"strings"
	"sync"

	"repro/internal/tea"
)

// Errors returned by the authenticator.
var (
	ErrBadCredential = errors.New("auth: malformed credential")
	ErrUnauthorized  = errors.New("auth: unknown user or wrong password")
)

// Sealer seals credentials for transmission. Both ends of a SyD
// deployment share the TEA key (the prototype's model).
type Sealer struct {
	cipher *tea.Cipher
}

// NewSealer builds a Sealer from a shared passphrase.
func NewSealer(passphrase string) *Sealer {
	c, err := tea.NewCipher(tea.KeyFromPassphrase(passphrase))
	if err != nil {
		// KeyFromPassphrase always yields a 16-byte key.
		panic(fmt.Sprintf("auth: %v", err))
	}
	return &Sealer{cipher: c}
}

// Seal produces the hex-encoded TEA-sealed "user:password" blob that
// rides in wire.Request.Credential.
func (s *Sealer) Seal(user, password string) (string, error) {
	if strings.ContainsRune(user, ':') {
		return "", fmt.Errorf("%w: user id must not contain ':'", ErrBadCredential)
	}
	sealed, err := s.cipher.Seal([]byte(user + ":" + password))
	if err != nil {
		return "", err
	}
	return hex.EncodeToString(sealed), nil
}

// Unseal reverses Seal, returning the user id and password.
func (s *Sealer) Unseal(credential string) (user, password string, err error) {
	raw, err := hex.DecodeString(credential)
	if err != nil {
		return "", "", fmt.Errorf("%w: %v", ErrBadCredential, err)
	}
	plain, err := s.cipher.Open(raw)
	if err != nil {
		return "", "", fmt.Errorf("%w: %v", ErrBadCredential, err)
	}
	user, password, ok := strings.Cut(string(plain), ":")
	if !ok {
		return "", "", ErrBadCredential
	}
	return user, password, nil
}

// Table is a device-local table of authorized users (§5.4: "each
// user's database also has a table containing the user id and password
// of authorized users"). It is safe for concurrent use.
type Table struct {
	mu    sync.RWMutex
	users map[string]string // user id -> password
}

// NewTable returns an empty authorized-user table.
func NewTable() *Table {
	return &Table{users: make(map[string]string)}
}

// Add authorizes (or updates) a user.
func (t *Table) Add(user, password string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.users[user] = password
}

// Remove revokes a user's access.
func (t *Table) Remove(user string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.users, user)
}

// Check validates a user/password pair.
func (t *Table) Check(user, password string) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	want, ok := t.users[user]
	if !ok || want != password {
		return ErrUnauthorized
	}
	return nil
}

// Len reports the number of authorized users.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.users)
}

// Authenticator combines a Sealer and a Table: the server-side check
// performed "before processing the request".
type Authenticator struct {
	Sealer *Sealer
	Table  *Table
}

// NewAuthenticator builds an Authenticator with an empty table.
func NewAuthenticator(passphrase string) *Authenticator {
	return &Authenticator{Sealer: NewSealer(passphrase), Table: NewTable()}
}

// Verify unseals the credential and checks the table, returning the
// authenticated user id.
func (a *Authenticator) Verify(credential string) (string, error) {
	user, password, err := a.Sealer.Unseal(credential)
	if err != nil {
		return "", err
	}
	if err := a.Table.Check(user, password); err != nil {
		return "", err
	}
	return user, nil
}
