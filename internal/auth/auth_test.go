package auth

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestSealUnsealRoundTrip(t *testing.T) {
	s := NewSealer("shared-secret")
	cred, err := s.Seal("phil", "hunter2")
	if err != nil {
		t.Fatal(err)
	}
	user, pass, err := s.Unseal(cred)
	if err != nil {
		t.Fatal(err)
	}
	if user != "phil" || pass != "hunter2" {
		t.Fatalf("unsealed %q/%q", user, pass)
	}
}

func TestSealRejectsColonInUser(t *testing.T) {
	s := NewSealer("shared-secret")
	if _, err := s.Seal("ph:il", "pw"); !errors.Is(err, ErrBadCredential) {
		t.Fatalf("err = %v", err)
	}
}

func TestPasswordMayContainColon(t *testing.T) {
	s := NewSealer("shared-secret")
	cred, err := s.Seal("phil", "a:b:c")
	if err != nil {
		t.Fatal(err)
	}
	user, pass, err := s.Unseal(cred)
	if err != nil {
		t.Fatal(err)
	}
	if user != "phil" || pass != "a:b:c" {
		t.Fatalf("unsealed %q/%q", user, pass)
	}
}

func TestUnsealGarbage(t *testing.T) {
	s := NewSealer("shared-secret")
	for _, bad := range []string{"", "zz-not-hex", "deadbeef"} {
		if _, _, err := s.Unseal(bad); !errors.Is(err, ErrBadCredential) {
			t.Fatalf("Unseal(%q) err = %v", bad, err)
		}
	}
}

func TestUnsealWrongPassphrase(t *testing.T) {
	a := NewSealer("secret-a")
	b := NewSealer("secret-b")
	cred, err := a.Seal("phil", "hunter2")
	if err != nil {
		t.Fatal(err)
	}
	user, pass, err := b.Unseal(cred)
	if err == nil && user == "phil" && pass == "hunter2" {
		t.Fatal("wrong passphrase recovered the credential")
	}
}

func TestTableCheck(t *testing.T) {
	tab := NewTable()
	tab.Add("phil", "hunter2")
	tab.Add("andy", "pw")
	if err := tab.Check("phil", "hunter2"); err != nil {
		t.Fatal(err)
	}
	if err := tab.Check("phil", "wrong"); !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("wrong password: %v", err)
	}
	if err := tab.Check("suzy", "pw"); !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("unknown user: %v", err)
	}
	if tab.Len() != 2 {
		t.Fatalf("Len = %d", tab.Len())
	}
	tab.Remove("andy")
	if err := tab.Check("andy", "pw"); !errors.Is(err, ErrUnauthorized) {
		t.Fatal("removed user still authorized")
	}
	if tab.Len() != 1 {
		t.Fatalf("Len after remove = %d", tab.Len())
	}
}

func TestTableUpdatePassword(t *testing.T) {
	tab := NewTable()
	tab.Add("phil", "old")
	tab.Add("phil", "new")
	if err := tab.Check("phil", "old"); err == nil {
		t.Fatal("old password still valid after update")
	}
	if err := tab.Check("phil", "new"); err != nil {
		t.Fatal(err)
	}
}

func TestAuthenticatorVerify(t *testing.T) {
	a := NewAuthenticator("deployment-key")
	a.Table.Add("phil", "hunter2")
	cred, err := a.Sealer.Seal("phil", "hunter2")
	if err != nil {
		t.Fatal(err)
	}
	user, err := a.Verify(cred)
	if err != nil {
		t.Fatal(err)
	}
	if user != "phil" {
		t.Fatalf("user = %q", user)
	}

	badCred, err := a.Sealer.Seal("phil", "wrong")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Verify(badCred); !errors.Is(err, ErrUnauthorized) {
		t.Fatalf("wrong password verify: %v", err)
	}
	if _, err := a.Verify("nothex!"); !errors.Is(err, ErrBadCredential) {
		t.Fatalf("garbage verify: %v", err)
	}
}

// TestSealUnsealProperty: any user (without ':') and password survive a
// seal/unseal round trip.
func TestSealUnsealProperty(t *testing.T) {
	s := NewSealer("prop-key")
	f := func(user, pass string) bool {
		user = strings.ReplaceAll(user, ":", "_")
		cred, err := s.Seal(user, pass)
		if err != nil {
			return false
		}
		u, p, err := s.Unseal(cred)
		return err == nil && u == user && p == pass
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestTableConcurrentAccess(t *testing.T) {
	tab := NewTable()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 1000; i++ {
			tab.Add("u", "p")
			tab.Remove("u")
		}
	}()
	for i := 0; i < 1000; i++ {
		_ = tab.Check("u", "p")
	}
	<-done
}

func BenchmarkVerify(b *testing.B) {
	a := NewAuthenticator("bench-key")
	a.Table.Add("phil", "hunter2")
	cred, err := a.Sealer.Seal("phil", "hunter2")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := a.Verify(cred); err != nil {
			b.Fatal(err)
		}
	}
}
