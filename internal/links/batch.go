package links

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/listener"
	"repro/internal/trace"
	"repro/internal/wire"
)

// Per-node negotiation batching. A Spec whose targets include several
// entities owned by the same node used to cost one Mark RPC, one
// Commit (or Abort) RPC, and one journal-redrive Commit per *entity*.
// The coordinator now groups targets by owning node and sends one
// MarkBatch / CommitBatch / AbortBatch per node, each carrying
// per-entity results so every per-entity semantic survives intact:
//
//   - partial failures stay per-entity (each entry carries its own
//     error and wire code, reconstructed coordinator-side so
//     transient/definitive classification is unchanged);
//   - decided-token idempotency is untouched (CommitBatch runs the
//     same commitLocalToken decision table per entry);
//   - fault injectors stay per-entity (consulted once per (nid, ref)
//     during batch assembly, exactly as the per-entity send would);
//   - mixed fleets keep working: a peer that answers CodeNoMethod
//     (predates the batch RPCs) gets the per-entity protocol.
//
// Runs of one target, self-owned runs, and managers with batching
// disabled use the per-entity path unchanged — including its
// per-target links.Mark / links.Commit / links.Abort spans.

// errSkippedMark is the And-semantics skip: once any mark fails the
// constraint is doomed, so later targets are not marked at all. The
// text matches the historical per-entity path.
func errSkippedMark() error {
	return fmt.Errorf("links: skipped after earlier mark failure")
}

// batchMarkResult is one MarkBatch entry outcome on the wire.
type batchMarkResult struct {
	Token string       `json:"token,omitempty"`
	Error string       `json:"error,omitempty"`
	Code  wire.ErrCode `json:"code,omitempty"`
}

// batchCommitResult is one CommitBatch entry outcome on the wire.
type batchCommitResult struct {
	OK    bool         `json:"ok"`
	Error string       `json:"error,omitempty"`
	Code  wire.ErrCode `json:"code,omitempty"`
}

// batchEntry is one CommitBatch/AbortBatch entry on the wire.
type batchEntry struct {
	Entity string `json:"entity"`
	Token  string `json:"token"`
}

// remoteEntryErr rebuilds the error a per-entity RPC would have
// surfaced for a failed batch entry: the engine turns every non-OK
// response into a *wire.RemoteError{Code, Msg}, so reconstructing one
// keeps transientErr and every caller-side classification identical.
func remoteEntryErr(code wire.ErrCode, msg string) error {
	if code == wire.CodeOK || code == "" {
		code = wire.CodeInternal
	}
	return &wire.RemoteError{Code: code, Msg: msg}
}

// SetBatchRPC enables or disables the per-node batch RPCs (enabled by
// default). Tests use it to pin the per-entity path for equivalence
// checks; disabling it never changes outcomes, only the RPC count.
func (m *Manager) SetBatchRPC(on bool) {
	m.mu.Lock()
	m.batchOff = !on
	m.mu.Unlock()
}

func (m *Manager) batchEnabled() bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return !m.batchOff
}

// ---------------------------------------------------------------------
// Coordinator side: phase 1.

// markRun marks one same-node run of targets. stop carries the And
// semantics: after the first failure later entries are skipped, not
// marked. The per-entity path serves singleton runs, self-owned runs,
// and peers without the batch RPCs.
func (m *Manager) markRun(ctx context.Context, nid string, run []EntityRef, action string, args wire.Args, stop bool) []markResult {
	if len(run) == 1 || run[0].User == m.self || !m.batchEnabled() {
		return m.markRunSerial(ctx, nid, run, action, args, stop)
	}
	out := make([]markResult, len(run))
	// Consult the fault injector exactly once per (nid, ref), in target
	// order, before anything is sent — the same observable schedule as
	// the per-entity path. With stop set, a faulted entry dooms every
	// later one to the skip error without marking it.
	clean := make([]int, 0, len(run))
	failed := false
	for i, ref := range run {
		if failed && stop {
			out[i] = markResult{ref: ref, err: errSkippedMark()}
			continue
		}
		if err := m.markFaultFor(nid, ref); err != nil {
			out[i] = markResult{ref: ref, err: err}
			failed = true
			continue
		}
		clean = append(clean, i)
	}
	if len(clean) == 0 {
		return out
	}
	refs := make([]EntityRef, len(clean))
	for j, i := range clean {
		refs[j] = run[i]
	}
	results, err := m.markBatchRPC(ctx, nid, refs, action, args, stop)
	if wire.CodeOf(err) == wire.CodeNoMethod {
		// Old fleet member: nothing executed (the method is unknown), so
		// the per-entity protocol is safe to drive from scratch.
		serial := m.markRunSerial(ctx, nid, refs, action, args, stop)
		for j, i := range clean {
			out[i] = serial[j]
		}
		return out
	}
	if err != nil {
		// The batch itself failed (unreachable node, timeout). Per-entity
		// semantics: the first unsent entry carries the send error; with
		// stop set the rest are skips, without it every send would have
		// failed the same way.
		for j, i := range clean {
			if j == 0 || !stop {
				out[i] = markResult{ref: run[i], err: err}
			} else {
				out[i] = markResult{ref: run[i], err: errSkippedMark()}
			}
		}
		return out
	}
	for j, i := range clean {
		r := results[j]
		if r.Error != "" || r.Token == "" {
			out[i] = markResult{ref: run[i], err: remoteEntryErr(r.Code, r.Error)}
			continue
		}
		out[i] = markResult{ref: run[i], token: r.Token}
	}
	return out
}

// markRunSerial is the historical per-entity mark loop for one run.
func (m *Manager) markRunSerial(ctx context.Context, nid string, run []EntityRef, action string, args wire.Args, stop bool) []markResult {
	out := make([]markResult, 0, len(run))
	failed := false
	for _, ref := range run {
		if failed && stop {
			out = append(out, markResult{ref: ref, err: errSkippedMark()})
			continue
		}
		tok, err := m.markTarget(ctx, nid, ref, action, args)
		out = append(out, markResult{ref: ref, token: tok, err: err})
		if err != nil {
			failed = true
		}
	}
	return out
}

// markBatchRPC sends one MarkBatch covering a same-node run and
// returns the per-entry results (aligned with refs).
func (m *Manager) markBatchRPC(ctx context.Context, nid string, refs []EntityRef, action string, args wire.Args, stop bool) ([]batchMarkResult, error) {
	ctx, span := trace.Start(ctx, "links.MarkBatch")
	if span != nil {
		span.Annotate(trace.String("node", refs[0].User), trace.Int("targets", len(refs)))
	}
	entities := make([]string, len(refs))
	for i, ref := range refs {
		entities[i] = ref.Entity
	}
	var out struct {
		Results []batchMarkResult `json:"results"`
	}
	err := m.eng.Invoke(ctx, ServiceFor(refs[0].User), "MarkBatch", wire.Args{
		"entities": entities, "action": action, "args": map[string]any(args),
		"nid": nid, "stop": stop,
	}, &out)
	if err == nil && len(out.Results) != len(entities) {
		err = &wire.RemoteError{Code: wire.CodeInternal,
			Msg: fmt.Sprintf("links: MarkBatch returned %d results for %d entities", len(out.Results), len(entities))}
	}
	span.FinishErr(err)
	if err != nil {
		return nil, err
	}
	return out.Results, nil
}

// ---------------------------------------------------------------------
// Coordinator side: phase 2.

// commitGrouped runs the commit phase for tgts, one CommitBatch per
// owning node (per-entity for singleton/self/legacy runs), node groups
// fanned out concurrently. The returned errors align with tgts, so
// callers classify exactly as they did with per-entity sends.
func (m *Manager) commitGrouped(ctx context.Context, nid string, tgts []journalTarget, action string, args wire.Args, qos bool) []error {
	errs := make([]error, len(tgts))
	var wg sync.WaitGroup
	for _, idxs := range groupByUser(tgts) {
		wg.Add(1)
		go func(idxs []int) {
			defer wg.Done()
			run := make([]journalTarget, len(idxs))
			for j, i := range idxs {
				run[j] = tgts[i]
			}
			got := m.commitRun(ctx, nid, run, action, args, qos)
			for j, i := range idxs {
				errs[i] = got[j]
			}
		}(idxs)
	}
	wg.Wait()
	return errs
}

// commitRun commits one same-node run of marked targets.
func (m *Manager) commitRun(ctx context.Context, nid string, run []journalTarget, action string, args wire.Args, qos bool) []error {
	errs := make([]error, len(run))
	if len(run) == 1 || run[0].Ref.User == m.self || !m.batchEnabled() {
		for i, t := range run {
			errs[i] = m.commitTarget(ctx, nid, t.Ref, t.Token, action, args, qos)
		}
		return errs
	}
	clean := make([]int, 0, len(run))
	for i, t := range run {
		if err := m.commitFaultFor(nid, t.Ref); err != nil {
			errs[i] = err
			continue
		}
		clean = append(clean, i)
	}
	if len(clean) == 0 {
		return errs
	}
	entries := make([]batchEntry, len(clean))
	for j, i := range clean {
		entries[j] = batchEntry{Entity: run[i].Ref.Entity, Token: run[i].Token}
	}
	results, err := m.commitBatchRPC(ctx, nid, run[clean[0]].Ref.User, entries, action, args, qos)
	if wire.CodeOf(err) == wire.CodeNoMethod {
		for _, i := range clean {
			errs[i] = m.commitTarget(ctx, nid, run[i].Ref, run[i].Token, action, args, qos)
		}
		return errs
	}
	if err != nil {
		for _, i := range clean {
			errs[i] = err
		}
		return errs
	}
	for j, i := range clean {
		r := results[j]
		if r.OK {
			continue
		}
		errs[i] = remoteEntryErr(r.Code, r.Error)
	}
	return errs
}

// commitBatchRPC sends one CommitBatch for a same-node run; qos rides
// the sweeper's InvokeQoS exactly like per-entity redrive commits.
func (m *Manager) commitBatchRPC(ctx context.Context, nid, user string, entries []batchEntry, action string, args wire.Args, qos bool) ([]batchCommitResult, error) {
	ctx, span := trace.Start(ctx, "links.CommitBatch")
	if span != nil {
		span.Annotate(trace.String("node", user), trace.Int("targets", len(entries)))
		if qos {
			span.Annotate(trace.Bool("redrive", true))
		}
	}
	var out struct {
		Results []batchCommitResult `json:"results"`
	}
	callArgs := wire.Args{
		"entries": entries, "action": action, "args": map[string]any(args), "nid": nid,
	}
	var err error
	if qos {
		err = m.eng.InvokeQoS(ctx, commitQoS(m.tune()), ServiceFor(user), "CommitBatch", callArgs, &out)
	} else {
		err = m.eng.Invoke(ctx, ServiceFor(user), "CommitBatch", callArgs, &out)
	}
	if err == nil && len(out.Results) != len(entries) {
		err = &wire.RemoteError{Code: wire.CodeInternal,
			Msg: fmt.Sprintf("links: CommitBatch returned %d results for %d entries", len(out.Results), len(entries))}
	}
	span.FinishErr(err)
	if err != nil {
		return nil, err
	}
	return out.Results, nil
}

// ---------------------------------------------------------------------
// Coordinator side: abort.

// abortMarked releases every successfully marked target, one
// AbortBatch per node. Errors are ignored, matching abortTarget: an
// unreachable participant resolves the doubt itself via the pending
// mark sweep.
func (m *Manager) abortMarked(ctx context.Context, nid string, marks []markResult) {
	var tgts []journalTarget
	for _, mr := range marks {
		if mr.err == nil {
			tgts = append(tgts, journalTarget{Ref: mr.ref, Token: mr.token})
		}
	}
	for _, idxs := range groupByUser(tgts) {
		run := make([]journalTarget, len(idxs))
		for j, i := range idxs {
			run[j] = tgts[i]
		}
		m.abortRun(ctx, nid, run)
	}
}

// abortRun aborts one same-node run of marked targets.
func (m *Manager) abortRun(ctx context.Context, nid string, run []journalTarget) {
	if len(run) == 1 || run[0].Ref.User == m.self || !m.batchEnabled() {
		for _, t := range run {
			m.abortTarget(ctx, nid, t.Ref, t.Token)
		}
		return
	}
	ctx, span := trace.Start(ctx, "links.AbortBatch")
	if span != nil {
		span.Annotate(trace.String("node", run[0].Ref.User), trace.Int("targets", len(run)))
		defer span.Finish()
	}
	entries := make([]batchEntry, len(run))
	for i, t := range run {
		entries[i] = batchEntry{Entity: t.Ref.Entity, Token: t.Token}
	}
	err := m.eng.Invoke(ctx, ServiceFor(run[0].Ref.User), "AbortBatch", wire.Args{
		"entries": entries, "nid": nid,
	}, nil)
	if wire.CodeOf(err) == wire.CodeNoMethod {
		for _, t := range run {
			m.abortTarget(ctx, nid, t.Ref, t.Token)
		}
	}
}

// groupByUser collects tgts indices into per-user groups, preserving
// first-seen order (And targets arrive user-major sorted, so groups
// are the contiguous runs; Or/Xor targets group across positions).
func groupByUser(tgts []journalTarget) [][]int {
	var order [][]int
	byUser := make(map[string]int, len(tgts))
	for i, t := range tgts {
		g, ok := byUser[t.Ref.User]
		if !ok {
			g = len(order)
			byUser[t.Ref.User] = g
			order = append(order, nil)
		}
		order[g] = append(order[g], i)
	}
	return order
}

// ---------------------------------------------------------------------
// Participant side.

// registerBatch installs the per-node batch RPC handlers next to their
// per-entity siblings. Each entry runs the exact per-entity protocol
// (markLocal + pending-mark recording, the commitLocalToken decision
// table, unlock + decided-abort) and reports its own outcome, so a
// batch is observationally a pipelined sequence of the per-entity
// RPCs minus the per-entity round trips.
func (m *Manager) registerBatch(obj *listener.Object, argsOf func(*listener.Call) wire.Args) {
	// MarkBatch: phase-1 lock + check for every entity in one round
	// trip. With stop set (And), entries after the first failure are
	// skipped — the constraint is already doomed, and the per-entity
	// path would not have marked them either.
	obj.Handle("MarkBatch", func(ctx context.Context, call *listener.Call) (any, error) {
		action := call.Args.String("action")
		entities := call.Args.Strings("entities")
		if action == "" || len(entities) == 0 {
			return nil, &wire.RemoteError{Code: wire.CodeBadArgs, Msg: "MarkBatch needs action and entities"}
		}
		nid := call.Args.String("nid")
		stop := call.Args.Bool("stop")
		args := argsOf(call)
		results := make([]batchMarkResult, len(entities))
		failed := false
		for i, entity := range entities {
			if failed && stop {
				results[i] = batchMarkResult{Error: errSkippedMark().Error(), Code: wire.CodeConflict}
				continue
			}
			tok, err := m.markLocal(entity, action, args)
			if err != nil {
				results[i] = batchMarkResult{Error: err.Error(), Code: wire.CodeOf(err)}
				failed = true
				continue
			}
			if nid != "" && call.Caller != "" {
				p := &pendingMark{
					Token: tok, Entity: entity, Action: action, Args: args,
					NID: nid, Coordinator: call.Caller, Created: m.clk.Now(),
				}
				if span := trace.FromContext(ctx); span != nil {
					p.TraceID, p.SpanID = span.TraceID, span.SpanID
				}
				m.notePendingMark(p)
			}
			results[i] = batchMarkResult{Token: tok}
		}
		return map[string]any{"results": results}, nil
	})

	// CommitBatch: phase-2 apply + unlock for every entry, each through
	// the full commitLocalToken decision table (duplicate ack, decided
	// abort, stale token, late commit), safe to re-deliver.
	obj.Handle("CommitBatch", func(ctx context.Context, call *listener.Call) (any, error) {
		var entries []batchEntry
		if err := call.Args.Decode("entries", &entries); err != nil || len(entries) == 0 {
			return nil, &wire.RemoteError{Code: wire.CodeBadArgs, Msg: "CommitBatch needs entries"}
		}
		nid := call.Args.String("nid")
		action := call.Args.String("action")
		args := argsOf(call)
		results := make([]batchCommitResult, len(entries))
		for i, e := range entries {
			err := m.commitLocalToken(ctx, e.Entity, e.Token, nid, action, args, call.Caller)
			if err != nil {
				results[i] = batchCommitResult{Error: err.Error(), Code: wire.CodeOf(err)}
				continue
			}
			results[i] = batchCommitResult{OK: true}
		}
		return map[string]any{"results": results}, nil
	})

	// AbortBatch: release every entry without change; duplicates are
	// no-ops and later Commits for the tokens are rejected.
	obj.Handle("AbortBatch", func(ctx context.Context, call *listener.Call) (any, error) {
		var entries []batchEntry
		if err := call.Args.Decode("entries", &entries); err != nil || len(entries) == 0 {
			return nil, &wire.RemoteError{Code: wire.CodeBadArgs, Msg: "AbortBatch needs entries"}
		}
		nid := call.Args.String("nid")
		for _, e := range entries {
			m.Locks.Unlock(lockKey(e.Entity), e.Token)
			if e.Token != "" {
				m.noteDecided(e.Token, nid, false)
				trace.EventCtx(ctx, "links.decided", trace.String("kind", "abort"))
			}
		}
		return true, nil
	})
}
