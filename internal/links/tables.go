package links

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/store"
)

// Table names, matching the paper's nomenclature. SyD_PendingDelete is
// our addition: tombstones for cascade deletions that could not reach a
// disconnected participant (retried by the periodic sweep).
// SyD_NegotiationJournal is the coordinator's commit journal: one row
// per negotiation that decided COMMIT but has targets still awaiting
// phase-2 delivery. Because it lives in the node's store it flows
// through the mutation-logger hooks, so with durability on the journal
// survives coordinator crashes and the retry sweeper finishes phase 2
// after recovery.
// SyD_NegotiationDecided is the participant's durable memory of decided
// lock tokens: a participant that applied a Commit, lost the ack, and
// crashed must still recognize the re-sent Commit as a duplicate after
// restart — the in-memory decided cache is gone, but the row (written
// alongside the applied mutation, through the same store/WAL) survives.
const (
	LinkTable          = "SyD_Link"
	WaitingLinkTable   = "SyD_WaitingLink"
	LinkMethodTable    = "SyD_LinkMethod"
	PendingDeleteTable = "SyD_PendingDelete"
	NegotiationJournal = "SyD_NegotiationJournal"
	NegotiationDecided = "SyD_NegotiationDecided"
)

// createLinkDB implements §4.2 op 1: "all link information is
// maintained in a link database that is stored locally by the user...
// created when he/she installs a SyD application with link-enabled
// features". Idempotent.
func createLinkDB(db *store.DB) (links, waiting, methods, pending, journal, decided *store.Table, err error) {
	get := func(name string, s store.Schema) (*store.Table, error) {
		if t, err := db.Table(name); err == nil {
			return t, nil
		}
		return db.CreateTable(s)
	}
	fail := func(err error) (*store.Table, *store.Table, *store.Table, *store.Table, *store.Table, *store.Table, error) {
		return nil, nil, nil, nil, nil, nil, err
	}
	links, err = get(LinkTable, store.Schema{
		Name: LinkTable,
		Columns: []store.Column{
			{Name: "id", Type: store.String},
			{Name: "type", Type: store.String},
			{Name: "subtype", Type: store.String},
			{Name: "owner_user", Type: store.String},
			{Name: "owner_entity", Type: store.String},
			{Name: "targets", Type: store.String}, // JSON []EntityRef
			{Name: "constraint", Type: store.String},
			{Name: "k", Type: store.Int},
			{Name: "priority", Type: store.Int},
			{Name: "triggers", Type: store.String}, // JSON []Trigger
			{Name: "waiting_on", Type: store.String},
			{Name: "grp", Type: store.String},
			{Name: "created", Type: store.Time},
			{Name: "expires", Type: store.Time},
		},
		Key: []string{"id"},
	})
	if err != nil {
		return fail(err)
	}
	if err = links.CreateIndex("owner_entity"); err != nil {
		return fail(err)
	}
	waiting, err = get(WaitingLinkTable, store.Schema{
		Name: WaitingLinkTable,
		Columns: []store.Column{
			{Name: "id", Type: store.String}, // waiting link id
			{Name: "waiting_on", Type: store.String},
			{Name: "priority", Type: store.Int},
			{Name: "grp", Type: store.String},
		},
		Key: []string{"id"},
	})
	if err != nil {
		return fail(err)
	}
	if err = waiting.CreateIndex("waiting_on"); err != nil {
		return fail(err)
	}
	methods, err = get(LinkMethodTable, store.Schema{
		Name: LinkMethodTable,
		Columns: []store.Column{
			{Name: "service", Type: store.String},     // local service
			{Name: "src_method", Type: store.String},  // local method executed
			{Name: "target_user", Type: store.String}, // where to forward
			{Name: "dest_service", Type: store.String},
			{Name: "dest_method", Type: store.String},
		},
		Key: []string{"service", "src_method", "target_user", "dest_method"},
	})
	if err != nil {
		return fail(err)
	}
	if err = methods.CreateIndex("src_method"); err != nil {
		return fail(err)
	}
	pending, err = get(PendingDeleteTable, store.Schema{
		Name: PendingDeleteTable,
		Columns: []store.Column{
			{Name: "id", Type: store.String},   // link id to delete
			{Name: "user", Type: store.String}, // unreachable participant
		},
		Key: []string{"id", "user"},
	})
	if err != nil {
		return fail(err)
	}
	journal, err = get(NegotiationJournal, store.Schema{
		Name: NegotiationJournal,
		Columns: []store.Column{
			{Name: "id", Type: store.String}, // negotiation id
			// The record body (action, args, targets, trace identity,
			// attempt count) rides one JSON blob: the journal is written
			// on every negotiation's hot path, and one encode beats the
			// six per-column encodes the row used to take. next_retry
			// stays a real column because the sweeper selects on it.
			{Name: "rec", Type: store.String},      // JSON journalRec
			{Name: "next_retry", Type: store.Time}, // earliest next sweeper attempt
		},
		Key: []string{"id"},
	})
	if err != nil {
		return fail(err)
	}
	decided, err = get(NegotiationDecided, store.Schema{
		Name: NegotiationDecided,
		Columns: []store.Column{
			{Name: "token", Type: store.String}, // lock token the decision is keyed on
			{Name: "nid", Type: store.String},   // negotiation id (diagnostics)
			{Name: "committed", Type: store.Int},
			{Name: "at", Type: store.Time}, // decision time (GC horizon)
		},
		Key: []string{"token"},
	})
	if err != nil {
		return fail(err)
	}
	return links, waiting, methods, pending, journal, decided, nil
}

// linkToRow encodes a Link as a store row.
func linkToRow(l *Link) (store.Row, error) {
	targets, err := json.Marshal(l.Targets)
	if err != nil {
		return nil, fmt.Errorf("links: encode targets: %w", err)
	}
	triggers, err := json.Marshal(l.Triggers)
	if err != nil {
		return nil, fmt.Errorf("links: encode triggers: %w", err)
	}
	expires := l.Expires
	if expires.IsZero() {
		expires = time.Time{}
	}
	return store.Row{
		"id":           l.ID,
		"type":         string(l.Type),
		"subtype":      string(l.Subtype),
		"owner_user":   l.Owner.User,
		"owner_entity": l.Owner.Entity,
		"targets":      string(targets),
		"constraint":   string(l.Constraint),
		"k":            int64(l.K),
		"priority":     int64(l.Priority),
		"triggers":     string(triggers),
		"waiting_on":   l.WaitingOn,
		"grp":          l.Group,
		"created":      l.Created,
		"expires":      expires,
	}, nil
}

// rowToLink decodes a store row back into a Link.
func rowToLink(r store.Row) (*Link, error) {
	l := &Link{
		ID:         r["id"].(string),
		Type:       Type(r["type"].(string)),
		Subtype:    Subtype(r["subtype"].(string)),
		Owner:      EntityRef{User: r["owner_user"].(string), Entity: r["owner_entity"].(string)},
		Constraint: Constraint(r["constraint"].(string)),
		K:          int(r["k"].(int64)),
		Priority:   int(r["priority"].(int64)),
		WaitingOn:  r["waiting_on"].(string),
		Group:      r["grp"].(string),
		Created:    r["created"].(time.Time),
		Expires:    r["expires"].(time.Time),
	}
	if s := r["targets"].(string); s != "" {
		if err := json.Unmarshal([]byte(s), &l.Targets); err != nil {
			return nil, fmt.Errorf("links: decode targets of %s: %w", l.ID, err)
		}
	}
	if s := r["triggers"].(string); s != "" {
		if err := json.Unmarshal([]byte(s), &l.Triggers); err != nil {
			return nil, fmt.Errorf("links: decode triggers of %s: %w", l.ID, err)
		}
	}
	return l, nil
}
