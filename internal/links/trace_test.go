package links_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/links"
	"repro/internal/trace"
	"repro/internal/wire"
)

// newTracedHarness builds a sim deployment where every node records
// spans into one collector — the in-process stand-in for a tracing
// backend — at the given head-sampling rate.
func newTracedHarness(t *testing.T, col *trace.Collector, rate float64, users ...string) *harness {
	t.Helper()
	h := newHarness(t)
	for _, u := range users {
		h.addNode(u, core.WithTracer(col.Tracer(u, trace.WithSampleRate(rate))))
	}
	return h
}

// spanNames flattens a stitched tree into its span names.
func spanNames(tr *trace.Tree) map[string]int {
	names := make(map[string]int)
	var walk func(n *trace.Node)
	walk = func(n *trace.Node) {
		names[n.Span.Name]++
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, r := range tr.Roots {
		walk(r)
	}
	return names
}

func findTree(trees []*trace.Tree, rootName string) *trace.Tree {
	for _, tr := range trees {
		for _, r := range tr.Roots {
			if r.Span.Name == rootName {
				return tr
			}
		}
	}
	return nil
}

// TestGroupInvokeStitchedTrace drives a group invocation across three
// sim nodes and asserts the collector stitches ONE trace whose edges
// are exactly the fan-out: rpc.group -> one rpc.client per target ->
// that target's rpc.server.
func TestGroupInvokeStitchedTrace(t *testing.T) {
	col := trace.NewCollector()
	h := newTracedHarness(t, col, 1.0, "a", "x", "y")
	ctx := context.Background()

	results := h.nodes["a"].Engine.GroupInvoke(ctx,
		[]string{links.ServiceFor("x"), links.ServiceFor("y")}, "LinksOn", wire.Args{"entity": "s0"})
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("group member %s: %v", r.Service, r.Err)
		}
	}

	tree := findTree(col.Trees(), "rpc.group")
	if tree == nil {
		t.Fatalf("no stitched trace rooted at rpc.group; trees: %d", len(col.Trees()))
	}
	if len(tree.Roots) != 1 {
		t.Fatalf("tree has %d roots, want 1", len(tree.Roots))
	}
	if tree.Nodes != 3 {
		t.Errorf("tree.Nodes = %d, want 3 (a, x, y)", tree.Nodes)
	}
	root := tree.Roots[0]
	clients := 0
	serverNodes := map[string]bool{}
	for _, c := range root.Children {
		if c.Span.Name != "rpc.client" {
			t.Errorf("unexpected child of rpc.group: %s", c.Span.Name)
			continue
		}
		clients++
		if c.Span.Node != "a" {
			t.Errorf("rpc.client recorded on node %s, want a", c.Span.Node)
		}
		for _, g := range c.Children {
			if g.Span.Name == "rpc.server" {
				serverNodes[g.Span.Node] = true
				if g.Span.ParentID != c.Span.SpanID {
					t.Errorf("rpc.server parent = %s, want its rpc.client %s", g.Span.ParentID, c.Span.SpanID)
				}
			}
		}
	}
	if clients != 2 {
		t.Errorf("rpc.group has %d rpc.client children, want 2", clients)
	}
	if !serverNodes["x"] || !serverNodes["y"] {
		t.Errorf("server spans stitched under the wrong clients: %v", serverNodes)
	}
}

// TestInDoubtNegotiationTraceRetained reproduces the chaos scenario the
// tracing subsystem exists for: a coordinator whose Commit to one
// target fails leaves the negotiation in doubt, and — at sample rate
// ZERO — the whole trace must still be retained, showing the failed
// Commit, the participant's QueryOutcome resolution, and the journal
// redrive, stitched into one renderable tree.
func TestInDoubtNegotiationTraceRetained(t *testing.T) {
	col := trace.NewCollector()
	h := newTracedHarness(t, col, 0, "a", "x", "y")
	ctx := context.Background()
	tun := links.Tuning{RetryBase: 50 * time.Millisecond, PresumeAbortAfter: time.Hour}
	for _, n := range h.nodes {
		n.Links.SetTuning(tun)
	}

	// Commits from a to x fail at the coordinator (a "crash" between
	// the two phase-2 sends).
	h.nodes["a"].Links.SetCommitFault(func(nid string, ref links.EntityRef) error {
		if ref.User == "x" {
			return &wire.RemoteError{Code: wire.CodeUnavailable, Msg: "injected: coordinator crash"}
		}
		return nil
	})
	res, err := h.nodes["a"].Links.Negotiate(ctx, links.Spec{
		Action: "reserve", Args: wire.Args{"meeting": "M1"},
		Targets: refs("x", "s0", "y", "s0"), Constraint: links.And,
	})
	if !links.IsInDoubt(err) {
		t.Fatalf("Negotiate err = %v, want InDoubtError", err)
	}
	if res.State != links.StateInDoubt {
		t.Fatalf("state = %s, want in-doubt", res.State)
	}

	// The participant resolves its pending mark first (QueryOutcome ->
	// commit), then the healed coordinator redrives the journal row and
	// collects the duplicate ack.
	if n := h.nodes["x"].Links.FaultSweep(ctx, h.clk.Now()); n != 1 {
		t.Fatalf("x resolved %d marks, want 1", n)
	}
	h.nodes["a"].Links.SetCommitFault(nil)
	h.clk.Advance(time.Second)
	h.nodes["a"].Links.FaultSweep(ctx, h.clk.Now())
	if pending := h.nodes["a"].Links.JournalPending(); len(pending) != 0 {
		t.Fatalf("journal did not drain: %v", pending)
	}
	if got := h.nodes["x"].status("s0"); got != "M1" {
		t.Fatalf("x/s0 = %q, want M1", got)
	}

	tree := findTree(col.Trees(), "links.Negotiate")
	if tree == nil {
		t.Fatalf("in-doubt trace was not retained at sample rate 0")
	}
	if !tree.InDoubt {
		t.Errorf("tree not flagged in-doubt")
	}
	names := spanNames(tree)
	for _, want := range []string{"links.Negotiate", "links.Mark", "links.Commit", "links.Redrive", "links.Resolve", "links.QueryOutcome"} {
		if names[want] == 0 {
			t.Errorf("trace lacks a %s span; have %v", want, names)
		}
	}
	rendered := tree.Render()
	if !strings.Contains(rendered, "IN-DOUBT") {
		t.Errorf("render lacks IN-DOUBT banner:\n%s", rendered)
	}
	if !strings.Contains(rendered, "code=unavailable") {
		t.Errorf("render lacks the failed Commit's code:\n%s", rendered)
	}
	if !strings.Contains(rendered, "links.Redrive") || !strings.Contains(rendered, "outcome=commit") {
		t.Errorf("render lacks redrive/resolution evidence:\n%s", rendered)
	}
}
