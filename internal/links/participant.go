package links

import (
	"context"
	"time"

	"repro/internal/store"
	"repro/internal/trace"
	"repro/internal/wire"
)

// Participant-side fault tolerance. A mark (phase-1 lock + check) puts
// the participant in doubt: it holds a locked entity whose fate is
// decided elsewhere. Three mechanisms keep that safe under loss and
// coordinator crashes:
//
//   - pending marks: every Mark taken for a remote coordinator is
//     remembered (token, negotiation id, coordinator, action, args)
//     until Commit or Abort arrives, so the participant can resolve
//     the outcome itself;
//   - decided tokens: recently committed/aborted tokens are cached so
//     a re-delivered Commit acks instead of double-applying and a
//     re-delivered Abort stays a no-op;
//   - the resolution sweep: pending marks whose lock TTL is lapsing
//     are extended (a decided-but-undelivered Commit must not lose its
//     lock to a TTL steal) and the coordinator is asked via the
//     QueryOutcome RPC; presumed-abort applies when the coordinator is
//     gone past the PresumeAbortAfter horizon or disclaims the
//     negotiation.

// QueryOutcome answers. OutcomeUnknown means the coordinator is alive
// and the negotiation is still in flight — its fate is not decided (or
// not published) yet, so the participant must keep the mark pinned and
// ask again rather than presume abort.
const (
	OutcomeCommit  = "commit"
	OutcomeAbort   = "abort"
	OutcomeUnknown = "unknown"
)

// pendingMark is one phase-1 lock this node granted to a remote
// coordinator and whose outcome is not yet known.
type pendingMark struct {
	Token       string
	Entity      string
	Action      string
	Args        wire.Args
	NID         string
	Coordinator string
	Created     time.Time
	// TraceID/SpanID come from the Mark RPC's server span so the
	// resolution sweep's spans stitch into the negotiation's trace.
	TraceID string
	SpanID  string
}

// decision is a recently decided token outcome.
type decision struct {
	committed bool
	at        time.Time
}

// notePendingMark records a freshly granted mark (Mark handler).
func (m *Manager) notePendingMark(p *pendingMark) {
	m.partMu.Lock()
	m.pendMark[p.Token] = p
	m.partMu.Unlock()
}

// dropPendingMark forgets a mark once its outcome is decided.
func (m *Manager) dropPendingMark(token string) {
	m.partMu.Lock()
	delete(m.pendMark, token)
	m.partMu.Unlock()
}

// noteDecided records a token's outcome for duplicate-delivery
// detection, in memory and in the durable SyD_NegotiationDecided table
// (an applied-but-unacked Commit must survive a participant crash, or
// the re-sent Commit would re-run Check/Apply against the already
// applied state). The first decision wins — a Commit that raced a
// presumed abort must not flip the recorded outcome, including a
// decision persisted before a restart.
func (m *Manager) noteDecided(token, nid string, committed bool) {
	if _, known := m.decidedOutcome(token); known {
		m.dropPendingMark(token)
		return
	}
	m.partMu.Lock()
	_, exists := m.decided[token]
	if !exists {
		m.decided[token] = decision{committed: committed, at: m.clk.Now()}
	}
	delete(m.pendMark, token)
	m.partMu.Unlock()
	if exists {
		return
	}
	c := int64(0)
	if committed {
		c = 1
	}
	// ErrDupKey means an earlier (possibly pre-restart) decision is
	// already on record; it wins.
	_ = m.decidedT.Insert(store.Row{"token": token, "nid": nid, "committed": c, "at": m.clk.Now()})
}

// decidedOutcome looks a token up in the decided cache, falling back to
// the durable table (and re-warming the cache) after a restart.
func (m *Manager) decidedOutcome(token string) (committed, known bool) {
	m.partMu.Lock()
	d, ok := m.decided[token]
	m.partMu.Unlock()
	if ok {
		return d.committed, true
	}
	row, ok := m.decidedT.Get(token)
	if !ok {
		return false, false
	}
	committed = row["committed"].(int64) != 0
	m.partMu.Lock()
	if _, exists := m.decided[token]; !exists {
		m.decided[token] = decision{committed: committed, at: row["at"].(time.Time)}
	}
	m.partMu.Unlock()
	return committed, true
}

// PendingMarks reports how many marks are awaiting an outcome
// (diagnostics and tests).
func (m *Manager) PendingMarks() int {
	m.partMu.Lock()
	defer m.partMu.Unlock()
	return len(m.pendMark)
}

// gcDecided drops decided entries older than the tuning's DecidedTTL,
// from the cache and from the durable table.
func (m *Manager) gcDecided(now time.Time, ttl time.Duration) {
	m.partMu.Lock()
	for tok, d := range m.decided {
		if now.Sub(d.at) > ttl {
			delete(m.decided, tok)
		}
	}
	m.partMu.Unlock()
	for _, r := range m.decidedT.Select(func(r store.Row) bool {
		return now.Sub(r["at"].(time.Time)) > ttl
	}) {
		_ = m.decidedT.Delete(r["token"].(string))
	}
}

// queryOutcome asks a negotiation's coordinator whether it committed.
func (m *Manager) queryOutcome(ctx context.Context, coordinator, nid, token string) (string, error) {
	ctx, span := trace.Start(ctx, "links.QueryOutcome")
	if span != nil {
		span.Annotate(trace.String("coordinator", coordinator), trace.String("nid", nid))
		defer span.Finish()
	}
	if coordinator == m.self {
		return m.Outcome(nid, token), nil
	}
	var out struct {
		Outcome string `json:"outcome"`
	}
	err := m.eng.InvokeQoS(ctx, commitQoS(m.tune()), ServiceFor(coordinator), "QueryOutcome", wire.Args{
		"nid": nid, "token": token,
	}, &out)
	if err != nil {
		return "", err
	}
	return out.Outcome, nil
}

// ResolvePendingMarks is the participant half of the recovery sweep:
// for every mark still awaiting its outcome it re-arms the lock TTL
// (an in-doubt entity must not be stolen from under a decided commit)
// and asks the coordinator how the negotiation ended. A "commit"
// answer applies the change now — the coordinator's own retry will be
// acked as a duplicate; an "abort" answer (a coordinator that finally
// decided abort, or one that restarted and does not know the
// negotiation) releases the lock; an "unknown" answer (the negotiation
// is still in flight) keeps the mark pinned. If the coordinator stays
// unreachable past PresumeAbortAfter, abort is presumed: the lock is
// released and later Commits for the token are rejected. Returns the
// number of marks resolved.
func (m *Manager) ResolvePendingMarks(ctx context.Context, now time.Time) int {
	tun := m.tune()
	m.gcDecided(now, tun.DecidedTTL)

	m.partMu.Lock()
	marks := make([]*pendingMark, 0, len(m.pendMark))
	for _, p := range m.pendMark {
		marks = append(marks, p)
	}
	m.partMu.Unlock()

	resolved := 0
	for _, p := range marks {
		// The mark may have been decided between the snapshot and now.
		if _, known := m.decidedOutcome(p.Token); known {
			m.dropPendingMark(p.Token)
			continue
		}
		if m.resolveMark(ctx, p, now, tun) {
			resolved++
		}
	}
	return resolved
}

// resolveMark drives one in-doubt mark through the resolution protocol,
// reporting whether it reached a decision. A "links.Resolve" span joins
// the negotiation's trace (always retained — resolution only runs when
// an outcome went undelivered) so the post-mortem shows how the doubt
// ended.
func (m *Manager) resolveMark(ctx context.Context, p *pendingMark, now time.Time, tun Tuning) bool {
	span := m.tracerRef().JoinTrace(p.TraceID, p.SpanID, "links.Resolve")
	if span != nil {
		span.Annotate(trace.String("nid", p.NID), trace.String("entity", p.Entity))
		ctx = trace.ContextWithSpan(ctx, span)
		defer span.Finish()
	}
	if !m.Locks.Extend(lockKey(p.Entity), p.Token) {
		// The lock is gone (stolen after a real expiry): the
		// entity may already belong to another negotiation, so
		// this mark can only resolve to abort.
		m.noteDecided(p.Token, p.NID, false)
		m.count("presume-abort", wire.CodeConflict)
		span.Annotate(trace.String("outcome", "presume-abort"))
		return true
	}
	outcome, err := m.queryOutcome(ctx, p.Coordinator, p.NID, p.Token)
	if err != nil {
		if now.Sub(p.Created) > tun.PresumeAbortAfter {
			m.Locks.Unlock(lockKey(p.Entity), p.Token)
			m.noteDecided(p.Token, p.NID, false)
			m.count("presume-abort", wire.CodeUnavailable)
			span.Annotate(trace.String("outcome", "presume-abort"))
			return true
		}
		// Coordinator unreachable; keep the lock pinned.
		span.SetError(err)
		span.Annotate(trace.String("outcome", "pinned"))
		return false
	}
	switch outcome {
	case OutcomeCommit:
		// Decision was COMMIT: apply under the still-held lock.
		applyErr := m.applyLocal(p.Entity, p.Action, p.Args)
		m.Locks.Unlock(lockKey(p.Entity), p.Token)
		m.noteDecided(p.Token, p.NID, applyErr == nil)
		m.count("resolve", wire.CodeOK)
		span.Annotate(trace.String("outcome", OutcomeCommit))
	case OutcomeUnknown:
		// The negotiation is still in flight at a live coordinator
		// (e.g. this sweep landed between the Mark grant and the
		// coordinator's journal write): its fate is not decided yet,
		// so keep the mark pinned and ask again next sweep. The
		// PresumeAbortAfter horizon still applies as a backstop so a
		// wedged coordinator cannot pin the entity forever — it
		// comfortably exceeds any live negotiation's duration.
		if now.Sub(p.Created) > tun.PresumeAbortAfter {
			m.Locks.Unlock(lockKey(p.Entity), p.Token)
			m.noteDecided(p.Token, p.NID, false)
			m.count("presume-abort", wire.CodeConflict)
			span.Annotate(trace.String("outcome", "presume-abort"))
			return true
		}
		span.Annotate(trace.String("outcome", "pinned"))
		return false
	default:
		m.Locks.Unlock(lockKey(p.Entity), p.Token)
		m.noteDecided(p.Token, p.NID, false)
		m.count("resolve", wire.CodeConflict)
		span.Annotate(trace.String("outcome", OutcomeAbort))
	}
	return true
}
