package links

import (
	"context"
	"encoding/json"
	"fmt"

	"repro/internal/listener"
	"repro/internal/trace"
	"repro/internal/wire"
)

// commitLocalToken is the participant-side Commit protocol, shared by
// the Commit RPC handler and the coordinator's own self-target path
// (inline phase 2 and journal redrive alike):
//
//   - A token already decided committed acks again (duplicate
//     delivery — the first Commit's response was lost) without
//     double-applying.
//   - A token already decided aborted (explicit Abort or presumed
//     abort) is rejected.
//   - A live lock held by the token applies normally.
//   - An expired lock that was re-granted to another negotiation
//     is REJECTED — applying would overwrite the thief's claim.
//   - An expired-but-unstolen (or crash-cleared) lock becomes a
//     late commit: the entity is re-locked and the action's Check
//     re-run, so a commit delayed past the TTL still lands when —
//     and only when — the entity is still compatible with it.
func (m *Manager) commitLocalToken(ctx context.Context, entity, token, nid, action string, args wire.Args, caller string) error {
	if committed, known := m.decidedOutcome(token); known {
		if committed {
			m.count("commit-dup", wire.CodeOK)
			trace.EventCtx(ctx, "links.decided", trace.String("kind", "duplicate-commit"))
			return nil
		}
		return &wire.RemoteError{Code: wire.CodeConflict, Msg: fmt.Sprintf("links: negotiation already aborted on %s", entity)}
	}
	if m.Locks.Holds(lockKey(entity), token) {
		err := m.applyLocal(entity, action, args)
		m.Locks.Unlock(lockKey(entity), token)
		m.noteDecided(token, nid, err == nil)
		trace.EventCtx(ctx, "links.decided", trace.String("kind", "commit"), trace.Bool("ok", err == nil))
		return err
	}
	if holder, live := m.Locks.Holder(lockKey(entity)); live && holder != token {
		// The mark's TTL lapsed and another negotiation took the
		// entity: the stale token must not clobber it.
		m.noteDecided(token, nid, false)
		m.count("commit-stale", wire.CodeConflict)
		trace.EventCtx(ctx, "links.decided", trace.String("kind", "stale-token"))
		return &wire.RemoteError{Code: wire.CodeConflict, Msg: fmt.Sprintf("links: stale token: lock on %s was re-granted", entity)}
	}
	// Late commit: no live lock. Re-acquire and re-check before
	// applying, since the entity may have changed since the mark.
	tok, ok := m.Locks.TryLock(lockKey(entity), caller)
	if !ok {
		return &wire.RemoteError{Code: wire.CodeConflict, Msg: fmt.Sprintf("links: entity %s is locked", entity)}
	}
	a, err := m.action(action)
	if err != nil {
		m.Locks.Unlock(lockKey(entity), tok)
		return err
	}
	if a.Check != nil {
		if err := a.Check(entity, args); err != nil {
			m.Locks.Unlock(lockKey(entity), tok)
			m.noteDecided(token, nid, false)
			m.count("commit-late", wire.CodeConflict)
			trace.EventCtx(ctx, "links.decided", trace.String("kind", "late-commit-rejected"))
			return err
		}
	}
	err = m.applyLocal(entity, action, args)
	m.Locks.Unlock(lockKey(entity), tok)
	m.noteDecided(token, nid, err == nil)
	trace.EventCtx(ctx, "links.decided", trace.String("kind", "late-commit"), trace.Bool("ok", err == nil))
	if err != nil {
		return err
	}
	m.count("commit-late", wire.CodeOK)
	return nil
}

// Object returns the listener object exposing this manager to remote
// negotiators and cascade operations. Register it as links.<user>.
func (m *Manager) Object() *listener.Object {
	obj := listener.NewObject()

	argsOf := func(call *listener.Call) wire.Args {
		// Fast path: a decoded frame (and the in-memory transport)
		// already holds the inner args as a map — a shallow clone
		// keeps the handler isolated from the caller's map without a
		// JSON round trip.
		if inner, ok := call.Args["args"].(map[string]any); ok {
			return wire.Args(inner).Clone()
		}
		var inner map[string]any
		if err := call.Args.Decode("args", &inner); err != nil || inner == nil {
			return wire.Args{}
		}
		return wire.Args(inner)
	}

	// Mark: phase-1 lock + condition check (§4.3 "Mark X ... an
	// attempted change, which triggers any associated link without
	// actual change on X"). The negotiation id and caller are recorded
	// with the mark so the participant can later resolve the outcome
	// itself (QueryOutcome) if Commit/Abort never arrives.
	obj.Handle("Mark", func(ctx context.Context, call *listener.Call) (any, error) {
		entity := call.Args.String("entity")
		action := call.Args.String("action")
		if entity == "" || action == "" {
			return nil, &wire.RemoteError{Code: wire.CodeBadArgs, Msg: "Mark needs entity and action"}
		}
		args := argsOf(call)
		tok, err := m.markLocal(entity, action, args)
		if err != nil {
			return nil, err
		}
		if nid := call.Args.String("nid"); nid != "" && call.Caller != "" {
			p := &pendingMark{
				Token: tok, Entity: entity, Action: action, Args: args,
				NID: nid, Coordinator: call.Caller, Created: m.clk.Now(),
			}
			// Remember the request's trace so a later resolution sweep
			// stitches its spans under this Mark.
			if span := trace.FromContext(ctx); span != nil {
				p.TraceID, p.SpanID = span.TraceID, span.SpanID
			}
			m.notePendingMark(p)
		}
		return map[string]string{"token": tok}, nil
	})

	// Commit: phase-2 apply + unlock, safe to re-deliver (see
	// commitLocalToken for the full decision table).
	obj.Handle("Commit", func(ctx context.Context, call *listener.Call) (any, error) {
		entity := call.Args.String("entity")
		token := call.Args.String("token")
		nid := call.Args.String("nid")
		action := call.Args.String("action")
		if err := m.commitLocalToken(ctx, entity, token, nid, action, argsOf(call), call.Caller); err != nil {
			return nil, err
		}
		return true, nil
	})

	// MarkBatch/CommitBatch/AbortBatch: the per-node batched forms of
	// the three RPCs above (see batch.go).
	m.registerBatch(obj, argsOf)

	// Abort: release without change; duplicates are no-ops and later
	// Commits for the token are rejected.
	obj.Handle("Abort", func(ctx context.Context, call *listener.Call) (any, error) {
		entity := call.Args.String("entity")
		token := call.Args.String("token")
		m.Locks.Unlock(lockKey(entity), token)
		if token != "" {
			m.noteDecided(token, call.Args.String("nid"), false)
			trace.EventCtx(ctx, "links.decided", trace.String("kind", "abort"))
		}
		return true, nil
	})

	// QueryOutcome: the in-doubt resolution RPC. A participant whose
	// lock TTL is about to lapse asks the coordinator whether the
	// negotiation committed; the answer is presumed-abort for any
	// negotiation without a live commit-journal row.
	obj.Handle("QueryOutcome", func(ctx context.Context, call *listener.Call) (any, error) {
		nid := call.Args.String("nid")
		if nid == "" {
			return nil, &wire.RemoteError{Code: wire.CodeBadArgs, Msg: "QueryOutcome needs nid"}
		}
		return map[string]string{"outcome": m.Outcome(nid, call.Args.String("token"))}, nil
	})

	// Apply: unlocked check+apply (subscription information flow).
	obj.Handle("Apply", func(ctx context.Context, call *listener.Call) (any, error) {
		entity := call.Args.String("entity")
		action := call.Args.String("action")
		a, err := m.action(action)
		if err != nil {
			return nil, err
		}
		args := argsOf(call)
		if a.Check != nil {
			if err := a.Check(entity, args); err != nil {
				return nil, err
			}
		}
		if a.Apply != nil {
			if err := a.Apply(entity, args); err != nil {
				return nil, err
			}
		}
		return true, nil
	})

	// IsAvailable: condition check only (§4.2 op 2 availability
	// negotiation).
	obj.Handle("IsAvailable", func(ctx context.Context, call *listener.Call) (any, error) {
		entity := call.Args.String("entity")
		action := call.Args.String("action")
		a, err := m.action(action)
		if err != nil {
			return nil, err
		}
		if a.Check != nil {
			if err := a.Check(entity, argsOf(call)); err != nil {
				return nil, err
			}
		}
		return true, nil
	})

	// AddLink: install a link row in this node's link database.
	obj.Handle("AddLink", func(ctx context.Context, call *listener.Call) (any, error) {
		raw, err := json.Marshal(call.Args["link"])
		if err != nil {
			return nil, &wire.RemoteError{Code: wire.CodeBadArgs, Msg: "AddLink needs a link"}
		}
		var l Link
		if err := json.Unmarshal(raw, &l); err != nil {
			return nil, &wire.RemoteError{Code: wire.CodeBadArgs, Msg: fmt.Sprintf("bad link: %v", err)}
		}
		if err := m.AddLink(&l); err != nil {
			return nil, err
		}
		return map[string]string{"id": l.ID}, nil
	})

	// DeleteLink: the cascading §4.4 deletion.
	obj.Handle("DeleteLink", func(ctx context.Context, call *listener.Call) (any, error) {
		id := call.Args.String("id")
		visited := call.Args.Strings("visited")
		promoted, err := m.DeleteLink(ctx, id, visited)
		if err != nil {
			return nil, err
		}
		ids := make([]string, 0, len(promoted))
		for _, p := range promoted {
			ids = append(ids, p.Link.ID)
		}
		return map[string]any{"promoted": ids}, nil
	})

	// DeleteLinkLocal: remove only this node's row (dropout, bump).
	obj.Handle("DeleteLinkLocal", func(ctx context.Context, call *listener.Call) (any, error) {
		promoted, err := m.DeleteLinkLocal(ctx, call.Args.String("id"))
		if err != nil {
			return nil, err
		}
		ids := make([]string, 0, len(promoted))
		for _, p := range promoted {
			ids = append(ids, p.Link.ID)
		}
		return map[string]any{"promoted": ids}, nil
	})

	// PromoteLink: tentative -> permanent on this node.
	obj.Handle("PromoteLink", func(ctx context.Context, call *listener.Call) (any, error) {
		if err := m.PromoteLink(call.Args.String("id")); err != nil {
			return nil, err
		}
		return true, nil
	})

	// TriggerLink: fire a specific link's triggers remotely.
	obj.Handle("TriggerLink", func(ctx context.Context, call *listener.Call) (any, error) {
		results, err := m.TriggerLink(ctx, call.Args.String("id"), call.Args.String("event"), argsOf(call))
		if err != nil {
			return nil, err
		}
		ok := true
		var firstErr string
		for _, r := range results {
			if r.Err != nil {
				ok = false
				if firstErr == "" {
					firstErr = r.Err.Error()
				}
			}
		}
		return map[string]any{"ok": ok, "error": firstErr, "fired": len(results)}, nil
	})

	// GetLink / LinksOn: remote inspection.
	obj.Handle("GetLink", func(ctx context.Context, call *listener.Call) (any, error) {
		l, ok := m.GetLink(call.Args.String("id"))
		if !ok {
			return nil, &wire.RemoteError{Code: wire.CodeNoService, Msg: "no such link"}
		}
		return l, nil
	})
	obj.Handle("LinksOn", func(ctx context.Context, call *listener.Call) (any, error) {
		return m.LinksOn(call.Args.String("entity")), nil
	})

	return obj
}
