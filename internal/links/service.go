package links

import (
	"context"
	"encoding/json"
	"fmt"

	"repro/internal/listener"
	"repro/internal/wire"
)

// Object returns the listener object exposing this manager to remote
// negotiators and cascade operations. Register it as links.<user>.
func (m *Manager) Object() *listener.Object {
	obj := listener.NewObject()

	argsOf := func(call *listener.Call) wire.Args {
		var inner map[string]any
		if err := call.Args.Decode("args", &inner); err != nil || inner == nil {
			return wire.Args{}
		}
		return wire.Args(inner)
	}

	// Mark: phase-1 lock + condition check (§4.3 "Mark X ... an
	// attempted change, which triggers any associated link without
	// actual change on X").
	obj.Handle("Mark", func(ctx context.Context, call *listener.Call) (any, error) {
		entity := call.Args.String("entity")
		action := call.Args.String("action")
		if entity == "" || action == "" {
			return nil, &wire.RemoteError{Code: wire.CodeBadArgs, Msg: "Mark needs entity and action"}
		}
		tok, err := m.markLocal(entity, action, argsOf(call))
		if err != nil {
			return nil, err
		}
		return map[string]string{"token": tok}, nil
	})

	// Commit: phase-2 apply + unlock.
	obj.Handle("Commit", func(ctx context.Context, call *listener.Call) (any, error) {
		entity := call.Args.String("entity")
		token := call.Args.String("token")
		if !m.Locks.Holds(lockKey(entity), token) {
			return nil, &wire.RemoteError{Code: wire.CodeConflict, Msg: fmt.Sprintf("links: stale or missing lock on %s", entity)}
		}
		err := m.applyLocal(entity, call.Args.String("action"), argsOf(call))
		m.Locks.Unlock(lockKey(entity), token)
		if err != nil {
			return nil, err
		}
		return true, nil
	})

	// Abort: release without change.
	obj.Handle("Abort", func(ctx context.Context, call *listener.Call) (any, error) {
		m.Locks.Unlock(lockKey(call.Args.String("entity")), call.Args.String("token"))
		return true, nil
	})

	// Apply: unlocked check+apply (subscription information flow).
	obj.Handle("Apply", func(ctx context.Context, call *listener.Call) (any, error) {
		entity := call.Args.String("entity")
		action := call.Args.String("action")
		a, err := m.action(action)
		if err != nil {
			return nil, err
		}
		args := argsOf(call)
		if a.Check != nil {
			if err := a.Check(entity, args); err != nil {
				return nil, err
			}
		}
		if a.Apply != nil {
			if err := a.Apply(entity, args); err != nil {
				return nil, err
			}
		}
		return true, nil
	})

	// IsAvailable: condition check only (§4.2 op 2 availability
	// negotiation).
	obj.Handle("IsAvailable", func(ctx context.Context, call *listener.Call) (any, error) {
		entity := call.Args.String("entity")
		action := call.Args.String("action")
		a, err := m.action(action)
		if err != nil {
			return nil, err
		}
		if a.Check != nil {
			if err := a.Check(entity, argsOf(call)); err != nil {
				return nil, err
			}
		}
		return true, nil
	})

	// AddLink: install a link row in this node's link database.
	obj.Handle("AddLink", func(ctx context.Context, call *listener.Call) (any, error) {
		raw, err := json.Marshal(call.Args["link"])
		if err != nil {
			return nil, &wire.RemoteError{Code: wire.CodeBadArgs, Msg: "AddLink needs a link"}
		}
		var l Link
		if err := json.Unmarshal(raw, &l); err != nil {
			return nil, &wire.RemoteError{Code: wire.CodeBadArgs, Msg: fmt.Sprintf("bad link: %v", err)}
		}
		if err := m.AddLink(&l); err != nil {
			return nil, err
		}
		return map[string]string{"id": l.ID}, nil
	})

	// DeleteLink: the cascading §4.4 deletion.
	obj.Handle("DeleteLink", func(ctx context.Context, call *listener.Call) (any, error) {
		id := call.Args.String("id")
		visited := call.Args.Strings("visited")
		promoted, err := m.DeleteLink(ctx, id, visited)
		if err != nil {
			return nil, err
		}
		ids := make([]string, 0, len(promoted))
		for _, p := range promoted {
			ids = append(ids, p.Link.ID)
		}
		return map[string]any{"promoted": ids}, nil
	})

	// DeleteLinkLocal: remove only this node's row (dropout, bump).
	obj.Handle("DeleteLinkLocal", func(ctx context.Context, call *listener.Call) (any, error) {
		promoted, err := m.DeleteLinkLocal(ctx, call.Args.String("id"))
		if err != nil {
			return nil, err
		}
		ids := make([]string, 0, len(promoted))
		for _, p := range promoted {
			ids = append(ids, p.Link.ID)
		}
		return map[string]any{"promoted": ids}, nil
	})

	// PromoteLink: tentative -> permanent on this node.
	obj.Handle("PromoteLink", func(ctx context.Context, call *listener.Call) (any, error) {
		if err := m.PromoteLink(call.Args.String("id")); err != nil {
			return nil, err
		}
		return true, nil
	})

	// TriggerLink: fire a specific link's triggers remotely.
	obj.Handle("TriggerLink", func(ctx context.Context, call *listener.Call) (any, error) {
		results, err := m.TriggerLink(ctx, call.Args.String("id"), call.Args.String("event"), argsOf(call))
		if err != nil {
			return nil, err
		}
		ok := true
		var firstErr string
		for _, r := range results {
			if r.Err != nil {
				ok = false
				if firstErr == "" {
					firstErr = r.Err.Error()
				}
			}
		}
		return map[string]any{"ok": ok, "error": firstErr, "fired": len(results)}, nil
	})

	// GetLink / LinksOn: remote inspection.
	obj.Handle("GetLink", func(ctx context.Context, call *listener.Call) (any, error) {
		l, ok := m.GetLink(call.Args.String("id"))
		if !ok {
			return nil, &wire.RemoteError{Code: wire.CodeNoService, Msg: "no such link"}
		}
		return l, nil
	})
	obj.Handle("LinksOn", func(ctx context.Context, call *listener.Call) (any, error) {
		return m.LinksOn(call.Args.String("entity")), nil
	})

	return obj
}
