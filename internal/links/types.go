// Package links implements SyD coordination links, the paper's primary
// contribution (§4): abstract relationships among entities with an
// underlying constraint and event-triggered actions.
//
// A link is "an entry in a data-store associated with an entity" and
// is "specified by its type (subscription / negotiation), its subtype
// (permanent / tentative), references to one or more entities,
// triggers associated with each reference (event-condition-action
// rules), a priority, a constraint (and, or, xor), a link creation
// time and a link expiry time" (§4.1). This package provides:
//
//   - the link database (SyD_Link, SyD_WaitingLink, SyD_LinkMethod
//     tables, §4.2 ops 1, 3, 5) stored in the node's embedded store;
//   - the two-phase mark-and-lock negotiation protocol with
//     and / or / xor / k-of-n constraints (§4.3);
//   - automatic tentative→permanent promotion by priority when a
//     blocking link is deleted (§4.2 op 3);
//   - cascading link deletion across users (§4.2 op 4, §4.4);
//   - subscription propagation and method forwarding (§4.2 op 5);
//   - periodic link expiry (§4.2 op 6).
package links

import (
	"fmt"
	"time"

	"repro/internal/wire"
)

// Type discriminates the two coordination link types (§4.2).
type Type string

// Link types.
const (
	// Subscription links "allow automatic flow of information from a
	// source entity to other entities that subscribe to it".
	Subscription Type = "subscription"
	// Negotiation links "enforce dependencies and constraints across
	// entities and trigger changes based on constraint satisfaction".
	Negotiation Type = "negotiation"
)

// Subtype is the permanent/tentative axis (§4.1).
type Subtype string

// Link subtypes.
const (
	Permanent Subtype = "permanent"
	Tentative Subtype = "tentative"
)

// Constraint is the negotiation logic (§4.3). Or and Xor generalize to
// "at least k of n" and "exactly k of n" via Link.K (K==0 means k=1).
type Constraint string

// Negotiation constraints.
const (
	And Constraint = "and" // all targets must change
	Or  Constraint = "or"  // at least k targets must change
	Xor Constraint = "xor" // exactly k targets must change
)

// EntityRef names an entity on some user's device: the user id plus a
// device-local entity id (for the calendar, "slot:2003-04-22:14").
type EntityRef struct {
	User   string `json:"user"`
	Entity string `json:"entity"`
}

// String implements fmt.Stringer.
func (e EntityRef) String() string { return e.User + "/" + e.Entity }

// Less orders entity refs globally; negotiation-and acquires locks in
// this order so overlapping negotiations cannot deadlock.
func (e EntityRef) Less(o EntityRef) bool {
	if e.User != o.User {
		return e.User < o.User
	}
	return e.Entity < o.Entity
}

// Trigger is the ECA rule attached to a link (§4.1: "triggers
// associated with each reference"). Event selects when it fires;
// exactly one of Action or Method says what it does.
type Trigger struct {
	// Event is the firing event: "change", "delete", "promote", or
	// an application-defined name.
	Event string `json:"event"`
	// Action, when set, is an entity action (registered with the
	// Manager) executed on the link's targets — under negotiation
	// for negotiation links, best-effort for subscription links.
	Action string `json:"action,omitempty"`
	// Service/Method, when set, invoke a SyD service method instead
	// of an entity action. Service may contain "%s", replaced with
	// the target's user id.
	Service string `json:"service,omitempty"`
	Method  string `json:"method,omitempty"`
	// Args are static arguments merged under the runtime event args
	// (runtime wins on key conflict).
	Args wire.Args `json:"args,omitempty"`
}

// Link is one coordination link row. The same logical link is stored
// under the same ID on every participating user's device; cascading
// operations key on the ID.
type Link struct {
	ID         string      `json:"id"`
	Type       Type        `json:"type"`
	Subtype    Subtype     `json:"subtype"`
	Owner      EntityRef   `json:"owner"`   // the local entity this row is attached to
	Targets    []EntityRef `json:"targets"` // linked entities
	Constraint Constraint  `json:"constraint,omitempty"`
	K          int         `json:"k,omitempty"` // k for k-of-n (0 = 1)
	Priority   int         `json:"priority"`
	Triggers   []Trigger   `json:"triggers,omitempty"`
	// WaitingOn is the blocking link's ID for tentative links
	// (SyD_WaitingLink, §4.2 op 3). Empty for permanent links.
	WaitingOn string `json:"waitingOn,omitempty"`
	// Group batches waiting links that promote together (§4.2 op 3:
	// "groups of links waiting on a particular link"); the calendar
	// uses the meeting id.
	Group   string    `json:"group,omitempty"`
	Created time.Time `json:"created"`
	// Expires is the expiry time; zero means never (§4.2 op 6).
	Expires time.Time `json:"expires,omitempty"`
}

// Validate checks structural invariants.
func (l *Link) Validate() error {
	if l.ID == "" {
		return fmt.Errorf("links: link needs an ID")
	}
	switch l.Type {
	case Subscription, Negotiation:
	default:
		return fmt.Errorf("links: bad type %q", l.Type)
	}
	switch l.Subtype {
	case Permanent, Tentative:
	default:
		return fmt.Errorf("links: bad subtype %q", l.Subtype)
	}
	if l.Type == Negotiation {
		switch l.Constraint {
		case And, Or, Xor:
		default:
			return fmt.Errorf("links: negotiation link needs a constraint, got %q", l.Constraint)
		}
	}
	if l.Owner.User == "" || l.Owner.Entity == "" {
		return fmt.Errorf("links: link needs an owner entity")
	}
	if l.K < 0 {
		return fmt.Errorf("links: negative k")
	}
	if l.Subtype == Tentative && l.WaitingOn == "" {
		// A tentative link not waiting on anything is legal (it may
		// be queued at a slot awaiting a status change, §5), so no
		// error — but a WaitingOn on a permanent link is not.
		return nil
	}
	if l.Subtype == Permanent && l.WaitingOn != "" {
		return fmt.Errorf("links: permanent link cannot wait on %q", l.WaitingOn)
	}
	return nil
}

// EffectiveK returns the k for k-of-n constraints (defaulting to 1).
func (l *Link) EffectiveK() int {
	if l.K <= 0 {
		return 1
	}
	return l.K
}

// TriggersFor returns the link's triggers firing on event.
func (l *Link) TriggersFor(event string) []Trigger {
	var out []Trigger
	for _, t := range l.Triggers {
		if t.Event == event {
			out = append(out, t)
		}
	}
	return out
}

// MergedArgs merges a trigger's static args under runtime args.
func (t Trigger) MergedArgs(runtime wire.Args) wire.Args {
	out := make(wire.Args, len(t.Args)+len(runtime))
	for k, v := range t.Args {
		out[k] = v
	}
	for k, v := range runtime {
		out[k] = v
	}
	return out
}
