package links

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/trace"
	"repro/internal/wire"
)

// Spec describes one negotiation: attempt action on every target and
// succeed according to the constraint (§4.3 semantics).
//
// When Local is non-nil the activating entity itself participates:
// it is marked and locked first ("Mark A for change and Lock A"),
// changed only if the constraint is satisfied, and unlocked last.
type Spec struct {
	Action     string
	Args       wire.Args
	Targets    []EntityRef
	Constraint Constraint
	K          int // k for k-of-n (0 means 1)

	// Local, if set, is the activator's own change.
	Local *LocalChange
}

// LocalChange is the activating entity's own mark/change.
type LocalChange struct {
	Entity string
	Action string
	Args   wire.Args
}

// Step is one protocol step in the negotiation trace; the trace of a
// negotiation-or over three objects reproduces the paper's Figure 4
// activity diagram.
type Step struct {
	Phase  string `json:"phase"`  // "mark" | "constraint" | "change" | "unlock" | "abort"
	Entity string `json:"entity"` // entity acted on ("" for constraint steps)
	OK     bool   `json:"ok"`
	Detail string `json:"detail,omitempty"`
}

// State classifies how a negotiation resolved.
type State string

// Negotiation states.
const (
	// StateCommitted: every marked target applied the change.
	StateCommitted State = "committed"
	// StateAborted: no target applied the change (constraint failure
	// or every commit definitively rejected before anything landed).
	StateAborted State = "aborted"
	// StateInDoubt: phase 2 diverged — some targets committed, others
	// are still pending (the journal sweeper keeps re-sending) or were
	// definitively rejected. Never reported as a clean success.
	StateInDoubt State = "in-doubt"
)

// Result is a negotiation outcome.
type Result struct {
	OK bool `json:"ok"`
	// State is the honest protocol outcome. OK is true only for
	// StateCommitted; a phase-2 divergence is StateInDoubt with
	// OK=false and a typed *InDoubtError from Negotiate.
	State State `json:"state,omitempty"`
	// NID is the negotiation id (journal key; present whenever the
	// negotiation reached phase 1).
	NID      string      `json:"nid,omitempty"`
	Accepted []EntityRef `json:"accepted"` // targets changed
	Rejected []EntityRef `json:"rejected"` // targets that could not be marked or definitively refused commit
	// InDoubt lists marked targets whose Commit has not been
	// acknowledged yet; the commit-retry sweeper is driving them.
	InDoubt []EntityRef `json:"inDoubt,omitempty"`
	Trace   []Step      `json:"trace"`
}

// InDoubtError is returned by Negotiate when the commit phase
// diverged: the COMMIT decision is journaled and the retry sweeper
// will keep re-sending, but at return time not every target has
// acknowledged. Callers must not treat the change as fully applied —
// and must not treat it as absent either.
type InDoubtError struct {
	NID       string
	Committed []EntityRef
	Pending   []EntityRef
	Failed    []EntityRef
}

// Error implements error.
func (e *InDoubtError) Error() string {
	return fmt.Sprintf("links: negotiation %s in doubt: %d committed, %d pending retry, %d failed",
		e.NID, len(e.Committed), len(e.Pending), len(e.Failed))
}

// Code aligns InDoubtError with the wire error taxonomy.
func (e *InDoubtError) Code() wire.ErrCode { return wire.CodeInDoubt }

// IsInDoubt reports whether err (anywhere in its chain) is an
// InDoubtError.
func IsInDoubt(err error) bool {
	var ide *InDoubtError
	return errors.As(err, &ide)
}

// ErrConstraint is returned (wrapped in a RemoteError) when the marked
// set does not satisfy the constraint.
func errConstraint(c Constraint, k, locked, n int) error {
	return &wire.RemoteError{
		Code: wire.CodeConflict,
		Msg:  fmt.Sprintf("links: constraint %s(k=%d) unsatisfied: %d of %d targets markable", c, k, locked, n),
	}
}

// markResult is a phase-1 outcome for one target.
type markResult struct {
	ref   EntityRef
	token string
	err   error
}

// Negotiate runs the two-phase mark-and-lock protocol of §4.3.
//
// Phase 1 marks (try-locks + condition-checks) the targets:
// sequentially in global entity order for And (every target must lock,
// and ordering prevents deadlock between overlapping negotiations),
// concurrently for Or/Xor (try-locks cannot deadlock and the paper's
// semantics lock "those entities that can be successfully changed").
//
// The constraint is then evaluated on the locked set: And needs all,
// Or at least k, Xor exactly k. On success the local change (if any)
// and every locked target are changed and unlocked; on failure every
// acquired lock is released and nothing changes anywhere.
func (m *Manager) Negotiate(ctx context.Context, spec Spec) (*Result, error) {
	ctx, span := m.tracerRef().StartSpan(ctx, "links.Negotiate")
	res, err := m.negotiate(ctx, span, spec)
	if span != nil {
		span.Annotate(
			trace.String("nid", res.NID),
			trace.String("state", string(res.State)),
			trace.String("constraint", string(spec.Constraint)),
			trace.Int("targets", len(spec.Targets)),
		)
		span.FinishErr(err)
	}
	return res, err
}

func (m *Manager) negotiate(ctx context.Context, span *trace.Span, spec Spec) (*Result, error) {
	res := &Result{NID: NewNegotiationID(), State: StateAborted}
	// Register the negotiation as in flight before the first Mark goes
	// out: a participant fault sweep that asks about it while no
	// journal row exists yet must hear "unknown", not a presumed abort
	// that would release a mark this negotiation is about to commit.
	// Dropped only on return, when the fate is final and published.
	m.noteInflight(res.NID)
	defer m.dropInflight(res.NID)
	k := spec.K
	if k <= 0 {
		k = 1
	}
	if spec.Constraint == "" {
		spec.Constraint = And
	}

	// Mark A for change and lock A.
	var localToken string
	if spec.Local != nil {
		tok, err := m.markLocal(spec.Local.Entity, spec.Local.Action, spec.Local.Args)
		res.Trace = append(res.Trace, Step{Phase: "mark", Entity: m.self + "/" + spec.Local.Entity, OK: err == nil, Detail: errDetail(err)})
		if err != nil {
			res.Rejected = append(res.Rejected, EntityRef{User: m.self, Entity: spec.Local.Entity})
			m.count("outcome", wire.CodeConflict)
			return res, fmt.Errorf("links: activator mark failed: %w", err)
		}
		localToken = tok
		defer func() {
			// Whatever happens, A's lock is released at the end
			// ("Unlock A" is the last line of every §4.3 semantic).
			m.Locks.Unlock(lockKey(spec.Local.Entity), localToken)
		}()
	}

	targets := append([]EntityRef(nil), spec.Targets...)
	var marks []markResult
	if spec.Constraint == And {
		sort.Slice(targets, func(i, j int) bool { return targets[i].Less(targets[j]) })
		marks = m.markSequential(ctx, res.NID, targets, spec.Action, spec.Args, res)
	} else {
		marks = m.markParallel(ctx, res.NID, targets, spec.Action, spec.Args, res)
	}

	locked := 0
	for _, mr := range marks {
		if mr.err == nil {
			locked++
		} else {
			res.Rejected = append(res.Rejected, mr.ref)
		}
	}

	satisfied := false
	switch spec.Constraint {
	case And:
		satisfied = locked == len(targets)
	case Or:
		satisfied = locked >= k
	case Xor:
		satisfied = locked == k
	}
	res.Trace = append(res.Trace, Step{
		Phase: "constraint", OK: satisfied,
		Detail: fmt.Sprintf("%s k=%d locked=%d n=%d", spec.Constraint, k, locked, len(targets)),
	})

	if !satisfied {
		m.abortMarked(ctx, res.NID, marks)
		for _, mr := range marks {
			if mr.err == nil {
				res.Trace = append(res.Trace, Step{Phase: "abort", Entity: mr.ref.String(), OK: true})
			}
		}
		m.count("outcome", wire.CodeConflict)
		return res, errConstraint(spec.Constraint, k, locked, len(targets))
	}

	// The constraint holds: the decision is COMMIT. Persist it — with
	// every marked target and its lock token — before changing
	// anything, so a crash or lost Commit from here on is recoverable
	// by the retry sweeper instead of silently divergent.
	var rec *journalRec
	if locked > 0 {
		// NextRetry starts one backoff out: the inline phase 2 is being
		// driven right now, and the sweeper must not redrive the same
		// row concurrently with it.
		rec = &journalRec{
			ID: res.NID, Action: spec.Action, Args: spec.Args,
			Local: spec.Local, Created: m.clk.Now(),
			NextRetry: m.clk.Now().Add(backoffAfter(m.tune(), 1)),
		}
		if span != nil {
			// The row carries the trace identity so recovery sweeps —
			// possibly after a restart — rejoin this negotiation's trace.
			rec.TraceID, rec.SpanID = span.TraceID, span.SpanID
		}
		for _, mr := range marks {
			if mr.err == nil {
				rec.Pending = append(rec.Pending, journalTarget{Ref: mr.ref, Token: mr.token})
			}
		}
		if err := m.journalBegin(rec); err != nil {
			// Without a journal row recovery is impossible; abort
			// while nothing has changed rather than risk divergence.
			m.abortMarked(ctx, res.NID, marks)
			m.count("outcome", wire.CodeInternal)
			return res, fmt.Errorf("links: journal negotiation intent: %w", err)
		}
		res.Trace = append(res.Trace, Step{Phase: "journal", Detail: res.NID, OK: true})
		if span != nil {
			attrs := []trace.Attr{trace.Int("targets", len(rec.Pending))}
			if lsn, ok := m.lastLSN(); ok {
				attrs = append(attrs, trace.Int64("lsn", int64(lsn)))
			}
			span.AddEvent("journal.begin", attrs...)
		}
	}

	// Change A; change the locked entities; unlock.
	if spec.Local != nil {
		err := m.applyLocal(spec.Local.Entity, spec.Local.Action, spec.Local.Args)
		res.Trace = append(res.Trace, Step{Phase: "change", Entity: m.self + "/" + spec.Local.Entity, OK: err == nil, Detail: errDetail(err)})
		if err != nil {
			// Local apply failed after its own check passed under
			// lock — nothing has been committed anywhere yet, so the
			// decision can still be flipped to abort everywhere.
			m.abortMarked(ctx, res.NID, marks)
			if rec != nil {
				m.journalRetire(rec.ID)
			}
			m.count("outcome", wire.CodeInternal)
			return res, fmt.Errorf("links: activator change failed: %w", err)
		}
		if rec != nil {
			rec.LocalDone = true
			m.journalUpdate(rec)
		}
	}

	marked := make([]journalTarget, 0, locked)
	for _, mr := range marks {
		if mr.err == nil {
			marked = append(marked, journalTarget{Ref: mr.ref, Token: mr.token})
		}
	}
	commitErrs := m.commitGrouped(ctx, res.NID, marked, spec.Action, spec.Args, false)
	var pendingRefs, failedRefs []EntityRef
	var stillPending []journalTarget
	for i, tgt := range marked {
		err := commitErrs[i]
		res.Trace = append(res.Trace, Step{Phase: "change", Entity: tgt.Ref.String(), OK: err == nil, Detail: errDetail(err)})
		switch {
		case err == nil:
			res.Accepted = append(res.Accepted, tgt.Ref)
			res.Trace = append(res.Trace, Step{Phase: "unlock", Entity: tgt.Ref.String(), OK: true})
		case transientErr(err):
			// The Commit (or its ack) was lost: the target may or may
			// not have applied. The sweeper re-sends until it answers.
			pendingRefs = append(pendingRefs, tgt.Ref)
			stillPending = append(stillPending, tgt)
		default:
			// Definitive rejection (stale/stolen token, decided
			// abort): re-sending cannot change it.
			failedRefs = append(failedRefs, tgt.Ref)
			res.Rejected = append(res.Rejected, tgt.Ref)
		}
	}

	if rec != nil {
		rec.Committed = res.Accepted
		rec.Failed = failedRefs
		rec.Pending = stillPending
		if len(stillPending) == 0 {
			m.journalRetire(rec.ID)
			span.AddEvent("journal.retire")
		} else {
			tun := m.tune()
			rec.Attempts = 1
			rec.NextRetry = m.clk.Now().Add(backoffAfter(tun, 1))
			m.journalUpdate(rec)
			span.AddEvent("journal.pending", trace.Int("targets", len(stillPending)))
		}
	}

	if len(pendingRefs) > 0 || len(failedRefs) > 0 {
		// Phase 2 diverged: never report a clean success.
		res.InDoubt = pendingRefs
		if len(res.Accepted) == 0 && len(pendingRefs) == 0 && spec.Local == nil {
			// Nothing landed anywhere: honest outcome is a full abort.
			res.State = StateAborted
		} else {
			res.State = StateInDoubt
		}
		m.count("outcome", wire.CodeInDoubt)
		return res, &InDoubtError{
			NID: res.NID, Committed: res.Accepted, Pending: pendingRefs, Failed: failedRefs,
		}
	}
	res.OK = true
	res.State = StateCommitted
	m.count("outcome", wire.CodeOK)
	return res, nil
}

func errDetail(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// markSequential marks targets in the given (user-major sorted) order,
// stopping at the first failure (And semantics: any failure already
// dooms the constraint). Contiguous same-node runs ride one MarkBatch
// each; the run boundaries preserve the global entity order, so
// overlapping negotiations still acquire locks in the same order as
// the per-entity protocol and cannot deadlock.
func (m *Manager) markSequential(ctx context.Context, nid string, targets []EntityRef, action string, args wire.Args, res *Result) []markResult {
	marks := make([]markResult, 0, len(targets))
	failed := false
	for start := 0; start < len(targets); {
		end := start + 1
		for end < len(targets) && targets[end].User == targets[start].User {
			end++
		}
		if failed {
			for _, ref := range targets[start:end] {
				marks = append(marks, markResult{ref: ref, err: errSkippedMark()})
			}
			start = end
			continue
		}
		for _, mr := range m.markRun(ctx, nid, targets[start:end], action, args, true) {
			marks = append(marks, mr)
			if mr.err != nil {
				failed = true
			}
		}
		start = end
	}
	for _, mr := range marks {
		res.appendMark(mr.ref, mr.err)
	}
	return marks
}

// markParallel marks all targets concurrently (Or/Xor semantics), one
// goroutine — and for co-located targets, one MarkBatch — per node.
func (m *Manager) markParallel(ctx context.Context, nid string, targets []EntityRef, action string, args wire.Args, res *Result) []markResult {
	marks := make([]markResult, len(targets))
	groups := make(map[string][]int, len(targets))
	for i, ref := range targets {
		groups[ref.User] = append(groups[ref.User], i)
	}
	var wg sync.WaitGroup
	for _, idxs := range groups {
		wg.Add(1)
		go func(idxs []int) {
			defer wg.Done()
			run := make([]EntityRef, len(idxs))
			for j, i := range idxs {
				run[j] = targets[i]
			}
			for j, mr := range m.markRun(ctx, nid, run, action, args, false) {
				marks[idxs[j]] = mr
			}
		}(idxs)
	}
	wg.Wait()
	for _, mr := range marks {
		res.appendMark(mr.ref, mr.err)
	}
	return marks
}

func (r *Result) appendMark(ref EntityRef, err error) {
	r.Trace = append(r.Trace, Step{Phase: "mark", Entity: ref.String(), OK: err == nil, Detail: errDetail(err)})
}

// lockKey namespaces entity locks.
func lockKey(entity string) string { return "entity:" + entity }

// markLocal locks + checks a local entity.
func (m *Manager) markLocal(entity, action string, args wire.Args) (string, error) {
	a, err := m.action(action)
	if err != nil {
		return "", err
	}
	tok, ok := m.Locks.TryLock(lockKey(entity), m.self)
	if !ok {
		return "", &wire.RemoteError{Code: wire.CodeConflict, Msg: fmt.Sprintf("links: entity %s is locked", entity)}
	}
	if a.Check != nil {
		if err := a.Check(entity, args); err != nil {
			m.Locks.Unlock(lockKey(entity), tok)
			return "", err
		}
	}
	return tok, nil
}

// applyLocal applies an action to a local entity (lock already held by
// the negotiation).
func (m *Manager) applyLocal(entity, action string, args wire.Args) error {
	a, err := m.action(action)
	if err != nil {
		return err
	}
	if a.Apply != nil {
		return a.Apply(entity, args)
	}
	return nil
}

// markTarget marks a (possibly remote) target entity. The negotiation
// id rides along so the participant can resolve the outcome itself if
// neither Commit nor Abort ever reaches it.
func (m *Manager) markTarget(ctx context.Context, nid string, ref EntityRef, action string, args wire.Args) (string, error) {
	ctx, span := trace.Start(ctx, "links.Mark")
	if span != nil {
		span.Annotate(trace.String("target", ref.String()))
	}
	tok, err := m.markTargetInner(ctx, nid, ref, action, args)
	span.FinishErr(err)
	return tok, err
}

func (m *Manager) markTargetInner(ctx context.Context, nid string, ref EntityRef, action string, args wire.Args) (string, error) {
	if err := m.markFaultFor(nid, ref); err != nil {
		return "", err
	}
	if ref.User == m.self {
		return m.markLocal(ref.Entity, action, args)
	}
	var out struct {
		Token string `json:"token"`
	}
	err := m.eng.Invoke(ctx, ServiceFor(ref.User), "Mark", wire.Args{
		"entity": ref.Entity, "action": action, "args": map[string]any(args), "nid": nid,
	}, &out)
	if err != nil {
		return "", err
	}
	return out.Token, nil
}

// commitTarget applies the change at a marked target and releases its
// lock. With qos set (the retry sweeper's path) the Commit rides
// engine.InvokeQoS so one sweep absorbs short transient blips; the
// first in-line attempt uses a plain Invoke — a failure there is
// journaled, not blocking.
func (m *Manager) commitTarget(ctx context.Context, nid string, ref EntityRef, token, action string, args wire.Args, qos bool) error {
	ctx, span := trace.Start(ctx, "links.Commit")
	if span != nil {
		span.Annotate(trace.String("target", ref.String()))
		if qos {
			span.Annotate(trace.Bool("redrive", true))
		}
	}
	err := m.commitTargetInner(ctx, nid, ref, token, action, args, qos)
	span.FinishErr(err)
	return err
}

func (m *Manager) commitTargetInner(ctx context.Context, nid string, ref EntityRef, token, action string, args wire.Args, qos bool) error {
	if err := m.commitFaultFor(nid, ref); err != nil {
		return err
	}
	if ref.User == m.self {
		// Same protocol as the remote Commit handler: duplicate ack,
		// stale-token rejection, and — crucial after a coordinator
		// restart wiped the in-memory lock table — the late-commit
		// path that re-locks and re-runs Check instead of applying
		// blindly over whatever booked the entity since.
		return m.commitLocalToken(ctx, ref.Entity, token, nid, action, args, m.self)
	}
	callArgs := wire.Args{
		"entity": ref.Entity, "token": token, "action": action, "args": map[string]any(args), "nid": nid,
	}
	if qos {
		return m.eng.InvokeQoS(ctx, commitQoS(m.tune()), ServiceFor(ref.User), "Commit", callArgs, nil)
	}
	return m.eng.Invoke(ctx, ServiceFor(ref.User), "Commit", callArgs, nil)
}

// abortTarget releases a marked target without changing it.
func (m *Manager) abortTarget(ctx context.Context, nid string, ref EntityRef, token string) {
	ctx, span := trace.Start(ctx, "links.Abort")
	if span != nil {
		span.Annotate(trace.String("target", ref.String()))
		defer span.Finish()
	}
	if ref.User == m.self {
		m.Locks.Unlock(lockKey(ref.Entity), token)
		return
	}
	_ = m.eng.Invoke(ctx, ServiceFor(ref.User), "Abort", wire.Args{
		"entity": ref.Entity, "token": token, "nid": nid,
	}, nil)
}

// CheckAvailable runs the action's Check (no lock, no change) against
// a possibly-remote entity — the availability probe of §4.2 op 2.
func (m *Manager) CheckAvailable(ctx context.Context, ref EntityRef, action string, args wire.Args) error {
	ctx, span := trace.Start(ctx, "links.Check")
	if span != nil {
		span.Annotate(trace.String("target", ref.String()), trace.String("action", action))
	}
	err := m.checkAvailableInner(ctx, ref, action, args)
	span.FinishErr(err)
	return err
}

func (m *Manager) checkAvailableInner(ctx context.Context, ref EntityRef, action string, args wire.Args) error {
	if ref.User == m.self {
		a, err := m.action(action)
		if err != nil {
			return err
		}
		if a.Check != nil {
			return a.Check(ref.Entity, args)
		}
		return nil
	}
	return m.eng.Invoke(ctx, ServiceFor(ref.User), "IsAvailable", wire.Args{
		"entity": ref.Entity, "action": action, "args": map[string]any(args),
	}, nil)
}

// CreateNegotiatedLink implements §4.2 op 2: negotiate availability
// with every participant and create the link rows (same ID at every
// participant) only if all are available. The link row installed at
// each participant has that participant's entity as owner and the
// remaining entities as targets.
func (m *Manager) CreateNegotiatedLink(ctx context.Context, template *Link, action string, args wire.Args) (string, error) {
	if template.ID == "" {
		template.ID = NewLinkID()
	}
	all := append([]EntityRef{template.Owner}, template.Targets...)
	for _, ref := range all {
		if err := m.CheckAvailable(ctx, ref, action, args); err != nil {
			return "", fmt.Errorf("links: %s not available: %w", ref, err)
		}
	}
	for i, ref := range all {
		row := *template
		row.Owner = ref
		row.Targets = nil
		for j, other := range all {
			if j != i {
				row.Targets = append(row.Targets, other)
			}
		}
		if err := m.InstallAt(ctx, ref.User, &row); err != nil {
			return "", fmt.Errorf("links: install at %s: %w", ref.User, err)
		}
	}
	return template.ID, nil
}
