package links

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/wire"
)

// Spec describes one negotiation: attempt action on every target and
// succeed according to the constraint (§4.3 semantics).
//
// When Local is non-nil the activating entity itself participates:
// it is marked and locked first ("Mark A for change and Lock A"),
// changed only if the constraint is satisfied, and unlocked last.
type Spec struct {
	Action     string
	Args       wire.Args
	Targets    []EntityRef
	Constraint Constraint
	K          int // k for k-of-n (0 means 1)

	// Local, if set, is the activator's own change.
	Local *LocalChange
}

// LocalChange is the activating entity's own mark/change.
type LocalChange struct {
	Entity string
	Action string
	Args   wire.Args
}

// Step is one protocol step in the negotiation trace; the trace of a
// negotiation-or over three objects reproduces the paper's Figure 4
// activity diagram.
type Step struct {
	Phase  string `json:"phase"`  // "mark" | "constraint" | "change" | "unlock" | "abort"
	Entity string `json:"entity"` // entity acted on ("" for constraint steps)
	OK     bool   `json:"ok"`
	Detail string `json:"detail,omitempty"`
}

// Result is a negotiation outcome.
type Result struct {
	OK       bool        `json:"ok"`
	Accepted []EntityRef `json:"accepted"` // targets changed
	Rejected []EntityRef `json:"rejected"` // targets that could not be marked
	Trace    []Step      `json:"trace"`
}

// ErrConstraint is returned (wrapped in a RemoteError) when the marked
// set does not satisfy the constraint.
func errConstraint(c Constraint, k, locked, n int) error {
	return &wire.RemoteError{
		Code: wire.CodeConflict,
		Msg:  fmt.Sprintf("links: constraint %s(k=%d) unsatisfied: %d of %d targets markable", c, k, locked, n),
	}
}

// markResult is a phase-1 outcome for one target.
type markResult struct {
	ref   EntityRef
	token string
	err   error
}

// Negotiate runs the two-phase mark-and-lock protocol of §4.3.
//
// Phase 1 marks (try-locks + condition-checks) the targets:
// sequentially in global entity order for And (every target must lock,
// and ordering prevents deadlock between overlapping negotiations),
// concurrently for Or/Xor (try-locks cannot deadlock and the paper's
// semantics lock "those entities that can be successfully changed").
//
// The constraint is then evaluated on the locked set: And needs all,
// Or at least k, Xor exactly k. On success the local change (if any)
// and every locked target are changed and unlocked; on failure every
// acquired lock is released and nothing changes anywhere.
func (m *Manager) Negotiate(ctx context.Context, spec Spec) (*Result, error) {
	res := &Result{}
	k := spec.K
	if k <= 0 {
		k = 1
	}
	if spec.Constraint == "" {
		spec.Constraint = And
	}

	// Mark A for change and lock A.
	var localToken string
	if spec.Local != nil {
		tok, err := m.markLocal(spec.Local.Entity, spec.Local.Action, spec.Local.Args)
		res.Trace = append(res.Trace, Step{Phase: "mark", Entity: m.self + "/" + spec.Local.Entity, OK: err == nil, Detail: errDetail(err)})
		if err != nil {
			res.Rejected = append(res.Rejected, EntityRef{User: m.self, Entity: spec.Local.Entity})
			return res, fmt.Errorf("links: activator mark failed: %w", err)
		}
		localToken = tok
		defer func() {
			// Whatever happens, A's lock is released at the end
			// ("Unlock A" is the last line of every §4.3 semantic).
			m.Locks.Unlock(lockKey(spec.Local.Entity), localToken)
		}()
	}

	targets := append([]EntityRef(nil), spec.Targets...)
	var marks []markResult
	if spec.Constraint == And {
		sort.Slice(targets, func(i, j int) bool { return targets[i].Less(targets[j]) })
		marks = m.markSequential(ctx, targets, spec.Action, spec.Args, res)
	} else {
		marks = m.markParallel(ctx, targets, spec.Action, spec.Args, res)
	}

	locked := 0
	for _, mr := range marks {
		if mr.err == nil {
			locked++
		} else {
			res.Rejected = append(res.Rejected, mr.ref)
		}
	}

	satisfied := false
	switch spec.Constraint {
	case And:
		satisfied = locked == len(targets)
	case Or:
		satisfied = locked >= k
	case Xor:
		satisfied = locked == k
	}
	res.Trace = append(res.Trace, Step{
		Phase: "constraint", OK: satisfied,
		Detail: fmt.Sprintf("%s k=%d locked=%d n=%d", spec.Constraint, k, locked, len(targets)),
	})

	if !satisfied {
		for _, mr := range marks {
			if mr.err == nil {
				m.abortTarget(ctx, mr.ref, mr.token)
				res.Trace = append(res.Trace, Step{Phase: "abort", Entity: mr.ref.String(), OK: true})
			}
		}
		return res, errConstraint(spec.Constraint, k, locked, len(targets))
	}

	// Change A; change the locked entities; unlock.
	if spec.Local != nil {
		err := m.applyLocal(spec.Local.Entity, spec.Local.Action, spec.Local.Args)
		res.Trace = append(res.Trace, Step{Phase: "change", Entity: m.self + "/" + spec.Local.Entity, OK: err == nil, Detail: errDetail(err)})
		if err != nil {
			// Local apply failed after its own check passed under
			// lock — abort everyone to keep targets unchanged.
			for _, mr := range marks {
				if mr.err == nil {
					m.abortTarget(ctx, mr.ref, mr.token)
				}
			}
			return res, fmt.Errorf("links: activator change failed: %w", err)
		}
	}
	for _, mr := range marks {
		if mr.err != nil {
			continue
		}
		err := m.commitTarget(ctx, mr.ref, mr.token, spec.Action, spec.Args)
		res.Trace = append(res.Trace, Step{Phase: "change", Entity: mr.ref.String(), OK: err == nil, Detail: errDetail(err)})
		if err == nil {
			res.Accepted = append(res.Accepted, mr.ref)
		} else {
			res.Rejected = append(res.Rejected, mr.ref)
		}
		res.Trace = append(res.Trace, Step{Phase: "unlock", Entity: mr.ref.String(), OK: true})
	}
	res.OK = true
	return res, nil
}

func errDetail(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// markSequential marks targets one at a time in the given order,
// stopping at the first failure (And semantics: any failure already
// dooms the constraint).
func (m *Manager) markSequential(ctx context.Context, targets []EntityRef, action string, args wire.Args, res *Result) []markResult {
	marks := make([]markResult, 0, len(targets))
	failed := false
	for _, ref := range targets {
		if failed {
			marks = append(marks, markResult{ref: ref, err: fmt.Errorf("links: skipped after earlier mark failure")})
			continue
		}
		tok, err := m.markTarget(ctx, ref, action, args)
		res.appendMark(ref, err)
		marks = append(marks, markResult{ref: ref, token: tok, err: err})
		if err != nil {
			failed = true
		}
	}
	return marks
}

// markParallel marks all targets concurrently (Or/Xor semantics).
func (m *Manager) markParallel(ctx context.Context, targets []EntityRef, action string, args wire.Args, res *Result) []markResult {
	marks := make([]markResult, len(targets))
	var wg sync.WaitGroup
	for i, ref := range targets {
		wg.Add(1)
		go func(i int, ref EntityRef) {
			defer wg.Done()
			tok, err := m.markTarget(ctx, ref, action, args)
			marks[i] = markResult{ref: ref, token: tok, err: err}
		}(i, ref)
	}
	wg.Wait()
	for _, mr := range marks {
		res.appendMark(mr.ref, mr.err)
	}
	return marks
}

func (r *Result) appendMark(ref EntityRef, err error) {
	r.Trace = append(r.Trace, Step{Phase: "mark", Entity: ref.String(), OK: err == nil, Detail: errDetail(err)})
}

// lockKey namespaces entity locks.
func lockKey(entity string) string { return "entity:" + entity }

// markLocal locks + checks a local entity.
func (m *Manager) markLocal(entity, action string, args wire.Args) (string, error) {
	a, err := m.action(action)
	if err != nil {
		return "", err
	}
	tok, ok := m.Locks.TryLock(lockKey(entity), m.self)
	if !ok {
		return "", &wire.RemoteError{Code: wire.CodeConflict, Msg: fmt.Sprintf("links: entity %s is locked", entity)}
	}
	if a.Check != nil {
		if err := a.Check(entity, args); err != nil {
			m.Locks.Unlock(lockKey(entity), tok)
			return "", err
		}
	}
	return tok, nil
}

// applyLocal applies an action to a local entity (lock already held by
// the negotiation).
func (m *Manager) applyLocal(entity, action string, args wire.Args) error {
	a, err := m.action(action)
	if err != nil {
		return err
	}
	if a.Apply != nil {
		return a.Apply(entity, args)
	}
	return nil
}

// markTarget marks a (possibly remote) target entity.
func (m *Manager) markTarget(ctx context.Context, ref EntityRef, action string, args wire.Args) (string, error) {
	if ref.User == m.self {
		return m.markLocal(ref.Entity, action, args)
	}
	var out struct {
		Token string `json:"token"`
	}
	err := m.eng.Invoke(ctx, ServiceFor(ref.User), "Mark", wire.Args{
		"entity": ref.Entity, "action": action, "args": map[string]any(args),
	}, &out)
	if err != nil {
		return "", err
	}
	return out.Token, nil
}

// commitTarget applies the change at a marked target and releases its
// lock.
func (m *Manager) commitTarget(ctx context.Context, ref EntityRef, token, action string, args wire.Args) error {
	if ref.User == m.self {
		err := m.applyLocal(ref.Entity, action, args)
		m.Locks.Unlock(lockKey(ref.Entity), token)
		return err
	}
	return m.eng.Invoke(ctx, ServiceFor(ref.User), "Commit", wire.Args{
		"entity": ref.Entity, "token": token, "action": action, "args": map[string]any(args),
	}, nil)
}

// abortTarget releases a marked target without changing it.
func (m *Manager) abortTarget(ctx context.Context, ref EntityRef, token string) {
	if ref.User == m.self {
		m.Locks.Unlock(lockKey(ref.Entity), token)
		return
	}
	_ = m.eng.Invoke(ctx, ServiceFor(ref.User), "Abort", wire.Args{
		"entity": ref.Entity, "token": token,
	}, nil)
}

// CheckAvailable runs the action's Check (no lock, no change) against
// a possibly-remote entity — the availability probe of §4.2 op 2.
func (m *Manager) CheckAvailable(ctx context.Context, ref EntityRef, action string, args wire.Args) error {
	if ref.User == m.self {
		a, err := m.action(action)
		if err != nil {
			return err
		}
		if a.Check != nil {
			return a.Check(ref.Entity, args)
		}
		return nil
	}
	return m.eng.Invoke(ctx, ServiceFor(ref.User), "IsAvailable", wire.Args{
		"entity": ref.Entity, "action": action, "args": map[string]any(args),
	}, nil)
}

// CreateNegotiatedLink implements §4.2 op 2: negotiate availability
// with every participant and create the link rows (same ID at every
// participant) only if all are available. The link row installed at
// each participant has that participant's entity as owner and the
// remaining entities as targets.
func (m *Manager) CreateNegotiatedLink(ctx context.Context, template *Link, action string, args wire.Args) (string, error) {
	if template.ID == "" {
		template.ID = NewLinkID()
	}
	all := append([]EntityRef{template.Owner}, template.Targets...)
	for _, ref := range all {
		if err := m.CheckAvailable(ctx, ref, action, args); err != nil {
			return "", fmt.Errorf("links: %s not available: %w", ref, err)
		}
	}
	for i, ref := range all {
		row := *template
		row.Owner = ref
		row.Targets = nil
		for j, other := range all {
			if j != i {
				row.Targets = append(row.Targets, other)
			}
		}
		if err := m.InstallAt(ctx, ref.User, &row); err != nil {
			return "", fmt.Errorf("links: install at %s: %w", ref.User, err)
		}
	}
	return template.ID, nil
}
