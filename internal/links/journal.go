package links

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/store"
	"repro/internal/trace"
	"repro/internal/wire"
)

// The commit journal makes phase 2 of the §4.3 negotiation protocol
// crash- and loss-tolerant. Once the constraint is satisfied the
// coordinator has decided COMMIT; it persists that decision (the
// negotiation id, action, args, and every marked target with its lock
// token) in SyD_NegotiationJournal *before* changing anything. A lost
// Commit, a partitioned target, or a coordinator crash then leaves a
// journal row behind, and the periodic sweep (the same schedule the
// paper uses for link expiry, §4.2 op 6) re-sends Commit with
// exponential backoff until every target acknowledges. Only when the
// pending set drains is the row retired; a row that exhausts its
// attempts is expired to a loud, metrics-counted failure.

// Tuning bounds the recovery machinery. Zero fields take defaults.
type Tuning struct {
	// RetryBase is the sweeper's first backoff after a failed or
	// partial commit round; it doubles each round.
	RetryBase time.Duration
	// RetryCap caps the exponential backoff.
	RetryCap time.Duration
	// MaxAttempts is the number of sweeper rounds before a journal
	// row is expired as a permanent (loud) failure.
	MaxAttempts int
	// PresumeAbortAfter is how long an in-doubt participant keeps a
	// mark alive while the coordinator is unreachable before it
	// presumes abort and releases the lock. It should comfortably
	// exceed the coordinator's retry horizon.
	PresumeAbortAfter time.Duration
	// DecidedTTL is how long a participant remembers decided tokens
	// so duplicate Commit/Abort deliveries are recognized.
	DecidedTTL time.Duration
}

// Default tuning values.
const (
	DefaultRetryBase         = 500 * time.Millisecond
	DefaultRetryCap          = 30 * time.Second
	DefaultMaxAttempts       = 12
	DefaultPresumeAbortAfter = 5 * time.Minute
	DefaultDecidedTTL        = 10 * time.Minute
)

// DefaultTuning returns the stock recovery schedule.
func DefaultTuning() Tuning {
	return Tuning{
		RetryBase:         DefaultRetryBase,
		RetryCap:          DefaultRetryCap,
		MaxAttempts:       DefaultMaxAttempts,
		PresumeAbortAfter: DefaultPresumeAbortAfter,
		DecidedTTL:        DefaultDecidedTTL,
	}
}

// normalize fills zero fields with defaults.
func (t Tuning) normalize() Tuning {
	d := DefaultTuning()
	if t.RetryBase <= 0 {
		t.RetryBase = d.RetryBase
	}
	if t.RetryCap <= 0 {
		t.RetryCap = d.RetryCap
	}
	if t.MaxAttempts <= 0 {
		t.MaxAttempts = d.MaxAttempts
	}
	if t.PresumeAbortAfter <= 0 {
		t.PresumeAbortAfter = d.PresumeAbortAfter
	}
	if t.DecidedTTL <= 0 {
		t.DecidedTTL = d.DecidedTTL
	}
	return t
}

// SetTuning installs a recovery schedule (zero fields keep defaults).
func (m *Manager) SetTuning(t Tuning) {
	m.mu.Lock()
	m.tuning = t.normalize()
	m.mu.Unlock()
}

func (m *Manager) tune() Tuning {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.tuning
}

// NewNegotiationID mints a globally unique negotiation id (see ids.go
// for the uniqueness scheme).
func NewNegotiationID() string { return "N-" + mintOrdered() }

// journalTarget is one marked target awaiting its Commit ack.
type journalTarget struct {
	Ref   EntityRef `json:"ref"`
	Token string    `json:"token"`
}

// journalRec is the decoded form of one SyD_NegotiationJournal row.
type journalRec struct {
	ID        string
	Action    string
	Args      wire.Args
	Local     *LocalChange
	LocalDone bool
	Pending   []journalTarget
	Committed []EntityRef
	Failed    []EntityRef
	Attempts  int
	NextRetry time.Time
	Created   time.Time
	// TraceID/SpanID tie the row to the originating negotiation's
	// trace: recovery sweeps — possibly after a restart — rejoin the
	// trace so redrive attempts render under the original root.
	TraceID string
	SpanID  string
}

func mustJSON(v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		panic("links: journal encode: " + err.Error())
	}
	return string(b)
}

func (r *journalRec) row() store.Row {
	return store.Row{
		"id":         r.ID,
		"rec":        mustJSON(r),
		"next_retry": r.NextRetry,
	}
}

func journalFromRow(row store.Row) (*journalRec, error) {
	id := row["id"].(string)
	s, _ := row["rec"].(string)
	if s == "" {
		return nil, fmt.Errorf("links: journal %s has no record body", id)
	}
	r := &journalRec{}
	if err := json.Unmarshal([]byte(s), r); err != nil {
		return nil, fmt.Errorf("links: journal %s: %w", id, err)
	}
	r.ID = id
	// The column is what the sweeper selected on; keep it authoritative
	// over the blob's copy.
	r.NextRetry = row["next_retry"].(time.Time)
	return r, nil
}

// journalBegin persists the COMMIT decision before phase 2 touches
// anything. The row lands in the store (and therefore the WAL when
// durability is on) before the first Commit leaves the coordinator.
func (m *Manager) journalBegin(rec *journalRec) error {
	err := m.journalT.Insert(rec.row())
	if errors.Is(err, store.ErrDupKey) {
		return m.journalT.Update(rec.row(), rec.ID)
	}
	return err
}

// journalUpdate rewrites a journal row after progress.
func (m *Manager) journalUpdate(rec *journalRec) {
	_ = m.journalT.Update(rec.row(), rec.ID)
}

// journalRetire removes a resolved negotiation's row.
func (m *Manager) journalRetire(id string) {
	_ = m.journalT.Delete(id)
}

// journalGet fetches and decodes one journal row.
func (m *Manager) journalGet(id string) (*journalRec, bool) {
	row, ok := m.journalT.Get(id)
	if !ok {
		return nil, false
	}
	rec, err := journalFromRow(row)
	if err != nil {
		return nil, false
	}
	return rec, true
}

// JournalPending lists the negotiation ids with unresolved journal
// rows, sorted (diagnostics and tests).
func (m *Manager) JournalPending() []string {
	rows := m.journalT.Select(nil)
	out := make([]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, r["id"].(string))
	}
	sort.Strings(out)
	return out
}

// Outcome reports the coordinator-side decision for a negotiation id:
// "unknown" while the negotiation is still in flight on this
// coordinator (no decision has been published — presuming abort here
// would let a participant sweep release a mark the coordinator is
// about to commit), "commit" while its journal row is live (the
// decision was COMMIT and recovery is still driving it), "abort"
// otherwise. Participants call this through the QueryOutcome RPC;
// "abort" is the presumed answer for any negotiation that never
// journaled a commit decision or whose row has been retired (a
// retired row means every target acked, so no in-doubt participant
// can still be asking about it). A coordinator that crashed mid-flight
// restarts with an empty in-flight set, and answering abort for its
// unjournaled negotiations is safe: journalBegin strictly precedes the
// first Commit, so nothing was ever applied.
func (m *Manager) Outcome(nid, token string) string {
	if m.isInflight(nid) {
		return OutcomeUnknown
	}
	rec, ok := m.journalGet(nid)
	if !ok {
		return OutcomeAbort
	}
	if token == "" {
		return OutcomeCommit
	}
	for _, t := range rec.Pending {
		if t.Token == token {
			return OutcomeCommit
		}
	}
	// A token the journal does not list was never part of the decided
	// set (e.g. the Mark response was lost and the coordinator gave up
	// on that target) — presume abort for it.
	return OutcomeAbort
}

// commitQoS is the per-attempt QoS the sweeper uses when re-sending
// Commit: one quick in-attempt retry; the sweep's own exponential
// backoff paces the rounds.
func commitQoS(t Tuning) engine.QoS {
	return engine.QoS{Retries: 1, Backoff: t.RetryBase / 8, AttemptTimeout: 5 * time.Second}
}

// transientErr reports whether a commit failure may heal by itself
// (unreachable device, lost message, timeout). Everything else —
// conflict, bad args, auth — is definitive: re-sending cannot succeed.
func transientErr(err error) bool {
	if errors.Is(err, context.DeadlineExceeded) {
		return true
	}
	return wire.CodeOf(err) == wire.CodeUnavailable
}

// backoffAfter computes the sweeper's next-retry delay for a row that
// has been attempted n times (n >= 1).
func backoffAfter(t Tuning, n int) time.Duration {
	d := t.RetryBase
	for i := 1; i < n; i++ {
		d *= 2
		if d >= t.RetryCap {
			return t.RetryCap
		}
	}
	if d > t.RetryCap {
		d = t.RetryCap
	}
	return d
}

// maxRetryRowsPerSweep bounds one sweep's journal work so a backlog of
// rows with unreachable targets cannot exhaust the sweep context and
// starve the participant-side mark resolution on the same tick; the
// overflow (oldest rows go first) waits for the next tick.
const maxRetryRowsPerSweep = 32

// RetryCommits drives phase-2 recovery: every journal row whose
// next_retry has passed gets one more round of Commit sends via the
// engine's QoS machinery. Rows whose pending set drains are retired;
// rows that exhaust MaxAttempts are expired as loud failures. Rows are
// redriven concurrently (and each row fans its Commits out
// concurrently), so one sweep's wall clock is roughly a single QoS
// round trip, not the sum over every unreachable target. Returns the
// number of rows resolved (retired or expired) this sweep. Called from
// the same periodic schedule as ExpireSweep.
func (m *Manager) RetryCommits(ctx context.Context, now time.Time) int {
	tun := m.tune()
	rows := m.journalT.Select(func(r store.Row) bool {
		return !r["next_retry"].(time.Time).After(now)
	})
	sort.Slice(rows, func(i, j int) bool {
		return rows[i]["next_retry"].(time.Time).Before(rows[j]["next_retry"].(time.Time))
	})
	if len(rows) > maxRetryRowsPerSweep {
		rows = rows[:maxRetryRowsPerSweep]
	}
	var resolved atomic.Int64
	var wg sync.WaitGroup
	for _, row := range rows {
		if ctx.Err() != nil {
			break
		}
		rec, err := journalFromRow(row)
		if err != nil {
			// Undecodable row: expire it loudly rather than spin.
			m.journalRetire(row["id"].(string))
			m.count("journal-expire", wire.CodeInternal)
			resolved.Add(1)
			continue
		}
		rec.Attempts++
		if rec.Attempts > tun.MaxAttempts {
			// Give up: the negotiation stays divergent. Count it where
			// operators will see it; the row itself is dropped so the
			// sweep does not grind on a dead deployment forever.
			m.journalRetire(rec.ID)
			m.count("journal-expire", wire.CodeUnavailable)
			resolved.Add(1)
			continue
		}
		wg.Add(1)
		go func(rec *journalRec) {
			defer wg.Done()
			// Rejoin the originating negotiation's trace so the redrive
			// renders under the same root, even across a restart.
			rctx := ctx
			if span := m.tracerRef().JoinTrace(rec.TraceID, rec.SpanID, "links.Redrive"); span != nil {
				span.Annotate(trace.String("nid", rec.ID), trace.Int("attempt", rec.Attempts),
					trace.Int("pending", len(rec.Pending)))
				rctx = trace.ContextWithSpan(ctx, span)
				defer span.Finish()
			}
			if m.redriveJournal(rctx, rec) {
				resolved.Add(1)
				return
			}
			rec.NextRetry = now.Add(backoffAfter(tun, rec.Attempts))
			m.journalUpdate(rec)
		}(rec)
	}
	wg.Wait()
	return int(resolved.Load())
}

// redriveLocal re-applies the coordinator's own journaled change. The
// in-memory lock the original negotiation held is gone after a crash,
// so this mirrors the participant late-commit path: re-lock the
// entity, re-run the action's Check, and treat a failed Check as a
// definitive rejection — another negotiation may have booked the
// entity between the crash and the redrive, and the redrive must not
// overwrite its claim. Returns done=true when the change reached a
// definitive state (applied or rejected) and failed=true when that
// state is a rejection; done=false means the entity is locked by a
// live negotiation and the redrive should retry next sweep.
func (m *Manager) redriveLocal(lc *LocalChange) (done, failed bool) {
	tok, ok := m.Locks.TryLock(lockKey(lc.Entity), m.self)
	if !ok {
		return false, false
	}
	defer m.Locks.Unlock(lockKey(lc.Entity), tok)
	a, err := m.action(lc.Action)
	if err != nil {
		m.count("redrive-local", wire.CodeOf(err))
		return true, true
	}
	if a.Check != nil {
		if err := a.Check(lc.Entity, lc.Args); err != nil {
			m.count("redrive-local", wire.CodeConflict)
			return true, true
		}
	}
	if err := m.applyLocal(lc.Entity, lc.Action, lc.Args); err != nil {
		m.count("redrive-local", wire.CodeOf(err))
		return true, true
	}
	m.count("redrive-local", wire.CodeOK)
	return true, false
}

// redriveJournal re-runs the commit phase for one journal row: the
// local change first (a recovered coordinator may have crashed before
// applying its own side), then every pending target, fanned out
// concurrently. Reports true when the row was retired.
func (m *Manager) redriveJournal(ctx context.Context, rec *journalRec) bool {
	if rec.Local != nil && !rec.LocalDone {
		done, failed := m.redriveLocal(rec.Local)
		if done {
			rec.LocalDone = true
			if failed {
				rec.Failed = append(rec.Failed, EntityRef{User: m.self, Entity: rec.Local.Entity})
			}
		}
	}
	// One CommitBatch per owning node (commitGrouped fans the node
	// groups out concurrently), so a redrive round still costs roughly
	// one QoS round trip — now O(nodes) sends instead of O(entities).
	errs := m.commitGrouped(ctx, rec.ID, rec.Pending, rec.Action, rec.Args, true)
	var still []journalTarget
	for i, tgt := range rec.Pending {
		err := errs[i]
		switch {
		case err == nil:
			rec.Committed = append(rec.Committed, tgt.Ref)
			m.count("commit-retry", wire.CodeOK)
		case transientErr(err):
			still = append(still, tgt)
			m.count("commit-retry", wire.CodeUnavailable)
		default:
			// Definitive rejection: the participant's lock was stolen
			// or it already decided abort. Re-sending cannot help.
			rec.Failed = append(rec.Failed, tgt.Ref)
			m.count("commit-retry", wire.CodeOf(err))
		}
	}
	rec.Pending = still
	if len(rec.Pending) == 0 && (rec.Local == nil || rec.LocalDone) {
		m.journalRetire(rec.ID)
		if len(rec.Failed) > 0 {
			m.count("outcome", wire.CodeConflict) // resolved partial: divergence is permanent
		} else {
			m.count("outcome-recovered", wire.CodeOK)
		}
		return true
	}
	m.journalUpdate(rec)
	return false
}

// FaultSweep runs every periodic recovery duty in one call: link
// expiry retries left to the caller; this covers commit re-delivery
// and participant-side in-doubt resolution. Returns resolved journal
// rows + resolved pending marks.
func (m *Manager) FaultSweep(ctx context.Context, now time.Time) int {
	n := m.RetryCommits(ctx, now)
	n += m.ResolvePendingMarks(ctx, now)
	return n
}
