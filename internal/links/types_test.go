package links

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/wire"
)

func TestEntityRefStringAndLess(t *testing.T) {
	a := EntityRef{User: "a", Entity: "slot:1"}
	b := EntityRef{User: "b", Entity: "slot:1"}
	a2 := EntityRef{User: "a", Entity: "slot:2"}
	if a.String() != "a/slot:1" {
		t.Fatalf("String = %q", a.String())
	}
	if !a.Less(b) || b.Less(a) {
		t.Fatal("user ordering wrong")
	}
	if !a.Less(a2) || a2.Less(a) {
		t.Fatal("entity ordering wrong")
	}
	if a.Less(a) {
		t.Fatal("irreflexive violated")
	}
}

// TestEntityRefLessIsStrictWeakOrder: sorting with Less always yields
// the same order regardless of input permutation.
func TestEntityRefLessIsStrictWeakOrder(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		base := []EntityRef{
			{User: "a", Entity: "1"}, {User: "a", Entity: "2"},
			{User: "b", Entity: "1"}, {User: "c", Entity: "0"},
		}
		shuffled := append([]EntityRef(nil), base...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		sort.Slice(shuffled, func(i, j int) bool { return shuffled[i].Less(shuffled[j]) })
		return reflect.DeepEqual(shuffled, base)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestLinkValidateTable(t *testing.T) {
	owner := EntityRef{User: "a", Entity: "e"}
	valid := Link{
		ID: "L1", Type: Negotiation, Subtype: Permanent,
		Owner: owner, Constraint: And,
	}
	if err := valid.Validate(); err != nil {
		t.Fatal(err)
	}
	tentative := valid
	tentative.Subtype = Tentative
	tentative.WaitingOn = "" // tentative without blocker is legal (§5 queue-at-slot)
	if err := tentative.Validate(); err != nil {
		t.Fatal(err)
	}
	sub := Link{ID: "L2", Type: Subscription, Subtype: Permanent, Owner: owner}
	if err := sub.Validate(); err != nil {
		t.Fatalf("subscription needs no constraint: %v", err)
	}
}

func TestEffectiveK(t *testing.T) {
	l := Link{}
	if l.EffectiveK() != 1 {
		t.Fatalf("default k = %d", l.EffectiveK())
	}
	l.K = 3
	if l.EffectiveK() != 3 {
		t.Fatalf("k = %d", l.EffectiveK())
	}
}

func TestTriggersFor(t *testing.T) {
	l := Link{Triggers: []Trigger{
		{Event: "change", Action: "a1"},
		{Event: "delete", Action: "a2"},
		{Event: "change", Method: "M", Service: "s.%s"},
	}}
	got := l.TriggersFor("change")
	if len(got) != 2 {
		t.Fatalf("change triggers = %d", len(got))
	}
	if len(l.TriggersFor("promote")) != 0 {
		t.Fatal("phantom triggers")
	}
}

func TestMergedArgsRuntimeWins(t *testing.T) {
	tr := Trigger{Args: wire.Args{"a": 1, "b": "static"}}
	got := tr.MergedArgs(wire.Args{"b": "runtime", "c": true})
	if got.Int("a") != 1 || got.String("b") != "runtime" || !got.Bool("c") {
		t.Fatalf("merged = %v", got)
	}
	// Nil runtime keeps statics.
	got = tr.MergedArgs(nil)
	if got.String("b") != "static" {
		t.Fatalf("merged = %v", got)
	}
}

func TestLinkRowCodecRoundTrip(t *testing.T) {
	created := time.Date(2003, 4, 22, 10, 0, 0, 0, time.UTC)
	l := &Link{
		ID: "L-codec", Type: Negotiation, Subtype: Tentative,
		Owner:      EntityRef{User: "a", Entity: "slot:1"},
		Targets:    []EntityRef{{User: "b", Entity: "slot:1"}, {User: "c", Entity: "slot:2"}},
		Constraint: Or, K: 2, Priority: 7,
		Triggers: []Trigger{
			{Event: "promote", Service: "cal.%s", Method: "SlotAvailable", Args: wire.Args{"meeting": "M1"}},
		},
		WaitingOn: "L-block", Group: "M1",
		Created: created, Expires: created.Add(24 * time.Hour),
	}
	row, err := linkToRow(l)
	if err != nil {
		t.Fatal(err)
	}
	back, err := rowToLink(row)
	if err != nil {
		t.Fatal(err)
	}
	if back.ID != l.ID || back.Type != l.Type || back.Subtype != l.Subtype ||
		back.Constraint != l.Constraint || back.K != l.K || back.Priority != l.Priority ||
		back.WaitingOn != l.WaitingOn || back.Group != l.Group {
		t.Fatalf("scalar fields: %+v", back)
	}
	if !reflect.DeepEqual(back.Targets, l.Targets) {
		t.Fatalf("targets: %v", back.Targets)
	}
	if len(back.Triggers) != 1 || back.Triggers[0].Method != "SlotAvailable" ||
		back.Triggers[0].Args.String("meeting") != "M1" {
		t.Fatalf("triggers: %+v", back.Triggers)
	}
	if !back.Created.Equal(l.Created) || !back.Expires.Equal(l.Expires) {
		t.Fatalf("times: %v %v", back.Created, back.Expires)
	}
}

func TestParticipantsDeduplicated(t *testing.T) {
	l := &Link{
		Owner: EntityRef{User: "a", Entity: "e1"},
		Targets: []EntityRef{
			{User: "b", Entity: "e1"},
			{User: "a", Entity: "e2"}, // owner again, other entity
			{User: "c", Entity: "e1"},
			{User: "b", Entity: "e3"},
		},
	}
	got := l.participants()
	want := []string{"a", "b", "c"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("participants = %v", got)
	}
}

func TestNewLinkIDUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		id := NewLinkID()
		if seen[id] {
			t.Fatal("duplicate link id")
		}
		seen[id] = true
		if len(id) < 10 || id[:2] != "L-" {
			t.Fatalf("id shape: %q", id)
		}
	}
}
