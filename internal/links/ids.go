package links

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"strconv"
	"sync/atomic"
)

// Lock tokens and negotiation ids are minted constantly on the hot
// negotiation path (one token per mark, one id per negotiation), and a
// crypto/rand read per mint is measurable there. Instead the process
// draws one 64-bit random prefix at startup and appends a monotonic
// counter: ids stay unique across processes with the same probability
// the old scheme had (the prefix collides as rarely as two random
// tokens did) and unique within the process by construction, at the
// cost of one small allocation.
//
// Two counters, not one. Link and negotiation ids are primary keys:
// store.Table iterates them in key order, the journal sweep processes
// negotiations in id order, and promoteWaiters breaks priority ties by
// id — so their mint order must be reproducible for a same-seed
// simulation run to replay identically. Those ids are only minted from
// serially executed paths (a coordinator drives one negotiation at a
// time). Lock tokens, by contrast, are minted concurrently (the commit
// fan-out and late-commit paths) and are only ever compared for
// equality — sharing one counter would let token traffic perturb the
// id sequence.
var (
	idPrefix   = mintPrefix()
	tokCounter atomic.Uint64
	seqCounter atomic.Uint64
)

func mintPrefix() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is unrecoverable for the process.
		panic("links: rand: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}

// mintID returns a process-unique opaque id (lock tokens).
func mintID() string {
	return idPrefix + "-" + strconv.FormatUint(tokCounter.Add(1), 36)
}

// mintOrdered returns a process-unique id whose lexicographic order
// equals mint order (the counter is zero-padded), so store keys built
// from it iterate in creation order.
func mintOrdered() string {
	return fmt.Sprintf("%s-%012d", idPrefix, seqCounter.Add(1))
}
