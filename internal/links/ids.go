package links

import (
	"crypto/rand"
	"encoding/hex"
	"strconv"
	"sync/atomic"
)

// Lock tokens and negotiation ids are minted constantly on the hot
// negotiation path (one token per mark, one id per negotiation), and a
// crypto/rand read per mint is measurable there. Instead the process
// draws one 64-bit random prefix at startup and appends a monotonic
// counter: ids stay unique across processes with the same probability
// the old scheme had (the prefix collides as rarely as two random
// tokens did) and unique within the process by construction, at the
// cost of one small allocation.
var (
	idPrefix  = mintPrefix()
	idCounter atomic.Uint64
)

func mintPrefix() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is unrecoverable for the process.
		panic("links: rand: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}

// mintID returns a process-unique opaque id.
func mintID() string {
	return idPrefix + "-" + strconv.FormatUint(idCounter.Add(1), 36)
}
