package links

import (
	"sync"
	"time"

	"repro/internal/clock"
)

// LockTable implements the entity mark/lock step of the paper's
// negotiation semantics (§4.3: "Mark B and C for change and Lock B
// and C"). Locks are try-locks — an already-locked entity fails the
// mark immediately instead of blocking — which, combined with globally
// ordered acquisition for `and` constraints, makes the distributed
// protocol deadlock-free.
//
// Each lock carries a TTL so a crashed or partitioned negotiator
// cannot wedge an entity forever; an expired lock is silently stolen
// by the next TryLock.
type LockTable struct {
	clk clock.Clock
	ttl time.Duration

	mu    sync.Mutex
	locks map[string]lockEntry

	// Contention counters (see LockStats).
	acquired  uint64
	conflicts uint64
	steals    uint64
}

// LockStats is a snapshot of a table's cumulative contention counters.
// The scale harness aggregates these across a fleet: under skewed load
// the conflict rate on the hot entities is the leading indicator of
// the nonlinear abort-rate regime.
type LockStats struct {
	// Acquired counts successful TryLock grants (including steals).
	Acquired uint64 `json:"acquired"`
	// Conflicts counts TryLock rejections by a live lock.
	Conflicts uint64 `json:"conflicts"`
	// Steals counts grants that displaced an expired entry.
	Steals uint64 `json:"steals"`
}

type lockEntry struct {
	token    string
	holder   string
	deadline time.Time
}

// DefaultLockTTL bounds how long a mark can outlive its negotiation.
const DefaultLockTTL = 30 * time.Second

// NewLockTable creates a lock table. ttl <= 0 uses DefaultLockTTL.
func NewLockTable(clk clock.Clock, ttl time.Duration) *LockTable {
	if clk == nil {
		clk = clock.System
	}
	if ttl <= 0 {
		ttl = DefaultLockTTL
	}
	return &LockTable{clk: clk, ttl: ttl, locks: make(map[string]lockEntry)}
}

// SetTTL changes the TTL applied to future TryLock/Extend calls
// (deployment tuning; live locks keep their current deadline).
func (lt *LockTable) SetTTL(ttl time.Duration) {
	if ttl <= 0 {
		ttl = DefaultLockTTL
	}
	lt.mu.Lock()
	lt.ttl = ttl
	lt.mu.Unlock()
}

// TTL returns the table's current lock TTL.
func (lt *LockTable) TTL() time.Duration {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	return lt.ttl
}

// newToken returns a fresh opaque lock token (see ids.go for the
// uniqueness scheme).
func newToken() string { return mintID() }

// TryLock marks entity for holder (recorded for diagnostics only). It
// returns the lock token and true on success, or "" and false when a
// live lock holds the entity. Locks are not re-entrant: a single
// negotiation never marks the same entity twice, and two negotiations
// by the same user must still exclude each other.
func (lt *LockTable) TryLock(entity, holder string) (string, bool) {
	now := lt.clk.Now()
	lt.mu.Lock()
	defer lt.mu.Unlock()
	if e, ok := lt.locks[entity]; ok {
		if now.Before(e.deadline) {
			lt.conflicts++
			return "", false
		}
		lt.steals++
	}
	e := lockEntry{token: newToken(), holder: holder, deadline: now.Add(lt.ttl)}
	lt.locks[entity] = e
	lt.acquired++
	return e.token, true
}

// Stats returns a snapshot of the table's contention counters.
func (lt *LockTable) Stats() LockStats {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	return LockStats{Acquired: lt.acquired, Conflicts: lt.conflicts, Steals: lt.steals}
}

// Unlock releases entity if token matches the live lock. Unlocking
// with a stale token (expired and re-granted) is a no-op.
func (lt *LockTable) Unlock(entity, token string) bool {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	e, ok := lt.locks[entity]
	if !ok || e.token != token {
		return false
	}
	delete(lt.locks, entity)
	return true
}

// Holds reports whether token currently holds entity's lock.
func (lt *LockTable) Holds(entity, token string) bool {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	e, ok := lt.locks[entity]
	return ok && e.token == token && lt.clk.Now().Before(e.deadline)
}

// Extend pushes entity's lock deadline one full TTL into the future if
// token still owns the entry — even an expired entry, as long as no
// other negotiation has stolen it. An in-doubt participant uses this to
// pin its mark while it resolves the outcome with the coordinator, so
// a decided-but-undelivered Commit cannot race a TTL steal.
func (lt *LockTable) Extend(entity, token string) bool {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	e, ok := lt.locks[entity]
	if !ok || e.token != token {
		return false
	}
	e.deadline = lt.clk.Now().Add(lt.ttl)
	lt.locks[entity] = e
	return true
}

// Holder returns the token recorded for entity's lock and whether that
// lock is still live. A (token, false) return means the entry expired
// but has not been re-granted yet.
func (lt *LockTable) Holder(entity string) (token string, live bool) {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	e, ok := lt.locks[entity]
	if !ok {
		return "", false
	}
	return e.token, lt.clk.Now().Before(e.deadline)
}

// Locked reports whether entity is currently locked by anyone.
func (lt *LockTable) Locked(entity string) bool {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	e, ok := lt.locks[entity]
	return ok && lt.clk.Now().Before(e.deadline)
}

// Len reports the number of live locks (expired entries are counted
// until stolen or swept).
func (lt *LockTable) Len() int {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	n := 0
	now := lt.clk.Now()
	for _, e := range lt.locks {
		if now.Before(e.deadline) {
			n++
		}
	}
	return n
}

// Sweep drops expired lock entries (housekeeping; correctness does not
// depend on it because TryLock steals expired locks).
func (lt *LockTable) Sweep() int {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	now := lt.clk.Now()
	n := 0
	for k, e := range lt.locks {
		if !now.Before(e.deadline) {
			delete(lt.locks, k)
			n++
		}
	}
	return n
}
