package links_test

import (
	"context"
	"testing"
	"time"

	"repro/internal/links"
	"repro/internal/wire"
)

// TestDuplicateCommitIdempotent: a re-delivered Commit (the first ack
// was lost) must acknowledge without applying the action a second time.
func TestDuplicateCommitIdempotent(t *testing.T) {
	h := newHarness(t, "a", "b")
	ctx := context.Background()

	var tok struct {
		Token string `json:"token"`
	}
	err := h.nodes["a"].Engine.Invoke(ctx, links.ServiceFor("b"), "Mark", wire.Args{
		"entity": "s", "action": "note", "args": map[string]any{"text": "hi"}, "nid": "N-dup",
	}, &tok)
	if err != nil {
		t.Fatal(err)
	}
	commit := wire.Args{
		"entity": "s", "token": tok.Token, "action": "note",
		"args": map[string]any{"text": "hi"}, "nid": "N-dup",
	}
	if err := h.nodes["a"].Engine.Invoke(ctx, links.ServiceFor("b"), "Commit", commit, nil); err != nil {
		t.Fatalf("first commit: %v", err)
	}
	// Same Commit again — e.g. the coordinator's sweeper re-sent it
	// because the first response was dropped.
	if err := h.nodes["a"].Engine.Invoke(ctx, links.ServiceFor("b"), "Commit", commit, nil); err != nil {
		t.Fatalf("duplicate commit not acked: %v", err)
	}
	if n := h.nodes["b"].noteCount(); n != 1 {
		t.Fatalf("action applied %d times, want 1", n)
	}
	// The mark is decided; nothing is left pending on the participant.
	if n := h.nodes["b"].Links.PendingMarks(); n != 0 {
		t.Fatalf("%d pending marks after decided commit", n)
	}
}

// TestStaleTokenCommitRejected: a Commit whose mark TTL lapsed and
// whose lock was re-granted to another negotiation must be rejected —
// applying it would clobber the new holder's claim.
func TestStaleTokenCommitRejected(t *testing.T) {
	h := newHarness(t, "a", "b")
	ctx := context.Background()

	var tok struct {
		Token string `json:"token"`
	}
	err := h.nodes["a"].Engine.Invoke(ctx, links.ServiceFor("b"), "Mark", wire.Args{
		"entity": "s", "action": "reserve", "args": map[string]any{"meeting": "OLD"}, "nid": "N-old",
	}, &tok)
	if err != nil {
		t.Fatal(err)
	}
	// The coordinator stalls past the lock TTL; another negotiation
	// steals the lock and reserves the slot.
	h.clk.Advance(links.DefaultLockTTL + time.Second)
	if _, err := h.nodes["a"].Links.Negotiate(ctx, links.Spec{
		Action: "reserve", Args: wire.Args{"meeting": "NEW"},
		Targets: refs("b", "s"), Constraint: links.And,
	}); err != nil {
		t.Fatalf("stealing negotiation failed: %v", err)
	}
	if got := h.nodes["b"].status("s"); got != "NEW" {
		t.Fatalf("slot = %q, want NEW", got)
	}
	// The stale Commit finally arrives. It must not apply.
	err = h.nodes["a"].Engine.Invoke(ctx, links.ServiceFor("b"), "Commit", wire.Args{
		"entity": "s", "token": tok.Token, "action": "reserve",
		"args": map[string]any{"meeting": "OLD"}, "nid": "N-old",
	}, nil)
	if wire.CodeOf(err) != wire.CodeConflict {
		t.Fatalf("stale commit err = %v, want conflict", err)
	}
	if got := h.nodes["b"].status("s"); got != "NEW" {
		t.Fatalf("stale commit clobbered slot: %q", got)
	}
}

// TestCoordinatorCrashRecovery: the coordinator commits to x, crashes
// before reaching y (injected fault), and restarts on the same device
// database. The journaled COMMIT decision survives the crash and the
// retry sweeper finishes the diverged negotiation.
func TestCoordinatorCrashRecovery(t *testing.T) {
	h := newHarness(t, "a", "x", "y")
	ctx := context.Background()
	lm := h.nodes["a"].Links

	// Crash model: every commit send to y fails as if the coordinator
	// lost connectivity mid-phase-2.
	lm.SetCommitFault(func(nid string, ref links.EntityRef) error {
		if ref.User == "y" {
			return &wire.RemoteError{Code: wire.CodeUnavailable, Msg: "injected crash"}
		}
		return nil
	})
	res, err := lm.Negotiate(ctx, links.Spec{
		Action: "reserve", Args: wire.Args{"meeting": "M"},
		Targets: refs("x", "s", "y", "s"), Constraint: links.And,
	})
	if !links.IsInDoubt(err) {
		t.Fatalf("err = %v, want in-doubt", err)
	}
	if res.OK || res.State != links.StateInDoubt {
		t.Fatalf("res.OK=%v state=%s, want !OK in-doubt", res.OK, res.State)
	}
	if len(res.Accepted) != 1 || res.Accepted[0].User != "x" {
		t.Fatalf("accepted = %v", res.Accepted)
	}
	if len(res.InDoubt) != 1 || res.InDoubt[0].User != "y" {
		t.Fatalf("inDoubt = %v", res.InDoubt)
	}
	if h.nodes["x"].status("s") != "M" || h.nodes["y"].status("s") != "" {
		t.Fatalf("pre-crash state x=%q y=%q", h.nodes["x"].status("s"), h.nodes["y"].status("s"))
	}

	// "Restart": a fresh links manager over the same device database —
	// everything in memory is gone, only the store (and with -data-dir,
	// the WAL behind it) survives.
	lm2, err := links.NewManager("a", h.nodes["a"].DB, h.nodes["a"].Engine, h.clk)
	if err != nil {
		t.Fatal(err)
	}
	pending := lm2.JournalPending()
	if len(pending) != 1 || pending[0] != res.NID {
		t.Fatalf("journal after restart = %v, want [%s]", pending, res.NID)
	}
	// The periodic sweep on the restarted coordinator re-sends the
	// journaled Commit and drains the row.
	h.clk.Advance(time.Second)
	if n := lm2.RetryCommits(ctx, h.clk.Now()); n != 1 {
		t.Fatalf("RetryCommits resolved %d rows, want 1", n)
	}
	if got := h.nodes["y"].status("s"); got != "M" {
		t.Fatalf("y never committed after recovery: %q", got)
	}
	if p := lm2.JournalPending(); len(p) != 0 {
		t.Fatalf("journal not retired: %v", p)
	}
}

// TestSweepDuringPhase1DoesNotPresumeAbort: a participant fault sweep
// that lands between its Mark grant and the coordinator's journal
// write must hear "unknown" and keep the mark pinned. Presuming abort
// there (no journal row yet, but the negotiation is live) would
// release x's lock while the coordinator goes on to commit — the race
// the coordinator's in-flight registry exists to close.
func TestSweepDuringPhase1DoesNotPresumeAbort(t *testing.T) {
	h := newHarness(t, "a", "x", "y")
	ctx := context.Background()
	lm := h.nodes["a"].Links

	// And-marks run in entity order, so x is marked before the fault
	// hook fires on y — exactly the window before journalBegin.
	swept := false
	lm.SetMarkFault(func(nid string, ref links.EntityRef) error {
		if ref.User == "y" && !swept {
			swept = true
			h.nodes["x"].Links.ResolvePendingMarks(ctx, h.clk.Now())
			if n := h.nodes["x"].Links.PendingMarks(); n != 1 {
				t.Errorf("mid-phase-1 sweep resolved x's mark: pending = %d, want 1", n)
			}
		}
		return nil
	})
	res, err := lm.Negotiate(ctx, links.Spec{
		Action: "reserve", Args: wire.Args{"meeting": "M"},
		Targets: refs("x", "s", "y", "s"), Constraint: links.And,
	})
	if err != nil || !res.OK {
		t.Fatalf("negotiate after mid-flight sweep: err=%v res=%+v", err, res)
	}
	if !swept {
		t.Fatal("mark fault hook never ran")
	}
	if sx, sy := h.nodes["x"].status("s"), h.nodes["y"].status("s"); sx != "M" || sy != "M" {
		t.Fatalf("commit diverged after mid-flight sweep: x=%q y=%q", sx, sy)
	}
}

// TestRedriveRechecksRebookedEntity: the coordinator journals a COMMIT
// decision and crashes before applying its own local change; while the
// row waits for redrive, another negotiation books the same entity.
// The redrive must re-lock and re-run Check — definitively failing the
// stale local change — instead of blindly applying it over the new
// booking.
func TestRedriveRechecksRebookedEntity(t *testing.T) {
	h := newHarness(t, "a", "y")
	ctx := context.Background()
	lm := h.nodes["a"].Links

	// Crash model: the local Apply panics after journalBegin, so the
	// journal row survives with the local change still undone.
	crashed := false
	lm.RegisterAction("crashy", links.Action{
		Check: func(entity string, args wire.Args) error {
			if cur := h.nodes["a"].status(entity); cur != "" && cur != args.String("meeting") {
				return &wire.RemoteError{Code: wire.CodeConflict, Msg: "reserved"}
			}
			return nil
		},
		Apply: func(entity string, args wire.Args) error {
			panic("injected crash between journal write and local apply")
		},
	})
	func() {
		defer func() {
			if recover() != nil {
				crashed = true
			}
		}()
		_, _ = lm.Negotiate(ctx, links.Spec{
			Action: "reserve", Args: wire.Args{"meeting": "OLD"},
			Local:   &links.LocalChange{Entity: "s", Action: "crashy", Args: wire.Args{"meeting": "OLD"}},
			Targets: refs("y", "s2"), Constraint: links.And,
		})
	}()
	if !crashed {
		t.Fatal("injected crash never fired")
	}
	if got := h.nodes["a"].status("s"); got != "" {
		t.Fatalf("pre-crash status = %q, want empty", got)
	}

	// "Restart": fresh manager over the same device database. The
	// journal row survives; the in-memory lock table does not.
	lm2, err := links.NewManager("a", h.nodes["a"].DB, h.nodes["a"].Engine, h.clk)
	if err != nil {
		t.Fatal(err)
	}
	if p := lm2.JournalPending(); len(p) != 1 {
		t.Fatalf("journal after restart = %v, want 1 row", p)
	}
	lm2.RegisterAction("crashy", links.Action{
		Check: func(entity string, args wire.Args) error {
			if cur := h.nodes["a"].status(entity); cur != "" && cur != args.String("meeting") {
				return &wire.RemoteError{Code: wire.CodeConflict, Msg: "reserved"}
			}
			return nil
		},
		Apply: func(entity string, args wire.Args) error {
			h.nodes["a"].setStatus(entity, args.String("meeting"))
			return nil
		},
	})
	lm2.RegisterAction("reserve", links.Action{
		Check: func(entity string, args wire.Args) error {
			if cur := h.nodes["a"].status(entity); cur != "" && cur != args.String("meeting") {
				return &wire.RemoteError{Code: wire.CodeConflict, Msg: "reserved"}
			}
			return nil
		},
		Apply: func(entity string, args wire.Args) error {
			h.nodes["a"].setStatus(entity, args.String("meeting"))
			return nil
		},
	})
	// Another negotiation books the entity before the redrive runs.
	if _, err := lm2.Negotiate(ctx, links.Spec{
		Action: "reserve", Args: wire.Args{"meeting": "NEW"},
		Targets: refs("a", "s"), Constraint: links.And,
	}); err != nil {
		t.Fatalf("rebooking negotiation failed: %v", err)
	}

	h.clk.Advance(time.Second)
	if n := lm2.RetryCommits(ctx, h.clk.Now()); n != 1 {
		t.Fatalf("RetryCommits resolved %d rows, want 1", n)
	}
	if got := h.nodes["a"].status("s"); got != "NEW" {
		t.Fatalf("redrive clobbered rebooked entity: %q, want NEW", got)
	}
	// The journaled COMMIT still lands at the unaffected remote target.
	if got := h.nodes["y"].status("s2"); got != "OLD" {
		t.Fatalf("remote target never redriven: %q, want OLD", got)
	}
	if p := lm2.JournalPending(); len(p) != 0 {
		t.Fatalf("journal not retired: %v", p)
	}
}

// TestDecidedOutcomeSurvivesRestart: a participant applies a Commit,
// the ack is lost, and the participant crashes before the coordinator
// re-sends. After a restart over the same device database the re-sent
// Commit must still be acked as a duplicate from the durable decided
// table — not re-applied through the late-commit path.
func TestDecidedOutcomeSurvivesRestart(t *testing.T) {
	h := newHarness(t, "a", "b")
	ctx := context.Background()

	var tok struct {
		Token string `json:"token"`
	}
	err := h.nodes["a"].Engine.Invoke(ctx, links.ServiceFor("b"), "Mark", wire.Args{
		"entity": "s", "action": "note", "args": map[string]any{"text": "hi"}, "nid": "N-restart",
	}, &tok)
	if err != nil {
		t.Fatal(err)
	}
	commit := wire.Args{
		"entity": "s", "token": tok.Token, "action": "note",
		"args": map[string]any{"text": "hi"}, "nid": "N-restart",
	}
	if err := h.nodes["a"].Engine.Invoke(ctx, links.ServiceFor("b"), "Commit", commit, nil); err != nil {
		t.Fatalf("first commit: %v", err)
	}
	if n := h.nodes["b"].noteCount(); n != 1 {
		t.Fatalf("action applied %d times, want 1", n)
	}

	// The participant crashes and restarts: in-memory decided cache and
	// pending marks are gone, the store survives.
	lm2, err := links.NewManager("b", h.nodes["b"].DB, h.nodes["b"].Engine, h.clk)
	if err != nil {
		t.Fatal(err)
	}
	applied := 0
	lm2.RegisterAction("note", links.Action{
		Apply: func(entity string, args wire.Args) error {
			applied++
			return nil
		},
	})
	h.nodes["b"].Listener.Register(links.ServiceFor("b"), lm2.Object())

	// The coordinator's sweeper re-sends the Commit whose ack was lost.
	if err := h.nodes["a"].Engine.Invoke(ctx, links.ServiceFor("b"), "Commit", commit, nil); err != nil {
		t.Fatalf("re-sent commit after restart not acked: %v", err)
	}
	if applied != 0 {
		t.Fatalf("re-sent commit re-applied the action %d times after restart", applied)
	}
}

// TestInDoubtDoesNotMaskVeto: when one negotiation link ends in doubt
// (recoverable — the journal sweeper is re-driving it) and another is
// definitively vetoed, TriggerEntity must surface the veto. Reporting
// the in-doubt error instead would tell the caller "you may proceed"
// while a link categorically refused the change.
func TestInDoubtDoesNotMaskVeto(t *testing.T) {
	h := newHarness(t, "a", "x", "y")
	ctx := context.Background()
	lm := h.nodes["a"].Links
	h.nodes["y"].setStatus("s", "BUSY")

	l1 := newLink("L-indoubt", links.Negotiation, links.Permanent,
		links.EntityRef{User: "a", Entity: "e"}, refs("x", "s"))
	l1.Priority = 2
	l1.Triggers = []links.Trigger{{Event: "change", Action: "reserve", Args: wire.Args{"meeting": "T1"}}}
	l2 := newLink("L-veto", links.Negotiation, links.Permanent,
		links.EntityRef{User: "a", Entity: "e"}, refs("y", "s"))
	l2.Priority = 1
	l2.Triggers = []links.Trigger{{Event: "change", Action: "reserve", Args: wire.Args{"meeting": "T2"}}}
	if err := lm.AddLink(l1); err != nil {
		t.Fatal(err)
	}
	if err := lm.AddLink(l2); err != nil {
		t.Fatal(err)
	}

	// L-indoubt (fires first: higher priority) diverges in phase 2;
	// L-veto is definitively rejected at its busy target.
	lm.SetCommitFault(func(nid string, ref links.EntityRef) error {
		if ref.User == "x" {
			return &wire.RemoteError{Code: wire.CodeUnavailable, Msg: "injected loss"}
		}
		return nil
	})
	_, err := lm.TriggerEntity(ctx, "e", "change", nil)
	if err == nil {
		t.Fatal("vetoed trigger returned no error")
	}
	if links.IsInDoubt(err) {
		t.Fatalf("in-doubt error masked the veto: %v", err)
	}
	if wire.CodeOf(err) != wire.CodeConflict {
		t.Fatalf("err = %v, want conflict veto", err)
	}
}

// TestQueryOutcomePresumedAbort: a participant whose coordinator dies
// after Mark pins the lock while in doubt, then presumes abort once
// the coordinator stays unreachable past PresumeAbortAfter — and a
// Commit arriving after the presumed abort is rejected.
func TestQueryOutcomePresumedAbort(t *testing.T) {
	h := newHarness(t, "a", "b")
	ctx := context.Background()
	h.nodes["b"].Links.SetTuning(links.Tuning{PresumeAbortAfter: time.Minute})

	var tok struct {
		Token string `json:"token"`
	}
	err := h.nodes["a"].Engine.Invoke(ctx, links.ServiceFor("b"), "Mark", wire.Args{
		"entity": "s", "action": "reserve", "args": map[string]any{"meeting": "GHOST"}, "nid": "N-ghost",
	}, &tok)
	if err != nil {
		t.Fatal(err)
	}
	if n := h.nodes["b"].Links.PendingMarks(); n != 1 {
		t.Fatalf("pending marks = %d, want 1", n)
	}
	// The coordinator dies without a journaled commit.
	h.net.SetDown("node-a", true)

	// Inside the horizon the mark stays pinned: the sweep keeps the
	// lock alive (even across the nominal TTL) and resolves nothing.
	h.clk.Advance(30 * time.Second)
	h.nodes["b"].Links.ResolvePendingMarks(ctx, h.clk.Now())
	if n := h.nodes["b"].Links.PendingMarks(); n != 1 {
		t.Fatalf("mark resolved inside horizon: pending = %d", n)
	}
	if _, err := h.nodes["b"].Links.Negotiate(ctx, links.Spec{
		Action: "reserve", Args: wire.Args{"meeting": "OTHER"},
		Targets: refs("b", "s"), Constraint: links.And,
	}); wire.CodeOf(err) != wire.CodeConflict {
		t.Fatalf("pinned lock not respected: %v", err)
	}

	// Past the horizon: presume abort, release the lock.
	h.clk.Advance(time.Minute)
	h.nodes["b"].Links.ResolvePendingMarks(ctx, h.clk.Now())
	if n := h.nodes["b"].Links.PendingMarks(); n != 0 {
		t.Fatalf("mark not resolved past horizon: pending = %d", n)
	}
	if got := h.nodes["b"].status("s"); got != "" {
		t.Fatalf("presumed abort applied the change: %q", got)
	}

	// The ghost coordinator returns and re-sends its Commit: too late —
	// the presumed abort is sticky.
	h.net.SetDown("node-a", false)
	err = h.nodes["a"].Engine.Invoke(ctx, links.ServiceFor("b"), "Commit", wire.Args{
		"entity": "s", "token": tok.Token, "action": "reserve",
		"args": map[string]any{"meeting": "GHOST"}, "nid": "N-ghost",
	}, nil)
	if wire.CodeOf(err) != wire.CodeConflict {
		t.Fatalf("post-abort commit err = %v, want conflict", err)
	}
	// The slot is free for a fresh negotiation.
	if _, err := h.nodes["b"].Links.Negotiate(ctx, links.Spec{
		Action: "reserve", Args: wire.Args{"meeting": "FRESH"},
		Targets: refs("b", "s"), Constraint: links.And,
	}); err != nil {
		t.Fatalf("slot still wedged after presumed abort: %v", err)
	}
}
