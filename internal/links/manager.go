package links

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/store"
	"repro/internal/trace"
	"repro/internal/wire"
)

// ServicePrefix prefixes the per-user links service name.
const ServicePrefix = "links."

// ServiceFor returns the links service name for a user.
func ServiceFor(user string) string { return ServicePrefix + user }

// Action is an application-registered entity action: Check validates
// that the action could apply to an entity (the "condition" of the ECA
// rule, and the availability test of §4.2 op 2); Apply performs it.
// Both run under the entity's lock during negotiation.
type Action struct {
	Check func(entity string, args wire.Args) error
	Apply func(entity string, args wire.Args) error
}

// EventHook observes link lifecycle events ("promote", "delete",
// "expire") so the application can react (the calendar converts
// tentative meetings when it sees a promote).
type EventHook func(kind string, l *Link, args wire.Args)

// Manager is a node's SyDLinks module (paper §3.1e): it "enables an
// application to create and enforce interdependencies, constraints
// and automatic updates among groups of SyD entities".
type Manager struct {
	self string
	eng  *engine.Engine
	clk  clock.Clock

	Locks *LockTable

	linksT   *store.Table
	waitingT *store.Table
	methodsT *store.Table
	pendingT *store.Table
	journalT *store.Table

	mu      sync.RWMutex
	actions map[string]Action
	hook    EventHook
	met     *metrics.Registry
	tracer  *trace.Tracer
	lsnSrc  func() uint64 // WAL position source for journal trace events
	tuning  Tuning

	// Participant-side fault-tolerance state (see participant.go).
	partMu   sync.Mutex
	pendMark map[string]*pendingMark // token -> mark awaiting Commit/Abort
	decided  map[string]decision     // token -> recently decided outcome
	decidedT *store.Table            // durable decided-token outcomes

	// inflight tracks negotiations this coordinator is currently
	// driving. Between the first Mark and the journalBegin of a
	// negotiation no journal row exists, yet presuming abort for it
	// would be wrong — a participant's fault sweep could release a mark
	// the coordinator is about to commit. Outcome answers "unknown" for
	// these ids so in-doubt participants wait instead.
	inflight map[string]struct{}

	// commitFault/markFault, when set, intercept phase-2 commit sends /
	// phase-1 mark sends — the chaos harness and fault tests use them
	// to model a coordinator that crashes or loses connectivity
	// mid-protocol, or to interleave sweeps with a live phase 1.
	commitFault func(nid string, ref EntityRef) error
	markFault   func(nid string, ref EntityRef) error

	// batchOff disables the per-node MarkBatch/CommitBatch/AbortBatch
	// RPCs (see batch.go); outcomes are identical either way, so this
	// exists for equivalence tests, not operation.
	batchOff bool
}

// NewManager creates the links manager for user self, creating the
// link database tables in db (§4.2 op 1).
func NewManager(self string, db *store.DB, eng *engine.Engine, clk clock.Clock) (*Manager, error) {
	if clk == nil {
		clk = clock.System
	}
	lt, wt, mt, pt, jt, dt, err := createLinkDB(db)
	if err != nil {
		return nil, err
	}
	return &Manager{
		self:     self,
		eng:      eng,
		clk:      clk,
		Locks:    NewLockTable(clk, 0),
		linksT:   lt,
		waitingT: wt,
		methodsT: mt,
		pendingT: pt,
		journalT: jt,
		decidedT: dt,
		actions:  make(map[string]Action),
		tuning:   DefaultTuning(),
		pendMark: make(map[string]*pendingMark),
		decided:  make(map[string]decision),
		inflight: make(map[string]struct{}),
	}, nil
}

// SetMetrics wires negotiation outcome/retry counters into reg (nil
// disables). Core attaches the node registry so sydbench -metrics and
// the sys.<user> introspection service surface the counters.
func (m *Manager) SetMetrics(reg *metrics.Registry) {
	m.mu.Lock()
	m.met = reg
	m.mu.Unlock()
}

func (m *Manager) registry() *metrics.Registry {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.met
}

// count records a negotiation-protocol observation (zero duration —
// these series are used as counters).
func (m *Manager) count(method string, code wire.ErrCode) {
	m.registry().Observe(metrics.LayerLinks, "negotiate", method, code, 0)
}

// SetTracer wires the node tracer in (nil disables). Negotiations open
// a links.Negotiate root with Mark/Commit/Abort children; the journal
// sweeps rejoin the originating trace through the ids persisted with
// each row, so redrives and in-doubt resolutions land in the same tree.
func (m *Manager) SetTracer(t *trace.Tracer) {
	m.mu.Lock()
	m.tracer = t
	m.mu.Unlock()
}

func (m *Manager) tracerRef() *trace.Tracer {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.tracer
}

// SetLSNSource wires a WAL-position source (core passes the durable
// store's LastLSN) so journal.begin trace events carry the log position
// the decision landed at. Nil disables the annotation.
func (m *Manager) SetLSNSource(f func() uint64) {
	m.mu.Lock()
	m.lsnSrc = f
	m.mu.Unlock()
}

func (m *Manager) lastLSN() (uint64, bool) {
	m.mu.RLock()
	f := m.lsnSrc
	m.mu.RUnlock()
	if f == nil {
		return 0, false
	}
	return f(), true
}

// SetCommitFault installs (or, with nil, removes) a phase-2 fault
// injector: commitTarget consults it before sending and treats a
// non-nil error as the send's outcome. Chaos tests use it to model a
// coordinator crash between commits; production code leaves it unset.
func (m *Manager) SetCommitFault(f func(nid string, ref EntityRef) error) {
	m.mu.Lock()
	m.commitFault = f
	m.mu.Unlock()
}

func (m *Manager) commitFaultFor(nid string, ref EntityRef) error {
	m.mu.RLock()
	f := m.commitFault
	m.mu.RUnlock()
	if f == nil {
		return nil
	}
	return f(nid, ref)
}

// SetMarkFault installs (or, with nil, removes) a phase-1 fault
// injector: markTarget consults it before sending. Fault tests use it
// to interleave participant sweeps with a live mark phase.
func (m *Manager) SetMarkFault(f func(nid string, ref EntityRef) error) {
	m.mu.Lock()
	m.markFault = f
	m.mu.Unlock()
}

func (m *Manager) markFaultFor(nid string, ref EntityRef) error {
	m.mu.RLock()
	f := m.markFault
	m.mu.RUnlock()
	if f == nil {
		return nil
	}
	return f(nid, ref)
}

// noteInflight registers a negotiation this coordinator is driving;
// Outcome answers "unknown" for it until dropInflight.
func (m *Manager) noteInflight(nid string) {
	m.mu.Lock()
	m.inflight[nid] = struct{}{}
	m.mu.Unlock()
}

// dropInflight removes a negotiation from the in-flight set. It runs
// only after the negotiation's fate is final and published: the journal
// row exists (commit) or never will (abort).
func (m *Manager) dropInflight(nid string) {
	m.mu.Lock()
	delete(m.inflight, nid)
	m.mu.Unlock()
}

func (m *Manager) isInflight(nid string) bool {
	m.mu.RLock()
	_, ok := m.inflight[nid]
	m.mu.RUnlock()
	return ok
}

// Self returns the owning user id.
func (m *Manager) Self() string { return m.self }

// NewLinkID mints a globally unique link id. Ids sort in mint order:
// link ids are store keys, and deterministic iteration order is what
// makes same-seed simulation runs replay identically.
func NewLinkID() string {
	return "L-" + mintOrdered()
}

// RegisterAction registers (or replaces) an entity action.
func (m *Manager) RegisterAction(name string, a Action) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.actions[name] = a
}

// SetEventHook installs the application's lifecycle observer.
func (m *Manager) SetEventHook(h EventHook) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.hook = h
}

func (m *Manager) fireHook(kind string, l *Link, args wire.Args) {
	m.mu.RLock()
	h := m.hook
	m.mu.RUnlock()
	if h != nil {
		h(kind, l, args)
	}
}

func (m *Manager) action(name string) (Action, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	a, ok := m.actions[name]
	if !ok {
		return Action{}, &wire.RemoteError{Code: wire.CodeBadArgs, Msg: fmt.Sprintf("links: no action %q registered on %s", name, m.self)}
	}
	return a, nil
}

// --- local link CRUD --------------------------------------------------------

// AddLink stores a link row locally, registering it in the waiting
// table when it is tentative and waiting on another link.
func (m *Manager) AddLink(l *Link) error {
	if l.Created.IsZero() {
		l.Created = m.clk.Now()
	}
	if err := l.Validate(); err != nil {
		return err
	}
	row, err := linkToRow(l)
	if err != nil {
		return err
	}
	if err := m.linksT.Insert(row); err != nil {
		return err
	}
	if l.WaitingOn != "" {
		return m.waitingT.Insert(store.Row{
			"id": l.ID, "waiting_on": l.WaitingOn,
			"priority": int64(l.Priority), "grp": l.Group,
		})
	}
	return nil
}

// GetLink fetches a local link by id.
func (m *Manager) GetLink(id string) (*Link, bool) {
	r, ok := m.linksT.Get(id)
	if !ok {
		return nil, false
	}
	l, err := rowToLink(r)
	if err != nil {
		return nil, false
	}
	return l, true
}

// LinksOn returns all local links attached to entity, sorted by
// priority descending then id (so "highest priority" selections are
// deterministic).
func (m *Manager) LinksOn(entity string) []*Link {
	rows := m.linksT.SelectEq("owner_entity", entity)
	out := make([]*Link, 0, len(rows))
	for _, r := range rows {
		if l, err := rowToLink(r); err == nil {
			out = append(out, l)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Priority != out[j].Priority {
			return out[i].Priority > out[j].Priority
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// AllLinks returns every local link (diagnostics and tests).
func (m *Manager) AllLinks() []*Link {
	rows := m.linksT.Select(nil)
	out := make([]*Link, 0, len(rows))
	for _, r := range rows {
		if l, err := rowToLink(r); err == nil {
			out = append(out, l)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// removeLocal deletes the local row (and any waiting entry) without
// cascading.
func (m *Manager) removeLocal(id string) {
	_ = m.linksT.Delete(id)
	_ = m.waitingT.Delete(id)
}

// --- §4.2 op 3: tentative → permanent promotion -----------------------------

// Promoted describes one promotion performed during a delete.
type Promoted struct {
	Link *Link
	// TriggerErrs holds best-effort errors from firing the promoted
	// link's "promote" triggers.
	TriggerErrs []error
}

// promoteWaiters converts the highest-priority waiting group blocked
// on blockerID from tentative to permanent and fires their "promote"
// triggers. Remaining waiters are re-pointed at the first promoted
// link (the entity is now held by the promoted party — a design
// decision documented in DESIGN.md).
func (m *Manager) promoteWaiters(ctx context.Context, blockerID string) []Promoted {
	rows := m.waitingT.SelectEq("waiting_on", blockerID)
	if len(rows) == 0 {
		return nil
	}
	// Highest priority wins; its whole group converts together.
	best := rows[0]
	for _, r := range rows[1:] {
		if r["priority"].(int64) > best["priority"].(int64) {
			best = r
		}
	}
	bestGroup := best["grp"].(string)

	var winners, losers []store.Row
	for _, r := range rows {
		sameGroup := bestGroup != "" && r["grp"].(string) == bestGroup
		if r["id"] == best["id"] || sameGroup {
			winners = append(winners, r)
		} else {
			losers = append(losers, r)
		}
	}
	sort.Slice(winners, func(i, j int) bool { return winners[i]["id"].(string) < winners[j]["id"].(string) })

	var promoted []Promoted
	var firstID string
	for _, r := range winners {
		id := r["id"].(string)
		if err := m.linksT.Update(store.Row{"subtype": string(Permanent), "waiting_on": ""}, id); err != nil {
			continue
		}
		_ = m.waitingT.Delete(id)
		l, ok := m.GetLink(id)
		if !ok {
			continue
		}
		if firstID == "" {
			firstID = id
		}
		p := Promoted{Link: l}
		for _, res := range m.fireTriggers(ctx, l, "promote", nil) {
			if res.Err != nil {
				p.TriggerErrs = append(p.TriggerErrs, res.Err)
			}
		}
		m.fireHook("promote", l, nil)
		promoted = append(promoted, p)
	}
	// Losers now wait on the winner instead of the deleted blocker.
	if firstID != "" {
		for _, r := range losers {
			id := r["id"].(string)
			_ = m.waitingT.Update(store.Row{"waiting_on": firstID}, id)
			_ = m.linksT.Update(store.Row{"waiting_on": firstID}, id)
		}
	}
	return promoted
}

// PromoteLink converts a local tentative link to permanent outside a
// deletion (used when a tentative participant becomes available and
// the renegotiation succeeds, §5). Unlike waiting-table promotion this
// does not fire "promote" triggers — the caller just completed the
// work those triggers would start.
func (m *Manager) PromoteLink(id string) error {
	l, ok := m.GetLink(id)
	if !ok {
		return &wire.RemoteError{Code: wire.CodeNoService, Msg: fmt.Sprintf("links: no link %q on %s", id, m.self)}
	}
	if l.Subtype == Permanent {
		return nil
	}
	if err := m.linksT.Update(store.Row{"subtype": string(Permanent), "waiting_on": ""}, id); err != nil {
		return err
	}
	_ = m.waitingT.Delete(id)
	l.Subtype = Permanent
	l.WaitingOn = ""
	m.fireHook("promote", l, nil)
	return nil
}

// --- §4.2 op 4 / §4.4: cascading deletion ------------------------------------

// DeleteLink implements SyD_deleteLink() (§4.2 op 4, §4.4): delete the
// local row and update the application state, promote the
// highest-priority waiting group, and cascade the deletion to every
// other participating user. visited carries the users already
// processed to terminate the cascade on cyclic link graphs.
//
// Note on ordering: the paper lists "convert waiting links" before
// "delete the local link / update the calendar database". We release
// the application state (delete triggers + hook) *before* promoting,
// because a promoted link's triggers immediately try to take over the
// resource the deleted link held (the §5 scenario: a cancelled
// meeting's slot is grabbed by the highest-priority tentative
// meeting); promoting first would find the slot still occupied.
func (m *Manager) DeleteLink(ctx context.Context, id string, visited []string) ([]Promoted, error) {
	for _, v := range visited {
		if v == m.self {
			return nil, nil
		}
	}
	visited = append(visited, m.self)

	l, ok := m.GetLink(id)
	if !ok {
		// No local row, but local waiters may still reference the
		// id (the blocker lived elsewhere).
		return m.promoteWaiters(ctx, id), nil
	}
	m.removeLocal(id)

	// "Delete" triggers and the hook update the local database
	// (§4.4 step 5: "update the calendar database of the user").
	for _, res := range m.fireTriggers(ctx, l, "delete", nil) {
		_ = res // best effort; errors already recorded in result
	}
	m.fireHook("delete", l, nil)

	// §4.4 steps 1-2: waiting links convert, highest priority first.
	promoted := m.promoteWaiters(ctx, id)

	// §4.4 steps 4/6-7: cascade to the other participants via SyDEngine.
	var firstErr error
	for _, u := range l.participants() {
		if u == m.self || contains(visited, u) {
			continue
		}
		err := m.eng.Invoke(ctx, ServiceFor(u), "DeleteLink", wire.Args{
			"id": id, "visited": visited,
		}, nil)
		if err != nil && wire.CodeOf(err) == wire.CodeUnavailable {
			// The participant's device is off; leave a tombstone so
			// the periodic sweep retries once it returns.
			m.recordPendingDelete(id, u)
			continue
		}
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("links: cascade delete %s at %s: %w", id, u, err)
		}
	}
	return promoted, firstErr
}

// recordPendingDelete remembers an undeliverable cascade deletion.
func (m *Manager) recordPendingDelete(id, user string) {
	err := m.pendingT.Insert(store.Row{"id": id, "user": user})
	if err != nil && !errors.Is(err, store.ErrDupKey) {
		// A full pending table is diagnosable via PendingDeletes.
		return
	}
}

// PendingDeletes lists tombstoned (link id, user) pairs, sorted.
func (m *Manager) PendingDeletes() [][2]string {
	rows := m.pendingT.Select(nil)
	out := make([][2]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, [2]string{r["id"].(string), r["user"].(string)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// RetryPendingDeletes re-issues tombstoned cascade deletions; called
// by the same periodic schedule as the expiry sweep. Still-unreachable
// participants stay tombstoned.
func (m *Manager) RetryPendingDeletes(ctx context.Context) int {
	done := 0
	for _, pd := range m.PendingDeletes() {
		id, user := pd[0], pd[1]
		err := m.eng.Invoke(ctx, ServiceFor(user), "DeleteLink", wire.Args{
			"id": id, "visited": []string{m.self},
		}, nil)
		if err != nil && wire.CodeOf(err) == wire.CodeUnavailable {
			continue
		}
		// Success or a permanent error (e.g. the row is already
		// gone): drop the tombstone either way.
		_ = m.pendingT.Delete(id, user)
		done++
	}
	return done
}

// DeleteLinkLocal removes only this node's row of a link — promotion
// of local waiters and local "delete" triggers still run, but the
// deletion does not cascade to other participants. Used when a single
// participant leaves a link (dropout, bump re-queue) while the logical
// link lives on elsewhere.
func (m *Manager) DeleteLinkLocal(ctx context.Context, id string) ([]Promoted, error) {
	l, ok := m.GetLink(id)
	if !ok {
		return nil, nil
	}
	visited := l.participants() // mark everyone visited -> no cascade
	if !contains(visited, m.self) {
		visited = append(visited, m.self)
	}
	// Strip self back out so DeleteLink processes the local row.
	var others []string
	for _, u := range visited {
		if u != m.self {
			others = append(others, u)
		}
	}
	return m.DeleteLink(ctx, id, others)
}

// participants lists the distinct users referenced by the link
// (owner + targets), sorted.
func (l *Link) participants() []string {
	seen := map[string]bool{l.Owner.User: true}
	for _, t := range l.Targets {
		seen[t.User] = true
	}
	out := make([]string, 0, len(seen))
	for u := range seen {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

// --- §4.2 op 6: link expiry ---------------------------------------------------

// ExpireSweep deletes every local link whose expiry time has passed
// (cascading, like any other deletion) and returns the expired ids.
func (m *Manager) ExpireSweep(ctx context.Context, now time.Time) []string {
	rows := m.linksT.Select(func(r store.Row) bool {
		exp := r["expires"].(time.Time)
		return !exp.IsZero() && exp.Before(now)
	})
	var expired []string
	for _, r := range rows {
		id := r["id"].(string)
		if l, ok := m.GetLink(id); ok {
			m.fireHook("expire", l, nil)
		}
		_, _ = m.DeleteLink(ctx, id, nil)
		expired = append(expired, id)
	}
	sort.Strings(expired)
	return expired
}

// --- §4.2 op 5: method invocation forwarding ----------------------------------

// AddMethodLink records that executing srcMethod on the local service
// must also execute destMethod on destService at targetUser.
func (m *Manager) AddMethodLink(service, srcMethod, targetUser, destService, destMethod string) error {
	err := m.methodsT.Insert(store.Row{
		"service": service, "src_method": srcMethod,
		"target_user": targetUser, "dest_service": destService, "dest_method": destMethod,
	})
	if err != nil && errors.Is(err, store.ErrDupKey) {
		return nil
	}
	return err
}

// RemoveMethodLink removes a method forwarding entry.
func (m *Manager) RemoveMethodLink(service, srcMethod, targetUser, destMethod string) {
	_ = m.methodsT.Delete(service, srcMethod, targetUser, destMethod)
}

// ForwardResult is one method-forwarding outcome.
type ForwardResult struct {
	TargetUser string
	Service    string
	Method     string
	Err        error
}

// ForwardMethod implements the op-5 contract: the application calls it
// after executing (service, method) locally; the manager looks the
// pair up in SyD_LinkMethod and invokes the mapped remote methods.
func (m *Manager) ForwardMethod(ctx context.Context, service, method string, args wire.Args) []ForwardResult {
	rows := m.methodsT.SelectEq("src_method", method)
	var out []ForwardResult
	for _, r := range rows {
		if r["service"].(string) != service {
			continue
		}
		fr := ForwardResult{
			TargetUser: r["target_user"].(string),
			Service:    r["dest_service"].(string),
			Method:     r["dest_method"].(string),
		}
		fr.Err = m.eng.Invoke(ctx, fr.Service, fr.Method, args, nil)
		out = append(out, fr)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TargetUser < out[j].TargetUser })
	return out
}

// --- trigger firing -----------------------------------------------------------

// TriggerResult is the outcome of firing one trigger of one link.
type TriggerResult struct {
	LinkID      string
	Trigger     Trigger
	Negotiation *Result // set for negotiation-action triggers
	Err         error
}

// TriggerEntity announces an attempted change ("Mark X", §4.3) on a
// local entity: every permanent link attached to the entity whose
// triggers match event fires. Negotiation links must succeed —
// a failed negotiation vetoes the change and TriggerEntity returns an
// error; the caller must not apply its local change. Subscription
// links fire best-effort. Among tentative links only the
// highest-priority one fires (§5: "if the tentative link back to A is
// of highest priority, it will get triggered").
func (m *Manager) TriggerEntity(ctx context.Context, entity, event string, args wire.Args) ([]TriggerResult, error) {
	linksOn := m.LinksOn(entity)
	var toFire []*Link
	var bestTentative *Link
	for _, l := range linksOn {
		if len(l.TriggersFor(event)) == 0 {
			continue
		}
		if l.Subtype == Tentative {
			if bestTentative == nil || l.Priority > bestTentative.Priority {
				bestTentative = l
			}
			continue
		}
		toFire = append(toFire, l)
	}
	if bestTentative != nil {
		toFire = append(toFire, bestTentative)
	}

	var results []TriggerResult
	var veto, inDoubt error
	for _, l := range toFire {
		res := m.fireTriggers(ctx, l, event, args)
		results = append(results, res...)
		if l.Type == Negotiation {
			for _, r := range res {
				if r.Err == nil {
					continue
				}
				if IsInDoubt(r.Err) {
					// Not a veto: the COMMIT decision is journaled and
					// recovery is re-driving the stragglers. The caller
					// may proceed; the error still surfaces — but it
					// must never mask a genuine veto from another link.
					if inDoubt == nil {
						inDoubt = r.Err
					}
				} else if veto == nil {
					veto = fmt.Errorf("links: negotiation link %s vetoed %s on %s: %w", l.ID, event, entity, r.Err)
				}
			}
		}
	}
	if veto != nil {
		return results, veto
	}
	return results, inDoubt
}

// TriggerLink fires a specific link's triggers for event.
func (m *Manager) TriggerLink(ctx context.Context, id, event string, args wire.Args) ([]TriggerResult, error) {
	l, ok := m.GetLink(id)
	if !ok {
		return nil, &wire.RemoteError{Code: wire.CodeNoService, Msg: fmt.Sprintf("links: no link %q on %s", id, m.self)}
	}
	return m.fireTriggers(ctx, l, event, args), nil
}

// fireTriggers executes every trigger of l matching event.
func (m *Manager) fireTriggers(ctx context.Context, l *Link, event string, args wire.Args) []TriggerResult {
	var out []TriggerResult
	for _, t := range l.TriggersFor(event) {
		merged := t.MergedArgs(args)
		res := TriggerResult{LinkID: l.ID, Trigger: t}
		tctx, span := trace.Start(ctx, "links.Trigger")
		if span != nil {
			span.Annotate(trace.String("link", l.ID), trace.String("event", event), trace.String("type", string(l.Type)))
		}
		switch {
		case t.Action != "" && l.Type == Negotiation:
			r, err := m.Negotiate(tctx, Spec{
				Action:     t.Action,
				Args:       merged,
				Targets:    l.Targets,
				Constraint: l.Constraint,
				K:          l.EffectiveK(),
			})
			res.Negotiation = r
			res.Err = err
		case t.Action != "" && l.Type == Subscription:
			// Best-effort information flow to every subscriber.
			for _, tgt := range l.Targets {
				err := m.applyRemote(tctx, tgt, t.Action, merged)
				if err != nil && res.Err == nil {
					res.Err = err
				}
			}
		case t.Method != "":
			for _, tgt := range l.Targets {
				svc := t.Service
				if svc == "" {
					svc = "cal.%s"
				}
				if containsPercent(svc) {
					svc = fmt.Sprintf(svc, tgt.User)
				}
				callArgs := merged.Clone()
				callArgs["link"] = l.ID
				callArgs["source"] = m.self
				callArgs["targetEntity"] = tgt.Entity
				err := m.eng.Invoke(tctx, svc, t.Method, callArgs, nil)
				if err != nil && res.Err == nil {
					res.Err = err
				}
			}
		default:
			res.Err = fmt.Errorf("links: trigger on %s has neither action nor method", l.ID)
		}
		span.FinishErr(res.Err)
		out = append(out, res)
	}
	return out
}

func containsPercent(s string) bool {
	for i := 0; i+1 < len(s); i++ {
		if s[i] == '%' && s[i+1] == 's' {
			return true
		}
	}
	return false
}

// applyRemote runs an entity action on a (possibly remote) entity
// without negotiation locking.
func (m *Manager) applyRemote(ctx context.Context, tgt EntityRef, action string, args wire.Args) error {
	if tgt.User == m.self {
		a, err := m.action(action)
		if err != nil {
			return err
		}
		if a.Check != nil {
			if err := a.Check(tgt.Entity, args); err != nil {
				return err
			}
		}
		if a.Apply != nil {
			return a.Apply(tgt.Entity, args)
		}
		return nil
	}
	return m.eng.Invoke(ctx, ServiceFor(tgt.User), "Apply", wire.Args{
		"entity": tgt.Entity, "action": action, "args": map[string]any(args),
	}, nil)
}

// installRemote adds a link row at a remote participant.
func (m *Manager) installRemote(ctx context.Context, user string, l *Link) error {
	if user == m.self {
		return m.AddLink(l)
	}
	raw, err := json.Marshal(l)
	if err != nil {
		return err
	}
	var linkMap map[string]any
	if err := json.Unmarshal(raw, &linkMap); err != nil {
		return err
	}
	return m.eng.Invoke(ctx, ServiceFor(user), "AddLink", wire.Args{"link": linkMap}, nil)
}

// InstallAt adds a link row at the given user's link database (local
// or remote) — the building block for back links and subscriptions.
func (m *Manager) InstallAt(ctx context.Context, user string, l *Link) error {
	if err := l.Validate(); err != nil {
		return err
	}
	return m.installRemote(ctx, user, l)
}
