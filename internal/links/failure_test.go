package links_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/calendar"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/directory"
	"repro/internal/links"
	"repro/internal/sim"
	"repro/internal/wire"
)

// TestNegotiationRecoversAfterLoss: on a lossy network negotiations
// may fail or end in doubt, but after the loss clears and the fault
// sweeps run, every negotiation must have resolved all-or-none — the
// two targets always agree on the slot holder — and a fresh
// negotiation succeeds (locks expire or resolve rather than wedging
// entities forever).
func TestNegotiationRecoversAfterLoss(t *testing.T) {
	// Build the world on a loss-free network first, then flip the
	// loss on only for the chaos phase — harness setup itself must
	// not be disturbed.
	net := sim.New(sim.Config{})
	clk := clock.NewFake(time.Date(2003, 4, 22, 9, 0, 0, 0, time.UTC))
	srv := directory.NewServer(directory.WithClock(clk), directory.WithTTL(time.Hour))
	if _, err := net.Listen("dir", srv.Handler()); err != nil {
		t.Fatal(err)
	}
	h := &harness{t: t, net: net, clk: clk, nodes: map[string]*tnode{}}
	for _, u := range []string{"a", "x", "y"} {
		h.addNode(u)
	}
	ctx := context.Background()
	// Fast recovery schedule so the drain loop converges quickly.
	tun := links.Tuning{RetryBase: 100 * time.Millisecond, PresumeAbortAfter: 30 * time.Second}
	for _, n := range h.nodes {
		n.Links.SetTuning(tun)
	}
	// drain heals the network and runs the periodic fault sweeps (with
	// the clock advancing past each retry backoff) until every journal
	// row and pending mark is resolved.
	drain := func(round int) {
		h.net.SetLoss(0)
		for i := 0; i < 40; i++ {
			h.clk.Advance(time.Second)
			settled := true
			for _, n := range h.nodes {
				n.Links.FaultSweep(ctx, h.clk.Now())
				if len(n.Links.JournalPending()) > 0 || n.Links.PendingMarks() > 0 {
					settled = false
				}
			}
			if settled {
				return
			}
		}
		t.Fatalf("round %d: journals/marks did not drain", round)
	}

	rng := rand.New(rand.NewSource(99))
	failures := 0
	for i := 0; i < 40; i++ {
		// Runtime-mutable loss: each round picks a fresh drop rate.
		h.net.SetLoss(0.2 + 0.5*rng.Float64())
		_, err := h.nodes["a"].Links.Negotiate(context.Background(), links.Spec{
			Action:     "reserve",
			Args:       wire.Args{"meeting": fmt.Sprintf("chaos-%d", i)},
			Targets:    refs("x", "s", "y", "s"),
			Constraint: links.And,
		})
		if err != nil {
			failures++
		}
		drain(i)
		// Consistency: once drained, x and y must agree on the holder.
		if h.nodes["x"].status("s") != h.nodes["y"].status("s") {
			t.Fatalf("round %d: split brain x=%q y=%q", i, h.nodes["x"].status("s"), h.nodes["y"].status("s"))
		}
		// Reset for the next round.
		h.nodes["x"].setStatus("s", "")
		h.nodes["y"].setStatus("s", "")
		// Expire any stranded locks.
		h.clk.Advance(links.DefaultLockTTL + time.Second)
	}
	if failures == 0 {
		t.Fatal("chaos produced no failures — the test is not exercising anything")
	}
	// Healed network: negotiation succeeds immediately.
	if _, err := h.nodes["a"].Links.Negotiate(context.Background(), links.Spec{
		Action:     "reserve",
		Args:       wire.Args{"meeting": "final"},
		Targets:    refs("x", "s", "y", "s"),
		Constraint: links.And,
	}); err != nil {
		t.Fatalf("post-chaos negotiation failed: %v", err)
	}
}

// TestStrandedLockExpires: a negotiator that marked an entity and then
// died must not wedge it forever — the lock TTL frees it.
func TestStrandedLockExpires(t *testing.T) {
	h := newHarness(t, "a", "b")
	ctx := context.Background()
	// "a" marks b's entity remotely and then crashes (never commits).
	err := h.nodes["a"].Engine.Invoke(ctx, links.ServiceFor("b"), "Mark", wire.Args{
		"entity": "s", "action": "reserve", "args": map[string]any{"meeting": "DEAD"},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// A new negotiation against the same entity fails while the lock
	// is live...
	_, err = h.nodes["a"].Links.Negotiate(ctx, links.Spec{
		Action: "reserve", Args: wire.Args{"meeting": "M2"},
		Targets: refs("b", "s"), Constraint: links.And,
	})
	if wire.CodeOf(err) != wire.CodeConflict {
		t.Fatalf("live lock not respected: %v", err)
	}
	// ...and succeeds after the TTL.
	h.clk.Advance(links.DefaultLockTTL + time.Second)
	if _, err := h.nodes["a"].Links.Negotiate(ctx, links.Spec{
		Action: "reserve", Args: wire.Args{"meeting": "M2"},
		Targets: refs("b", "s"), Constraint: links.And,
	}); err != nil {
		t.Fatalf("expired lock not stolen: %v", err)
	}
	if h.nodes["b"].status("s") != "M2" {
		t.Fatalf("b status = %q", h.nodes["b"].status("s"))
	}
}

// TestCascadeDeleteToleratesDownNode: the §4.4 cascade skips
// unreachable participants (their device may be off) instead of
// failing; the local deletion still happens, and re-issuing the delete
// after the node returns cleans up the remainder.
func TestCascadeDeleteToleratesDownNode(t *testing.T) {
	h := newHarness(t, "a", "b", "c")
	ctx := context.Background()
	tpl := newLink("LD", links.Negotiation, links.Permanent,
		links.EntityRef{User: "a", Entity: "s"}, refs("b", "s", "c", "s"))
	if _, err := h.nodes["a"].Links.CreateNegotiatedLink(ctx, tpl, "reserve", wire.Args{"meeting": "M"}); err != nil {
		t.Fatal(err)
	}
	h.net.SetDown("node-c", true)
	if _, err := h.nodes["a"].Links.DeleteLink(ctx, "LD", nil); err != nil {
		t.Fatalf("cascade with down node errored: %v", err)
	}
	if _, ok := h.nodes["a"].Links.GetLink("LD"); ok {
		t.Fatal("a's row survived")
	}
	if _, ok := h.nodes["b"].Links.GetLink("LD"); ok {
		t.Fatal("b's row survived")
	}
	// c was unreachable; its row remains until it reconnects.
	if _, ok := h.nodes["c"].Links.GetLink("LD"); !ok {
		t.Fatal("c's row vanished while down?")
	}
	// The unreachable participant is tombstoned for retry.
	if pd := h.nodes["a"].Links.PendingDeletes(); len(pd) != 1 || pd[0] != [2]string{"LD", "c"} {
		t.Fatalf("pending deletes = %v", pd)
	}
	// While c is still down, a retry changes nothing.
	if n := h.nodes["a"].Links.RetryPendingDeletes(ctx); n != 0 {
		t.Fatalf("retry against down node removed %d tombstones", n)
	}
	h.net.SetDown("node-c", false)
	// The periodic retry now reaches c.
	if n := h.nodes["a"].Links.RetryPendingDeletes(ctx); n != 1 {
		t.Fatalf("retry removed %d tombstones, want 1", n)
	}
	if _, ok := h.nodes["c"].Links.GetLink("LD"); ok {
		t.Fatal("c's row survived the retry")
	}
	if pd := h.nodes["a"].Links.PendingDeletes(); len(pd) != 0 {
		t.Fatalf("tombstones remain: %v", pd)
	}
}

// TestPromotionPropertyHighestGroupWins: for random waiting-link
// populations, deleting the blocker promotes exactly the links of the
// highest-priority group (ties by row id), and every loser is
// re-pointed at a promoted link.
func TestPromotionPropertyHighestGroupWins(t *testing.T) {
	f := func(prioSeeds []uint8) bool {
		if len(prioSeeds) == 0 || len(prioSeeds) > 12 {
			return true // trivially pass out-of-range shapes
		}
		h := newHarness(t, "a", "b")
		lm := h.nodes["a"].Links
		owner := links.EntityRef{User: "a", Entity: "s"}
		if err := lm.AddLink(newLink("BLOCK", links.Negotiation, links.Permanent, owner, refs("b", "s"))); err != nil {
			return false
		}
		bestPrio := -1
		for i, ps := range prioSeeds {
			prio := int(ps % 8)
			if prio > bestPrio {
				bestPrio = prio
			}
			l := newLink(fmt.Sprintf("W%02d", i), links.Negotiation, links.Tentative, owner, refs("b", "s2"))
			l.WaitingOn = "BLOCK"
			l.Priority = prio
			l.Group = fmt.Sprintf("G%d", prio) // group == priority class
			if err := lm.AddLink(l); err != nil {
				return false
			}
		}
		promoted, err := lm.DeleteLink(context.Background(), "BLOCK", nil)
		if err != nil {
			return false
		}
		// Every promoted link must be from the best priority group.
		promotedIDs := map[string]bool{}
		for _, p := range promoted {
			if p.Link.Priority != bestPrio {
				return false
			}
			promotedIDs[p.Link.ID] = true
		}
		// Count expected winners.
		expected := 0
		for _, ps := range prioSeeds {
			if int(ps%8) == bestPrio {
				expected++
			}
		}
		if len(promoted) != expected {
			return false
		}
		// Losers remain tentative and wait on a promoted link.
		for i, ps := range prioSeeds {
			id := fmt.Sprintf("W%02d", i)
			l, ok := lm.GetLink(id)
			if !ok {
				return false
			}
			if int(ps%8) == bestPrio {
				if l.Subtype != links.Permanent {
					return false
				}
				continue
			}
			if l.Subtype != links.Tentative || !promotedIDs[l.WaitingOn] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(17))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestNegotiationAtomicityProperty: for random availability patterns,
// an and-negotiation either changes every target or none.
func TestNegotiationAtomicityProperty(t *testing.T) {
	f := func(busyMask uint8) bool {
		h := newHarness(t, "a", "t0", "t1", "t2")
		targets := []string{"t0", "t1", "t2"}
		for i, u := range targets {
			if busyMask&(1<<i) != 0 {
				h.nodes[u].setStatus("s", "BUSY")
			}
		}
		_, err := h.nodes["a"].Links.Negotiate(context.Background(), links.Spec{
			Action:     "reserve",
			Args:       wire.Args{"meeting": "ATOMIC"},
			Targets:    refs("t0", "s", "t1", "s", "t2", "s"),
			Constraint: links.And,
		})
		allFree := busyMask&0b111 == 0
		if allFree != (err == nil) {
			return false
		}
		for i, u := range targets {
			want := ""
			if busyMask&(1<<i) != 0 {
				want = "BUSY"
			} else if allFree {
				want = "ATOMIC"
			}
			if h.nodes[u].status("s") != want {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 16, Rand: rand.New(rand.NewSource(23))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestExpiredMeetingLinksCascade: a calendar meeting created with an
// expiry is dissolved everywhere by the periodic sweep (§4.2 op 6),
// exercising expiry through the full application stack.
func TestExpiredMeetingLinksCascade(t *testing.T) {
	net := sim.New(sim.Config{})
	clk := clock.NewFake(time.Date(2003, 4, 21, 8, 0, 0, 0, time.UTC))
	srv := directory.NewServer(directory.WithClock(clk), directory.WithTTL(24*time.Hour))
	if _, err := net.Listen("dir", srv.Handler()); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	cals := map[string]*calendar.Calendar{}
	for _, u := range []string{"a", "b"} {
		n, err := core.Start(ctx, core.Config{User: u, Net: net, DirAddr: "dir", Clock: clk})
		if err != nil {
			t.Fatal(err)
		}
		c, err := calendar.New(ctx, n)
		if err != nil {
			t.Fatal(err)
		}
		cals[u] = c
	}
	m, err := cals["a"].SetupMeeting(ctx, calendar.Request{
		Title: "ephemeral", Day: "2003-04-22", Hour: 10, PinSlot: true,
		Must:    []string{"b"},
		Expires: clk.Now().Add(2 * time.Hour),
	})
	if err != nil {
		t.Fatal(err)
	}
	clk.Advance(3 * time.Hour)
	expired := cals["a"].Links().ExpireSweep(ctx, clk.Now())
	if len(expired) != 1 || expired[0] != m.LinkID {
		t.Fatalf("expired = %v", expired)
	}
	for u, c := range cals {
		if got := c.Slot(calendar.Slot{Day: "2003-04-22", Hour: 10}).Meeting; got != "" {
			t.Fatalf("%s slot still %q after expiry", u, got)
		}
		if _, ok := c.Links().GetLink(m.LinkID); ok {
			t.Fatalf("%s link survived expiry", u)
		}
	}
	got, _ := cals["a"].Meeting(m.ID)
	if got.Status != calendar.StatusCancelled {
		t.Fatalf("meeting = %s", got.Status)
	}
}
