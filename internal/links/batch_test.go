package links_test

import (
	"context"
	"sort"
	"testing"
	"time"

	"repro/internal/links"
	"repro/internal/listener"
	"repro/internal/wire"
)

// coLocatedSpec is an And negotiation whose five targets live on two
// nodes — the shape per-node batching exists for.
func coLocatedSpec(meeting string) links.Spec {
	return links.Spec{
		Action:     "reserve",
		Args:       wire.Args{"meeting": meeting},
		Targets:    refs("b", "s1", "b", "s2", "b", "s3", "c", "s1", "c", "s2"),
		Constraint: links.And,
	}
}

func refKey(r links.EntityRef) string { return r.User + "/" + r.Entity }

func sortedKeys(rs []links.EntityRef) []string {
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = refKey(r)
	}
	sort.Strings(out)
	return out
}

func sameRefs(t *testing.T, what string, got, want []links.EntityRef) {
	t.Helper()
	g, w := sortedKeys(got), sortedKeys(want)
	if len(g) != len(w) {
		t.Fatalf("%s = %v, want %v", what, g, w)
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("%s = %v, want %v", what, g, w)
		}
	}
}

// TestBatchedAndCoLocatedTargets: co-located And targets commit with
// strictly fewer RPCs than the per-entity protocol and the identical
// outcome.
func TestBatchedAndCoLocatedTargets(t *testing.T) {
	run := func(batch bool) (*links.Result, int) {
		h := newHarness(t, "a", "b", "c")
		h.nodes["a"].Links.SetBatchRPC(batch)
		before := h.net.Stats().Requests
		res, err := h.nodes["a"].Links.Negotiate(ctxBg(), coLocatedSpec("M1"))
		if err != nil {
			t.Fatal(err)
		}
		for _, ref := range coLocatedSpec("M1").Targets {
			if got := h.nodes[ref.User].status(ref.Entity); got != "M1" {
				t.Fatalf("batch=%v: %s = %q, want M1", batch, refKey(ref), got)
			}
		}
		return res, int(h.net.Stats().Requests - before)
	}
	serialRes, serialReqs := run(false)
	batchRes, batchReqs := run(true)
	if !batchRes.OK || batchRes.State != links.StateCommitted {
		t.Fatalf("batched result = %+v", batchRes)
	}
	sameRefs(t, "Accepted", batchRes.Accepted, serialRes.Accepted)
	if batchReqs >= serialReqs {
		t.Fatalf("batched negotiation made %d requests, per-entity made %d; batching must cut round trips", batchReqs, serialReqs)
	}
}

// TestBatchedAndConflictMatchesSerial: a conflict inside a batch run
// produces exactly the per-entity outcome — same state, same rejected
// set (including the skipped tail), nothing applied, locks released.
func TestBatchedAndConflictMatchesSerial(t *testing.T) {
	run := func(batch bool) *links.Result {
		h := newHarness(t, "a", "b", "c")
		h.nodes["a"].Links.SetBatchRPC(batch)
		h.nodes["b"].setStatus("s2", "OTHER")
		res, err := h.nodes["a"].Links.Negotiate(ctxBg(), coLocatedSpec("M2"))
		if err == nil {
			t.Fatalf("batch=%v: conflicting And negotiation succeeded", batch)
		}
		if wire.CodeOf(err) != wire.CodeConflict {
			t.Fatalf("batch=%v: err = %v, want conflict", batch, err)
		}
		if got := h.nodes["b"].status("s1"); got != "" {
			t.Fatalf("batch=%v: aborted negotiation left b/s1 = %q", batch, got)
		}
		// The aborted marks must have released their locks: a fresh
		// negotiation over the same entities (minus the conflict) works.
		if _, err := h.nodes["a"].Links.Negotiate(ctxBg(), links.Spec{
			Action: "reserve", Args: wire.Args{"meeting": "M3"},
			Targets: refs("b", "s1", "b", "s3"), Constraint: links.And,
		}); err != nil {
			t.Fatalf("batch=%v: post-abort negotiation failed: %v", batch, err)
		}
		return res
	}
	serial := run(false)
	batched := run(true)
	if batched.State != serial.State {
		t.Fatalf("state = %s, serial %s", batched.State, serial.State)
	}
	sameRefs(t, "Rejected", batched.Rejected, serial.Rejected)
	sameRefs(t, "Accepted", batched.Accepted, serial.Accepted)
}

// TestBatchedOrPartial: Or(k=2) with one co-located conflict marks the
// free entities via batches and commits just those.
func TestBatchedOrPartial(t *testing.T) {
	h := newHarness(t, "a", "b", "c")
	h.nodes["b"].setStatus("s2", "OTHER")
	res, err := h.nodes["a"].Links.Negotiate(ctxBg(), links.Spec{
		Action: "reserve", Args: wire.Args{"meeting": "M4"},
		Targets:    refs("b", "s1", "b", "s2", "c", "s1"),
		Constraint: links.Or, K: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatalf("result = %+v", res)
	}
	sameRefs(t, "Accepted", res.Accepted, refs("b", "s1", "c", "s1"))
	sameRefs(t, "Rejected", res.Rejected, refs("b", "s2"))
	if h.nodes["b"].status("s1") != "M4" || h.nodes["c"].status("s1") != "M4" {
		t.Fatalf("accepted targets not applied: b/s1=%q c/s1=%q",
			h.nodes["b"].status("s1"), h.nodes["c"].status("s1"))
	}
	if h.nodes["b"].status("s2") != "OTHER" {
		t.Fatalf("rejected target overwritten: b/s2=%q", h.nodes["b"].status("s2"))
	}
}

// TestBatchFallbackLegacyPeer: a peer that answers no-method for the
// batch RPCs (a fleet member predating them) transparently gets the
// per-entity protocol, and the negotiation still commits.
func TestBatchFallbackLegacyPeer(t *testing.T) {
	h := newHarness(t, "a", "b", "c")
	legacy := h.nodes["b"].Links.Object()
	for _, mth := range []string{"MarkBatch", "CommitBatch", "AbortBatch"} {
		mth := mth
		legacy.Handle(mth, func(ctx context.Context, call *listener.Call) (any, error) {
			return nil, &wire.RemoteError{Code: wire.CodeNoMethod, Msg: "links." + call.Caller + " has no method " + mth}
		})
	}
	if err := h.nodes["b"].RegisterService(ctxBg(), links.ServiceFor("b"), legacy); err != nil {
		t.Fatal(err)
	}
	res, err := h.nodes["a"].Links.Negotiate(ctxBg(), coLocatedSpec("M5"))
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatalf("result = %+v", res)
	}
	for _, ref := range coLocatedSpec("M5").Targets {
		if got := h.nodes[ref.User].status(ref.Entity); got != "M5" {
			t.Fatalf("%s = %q, want M5", refKey(ref), got)
		}
	}

	// The abort fallback too: a constraint failure against the legacy
	// peer must release its per-entity marks.
	h.nodes["c"].setStatus("s3", "OTHER")
	if _, err := h.nodes["a"].Links.Negotiate(ctxBg(), links.Spec{
		Action: "reserve", Args: wire.Args{"meeting": "M6"},
		Targets: refs("b", "t1", "b", "t2", "c", "s3"), Constraint: links.And,
	}); wire.CodeOf(err) != wire.CodeConflict {
		t.Fatalf("err = %v, want conflict", err)
	}
	if _, err := h.nodes["a"].Links.Negotiate(ctxBg(), links.Spec{
		Action: "reserve", Args: wire.Args{"meeting": "M7"},
		Targets: refs("b", "t1", "b", "t2"), Constraint: links.And,
	}); err != nil {
		t.Fatalf("legacy peer's aborted marks still locked: %v", err)
	}
}

// TestBatchedRedrive: a coordinator that loses connectivity during
// phase 2 of a co-located negotiation journals the decision; the retry
// sweep later redrives it with one CommitBatch per node and the
// participant converges.
func TestBatchedRedrive(t *testing.T) {
	h := newHarness(t, "a", "b")
	lm := h.nodes["a"].Links
	lm.SetCommitFault(func(nid string, ref links.EntityRef) error {
		if ref.User == "b" {
			return &wire.RemoteError{Code: wire.CodeUnavailable, Msg: "injected crash"}
		}
		return nil
	})
	res, err := lm.Negotiate(ctxBg(), links.Spec{
		Action: "reserve", Args: wire.Args{"meeting": "M8"},
		Targets: refs("b", "s1", "b", "s2"), Constraint: links.And,
	})
	if !links.IsInDoubt(err) {
		t.Fatalf("err = %v, want in-doubt", err)
	}
	if res.State != links.StateInDoubt || len(res.InDoubt) != 2 {
		t.Fatalf("result = %+v", res)
	}
	if n := len(lm.JournalPending()); n != 1 {
		t.Fatalf("journal rows = %d, want 1", n)
	}

	lm.SetCommitFault(nil)
	h.clk.Advance(time.Second)
	if n := lm.FaultSweep(ctxBg(), h.clk.Now()); n != 1 {
		t.Fatalf("sweep resolved %d rows, want 1", n)
	}
	if n := len(lm.JournalPending()); n != 0 {
		t.Fatalf("journal did not drain: %v", lm.JournalPending())
	}
	if h.nodes["b"].status("s1") != "M8" || h.nodes["b"].status("s2") != "M8" {
		t.Fatalf("redrive did not apply: s1=%q s2=%q",
			h.nodes["b"].status("s1"), h.nodes["b"].status("s2"))
	}
	if n := h.nodes["b"].Links.PendingMarks(); n != 0 {
		t.Fatalf("participant still holds %d pending marks", n)
	}
}
