package links_test

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/controlplane"
	"repro/internal/links"
	"repro/internal/wire"
)

// The chaos harness: hundreds of negotiations driven through
// randomized message loss, partitions, downed participants, and
// injected coordinator commit faults — the fault schedule mutating at
// runtime on the live sim network. After each faulty round the faults
// are healed and the periodic fault sweeps (commit-retry journal on
// the coordinators, in-doubt resolution on the participants) run until
// every journal row and pending mark drains. The invariants:
//
//   - no double-booked slot: all targets of a slot agree on its holder;
//   - all-or-none: each negotiation ends with every target committed
//     or every target unchanged — never a lasting partial commit;
//   - liveness: journals and pending marks always drain once healed.
//
// Two coordinators race for the same slot every round, so the
// invariants are checked under contention, not just under faults.

// chaosRound is one round's pre-computed fault schedule. Decisions are
// drawn from the seed's rng up front so the concurrent negotiations
// never touch the (non-thread-safe) rng.
type chaosRound struct {
	loss      float64
	partition [2]string // pair to partition ("" = none)
	down      string    // participant taken down ("" = none)
	crashUser string    // commits to this user fail at coordinator a
	entity    string
	latBase   time.Duration
	latJitter time.Duration
	bumpEpoch bool // sharded runs only: bump the shard-map epoch mid-flight
}

func TestChaosNegotiations(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			h := newHarness(t, "a", "b", "x", "y")
			runChaos(t, h, nil, seed, 55) // 55 rounds x 2 racing negotiations x 3 seeds = 330 total
		})
	}
}

// TestChaosNegotiationsSharded reruns the chaos schedule against a
// 4-shard directory behind the control plane, with shard-map epoch
// bumps landing mid-negotiation on ~30% of rounds. The negotiation
// invariants must hold unchanged: an epoch bump flushes every node's
// route cache but must never break an in-flight two-phase commit or
// the journal redrive that heals it.
func TestChaosNegotiationsSharded(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			h, ctl := newShardedHarness(t, "a", "b", "x", "y")
			runChaos(t, h, ctl, seed, 55)
		})
	}
}

func runChaos(t *testing.T, h *harness, ctl *controlplane.Controller, seed int64, rounds int) {
	ctx := context.Background()
	tun := links.Tuning{RetryBase: 100 * time.Millisecond, PresumeAbortAfter: 30 * time.Second}
	for _, n := range h.nodes {
		n.Links.SetTuning(tun)
	}
	rng := rand.New(rand.NewSource(seed))
	parts := []string{"x", "y"}

	heal := func(r chaosRound) {
		h.net.SetLoss(0)
		h.net.SetLatency(0, 0)
		if r.partition[0] != "" {
			h.net.Heal(r.partition[0], r.partition[1])
		}
		if r.down != "" {
			h.net.SetDown(r.down, false)
		}
		h.nodes["a"].Links.SetCommitFault(nil)
	}
	drain := func(round int) {
		for i := 0; i < 60; i++ {
			h.clk.Advance(time.Second)
			settled := true
			for _, n := range h.nodes {
				n.Links.FaultSweep(ctx, h.clk.Now())
				if len(n.Links.JournalPending()) > 0 || n.Links.PendingMarks() > 0 {
					settled = false
				}
			}
			if settled {
				return
			}
		}
		for u, n := range h.nodes {
			t.Logf("%s: journal=%v marks=%d", u, n.Links.JournalPending(), n.Links.PendingMarks())
		}
		t.Fatalf("seed %d round %d: journals/marks did not drain", seed, round)
	}

	committed, aborted, errored := 0, 0, 0
	for i := 0; i < rounds; i++ {
		// Draw this round's fault schedule.
		r := chaosRound{entity: fmt.Sprintf("s%d", rng.Intn(2))}
		if rng.Float64() < 0.8 {
			r.loss = 0.1 + 0.5*rng.Float64()
		}
		if rng.Float64() < 0.25 {
			r.partition = [2]string{"node-a", "node-" + parts[rng.Intn(len(parts))]}
		}
		if rng.Float64() < 0.2 {
			r.down = "node-" + parts[rng.Intn(len(parts))]
		}
		if rng.Float64() < 0.3 {
			r.crashUser = parts[rng.Intn(len(parts))]
		}
		if rng.Float64() < 0.3 {
			r.latBase = time.Duration(rng.Intn(3)) * time.Millisecond
			r.latJitter = time.Duration(rng.Intn(2)) * time.Millisecond
		}
		if ctl != nil && rng.Float64() < 0.3 {
			r.bumpEpoch = true
		}

		// Arm the faults on the live network.
		h.net.SetLoss(r.loss)
		h.net.SetLatency(r.latBase, r.latJitter)
		if r.partition[0] != "" {
			h.net.Partition(r.partition[0], r.partition[1])
		}
		if r.down != "" {
			h.net.SetDown(r.down, true)
		}
		if r.crashUser != "" {
			crash := r.crashUser
			h.nodes["a"].Links.SetCommitFault(func(nid string, ref links.EntityRef) error {
				if ref.User == crash {
					return &wire.RemoteError{Code: wire.CodeUnavailable, Msg: "chaos: coordinator crash"}
				}
				return nil
			})
		}

		// Two coordinators race for the same slot on both participants,
		// with the periodic fault sweeps running CONCURRENTLY with the
		// in-flight negotiations — as they do in production, where
		// FaultSweep rides the ExpireEvery schedule. A sweep landing
		// between a Mark grant and the coordinator's journal write must
		// hear "unknown" and keep the mark pinned, never presume abort
		// and hand one target to the thief while the other commits.
		mA := fmt.Sprintf("MA-%d-%d", seed, i)
		mB := fmt.Sprintf("MB-%d-%d", seed, i)
		targets := refs("x", r.entity, "y", r.entity)
		var wg sync.WaitGroup
		var errA, errB error
		wg.Add(2)
		go func() {
			defer wg.Done()
			_, errA = h.nodes["a"].Links.Negotiate(ctx, links.Spec{
				Action: "reserve", Args: wire.Args{"meeting": mA},
				Targets: targets, Constraint: links.And,
			})
		}()
		go func() {
			defer wg.Done()
			_, errB = h.nodes["b"].Links.Negotiate(ctx, links.Spec{
				Action: "reserve", Args: wire.Args{"meeting": mB},
				Targets: targets, Constraint: links.And,
			})
		}()
		sweepStop := make(chan struct{})
		var sweepWG sync.WaitGroup
		sweepWG.Add(1)
		go func() {
			defer sweepWG.Done()
			first := true
			for {
				select {
				case <-sweepStop:
					return
				default:
				}
				for _, n := range h.nodes {
					n.Links.FaultSweep(ctx, h.clk.Now())
				}
				if first && r.bumpEpoch {
					// Epoch bump lands while both negotiations are in
					// flight: every node's next directory response
					// flushes its route cache mid-two-phase-commit.
					ctl.Bump()
				}
				first = false
				time.Sleep(time.Millisecond)
			}
		}()
		wg.Wait()
		close(sweepStop)
		sweepWG.Wait()

		heal(r)
		drain(i)

		// Invariants: both participants agree on the holder, and the
		// holder is one of this round's meetings or nobody.
		sx, sy := h.nodes["x"].status(r.entity), h.nodes["y"].status(r.entity)
		if sx != sy {
			t.Fatalf("seed %d round %d: double booking/split brain: x=%q y=%q (errA=%v errB=%v)", seed, i, sx, sy, errA, errB)
		}
		switch sx {
		case "":
			aborted += 2
		case mA, mB:
			committed++
			aborted++
		default:
			t.Fatalf("seed %d round %d: slot holds foreign meeting %q", seed, i, sx)
		}
		if errA != nil {
			errored++
		}
		if errB != nil {
			errored++
		}

		// Free the slot for the next round and let stray locks lapse.
		h.nodes["x"].setStatus(r.entity, "")
		h.nodes["y"].setStatus(r.entity, "")
		h.clk.Advance(links.DefaultLockTTL + time.Second)
	}
	t.Logf("seed %d: %d committed, %d aborted, %d negotiation errors over %d negotiations",
		seed, committed, aborted, errored, rounds*2)
	if committed == 0 {
		t.Fatalf("seed %d: chaos never let a negotiation commit — schedule too hostile to be meaningful", seed)
	}
	if errored == 0 {
		t.Fatalf("seed %d: chaos produced no failures — schedule exercises nothing", seed)
	}
}
