package links

import (
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
)

func TestTryLockExcludes(t *testing.T) {
	lt := NewLockTable(nil, time.Minute)
	tok, ok := lt.TryLock("slot9", "a")
	if !ok || tok == "" {
		t.Fatal("first lock failed")
	}
	if _, ok := lt.TryLock("slot9", "b"); ok {
		t.Fatal("second lock acquired")
	}
	// Not re-entrant even for the same holder.
	if _, ok := lt.TryLock("slot9", "a"); ok {
		t.Fatal("re-entrant lock acquired")
	}
	if !lt.Locked("slot9") || !lt.Holds("slot9", tok) {
		t.Fatal("lock state inconsistent")
	}
	if lt.Holds("slot9", "bogus") {
		t.Fatal("bogus token holds")
	}
}

func TestUnlock(t *testing.T) {
	lt := NewLockTable(nil, time.Minute)
	tok, _ := lt.TryLock("slot9", "a")
	if lt.Unlock("slot9", "wrong") {
		t.Fatal("unlock with wrong token succeeded")
	}
	if !lt.Unlock("slot9", tok) {
		t.Fatal("unlock failed")
	}
	if lt.Locked("slot9") {
		t.Fatal("still locked")
	}
	if lt.Unlock("slot9", tok) {
		t.Fatal("double unlock succeeded")
	}
	if _, ok := lt.TryLock("slot9", "b"); !ok {
		t.Fatal("relock after unlock failed")
	}
}

func TestLockExpiryAndSteal(t *testing.T) {
	fake := clock.NewFake(time.Unix(0, 0))
	lt := NewLockTable(fake, 10*time.Second)
	tok1, ok := lt.TryLock("slot9", "a")
	if !ok {
		t.Fatal("lock failed")
	}
	fake.Advance(5 * time.Second)
	if _, ok := lt.TryLock("slot9", "b"); ok {
		t.Fatal("live lock stolen")
	}
	fake.Advance(6 * time.Second) // past TTL
	tok2, ok := lt.TryLock("slot9", "b")
	if !ok {
		t.Fatal("expired lock not stolen")
	}
	// The old token no longer unlocks.
	if lt.Unlock("slot9", tok1) {
		t.Fatal("stale token unlocked a stolen lock")
	}
	if !lt.Holds("slot9", tok2) {
		t.Fatal("new holder lost the lock")
	}
}

func TestHoldsRespectsExpiry(t *testing.T) {
	fake := clock.NewFake(time.Unix(0, 0))
	lt := NewLockTable(fake, 10*time.Second)
	tok, _ := lt.TryLock("slot9", "a")
	fake.Advance(11 * time.Second)
	if lt.Holds("slot9", tok) {
		t.Fatal("expired lock still held")
	}
	if lt.Locked("slot9") {
		t.Fatal("expired lock reported locked")
	}
}

func TestLenAndSweep(t *testing.T) {
	fake := clock.NewFake(time.Unix(0, 0))
	lt := NewLockTable(fake, 10*time.Second)
	lt.TryLock("a", "x")
	lt.TryLock("b", "x")
	if lt.Len() != 2 {
		t.Fatalf("Len = %d", lt.Len())
	}
	fake.Advance(11 * time.Second)
	lt.TryLock("c", "x")
	if lt.Len() != 1 {
		t.Fatalf("Len after expiry = %d", lt.Len())
	}
	if n := lt.Sweep(); n != 2 {
		t.Fatalf("Sweep removed %d", n)
	}
	if lt.Len() != 1 {
		t.Fatalf("Len after sweep = %d", lt.Len())
	}
}

func TestConcurrentTryLockOneWinner(t *testing.T) {
	lt := NewLockTable(nil, time.Minute)
	const n = 32
	var wg sync.WaitGroup
	wins := make([]bool, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, wins[i] = lt.TryLock("slot9", "h")
		}(i)
	}
	wg.Wait()
	count := 0
	for _, w := range wins {
		if w {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("winners = %d", count)
	}
}

func TestDefaultTTLApplied(t *testing.T) {
	lt := NewLockTable(nil, 0)
	if lt.ttl != DefaultLockTTL {
		t.Fatalf("ttl = %v", lt.ttl)
	}
}

func TestTokensUnique(t *testing.T) {
	lt := NewLockTable(nil, time.Minute)
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		tok, ok := lt.TryLock("e", "h")
		if !ok {
			t.Fatal("lock failed")
		}
		if seen[tok] {
			t.Fatal("token reused")
		}
		seen[tok] = true
		lt.Unlock("e", tok)
	}
}

// TestLockStatsCounters: grants, live-lock conflicts, and expiry
// steals are each counted exactly once per TryLock outcome.
func TestLockStatsCounters(t *testing.T) {
	fake := clock.NewFake(time.Unix(0, 0))
	lt := NewLockTable(fake, 10*time.Second)
	if _, ok := lt.TryLock("cal.a", "phil"); !ok {
		t.Fatal("first lock failed")
	}
	if _, ok := lt.TryLock("cal.a", "andy"); ok {
		t.Fatal("conflicting lock granted")
	}
	fake.Advance(11 * time.Second)
	if _, ok := lt.TryLock("cal.a", "andy"); !ok {
		t.Fatal("expired lock not stolen")
	}
	got := lt.Stats()
	want := LockStats{Acquired: 2, Conflicts: 1, Steals: 1}
	if got != want {
		t.Fatalf("Stats = %+v, want %+v", got, want)
	}
}
