package links_test

import (
	"context"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/controlplane"
	"repro/internal/core"
	"repro/internal/directory"
	"repro/internal/links"
	"repro/internal/listener"
	"repro/internal/sim"
	"repro/internal/wire"
)

// tnode is a test device: a core Node plus a toy slot table with
// "reserve" / "release" / "note" actions registered on its link
// manager.
type tnode struct {
	*core.Node
	mu    sync.Mutex
	slots map[string]string // entity -> "" (free) | meeting id
	notes []string
}

func (n *tnode) status(entity string) string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.slots[entity]
}

func (n *tnode) setStatus(entity, v string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.slots[entity] = v
}

func (n *tnode) noteCount() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.notes)
}

type harness struct {
	t      *testing.T
	net    *sim.Net
	clk    *clock.Fake
	nodes  map[string]*tnode
	cpAddr string // set on sharded harnesses; nodes route via the control plane
}

// simConfig honors SYD_CHAOS_CODEC: when set to "json" or "v3", every
// simulated delivery rides a full frame encode→decode round trip with
// that codec, so the whole links suite — the chaos harness above all —
// proves its invariants under the real wire encodings. CI runs the
// chaos job once per codec; unset means the default pointer delivery.
func simConfig(t *testing.T) sim.Config {
	t.Helper()
	cfg := sim.Config{}
	if v := os.Getenv("SYD_CHAOS_CODEC"); v != "" {
		c, err := wire.ParseCodec(v)
		if err != nil {
			t.Fatal(err)
		}
		cfg.EncodeFrames = true
		cfg.FrameCodec = c
	}
	return cfg
}

func newHarness(t *testing.T, users ...string) *harness {
	t.Helper()
	net := sim.New(simConfig(t))
	clk := clock.NewFake(time.Date(2003, 4, 22, 9, 0, 0, 0, time.UTC))
	srv := directory.NewServer(directory.WithClock(clk), directory.WithTTL(time.Hour))
	_, err := net.Listen("dir", srv.Handler())
	if err != nil {
		t.Fatal(err)
	}
	h := &harness{t: t, net: net, clk: clk, nodes: make(map[string]*tnode)}
	for _, u := range users {
		h.addNode(u)
	}
	return h
}

// newShardedHarness is newHarness against a 4-shard directory behind
// the epoch-versioned control plane, so the link layer's lookups and
// liveness checks all route through the shard map. The returned
// controller lets chaos schedules bump the epoch mid-negotiation.
func newShardedHarness(t *testing.T, users ...string) (*harness, *controlplane.Controller) {
	t.Helper()
	const shards = 4
	net := sim.New(simConfig(t))
	clk := clock.NewFake(time.Date(2003, 4, 22, 9, 0, 0, 0, time.UTC))
	list := make([]controlplane.Shard, shards)
	servers := make([]*directory.Server, shards)
	for i := 0; i < shards; i++ {
		id := fmt.Sprintf("shard%d", i)
		srv := directory.NewServer(directory.WithClock(clk), directory.WithTTL(time.Hour), directory.WithShard(id))
		ln, err := net.Listen(fmt.Sprintf("dir%d", i), srv.Handler())
		if err != nil {
			t.Fatal(err)
		}
		list[i] = controlplane.Shard{ID: id, Addr: ln.Addr()}
		servers[i] = srv
	}
	ctl := controlplane.NewController(list)
	for _, srv := range servers {
		ctl.Subscribe(srv.SetTable)
	}
	if _, err := net.Listen("cp", ctl.Handler()); err != nil {
		t.Fatal(err)
	}
	h := &harness{t: t, net: net, clk: clk, nodes: make(map[string]*tnode), cpAddr: "cp"}
	for _, u := range users {
		h.addNode(u)
	}
	return h, ctl
}

func (h *harness) addNode(user string, opts ...core.Option) *tnode {
	h.t.Helper()
	ctx := context.Background()
	n, err := core.Start(ctx, core.Config{
		User:             user,
		Net:              h.net,
		DirAddr:          "dir",
		ControlPlaneAddr: h.cpAddr,
		Clock:            h.clk,
	}, opts...)
	if err != nil {
		h.t.Fatal(err)
	}
	tn := &tnode{Node: n, slots: make(map[string]string)}
	n.Links.RegisterAction("reserve", links.Action{
		Check: func(entity string, args wire.Args) error {
			meeting := args.String("meeting")
			cur := tn.status(entity)
			if cur != "" && cur != meeting {
				return &wire.RemoteError{Code: wire.CodeConflict, Msg: fmt.Sprintf("%s/%s already reserved for %s", user, entity, cur)}
			}
			return nil
		},
		Apply: func(entity string, args wire.Args) error {
			tn.setStatus(entity, args.String("meeting"))
			return nil
		},
	})
	n.Links.RegisterAction("release", links.Action{
		Apply: func(entity string, args wire.Args) error {
			tn.setStatus(entity, "")
			return nil
		},
	})
	n.Links.RegisterAction("note", links.Action{
		Apply: func(entity string, args wire.Args) error {
			tn.mu.Lock()
			tn.notes = append(tn.notes, entity+":"+args.String("text"))
			tn.mu.Unlock()
			return nil
		},
	})
	h.nodes[user] = tn
	return tn
}

func refs(pairs ...string) []links.EntityRef {
	var out []links.EntityRef
	for i := 0; i+1 < len(pairs); i += 2 {
		out = append(out, links.EntityRef{User: pairs[i], Entity: pairs[i+1]})
	}
	return out
}

func ctxBg() context.Context { return context.Background() }

// --- negotiation protocol ----------------------------------------------------

func TestNegotiateAndAllFree(t *testing.T) {
	h := newHarness(t, "a", "b", "c")
	res, err := h.nodes["a"].Links.Negotiate(ctxBg(), links.Spec{
		Action:     "reserve",
		Args:       wire.Args{"meeting": "M1"},
		Targets:    refs("b", "slot9", "c", "slot9"),
		Constraint: links.And,
		Local:      &links.LocalChange{Entity: "slot9", Action: "reserve", Args: wire.Args{"meeting": "M1"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK || len(res.Accepted) != 2 || len(res.Rejected) != 0 {
		t.Fatalf("res = %+v", res)
	}
	for _, u := range []string{"a", "b", "c"} {
		if got := h.nodes[u].status("slot9"); got != "M1" {
			t.Fatalf("%s slot9 = %q", u, got)
		}
	}
}

func TestNegotiateAndOneBusyChangesNothing(t *testing.T) {
	h := newHarness(t, "a", "b", "c")
	h.nodes["c"].setStatus("slot9", "OTHER")
	res, err := h.nodes["a"].Links.Negotiate(ctxBg(), links.Spec{
		Action:     "reserve",
		Args:       wire.Args{"meeting": "M1"},
		Targets:    refs("b", "slot9", "c", "slot9"),
		Constraint: links.And,
		Local:      &links.LocalChange{Entity: "slot9", Action: "reserve", Args: wire.Args{"meeting": "M1"}},
	})
	if err == nil || res.OK {
		t.Fatalf("negotiation should have failed: %+v", res)
	}
	if wire.CodeOf(err) != wire.CodeConflict {
		t.Fatalf("err = %v", err)
	}
	// Atomicity: nobody changed, no locks left behind.
	if h.nodes["a"].status("slot9") != "" || h.nodes["b"].status("slot9") != "" {
		t.Fatal("partial change leaked")
	}
	if h.nodes["c"].status("slot9") != "OTHER" {
		t.Fatal("busy slot clobbered")
	}
	for _, u := range []string{"a", "b", "c"} {
		if h.nodes[u].Links.Locks.Len() != 0 {
			t.Fatalf("%s has %d leaked locks", u, h.nodes[u].Links.Locks.Len())
		}
	}
}

func TestNegotiateOrPartialAvailability(t *testing.T) {
	h := newHarness(t, "a", "b", "c", "d")
	h.nodes["c"].setStatus("slot9", "OTHER")
	res, err := h.nodes["a"].Links.Negotiate(ctxBg(), links.Spec{
		Action:     "reserve",
		Args:       wire.Args{"meeting": "M1"},
		Targets:    refs("b", "slot9", "c", "slot9", "d", "slot9"),
		Constraint: links.Or,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK || len(res.Accepted) != 2 || len(res.Rejected) != 1 {
		t.Fatalf("res = %+v", res)
	}
	if h.nodes["b"].status("slot9") != "M1" || h.nodes["d"].status("slot9") != "M1" {
		t.Fatal("available targets not changed")
	}
	if h.nodes["c"].status("slot9") != "OTHER" {
		t.Fatal("busy target clobbered")
	}
}

func TestNegotiateOrNoneAvailableFails(t *testing.T) {
	h := newHarness(t, "a", "b", "c")
	h.nodes["b"].setStatus("slot9", "X")
	h.nodes["c"].setStatus("slot9", "Y")
	res, err := h.nodes["a"].Links.Negotiate(ctxBg(), links.Spec{
		Action:     "reserve",
		Args:       wire.Args{"meeting": "M1"},
		Targets:    refs("b", "slot9", "c", "slot9"),
		Constraint: links.Or,
	})
	if err == nil || res.OK {
		t.Fatalf("res = %+v", res)
	}
}

func TestNegotiateKofN(t *testing.T) {
	h := newHarness(t, "a", "b", "c", "d", "e")
	h.nodes["e"].setStatus("slot9", "BUSY")
	// at least 3 of {b,c,d,e}: b,c,d free -> satisfied.
	res, err := h.nodes["a"].Links.Negotiate(ctxBg(), links.Spec{
		Action:     "reserve",
		Args:       wire.Args{"meeting": "M1"},
		Targets:    refs("b", "slot9", "c", "slot9", "d", "slot9", "e", "slot9"),
		Constraint: links.Or,
		K:          3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Accepted) != 3 {
		t.Fatalf("accepted = %v", res.Accepted)
	}
	// at least 3 of {b,c,d,e} when two are busy -> fails.
	h2 := newHarness(t, "a", "b", "c", "d", "e")
	h2.nodes["d"].setStatus("slot9", "BUSY")
	h2.nodes["e"].setStatus("slot9", "BUSY")
	_, err = h2.nodes["a"].Links.Negotiate(ctxBg(), links.Spec{
		Action:     "reserve",
		Args:       wire.Args{"meeting": "M1"},
		Targets:    refs("b", "slot9", "c", "slot9", "d", "slot9", "e", "slot9"),
		Constraint: links.Or,
		K:          3,
	})
	if wire.CodeOf(err) != wire.CodeConflict {
		t.Fatalf("err = %v", err)
	}
}

func TestNegotiateXorExactlyOne(t *testing.T) {
	h := newHarness(t, "a", "b", "c")
	h.nodes["b"].setStatus("slot9", "BUSY")
	// Exactly one of {b, c} available -> xor satisfied, c changes.
	res, err := h.nodes["a"].Links.Negotiate(ctxBg(), links.Spec{
		Action:     "reserve",
		Args:       wire.Args{"meeting": "M1"},
		Targets:    refs("b", "slot9", "c", "slot9"),
		Constraint: links.Xor,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Accepted) != 1 || res.Accepted[0].User != "c" {
		t.Fatalf("accepted = %v", res.Accepted)
	}
}

func TestNegotiateXorTwoAvailableFails(t *testing.T) {
	h := newHarness(t, "a", "b", "c")
	res, err := h.nodes["a"].Links.Negotiate(ctxBg(), links.Spec{
		Action:     "reserve",
		Args:       wire.Args{"meeting": "M1"},
		Targets:    refs("b", "slot9", "c", "slot9"),
		Constraint: links.Xor,
	})
	if err == nil || res.OK {
		t.Fatalf("xor with 2 available must fail: %+v", res)
	}
	if h.nodes["b"].status("slot9") != "" || h.nodes["c"].status("slot9") != "" {
		t.Fatal("xor failure must change nothing")
	}
}

func TestNegotiateLocalMarkFailsFast(t *testing.T) {
	h := newHarness(t, "a", "b")
	h.nodes["a"].setStatus("slot9", "MINE")
	before := h.net.Stats().Requests
	_, err := h.nodes["a"].Links.Negotiate(ctxBg(), links.Spec{
		Action:     "reserve",
		Args:       wire.Args{"meeting": "M1"},
		Targets:    refs("b", "slot9"),
		Constraint: links.And,
		Local:      &links.LocalChange{Entity: "slot9", Action: "reserve", Args: wire.Args{"meeting": "M1"}},
	})
	if wire.CodeOf(err) != wire.CodeConflict {
		t.Fatalf("err = %v", err)
	}
	if got := h.net.Stats().Requests - before; got != 0 {
		t.Fatalf("local mark failure still made %d remote calls", got)
	}
}

func TestNegotiationTraceShape(t *testing.T) {
	// The Figure 4 reproduction: negotiation-or over B and C from A.
	h := newHarness(t, "a", "b", "c")
	res, err := h.nodes["a"].Links.Negotiate(ctxBg(), links.Spec{
		Action:     "reserve",
		Args:       wire.Args{"meeting": "M1"},
		Targets:    refs("b", "slotX", "c", "slotX"),
		Constraint: links.Or,
		Local:      &links.LocalChange{Entity: "slotX", Action: "reserve", Args: wire.Args{"meeting": "M1"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var phases []string
	for _, s := range res.Trace {
		phases = append(phases, s.Phase)
	}
	// mark(A), mark(B), mark(C), constraint, change(A), change+unlock each.
	if len(phases) < 7 {
		t.Fatalf("trace too short: %v", phases)
	}
	if phases[0] != "mark" {
		t.Fatalf("first phase %q", phases[0])
	}
	sawConstraint := false
	for i, p := range phases {
		if p == "constraint" {
			sawConstraint = true
			for _, q := range phases[:i] {
				if q != "mark" {
					t.Fatalf("phase %q before constraint", q)
				}
			}
			for _, q := range phases[i+1:] {
				if q != "journal" && q != "change" && q != "unlock" {
					t.Fatalf("phase %q after constraint", q)
				}
			}
		}
	}
	if !sawConstraint {
		t.Fatalf("no constraint step in %v", phases)
	}
}

func TestConcurrentNegotiationsExactlyOneWins(t *testing.T) {
	h := newHarness(t, "a", "b", "x", "y")
	// a and b race to reserve the same slots on x and y with "and".
	run := func(user, meeting string) error {
		_, err := h.nodes[user].Links.Negotiate(ctxBg(), links.Spec{
			Action:     "reserve",
			Args:       wire.Args{"meeting": meeting},
			Targets:    refs("x", "s", "y", "s"),
			Constraint: links.And,
		})
		return err
	}
	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	go func() { defer wg.Done(); errs[0] = run("a", "MA") }()
	go func() { defer wg.Done(); errs[1] = run("b", "MB") }()
	wg.Wait()

	wins := 0
	for _, err := range errs {
		if err == nil {
			wins++
		}
	}
	if wins != 1 {
		// Both failing is possible only with unordered acquisition;
		// ordered try-locks guarantee someone proceeds... unless both
		// marked disjoint prefixes. With identical ordered target
		// lists, the one that locks x/s first wins both.
		t.Fatalf("wins = %d, errs = %v", wins, errs)
	}
	if h.nodes["x"].status("s") != h.nodes["y"].status("s") {
		t.Fatalf("split brain: x=%s y=%s", h.nodes["x"].status("s"), h.nodes["y"].status("s"))
	}
	if h.nodes["x"].Links.Locks.Len()+h.nodes["y"].Links.Locks.Len() != 0 {
		t.Fatal("locks leaked")
	}
}

// --- link CRUD, waiting links, promotion --------------------------------------

func newLink(id string, typ links.Type, sub links.Subtype, owner links.EntityRef, targets []links.EntityRef) *links.Link {
	return &links.Link{
		ID: id, Type: typ, Subtype: sub,
		Owner: owner, Targets: targets,
		Constraint: links.And,
	}
}

func TestAddGetLinksOn(t *testing.T) {
	h := newHarness(t, "a")
	lm := h.nodes["a"].Links
	owner := links.EntityRef{User: "a", Entity: "slot9"}
	l1 := newLink("L1", links.Negotiation, links.Permanent, owner, refs("b", "slot9"))
	l1.Priority = 1
	l2 := newLink("L2", links.Subscription, links.Permanent, owner, refs("c", "slot9"))
	l2.Priority = 9
	if err := lm.AddLink(l1); err != nil {
		t.Fatal(err)
	}
	if err := lm.AddLink(l2); err != nil {
		t.Fatal(err)
	}
	got, ok := lm.GetLink("L1")
	if !ok || got.Type != links.Negotiation || got.Owner != owner {
		t.Fatalf("GetLink = %+v ok=%v", got, ok)
	}
	on := lm.LinksOn("slot9")
	if len(on) != 2 || on[0].ID != "L2" || on[1].ID != "L1" {
		t.Fatalf("LinksOn order: %v, %v", on[0].ID, on[1].ID)
	}
	if len(lm.LinksOn("other")) != 0 {
		t.Fatal("LinksOn leaked across entities")
	}
	if len(lm.AllLinks()) != 2 {
		t.Fatal("AllLinks wrong")
	}
}

func TestLinkValidation(t *testing.T) {
	h := newHarness(t, "a")
	lm := h.nodes["a"].Links
	owner := links.EntityRef{User: "a", Entity: "e"}
	bad := []*links.Link{
		{Type: links.Negotiation, Subtype: links.Permanent, Owner: owner, Constraint: links.And},                 // no ID
		{ID: "x", Type: "bogus", Subtype: links.Permanent, Owner: owner},                                         // bad type
		{ID: "x", Type: links.Subscription, Subtype: "bogus", Owner: owner},                                      // bad subtype
		{ID: "x", Type: links.Negotiation, Subtype: links.Permanent, Owner: owner},                               // no constraint
		{ID: "x", Type: links.Subscription, Subtype: links.Permanent},                                            // no owner
		{ID: "x", Type: links.Subscription, Subtype: links.Permanent, Owner: owner, WaitingOn: "L0"},             // permanent waiting
		{ID: "x", Type: links.Negotiation, Subtype: links.Permanent, Owner: owner, Constraint: "nand"},           // bad constraint
		{ID: "x", Type: links.Negotiation, Subtype: links.Permanent, Owner: owner, Constraint: links.And, K: -1}, // bad k
	}
	for i, l := range bad {
		if err := lm.AddLink(l); err == nil {
			t.Fatalf("bad link %d accepted", i)
		}
	}
}

func TestWaitingLinkPromotionOnDelete(t *testing.T) {
	h := newHarness(t, "a", "b")
	lm := h.nodes["a"].Links
	owner := links.EntityRef{User: "a", Entity: "slot9"}

	perm := newLink("L0", links.Negotiation, links.Permanent, owner, refs("b", "slot9"))
	if err := lm.AddLink(perm); err != nil {
		t.Fatal(err)
	}
	tent := newLink("L1", links.Negotiation, links.Tentative, owner, refs("b", "slot10"))
	tent.WaitingOn = "L0"
	tent.Priority = 3
	if err := lm.AddLink(tent); err != nil {
		t.Fatal(err)
	}

	var hookEvents []string
	lm.SetEventHook(func(kind string, l *links.Link, args wire.Args) {
		hookEvents = append(hookEvents, kind+":"+l.ID)
	})

	promoted, err := lm.DeleteLink(ctxBg(), "L0", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(promoted) != 1 || promoted[0].Link.ID != "L1" {
		t.Fatalf("promoted = %+v", promoted)
	}
	got, ok := lm.GetLink("L1")
	if !ok || got.Subtype != links.Permanent || got.WaitingOn != "" {
		t.Fatalf("L1 after promotion: %+v", got)
	}
	if _, ok := lm.GetLink("L0"); ok {
		t.Fatal("L0 survived deletion")
	}
	wantHooks := map[string]bool{"promote:L1": false, "delete:L0": false}
	for _, e := range hookEvents {
		if _, ok := wantHooks[e]; ok {
			wantHooks[e] = true
		}
	}
	for k, seen := range wantHooks {
		if !seen {
			t.Fatalf("hook %s not fired (got %v)", k, hookEvents)
		}
	}
}

func TestPromotionPicksHighestPriorityGroup(t *testing.T) {
	h := newHarness(t, "a", "b")
	lm := h.nodes["a"].Links
	owner := links.EntityRef{User: "a", Entity: "slot9"}
	if err := lm.AddLink(newLink("L0", links.Negotiation, links.Permanent, owner, refs("b", "slot9"))); err != nil {
		t.Fatal(err)
	}
	mk := func(id string, prio int, grp string) {
		l := newLink(id, links.Negotiation, links.Tentative, owner, refs("b", "s"))
		l.WaitingOn = "L0"
		l.Priority = prio
		l.Group = grp
		if err := lm.AddLink(l); err != nil {
			t.Fatal(err)
		}
	}
	mk("W-low", 1, "meetLow")
	mk("W-high-1", 5, "meetHigh")
	mk("W-high-2", 5, "meetHigh")

	promoted, err := lm.DeleteLink(ctxBg(), "L0", nil)
	if err != nil {
		t.Fatal(err)
	}
	ids := map[string]bool{}
	for _, p := range promoted {
		ids[p.Link.ID] = true
	}
	if !ids["W-high-1"] || !ids["W-high-2"] || ids["W-low"] {
		t.Fatalf("promoted = %v", ids)
	}
	// The loser is re-pointed at a promoted link.
	low, ok := lm.GetLink("W-low")
	if !ok || low.Subtype != links.Tentative {
		t.Fatalf("W-low = %+v", low)
	}
	if low.WaitingOn != "W-high-1" {
		t.Fatalf("W-low waits on %q", low.WaitingOn)
	}
}

func TestDeleteCascadesAcrossUsers(t *testing.T) {
	h := newHarness(t, "a", "b", "c")
	// Install the same logical link (ID "LX") at all three users via
	// CreateNegotiatedLink.
	tpl := newLink("LX", links.Negotiation, links.Permanent,
		links.EntityRef{User: "a", Entity: "slot9"}, refs("b", "slot9", "c", "slot9"))
	id, err := h.nodes["a"].Links.CreateNegotiatedLink(ctxBg(), tpl, "reserve", wire.Args{"meeting": "M1"})
	if err != nil {
		t.Fatal(err)
	}
	if id != "LX" {
		t.Fatalf("id = %q", id)
	}
	for _, u := range []string{"a", "b", "c"} {
		if _, ok := h.nodes[u].Links.GetLink("LX"); !ok {
			t.Fatalf("link missing at %s", u)
		}
	}
	if _, err := h.nodes["a"].Links.DeleteLink(ctxBg(), "LX", nil); err != nil {
		t.Fatal(err)
	}
	for _, u := range []string{"a", "b", "c"} {
		if _, ok := h.nodes[u].Links.GetLink("LX"); ok {
			t.Fatalf("link survived at %s", u)
		}
	}
}

func TestCreateNegotiatedLinkFailsWhenUnavailable(t *testing.T) {
	h := newHarness(t, "a", "b", "c")
	h.nodes["c"].setStatus("slot9", "BUSY")
	tpl := newLink("LY", links.Negotiation, links.Permanent,
		links.EntityRef{User: "a", Entity: "slot9"}, refs("b", "slot9", "c", "slot9"))
	_, err := h.nodes["a"].Links.CreateNegotiatedLink(ctxBg(), tpl, "reserve", wire.Args{"meeting": "M2"})
	if err == nil {
		t.Fatal("link created despite unavailable participant")
	}
	for _, u := range []string{"a", "b"} {
		if _, ok := h.nodes[u].Links.GetLink("LY"); ok {
			t.Fatalf("partial link row left at %s", u)
		}
	}
}

func TestExpireSweep(t *testing.T) {
	h := newHarness(t, "a", "b")
	lm := h.nodes["a"].Links
	owner := links.EntityRef{User: "a", Entity: "slot9"}
	expiring := newLink("L-exp", links.Negotiation, links.Permanent, owner, refs("b", "slot9"))
	expiring.Expires = h.clk.Now().Add(time.Hour)
	if err := lm.AddLink(expiring); err != nil {
		t.Fatal(err)
	}
	keeper := newLink("L-keep", links.Negotiation, links.Permanent, owner, refs("b", "slot9"))
	if err := lm.AddLink(keeper); err != nil {
		t.Fatal(err)
	}

	if got := lm.ExpireSweep(ctxBg(), h.clk.Now()); len(got) != 0 {
		t.Fatalf("premature expiry: %v", got)
	}
	h.clk.Advance(2 * time.Hour)
	got := lm.ExpireSweep(ctxBg(), h.clk.Now())
	if len(got) != 1 || got[0] != "L-exp" {
		t.Fatalf("expired = %v", got)
	}
	if _, ok := lm.GetLink("L-exp"); ok {
		t.Fatal("expired link still present")
	}
	if _, ok := lm.GetLink("L-keep"); !ok {
		t.Fatal("unexpired link swept")
	}
}

// --- triggers -----------------------------------------------------------------

func TestTriggerEntityNegotiationVeto(t *testing.T) {
	h := newHarness(t, "a", "b", "c")
	lm := h.nodes["a"].Links
	l := newLink("L1", links.Negotiation, links.Permanent,
		links.EntityRef{User: "a", Entity: "slot9"}, refs("b", "slot9", "c", "slot9"))
	l.Triggers = []links.Trigger{{Event: "change", Action: "reserve", Args: wire.Args{"meeting": "M1"}}}
	if err := lm.AddLink(l); err != nil {
		t.Fatal(err)
	}

	// All free: change allowed, targets changed.
	results, err := lm.TriggerEntity(ctxBg(), "slot9", "change", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Negotiation == nil || !results[0].Negotiation.OK {
		t.Fatalf("results = %+v", results)
	}
	if h.nodes["b"].status("slot9") != "M1" {
		t.Fatal("target not changed")
	}

	// Now c is busy with another meeting: the negotiation-and link
	// vetoes the change.
	h.nodes["c"].setStatus("slot9", "OTHER")
	_, err = lm.TriggerEntity(ctxBg(), "slot9", "change", nil)
	if err == nil {
		t.Fatal("veto expected")
	}
}

func TestTriggerEntitySubscriptionBestEffort(t *testing.T) {
	h := newHarness(t, "a", "b", "c")
	lm := h.nodes["a"].Links
	l := newLink("L1", links.Subscription, links.Permanent,
		links.EntityRef{User: "a", Entity: "slot9"}, refs("b", "inbox", "c", "inbox"))
	l.Triggers = []links.Trigger{{Event: "change", Action: "note", Args: wire.Args{"text": "a changed slot9"}}}
	if err := lm.AddLink(l); err != nil {
		t.Fatal(err)
	}
	// c is unreachable; subscription must still deliver to b and not veto.
	h.net.SetDown("node-c", true)
	results, err := lm.TriggerEntity(ctxBg(), "slot9", "change", nil)
	if err != nil {
		t.Fatalf("subscription must not veto: %v", err)
	}
	if len(results) != 1 || results[0].Err == nil {
		t.Fatalf("expected recorded best-effort error, got %+v", results)
	}
	if h.nodes["b"].noteCount() != 1 {
		t.Fatalf("b notes = %d", h.nodes["b"].noteCount())
	}
}

func TestTriggerMethodInvocation(t *testing.T) {
	h := newHarness(t, "a", "b")
	// b publishes an app service with a Notify method.
	var mu sync.Mutex
	var calls []wire.Args
	obj := newAppObject(func(args wire.Args) {
		mu.Lock()
		calls = append(calls, args)
		mu.Unlock()
	})
	if err := h.nodes["b"].RegisterService(ctxBg(), "meetings.b", obj); err != nil {
		t.Fatal(err)
	}

	lm := h.nodes["a"].Links
	l := newLink("L1", links.Subscription, links.Permanent,
		links.EntityRef{User: "a", Entity: "slot9"}, refs("b", "slot9"))
	l.Triggers = []links.Trigger{{
		Event: "delete", Service: "meetings.%s", Method: "Notify",
		Args: wire.Args{"reason": "cancelled"},
	}}
	if err := lm.AddLink(l); err != nil {
		t.Fatal(err)
	}
	if _, err := lm.DeleteLink(ctxBg(), "L1", nil); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(calls) != 1 {
		t.Fatalf("calls = %d", len(calls))
	}
	if calls[0].String("reason") != "cancelled" || calls[0].String("link") != "L1" || calls[0].String("source") != "a" {
		t.Fatalf("args = %v", calls[0])
	}
}

func TestTentativeOnlyHighestPriorityFires(t *testing.T) {
	h := newHarness(t, "a", "b")
	lm := h.nodes["a"].Links
	owner := links.EntityRef{User: "a", Entity: "slot9"}
	mk := func(id string, prio int, text string) {
		l := newLink(id, links.Subscription, links.Tentative, owner, refs("b", "inbox"))
		l.Priority = prio
		l.Triggers = []links.Trigger{{Event: "avail", Action: "note", Args: wire.Args{"text": text}}}
		if err := lm.AddLink(l); err != nil {
			t.Fatal(err)
		}
	}
	mk("T-low", 1, "low")
	mk("T-high", 9, "high")
	if _, err := lm.TriggerEntity(ctxBg(), "slot9", "avail", nil); err != nil {
		t.Fatal(err)
	}
	h.nodes["b"].mu.Lock()
	notes := append([]string(nil), h.nodes["b"].notes...)
	h.nodes["b"].mu.Unlock()
	if len(notes) != 1 || notes[0] != "inbox:high" {
		t.Fatalf("notes = %v", notes)
	}
}

// --- method forwarding (op 5) ---------------------------------------------------

func TestMethodForwarding(t *testing.T) {
	h := newHarness(t, "a", "b")
	var mu sync.Mutex
	var got []wire.Args
	obj := newAppObject(func(args wire.Args) {
		mu.Lock()
		got = append(got, args)
		mu.Unlock()
	})
	if err := h.nodes["b"].RegisterService(ctxBg(), "cal.b", obj); err != nil {
		t.Fatal(err)
	}
	lm := h.nodes["a"].Links
	if err := lm.AddMethodLink("cal.a", "ReserveSlot", "b", "cal.b", "Notify"); err != nil {
		t.Fatal(err)
	}
	// Duplicate registration is idempotent.
	if err := lm.AddMethodLink("cal.a", "ReserveSlot", "b", "cal.b", "Notify"); err != nil {
		t.Fatal(err)
	}
	res := lm.ForwardMethod(ctxBg(), "cal.a", "ReserveSlot", wire.Args{"slot": "mon-9"})
	if len(res) != 1 || res[0].Err != nil {
		t.Fatalf("res = %+v", res)
	}
	mu.Lock()
	n := len(got)
	mu.Unlock()
	if n != 1 {
		t.Fatalf("forwarded %d times", n)
	}
	// Unrelated methods do not forward.
	if res := lm.ForwardMethod(ctxBg(), "cal.a", "Other", nil); len(res) != 0 {
		t.Fatalf("unexpected forward: %+v", res)
	}
	lm.RemoveMethodLink("cal.a", "ReserveSlot", "b", "Notify")
	if res := lm.ForwardMethod(ctxBg(), "cal.a", "ReserveSlot", nil); len(res) != 0 {
		t.Fatalf("forward after removal: %+v", res)
	}
}

// --- remote service object ------------------------------------------------------

func TestRemoteLinksServiceRoundTrip(t *testing.T) {
	h := newHarness(t, "a", "b")
	// a installs a link row at b through the wire.
	l := newLink("L-remote", links.Subscription, links.Permanent,
		links.EntityRef{User: "b", Entity: "slot9"}, refs("a", "slot9"))
	if err := h.nodes["a"].Links.InstallAt(ctxBg(), "b", l); err != nil {
		t.Fatal(err)
	}
	got, ok := h.nodes["b"].Links.GetLink("L-remote")
	if !ok || got.Owner.User != "b" {
		t.Fatalf("remote install failed: %+v ok=%v", got, ok)
	}
	// Remote Mark/Commit through the service.
	var out struct {
		Token string `json:"token"`
	}
	err := h.nodes["a"].Engine.Invoke(ctxBg(), links.ServiceFor("b"), "Mark", wire.Args{
		"entity": "slot9", "action": "reserve", "args": map[string]any{"meeting": "MM"},
	}, &out)
	if err != nil || out.Token == "" {
		t.Fatalf("Mark: %v token=%q", err, out.Token)
	}
	// Second mark conflicts.
	err = h.nodes["a"].Engine.Invoke(ctxBg(), links.ServiceFor("b"), "Mark", wire.Args{
		"entity": "slot9", "action": "reserve", "args": map[string]any{"meeting": "ZZ"},
	}, nil)
	if wire.CodeOf(err) != wire.CodeConflict {
		t.Fatalf("second Mark: %v", err)
	}
	// Commit with a stale token fails.
	err = h.nodes["a"].Engine.Invoke(ctxBg(), links.ServiceFor("b"), "Commit", wire.Args{
		"entity": "slot9", "token": "bogus", "action": "reserve", "args": map[string]any{"meeting": "MM"},
	}, nil)
	if wire.CodeOf(err) != wire.CodeConflict {
		t.Fatalf("stale commit: %v", err)
	}
	// Proper commit applies.
	err = h.nodes["a"].Engine.Invoke(ctxBg(), links.ServiceFor("b"), "Commit", wire.Args{
		"entity": "slot9", "token": out.Token, "action": "reserve", "args": map[string]any{"meeting": "MM"},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if h.nodes["b"].status("slot9") != "MM" {
		t.Fatalf("status = %q", h.nodes["b"].status("slot9"))
	}
}

// newAppObject builds a one-method listener object calling fn on
// Notify.
func newAppObject(fn func(wire.Args)) *listener.Object {
	return listener.NewObject().Handle("Notify", func(ctx context.Context, call *listener.Call) (any, error) {
		fn(call.Args)
		return true, nil
	})
}
