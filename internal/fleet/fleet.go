// Package fleet implements SyDFleet, the second sample application
// the paper names (Fig. 2 and reference [1], "Mobile Fleet
// Applications using SOAP and SyD Middleware Technologies"): vehicles
// carry independent data stores with their position and cargo; a
// dispatcher queries the fleet as a group through SyDEngine; a
// subscription link streams geofence alerts to the depot.
//
// Like the calendar, the package is pure application code over the SyD
// kernel — it demonstrates that the kernel is not calendar-shaped.
package fleet

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/links"
	"repro/internal/listener"
	"repro/internal/store"
	"repro/internal/wire"
)

// ServicePrefix prefixes a vehicle's fleet service name.
const ServicePrefix = "fleet."

// ServiceFor returns the fleet service name for a vehicle id.
func ServiceFor(id string) string { return ServicePrefix + id }

// PositionEntity is the link entity a vehicle's position changes fire
// on.
const PositionEntity = "position"

// alertAction is the depot-side entity action geofence alerts invoke.
const alertAction = "fleet.geofenceAlert"

// Position is a vehicle's reported state.
type Position struct {
	Lat   float64 `json:"lat"`
	Lon   float64 `json:"lon"`
	Cargo string  `json:"cargo"`
}

// Distance is the Euclidean distance in degrees (adequate for the
// depot-radius geofence of the demo).
func Distance(aLat, aLon, bLat, bLon float64) float64 {
	return math.Hypot(aLat-bLat, aLon-bLon)
}

// Vehicle is one truck's device object.
type Vehicle struct {
	ID   string
	node *core.Node
	tab  *store.Table

	depot      string
	fenceLat   float64
	fenceLon   float64
	fenceRange float64
}

// NewVehicle attaches the fleet application to a kernel node at the
// given starting position.
func NewVehicle(ctx context.Context, node *core.Node, startLat, startLon float64) (*Vehicle, error) {
	tab, err := node.DB.CreateTable(store.Schema{
		Name: "fleet_state",
		Columns: []store.Column{
			{Name: "key", Type: store.String},
			{Name: "lat", Type: store.Float},
			{Name: "lon", Type: store.Float},
			{Name: "cargo", Type: store.String},
		},
		Key: []string{"key"},
	})
	if err != nil {
		return nil, err
	}
	if err := tab.Insert(store.Row{"key": "now", "lat": startLat, "lon": startLon, "cargo": ""}); err != nil {
		return nil, err
	}
	v := &Vehicle{ID: node.User, node: node, tab: tab}

	obj := listener.NewObject()
	obj.Handle("Position", func(ctx context.Context, call *listener.Call) (any, error) {
		return v.Position(), nil
	})
	obj.Handle("Assign", func(ctx context.Context, call *listener.Call) (any, error) {
		cargo := call.Args.String("cargo")
		if cargo == "" {
			return nil, &wire.RemoteError{Code: wire.CodeBadArgs, Msg: "Assign needs cargo"}
		}
		return true, v.tab.Update(store.Row{"cargo": cargo}, "now")
	})
	if err := node.RegisterService(ctx, ServiceFor(v.ID), obj); err != nil {
		return nil, err
	}
	return v, nil
}

// Position returns the current state.
func (v *Vehicle) Position() Position {
	r, _ := v.tab.Get("now")
	return Position{
		Lat:   r["lat"].(float64),
		Lon:   r["lon"].(float64),
		Cargo: r["cargo"].(string),
	}
}

// WatchGeofence installs the subscription link that reports this
// vehicle to the depot whenever MoveTo takes it further than radius
// from (lat, lon).
func (v *Vehicle) WatchGeofence(depot string, lat, lon, radius float64) error {
	v.depot, v.fenceLat, v.fenceLon, v.fenceRange = depot, lat, lon, radius
	l := &links.Link{
		ID: "geofence-" + v.ID, Type: links.Subscription, Subtype: links.Permanent,
		Owner:   links.EntityRef{User: v.ID, Entity: PositionEntity},
		Targets: []links.EntityRef{{User: depot, Entity: "alerts"}},
		Triggers: []links.Trigger{{
			Event: "outOfArea", Action: alertAction,
			Args: wire.Args{"vehicle": v.ID},
		}},
	}
	return v.node.Links.AddLink(l)
}

// MoveTo updates the vehicle's position and fires the geofence link
// when the new position is outside the fence.
func (v *Vehicle) MoveTo(ctx context.Context, lat, lon float64) error {
	if err := v.tab.Update(store.Row{"lat": lat, "lon": lon}, "now"); err != nil {
		return err
	}
	if v.depot == "" {
		return nil
	}
	if Distance(lat, lon, v.fenceLat, v.fenceLon) > v.fenceRange {
		_, err := v.node.Links.TriggerEntity(ctx, PositionEntity, "outOfArea", wire.Args{
			"lat": lat, "lon": lon,
		})
		return err
	}
	return nil
}

// Alert is a geofence violation received by the depot.
type Alert struct {
	Vehicle string
	Lat     float64
	Lon     float64
}

// Depot is the dispatcher's application instance.
type Depot struct {
	node   *core.Node
	alerts chan Alert
}

// NewDepot attaches the dispatcher to a kernel node.
func NewDepot(node *core.Node) *Depot {
	d := &Depot{node: node, alerts: make(chan Alert, 64)}
	node.Links.RegisterAction(alertAction, links.Action{
		Apply: func(entity string, args wire.Args) error {
			a := Alert{Vehicle: args.String("vehicle")}
			if f, ok := args["lat"].(float64); ok {
				a.Lat = f
			}
			if f, ok := args["lon"].(float64); ok {
				a.Lon = f
			}
			select {
			case d.alerts <- a:
			default: // drop when the depot is flooded
			}
			return nil
		},
	})
	return d
}

// Alerts exposes the geofence alert stream.
func (d *Depot) Alerts() <-chan Alert { return d.alerts }

// RegisterFleet creates (or extends) the directory group naming the
// fleet.
func (d *Depot) RegisterFleet(ctx context.Context, group string, vehicleIDs []string) error {
	return d.node.Dir.CreateGroup(ctx, group, vehicleIDs)
}

// FleetPositions group-invokes Position across the named fleet and
// returns per-vehicle states (unreachable vehicles are omitted;
// callers needing errors use the engine directly).
func (d *Depot) FleetPositions(ctx context.Context, group string) (map[string]Position, error) {
	results, err := d.node.Engine.InvokeGroupName(ctx, group, ServicePrefix+"%s", "Position", nil)
	if err != nil {
		return nil, err
	}
	out := make(map[string]Position, len(results))
	for _, r := range results {
		if r.Err != nil {
			continue
		}
		var p Position
		if err := r.Decode(&p); err != nil {
			continue
		}
		out[r.Service[len(ServicePrefix):]] = p
	}
	return out, nil
}

// Assign gives cargo to the nearest free vehicle in the group and
// returns the chosen vehicle id.
func (d *Depot) Assign(ctx context.Context, group, cargo string, lat, lon float64) (string, error) {
	positions, err := d.FleetPositions(ctx, group)
	if err != nil {
		return "", err
	}
	type cand struct {
		id   string
		dist float64
	}
	var free []cand
	for id, p := range positions {
		if p.Cargo == "" {
			free = append(free, cand{id, Distance(p.Lat, p.Lon, lat, lon)})
		}
	}
	if len(free) == 0 {
		return "", &wire.RemoteError{Code: wire.CodeConflict, Msg: "fleet: no free vehicle"}
	}
	sort.Slice(free, func(i, j int) bool {
		if free[i].dist != free[j].dist {
			return free[i].dist < free[j].dist
		}
		return free[i].id < free[j].id
	})
	chosen := free[0].id
	err = d.node.Engine.Invoke(ctx, ServiceFor(chosen), "Assign", wire.Args{"cargo": cargo}, nil)
	if err != nil {
		return "", fmt.Errorf("fleet: assign to %s: %w", chosen, err)
	}
	return chosen, nil
}
