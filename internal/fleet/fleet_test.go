package fleet_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/controlplane"
	"repro/internal/core"
	"repro/internal/directory"
	"repro/internal/fleet"
	"repro/internal/sim"
	"repro/internal/wire"
)

type world struct {
	t        *testing.T
	net      *sim.Net
	depot    *fleet.Depot
	vehicles map[string]*fleet.Vehicle
}

func newWorld(t *testing.T, vehicleIDs ...string) *world {
	t.Helper()
	net := sim.New(sim.Config{})
	srv := directory.NewServer(directory.WithTTL(time.Hour))
	if _, err := net.Listen("dir", srv.Handler()); err != nil {
		t.Fatal(err)
	}
	return populateWorld(t, net, "", vehicleIDs)
}

// newShardedWorld is newWorld against a 4-shard directory behind the
// epoch-versioned control plane: the depot's group fan-out and the
// vehicles' registrations all route through the shard map.
func newShardedWorld(t *testing.T, vehicleIDs ...string) *world {
	t.Helper()
	const shards = 4
	net := sim.New(sim.Config{})
	list := make([]controlplane.Shard, shards)
	servers := make([]*directory.Server, shards)
	for i := 0; i < shards; i++ {
		id := fmt.Sprintf("shard%d", i)
		srv := directory.NewServer(directory.WithTTL(time.Hour), directory.WithShard(id))
		ln, err := net.Listen(fmt.Sprintf("dir%d", i), srv.Handler())
		if err != nil {
			t.Fatal(err)
		}
		list[i] = controlplane.Shard{ID: id, Addr: ln.Addr()}
		servers[i] = srv
	}
	ctl := controlplane.NewController(list)
	for _, srv := range servers {
		ctl.Subscribe(srv.SetTable)
	}
	if _, err := net.Listen("cp", ctl.Handler()); err != nil {
		t.Fatal(err)
	}
	return populateWorld(t, net, "cp", vehicleIDs)
}

func populateWorld(t *testing.T, net *sim.Net, cpAddr string, vehicleIDs []string) *world {
	t.Helper()
	ctx := context.Background()
	depotNode, err := core.Start(ctx, core.Config{User: "depot", Net: net, DirAddr: "dir", ControlPlaneAddr: cpAddr})
	if err != nil {
		t.Fatal(err)
	}
	w := &world{t: t, net: net, depot: fleet.NewDepot(depotNode), vehicles: map[string]*fleet.Vehicle{}}
	for _, id := range vehicleIDs {
		node, err := core.Start(ctx, core.Config{User: id, Net: net, DirAddr: "dir", ControlPlaneAddr: cpAddr})
		if err != nil {
			t.Fatal(err)
		}
		v, err := fleet.NewVehicle(ctx, node, 33.75, -84.39)
		if err != nil {
			t.Fatal(err)
		}
		w.vehicles[id] = v
	}
	if err := w.depot.RegisterFleet(ctx, "fleet", vehicleIDs); err != nil {
		t.Fatal(err)
	}
	return w
}

func TestFleetPositions(t *testing.T) {
	w := newWorld(t, "t1", "t2", "t3")
	positions, err := w.depot.FleetPositions(context.Background(), "fleet")
	if err != nil {
		t.Fatal(err)
	}
	if len(positions) != 3 {
		t.Fatalf("positions = %v", positions)
	}
	for id, p := range positions {
		if p.Lat != 33.75 || p.Lon != -84.39 || p.Cargo != "" {
			t.Fatalf("%s = %+v", id, p)
		}
	}
}

func TestFleetPositionsSkipsDownVehicle(t *testing.T) {
	w := newWorld(t, "t1", "t2")
	w.net.SetDown("node-t2", true)
	positions, err := w.depot.FleetPositions(context.Background(), "fleet")
	if err != nil {
		t.Fatal(err)
	}
	if len(positions) != 1 {
		t.Fatalf("positions = %v", positions)
	}
	if _, ok := positions["t1"]; !ok {
		t.Fatalf("t1 missing: %v", positions)
	}
}

func TestAssignNearestFree(t *testing.T) {
	w := newWorld(t, "t1", "t2")
	ctx := context.Background()
	// t2 is closer to the pickup point.
	if err := w.vehicles["t2"].MoveTo(ctx, 34.00, -84.39); err != nil {
		t.Fatal(err)
	}
	chosen, err := w.depot.Assign(ctx, "fleet", "pallets", 34.01, -84.39)
	if err != nil {
		t.Fatal(err)
	}
	if chosen != "t2" {
		t.Fatalf("chosen = %s", chosen)
	}
	if got := w.vehicles["t2"].Position().Cargo; got != "pallets" {
		t.Fatalf("cargo = %q", got)
	}
	// t2 is now loaded; the next assignment goes to t1 even though it
	// is further away.
	chosen, err = w.depot.Assign(ctx, "fleet", "crates", 34.01, -84.39)
	if err != nil {
		t.Fatal(err)
	}
	if chosen != "t1" {
		t.Fatalf("second chosen = %s", chosen)
	}
	// All loaded: no free vehicle.
	if _, err := w.depot.Assign(ctx, "fleet", "more", 0, 0); wire.CodeOf(err) != wire.CodeConflict {
		t.Fatalf("err = %v", err)
	}
}

func TestGeofenceAlert(t *testing.T) {
	w := newWorld(t, "t1")
	ctx := context.Background()
	v := w.vehicles["t1"]
	if err := v.WatchGeofence("depot", 33.75, -84.39, 0.25); err != nil {
		t.Fatal(err)
	}
	// Inside the fence: no alert.
	if err := v.MoveTo(ctx, 33.80, -84.39); err != nil {
		t.Fatal(err)
	}
	select {
	case a := <-w.depot.Alerts():
		t.Fatalf("alert inside fence: %+v", a)
	default:
	}
	// Outside: alert with the violating position.
	if err := v.MoveTo(ctx, 34.20, -84.39); err != nil {
		t.Fatal(err)
	}
	select {
	case a := <-w.depot.Alerts():
		if a.Vehicle != "t1" || a.Lat != 34.20 {
			t.Fatalf("alert = %+v", a)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no alert")
	}
}

func TestAssignValidation(t *testing.T) {
	w := newWorld(t, "t1")
	_, err := w.depot.Assign(context.Background(), "ghost-fleet", "x", 0, 0)
	if wire.CodeOf(err) != wire.CodeConflict {
		t.Fatalf("empty group assign: %v", err)
	}
}

func TestFleetOverShardedDirectory(t *testing.T) {
	w := newShardedWorld(t, "t1", "t2", "t3")
	ctx := context.Background()
	positions, err := w.depot.FleetPositions(ctx, "fleet")
	if err != nil {
		t.Fatal(err)
	}
	if len(positions) != 3 {
		t.Fatalf("positions = %v", positions)
	}
	id, err := w.depot.Assign(ctx, "fleet", "crates", 33.80, -84.39)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := w.vehicles[id]; !ok {
		t.Fatalf("assigned unknown vehicle %q", id)
	}
	positions, err = w.depot.FleetPositions(ctx, "fleet")
	if err != nil {
		t.Fatal(err)
	}
	if positions[id].Cargo != "crates" {
		t.Fatalf("cargo lost over sharded directory: %+v", positions[id])
	}
}
