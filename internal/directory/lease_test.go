package directory

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"repro/internal/store"
	"repro/internal/wire"
)

func TestLeaseAcquireRenewConflict(t *testing.T) {
	c, clk, _ := newDirectory(t)
	ctx := ctxT(t)

	// First acquisition creates the lease.
	info, err := c.RenewLease(ctx, "phil", "node-1", 30*time.Second, []string{"r1", "r2"})
	if err != nil {
		t.Fatal(err)
	}
	if info.Holder != "node-1" || !info.Deadline.Equal(clk.Now().Add(30*time.Second)) {
		t.Fatalf("info = %+v", info)
	}

	// A different holder cannot take a live lease.
	_, err = c.RenewLease(ctx, "phil", "node-2", 30*time.Second, nil)
	if wire.CodeOf(err) != wire.CodeConflict {
		t.Fatalf("rival renew err = %v, want CodeConflict", err)
	}

	// The holder renews freely; nil replicas keeps the stored set.
	clk.Advance(20 * time.Second)
	if _, err := c.RenewLease(ctx, "phil", "node-1", 30*time.Second, nil); err != nil {
		t.Fatal(err)
	}
	got, err := c.GetLease(ctx, "phil")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Replicas, []string{"r1", "r2"}) || got.Expired {
		t.Fatalf("lease after renew = %+v", got)
	}
}

func TestLeaseExpiryTakeover(t *testing.T) {
	c, clk, _ := newDirectory(t)
	ctx := ctxT(t)
	if _, err := c.RenewLease(ctx, "phil", "node-1", 10*time.Second, []string{"r1"}); err != nil {
		t.Fatal(err)
	}

	// Still live at the deadline boundary? Expiry is deadline-inclusive:
	// !deadline.After(now) — at exactly +10s the lease is expired.
	clk.Advance(10 * time.Second)
	got, err := c.GetLease(ctx, "phil")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Expired {
		t.Fatalf("lease at deadline = %+v, want expired", got)
	}

	// An expired lease is taken over; new holder's replicas replace.
	if _, err := c.RenewLease(ctx, "phil", "node-2", 10*time.Second, []string{"r2"}); err != nil {
		t.Fatal(err)
	}
	got, err = c.GetLease(ctx, "phil")
	if err != nil {
		t.Fatal(err)
	}
	if got.Holder != "node-2" || !reflect.DeepEqual(got.Replicas, []string{"r2"}) {
		t.Fatalf("lease after takeover = %+v", got)
	}

	// The old holder is now the rival and gets fenced.
	_, err = c.RenewLease(ctx, "phil", "node-1", 10*time.Second, nil)
	if wire.CodeOf(err) != wire.CodeConflict {
		t.Fatalf("old holder renew err = %v, want CodeConflict", err)
	}
}

func TestLeaseGetUnknown(t *testing.T) {
	c, _, _ := newDirectory(t)
	_, err := c.GetLease(ctxT(t), "ghost")
	if wire.CodeOf(err) != wire.CodeNoService {
		t.Fatalf("err = %v", err)
	}
}

func TestLeaseList(t *testing.T) {
	c, clk, _ := newDirectory(t)
	ctx := ctxT(t)
	if _, err := c.RenewLease(ctx, "zoe", "n-z", 5*time.Second, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RenewLease(ctx, "abe", "n-a", 60*time.Second, nil); err != nil {
		t.Fatal(err)
	}
	clk.Advance(6 * time.Second)
	leases, err := c.ListLeases(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(leases) != 2 || leases[0].User != "abe" || leases[1].User != "zoe" {
		t.Fatalf("leases = %+v", leases)
	}
	if leases[0].Expired || !leases[1].Expired {
		t.Fatalf("expiry flags = %+v", leases)
	}
}

func TestRepointRebindsUserAndServices(t *testing.T) {
	c, _, _ := newDirectory(t)
	ctx := ctxT(t)
	if err := c.RegisterUser(ctx, "phil", "node-old", 1); err != nil {
		t.Fatal(err)
	}
	for _, svc := range []string{"cal.phil", "links.phil"} {
		if err := c.RegisterService(ctx, svc, "phil", "node-old", nil); err != nil {
			t.Fatal(err)
		}
	}

	if err := c.Repoint(ctx, "phil", "node-new"); err != nil {
		t.Fatal(err)
	}

	u, err := c.LookupUser(ctx, "phil")
	if err != nil {
		t.Fatal(err)
	}
	if u.Addr != "node-new" || !u.Online {
		t.Fatalf("user after repoint = %+v", u)
	}
	for _, svc := range []string{"cal.phil", "links.phil"} {
		si, err := c.LookupService(ctx, svc)
		if err != nil {
			t.Fatal(err)
		}
		if si.Addr != "node-new" {
			t.Fatalf("%s addr = %q, want node-new", svc, si.Addr)
		}
	}

	if err := c.Repoint(ctx, "ghost", "nowhere"); wire.CodeOf(err) != wire.CodeNoService {
		t.Fatalf("repoint unknown user err = %v", err)
	}
}

// TestLeaseSurvivesSnapshotRestore covers both directions: leases are
// in the snapshot, and a pre-replication snapshot (no leases table)
// still restores.
func TestLeaseSurvivesSnapshotRestore(t *testing.T) {
	c, clk, _ := newDirectory(t)
	ctx := ctxT(t)
	if _, err := c.RenewLease(ctx, "phil", "node-1", 30*time.Second, []string{"r1"}); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := lastServer.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreServer(&buf, WithClock(clk))
	if err != nil {
		t.Fatal(err)
	}
	got, err := restored.getLease("phil")
	if err != nil {
		t.Fatal(err)
	}
	if got.Holder != "node-1" || !reflect.DeepEqual(got.Replicas, []string{"r1"}) {
		t.Fatalf("restored lease = %+v", got)
	}

	// A snapshot from a server that predates replication: a DB holding
	// the four original tables but no leases table.
	old := store.NewDB()
	for _, name := range []string{"users", "services", "members", "proxies"} {
		old.MustCreateTable(store.Schema{
			Name:    name,
			Columns: []store.Column{{Name: "id", Type: store.String}},
			Key:     []string{"id"},
		})
	}
	buf.Reset()
	if err := old.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err = RestoreServer(&buf, WithClock(clk))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := restored.renewLease("zoe", "n", time.Second, nil); err != nil {
		t.Fatal(err)
	}
}
