package directory

import (
	"bytes"
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/sim"
	"repro/internal/wire"
)

// newDirectory spins up a directory server on a fresh sim network and
// returns a client plus the fake clock driving liveness.
func newDirectory(t *testing.T) (*Client, *clock.Fake, *sim.Net) {
	t.Helper()
	fake := clock.NewFake(time.Date(2003, 4, 22, 9, 0, 0, 0, time.UTC))
	net := sim.New(sim.Config{})
	srv := NewServer(WithClock(fake), WithTTL(10*time.Second))
	lastServer = srv
	ln, err := net.Listen("dir", srv.Handler())
	if err != nil {
		t.Fatal(err)
	}
	return NewClient(net, ln.Addr()), fake, net
}

func ctxT(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestRegisterAndLookupUser(t *testing.T) {
	c, _, _ := newDirectory(t)
	ctx := ctxT(t)
	if err := c.RegisterUser(ctx, "phil", "node-phil", 5); err != nil {
		t.Fatal(err)
	}
	info, err := c.LookupUser(ctx, "phil")
	if err != nil {
		t.Fatal(err)
	}
	if info.ID != "phil" || info.Addr != "node-phil" || info.Priority != 5 || !info.Online {
		t.Fatalf("info = %+v", info)
	}
}

func TestLookupUnknownUser(t *testing.T) {
	c, _, _ := newDirectory(t)
	_, err := c.LookupUser(ctxT(t), "ghost")
	if wire.CodeOf(err) != wire.CodeNoService {
		t.Fatalf("err = %v", err)
	}
}

func TestRegisterUserValidation(t *testing.T) {
	c, _, _ := newDirectory(t)
	if err := c.RegisterUser(ctxT(t), "", "addr", 0); err == nil {
		t.Fatal("empty id accepted")
	}
	if err := c.RegisterUser(ctxT(t), "x", "", 0); err == nil {
		t.Fatal("empty addr accepted")
	}
}

func TestHeartbeatKeepsUserOnline(t *testing.T) {
	c, fake, _ := newDirectory(t)
	ctx := ctxT(t)
	if err := c.RegisterUser(ctx, "phil", "node-phil", 0); err != nil {
		t.Fatal(err)
	}
	fake.Advance(8 * time.Second)
	if err := c.Heartbeat(ctx, "phil"); err != nil {
		t.Fatal(err)
	}
	fake.Advance(8 * time.Second)
	info, err := c.LookupUser(ctx, "phil")
	if err != nil {
		t.Fatal(err)
	}
	if !info.Online {
		t.Fatal("heartbeated user went offline")
	}
	fake.Advance(11 * time.Second)
	info, err = c.LookupUser(ctx, "phil")
	if err != nil {
		t.Fatal(err)
	}
	if info.Online {
		t.Fatal("stale user still online after TTL")
	}
}

func TestHeartbeatUnknownUser(t *testing.T) {
	c, _, _ := newDirectory(t)
	if err := c.Heartbeat(ctxT(t), "ghost"); wire.CodeOf(err) != wire.CodeNoService {
		t.Fatalf("err = %v", err)
	}
}

func TestSetOfflineExplicit(t *testing.T) {
	c, _, _ := newDirectory(t)
	ctx := ctxT(t)
	if err := c.RegisterUser(ctx, "phil", "node-phil", 0); err != nil {
		t.Fatal(err)
	}
	if err := c.SetOffline(ctx, "phil", true); err != nil {
		t.Fatal(err)
	}
	info, _ := c.LookupUser(ctx, "phil")
	if info.Online {
		t.Fatal("explicitly offline user reported online")
	}
	if err := c.SetOffline(ctx, "phil", false); err != nil {
		t.Fatal(err)
	}
	info, _ = c.LookupUser(ctx, "phil")
	if !info.Online {
		t.Fatal("user did not come back online")
	}
}

func TestTouchClearsOfflineAndReleasesProxyAtomically(t *testing.T) {
	c, _, _ := newDirectory(t)
	ctx := ctxT(t)
	if err := c.RegisterProxy(ctx, "p1", "proxy-1"); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterUser(ctx, "phil", "node-phil", 0); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterService(ctx, "cal.phil", "phil", "node-phil", nil); err != nil {
		t.Fatal(err)
	}
	if err := c.SetOffline(ctx, "phil", true); err != nil {
		t.Fatal(err)
	}
	// While offline, service resolution offers the proxy fallback.
	svc, err := c.LookupService(ctx, "cal.phil")
	if err != nil {
		t.Fatal(err)
	}
	if svc.OwnerOnline || svc.Proxy != "proxy-1" {
		t.Fatalf("offline service = %+v", svc)
	}

	// Touch reports the pre-reconnect state (so the device can drain
	// its proxy) and flips the record in one transaction.
	prev, err := c.Touch(ctx, "phil")
	if err != nil {
		t.Fatal(err)
	}
	if prev.Online || prev.Proxy != "proxy-1" {
		t.Fatalf("pre-touch info = %+v", prev)
	}
	info, err := c.LookupUser(ctx, "phil")
	if err != nil {
		t.Fatal(err)
	}
	if !info.Online || info.Proxy != "" {
		t.Fatalf("post-touch info = %+v", info)
	}
	// The stale proxy redirect is gone: a sync session resolving the
	// user's services right after Touch goes straight to the device.
	c.Invalidate("cal.phil")
	svc, err = c.LookupService(ctx, "cal.phil")
	if err != nil {
		t.Fatal(err)
	}
	if !svc.OwnerOnline || svc.Proxy != "" {
		t.Fatalf("post-touch service = %+v", svc)
	}

	// The next deliberate disconnect re-assigns a proxy even though
	// Touch released the old binding.
	if err := c.SetOffline(ctx, "phil", true); err != nil {
		t.Fatal(err)
	}
	info, _ = c.LookupUser(ctx, "phil")
	if info.Proxy == "" {
		t.Fatalf("re-disconnect did not re-assign a proxy: %+v", info)
	}
}

func TestTouchUnknownUser(t *testing.T) {
	c, _, _ := newDirectory(t)
	if _, err := c.Touch(ctxT(t), "ghost"); wire.CodeOf(err) != wire.CodeNoService {
		t.Fatalf("err = %v", err)
	}
}

func TestReRegistrationKeepsProxy(t *testing.T) {
	c, _, _ := newDirectory(t)
	ctx := ctxT(t)
	if err := c.RegisterProxy(ctx, "p1", "proxy-1"); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterUser(ctx, "phil", "node-phil", 0); err != nil {
		t.Fatal(err)
	}
	before, _ := c.LookupUser(ctx, "phil")
	if before.Proxy != "proxy-1" {
		t.Fatalf("proxy = %q", before.Proxy)
	}
	// Device moves to a new address (mobility) and re-registers.
	if err := c.RegisterUser(ctx, "phil", "node-phil-2", 3); err != nil {
		t.Fatal(err)
	}
	after, _ := c.LookupUser(ctx, "phil")
	if after.Addr != "node-phil-2" || after.Proxy != "proxy-1" || after.Priority != 3 {
		t.Fatalf("after = %+v", after)
	}
}

func TestProxyRoundRobinAssignment(t *testing.T) {
	c, _, _ := newDirectory(t)
	ctx := ctxT(t)
	if err := c.RegisterProxy(ctx, "p1", "proxy-1"); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterProxy(ctx, "p2", "proxy-2"); err != nil {
		t.Fatal(err)
	}
	assigned := map[string]int{}
	for _, u := range []string{"a", "b", "c", "d"} {
		if err := c.RegisterUser(ctx, u, "node-"+u, 0); err != nil {
			t.Fatal(err)
		}
		info, _ := c.LookupUser(ctx, u)
		assigned[info.Proxy]++
	}
	if assigned["proxy-1"] != 2 || assigned["proxy-2"] != 2 {
		t.Fatalf("assignment = %v", assigned)
	}
}

func TestRegisterAndLookupService(t *testing.T) {
	c, _, _ := newDirectory(t)
	ctx := ctxT(t)
	if err := c.RegisterUser(ctx, "phil", "node-phil", 0); err != nil {
		t.Fatal(err)
	}
	err := c.RegisterService(ctx, "cal.phil", "phil", "node-phil", []string{"GetFreeSlots", "ReserveSlot"})
	if err != nil {
		t.Fatal(err)
	}
	info, err := c.LookupService(ctx, "cal.phil")
	if err != nil {
		t.Fatal(err)
	}
	if info.Addr != "node-phil" || info.Owner != "phil" || !info.OwnerOnline {
		t.Fatalf("info = %+v", info)
	}
	if !reflect.DeepEqual(info.Methods, []string{"GetFreeSlots", "ReserveSlot"}) {
		t.Fatalf("methods = %v", info.Methods)
	}
}

func TestLookupServiceJoinsOwnerLiveness(t *testing.T) {
	c, fake, _ := newDirectory(t)
	ctx := ctxT(t)
	if err := c.RegisterUser(ctx, "phil", "node-phil", 0); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterService(ctx, "cal.phil", "phil", "node-phil", nil); err != nil {
		t.Fatal(err)
	}
	fake.Advance(time.Minute) // past TTL
	info, err := c.LookupService(ctx, "cal.phil")
	if err != nil {
		t.Fatal(err)
	}
	if info.OwnerOnline {
		t.Fatal("owner should be offline after TTL")
	}
}

func TestServiceWithoutOwnerAlwaysOnline(t *testing.T) {
	c, _, _ := newDirectory(t)
	ctx := ctxT(t)
	if err := c.RegisterService(ctx, "infra.logger", "", "node-x", nil); err != nil {
		t.Fatal(err)
	}
	info, err := c.LookupService(ctx, "infra.logger")
	if err != nil {
		t.Fatal(err)
	}
	if !info.OwnerOnline {
		t.Fatal("ownerless service should count as online")
	}
}

func TestUnregisterService(t *testing.T) {
	c, _, _ := newDirectory(t)
	ctx := ctxT(t)
	if err := c.RegisterService(ctx, "cal.phil", "phil", "node-phil", nil); err != nil {
		t.Fatal(err)
	}
	if err := c.UnregisterService(ctx, "cal.phil"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.LookupService(ctx, "cal.phil"); wire.CodeOf(err) != wire.CodeNoService {
		t.Fatalf("err = %v", err)
	}
	// Idempotent.
	if err := c.UnregisterService(ctx, "cal.phil"); err != nil {
		t.Fatal(err)
	}
}

func TestServicesOf(t *testing.T) {
	c, _, _ := newDirectory(t)
	ctx := ctxT(t)
	for _, svc := range []string{"cal.phil", "todo.phil"} {
		if err := c.RegisterService(ctx, svc, "phil", "node-phil", nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.RegisterService(ctx, "cal.andy", "andy", "node-andy", nil); err != nil {
		t.Fatal(err)
	}
	got, err := c.ServicesOf(ctx, "phil")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []string{"cal.phil", "todo.phil"}) {
		t.Fatalf("services = %v", got)
	}
}

func TestGroups(t *testing.T) {
	c, _, _ := newDirectory(t)
	ctx := ctxT(t)
	if err := c.CreateGroup(ctx, "biology", []string{"carol", "alice", "bob"}); err != nil {
		t.Fatal(err)
	}
	got, err := c.GroupMembers(ctx, "biology")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []string{"alice", "bob", "carol"}) {
		t.Fatalf("members = %v", got)
	}
	// Idempotent add, then remove.
	if err := c.AddMember(ctx, "biology", "alice"); err != nil {
		t.Fatal(err)
	}
	if err := c.RemoveMember(ctx, "biology", "bob"); err != nil {
		t.Fatal(err)
	}
	if err := c.RemoveMember(ctx, "biology", "bob"); err != nil {
		t.Fatal(err) // removing twice is fine
	}
	got, _ = c.GroupMembers(ctx, "biology")
	if !reflect.DeepEqual(got, []string{"alice", "carol"}) {
		t.Fatalf("members = %v", got)
	}
	empty, err := c.GroupMembers(ctx, "physics")
	if err != nil {
		t.Fatal(err)
	}
	if len(empty) != 0 {
		t.Fatalf("unknown group members = %v", empty)
	}
}

func TestListUsersSorted(t *testing.T) {
	c, _, _ := newDirectory(t)
	ctx := ctxT(t)
	for _, u := range []string{"suzy", "phil", "andy"} {
		if err := c.RegisterUser(ctx, u, "node-"+u, 0); err != nil {
			t.Fatal(err)
		}
	}
	infos, err := c.ListUsers(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for _, i := range infos {
		ids = append(ids, i.ID)
	}
	if !reflect.DeepEqual(ids, []string{"andy", "phil", "suzy"}) {
		t.Fatalf("ids = %v", ids)
	}
}

func TestUnknownMethod(t *testing.T) {
	c, _, _ := newDirectory(t)
	err := c.call(ctxT(t), "x", "Bogus", wire.Args{}, nil)
	if wire.CodeOf(err) != wire.CodeNoMethod {
		t.Fatalf("err = %v", err)
	}
}

func TestClientCache(t *testing.T) {
	fake := clock.NewFake(time.Unix(0, 0))
	net := sim.New(sim.Config{})
	srv := NewServer(WithClock(fake))
	ln, err := net.Listen("dir", srv.Handler())
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(net, ln.Addr(), WithCacheTTL(time.Minute))
	now := time.Unix(0, 0)
	c.nowFn = func() time.Time { return now }
	ctx := ctxT(t)

	if err := c.RegisterService(ctx, "cal.phil", "", "node-phil", nil); err != nil {
		t.Fatal(err)
	}
	before := net.Stats().Requests
	if _, err := c.LookupService(ctx, "cal.phil"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.LookupService(ctx, "cal.phil"); err != nil {
		t.Fatal(err)
	}
	if got := net.Stats().Requests - before; got != 1 {
		t.Fatalf("2 cached lookups made %d network calls", got)
	}
	// Cache expires.
	now = now.Add(2 * time.Minute)
	if _, err := c.LookupService(ctx, "cal.phil"); err != nil {
		t.Fatal(err)
	}
	if got := net.Stats().Requests - before; got != 2 {
		t.Fatalf("expired cache did not refetch (calls=%d)", got)
	}
	// Invalidate forces refetch.
	c.Invalidate("cal.phil")
	if _, err := c.LookupService(ctx, "cal.phil"); err != nil {
		t.Fatal(err)
	}
	if got := net.Stats().Requests - before; got != 3 {
		t.Fatalf("invalidate did not refetch (calls=%d)", got)
	}
}

func TestSnapshotRestoreServer(t *testing.T) {
	c, fake, net := newDirectory(t)
	ctx := ctxT(t)
	if err := c.RegisterProxy(ctx, "p1", "proxy-1"); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterUser(ctx, "phil", "node-phil", 4); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterService(ctx, "cal.phil", "phil", "node-phil", []string{"A", "B"}); err != nil {
		t.Fatal(err)
	}
	if err := c.CreateGroup(ctx, "team", []string{"phil", "andy"}); err != nil {
		t.Fatal(err)
	}

	// The directory "restarts": snapshot, rebuild, serve at a new
	// address.
	var buf bytes.Buffer
	// Access the server through a fresh one restored from snapshot.
	srv2, err := snapshotAndRestore(&buf, fake)
	if err != nil {
		t.Fatal(err)
	}
	ln2, err := net.Listen("dir2", srv2.Handler())
	if err != nil {
		t.Fatal(err)
	}
	c2 := NewClient(net, ln2.Addr())

	u, err := c2.LookupUser(ctx, "phil")
	if err != nil {
		t.Fatal(err)
	}
	if u.Addr != "node-phil" || u.Priority != 4 || u.Proxy != "proxy-1" {
		t.Fatalf("restored user = %+v", u)
	}
	svc, err := c2.LookupService(ctx, "cal.phil")
	if err != nil {
		t.Fatal(err)
	}
	if svc.Addr != "node-phil" || len(svc.Methods) != 2 {
		t.Fatalf("restored service = %+v", svc)
	}
	members, err := c2.GroupMembers(ctx, "team")
	if err != nil {
		t.Fatal(err)
	}
	if len(members) != 2 {
		t.Fatalf("restored members = %v", members)
	}
	// The restored directory is fully functional (writes work).
	if err := c2.RegisterUser(ctx, "suzy", "node-suzy", 0); err != nil {
		t.Fatal(err)
	}
}

// snapshotAndRestore round-trips the package-level test server. The
// helper exists because newDirectory does not expose the server; we
// rebuild an equivalent one through the exported Snapshot/Restore.
var lastServer *Server

func snapshotAndRestore(buf *bytes.Buffer, fake *clock.Fake) (*Server, error) {
	if lastServer == nil {
		return nil, errors.New("no server captured")
	}
	if err := lastServer.Snapshot(buf); err != nil {
		return nil, err
	}
	return RestoreServer(buf, WithClock(fake), WithTTL(10*time.Second))
}

func TestClientErrorsOnUnreachableDirectory(t *testing.T) {
	net := sim.New(sim.Config{})
	c := NewClient(net, "nowhere")
	_, err := c.LookupUser(ctxT(t), "phil")
	if err == nil {
		t.Fatal("expected error")
	}
	var re *wire.RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %T %v", err, err)
	}
}
