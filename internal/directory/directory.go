// Package directory implements SyDDirectory, the kernel's name server
// (paper §3.1a): it "provides user/group/service publishing,
// management, and lookup services to SyD users and device objects"
// and "supports intelligent proxy maintenance for users/devices"
// (§5.2: the name server stores information about all proxies and SyD
// objects and maps each SyD object to at least one proxy).
//
// The directory runs as a transport.Handler behind a well-known
// address; Client is the typed stub used by every node.
package directory

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/controlplane"
	"repro/internal/store"
	"repro/internal/transport"
	"repro/internal/wire"
)

// ServiceName is the service identifier the directory answers to.
const ServiceName = "syd.directory"

// MetaEpoch is the response metadata key a sharded directory stamps
// the current shard-map epoch under. Clients compare it against their
// cached routing table: a newer epoch means the table (and any routes
// resolved under it) is stale and must be refreshed now, not when a
// TTL runs out.
const MetaEpoch = "dir-epoch"

// ShardKey maps a directory name to its routing key. Everything that
// belongs to one user must land on one shard, and service names
// follow the `<kind>.<owner>` convention (cal.phil, links.phil,
// sys.phil), so a service routes by the segment after the first dot —
// co-locating it with its owner's user record, which keeps the
// owner-liveness join in resolveService shard-local. Names without a
// dot route by the whole name.
func ShardKey(name string) string {
	if i := strings.IndexByte(name, '.'); i >= 0 && i+1 < len(name) {
		return name[i+1:]
	}
	return name
}

// DefaultHeartbeatTTL is how long a device stays "online" after its
// last heartbeat unless it deregisters explicitly.
const DefaultHeartbeatTTL = 15 * time.Second

// UserInfo is the directory record for a SyD user/device object.
type UserInfo struct {
	ID       string    `json:"id"`
	Addr     string    `json:"addr"`
	Proxy    string    `json:"proxy,omitempty"`
	Priority int       `json:"priority"`
	Online   bool      `json:"online"`
	LastSeen time.Time `json:"lastSeen"`
}

// ServiceInfo is the directory record for a published service,
// joined with the owner's liveness so a single lookup gives the
// engine everything it needs for invocation and proxy failover.
type ServiceInfo struct {
	Name    string   `json:"name"`
	Owner   string   `json:"owner"`
	Addr    string   `json:"addr"`
	Methods []string `json:"methods,omitempty"`
	// OwnerOnline and Proxy are filled in on lookup.
	OwnerOnline bool   `json:"ownerOnline"`
	Proxy       string `json:"proxy,omitempty"`
}

// Server is the directory server state: either the whole directory
// (the unsharded default) or one shard of it (WithShard + SetTable).
// Create with NewServer and register its Handler with a transport
// listener.
type Server struct {
	clock clock.Clock
	ttl   time.Duration

	db       *store.DB
	users    *store.Table
	services *store.Table
	members  *store.Table
	proxies  *store.Table
	leases   *store.Table

	// leaseMu makes lease check-and-set indivisible (two followers
	// racing to take over an expired lease must not both win).
	leaseMu sync.Mutex

	// shardID is this node's identity in the shard map ("" when the
	// server is the whole, unsharded directory); table is the current
	// epoch-versioned routing table pushed by the control plane.
	shardID string
	table   atomic.Pointer[controlplane.Table]

	mu         sync.Mutex
	nextProxy  int      // round-robin proxy assignment cursor
	proxyAddrs []string // proxy addresses sorted by id; nil = rebuild
}

// Option configures a Server.
type Option func(*Server)

// WithClock substitutes the clock (tests use a fake).
func WithClock(c clock.Clock) Option { return func(s *Server) { s.clock = c } }

// WithTTL overrides the heartbeat TTL.
func WithTTL(d time.Duration) Option { return func(s *Server) { s.ttl = d } }

// WithShard marks the server as one shard of a sharded directory.
// The server rejects ops whose key it does not own (CodeWrongShard)
// and stamps every response with the shard map's epoch. Wire the
// routing table with SetTable (typically via Controller.Subscribe).
func WithShard(id string) Option { return func(s *Server) { s.shardID = id } }

// SetTable installs a new routing table. Safe to call while serving —
// the control plane pushes a fresh table on every epoch advance.
func (s *Server) SetTable(t *controlplane.Table) { s.table.Store(t) }

// ShardID returns the server's shard identity ("" when unsharded).
func (s *Server) ShardID() string { return s.shardID }

// Epoch returns the epoch of the server's current routing table (0
// when unsharded or no table has been pushed yet).
func (s *Server) Epoch() uint64 {
	if t := s.table.Load(); t != nil {
		return t.Epoch
	}
	return 0
}

// NewServer creates a directory server.
func NewServer(opts ...Option) *Server {
	db := store.NewDB()
	s := &Server{
		clock: clock.System,
		ttl:   DefaultHeartbeatTTL,
		db:    db,
		users: db.MustCreateTable(store.Schema{
			Name: "users",
			Columns: []store.Column{
				{Name: "id", Type: store.String},
				{Name: "addr", Type: store.String},
				{Name: "proxy", Type: store.String},
				{Name: "priority", Type: store.Int},
				{Name: "offline", Type: store.Bool},
				{Name: "lastSeen", Type: store.Time},
			},
			Key: []string{"id"},
		}),
		services: db.MustCreateTable(store.Schema{
			Name: "services",
			Columns: []store.Column{
				{Name: "name", Type: store.String},
				{Name: "owner", Type: store.String},
				{Name: "addr", Type: store.String},
				{Name: "methods", Type: store.String}, // comma-joined
			},
			Key: []string{"name"},
		}),
		members: db.MustCreateTable(store.Schema{
			Name: "members",
			Columns: []store.Column{
				{Name: "group", Type: store.String},
				{Name: "member", Type: store.String},
			},
			Key: []string{"group", "member"},
		}),
		proxies: db.MustCreateTable(store.Schema{
			Name: "proxies",
			Columns: []store.Column{
				{Name: "id", Type: store.String},
				{Name: "addr", Type: store.String},
			},
			Key: []string{"id"},
		}),
		leases: db.MustCreateTable(leaseSchema),
	}
	if err := s.members.CreateIndex("group"); err != nil {
		panic(err)
	}
	if err := s.services.CreateIndex("owner"); err != nil {
		panic(err)
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// --- server-side operations ------------------------------------------------

func (s *Server) registerUser(id, addr string, priority int) error {
	if id == "" || addr == "" {
		return fmt.Errorf("directory: user id and addr are required")
	}
	now := s.clock.Now()
	row := store.Row{
		"id": id, "addr": addr, "proxy": s.pickProxy(),
		"priority": int64(priority), "offline": false, "lastSeen": now,
	}
	if _, ok := s.users.Get(id); ok {
		// Re-registration (device came back): keep proxy binding.
		return s.users.Update(store.Row{
			"addr": addr, "priority": int64(priority),
			"offline": false, "lastSeen": now,
		}, id)
	}
	return s.users.Insert(row)
}

// pickProxy assigns the next registered proxy round-robin ("" when no
// proxies exist). The sorted proxy list is cached — rebuilding it was
// a full Select+sort on every user registration — and invalidated by
// registerProxy.
func (s *Server) pickProxy() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.proxyAddrs == nil {
		rows := s.proxies.Select(nil)
		sort.Slice(rows, func(i, j int) bool { return rows[i]["id"].(string) < rows[j]["id"].(string) })
		s.proxyAddrs = make([]string, len(rows))
		for i, r := range rows {
			s.proxyAddrs[i] = r["addr"].(string)
		}
	}
	if len(s.proxyAddrs) == 0 {
		return ""
	}
	addr := s.proxyAddrs[s.nextProxy%len(s.proxyAddrs)]
	s.nextProxy++
	return addr
}

func (s *Server) lookupUser(id string) (UserInfo, error) {
	r, ok := s.users.Get(id)
	if !ok {
		return UserInfo{}, &wire.RemoteError{Code: wire.CodeNoService, Msg: fmt.Sprintf("unknown user %q", id)}
	}
	return s.userInfo(r), nil
}

func (s *Server) userInfo(r store.Row) UserInfo {
	last := r["lastSeen"].(time.Time)
	online := !r["offline"].(bool) && s.clock.Now().Sub(last) <= s.ttl
	return UserInfo{
		ID:       r["id"].(string),
		Addr:     r["addr"].(string),
		Proxy:    r["proxy"].(string),
		Priority: int(r["priority"].(int64)),
		Online:   online,
		LastSeen: last,
	}
}

func (s *Server) heartbeat(id string) error {
	if _, ok := s.users.Get(id); !ok {
		return &wire.RemoteError{Code: wire.CodeNoService, Msg: fmt.Sprintf("unknown user %q", id)}
	}
	return s.users.Update(store.Row{"lastSeen": s.clock.Now(), "offline": false}, id)
}

func (s *Server) setOffline(id string, offline bool) error {
	r, ok := s.users.Get(id)
	if !ok {
		return &wire.RemoteError{Code: wire.CodeNoService, Msg: fmt.Sprintf("unknown user %q", id)}
	}
	ch := store.Row{"offline": offline}
	if !offline {
		ch["lastSeen"] = s.clock.Now()
	} else if r["proxy"].(string) == "" {
		// A previous Touch released the proxy binding; a deliberate
		// disconnect needs one again for the engine failover path.
		if p := s.pickProxy(); p != "" {
			ch["proxy"] = p
		}
	}
	return s.users.Update(ch, id)
}

// touch is the reconnect handshake. It atomically clears the offline
// flag, refreshes lastSeen, and releases any proxy binding in ONE store
// transaction: a concurrent lookup sees either the proxied-offline
// record or the online-unproxied one, never a half-updated row, so a
// sync session starting right after Touch cannot race a stale proxy
// redirect. The pre-touch info is returned so the device learns which
// proxy (if any) was holding state it still has to drain.
func (s *Server) touch(id string) (UserInfo, error) {
	r, ok := s.users.Get(id)
	if !ok {
		return UserInfo{}, &wire.RemoteError{Code: wire.CodeNoService, Msg: fmt.Sprintf("unknown user %q", id)}
	}
	prev := s.userInfo(r)
	tx := s.db.Begin()
	if err := tx.Update("users", store.Row{
		"offline": false, "lastSeen": s.clock.Now(), "proxy": "",
	}, id); err != nil {
		tx.Rollback()
		return UserInfo{}, err
	}
	if err := tx.Commit(); err != nil {
		return UserInfo{}, err
	}
	return prev, nil
}

func (s *Server) registerService(name, owner, addr string, methods []string) error {
	if name == "" || addr == "" {
		return fmt.Errorf("directory: service name and addr are required")
	}
	joined := ""
	for i, m := range methods {
		if i > 0 {
			joined += ","
		}
		joined += m
	}
	row := store.Row{"name": name, "owner": owner, "addr": addr, "methods": joined}
	if _, ok := s.services.Get(name); ok {
		return s.services.Update(store.Row{"owner": owner, "addr": addr, "methods": joined}, name)
	}
	return s.services.Insert(row)
}

func (s *Server) unregisterService(name string) error {
	if _, ok := s.services.Get(name); !ok {
		return nil // idempotent
	}
	return s.services.Delete(name)
}

func (s *Server) lookupService(name string) (ServiceInfo, error) {
	info, err := s.resolveService(name, true)
	return info, err
}

// resolveService reads a service record without cloning rows. With
// withMethods false it skips decoding the comma-joined method list —
// the route-only read the engine's resolver issues on every uncached
// invocation, so it stays allocation-lean.
func (s *Server) resolveService(name string, withMethods bool) (ServiceInfo, error) {
	var info ServiceInfo
	var methods string
	found := s.services.View(func(r store.Row) {
		info.Name = r["name"].(string)
		info.Owner = r["owner"].(string)
		info.Addr = r["addr"].(string)
		if withMethods {
			methods = r["methods"].(string)
		}
	}, name)
	if !found {
		return ServiceInfo{}, &wire.RemoteError{Code: wire.CodeNoService, Msg: fmt.Sprintf("unknown service %q", name)}
	}
	if methods != "" {
		info.Methods = splitComma(methods)
	}
	// Join the owner's liveness and proxy. Services without a
	// registered owner (infrastructure services) are treated as always
	// online.
	now := s.clock.Now()
	if !s.users.View(func(r store.Row) {
		info.OwnerOnline = !r["offline"].(bool) && now.Sub(r["lastSeen"].(time.Time)) <= s.ttl
		info.Proxy = r["proxy"].(string)
	}, info.Owner) {
		info.OwnerOnline = true
	}
	return info, nil
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}

func (s *Server) createGroup(name string, members []string) error {
	for _, m := range members {
		if err := s.addMember(name, m); err != nil {
			return err
		}
	}
	return nil
}

func (s *Server) addMember(group, member string) error {
	if group == "" || member == "" {
		return fmt.Errorf("directory: group and member are required")
	}
	err := s.members.Insert(store.Row{"group": group, "member": member})
	if err != nil && !errors.Is(err, store.ErrDupKey) { // adding twice is fine
		return err
	}
	return nil
}

func (s *Server) removeMember(group, member string) error {
	err := s.members.Delete(group, member)
	if err != nil && !errors.Is(err, store.ErrNoRow) { // removing absent member is fine
		return err
	}
	return nil
}

func (s *Server) groupMembers(group string) []string {
	rows := s.members.SelectEq("group", group)
	out := make([]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, r["member"].(string))
	}
	sort.Strings(out)
	return out
}

func (s *Server) registerProxy(id, addr string) error {
	if id == "" || addr == "" {
		return fmt.Errorf("directory: proxy id and addr are required")
	}
	var err error
	if _, ok := s.proxies.Get(id); ok {
		err = s.proxies.Update(store.Row{"addr": addr}, id)
	} else {
		err = s.proxies.Insert(store.Row{"id": id, "addr": addr})
	}
	if err == nil {
		s.mu.Lock()
		s.proxyAddrs = nil // invalidate the pickProxy cache
		s.mu.Unlock()
	}
	return err
}

// Snapshot persists the directory's full state (users, services,
// groups, proxies) so a restarted name server can resume with its
// registrations intact — without it every device would have to
// re-register after a directory restart.
func (s *Server) Snapshot(w io.Writer) error {
	return s.db.Snapshot(w)
}

// RestoreServer builds a directory server from a Snapshot.
func RestoreServer(r io.Reader, opts ...Option) (*Server, error) {
	db := store.NewDB()
	if err := db.Restore(r); err != nil {
		return nil, err
	}
	s := &Server{clock: clock.System, ttl: DefaultHeartbeatTTL, db: db}
	var err error
	if s.users, err = db.Table("users"); err != nil {
		return nil, err
	}
	if s.services, err = db.Table("services"); err != nil {
		return nil, err
	}
	if s.members, err = db.Table("members"); err != nil {
		return nil, err
	}
	if s.proxies, err = db.Table("proxies"); err != nil {
		return nil, err
	}
	// Snapshots written before replication existed have no leases
	// table — create it rather than refusing the restore.
	if s.leases, err = db.Table("leases"); err != nil {
		s.leases = db.MustCreateTable(leaseSchema)
	}
	for _, o := range opts {
		o(s)
	}
	return s, nil
}

// --- transport handler -----------------------------------------------------

// Handler returns the transport.Handler that dispatches directory RPCs.
func (s *Server) Handler() transport.Handler {
	return transport.HandlerFunc(s.handle)
}

// routingKey returns the shard-ownership key for one directory op
// ("" for ops that are fanned out across shards by the client and
// therefore never wrong-shard: ListUsers, ServicesOf, RegisterProxy,
// ResolveBatch).
func routingKey(method string, a wire.Args) string {
	switch method {
	case "RegisterUser", "LookupUser", "Heartbeat", "SetOffline", "Touch":
		return a.String("id")
	case "RegisterService", "UnregisterService", "LookupService", "ResolveService":
		return ShardKey(a.String("name"))
	case "CreateGroup", "AddMember", "RemoveMember", "GroupMembers":
		return a.String("group")
	case "RenewLease", "GetLease", "Repoint":
		return a.String("id") // co-located with the user record; ListLeases fans out
	}
	return ""
}

// stampEpoch attaches the shard map epoch to a response. Every reply
// from a sharded directory — success, error, or wrong-shard redirect —
// carries it, so clients learn about epoch advances on whatever RPC
// they happen to make next.
func stampEpoch(resp *transport.Response, epoch uint64) *transport.Response {
	if resp.Meta == nil {
		resp.Meta = make(wire.Metadata, 1)
	}
	resp.Meta[MetaEpoch] = strconv.FormatUint(epoch, 10)
	return resp
}

func (s *Server) handle(ctx context.Context, req *transport.Request) *transport.Response {
	tab := s.table.Load()
	if s.shardID == "" || tab == nil {
		return s.dispatch(ctx, req) // unsharded: byte-identical to the pre-shard directory
	}
	if key := routingKey(req.Method, req.Args); key != "" && !tab.Owns(s.shardID, key) {
		return stampEpoch(transport.ErrorResponse(req, wire.CodeWrongShard,
			"directory: key %q belongs to shard %s, not %s (epoch %d)",
			key, tab.Owner(key).ID, s.shardID, tab.Epoch), tab.Epoch)
	}
	return stampEpoch(s.dispatch(ctx, req), tab.Epoch)
}

func (s *Server) dispatch(ctx context.Context, req *transport.Request) *transport.Response {
	ok := func(v any) *transport.Response {
		raw, err := wire.Marshal(v)
		if err != nil {
			return transport.ErrorResponse(req, wire.CodeInternal, "encode: %v", err)
		}
		return &transport.Response{ID: req.ID, OK: true, Result: raw}
	}
	fail := func(err error) *transport.Response {
		return transport.ErrorResponse(req, wire.CodeOf(err), "%v", err)
	}

	a := req.Args
	switch req.Method {
	case "RegisterUser":
		if err := s.registerUser(a.String("id"), a.String("addr"), a.Int("priority")); err != nil {
			return fail(err)
		}
		return ok(true)
	case "LookupUser":
		info, err := s.lookupUser(a.String("id"))
		if err != nil {
			return fail(err)
		}
		return ok(info)
	case "ListUsers":
		rows := s.users.Select(nil)
		infos := make([]UserInfo, 0, len(rows))
		for _, r := range rows {
			infos = append(infos, s.userInfo(r))
		}
		sort.Slice(infos, func(i, j int) bool { return infos[i].ID < infos[j].ID })
		return ok(infos)
	case "Heartbeat":
		if err := s.heartbeat(a.String("id")); err != nil {
			return fail(err)
		}
		return ok(true)
	case "SetOffline":
		if err := s.setOffline(a.String("id"), a.Bool("offline")); err != nil {
			return fail(err)
		}
		return ok(true)
	case "Touch":
		info, err := s.touch(a.String("id"))
		if err != nil {
			return fail(err)
		}
		return ok(info)
	case "RegisterService":
		if err := s.registerService(a.String("name"), a.String("owner"), a.String("addr"), a.Strings("methods")); err != nil {
			return fail(err)
		}
		return ok(true)
	case "UnregisterService":
		if err := s.unregisterService(a.String("name")); err != nil {
			return fail(err)
		}
		return ok(true)
	case "LookupService":
		info, err := s.lookupService(a.String("name"))
		if err != nil {
			return fail(err)
		}
		return ok(info)
	case "ResolveService":
		info, err := s.resolveService(a.String("name"), false)
		if err != nil {
			return fail(err)
		}
		return ok(info)
	case "ResolveBatch":
		// Route-only resolution for many services in one round trip —
		// the engine's group fan-out resolves all of a shard's members
		// with a single RPC. Unknown names are skipped (the per-member
		// invocation surfaces the error); names this shard does not own
		// are skipped too, so a client with a stale table degrades to
		// per-member resolution instead of failing the whole batch.
		names := a.Strings("names")
		infos := make([]ServiceInfo, 0, len(names))
		tab := s.table.Load()
		for _, name := range names {
			if tab != nil && s.shardID != "" && !tab.Owns(s.shardID, ShardKey(name)) {
				continue
			}
			info, err := s.resolveService(name, false)
			if err != nil {
				continue
			}
			infos = append(infos, info)
		}
		return ok(infos)
	case "ServicesOf":
		rows := s.services.SelectEq("owner", a.String("owner"))
		names := make([]string, 0, len(rows))
		for _, r := range rows {
			names = append(names, r["name"].(string))
		}
		sort.Strings(names)
		return ok(names)
	case "CreateGroup":
		if err := s.createGroup(a.String("group"), a.Strings("members")); err != nil {
			return fail(err)
		}
		return ok(true)
	case "AddMember":
		if err := s.addMember(a.String("group"), a.String("member")); err != nil {
			return fail(err)
		}
		return ok(true)
	case "RemoveMember":
		if err := s.removeMember(a.String("group"), a.String("member")); err != nil {
			return fail(err)
		}
		return ok(true)
	case "GroupMembers":
		return ok(s.groupMembers(a.String("group")))
	case "RegisterProxy":
		if err := s.registerProxy(a.String("id"), a.String("addr")); err != nil {
			return fail(err)
		}
		return ok(true)
	case "RenewLease":
		info, err := s.renewLease(a.String("id"), a.String("holder"), time.Duration(a.Int64("ttl")), a.Strings("replicas"))
		if err != nil {
			return fail(err)
		}
		return ok(info)
	case "GetLease":
		info, err := s.getLease(a.String("id"))
		if err != nil {
			return fail(err)
		}
		return ok(info)
	case "ListLeases":
		return ok(s.listLeases())
	case "Repoint":
		if err := s.repoint(a.String("id"), a.String("addr")); err != nil {
			return fail(err)
		}
		return ok(true)
	default:
		return transport.ErrorResponse(req, wire.CodeNoMethod, "directory has no method %q", req.Method)
	}
}
