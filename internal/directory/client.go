package directory

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Client is the typed stub every SyD node uses to talk to the
// directory. It caches service lookups briefly to keep the directory
// from becoming a hot spot (the prototype consulted the directory "on
// the fly"; a small TTL cache preserves that semantic while letting
// group operations scale).
type Client struct {
	net  transport.Network
	addr string

	cacheTTL time.Duration
	mu       sync.Mutex
	cache    map[string]cachedService
	nowFn    func() time.Time
}

type cachedService struct {
	info ServiceInfo
	// full records whether info includes the method list (LookupService
	// result). Route-only entries (ResolveService results) satisfy
	// ResolveService but never LookupService, so a full lookup is never
	// answered with a methods-less record.
	full    bool
	expires time.Time
}

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithCacheTTL sets the service-lookup cache TTL (0 disables caching).
func WithCacheTTL(d time.Duration) ClientOption {
	return func(c *Client) { c.cacheTTL = d }
}

// NewClient creates a directory client for the directory at addr.
func NewClient(net transport.Network, addr string, opts ...ClientOption) *Client {
	c := &Client{
		net:      net,
		addr:     addr,
		cacheTTL: 0,
		cache:    make(map[string]cachedService),
		nowFn:    time.Now,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Addr returns the directory's network address.
func (c *Client) Addr() string { return c.addr }

func (c *Client) call(ctx context.Context, method string, args wire.Args, out any) error {
	resp, err := c.net.Call(ctx, c.addr, &transport.Request{
		Service: ServiceName,
		Method:  method,
		Args:    args,
	})
	if err != nil {
		return fmt.Errorf("directory %s: %w", method, err)
	}
	if !resp.OK {
		return &wire.RemoteError{Code: resp.Code, Service: ServiceName, Method: method, Msg: resp.Error}
	}
	if out != nil {
		return wire.Unmarshal(resp.Result, out)
	}
	return nil
}

// RegisterUser publishes a user/device with its network address and
// priority.
func (c *Client) RegisterUser(ctx context.Context, id, addr string, priority int) error {
	return c.call(ctx, "RegisterUser", wire.Args{"id": id, "addr": addr, "priority": priority}, nil)
}

// LookupUser fetches a user record.
func (c *Client) LookupUser(ctx context.Context, id string) (UserInfo, error) {
	var info UserInfo
	err := c.call(ctx, "LookupUser", wire.Args{"id": id}, &info)
	return info, err
}

// ListUsers returns every registered user.
func (c *Client) ListUsers(ctx context.Context) ([]UserInfo, error) {
	var infos []UserInfo
	err := c.call(ctx, "ListUsers", wire.Args{}, &infos)
	return infos, err
}

// Heartbeat refreshes the caller's liveness.
func (c *Client) Heartbeat(ctx context.Context, id string) error {
	return c.call(ctx, "Heartbeat", wire.Args{"id": id}, nil)
}

// SetOffline marks a user deliberately offline (true) or back online.
func (c *Client) SetOffline(ctx context.Context, id string, offline bool) error {
	return c.call(ctx, "SetOffline", wire.Args{"id": id, "offline": offline}, nil)
}

// RegisterService publishes a service (SyD device object) under the
// owner's identity.
func (c *Client) RegisterService(ctx context.Context, name, owner, addr string, methods []string) error {
	return c.call(ctx, "RegisterService", wire.Args{
		"name": name, "owner": owner, "addr": addr, "methods": methods,
	}, nil)
}

// UnregisterService removes a published service.
func (c *Client) UnregisterService(ctx context.Context, name string) error {
	c.invalidate(name)
	return c.call(ctx, "UnregisterService", wire.Args{"name": name}, nil)
}

// LookupService resolves a service name to its location and the
// owner's liveness/proxy, consulting the local cache first.
func (c *Client) LookupService(ctx context.Context, name string) (ServiceInfo, error) {
	return c.lookup(ctx, "LookupService", name, true)
}

// ResolveService is LookupService minus the method list: the
// route-only resolution the engine performs before every uncached
// invocation. The server skips decoding the methods column and the
// response omits it, keeping the per-call lookup lean on both sides.
func (c *Client) ResolveService(ctx context.Context, name string) (ServiceInfo, error) {
	return c.lookup(ctx, "ResolveService", name, false)
}

func (c *Client) lookup(ctx context.Context, method, name string, full bool) (ServiceInfo, error) {
	if c.cacheTTL > 0 {
		c.mu.Lock()
		// A full (methods-bearing) entry satisfies either request; a
		// route-only entry satisfies only route-only requests.
		if e, ok := c.cache[name]; ok && (e.full || !full) && c.nowFn().Before(e.expires) {
			c.mu.Unlock()
			trace.EventCtx(ctx, "dir.cache", trace.String("service", name), trace.Bool("hit", true))
			return e.info, nil
		}
		c.mu.Unlock()
	}
	ctx, span := trace.Start(ctx, "dir.lookup")
	if span != nil {
		span.Annotate(trace.String("service", name), trace.Bool("hit", false))
	}
	var info ServiceInfo
	err := c.call(ctx, method, wire.Args{"name": name}, &info)
	span.FinishErr(err)
	if err != nil {
		return ServiceInfo{}, err
	}
	if c.cacheTTL > 0 {
		c.mu.Lock()
		c.cache[name] = cachedService{info: info, full: full, expires: c.nowFn().Add(c.cacheTTL)}
		c.mu.Unlock()
	}
	return info, nil
}

// invalidate drops a cached service entry.
func (c *Client) invalidate(name string) {
	c.mu.Lock()
	delete(c.cache, name)
	c.mu.Unlock()
}

// Invalidate drops a cached service entry; the engine calls this after
// a failed invocation so the next lookup is fresh.
func (c *Client) Invalidate(name string) { c.invalidate(name) }

// ServicesOf lists service names owned by owner.
func (c *Client) ServicesOf(ctx context.Context, owner string) ([]string, error) {
	var names []string
	err := c.call(ctx, "ServicesOf", wire.Args{"owner": owner}, &names)
	return names, err
}

// CreateGroup creates (or extends) a named group with members.
func (c *Client) CreateGroup(ctx context.Context, group string, members []string) error {
	return c.call(ctx, "CreateGroup", wire.Args{"group": group, "members": members}, nil)
}

// AddMember adds one member to a group (idempotent).
func (c *Client) AddMember(ctx context.Context, group, member string) error {
	return c.call(ctx, "AddMember", wire.Args{"group": group, "member": member}, nil)
}

// RemoveMember removes one member from a group (idempotent).
func (c *Client) RemoveMember(ctx context.Context, group, member string) error {
	return c.call(ctx, "RemoveMember", wire.Args{"group": group, "member": member}, nil)
}

// GroupMembers lists a group's members, sorted.
func (c *Client) GroupMembers(ctx context.Context, group string) ([]string, error) {
	var members []string
	err := c.call(ctx, "GroupMembers", wire.Args{"group": group}, &members)
	return members, err
}

// RegisterProxy publishes a proxy endpoint that the directory may
// assign to users.
func (c *Client) RegisterProxy(ctx context.Context, id, addr string) error {
	return c.call(ctx, "RegisterProxy", wire.Args{"id": id, "addr": addr}, nil)
}
