package directory

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/controlplane"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Client is the typed stub every SyD node uses to talk to the
// directory. It caches service lookups briefly to keep the directory
// from becoming a hot spot (the prototype consulted the directory "on
// the fly"; a small TTL cache preserves that semantic while letting
// group operations scale).
//
// A Client talks either to a single directory server (NewClient) or
// to a sharded directory behind a control plane (NewShardedClient).
// In sharded mode the client pulls the epoch-versioned routing table
// once, routes every op to the shard owning the op's key, and watches
// the epoch stamped on every response: a newer epoch means the table
// is stale — the client refreshes it, drops its lookup cache, and
// notifies OnEpochChange hooks immediately instead of waiting out a
// TTL. An op that still lands on the wrong shard (the table changed
// between pull and call) is redirected by the shard's CodeWrongShard
// reply and retried once against the refreshed table.
type Client struct {
	net    transport.Network
	addr   string               // single directory server ("" in sharded mode)
	cp     *controlplane.Client // control plane (nil in single-server mode)
	caller string               // stamped on requests when set (WithCallerID)

	cacheTTL time.Duration
	mu       sync.Mutex
	cache    map[string]cachedService
	inflight map[string]*flight
	nowFn    func() time.Time

	tableMu sync.RWMutex
	table   *controlplane.Table
	hooks   []func(uint64)
}

type cachedService struct {
	info ServiceInfo
	// full records whether info includes the method list (LookupService
	// result). Route-only entries (ResolveService results) satisfy
	// ResolveService but never LookupService, so a full lookup is never
	// answered with a methods-less record.
	full    bool
	expires time.Time
}

// flight is one in-progress lookup that concurrent cold-cache misses
// for the same name piggyback on instead of stampeding the directory.
type flight struct {
	done chan struct{}
	info ServiceInfo
	err  error
}

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithCacheTTL sets the service-lookup cache TTL (0 disables caching).
func WithCacheTTL(d time.Duration) ClientOption {
	return func(c *Client) { c.cacheTTL = d }
}

// WithCallerID stamps user as the caller on every directory request.
// The simulated network keys partitions by (caller, destination), so a
// node that identifies itself lets tests cut one device off from the
// directory — the scenario disconnected operation is built around.
func WithCallerID(user string) ClientOption {
	return func(c *Client) { c.caller = user }
}

// NewClient creates a directory client for the single directory
// server at addr.
func NewClient(net transport.Network, addr string, opts ...ClientOption) *Client {
	c := &Client{
		net:      net,
		addr:     addr,
		cacheTTL: 0,
		cache:    make(map[string]cachedService),
		inflight: make(map[string]*flight),
		nowFn:    time.Now,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// NewShardedClient creates a directory client that routes through the
// sharded directory published by the control plane at cpAddr.
func NewShardedClient(net transport.Network, cpAddr string, opts ...ClientOption) *Client {
	c := NewClient(net, "", opts...)
	c.cp = controlplane.NewClient(net, cpAddr)
	return c
}

// Addr returns the directory's network address (the control plane's
// address in sharded mode).
func (c *Client) Addr() string {
	if c.cp != nil {
		return c.cp.Addr()
	}
	return c.addr
}

// Sharded reports whether the client routes through a control plane.
func (c *Client) Sharded() bool { return c.cp != nil }

// Epoch returns the epoch of the client's current routing table (0
// in single-server mode or before the first table pull).
func (c *Client) Epoch() uint64 {
	c.tableMu.RLock()
	defer c.tableMu.RUnlock()
	if c.table == nil {
		return 0
	}
	return c.table.Epoch
}

// OnEpochChange registers fn to run whenever the client observes a
// newer shard-map epoch (after the table refresh and lookup-cache
// flush). The engine wires its route cache here so a bump invalidates
// warm routes across the whole node at once.
func (c *Client) OnEpochChange(fn func(epoch uint64)) {
	c.tableMu.Lock()
	c.hooks = append(c.hooks, fn)
	c.tableMu.Unlock()
}

// --- routing ---------------------------------------------------------------

// routingTable returns the cached table, pulling it from the control
// plane on first use.
func (c *Client) routingTable(ctx context.Context) (*controlplane.Table, error) {
	c.tableMu.RLock()
	t := c.table
	c.tableMu.RUnlock()
	if t != nil {
		return t, nil
	}
	return c.refreshTable(ctx)
}

// refreshTable pulls the current table from the control plane and
// installs it if newer than what the client holds.
func (c *Client) refreshTable(ctx context.Context) (*controlplane.Table, error) {
	t, err := c.cp.ShardMap(ctx)
	if err != nil {
		return nil, err
	}
	return c.installTable(t), nil
}

// installTable swaps the routing table in if t is newer, flushing the
// lookup cache and firing epoch hooks on an epoch advance. Returns
// the table the client holds afterwards.
func (c *Client) installTable(t *controlplane.Table) *controlplane.Table {
	c.tableMu.Lock()
	if c.table != nil && t.Epoch <= c.table.Epoch {
		t = c.table
		c.tableMu.Unlock()
		return t
	}
	c.table = t
	hooks := append([]func(uint64){}, c.hooks...)
	c.tableMu.Unlock()
	// Epoch advanced: routes resolved under the old table are suspect.
	c.mu.Lock()
	c.cache = make(map[string]cachedService)
	c.mu.Unlock()
	for _, fn := range hooks {
		fn(t.Epoch)
	}
	return t
}

// observeEpoch reacts to the epoch a shard stamped on a response: a
// newer epoch than the client's table triggers an immediate refresh.
func (c *Client) observeEpoch(ctx context.Context, epoch uint64) {
	c.tableMu.RLock()
	cur := c.table
	c.tableMu.RUnlock()
	if cur == nil || epoch <= cur.Epoch {
		return
	}
	_, _ = c.refreshTable(ctx)
}

// callAddr performs one directory RPC against an explicit server
// address, harvesting the response's epoch stamp in sharded mode.
func (c *Client) callAddr(ctx context.Context, addr, method string, args wire.Args, out any) error {
	resp, err := c.net.Call(ctx, addr, &transport.Request{
		Service: ServiceName,
		Method:  method,
		Caller:  c.caller,
		Args:    args,
	})
	if err != nil {
		return fmt.Errorf("directory %s: %w", method, err)
	}
	if c.cp != nil {
		if es := resp.Meta.Get(MetaEpoch); es != "" {
			if e, perr := strconv.ParseUint(es, 10, 64); perr == nil {
				c.observeEpoch(ctx, e)
			}
		}
	}
	if !resp.OK {
		return &wire.RemoteError{Code: resp.Code, Service: ServiceName, Method: method, Msg: resp.Error}
	}
	if out != nil {
		return wire.Unmarshal(resp.Result, out)
	}
	return nil
}

// call routes one keyed directory op: straight to the single server,
// or to the shard owning key, with one retry against a refreshed
// table when the shard answers wrong-shard.
func (c *Client) call(ctx context.Context, key, method string, args wire.Args, out any) error {
	if c.cp == nil {
		return c.callAddr(ctx, c.addr, method, args, out)
	}
	tab, err := c.routingTable(ctx)
	if err != nil {
		return fmt.Errorf("directory %s: shard map: %w", method, err)
	}
	err = c.callAddr(ctx, tab.Owner(key).Addr, method, args, out)
	if wire.CodeOf(err) != wire.CodeWrongShard {
		return err
	}
	// The shard redirected us: observeEpoch already refreshed the
	// table (the redirect carries the shard's epoch), but refresh
	// explicitly in case the pull raced, then retry exactly once.
	tab2, rerr := c.refreshTable(ctx)
	if rerr != nil {
		return err
	}
	return c.callAddr(ctx, tab2.Owner(key).Addr, method, args, out)
}

// fanout runs one RPC per shard (just the one server in single-server
// mode) and hands each response to collect.
func (c *Client) fanout(ctx context.Context, method string, args wire.Args, collect func(addr string) error) error {
	if c.cp == nil {
		return collect(c.addr)
	}
	tab, err := c.routingTable(ctx)
	if err != nil {
		return fmt.Errorf("directory %s: shard map: %w", method, err)
	}
	for _, addr := range tab.Addrs() {
		if err := collect(addr); err != nil {
			return err
		}
	}
	return nil
}

// --- user ops --------------------------------------------------------------

// RegisterUser publishes a user/device with its network address and
// priority.
func (c *Client) RegisterUser(ctx context.Context, id, addr string, priority int) error {
	return c.call(ctx, id, "RegisterUser", wire.Args{"id": id, "addr": addr, "priority": priority}, nil)
}

// LookupUser fetches a user record.
func (c *Client) LookupUser(ctx context.Context, id string) (UserInfo, error) {
	var info UserInfo
	err := c.call(ctx, id, "LookupUser", wire.Args{"id": id}, &info)
	return info, err
}

// ListUsers returns every registered user (merged across shards).
func (c *Client) ListUsers(ctx context.Context) ([]UserInfo, error) {
	var infos []UserInfo
	err := c.fanout(ctx, "ListUsers", wire.Args{}, func(addr string) error {
		var part []UserInfo
		if err := c.callAddr(ctx, addr, "ListUsers", wire.Args{}, &part); err != nil {
			return err
		}
		infos = append(infos, part...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].ID < infos[j].ID })
	return infos, nil
}

// Heartbeat refreshes the caller's liveness.
func (c *Client) Heartbeat(ctx context.Context, id string) error {
	return c.call(ctx, id, "Heartbeat", wire.Args{"id": id}, nil)
}

// SetOffline marks a user deliberately offline (true) or back online.
func (c *Client) SetOffline(ctx context.Context, id string, offline bool) error {
	return c.call(ctx, id, "SetOffline", wire.Args{"id": id, "offline": offline}, nil)
}

// Touch is the reconnect handshake: in one directory transaction it
// clears the user's offline flag, refreshes lastSeen, and releases any
// proxy binding, returning the *pre-touch* record so the caller knows
// which proxy was covering for it. On a sharded directory the call
// routes to the shard owning the user and follows wrong-shard
// redirects, so it works immediately after an epoch bump.
func (c *Client) Touch(ctx context.Context, id string) (UserInfo, error) {
	var info UserInfo
	err := c.call(ctx, id, "Touch", wire.Args{"id": id}, &info)
	return info, err
}

// --- service ops -----------------------------------------------------------

// RegisterService publishes a service (SyD device object) under the
// owner's identity.
func (c *Client) RegisterService(ctx context.Context, name, owner, addr string, methods []string) error {
	return c.call(ctx, ShardKey(name), "RegisterService", wire.Args{
		"name": name, "owner": owner, "addr": addr, "methods": methods,
	}, nil)
}

// UnregisterService removes a published service.
func (c *Client) UnregisterService(ctx context.Context, name string) error {
	c.invalidate(name)
	return c.call(ctx, ShardKey(name), "UnregisterService", wire.Args{"name": name}, nil)
}

// LookupService resolves a service name to its location and the
// owner's liveness/proxy, consulting the local cache first.
func (c *Client) LookupService(ctx context.Context, name string) (ServiceInfo, error) {
	return c.lookup(ctx, "LookupService", name, true)
}

// ResolveService is LookupService minus the method list: the
// route-only resolution the engine performs before every uncached
// invocation. The server skips decoding the methods column and the
// response omits it, keeping the per-call lookup lean on both sides.
func (c *Client) ResolveService(ctx context.Context, name string) (ServiceInfo, error) {
	return c.lookup(ctx, "ResolveService", name, false)
}

func (c *Client) lookup(ctx context.Context, method, name string, full bool) (ServiceInfo, error) {
	if c.cacheTTL == 0 {
		return c.lookupRemote(ctx, method, name)
	}
	fkey := name
	if full {
		fkey = name + "\x00full"
	}
	for {
		c.mu.Lock()
		// A full (methods-bearing) entry satisfies either request; a
		// route-only entry satisfies only route-only requests.
		if e, ok := c.cache[name]; ok && (e.full || !full) && c.nowFn().Before(e.expires) {
			c.mu.Unlock()
			trace.EventCtx(ctx, "dir.cache", trace.String("service", name), trace.Bool("hit", true))
			return e.info, nil
		}
		if f, ok := c.inflight[fkey]; ok {
			// Another goroutine is already asking the directory for this
			// name: wait for its answer instead of stampeding.
			c.mu.Unlock()
			select {
			case <-f.done:
				return f.info, f.err
			case <-ctx.Done():
				return ServiceInfo{}, ctx.Err()
			}
		}
		f := &flight{done: make(chan struct{})}
		c.inflight[fkey] = f
		c.mu.Unlock()

		info, err := c.lookupRemote(ctx, method, name)
		f.info, f.err = info, err
		c.mu.Lock()
		delete(c.inflight, fkey)
		if err == nil {
			c.cache[name] = cachedService{info: info, full: full, expires: c.nowFn().Add(c.cacheTTL)}
		}
		c.mu.Unlock()
		close(f.done)
		return info, err
	}
}

// lookupRemote performs the actual directory lookup RPC.
func (c *Client) lookupRemote(ctx context.Context, method, name string) (ServiceInfo, error) {
	ctx, span := trace.Start(ctx, "dir.lookup")
	if span != nil {
		span.Annotate(trace.String("service", name), trace.Bool("hit", false))
	}
	var info ServiceInfo
	err := c.call(ctx, ShardKey(name), method, wire.Args{"name": name}, &info)
	span.FinishErr(err)
	if err != nil {
		return ServiceInfo{}, err
	}
	return info, nil
}

// ResolveBatch route-resolves many services in one pass: names are
// grouped by owning shard and each shard answers its whole group in a
// single RPC (one RPC total in single-server mode). Unknown names are
// simply absent from the result — callers fall back to per-name
// resolution, which surfaces the error. Successful routes fill the
// client's lookup cache.
func (c *Client) ResolveBatch(ctx context.Context, names []string) (map[string]ServiceInfo, error) {
	if len(names) == 0 {
		return nil, nil
	}
	groups := make(map[string][]string, 1) // shard addr -> names
	if c.cp == nil {
		groups[c.addr] = names
	} else {
		tab, err := c.routingTable(ctx)
		if err != nil {
			return nil, fmt.Errorf("directory ResolveBatch: shard map: %w", err)
		}
		for _, n := range names {
			a := tab.Owner(ShardKey(n)).Addr
			groups[a] = append(groups[a], n)
		}
	}
	out := make(map[string]ServiceInfo, len(names))
	var outMu sync.Mutex
	var firstErr error
	var wg sync.WaitGroup
	for addr, group := range groups {
		wg.Add(1)
		go func(addr string, group []string) {
			defer wg.Done()
			var infos []ServiceInfo
			err := c.callAddr(ctx, addr, "ResolveBatch", wire.Args{"names": group}, &infos)
			outMu.Lock()
			defer outMu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			for _, info := range infos {
				out[info.Name] = info
			}
		}(addr, group)
	}
	wg.Wait()
	if c.cacheTTL > 0 && len(out) > 0 {
		c.mu.Lock()
		exp := c.nowFn().Add(c.cacheTTL)
		for name, info := range out {
			c.cache[name] = cachedService{info: info, full: false, expires: exp}
		}
		c.mu.Unlock()
	}
	return out, firstErr
}

// invalidate drops a cached service entry.
func (c *Client) invalidate(name string) {
	c.mu.Lock()
	delete(c.cache, name)
	c.mu.Unlock()
}

// Invalidate drops a cached service entry; the engine calls this after
// a failed invocation so the next lookup is fresh.
func (c *Client) Invalidate(name string) { c.invalidate(name) }

// ServicesOf lists service names owned by owner (merged across
// shards: a service co-locates with the user its name points at,
// which is usually but not necessarily the registered owner).
func (c *Client) ServicesOf(ctx context.Context, owner string) ([]string, error) {
	var names []string
	err := c.fanout(ctx, "ServicesOf", wire.Args{"owner": owner}, func(addr string) error {
		var part []string
		if err := c.callAddr(ctx, addr, "ServicesOf", wire.Args{"owner": owner}, &part); err != nil {
			return err
		}
		names = append(names, part...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	return names, nil
}

// --- group ops -------------------------------------------------------------

// CreateGroup creates (or extends) a named group with members. The
// group lives on the shard owning the group name; members may be
// users on any shard.
func (c *Client) CreateGroup(ctx context.Context, group string, members []string) error {
	return c.call(ctx, group, "CreateGroup", wire.Args{"group": group, "members": members}, nil)
}

// AddMember adds one member to a group (idempotent).
func (c *Client) AddMember(ctx context.Context, group, member string) error {
	return c.call(ctx, group, "AddMember", wire.Args{"group": group, "member": member}, nil)
}

// RemoveMember removes one member from a group (idempotent).
func (c *Client) RemoveMember(ctx context.Context, group, member string) error {
	return c.call(ctx, group, "RemoveMember", wire.Args{"group": group, "member": member}, nil)
}

// GroupMembers lists a group's members, sorted.
func (c *Client) GroupMembers(ctx context.Context, group string) ([]string, error) {
	var members []string
	err := c.call(ctx, group, "GroupMembers", wire.Args{"group": group}, &members)
	return members, err
}

// RegisterProxy publishes a proxy endpoint that the directory may
// assign to users. Every shard learns the proxy, so each shard's
// round-robin assignment draws from the full proxy pool.
func (c *Client) RegisterProxy(ctx context.Context, id, addr string) error {
	return c.fanout(ctx, "RegisterProxy", wire.Args{"id": id, "addr": addr}, func(shardAddr string) error {
		return c.callAddr(ctx, shardAddr, "RegisterProxy", wire.Args{"id": id, "addr": addr}, nil)
	})
}

// --- lease ops -------------------------------------------------------------

// RenewLease acquires or renews the replication lease on user for
// holder, reporting the follower addresses a promoter should consult.
// A nil replicas leaves the stored candidate set unchanged. Fails with
// CodeConflict while another holder's lease is live — the caller must
// stop acting as primary immediately.
func (c *Client) RenewLease(ctx context.Context, user, holder string, ttl time.Duration, replicas []string) (LeaseInfo, error) {
	var info LeaseInfo
	args := wire.Args{"id": user, "holder": holder, "ttl": int64(ttl)}
	if replicas != nil {
		args["replicas"] = replicas
	}
	err := c.call(ctx, user, "RenewLease", args, &info)
	return info, err
}

// GetLease reads the replication lease on user. CodeNoService when
// the user is not replicated.
func (c *Client) GetLease(ctx context.Context, user string) (LeaseInfo, error) {
	var info LeaseInfo
	err := c.call(ctx, user, "GetLease", wire.Args{"id": user}, &info)
	return info, err
}

// ListLeases returns every replication lease (merged across shards) —
// the health sweeper's work list.
func (c *Client) ListLeases(ctx context.Context) ([]LeaseInfo, error) {
	var infos []LeaseInfo
	err := c.fanout(ctx, "ListLeases", wire.Args{}, func(addr string) error {
		var part []LeaseInfo
		if err := c.callAddr(ctx, addr, "ListLeases", wire.Args{}, &part); err != nil {
			return err
		}
		infos = append(infos, part...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].User < infos[j].User })
	return infos, nil
}

// Repoint rebinds a promoted node in one RPC: the user record and
// every service it owns flip to addr, so clients resolve the new
// primary as soon as their caches invalidate (epoch bump) instead of
// waiting out directory TTLs.
func (c *Client) Repoint(ctx context.Context, user, addr string) error {
	return c.call(ctx, user, "Repoint", wire.Args{"id": user, "addr": addr}, nil)
}
