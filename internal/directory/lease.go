package directory

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/store"
	"repro/internal/wire"
)

// Replication leases. The directory is the single lease arbiter: a
// primary for user <id> holds the lease by renewing it before it
// expires, and a follower may only promote itself by acquiring the
// expired lease here. Expiry is computed on the directory's clock —
// holders never compare their own clocks against the deadline, they
// only learn "you still hold it" (renewal succeeds) or "someone else
// does" (CodeConflict), which removes clock skew from the safety
// argument.

// leaseSchema is the replication-lease table. Keyed by the replicated
// user id so ShardKey co-locates a lease with the user record it
// protects.
var leaseSchema = store.Schema{
	Name: "leases",
	Columns: []store.Column{
		{Name: "id", Type: store.String},
		{Name: "holder", Type: store.String},
		{Name: "deadline", Type: store.Time},
		{Name: "replicas", Type: store.String}, // comma-joined
	},
	Key: []string{"id"},
}

// LeaseInfo is the directory record for one replication lease.
type LeaseInfo struct {
	// User is the replicated identity the lease protects.
	User string `json:"user"`
	// Holder identifies the node currently allowed to act as primary.
	Holder string `json:"holder"`
	// Deadline is when the lease expires on the directory's clock.
	Deadline time.Time `json:"deadline"`
	// Replicas lists the follower addresses the holder last reported —
	// the candidate set for promotion when the lease expires.
	Replicas []string `json:"replicas,omitempty"`
	// Expired is computed server-side at read time.
	Expired bool `json:"expired"`
}

// renewLease acquires or renews the lease on id for holder. It fails
// with CodeConflict while a different holder's lease is still live;
// an expired lease is taken over (leaseMu makes the check-and-set
// indivisible when two followers race to promote). replicas, when
// non-nil, replaces the stored candidate set.
func (s *Server) renewLease(id, holder string, ttl time.Duration, replicas []string) (LeaseInfo, error) {
	if id == "" || holder == "" {
		return LeaseInfo{}, fmt.Errorf("directory: lease id and holder are required")
	}
	if ttl <= 0 {
		return LeaseInfo{}, fmt.Errorf("directory: lease ttl must be positive")
	}
	s.leaseMu.Lock()
	defer s.leaseMu.Unlock()
	now := s.clock.Now()
	deadline := now.Add(ttl)
	if r, ok := s.leases.Get(id); ok {
		if cur := r["holder"].(string); cur != holder && r["deadline"].(time.Time).After(now) {
			return LeaseInfo{}, &wire.RemoteError{
				Code: wire.CodeConflict,
				Msg: fmt.Sprintf("directory: lease on %q held by %q until %s",
					id, cur, r["deadline"].(time.Time).Format(time.RFC3339)),
			}
		}
		ch := store.Row{"holder": holder, "deadline": deadline}
		if replicas != nil {
			ch["replicas"] = strings.Join(replicas, ",")
		}
		if err := s.leases.Update(ch, id); err != nil {
			return LeaseInfo{}, err
		}
	} else {
		row := store.Row{"id": id, "holder": holder, "deadline": deadline, "replicas": strings.Join(replicas, ",")}
		if err := s.leases.Insert(row); err != nil {
			return LeaseInfo{}, err
		}
	}
	return LeaseInfo{User: id, Holder: holder, Deadline: deadline, Replicas: replicas}, nil
}

// getLease reads the lease on id. CodeNoService when no lease exists.
func (s *Server) getLease(id string) (LeaseInfo, error) {
	r, ok := s.leases.Get(id)
	if !ok {
		return LeaseInfo{}, &wire.RemoteError{Code: wire.CodeNoService, Msg: fmt.Sprintf("no lease on %q", id)}
	}
	return leaseInfo(r, s.clock.Now()), nil
}

// listLeases returns every lease this server (shard) holds.
func (s *Server) listLeases() []LeaseInfo {
	now := s.clock.Now()
	rows := s.leases.Select(nil)
	out := make([]LeaseInfo, 0, len(rows))
	for _, r := range rows {
		out = append(out, leaseInfo(r, now))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].User < out[j].User })
	return out
}

func leaseInfo(r store.Row, now time.Time) LeaseInfo {
	var replicas []string
	if joined := r["replicas"].(string); joined != "" {
		replicas = strings.Split(joined, ",")
	}
	deadline := r["deadline"].(time.Time)
	return LeaseInfo{
		User:     r["id"].(string),
		Holder:   r["holder"].(string),
		Deadline: deadline,
		Replicas: replicas,
		Expired:  !deadline.After(now),
	}
}

// repoint rebinds a promoted node in one RPC: the user record's
// address flips to the new node (keeping its proxy binding, exactly
// like re-registration) and every service the user owns follows.
// ShardKey co-locates a user with its services, so one shard-local
// call re-points everything a client can resolve — no waiting for
// directory cache TTLs beyond the epoch bump.
func (s *Server) repoint(id, addr string) error {
	if id == "" || addr == "" {
		return fmt.Errorf("directory: repoint id and addr are required")
	}
	if _, ok := s.users.Get(id); !ok {
		return &wire.RemoteError{Code: wire.CodeNoService, Msg: fmt.Sprintf("unknown user %q", id)}
	}
	if err := s.users.Update(store.Row{"addr": addr, "offline": false, "lastSeen": s.clock.Now()}, id); err != nil {
		return err
	}
	for _, r := range s.services.SelectEq("owner", id) {
		if err := s.services.Update(store.Row{"addr": addr}, r["name"].(string)); err != nil {
			return err
		}
	}
	return nil
}
