package directory

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/controlplane"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/transport"
)

// shardedDir is a 4-shard directory deployment on a sim network:
// shard servers at dir0..dirN-1 behind a controller at "cp".
type shardedDir struct {
	net     *sim.Net
	fake    *clock.Fake
	ctl     *controlplane.Controller
	servers []*Server
	shards  []controlplane.Shard
	client  *Client
}

func newShardedDirectory(t *testing.T, shards int, opts ...ClientOption) *shardedDir {
	t.Helper()
	fake := clock.NewFake(time.Date(2003, 4, 22, 9, 0, 0, 0, time.UTC))
	net := sim.New(sim.Config{})
	d := &shardedDir{net: net, fake: fake}
	for i := 0; i < shards; i++ {
		id := fmt.Sprintf("shard%d", i)
		srv := NewServer(WithClock(fake), WithTTL(10*time.Second), WithShard(id))
		ln, err := net.Listen(fmt.Sprintf("dir%d", i), srv.Handler())
		if err != nil {
			t.Fatal(err)
		}
		d.servers = append(d.servers, srv)
		d.shards = append(d.shards, controlplane.Shard{ID: id, Addr: ln.Addr()})
	}
	d.ctl = controlplane.NewController(d.shards)
	for _, srv := range d.servers {
		d.ctl.Subscribe(srv.SetTable)
	}
	if _, err := net.Listen("cp", d.ctl.Handler()); err != nil {
		t.Fatal(err)
	}
	d.client = NewShardedClient(net, "cp", opts...)
	return d
}

// userCount reads one shard's user-table size directly.
func (d *shardedDir) userCount(i int) int {
	return len(d.servers[i].users.Select(nil))
}

func TestShardedOpsRouteAndSpread(t *testing.T) {
	d := newShardedDirectory(t, 4)
	ctx := ctxT(t)
	const n = 32
	for i := 0; i < n; i++ {
		u := fmt.Sprintf("u%02d", i)
		if err := d.client.RegisterUser(ctx, u, "node-"+u, i); err != nil {
			t.Fatal(err)
		}
		if err := d.client.RegisterService(ctx, "cal."+u, u, "node-"+u, []string{"A"}); err != nil {
			t.Fatal(err)
		}
	}
	// Every record is findable through the sharded client.
	for i := 0; i < n; i++ {
		u := fmt.Sprintf("u%02d", i)
		info, err := d.client.LookupUser(ctx, u)
		if err != nil {
			t.Fatal(err)
		}
		if info.Addr != "node-"+u || info.Priority != i {
			t.Fatalf("user %s = %+v", u, info)
		}
		svc, err := d.client.ResolveService(ctx, "cal."+u)
		if err != nil {
			t.Fatal(err)
		}
		if svc.Addr != "node-"+u || !svc.OwnerOnline {
			t.Fatalf("service cal.%s = %+v", u, svc)
		}
	}
	// The data actually spread across shards, and each user landed on
	// the shard the table says owns it.
	total, populated := 0, 0
	for i := range d.servers {
		c := d.userCount(i)
		total += c
		if c > 0 {
			populated++
		}
	}
	if total != n || populated < 2 {
		t.Fatalf("users spread: total=%d populated_shards=%d", total, populated)
	}
	// ListUsers merges shards and stays sorted.
	users, err := d.client.ListUsers(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(users) != n {
		t.Fatalf("ListUsers = %d users", len(users))
	}
	for i := 1; i < len(users); i++ {
		if users[i-1].ID >= users[i].ID {
			t.Fatalf("ListUsers unsorted at %d: %s >= %s", i, users[i-1].ID, users[i].ID)
		}
	}
}

func TestShardedServiceCoLocatesWithOwner(t *testing.T) {
	d := newShardedDirectory(t, 4)
	tab := d.ctl.Current()
	for _, owner := range []string{"phil", "andy", "suzy", "u42"} {
		for _, svc := range []string{"cal." + owner, "links." + owner, "sys." + owner} {
			if tab.Owner(ShardKey(svc)) != tab.Owner(owner) {
				t.Fatalf("service %s routes to %s, owner %s to %s",
					svc, tab.Owner(ShardKey(svc)).ID, owner, tab.Owner(owner).ID)
			}
		}
	}
}

func TestShardedGroupAcrossShards(t *testing.T) {
	d := newShardedDirectory(t, 4)
	ctx := ctxT(t)
	members := []string{"u01", "u02", "u03", "u04", "u05", "u06", "u07", "u08"}
	for _, m := range members {
		if err := d.client.RegisterUser(ctx, m, "node-"+m, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.client.CreateGroup(ctx, "team", members[:6]); err != nil {
		t.Fatal(err)
	}
	if err := d.client.AddMember(ctx, "team", members[6]); err != nil {
		t.Fatal(err)
	}
	if err := d.client.RemoveMember(ctx, "team", members[0]); err != nil {
		t.Fatal(err)
	}
	got, err := d.client.GroupMembers(ctx, "team")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 6 || got[0] != "u02" || got[5] != "u07" {
		t.Fatalf("members = %v", got)
	}
	// The group lives on exactly one shard (keyed by group name).
	owners := 0
	for _, srv := range d.servers {
		if len(srv.groupMembers("team")) > 0 {
			owners++
		}
	}
	if owners != 1 {
		t.Fatalf("group stored on %d shards, want 1", owners)
	}
}

func TestWrongShardRedirectRetriesOnce(t *testing.T) {
	d := newShardedDirectory(t, 4)
	ctx := ctxT(t)
	// Prime the client's table at epoch 1.
	if err := d.client.RegisterUser(ctx, "primer", "node-primer", 0); err != nil {
		t.Fatal(err)
	}
	if d.client.Epoch() != 1 {
		t.Fatalf("epoch = %d, want 1", d.client.Epoch())
	}
	// Shrink the topology: shard3 leaves. Every server learns the
	// epoch-2 table immediately; the client still holds epoch 1.
	old := d.ctl.Current()
	if e := d.ctl.SetShards(d.shards[:3]); e != 2 {
		t.Fatalf("SetShards = %d", e)
	}
	// A key shard3 used to own now routes elsewhere. The client's
	// stale table sends the op to shard3, which answers wrong-shard;
	// the client must refresh and retry transparently.
	moved := ""
	for i := 0; i < 1000; i++ {
		k := fmt.Sprintf("m%03d", i)
		if old.Owner(k).ID == "shard3" && d.ctl.Current().Owner(k).ID != "shard3" {
			moved = k
			break
		}
	}
	if moved == "" {
		t.Fatal("no key moved off shard3")
	}
	if err := d.client.RegisterUser(ctx, moved, "node-"+moved, 0); err != nil {
		t.Fatalf("redirected register failed: %v", err)
	}
	if d.client.Epoch() != 2 {
		t.Fatalf("client epoch after redirect = %d, want 2", d.client.Epoch())
	}
	info, err := d.client.LookupUser(ctx, moved)
	if err != nil || info.Addr != "node-"+moved {
		t.Fatalf("lookup after redirect: %+v, %v", info, err)
	}
	// And the record landed on the epoch-2 owner, not shard3.
	ownerIdx := -1
	for i, s := range d.shards[:3] {
		if s.ID == d.ctl.Current().Owner(moved).ID {
			ownerIdx = i
		}
	}
	found := false
	for _, r := range d.servers[ownerIdx].users.Select(nil) {
		if r["id"] == moved {
			found = true
		}
	}
	if !found {
		t.Fatalf("record for %q not on owning shard %s", moved, d.shards[ownerIdx].ID)
	}
}

func TestShardedTouchAfterEpochBump(t *testing.T) {
	d := newShardedDirectory(t, 4)
	ctx := ctxT(t)
	// A proxy and an offline user, registered at epoch 1.
	if err := d.client.RegisterProxy(ctx, "p1", "proxy-1"); err != nil {
		t.Fatal(err)
	}
	// Find a user key shard3 owns at epoch 1 but loses when the
	// topology shrinks — the interesting reconnect case.
	old := d.ctl.Current()
	user := ""
	for i := 0; i < 1000; i++ {
		k := fmt.Sprintf("mob%03d", i)
		if old.Owner(k).ID == "shard3" {
			user = k
			break
		}
	}
	if user == "" {
		t.Fatal("no key owned by shard3")
	}
	if err := d.client.RegisterUser(ctx, user, "node-"+user, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.client.SetOffline(ctx, user, true); err != nil {
		t.Fatal(err)
	}
	before, _ := d.client.LookupUser(ctx, user)
	if before.Online || before.Proxy != "proxy-1" {
		t.Fatalf("offline user = %+v", before)
	}
	// The user's record migrates: shard3 leaves, epoch bumps to 2.
	// (Records move via snapshot restore in production; here we
	// re-insert on the new owner to model the migrated row.)
	row := store.Row{}
	for _, r := range d.servers[3].users.Select(nil) {
		if r["id"] == user {
			row = r
		}
	}
	if len(row) == 0 {
		t.Fatalf("user %q not on shard3", user)
	}
	if e := d.ctl.SetShards(d.shards[:3]); e != 2 {
		t.Fatalf("SetShards = %d", e)
	}
	newOwner := d.ctl.Current().Owner(user).ID
	for i, s := range d.shards[:3] {
		if s.ID == newOwner {
			if err := d.servers[i].users.Insert(row); err != nil {
				t.Fatal(err)
			}
		}
	}
	// The device reconnects AFTER the epoch bump while the client
	// still holds the epoch-1 table: Touch must survive the
	// wrong-shard redirect and still be atomic on the new owner.
	prev, err := d.client.Touch(ctx, user)
	if err != nil {
		t.Fatalf("touch after epoch bump: %v", err)
	}
	if prev.Online || prev.Proxy != "proxy-1" {
		t.Fatalf("pre-touch info = %+v", prev)
	}
	if d.client.Epoch() != 2 {
		t.Fatalf("client epoch after touch = %d, want 2", d.client.Epoch())
	}
	info, err := d.client.LookupUser(ctx, user)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Online || info.Proxy != "" {
		t.Fatalf("post-touch info = %+v", info)
	}
}

func TestEpochBumpInvalidatesClientCacheWithoutTTLWait(t *testing.T) {
	d := newShardedDirectory(t, 4, WithCacheTTL(time.Hour))
	now := time.Unix(0, 0)
	d.client.nowFn = func() time.Time { return now } // TTL never expires
	ctx := ctxT(t)

	var hookEpochs []uint64
	d.client.OnEpochChange(func(e uint64) { hookEpochs = append(hookEpochs, e) })

	if err := d.client.RegisterUser(ctx, "phil", "node-phil", 0); err != nil {
		t.Fatal(err)
	}
	if err := d.client.RegisterService(ctx, "cal.phil", "phil", "node-phil", nil); err != nil {
		t.Fatal(err)
	}
	svc, err := d.client.ResolveService(ctx, "cal.phil")
	if err != nil || svc.Addr != "node-phil" {
		t.Fatalf("resolve: %+v, %v", svc, err)
	}
	// Cached: resolving again makes no RPC.
	before := d.net.Stats().Requests
	if _, err := d.client.ResolveService(ctx, "cal.phil"); err != nil {
		t.Fatal(err)
	}
	if got := d.net.Stats().Requests; got != before {
		t.Fatalf("cached resolve made %d RPCs", got-before)
	}

	// The service moves (re-registered elsewhere by another client),
	// and the control plane bumps the epoch to broadcast the change.
	other := NewShardedClient(d.net, "cp")
	if err := other.RegisterService(ctx, "cal.phil", "phil", "node-phil-2", nil); err != nil {
		t.Fatal(err)
	}
	if e := d.ctl.Bump(); e != 2 {
		t.Fatalf("Bump = %d", e)
	}

	// The stale client's next RPC — any op at all — carries the new
	// epoch, which flushes its cache immediately. No TTL wait.
	if _, err := d.client.LookupUser(ctx, "phil"); err != nil {
		t.Fatal(err)
	}
	svc, err = d.client.ResolveService(ctx, "cal.phil")
	if err != nil {
		t.Fatal(err)
	}
	if svc.Addr != "node-phil-2" {
		t.Fatalf("stale route survived epoch bump: %+v", svc)
	}
	if len(hookEpochs) == 0 || hookEpochs[len(hookEpochs)-1] != 2 {
		t.Fatalf("OnEpochChange hooks = %v, want last 2", hookEpochs)
	}
}

func TestResolveBatchAcrossShards(t *testing.T) {
	d := newShardedDirectory(t, 4)
	ctx := ctxT(t)
	var names []string
	for i := 0; i < 12; i++ {
		u := fmt.Sprintf("u%02d", i)
		if err := d.client.RegisterUser(ctx, u, "node-"+u, 0); err != nil {
			t.Fatal(err)
		}
		if err := d.client.RegisterService(ctx, "cal."+u, u, "node-"+u, nil); err != nil {
			t.Fatal(err)
		}
		names = append(names, "cal."+u)
	}
	before := d.net.Stats().Requests
	got, err := d.client.ResolveBatch(ctx, append(names, "cal.ghost"))
	if err != nil {
		t.Fatal(err)
	}
	rpcs := d.net.Stats().Requests - before
	if int(rpcs) > 4 {
		t.Fatalf("batch used %d RPCs for 4 shards", rpcs)
	}
	if len(got) != len(names) {
		t.Fatalf("resolved %d/%d names: %v", len(got), len(names), got)
	}
	for _, n := range names {
		if got[n].Addr != "node-"+ShardKey(n) {
			t.Fatalf("route for %s = %+v", n, got[n])
		}
	}
	if _, ok := got["cal.ghost"]; ok {
		t.Fatal("unknown name resolved")
	}
}

func TestShardedProxyBroadcastAndAssignment(t *testing.T) {
	d := newShardedDirectory(t, 4)
	ctx := ctxT(t)
	if err := d.client.RegisterProxy(ctx, "p1", "proxy-1"); err != nil {
		t.Fatal(err)
	}
	// Every shard learned the proxy, so users on any shard get one.
	for i := 0; i < 8; i++ {
		u := fmt.Sprintf("u%02d", i)
		if err := d.client.RegisterUser(ctx, u, "node-"+u, 0); err != nil {
			t.Fatal(err)
		}
		info, err := d.client.LookupUser(ctx, u)
		if err != nil {
			t.Fatal(err)
		}
		if info.Proxy != "proxy-1" {
			t.Fatalf("user %s proxy = %q", u, info.Proxy)
		}
	}
}

func TestShardedSnapshotRestorePerShard(t *testing.T) {
	d := newShardedDirectory(t, 4)
	ctx := ctxT(t)
	if err := d.client.RegisterProxy(ctx, "p1", "proxy-1"); err != nil {
		t.Fatal(err)
	}
	var members []string
	for i := 0; i < 16; i++ {
		u := fmt.Sprintf("u%02d", i)
		if err := d.client.RegisterUser(ctx, u, "node-"+u, i); err != nil {
			t.Fatal(err)
		}
		if err := d.client.RegisterService(ctx, "cal."+u, u, "node-"+u, []string{"A", "B"}); err != nil {
			t.Fatal(err)
		}
		members = append(members, u)
	}
	if err := d.client.CreateGroup(ctx, "team", members); err != nil {
		t.Fatal(err)
	}
	if err := d.client.SetOffline(ctx, "u03", true); err != nil {
		t.Fatal(err)
	}

	// Each shard snapshots independently; a new deployment restores
	// shard-for-shard and serves the same bindings.
	net2 := sim.New(sim.Config{})
	shards2 := make([]controlplane.Shard, len(d.servers))
	restored := make([]*Server, len(d.servers))
	total := 0
	for i, srv := range d.servers {
		var buf bytes.Buffer
		if err := srv.Snapshot(&buf); err != nil {
			t.Fatal(err)
		}
		srv2, err := RestoreServer(&buf, WithClock(d.fake), WithTTL(10*time.Second), WithShard(srv.ShardID()))
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net2.Listen(fmt.Sprintf("dir%d", i), srv2.Handler())
		if err != nil {
			t.Fatal(err)
		}
		shards2[i] = controlplane.Shard{ID: srv.ShardID(), Addr: ln.Addr()}
		restored[i] = srv2
		total += len(srv2.users.Select(nil))
	}
	if total != 16 {
		t.Fatalf("restored shards hold %d users, want 16", total)
	}
	ctl2 := controlplane.NewController(shards2)
	for _, srv := range restored {
		ctl2.Subscribe(srv.SetTable)
	}
	if _, err := net2.Listen("cp", ctl2.Handler()); err != nil {
		t.Fatal(err)
	}
	c2 := NewShardedClient(net2, "cp")

	// Proxy bindings, offline flags, and priorities survived.
	for i := 0; i < 16; i++ {
		u := fmt.Sprintf("u%02d", i)
		info, err := c2.LookupUser(ctx, u)
		if err != nil {
			t.Fatal(err)
		}
		if info.Proxy != "proxy-1" || info.Priority != i {
			t.Fatalf("restored %s = %+v", u, info)
		}
		if u == "u03" && info.Online {
			t.Fatal("offline flag lost in restore")
		}
		svc, err := c2.LookupService(ctx, "cal."+u)
		if err != nil {
			t.Fatal(err)
		}
		if len(svc.Methods) != 2 || svc.Addr != "node-"+u {
			t.Fatalf("restored service cal.%s = %+v", u, svc)
		}
	}
	got, err := c2.GroupMembers(ctx, "team")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 16 {
		t.Fatalf("restored group has %d members", len(got))
	}
}

// gatedHandler blocks every request until released, recording arrival.
type gatedHandler struct {
	inner   transport.Handler
	arrived chan struct{}
	release chan struct{}
}

func (g *gatedHandler) HandleRequest(ctx context.Context, req *transport.Request) *transport.Response {
	select {
	case g.arrived <- struct{}{}:
	default:
	}
	<-g.release
	return g.inner.HandleRequest(ctx, req)
}

func (g *gatedHandler) HandleEvent(ev *transport.Event) { g.inner.HandleEvent(ev) }

func TestLookupSingleflightCollapsesColdMisses(t *testing.T) {
	fake := clock.NewFake(time.Unix(0, 0))
	net := sim.New(sim.Config{})
	srv := NewServer(WithClock(fake), WithTTL(time.Hour))
	gate := &gatedHandler{
		inner:   srv.Handler(),
		arrived: make(chan struct{}, 1),
		release: make(chan struct{}),
	}
	ln, err := net.Listen("dir", gate.inner)
	if err != nil {
		t.Fatal(err)
	}
	ctx := ctxT(t)
	setup := NewClient(net, ln.Addr())
	if err := setup.RegisterService(ctx, "cal.phil", "", "node-phil", nil); err != nil {
		t.Fatal(err)
	}

	// Re-listen behind the gate for the actual test client.
	gln, err := net.Listen("dir-gated", gate)
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(net, gln.Addr(), WithCacheTTL(time.Minute))

	before := net.Stats().Requests
	const workers = 8
	var wg sync.WaitGroup
	errs := make([]error, workers)
	infos := make([]ServiceInfo, workers)
	wg.Add(1)
	go func() {
		defer wg.Done()
		infos[0], errs[0] = c.ResolveService(ctx, "cal.phil")
	}()
	<-gate.arrived // the leader's RPC is in flight; its flight entry exists
	for i := 1; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			infos[i], errs[i] = c.ResolveService(ctx, "cal.phil")
		}(i)
	}
	close(gate.release)
	wg.Wait()

	for i := 0; i < workers; i++ {
		if errs[i] != nil {
			t.Fatalf("worker %d: %v", i, errs[i])
		}
		if infos[i].Addr != "node-phil" {
			t.Fatalf("worker %d info = %+v", i, infos[i])
		}
	}
	if got := net.Stats().Requests - before; got != 1 {
		t.Fatalf("%d concurrent cold misses made %d directory RPCs, want 1", workers, got)
	}
}

func TestShardedClientFullVsRouteCacheEntries(t *testing.T) {
	// A route-only (ResolveService) cache entry must not answer a
	// LookupService (methods-bearing) request in sharded mode either.
	d := newShardedDirectory(t, 4, WithCacheTTL(time.Minute))
	ctx := ctxT(t)
	if err := d.client.RegisterService(ctx, "cal.phil", "", "node-phil", []string{"A", "B"}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.client.ResolveService(ctx, "cal.phil"); err != nil {
		t.Fatal(err)
	}
	full, err := d.client.LookupService(ctx, "cal.phil")
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Methods) != 2 {
		t.Fatalf("route-only cache entry served a full lookup: %+v", full)
	}
}
