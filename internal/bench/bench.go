// Package bench holds the benchmark bodies shared between the
// top-level `go test -bench` harness (bench_test.go) and the sydbench
// -bench-json trajectory runner, so both entry points measure exactly
// the same code. The trajectory suite — the kernel micro benchmarks
// plus the four figure-equivalents — is what BENCH_rpc.json tracks
// across PRs.
package bench

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/calendar"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/directory"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/links"
	"repro/internal/replication"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/wal"
	"repro/internal/wire"
	"repro/internal/workload"
)

// Experiment runs one registered experiment per iteration (the F/E/T
// figure- and table-equivalents; each run also verifies the
// paper-shape assertions).
func Experiment(b *testing.B, id string) {
	b.Helper()
	reg, _ := experiments.All()
	run, ok := reg[id]
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := run(); err != nil {
			b.Fatal(err)
		}
	}
}

// MicroEngineInvoke measures one directory-resolved remote invocation
// on an ideal network.
func MicroEngineInvoke(b *testing.B) {
	ctx := context.Background()
	w, err := experiments.NewWorld(workload.Users(2), sim.Config{})
	if err != nil {
		b.Fatal(err)
	}
	eng := w.Nodes["u00"].Engine
	svc := calendar.ServiceFor("u01")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eng.Invoke(ctx, svc, "ListMeetings", nil, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// MicroDirectoryLookupSharded measures one route-only directory
// resolution against a 4-shard directory behind the control plane —
// the uncached data-plane hop a cold engine pays per invocation,
// including the shard-map routing and the epoch check on the reply.
func MicroDirectoryLookupSharded(b *testing.B) {
	ctx := context.Background()
	users := workload.Users(4)
	w, err := experiments.NewShardedWorld(users, sim.Config{}, 4)
	if err != nil {
		b.Fatal(err)
	}
	names := make([]string, len(users))
	for i, u := range users {
		names[i] = calendar.ServiceFor(u)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Dir.ResolveService(ctx, names[i%len(names)]); err != nil {
			b.Fatal(err)
		}
	}
}

// MicroGroupInvoke measures a fan-out over 8 members.
func MicroGroupInvoke(b *testing.B) {
	ctx := context.Background()
	users := workload.Users(9)
	w, err := experiments.NewWorld(users, sim.Config{})
	if err != nil {
		b.Fatal(err)
	}
	services := make([]string, 8)
	for i, u := range users[1:] {
		services[i] = calendar.ServiceFor(u)
	}
	eng := w.Nodes[users[0]].Engine
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results := eng.GroupInvoke(ctx, services, "ListMeetings", nil)
		if !engine.AllOK(results) {
			b.Fatal(engine.FirstError(results))
		}
	}
}

// MicroNegotiationAnd measures a full two-phase negotiation-and over
// three remote entities (reserve + release).
func MicroNegotiationAnd(b *testing.B) {
	ctx := context.Background()
	users := workload.Users(4)
	w, err := experiments.NewWorld(users, sim.Config{})
	if err != nil {
		b.Fatal(err)
	}
	slot := calendar.Slot{Day: "2003-04-21", Hour: 9}
	targets := []links.EntityRef{
		{User: "u01", Entity: slot.Entity()},
		{User: "u02", Entity: slot.Entity()},
		{User: "u03", Entity: slot.Entity()},
	}
	lm := w.Cals["u00"].Links()
	eng := w.Nodes["u00"].Engine
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		meeting := fmt.Sprintf("bench-%d", i)
		if _, err := lm.Negotiate(ctx, links.Spec{
			Action:     calendar.ActionReserve,
			Args:       wire.Args{"meeting": meeting, "priority": 0},
			Targets:    targets,
			Constraint: links.And,
		}); err != nil {
			b.Fatal(err)
		}
		for _, tgt := range targets {
			if err := eng.Invoke(ctx, links.ServiceFor(tgt.User), "Apply", wire.Args{
				"entity": tgt.Entity, "action": calendar.ActionRelease,
				"args": map[string]any{"meeting": meeting},
			}, nil); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// MicroNegotiationAndBatched measures the same two-phase
// negotiation-and as MicroNegotiationAnd, but with all three entities
// co-located on one remote node — the fleet shape the per-node
// batching path collapses into a single MarkBatch/CommitBatch RPC pair
// instead of three Marks and three Commits.
func MicroNegotiationAndBatched(b *testing.B) {
	ctx := context.Background()
	users := workload.Users(2)
	w, err := experiments.NewWorld(users, sim.Config{})
	if err != nil {
		b.Fatal(err)
	}
	day := "2003-04-21"
	targets := []links.EntityRef{
		{User: "u01", Entity: calendar.Slot{Day: day, Hour: 9}.Entity()},
		{User: "u01", Entity: calendar.Slot{Day: day, Hour: 10}.Entity()},
		{User: "u01", Entity: calendar.Slot{Day: day, Hour: 11}.Entity()},
	}
	lm := w.Cals["u00"].Links()
	eng := w.Nodes["u00"].Engine
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		meeting := fmt.Sprintf("bench-%d", i)
		if _, err := lm.Negotiate(ctx, links.Spec{
			Action:     calendar.ActionReserve,
			Args:       wire.Args{"meeting": meeting, "priority": 0},
			Targets:    targets,
			Constraint: links.And,
		}); err != nil {
			b.Fatal(err)
		}
		for _, tgt := range targets {
			if err := eng.Invoke(ctx, links.ServiceFor(tgt.User), "Apply", wire.Args{
				"entity": tgt.Entity, "action": calendar.ActionRelease,
				"args": map[string]any{"meeting": meeting},
			}, nil); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// replayReader serves the same byte sequence forever — an endless
// stream of identical frames for decoder benchmarks.
type replayReader struct {
	data []byte
	off  int
}

func (r *replayReader) Read(p []byte) (int, error) {
	if r.off == len(r.data) {
		r.off = 0
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}

// MicroWireCodecV3 measures one codec-v3 frame round trip — encode a
// representative negotiation request into a pooled FrameBuffer, then
// decode an identical frame through a warm FrameReader — the per-frame
// cost every RPC between two v3 nodes pays.
func MicroWireCodecV3(b *testing.B) {
	env := &wire.Envelope{Kind: wire.KindRequest, Request: &wire.Request{
		ID:      42,
		Service: "links.u01",
		Method:  "Mark",
		Caller:  "u00",
		Args: wire.Args{
			"entity": "slot:2003-04-21:9",
			"action": "reserve",
			"nid":    "N-4f3a2b1c-9",
			"args":   map[string]any{"meeting": "bench", "priority": int64(0)},
		},
		Meta: wire.Metadata{"request-id": "r-4f3a2b1c", "hops": "1"},
	}}
	seed, err := wire.EncodeFrameCodec(env, wire.CodecV3)
	if err != nil {
		b.Fatal(err)
	}
	stream := &replayReader{data: append([]byte(nil), seed.Bytes()...)}
	seed.Release()
	fr := wire.NewFrameReader(stream)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := wire.EncodeFrameCodec(env, wire.CodecV3)
		if err != nil {
			b.Fatal(err)
		}
		f.Release()
		if _, err := fr.Read(); err != nil {
			b.Fatal(err)
		}
	}
}

// MicroMeetingLifecycle measures setup + cancel of a three-party
// meeting (the full link topology install and cascade).
func MicroMeetingLifecycle(b *testing.B) {
	ctx := context.Background()
	users := workload.Users(3)
	w, err := experiments.NewWorld(users, sim.Config{})
	if err != nil {
		b.Fatal(err)
	}
	day := time.Date(2003, 4, 21, 0, 0, 0, 0, time.UTC)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := day.AddDate(0, 0, i%30).Format("2006-01-02")
		m, err := w.Cals["u00"].SetupMeeting(ctx, calendar.Request{
			Title: "bench", Day: d, Hour: 9 + i%8, PinSlot: true,
			Must: users[1:],
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := w.Cals["u00"].CancelMeeting(ctx, m.ID); err != nil {
			b.Fatal(err)
		}
	}
}

// slotSchema is the replicated table the replication benchmarks write.
var slotSchema = store.Schema{
	Name: "slots",
	Columns: []store.Column{
		{Name: "entity", Type: store.String},
		{Name: "holder", Type: store.String},
	},
	Key: []string{"entity"},
}

// MicroWALShip measures one replication shipping round: a logged
// store mutation on the primary's durable database, read back as raw
// WAL frames and verified-then-applied by a follower receiver — the
// per-commit cost of keeping a warm standby current.
func MicroWALShip(b *testing.B) {
	prim, err := wal.Open(b.TempDir(), wal.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer prim.Close()
	tbl := prim.DB.MustCreateTable(slotSchema)
	recv, err := wal.OpenReceiver(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer recv.Close()
	ship := func() {
		batch, err := prim.ReadFrames(recv.AppliedLSN()+1, 1<<20)
		if err != nil {
			b.Fatal(err)
		}
		if len(batch.Frames) > 0 {
			if _, err := recv.AppendFrames(batch.Frames); err != nil {
				b.Fatal(err)
			}
		}
	}
	ship() // drain the DDL record before timing
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tbl.Insert(store.Row{"entity": fmt.Sprintf("e%d", i), "holder": "bench"}); err != nil {
			b.Fatal(err)
		}
		ship()
	}
	b.StopTimer()
	if recv.AppliedLSN() != prim.LastLSN() {
		b.Fatalf("follower at %d, primary at %d", recv.AppliedLSN(), prim.LastLSN())
	}
}

// F4FailoverRecovery measures a complete failover round: a replicated
// primary with acked state dies, its follower wins the expired lease,
// boots a full node over the shipped WAL, and the directory re-points
// — the end-to-end recovery cost of the replication subsystem (the
// lease wait itself is skipped via a manual clock; what is measured is
// the machinery, not the configured TTL).
func F4FailoverRecovery(b *testing.B) {
	ctx := context.Background()
	const ttl = 30 * time.Second
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		net := sim.New(sim.Config{})
		clk := clock.NewFake(time.Date(2003, 4, 21, 9, 0, 0, 0, time.UTC))
		srv := directory.NewServer(directory.WithClock(clk), directory.WithTTL(100*time.Hour))
		if _, err := net.Listen("dir", srv.Handler()); err != nil {
			b.Fatal(err)
		}
		x, err := core.Start(ctx, core.Config{
			User: "x", Net: net, DirAddr: "dir", Clock: clk,
			DataDir: b.TempDir(), LeaseTTL: ttl, Replicas: []string{"r1"},
		})
		if err != nil {
			b.Fatal(err)
		}
		tbl := x.DB.MustCreateTable(slotSchema)
		if err := tbl.Insert(store.Row{"entity": "s0", "holder": "M0"}); err != nil {
			b.Fatal(err)
		}
		promoted := make(chan *core.Node, 1)
		fdir := b.TempDir()
		f, err := replication.StartFollower(ctx, replication.FollowerConfig{
			User: "x", Net: net, Dir: directory.NewClient(net, "dir"),
			DataDir: fdir, ListenAddr: "r1", LeaseTTL: ttl, Clock: clk,
			Promote: func(pctx context.Context, holder string) (string, error) {
				n, err := core.Start(pctx, core.Config{
					User: "x", Net: net, DirAddr: "dir", Clock: clk,
					DataDir: fdir, LeaseTTL: ttl, LeaseHolder: holder,
				})
				if err != nil {
					return "", err
				}
				promoted <- n
				return n.Addr(), nil
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		for f.AppliedLSN() < x.Durable.LastLSN() {
			if err := f.PullOnce(ctx); err != nil {
				b.Fatal(err)
			}
		}
		x.Events.Close()
		net.SetDown("node-x", true)
		clk.Advance(ttl + time.Second)
		did, err := f.CheckLease(ctx)
		if err != nil {
			b.Fatal(err)
		}
		if !did {
			b.Fatal("follower did not promote")
		}
		x2 := <-promoted
		t2, err := x2.DB.Table("slots")
		if err != nil {
			b.Fatal(err)
		}
		if r, ok := t2.Get("s0"); !ok || r["holder"].(string) != "M0" {
			b.Fatalf("replicated slot lost: %v", r)
		}
		cctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		_ = x2.Close(cctx)
		cancel()
		_ = f.Close()
		_ = x.Durable.Close()
	}
}

// MicroSyncReconnect measures one disconnected-operation round trip:
// a device in local mode with queued bookings (and one queued
// cancellation) reconnects — directory Touch, queue push through the
// real negotiation path, and the relevance pull are all inside the
// timed region. World construction and the offline queuing itself are
// excluded.
func MicroSyncReconnect(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		net := sim.New(sim.Config{})
		clk := clock.NewFake(time.Date(2003, 4, 21, 8, 0, 0, 0, time.UTC))
		srv := directory.NewServer(directory.WithClock(clk), directory.WithTTL(time.Hour))
		if _, err := net.Listen("dir", srv.Handler()); err != nil {
			b.Fatal(err)
		}
		nodes := map[string]*core.Node{}
		cals := map[string]*calendar.Calendar{}
		for _, u := range []string{"mob", "phil"} {
			n, err := core.Start(ctx, core.Config{
				User: u, Net: net, DirAddr: "dir", Clock: clk,
				OfflineMode: true, OfflineQueueCap: 64,
			})
			if err != nil {
				b.Fatal(err)
			}
			c, err := calendar.New(ctx, n)
			if err != nil {
				b.Fatal(err)
			}
			c.EnableSync(n.Offline)
			nodes[u], cals[u] = n, c
		}
		// A shared meeting makes phil a sync peer and gives the pull
		// phase state to scan.
		if _, err := cals["phil"].SetupMeeting(ctx, calendar.Request{
			Title: "seed", Day: "2003-04-22", Hour: 9, PinSlot: true, Priority: 1,
			Must: []string{"mob"},
		}); err != nil {
			b.Fatal(err)
		}
		mob := cals["mob"]
		nodes["mob"].Offline.GoOffline(ctx)
		var last string
		for k := 0; k < 4; k++ {
			m, queued, err := mob.ScheduleOrQueue(ctx, calendar.Request{
				Title: "offline", Day: "2003-04-23", Hour: 9 + k, PinSlot: true, Priority: 1,
				Must: []string{"phil"},
			})
			if err != nil || !queued {
				b.Fatalf("queue op %d: queued=%v err=%v", k, queued, err)
			}
			last = m.ID
		}
		if _, err := mob.CancelOrQueue(ctx, last); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := nodes["mob"].Offline.TryReconnect(ctx); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if got := nodes["mob"].Offline.Queue().Len(); got != 0 {
			b.Fatalf("queue not drained: %d", got)
		}
		cctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		for _, n := range nodes {
			_ = n.Close(cctx)
		}
		cancel()
		b.StartTimer()
	}
}

// Def names one benchmark in the trajectory suite.
type Def struct {
	Name string
	Run  func(*testing.B)
}

// Trajectory lists the benchmarks sydbench -bench-json runs, in order:
// the kernel micro benchmarks, then the figure-equivalents F1-F4.
func Trajectory() []Def {
	return []Def{
		{Name: "Micro_EngineInvoke", Run: MicroEngineInvoke},
		{Name: "Micro_DirectoryLookupSharded", Run: MicroDirectoryLookupSharded},
		{Name: "Micro_GroupInvoke", Run: MicroGroupInvoke},
		{Name: "Micro_NegotiationAnd", Run: MicroNegotiationAnd},
		{Name: "Micro_NegotiationAndBatched", Run: MicroNegotiationAndBatched},
		{Name: "Micro_WireCodecV3", Run: MicroWireCodecV3},
		{Name: "Micro_MeetingLifecycle", Run: MicroMeetingLifecycle},
		{Name: "F1_LayeredInvocation", Run: func(b *testing.B) { Experiment(b, "F1") }},
		{Name: "F2_LayerOverhead", Run: func(b *testing.B) { Experiment(b, "F2") }},
		{Name: "F3_DirectoryOps", Run: func(b *testing.B) { Experiment(b, "F3") }},
		{Name: "F4_NegotiationOr", Run: func(b *testing.B) { Experiment(b, "F4") }},
		{Name: "Micro_WALShip", Run: MicroWALShip},
		{Name: "Micro_SyncReconnect", Run: MicroSyncReconnect},
		{Name: "F4_FailoverRecovery", Run: F4FailoverRecovery},
	}
}

// Result is one benchmark's measurement in a trajectory run —
// the JSON row BENCH_rpc.json stores.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"nsPerOp"`
	AllocsPerOp int64   `json:"allocsPerOp"`
	BytesPerOp  int64   `json:"bytesPerOp"`
}

// Run executes def with testing.Benchmark and converts the outcome.
func Run(def Def) Result {
	r := testing.Benchmark(def.Run)
	return Result{
		Name:        def.Name,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}
