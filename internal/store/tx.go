package store

import (
	"fmt"
	"sync"
)

// Tx is a device-local multi-table transaction with rollback. The SyD
// linking module uses it to make "update my calendar + update my link
// table" atomic on one device; cross-device atomicity is the job of
// negotiation links, not of this type.
//
// Tx takes a whole-DB writer lock for its lifetime (single-writer,
// which matches the prototype's one-user-per-device model) and records
// an undo log; Rollback replays the log in reverse.
// A Tx is logged as ONE atomic unit: its ops are buffered and handed
// to the DB's MutationLogger only at Commit, so a write-ahead log can
// replay "all of it or none of it". Undo actions never log.
type Tx struct {
	db   *DB
	mu   sync.Mutex
	done bool
	undo []func() error
	ops  []LoggedOp
}

// Begin starts a transaction.
func (db *DB) Begin() *Tx {
	return &Tx{db: db}
}

// Insert inserts r into the named table, recording an undo action.
func (tx *Tx) Insert(table string, r Row) error {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	if tx.done {
		return ErrTxDone
	}
	t, err := tx.db.Table(table)
	if err != nil {
		return err
	}
	if err := t.insert(r, true, false); err != nil {
		return err
	}
	keyVals, err := t.keyValsOf(r)
	if err != nil {
		return err
	}
	tx.undo = append(tx.undo, func() error { return t.delete(keyVals, true, false) })
	tx.ops = append(tx.ops, LoggedOp{Table: table, Op: OpInsert, Row: r.Clone()})
	return nil
}

// Update updates the row in the named table, recording an undo action
// restoring the previous column values.
func (tx *Tx) Update(table string, changes Row, keyVals ...any) error {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	if tx.done {
		return ErrTxDone
	}
	t, err := tx.db.Table(table)
	if err != nil {
		return err
	}
	old, ok := t.Get(keyVals...)
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoRow, table)
	}
	if err := t.update(changes, keyVals, true, false); err != nil {
		return err
	}
	restore := make(Row, len(changes))
	for c := range changes {
		restore[c] = old[c]
	}
	tx.undo = append(tx.undo, func() error { return t.update(restore, keyVals, true, false) })
	tx.ops = append(tx.ops, LoggedOp{Table: table, Op: OpUpdate, Row: changes.Clone(), Key: append([]any(nil), keyVals...)})
	return nil
}

// Delete removes the row in the named table, recording an undo action
// that re-inserts it.
func (tx *Tx) Delete(table string, keyVals ...any) error {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	if tx.done {
		return ErrTxDone
	}
	t, err := tx.db.Table(table)
	if err != nil {
		return err
	}
	old, ok := t.Get(keyVals...)
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoRow, table)
	}
	if err := t.delete(keyVals, true, false); err != nil {
		return err
	}
	tx.undo = append(tx.undo, func() error { return t.insert(old, true, false) })
	tx.ops = append(tx.ops, LoggedOp{Table: table, Op: OpDelete, Key: append([]any(nil), keyVals...)})
	return nil
}

// Commit finalizes the transaction: its buffered ops are handed to the
// DB's mutation logger as one atomic unit, then the undo log is
// discarded. A logging error is returned but the in-memory changes
// stand (the caller decides whether lost durability is fatal).
func (tx *Tx) Commit() error {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	if tx.done {
		return ErrTxDone
	}
	tx.done = true
	tx.undo = nil
	ops := tx.ops
	tx.ops = nil
	if len(ops) > 0 {
		if l := tx.db.currentLogger(); l != nil {
			return l.LogTx(ops)()
		}
	}
	return nil
}

// Rollback undoes every mutation performed through the transaction, in
// reverse order. It returns the first undo error encountered (the
// remaining undos still run).
func (tx *Tx) Rollback() error {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	if tx.done {
		return ErrTxDone
	}
	tx.done = true
	var firstErr error
	for i := len(tx.undo) - 1; i >= 0; i-- {
		if err := tx.undo[i](); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	tx.undo = nil
	tx.ops = nil
	return firstErr
}

// keyValsOf extracts the primary key values of r in schema order.
func (t *Table) keyValsOf(r Row) ([]any, error) {
	out := make([]any, len(t.schema.Key))
	for i, kc := range t.schema.Key {
		v, ok := r[kc]
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrMissingKey, kc)
		}
		out[i] = v
	}
	return out, nil
}
