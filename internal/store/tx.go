package store

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/trace"
)

// Tx is a device-local multi-table transaction. The SyD linking module
// uses it to make "update my calendar + update my link table" atomic on
// one device; cross-device atomicity is the job of negotiation links,
// not of this type.
//
// A Tx buffers its mutations: nothing touches the database until
// Commit. Each op validates at call time against the table state
// combined with the tx's own buffered ops (read-your-writes), so an
// insert-then-update of the same row inside one tx works and a
// duplicate insert fails immediately. Commit locks every involved
// table (in sorted name order), re-validates the buffer against the
// then-current state, applies every op, and hands the buffer to the
// DB's MutationLogger as ONE atomic unit while still holding the
// locks — the unit's log position therefore matches its apply position
// for every row it touched, and a checkpoint snapshot can never
// observe a half-applied transaction that is not also fully in the
// log. If a concurrent mutation invalidated the buffer (a row the tx
// updates was deleted, a key it inserts was taken), Commit applies
// NOTHING and returns the conflict. Rollback simply discards the
// buffer, so a rolled-back tx leaves no trace in memory or in the log.
//
// Before triggers fire at op-record time (and may veto the op); After
// triggers fire once Commit has applied the unit.
type Tx struct {
	db   *DB
	mu   sync.Mutex
	done bool
	ops  []LoggedOp
	// overlay is the read-your-writes view: per table, encoded key →
	// pending row (nil = deleted by this tx, absent = untouched).
	overlay map[string]map[rowKey]Row
	tables  map[string]*Table
}

// Begin starts a transaction.
func (db *DB) Begin() *Tx {
	return &Tx{
		db:      db,
		overlay: make(map[string]map[rowKey]Row),
		tables:  make(map[string]*Table),
	}
}

// effective returns the row at key k as this tx sees it: the buffered
// state when the tx already touched it, the committed row otherwise.
func (tx *Tx) effective(t *Table, k rowKey) (Row, bool) {
	if ov, ok := tx.overlay[t.schema.Name]; ok {
		if r, touched := ov[k]; touched {
			if r == nil {
				return nil, false
			}
			return r.Clone(), true
		}
	}
	t.mu.RLock()
	r, ok := t.rows[k]
	t.mu.RUnlock()
	if !ok {
		return nil, false
	}
	return r.Clone(), true
}

// record buffers one validated op and its overlay effect.
func (tx *Tx) record(t *Table, k rowKey, pending Row, op LoggedOp) {
	name := t.schema.Name
	ov := tx.overlay[name]
	if ov == nil {
		ov = make(map[rowKey]Row)
		tx.overlay[name] = ov
	}
	ov[k] = pending
	tx.tables[name] = t
	tx.ops = append(tx.ops, op)
}

// Insert buffers an insert of r into the named table.
func (tx *Tx) Insert(table string, r Row) error {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	if tx.done {
		return ErrTxDone
	}
	t, err := tx.db.Table(table)
	if err != nil {
		return err
	}
	if err := t.checkTypes(r, true); err != nil {
		return err
	}
	row := r.Clone()
	k, err := t.keyOf(row)
	if err != nil {
		return err
	}
	if _, exists := tx.effective(t, k); exists {
		return fmt.Errorf("%w: %s[%s]", ErrDupKey, t.schema.Name, k)
	}
	if err := t.fire(Before, OpInsert, nil, row.Clone()); err != nil {
		return err
	}
	tx.record(t, k, row, LoggedOp{Table: table, Op: OpInsert, Row: row.Clone()})
	return nil
}

// Update buffers an update of the row identified by keyVals.
func (tx *Tx) Update(table string, changes Row, keyVals ...any) error {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	if tx.done {
		return ErrTxDone
	}
	t, err := tx.db.Table(table)
	if err != nil {
		return err
	}
	if err := t.checkTypes(changes, false); err != nil {
		return err
	}
	for _, kc := range t.schema.Key {
		if _, ok := changes[kc]; ok {
			return fmt.Errorf("%w: %q", ErrKeyImmutable, kc)
		}
	}
	k, err := t.keyFromVals(keyVals)
	if err != nil {
		return err
	}
	old, ok := tx.effective(t, k)
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoRow, table)
	}
	next := old.Clone()
	for c, v := range changes {
		next[c] = v
	}
	if err := t.fire(Before, OpUpdate, old, next.Clone()); err != nil {
		return err
	}
	tx.record(t, k, next, LoggedOp{Table: table, Op: OpUpdate, Row: changes.Clone(), Key: append([]any(nil), keyVals...)})
	return nil
}

// Delete buffers a delete of the row identified by keyVals.
func (tx *Tx) Delete(table string, keyVals ...any) error {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	if tx.done {
		return ErrTxDone
	}
	t, err := tx.db.Table(table)
	if err != nil {
		return err
	}
	k, err := t.keyFromVals(keyVals)
	if err != nil {
		return err
	}
	old, ok := tx.effective(t, k)
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoRow, table)
	}
	if err := t.fire(Before, OpDelete, old, nil); err != nil {
		return err
	}
	tx.record(t, k, nil, LoggedOp{Table: table, Op: OpDelete, Key: append([]any(nil), keyVals...)})
	return nil
}

// firedOp remembers what a committed op did, for After triggers.
type firedOp struct {
	t        *Table
	op       Op
	old, new Row
}

// Commit applies the buffered ops atomically and hands them to the
// DB's mutation logger as one unit, all under the locks of every
// involved table. On a conflict with a concurrent mutation nothing is
// applied and the conflict is returned. A logging (durability) error
// is returned but the in-memory changes stand — the caller decides
// whether lost durability is fatal.
func (tx *Tx) Commit() error {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	if tx.done {
		return ErrTxDone
	}
	tx.done = true
	ops := tx.ops
	tx.ops, tx.overlay = nil, nil
	if len(ops) == 0 {
		return nil
	}

	// Fixed lock order (sorted table names) so concurrent commits
	// cannot deadlock.
	names := make([]string, 0, len(tx.tables))
	for n := range tx.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		tx.tables[n].mu.Lock()
	}
	unlock := func() {
		for i := len(names) - 1; i >= 0; i-- {
			tx.tables[names[i]].mu.Unlock()
		}
	}

	if err := validateOpsLocked(tx.tables, ops); err != nil {
		unlock()
		return fmt.Errorf("store: commit conflict: %w", err)
	}
	fired := make([]firedOp, 0, len(ops))
	for _, op := range ops {
		t := tx.tables[op.Table]
		old, new := t.applyOpLocked(op)
		fired = append(fired, firedOp{t: t, op: op.Op, old: old, new: new})
	}
	// Enqueue the unit while the table locks are still held: the log
	// order of these rows is now exactly their apply order relative to
	// any concurrent direct mutation.
	var ack Ack
	if l := tx.db.currentLogger(); l != nil {
		ack = l.LogTx(ops)
	}
	unlock()

	var err error
	if ack != nil {
		err = ack()
	}
	for _, f := range fired {
		if ferr := f.t.fire(After, f.op, f.old, f.new); ferr != nil && err == nil {
			err = ferr
		}
	}
	return err
}

// CommitCtx is Commit under a trace: when ctx carries a span a
// "store.commit" child covers validation, apply, and the durability
// ack, annotated with the op count. Commit itself has no context
// parameter, so callers on a traced path use this variant.
func (tx *Tx) CommitCtx(ctx context.Context) error {
	_, span := trace.Start(ctx, "store.commit")
	if span == nil {
		return tx.Commit()
	}
	tx.mu.Lock()
	n := len(tx.ops)
	tx.mu.Unlock()
	span.Annotate(trace.Int("ops", n))
	err := tx.Commit()
	span.FinishErr(err)
	return err
}

// validateOpsLocked replays the buffer against the current (locked)
// table state without mutating anything, so Commit is all-or-nothing
// even when concurrent mutations ran between op record time and
// Commit. Caller holds every involved table's write lock.
func validateOpsLocked(tables map[string]*Table, ops []LoggedOp) error {
	view := make(map[string]map[rowKey]Row)
	for _, op := range ops {
		t := tables[op.Table]
		ov := view[op.Table]
		if ov == nil {
			ov = make(map[rowKey]Row)
			view[op.Table] = ov
		}
		var k rowKey
		var err error
		if op.Op == OpInsert {
			k, err = t.keyOf(op.Row)
		} else {
			k, err = t.keyFromVals(op.Key)
		}
		if err != nil {
			return err
		}
		cur, touched := ov[k]
		if !touched {
			cur = t.rows[k]
		}
		switch op.Op {
		case OpInsert:
			if cur != nil {
				return fmt.Errorf("%w: %s[%s]", ErrDupKey, op.Table, k)
			}
			ov[k] = op.Row
		case OpUpdate:
			if cur == nil {
				return fmt.Errorf("%w: %s[%s]", ErrNoRow, op.Table, k)
			}
			next := cur.Clone()
			for c, v := range op.Row {
				next[c] = v
			}
			ov[k] = next
		case OpDelete:
			if cur == nil {
				return fmt.Errorf("%w: %s[%s]", ErrNoRow, op.Table, k)
			}
			ov[k] = nil
		}
	}
	return nil
}

// Rollback discards the buffered mutations. Nothing was applied and
// nothing is logged.
func (tx *Tx) Rollback() error {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	if tx.done {
		return ErrTxDone
	}
	tx.done = true
	tx.ops, tx.overlay = nil, nil
	return nil
}

// keyValsOf extracts the primary key values of r in schema order.
func (t *Table) keyValsOf(r Row) ([]any, error) {
	out := make([]any, len(t.schema.Key))
	for i, kc := range t.schema.Key {
		v, ok := r[kc]
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrMissingKey, kc)
		}
		out[i] = v
	}
	return out, nil
}
