package store

import (
	"bytes"
	"errors"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestCSVRoundTrip(t *testing.T) {
	tab := newCalTable(t)
	ts := time.Date(2003, 4, 22, 14, 0, 0, 0, time.UTC)
	for h := int64(9); h < 12; h++ {
		r := slotRow("2003-04-22", h, "free")
		r["updated"] = ts
		r["priority"] = h
		r["locked"] = h%2 == 0
		if err := tab.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := tab.ExportCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "day,hour,status,meeting,priority,locked,updated\n") {
		t.Fatalf("header wrong:\n%s", out)
	}

	db2 := NewDB()
	tab2 := db2.MustCreateTable(calendarSchema())
	if err := tab2.ImportCSV(strings.NewReader(out)); err != nil {
		t.Fatal(err)
	}
	if tab2.Count() != 3 {
		t.Fatalf("count = %d", tab2.Count())
	}
	r, ok := tab2.Get("2003-04-22", int64(10))
	if !ok {
		t.Fatal("row lost")
	}
	if r["priority"] != int64(10) || r["locked"] != true {
		t.Fatalf("row = %v", r)
	}
	if got := r["updated"].(time.Time); !got.Equal(ts) {
		t.Fatalf("updated = %v", got)
	}
}

func TestCSVImportUpsert(t *testing.T) {
	tab := newCalTable(t)
	if err := tab.Insert(slotRow("d", 9, "free")); err != nil {
		t.Fatal(err)
	}
	csvIn := "day,hour,status\nd,9,reserved\nd,10,free\n"
	if err := tab.ImportCSV(strings.NewReader(csvIn)); err != nil {
		t.Fatal(err)
	}
	r, _ := tab.Get("d", int64(9))
	if r["status"] != "reserved" {
		t.Fatalf("status = %v", r["status"])
	}
	if tab.Count() != 2 {
		t.Fatalf("count = %d", tab.Count())
	}
}

func TestCSVImportErrors(t *testing.T) {
	tab := newCalTable(t)
	cases := []struct {
		name, in string
	}{
		{"unknown column", "day,bogus\nd,1\n"},
		{"bad int", "day,hour\nd,nine\n"},
		{"missing key", "status\nfree\n"},
		{"bad bool", "day,hour,locked\nd,9,maybe\n"},
		{"bad time", "day,hour,updated\nd,9,notatime\n"},
	}
	for _, c := range cases {
		db := NewDB()
		tt := db.MustCreateTable(calendarSchema())
		if err := tt.ImportCSV(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: import succeeded", c.name)
		}
		_ = tab
	}
}

func TestCSVEmptyValuesDecodeToZero(t *testing.T) {
	tab := newCalTable(t)
	in := "day,hour,status,priority,locked,updated\nd,9,,,,\n"
	if err := tab.ImportCSV(strings.NewReader(in)); err != nil {
		t.Fatal(err)
	}
	r, _ := tab.Get("d", int64(9))
	if r["priority"] != int64(0) || r["locked"] != false {
		t.Fatalf("row = %v", r)
	}
	if !r["updated"].(time.Time).IsZero() {
		t.Fatalf("updated = %v", r["updated"])
	}
}

func TestCSVFileSaveLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "calendar.csv")

	tab := newCalTable(t)
	if err := tab.Insert(slotRow("d", 9, "reserved")); err != nil {
		t.Fatal(err)
	}
	if err := tab.SaveCSVFile(path); err != nil {
		t.Fatal(err)
	}

	db2 := NewDB()
	tab2 := db2.MustCreateTable(calendarSchema())
	if err := tab2.LoadCSVFile(path); err != nil {
		t.Fatal(err)
	}
	if tab2.Count() != 1 {
		t.Fatalf("count = %d", tab2.Count())
	}
	// Missing file is fine.
	db3 := NewDB()
	tab3 := db3.MustCreateTable(calendarSchema())
	if err := tab3.LoadCSVFile(filepath.Join(dir, "absent.csv")); err != nil {
		t.Fatal(err)
	}
	if tab3.Count() != 0 {
		t.Fatal("phantom rows")
	}
}

func TestCSVExportDeterministic(t *testing.T) {
	mk := func() string {
		db := NewDB()
		tab := db.MustCreateTable(calendarSchema())
		for _, h := range []int64{12, 9, 15, 10} {
			if err := tab.Insert(slotRow("d", h, "free")); err != nil {
				t.Fatal(err)
			}
		}
		var buf bytes.Buffer
		if err := tab.ExportCSV(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if mk() != mk() {
		t.Fatal("export not deterministic")
	}
}

func TestCSVHeaderGarbage(t *testing.T) {
	tab := newCalTable(t)
	err := tab.ImportCSV(strings.NewReader(""))
	if err == nil {
		t.Fatal("empty input accepted")
	}
	var bad error = err
	_ = bad
	if errors.Is(err, ErrBadColumn) {
		t.Fatal("empty input misclassified as bad column")
	}
}
