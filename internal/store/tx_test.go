package store

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

func twoTableDB(t *testing.T) (*DB, *Table, *Table) {
	t.Helper()
	db := NewDB()
	cal := db.MustCreateTable(calendarSchema())
	links := db.MustCreateTable(Schema{
		Name: "links",
		Columns: []Column{
			{Name: "id", Type: String},
			{Name: "kind", Type: String},
			{Name: "prio", Type: Int},
		},
		Key: []string{"id"},
	})
	return db, cal, links
}

func TestTxCommit(t *testing.T) {
	db, cal, links := twoTableDB(t)
	tx := db.Begin()
	if err := tx.Insert("calendar", slotRow("d", 9, "reserved")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert("links", Row{"id": "L1", "kind": "negotiation-and", "prio": int64(5)}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if cal.Count() != 1 || links.Count() != 1 {
		t.Fatalf("counts = %d, %d", cal.Count(), links.Count())
	}
	if err := tx.Commit(); !errors.Is(err, ErrTxDone) {
		t.Fatalf("double commit: %v", err)
	}
}

func TestTxRollbackUndoesEverything(t *testing.T) {
	db, cal, links := twoTableDB(t)
	if err := cal.Insert(slotRow("d", 8, "busy")); err != nil {
		t.Fatal(err)
	}
	if err := links.Insert(Row{"id": "L0", "kind": "subscription", "prio": int64(1)}); err != nil {
		t.Fatal(err)
	}

	tx := db.Begin()
	if err := tx.Insert("calendar", slotRow("d", 9, "reserved")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Update("calendar", Row{"status": "reserved"}, "d", int64(8)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Delete("links", "L0"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}

	if _, ok := cal.Get("d", int64(9)); ok {
		t.Fatal("inserted row survived rollback")
	}
	got, _ := cal.Get("d", int64(8))
	if got["status"] != "busy" {
		t.Fatalf("update not undone: %v", got["status"])
	}
	if _, ok := links.Get("L0"); !ok {
		t.Fatal("deleted row not restored")
	}
	if err := tx.Rollback(); !errors.Is(err, ErrTxDone) {
		t.Fatalf("double rollback: %v", err)
	}
}

func TestTxRollbackReverseOrder(t *testing.T) {
	// Insert then update the same row inside one tx: rollback must
	// undo the update first, then the insert, leaving no row.
	db, cal, _ := twoTableDB(t)
	tx := db.Begin()
	if err := tx.Insert("calendar", slotRow("d", 9, "free")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Update("calendar", Row{"status": "reserved"}, "d", int64(9)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if cal.Count() != 0 {
		t.Fatalf("count = %d after rollback", cal.Count())
	}
}

func TestTxOperationsAfterDone(t *testing.T) {
	db, _, _ := twoTableDB(t)
	tx := db.Begin()
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert("calendar", slotRow("d", 9, "free")); !errors.Is(err, ErrTxDone) {
		t.Fatalf("insert after done: %v", err)
	}
	if err := tx.Update("calendar", Row{"status": "x"}, "d", int64(9)); !errors.Is(err, ErrTxDone) {
		t.Fatalf("update after done: %v", err)
	}
	if err := tx.Delete("calendar", "d", int64(9)); !errors.Is(err, ErrTxDone) {
		t.Fatalf("delete after done: %v", err)
	}
}

func TestTxErrorsPropagate(t *testing.T) {
	db, cal, _ := twoTableDB(t)
	if err := cal.Insert(slotRow("d", 9, "free")); err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	if err := tx.Insert("calendar", slotRow("d", 9, "free")); !errors.Is(err, ErrDupKey) {
		t.Fatalf("dup insert: %v", err)
	}
	if err := tx.Update("nope", Row{"x": "y"}, "k"); !errors.Is(err, ErrNoTable) {
		t.Fatalf("bad table: %v", err)
	}
	if err := tx.Delete("calendar", "d", int64(99)); !errors.Is(err, ErrNoRow) {
		t.Fatalf("missing row: %v", err)
	}
	// Failed ops added no undo entries; rollback is a no-op.
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if _, ok := cal.Get("d", int64(9)); !ok {
		t.Fatal("pre-existing row disturbed")
	}
}

func TestTxReadYourWrites(t *testing.T) {
	// A tx sees its own buffered ops: insert → update → delete of the
	// same row works, and after an in-tx delete the key is free again.
	db, cal, _ := twoTableDB(t)
	tx := db.Begin()
	if err := tx.Insert("calendar", slotRow("d", 9, "free")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Update("calendar", Row{"status": "reserved"}, "d", int64(9)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert("calendar", slotRow("d", 9, "again")); !errors.Is(err, ErrDupKey) {
		t.Fatalf("dup of own insert: %v", err)
	}
	if err := tx.Delete("calendar", "d", int64(9)); err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert("calendar", slotRow("d", 9, "reborn")); err != nil {
		t.Fatalf("insert after own delete: %v", err)
	}
	// Nothing is visible outside the tx until Commit.
	if cal.Count() != 0 {
		t.Fatalf("buffered ops leaked: %d rows", cal.Count())
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	got, ok := cal.Get("d", int64(9))
	if !ok || got["status"] != "reborn" {
		t.Fatalf("committed row = %v, %v", got, ok)
	}
}

func TestTxCommitConflictAppliesNothing(t *testing.T) {
	// A direct mutation between op record time and Commit invalidates
	// the buffer; Commit must apply none of the tx's ops.
	db, cal, links := twoTableDB(t)
	if err := cal.Insert(slotRow("d", 8, "busy")); err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	if err := tx.Insert("links", Row{"id": "L9", "kind": "subscription", "prio": int64(1)}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Update("calendar", Row{"status": "reserved"}, "d", int64(8)); err != nil {
		t.Fatal(err)
	}
	if err := cal.Delete("d", int64(8)); err != nil { // concurrent writer wins
		t.Fatal(err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrNoRow) {
		t.Fatalf("conflicted commit: %v", err)
	}
	if _, ok := links.Get("L9"); ok {
		t.Fatal("conflicted commit applied part of the tx")
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	db, cal, links := twoTableDB(t)
	ts := time.Date(2003, 4, 22, 14, 30, 0, 0, time.UTC)
	r := slotRow("d", 9, "reserved")
	r["updated"] = ts
	if err := cal.Insert(r); err != nil {
		t.Fatal(err)
	}
	if err := links.Insert(Row{"id": "L1", "kind": "negotiation-or", "prio": int64(3)}); err != nil {
		t.Fatal(err)
	}
	if err := cal.CreateIndex("status"); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := db.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}

	db2 := NewDB()
	if err := db2.Restore(&buf); err != nil {
		t.Fatal(err)
	}
	cal2, err := db2.Table("calendar")
	if err != nil {
		t.Fatal(err)
	}
	got, ok := cal2.Get("d", int64(9))
	if !ok {
		t.Fatal("row lost in round trip")
	}
	if got["status"] != "reserved" {
		t.Fatalf("status = %v", got["status"])
	}
	gotTS, ok := got["updated"].(time.Time)
	if !ok || !gotTS.Equal(ts) {
		t.Fatalf("updated = %v", got["updated"])
	}
	if got["hour"] != int64(9) {
		t.Fatalf("hour restored as %T %v", got["hour"], got["hour"])
	}
	// Index was rebuilt and works.
	if n := len(cal2.SelectEq("status", "reserved")); n != 1 {
		t.Fatalf("indexed select = %d", n)
	}
	links2, err := db2.Table("links")
	if err != nil {
		t.Fatal(err)
	}
	if links2.Count() != 1 {
		t.Fatalf("links count = %d", links2.Count())
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	db := NewDB()
	if err := db.Restore(bytes.NewReader([]byte("not json"))); err == nil {
		t.Fatal("garbage restore succeeded")
	}
	if err := db.Restore(bytes.NewReader([]byte(`{"version":99}`))); err == nil {
		t.Fatal("bad version restore succeeded")
	}
}

func TestRestoreIntoNonEmptyDBConflicts(t *testing.T) {
	db, _, _ := twoTableDB(t)
	var buf bytes.Buffer
	if err := db.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if err := db.Restore(&buf); !errors.Is(err, ErrDupTable) {
		t.Fatalf("err = %v", err)
	}
}
