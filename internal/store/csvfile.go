package store

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"time"
)

// CSV flat-file support: the paper's device stores "may be a
// traditional database ... or may be an ad-hoc data store such as a
// flat file, an EXCEL worksheet or a list repository" (§2). This file
// lets any Table round-trip through a CSV flat file, so a device can
// keep its calendar as a plain text file and still participate in SyD
// coordination — the deviceware encapsulation makes the difference
// invisible to remote callers.

// ExportCSV writes the table as CSV: a header row with column names
// (in schema order) followed by one row per record, sorted by primary
// key for determinism.
func (t *Table) ExportCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	cols := make([]string, len(t.schema.Columns))
	for i, c := range t.schema.Columns {
		cols[i] = c.Name
	}
	if err := cw.Write(cols); err != nil {
		return err
	}
	rows := t.Select(nil)
	keys := make([]string, len(rows))
	byKey := make(map[string]Row, len(rows))
	for i, r := range rows {
		k, err := t.KeyOf(r)
		if err != nil {
			return err
		}
		keys[i] = k
		byKey[k] = r
	}
	sort.Strings(keys)
	for _, k := range keys {
		r := byKey[k]
		rec := make([]string, len(t.schema.Columns))
		for i, c := range t.schema.Columns {
			rec[i] = encodeCSVValue(r[c.Name])
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func encodeCSVValue(v any) string {
	switch x := v.(type) {
	case nil:
		return ""
	case string:
		return x
	case int64:
		return strconv.FormatInt(x, 10)
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	case bool:
		return strconv.FormatBool(x)
	case time.Time:
		return x.Format(time.RFC3339Nano)
	}
	return fmt.Sprintf("%v", v)
}

// ImportCSV reads CSV produced by ExportCSV (or hand-written with the
// same header) into the table, converting each cell to the declared
// column type. Rows whose key already exists are updated.
func (t *Table) ImportCSV(r io.Reader) error {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return fmt.Errorf("store: csv header: %w", err)
	}
	for _, h := range header {
		if _, ok := t.cols[h]; !ok {
			return fmt.Errorf("%w: csv column %q", ErrBadColumn, h)
		}
	}
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("store: csv line %d: %w", line, err)
		}
		row := make(Row, len(header))
		for i, h := range header {
			if i >= len(rec) {
				break
			}
			v, err := decodeCSVValue(t.cols[h], rec[i])
			if err != nil {
				return fmt.Errorf("store: csv line %d column %s: %w", line, h, err)
			}
			row[h] = v
		}
		keyVals, err := t.keyValsOf(row)
		if err != nil {
			return fmt.Errorf("store: csv line %d: %w", line, err)
		}
		if _, exists := t.Get(keyVals...); exists {
			changes := row.Clone()
			for _, kc := range t.schema.Key {
				delete(changes, kc)
			}
			if len(changes) == 0 {
				continue
			}
			if err := t.Update(changes, keyVals...); err != nil {
				return fmt.Errorf("store: csv line %d: %w", line, err)
			}
			continue
		}
		if err := t.Insert(row); err != nil {
			return fmt.Errorf("store: csv line %d: %w", line, err)
		}
	}
}

func decodeCSVValue(ct ColType, s string) (any, error) {
	switch ct {
	case String:
		return s, nil
	case Int:
		if s == "" {
			return int64(0), nil
		}
		return strconv.ParseInt(s, 10, 64)
	case Float:
		if s == "" {
			return float64(0), nil
		}
		return strconv.ParseFloat(s, 64)
	case Bool:
		if s == "" {
			return false, nil
		}
		return strconv.ParseBool(s)
	case Time:
		if s == "" {
			return time.Time{}, nil
		}
		return time.Parse(time.RFC3339Nano, s)
	}
	return nil, ErrBadType
}

// SaveCSVFile writes the table to path atomically (write temp,
// rename).
func (t *Table) SaveCSVFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := t.ExportCSV(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadCSVFile reads path into the table; a missing file is not an
// error (fresh device).
func (t *Table) LoadCSVFile(path string) error {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	return t.ImportCSV(f)
}
