package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

// snapshotRows captures a table's content keyed by primary key.
func snapshotRows(t *Table) map[string]Row {
	out := map[string]Row{}
	for _, r := range t.Select(nil) {
		k, _ := t.KeyOf(r)
		out[k] = r
	}
	return out
}

// TestTxRollbackPropertyRestoresExactState: apply a random sequence of
// inserts/updates/deletes through a transaction and roll it back — the
// table must be byte-for-byte identical to its state before Begin.
func TestTxRollbackPropertyRestoresExactState(t *testing.T) {
	f := func(seed int64, opsRaw []uint8) bool {
		if len(opsRaw) > 40 {
			opsRaw = opsRaw[:40]
		}
		rng := rand.New(rand.NewSource(seed))
		db := NewDB()
		tab := db.MustCreateTable(calendarSchema())
		// Seed some committed rows.
		for h := int64(0); h < 6; h++ {
			if err := tab.Insert(slotRow("d", h, fmt.Sprintf("s%d", rng.Intn(3)))); err != nil {
				return false
			}
		}
		before := snapshotRows(tab)

		tx := db.Begin()
		for _, op := range opsRaw {
			h := int64(op % 12) // half exist, half don't
			switch op % 3 {
			case 0:
				_ = tx.Insert("calendar", slotRow("d", h, "txrow"))
			case 1:
				_ = tx.Update("calendar", Row{"status": fmt.Sprintf("u%d", op)}, "d", h)
			case 2:
				_ = tx.Delete("calendar", "d", h)
			}
		}
		if err := tx.Rollback(); err != nil {
			return false
		}
		after := snapshotRows(tab)
		return reflect.DeepEqual(before, after)
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(31))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotRestorePropertyIdentity: snapshot/restore preserves every
// row of a randomly populated database.
func TestSnapshotRestorePropertyIdentity(t *testing.T) {
	f := func(hours []uint8, statuses []uint8) bool {
		db := NewDB()
		tab := db.MustCreateTable(calendarSchema())
		seen := map[int64]bool{}
		for i, h := range hours {
			k := int64(h)
			if seen[k] {
				continue
			}
			seen[k] = true
			st := "free"
			if i < len(statuses) {
				st = fmt.Sprintf("s%d", statuses[i]%5)
			}
			r := slotRow("d", k, st)
			r["updated"] = time.Date(2003, 4, int(h%27)+1, 0, 0, 0, 0, time.UTC)
			if err := tab.Insert(r); err != nil {
				return false
			}
		}
		var buf writerBuffer
		if err := db.Snapshot(&buf); err != nil {
			return false
		}
		db2 := NewDB()
		if err := db2.Restore(&buf); err != nil {
			return false
		}
		tab2, err := db2.Table("calendar")
		if err != nil {
			return false
		}
		return reflect.DeepEqual(snapshotRows(tab), snapshotRows(tab2))
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(37))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestCSVRoundTripProperty: export/import preserves every row.
func TestCSVRoundTripProperty(t *testing.T) {
	f := func(hours []uint8) bool {
		db := NewDB()
		tab := db.MustCreateTable(calendarSchema())
		seen := map[int64]bool{}
		for _, h := range hours {
			k := int64(h)
			if seen[k] {
				continue
			}
			seen[k] = true
			r := slotRow("d", k, fmt.Sprintf("s-%d", h))
			if err := tab.Insert(r); err != nil {
				return false
			}
		}
		var buf writerBuffer
		if err := tab.ExportCSV(&buf); err != nil {
			return false
		}
		db2 := NewDB()
		tab2 := db2.MustCreateTable(calendarSchema())
		if err := tab2.ImportCSV(&buf); err != nil {
			return false
		}
		return reflect.DeepEqual(snapshotRows(tab), snapshotRows(tab2))
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(41))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// writerBuffer aliases bytes.Buffer for the property closures.
type writerBuffer = bytes.Buffer
