package store

import "fmt"

// Mutation logging: the hook the durability subsystem (internal/wal)
// attaches to. Every committed mutation — DDL and row changes — flows
// through the DB's MutationLogger exactly once, in application order,
// so a write-ahead log can make the in-memory store crash-safe without
// the store importing any I/O code.
//
// Framing rules:
//   - A direct Table.Insert/Update/Delete logs a one-op unit.
//   - A Tx buffers its ops and logs them as a single atomic unit at
//     Commit, applied and enqueued while every involved table's lock
//     is held; a rolled-back Tx applies and logs nothing.
//   - DDL (CreateTable, CreateIndex) is logged as it commits.
//   - Replay via ApplyLogged/ApplyDDL* bypasses both triggers and the
//     logger, so recovery never re-logs or double-fires.
//
// Logging is two-phase so a write-ahead log can group-commit: the
// LogTx CALL runs while the mutated table's lock is still held, which
// fixes the log order of same-row mutations to their apply order; it
// must only assign a sequence number and enqueue (no I/O). The
// returned Ack is invoked after the lock is released and blocks until
// the unit is durable, letting many goroutines share one fsync.

// LoggedOp is one committed row mutation.
//
//   - OpInsert: Row is the full inserted row; Key is nil.
//   - OpUpdate: Row holds only the changed columns; Key is the primary
//     key values in schema order.
//   - OpDelete: Row is nil; Key is the primary key values.
type LoggedOp struct {
	Table string
	Op    Op
	Row   Row
	Key   []any
}

// Ack blocks until the corresponding log unit is durable (per the
// log's sync policy) and reports the outcome. Call it at most once.
type Ack func() error

// MutationLogger receives committed mutations. Implementations must be
// safe for concurrent use and must not perform blocking I/O inside the
// Log* calls themselves (they run under table locks) — durability is
// awaited via the returned Ack. An Ack error is surfaced to the
// mutating caller (the in-memory change stands — the caller decides
// whether a durability failure is fatal).
type MutationLogger interface {
	// LogDDLTable records a committed CreateTable.
	LogDDLTable(s Schema) Ack
	// LogDDLIndex records a committed CreateIndex.
	LogDDLIndex(table, col string) Ack
	// LogTx records one atomic unit of row mutations (a single direct
	// mutation, or every op of a committed Tx, in application order).
	LogTx(ops []LoggedOp) Ack
}

// loggerBox wraps the interface so atomic.Pointer has a concrete type.
type loggerBox struct{ l MutationLogger }

// SetLogger attaches (or, with nil, detaches) the mutation logger.
// Attach it after recovery has replayed the log and before application
// traffic starts; mutations in flight during the swap may or may not
// be logged.
func (db *DB) SetLogger(l MutationLogger) {
	if l == nil {
		db.logger.Store(nil)
		return
	}
	db.logger.Store(&loggerBox{l: l})
}

// currentLogger returns the attached logger, or nil.
func (db *DB) currentLogger() MutationLogger {
	if b := db.logger.Load(); b != nil {
		return b.l
	}
	return nil
}

// logOne enqueues a single-op atomic unit; the caller invokes the
// returned Ack (nil when no logger is attached) outside its locks.
func (db *DB) logOne(op LoggedOp) Ack {
	if l := db.currentLogger(); l != nil {
		return l.LogTx([]LoggedOp{op})
	}
	return nil
}

// ApplyLogged applies one atomic unit of replayed mutations, bypassing
// triggers and the logger. It is the recovery-side twin of
// MutationLogger.LogTx.
func (db *DB) ApplyLogged(ops []LoggedOp) error {
	for _, op := range ops {
		t, err := db.Table(op.Table)
		if err != nil {
			return err
		}
		switch op.Op {
		case OpInsert:
			err = t.insert(op.Row, false, false)
		case OpUpdate:
			err = t.update(op.Row, op.Key, false, false)
		case OpDelete:
			err = t.delete(op.Key, false, false)
		default:
			err = fmt.Errorf("store: apply: unknown op %v", op.Op)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// ApplyDDLTable replays a CreateTable without re-logging it.
func (db *DB) ApplyDDLTable(s Schema) error {
	_, err := db.createTable(s, false)
	return err
}

// ApplyDDLIndex replays a CreateIndex without re-logging it.
func (db *DB) ApplyDDLIndex(table, col string) error {
	t, err := db.Table(table)
	if err != nil {
		return err
	}
	return t.createIndex(col, false)
}

// dropTables removes tables by name (Restore rollback). It is not part
// of the public DDL surface and is never logged.
func (db *DB) dropTables(names []string) {
	db.mu.Lock()
	defer db.mu.Unlock()
	for _, n := range names {
		delete(db.tables, n)
	}
}
