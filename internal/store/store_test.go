package store

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func calendarSchema() Schema {
	return Schema{
		Name: "calendar",
		Columns: []Column{
			{Name: "day", Type: String},
			{Name: "hour", Type: Int},
			{Name: "status", Type: String},
			{Name: "meeting", Type: String},
			{Name: "priority", Type: Int},
			{Name: "locked", Type: Bool},
			{Name: "updated", Type: Time},
		},
		Key: []string{"day", "hour"},
	}
}

func newCalTable(t *testing.T) *Table {
	t.Helper()
	db := NewDB()
	tab, err := db.CreateTable(calendarSchema())
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func slotRow(day string, hour int64, status string) Row {
	return Row{
		"day": day, "hour": hour, "status": status,
		"meeting": "", "priority": int64(0), "locked": false,
		"updated": time.Date(2003, 4, 22, 0, 0, 0, 0, time.UTC),
	}
}

func TestCreateTableValidation(t *testing.T) {
	db := NewDB()
	cases := []struct {
		name string
		s    Schema
	}{
		{"empty name", Schema{Columns: []Column{{Name: "a"}}, Key: []string{"a"}}},
		{"no columns", Schema{Name: "t", Key: []string{"a"}}},
		{"no key", Schema{Name: "t", Columns: []Column{{Name: "a"}}}},
		{"bad key col", Schema{Name: "t", Columns: []Column{{Name: "a"}}, Key: []string{"zz"}}},
		{"dup column", Schema{Name: "t", Columns: []Column{{Name: "a"}, {Name: "a"}}, Key: []string{"a"}}},
		{"empty column", Schema{Name: "t", Columns: []Column{{Name: ""}}, Key: []string{""}}},
	}
	for _, c := range cases {
		if _, err := db.CreateTable(c.s); err == nil {
			t.Errorf("%s: CreateTable succeeded", c.name)
		}
	}
}

func TestCreateTableDuplicate(t *testing.T) {
	db := NewDB()
	if _, err := db.CreateTable(calendarSchema()); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable(calendarSchema()); !errors.Is(err, ErrDupTable) {
		t.Fatalf("err = %v", err)
	}
}

func TestTableLookup(t *testing.T) {
	db := NewDB()
	db.MustCreateTable(calendarSchema())
	if _, err := db.Table("calendar"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Table("nope"); !errors.Is(err, ErrNoTable) {
		t.Fatalf("err = %v", err)
	}
	if got := db.TableNames(); len(got) != 1 || got[0] != "calendar" {
		t.Fatalf("TableNames = %v", got)
	}
}

func TestInsertGet(t *testing.T) {
	tab := newCalTable(t)
	if err := tab.Insert(slotRow("2003-04-22", 9, "free")); err != nil {
		t.Fatal(err)
	}
	got, ok := tab.Get("2003-04-22", int64(9))
	if !ok {
		t.Fatal("row not found")
	}
	if got["status"] != "free" {
		t.Fatalf("status = %v", got["status"])
	}
	if _, ok := tab.Get("2003-04-22", int64(10)); ok {
		t.Fatal("phantom row")
	}
}

func TestInsertDuplicateKey(t *testing.T) {
	tab := newCalTable(t)
	if err := tab.Insert(slotRow("d", 9, "free")); err != nil {
		t.Fatal(err)
	}
	if err := tab.Insert(slotRow("d", 9, "busy")); !errors.Is(err, ErrDupKey) {
		t.Fatalf("err = %v", err)
	}
}

func TestInsertTypeChecking(t *testing.T) {
	tab := newCalTable(t)
	r := slotRow("d", 9, "free")
	r["hour"] = "nine" // wrong type
	if err := tab.Insert(r); !errors.Is(err, ErrBadType) {
		t.Fatalf("err = %v", err)
	}
	r = slotRow("d", 9, "free")
	r["bogus"] = 1
	if err := tab.Insert(r); !errors.Is(err, ErrBadColumn) {
		t.Fatalf("err = %v", err)
	}
	r = slotRow("d", 9, "free")
	delete(r, "day")
	if err := tab.Insert(r); !errors.Is(err, ErrMissingKey) {
		t.Fatalf("err = %v", err)
	}
}

func TestGetReturnsClone(t *testing.T) {
	tab := newCalTable(t)
	if err := tab.Insert(slotRow("d", 9, "free")); err != nil {
		t.Fatal(err)
	}
	got, _ := tab.Get("d", int64(9))
	got["status"] = "mutated"
	again, _ := tab.Get("d", int64(9))
	if again["status"] != "free" {
		t.Fatal("caller mutation leaked into the table")
	}
}

func TestUpdate(t *testing.T) {
	tab := newCalTable(t)
	if err := tab.Insert(slotRow("d", 9, "free")); err != nil {
		t.Fatal(err)
	}
	if err := tab.Update(Row{"status": "reserved", "meeting": "M1"}, "d", int64(9)); err != nil {
		t.Fatal(err)
	}
	got, _ := tab.Get("d", int64(9))
	if got["status"] != "reserved" || got["meeting"] != "M1" {
		t.Fatalf("row = %v", got)
	}
	if err := tab.Update(Row{"status": "x"}, "d", int64(10)); !errors.Is(err, ErrNoRow) {
		t.Fatalf("missing row: %v", err)
	}
	if err := tab.Update(Row{"day": "e"}, "d", int64(9)); !errors.Is(err, ErrKeyImmutable) {
		t.Fatalf("key change: %v", err)
	}
	if err := tab.Update(Row{"hour": "x"}, "d", int64(9)); !errors.Is(err, ErrBadType) {
		t.Fatalf("bad type: %v", err)
	}
}

func TestDelete(t *testing.T) {
	tab := newCalTable(t)
	if err := tab.Insert(slotRow("d", 9, "free")); err != nil {
		t.Fatal(err)
	}
	if err := tab.Delete("d", int64(9)); err != nil {
		t.Fatal(err)
	}
	if _, ok := tab.Get("d", int64(9)); ok {
		t.Fatal("row survived delete")
	}
	if err := tab.Delete("d", int64(9)); !errors.Is(err, ErrNoRow) {
		t.Fatalf("double delete: %v", err)
	}
}

func TestSelect(t *testing.T) {
	tab := newCalTable(t)
	for h := int64(9); h < 17; h++ {
		status := "free"
		if h%2 == 0 {
			status = "busy"
		}
		if err := tab.Insert(slotRow("d", h, status)); err != nil {
			t.Fatal(err)
		}
	}
	free := tab.Select(func(r Row) bool { return r["status"] == "free" })
	if len(free) != 4 {
		t.Fatalf("free slots = %d", len(free))
	}
	all := tab.Select(nil)
	if len(all) != 8 || tab.Count() != 8 {
		t.Fatalf("all = %d count = %d", len(all), tab.Count())
	}
}

func TestSelectEqWithAndWithoutIndex(t *testing.T) {
	tab := newCalTable(t)
	for h := int64(0); h < 100; h++ {
		status := "free"
		if h%10 == 0 {
			status = "busy"
		}
		if err := tab.Insert(slotRow("d", h, status)); err != nil {
			t.Fatal(err)
		}
	}
	scan := tab.SelectEq("status", "busy")
	if err := tab.CreateIndex("status"); err != nil {
		t.Fatal(err)
	}
	idx := tab.SelectEq("status", "busy")
	if len(scan) != len(idx) || len(idx) != 10 {
		t.Fatalf("scan=%d idx=%d", len(scan), len(idx))
	}
	// Index stays consistent across update and delete.
	if err := tab.Update(Row{"status": "free"}, "d", int64(0)); err != nil {
		t.Fatal(err)
	}
	if got := len(tab.SelectEq("status", "busy")); got != 9 {
		t.Fatalf("after update: %d", got)
	}
	if err := tab.Delete("d", int64(10)); err != nil {
		t.Fatal(err)
	}
	if got := len(tab.SelectEq("status", "busy")); got != 8 {
		t.Fatalf("after delete: %d", got)
	}
	if err := tab.CreateIndex("nope"); !errors.Is(err, ErrBadColumn) {
		t.Fatalf("bad index col: %v", err)
	}
	if err := tab.CreateIndex("status"); err != nil {
		t.Fatalf("re-creating index should be idempotent: %v", err)
	}
}

func TestBeforeTriggerVetoes(t *testing.T) {
	tab := newCalTable(t)
	tab.OnTrigger(Before, OpInsert, "no-weekends", func(op Op, old, new Row) error {
		if new["day"] == "saturday" {
			return errors.New("no meetings on saturday")
		}
		return nil
	})
	if err := tab.Insert(slotRow("saturday", 9, "free")); err == nil {
		t.Fatal("veto ignored")
	}
	if tab.Count() != 0 {
		t.Fatal("vetoed row was stored")
	}
	if err := tab.Insert(slotRow("monday", 9, "free")); err != nil {
		t.Fatal(err)
	}
}

func TestAfterTriggerObservesChange(t *testing.T) {
	tab := newCalTable(t)
	var fired []string
	tab.OnTrigger(After, OpUpdate, "watch", func(op Op, old, new Row) error {
		fired = append(fired, fmt.Sprintf("%v->%v", old["status"], new["status"]))
		return nil
	})
	if err := tab.Insert(slotRow("d", 9, "free")); err != nil {
		t.Fatal(err)
	}
	if err := tab.Update(Row{"status": "reserved"}, "d", int64(9)); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 1 || fired[0] != "free->reserved" {
		t.Fatalf("fired = %v", fired)
	}
}

func TestAfterTriggerErrorDoesNotRollBack(t *testing.T) {
	tab := newCalTable(t)
	tab.OnTrigger(After, OpInsert, "grumpy", func(op Op, old, new Row) error {
		return errors.New("after failure")
	})
	err := tab.Insert(slotRow("d", 9, "free"))
	if err == nil {
		t.Fatal("after-trigger error not surfaced")
	}
	if _, ok := tab.Get("d", int64(9)); !ok {
		t.Fatal("row missing: after-trigger must not roll back")
	}
}

func TestDropTrigger(t *testing.T) {
	tab := newCalTable(t)
	count := 0
	tab.OnTrigger(After, OpInsert, "counter", func(op Op, old, new Row) error {
		count++
		return nil
	})
	if err := tab.Insert(slotRow("d", 9, "free")); err != nil {
		t.Fatal(err)
	}
	tab.DropTrigger("counter")
	if err := tab.Insert(slotRow("d", 10, "free")); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Fatalf("count = %d", count)
	}
}

func TestTriggerCanReenterTable(t *testing.T) {
	// An After trigger that itself mutates the table (the cascade
	// pattern SyDLinks relies on) must not deadlock.
	tab := newCalTable(t)
	tab.OnTrigger(After, OpDelete, "promote", func(op Op, old, new Row) error {
		if old["hour"] == int64(9) {
			return tab.Update(Row{"status": "promoted"}, "d", int64(10))
		}
		return nil
	})
	if err := tab.Insert(slotRow("d", 9, "busy")); err != nil {
		t.Fatal(err)
	}
	if err := tab.Insert(slotRow("d", 10, "tentative")); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- tab.Delete("d", int64(9)) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("re-entrant trigger deadlocked")
	}
	got, _ := tab.Get("d", int64(10))
	if got["status"] != "promoted" {
		t.Fatalf("status = %v", got["status"])
	}
}

func TestConcurrentInsertsDistinctKeys(t *testing.T) {
	tab := newCalTable(t)
	var wg sync.WaitGroup
	const n = 50
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = tab.Insert(slotRow("d", int64(i), "free"))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if tab.Count() != n {
		t.Fatalf("count = %d", tab.Count())
	}
}

func TestConcurrentInsertSameKeyExactlyOneWins(t *testing.T) {
	tab := newCalTable(t)
	var wg sync.WaitGroup
	var okCount, dupCount sync.Map
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			err := tab.Insert(slotRow("d", 9, "free"))
			if err == nil {
				okCount.Store(i, true)
			} else if errors.Is(err, ErrDupKey) {
				dupCount.Store(i, true)
			}
		}(i)
	}
	wg.Wait()
	oks := 0
	okCount.Range(func(k, v any) bool { oks++; return true })
	if oks != 1 {
		t.Fatalf("winners = %d, want exactly 1", oks)
	}
}

// TestInsertSelectProperty: after inserting a random set of rows with
// distinct keys, Count and Select(nil) agree and every key Gets back.
func TestInsertSelectProperty(t *testing.T) {
	f := func(hours []uint8) bool {
		db := NewDB()
		tab := db.MustCreateTable(calendarSchema())
		seen := map[int64]bool{}
		var keys []int64
		for _, h := range hours {
			k := int64(h)
			if seen[k] {
				continue
			}
			seen[k] = true
			keys = append(keys, k)
			if err := tab.Insert(slotRow("d", k, "free")); err != nil {
				return false
			}
		}
		if tab.Count() != len(keys) || len(tab.Select(nil)) != len(keys) {
			return false
		}
		for _, k := range keys {
			if _, ok := tab.Get("d", k); !ok {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(5))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestCompositeKeyOrdering(t *testing.T) {
	tab := newCalTable(t)
	if err := tab.Insert(slotRow("a", 1, "free")); err != nil {
		t.Fatal(err)
	}
	if err := tab.Insert(slotRow("a", 2, "busy")); err != nil {
		t.Fatal(err)
	}
	if err := tab.Insert(slotRow("b", 1, "busy")); err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, r := range tab.Select(nil) {
		got = append(got, fmt.Sprintf("%v/%v=%v", r["day"], r["hour"], r["status"]))
	}
	sort.Strings(got)
	want := []string{"a/1=free", "a/2=busy", "b/1=busy"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v", got)
		}
	}
}

func BenchmarkInsert(b *testing.B) {
	db := NewDB()
	tab := db.MustCreateTable(calendarSchema())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := tab.Insert(slotRow("d", int64(i), "free")); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSelectEqIndexed(b *testing.B) {
	db := NewDB()
	tab := db.MustCreateTable(calendarSchema())
	for i := 0; i < 10000; i++ {
		status := "free"
		if i%100 == 0 {
			status = "busy"
		}
		if err := tab.Insert(slotRow("d", int64(i), status)); err != nil {
			b.Fatal(err)
		}
	}
	if err := tab.CreateIndex("status"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := tab.SelectEq("status", "busy"); len(got) != 100 {
			b.Fatalf("got %d", len(got))
		}
	}
}
