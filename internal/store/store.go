// Package store is the embedded device database used by every SyD
// device object.
//
// The paper's prototype stored each user's calendar and link tables in
// an Oracle database and used Oracle triggers + Java stored procedures
// for event-based updates (§5.3), while noting that a portable SyD
// should not depend on a specific database and should move triggers to
// the middleware. This package is that portable store: typed tables
// with primary keys, secondary indexes, predicate queries, local
// multi-table transactions, and row-level ECA (event-condition-action)
// triggers that the SyDLinks module attaches to.
package store

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// ColType enumerates the column types the store supports.
type ColType int

// Column types.
const (
	String ColType = iota
	Int
	Bool
	Float
	Time
)

// String implements fmt.Stringer for diagnostics.
func (t ColType) String() string {
	switch t {
	case String:
		return "string"
	case Int:
		return "int"
	case Bool:
		return "bool"
	case Float:
		return "float"
	case Time:
		return "time"
	}
	return fmt.Sprintf("ColType(%d)", int(t))
}

// Column describes one table column.
type Column struct {
	Name string
	Type ColType
}

// Schema describes a table: its columns and the primary-key columns.
type Schema struct {
	Name    string
	Columns []Column
	// Key lists the primary-key column names, in order.
	Key []string
}

// Row is a single record: column name → value. Values must match the
// declared column types (string, int64, bool, float64, time.Time).
type Row map[string]any

// rowKey is the encoded primary key used as the map key for rows.
type rowKey string

// Clone returns a copy of r safe to hand to callers.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	for k, v := range r {
		out[k] = v
	}
	return out
}

// Op enumerates row mutation operations for triggers.
type Op int

// Mutation operations.
const (
	OpInsert Op = iota
	OpUpdate
	OpDelete
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpInsert:
		return "insert"
	case OpUpdate:
		return "update"
	case OpDelete:
		return "delete"
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// Timing says whether a trigger runs before the mutation (and may veto
// it by returning an error) or after it commits to the table.
type Timing int

// Trigger timings.
const (
	Before Timing = iota
	After
)

// TriggerFunc is the action of an ECA trigger. old is nil for inserts,
// new is nil for deletes. A Before trigger returning an error aborts
// the mutation.
type TriggerFunc func(op Op, old, new Row) error

// Errors returned by the store.
var (
	ErrNoTable      = errors.New("store: no such table")
	ErrDupTable     = errors.New("store: table already exists")
	ErrDupKey       = errors.New("store: duplicate primary key")
	ErrNoRow        = errors.New("store: no such row")
	ErrBadColumn    = errors.New("store: unknown column")
	ErrBadType      = errors.New("store: value type does not match column type")
	ErrMissingKey   = errors.New("store: row missing primary-key column")
	ErrKeyImmutable = errors.New("store: primary-key columns cannot be updated")
	ErrNoIndex      = errors.New("store: no such index")
	ErrTxDone       = errors.New("store: transaction already finished")
)

// DB is a device-local database: a set of named tables sharing one
// big lock for multi-table transactions. Safe for concurrent use.
type DB struct {
	mu     sync.RWMutex
	tables map[string]*Table

	// logger, when set, receives every committed mutation (see
	// logger.go). Held in an atomic pointer so the hot mutation path
	// never takes db.mu just to check for it.
	logger atomic.Pointer[loggerBox]
}

// NewDB creates an empty database.
func NewDB() *DB {
	return &DB{tables: make(map[string]*Table)}
}

// CreateTable adds a table with the given schema.
func (db *DB) CreateTable(s Schema) (*Table, error) {
	return db.createTable(s, true)
}

func (db *DB) createTable(s Schema, logit bool) (*Table, error) {
	if err := validateSchema(s); err != nil {
		return nil, err
	}
	db.mu.Lock()
	if _, ok := db.tables[s.Name]; ok {
		db.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrDupTable, s.Name)
	}
	t := newTable(db, s)
	db.tables[s.Name] = t
	db.mu.Unlock()
	if logit {
		if l := db.currentLogger(); l != nil {
			if err := l.LogDDLTable(s)(); err != nil {
				return t, fmt.Errorf("store: log create table %s: %w", s.Name, err)
			}
		}
	}
	return t, nil
}

// MustCreateTable is CreateTable panicking on error; for package init
// of fixed schemas.
func (db *DB) MustCreateTable(s Schema) *Table {
	t, err := db.CreateTable(s)
	if err != nil {
		panic(err)
	}
	return t
}

// Table returns the named table.
func (db *DB) Table(name string) (*Table, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoTable, name)
	}
	return t, nil
}

// TableNames returns all table names, sorted.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func validateSchema(s Schema) error {
	if s.Name == "" {
		return errors.New("store: schema needs a name")
	}
	if len(s.Columns) == 0 {
		return errors.New("store: schema needs at least one column")
	}
	cols := make(map[string]bool, len(s.Columns))
	for _, c := range s.Columns {
		if c.Name == "" {
			return errors.New("store: empty column name")
		}
		if cols[c.Name] {
			return fmt.Errorf("store: duplicate column %q", c.Name)
		}
		cols[c.Name] = true
	}
	if len(s.Key) == 0 {
		return errors.New("store: schema needs a primary key")
	}
	for _, k := range s.Key {
		if !cols[k] {
			return fmt.Errorf("%w: key column %q", ErrBadColumn, k)
		}
	}
	return nil
}

// Table is a single typed table with primary key, secondary indexes,
// and triggers. All methods are safe for concurrent use.
type Table struct {
	db     *DB
	schema Schema
	cols   map[string]ColType

	mu       sync.RWMutex
	rows     map[rowKey]Row
	indexes  map[string]map[any]map[rowKey]struct{}
	triggers map[Timing][]trigger
}

type trigger struct {
	id string
	op Op
	fn TriggerFunc
}

func newTable(db *DB, s Schema) *Table {
	cols := make(map[string]ColType, len(s.Columns))
	for _, c := range s.Columns {
		cols[c.Name] = c.Type
	}
	return &Table{
		db:       db,
		schema:   s,
		cols:     cols,
		rows:     make(map[rowKey]Row),
		indexes:  make(map[string]map[any]map[rowKey]struct{}),
		triggers: make(map[Timing][]trigger),
	}
}

// Schema returns the table schema.
func (t *Table) Schema() Schema { return t.schema }

// keyOf builds the encoded primary key for a row.
func (t *Table) keyOf(r Row) (rowKey, error) {
	if len(t.schema.Key) == 1 {
		v, ok := r[t.schema.Key[0]]
		if !ok {
			return "", fmt.Errorf("%w: %q", ErrMissingKey, t.schema.Key[0])
		}
		// Single string keys (the common shape: users by id, services
		// by name) encode as themselves — skip the builder and the %v
		// formatting round-trip.
		if s, ok := v.(string); ok {
			return rowKey(s), nil
		}
	}
	var buf [64]byte
	b := buf[:0]
	for i, k := range t.schema.Key {
		v, ok := r[k]
		if !ok {
			return "", fmt.Errorf("%w: %q", ErrMissingKey, k)
		}
		if i > 0 {
			b = append(b, 0x1f)
		}
		b = appendKeyVal(b, v)
	}
	return rowKey(b), nil
}

// appendKeyVal encodes one key value. The typed cases must encode
// exactly as fmt's %v does — keyOf and keyFromVals both rely on this
// function so stored keys and probe keys always agree.
func appendKeyVal(b []byte, v any) []byte {
	switch x := v.(type) {
	case string:
		return append(b, x...)
	case int64:
		return strconv.AppendInt(b, x, 10)
	default:
		return fmt.Appendf(b, "%v", v)
	}
}

// KeyOf exposes the encoded key for diagnostics and tests.
func (t *Table) KeyOf(r Row) (string, error) {
	k, err := t.keyOf(r)
	return string(k), err
}

// keyFromVals builds the encoded primary key from key values given in
// schema key order.
func (t *Table) keyFromVals(keyVals []any) (rowKey, error) {
	if len(t.schema.Key) == 1 && len(keyVals) == 1 {
		// Same single-string fast path as keyOf (the encodings must
		// stay identical).
		if s, ok := keyVals[0].(string); ok {
			return rowKey(s), nil
		}
	}
	if len(keyVals) < len(t.schema.Key) {
		return "", fmt.Errorf("%w: need %d key values", ErrMissingKey, len(t.schema.Key))
	}
	var buf [64]byte
	b := buf[:0]
	for i := range t.schema.Key {
		if i > 0 {
			b = append(b, 0x1f)
		}
		b = appendKeyVal(b, keyVals[i])
	}
	return rowKey(b), nil
}

func (t *Table) checkTypes(r Row, requireKey bool) error {
	for name, v := range r {
		ct, ok := t.cols[name]
		if !ok {
			return fmt.Errorf("%w: %q in table %s", ErrBadColumn, name, t.schema.Name)
		}
		if !typeMatches(ct, v) {
			return fmt.Errorf("%w: column %s.%s wants %s, got %T",
				ErrBadType, t.schema.Name, name, ct, v)
		}
	}
	if requireKey {
		for _, k := range t.schema.Key {
			if _, ok := r[k]; !ok {
				return fmt.Errorf("%w: %q", ErrMissingKey, k)
			}
		}
	}
	return nil
}

func typeMatches(ct ColType, v any) bool {
	switch ct {
	case String:
		_, ok := v.(string)
		return ok
	case Int:
		_, ok := v.(int64)
		return ok
	case Bool:
		_, ok := v.(bool)
		return ok
	case Float:
		_, ok := v.(float64)
		return ok
	case Time:
		_, ok := v.(time.Time)
		return ok
	}
	return false
}

// OnTrigger registers an ECA trigger for op at the given timing,
// returning a registration id usable with DropTrigger.
func (t *Table) OnTrigger(timing Timing, op Op, id string, fn TriggerFunc) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.triggers[timing] = append(t.triggers[timing], trigger{id: id, op: op, fn: fn})
}

// DropTrigger removes all triggers registered under id.
func (t *Table) DropTrigger(id string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for timing, list := range t.triggers {
		keep := list[:0]
		for _, tr := range list {
			if tr.id != id {
				keep = append(keep, tr)
			}
		}
		t.triggers[timing] = keep
	}
}

// fire runs the triggers for (timing, op); the table lock must NOT be
// held by the caller for After triggers that re-enter the table, so
// fire is always called outside t.mu.
func (t *Table) fire(timing Timing, op Op, old, new Row) error {
	t.mu.RLock()
	if len(t.triggers[timing]) == 0 {
		t.mu.RUnlock()
		return nil
	}
	list := make([]trigger, len(t.triggers[timing]))
	copy(list, t.triggers[timing])
	t.mu.RUnlock()
	for _, tr := range list {
		if tr.op != op {
			continue
		}
		if err := tr.fn(op, old, new); err != nil {
			if timing == Before {
				return err
			}
			// After triggers cannot veto; their errors are
			// surfaced to the caller but the row change stands.
			return fmt.Errorf("store: after-trigger %s: %w", tr.id, err)
		}
	}
	return nil
}

// hasTrigger reports whether any trigger matches (timing, op), letting
// the mutation paths skip the defensive row clones they would otherwise
// build just to hand to fire. A trigger registered concurrently with a
// mutation may miss that mutation either way — the check only moves the
// race a few instructions earlier.
func (t *Table) hasTrigger(timing Timing, op Op) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, tr := range t.triggers[timing] {
		if tr.op == op {
			return true
		}
	}
	return false
}

// shouldLog reports whether a mutation logger is attached, so callers
// can skip the log-row clone when nothing will consume it. Attaching a
// logger concurrently with a mutation already races with whether that
// mutation is logged; this moves the check outside t.mu, nothing more.
func (t *Table) shouldLog(logit bool) bool {
	return logit && t.db.currentLogger() != nil
}

// CreateIndex builds a secondary index on column col.
func (t *Table) CreateIndex(col string) error {
	return t.createIndex(col, true)
}

func (t *Table) createIndex(col string, logit bool) error {
	if _, ok := t.cols[col]; !ok {
		return fmt.Errorf("%w: %q", ErrBadColumn, col)
	}
	t.mu.Lock()
	if _, ok := t.indexes[col]; ok {
		t.mu.Unlock()
		return nil // idempotent
	}
	idx := make(map[any]map[rowKey]struct{})
	for k, r := range t.rows {
		v := r[col]
		if idx[v] == nil {
			idx[v] = make(map[rowKey]struct{})
		}
		idx[v][k] = struct{}{}
	}
	t.indexes[col] = idx
	t.mu.Unlock()
	if logit {
		if l := t.db.currentLogger(); l != nil {
			if err := l.LogDDLIndex(t.schema.Name, col)(); err != nil {
				return fmt.Errorf("store: log create index %s.%s: %w", t.schema.Name, col, err)
			}
		}
	}
	return nil
}

func (t *Table) indexAdd(k rowKey, r Row) {
	for col, idx := range t.indexes {
		v := r[col]
		if idx[v] == nil {
			idx[v] = make(map[rowKey]struct{})
		}
		idx[v][k] = struct{}{}
	}
}

func (t *Table) indexRemove(k rowKey, r Row) {
	for col, idx := range t.indexes {
		v := r[col]
		if set, ok := idx[v]; ok {
			delete(set, k)
			if len(set) == 0 {
				delete(idx, v)
			}
		}
	}
}

// Insert adds a new row.
func (t *Table) Insert(r Row) error { return t.insert(r, true, true) }

// insert is the shared insert path. fire controls ECA triggers, logit
// controls mutation logging (a Tx logs its unit itself; replay logs
// nothing).
func (t *Table) insert(r Row, fire, logit bool) error {
	if err := t.checkTypes(r, true); err != nil {
		return err
	}
	row := r.Clone()
	k, err := t.keyOf(row)
	if err != nil {
		return err
	}
	if fire && t.hasTrigger(Before, OpInsert) {
		if err := t.fire(Before, OpInsert, nil, row.Clone()); err != nil {
			return err
		}
	}
	logit = t.shouldLog(logit)
	t.mu.Lock()
	if _, exists := t.rows[k]; exists {
		t.mu.Unlock()
		return fmt.Errorf("%w: %s[%s]", ErrDupKey, t.schema.Name, k)
	}
	t.rows[k] = row
	t.indexAdd(k, row)
	var ack Ack
	if logit {
		ack = t.db.logOne(LoggedOp{Table: t.schema.Name, Op: OpInsert, Row: row.Clone()})
	}
	t.mu.Unlock()
	if ack != nil {
		if err := ack(); err != nil {
			return err
		}
	}
	if fire && t.hasTrigger(After, OpInsert) {
		return t.fire(After, OpInsert, nil, row.Clone())
	}
	return nil
}

// Get fetches the row whose primary-key columns equal keyVals (in
// schema key order).
func (t *Table) Get(keyVals ...any) (Row, bool) {
	k, err := t.keyFromVals(keyVals)
	if err != nil {
		return nil, false
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	r, ok := t.rows[k]
	if !ok {
		return nil, false
	}
	return r.Clone(), true
}

// View calls fn with the stored row for keyVals while holding the
// table's read lock, returning false when no row matches. fn sees the
// live row, not a clone — it must not mutate it or retain a reference
// past the call. Read-heavy infrastructure (directory lookups on the
// invocation hot path) uses View to skip Get's defensive copy.
func (t *Table) View(fn func(Row), keyVals ...any) bool {
	k, err := t.keyFromVals(keyVals)
	if err != nil {
		return false
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	r, ok := t.rows[k]
	if !ok {
		return false
	}
	fn(r)
	return true
}

// Has reports whether a row exists for keyVals, without cloning it the
// way Get would.
func (t *Table) Has(keyVals ...any) bool {
	k, err := t.keyFromVals(keyVals)
	if err != nil {
		return false
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	_, ok := t.rows[k]
	return ok
}

// Update applies changes to the row identified by keyVals. Primary-key
// columns cannot change.
func (t *Table) Update(changes Row, keyVals ...any) error {
	return t.update(changes, keyVals, true, true)
}

// update is the shared update path; see insert for fire/logit.
func (t *Table) update(changes Row, keyVals []any, fire, logit bool) error {
	if err := t.checkTypes(changes, false); err != nil {
		return err
	}
	for _, kc := range t.schema.Key {
		if _, ok := changes[kc]; ok {
			return fmt.Errorf("%w: %q", ErrKeyImmutable, kc)
		}
	}
	k, err := t.keyFromVals(keyVals)
	if err != nil {
		return err
	}

	t.mu.RLock()
	cur, ok := t.rows[k]
	var old Row
	if ok {
		old = cur.Clone()
	}
	t.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %s[%s]", ErrNoRow, t.schema.Name, k)
	}
	if fire && t.hasTrigger(Before, OpUpdate) {
		next := old.Clone()
		for c, v := range changes {
			next[c] = v
		}
		if err := t.fire(Before, OpUpdate, old.Clone(), next); err != nil {
			return err
		}
	}
	logit = t.shouldLog(logit)

	t.mu.Lock()
	cur, ok = t.rows[k]
	if !ok {
		t.mu.Unlock()
		return fmt.Errorf("%w: %s[%s]", ErrNoRow, t.schema.Name, k)
	}
	t.indexRemove(k, cur)
	stored := cur.Clone()
	for c, v := range changes {
		stored[c] = v
	}
	t.rows[k] = stored
	t.indexAdd(k, stored)
	var ack Ack
	if logit {
		ack = t.db.logOne(LoggedOp{Table: t.schema.Name, Op: OpUpdate, Row: changes.Clone(), Key: append([]any(nil), keyVals...)})
	}
	t.mu.Unlock()
	if ack != nil {
		if err := ack(); err != nil {
			return err
		}
	}
	if fire && t.hasTrigger(After, OpUpdate) {
		return t.fire(After, OpUpdate, old, stored.Clone())
	}
	return nil
}

// Delete removes the row identified by keyVals.
func (t *Table) Delete(keyVals ...any) error {
	return t.delete(keyVals, true, true)
}

// delete is the shared delete path; see insert for fire/logit.
func (t *Table) delete(keyVals []any, fire, logit bool) error {
	k, err := t.keyFromVals(keyVals)
	if err != nil {
		return err
	}
	t.mu.RLock()
	cur, ok := t.rows[k]
	var old Row
	if ok {
		old = cur.Clone()
	}
	t.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %s[%s]", ErrNoRow, t.schema.Name, k)
	}
	if fire && t.hasTrigger(Before, OpDelete) {
		if err := t.fire(Before, OpDelete, old.Clone(), nil); err != nil {
			return err
		}
	}
	logit = t.shouldLog(logit)
	t.mu.Lock()
	cur, ok = t.rows[k]
	if !ok {
		t.mu.Unlock()
		return fmt.Errorf("%w: %s[%s]", ErrNoRow, t.schema.Name, k)
	}
	delete(t.rows, k)
	t.indexRemove(k, cur)
	var ack Ack
	if logit {
		ack = t.db.logOne(LoggedOp{Table: t.schema.Name, Op: OpDelete, Key: append([]any(nil), keyVals...)})
	}
	t.mu.Unlock()
	if ack != nil {
		if err := ack(); err != nil {
			return err
		}
	}
	if fire {
		return t.fire(After, OpDelete, old, nil)
	}
	return nil
}

// Select returns clones of all rows matching pred (nil pred = all),
// in primary-key order. The deterministic order matters: sweeps and
// cascade deletes iterate Select results, and simulation runs must
// replay identically for a given seed.
func (t *Table) Select(pred func(Row) bool) []Row {
	t.mu.RLock()
	keys := make([]rowKey, 0, len(t.rows))
	for k, r := range t.rows {
		if pred == nil || pred(r) {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := make([]Row, 0, len(keys))
	for _, k := range keys {
		out = append(out, t.rows[k].Clone())
	}
	t.mu.RUnlock()
	return out
}

// SelectEq returns all rows with row[col] == v in primary-key order,
// using a secondary index when one exists and a scan otherwise.
func (t *Table) SelectEq(col string, v any) []Row {
	t.mu.RLock()
	if idx, ok := t.indexes[col]; ok {
		keys := make([]rowKey, 0, len(idx[v]))
		for k := range idx[v] {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		out := make([]Row, 0, len(keys))
		for _, k := range keys {
			out = append(out, t.rows[k].Clone())
		}
		t.mu.RUnlock()
		return out
	}
	t.mu.RUnlock()
	return t.Select(func(r Row) bool { return r[col] == v })
}

// applyOpLocked applies one already-validated op directly to the
// table's maps; the caller holds t.mu (Tx.Commit applies its whole
// buffer under the locks of every involved table). Returns the old and
// new row for After triggers.
func (t *Table) applyOpLocked(op LoggedOp) (old, new Row) {
	switch op.Op {
	case OpInsert:
		row := op.Row.Clone()
		k, _ := t.keyOf(row)
		t.rows[k] = row
		t.indexAdd(k, row)
		return nil, row.Clone()
	case OpUpdate:
		k, _ := t.keyFromVals(op.Key)
		cur := t.rows[k]
		t.indexRemove(k, cur)
		stored := cur.Clone()
		for c, v := range op.Row {
			stored[c] = v
		}
		t.rows[k] = stored
		t.indexAdd(k, stored)
		return cur, stored.Clone()
	case OpDelete:
		k, _ := t.keyFromVals(op.Key)
		cur := t.rows[k]
		delete(t.rows, k)
		t.indexRemove(k, cur)
		return cur, nil
	}
	return nil, nil
}

// Count reports the number of rows.
func (t *Table) Count() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}
