package store

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// Snapshot serialization: a JSON document holding every table's schema
// and rows, so a device can persist its calendar and link databases
// across restarts (the prototype relied on Oracle's durability; we
// provide explicit save/load).
//
// Snapshots are deterministic: tables, indexes, and rows are emitted in
// sorted order (and encoding/json sorts map keys), so two snapshots of
// equal databases are byte-identical. The WAL checkpointer relies on
// this to verify recovery: snapshot(recovered) must equal
// snapshot(reference).

type snapshotDoc struct {
	Version int             `json:"version"`
	Tables  []snapshotTable `json:"tables"`
}

type snapshotTable struct {
	Schema  snapshotSchema   `json:"schema"`
	Rows    []map[string]any `json:"rows"`
	Indexes []string         `json:"indexes"`
}

type snapshotSchema struct {
	Name    string `json:"name"`
	Columns []struct {
		Name string `json:"name"`
		Type int    `json:"type"`
	} `json:"columns"`
	Key []string `json:"key"`
}

// Snapshot writes the entire database to w as JSON. Output is
// deterministic: tables sorted by name, indexes sorted by column, rows
// sorted by encoded primary key.
func (db *DB) Snapshot(w io.Writer) error {
	db.mu.RLock()
	tables := make([]*Table, 0, len(db.tables))
	for _, t := range db.tables {
		tables = append(tables, t)
	}
	db.mu.RUnlock()
	sort.Slice(tables, func(i, j int) bool { return tables[i].schema.Name < tables[j].schema.Name })

	doc := snapshotDoc{Version: 1}
	for _, t := range tables {
		st := snapshotTable{}
		st.Schema.Name = t.schema.Name
		st.Schema.Key = append([]string(nil), t.schema.Key...)
		for _, c := range t.schema.Columns {
			st.Schema.Columns = append(st.Schema.Columns, struct {
				Name string `json:"name"`
				Type int    `json:"type"`
			}{c.Name, int(c.Type)})
		}
		t.mu.RLock()
		for col := range t.indexes {
			st.Indexes = append(st.Indexes, col)
		}
		keys := make([]string, 0, len(t.rows))
		for k := range t.rows {
			keys = append(keys, string(k))
		}
		sort.Strings(keys)
		for _, k := range keys {
			r := t.rows[rowKey(k)]
			enc := make(map[string]any, len(r))
			for c, v := range r {
				enc[c] = EncodeValue(v)
			}
			st.Rows = append(st.Rows, enc)
		}
		t.mu.RUnlock()
		sort.Strings(st.Indexes)
		doc.Tables = append(doc.Tables, st)
	}
	e := json.NewEncoder(w)
	return e.Encode(doc)
}

// Restore loads a Snapshot into a fresh DB. Tables in the snapshot must
// not already exist. On error, every table this call created is dropped
// again, so a failed restore leaves the DB as it found it instead of
// half-populated.
func (db *DB) Restore(r io.Reader) (err error) {
	var doc snapshotDoc
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return fmt.Errorf("store: restore: %w", err)
	}
	if doc.Version != 1 {
		return fmt.Errorf("store: restore: unsupported snapshot version %d", doc.Version)
	}
	var created []string
	defer func() {
		if err != nil {
			db.dropTables(created)
		}
	}()
	for _, st := range doc.Tables {
		s := Schema{Name: st.Schema.Name, Key: st.Schema.Key}
		for _, c := range st.Schema.Columns {
			s.Columns = append(s.Columns, Column{Name: c.Name, Type: ColType(c.Type)})
		}
		t, err := db.CreateTable(s)
		if err != nil {
			return err
		}
		created = append(created, s.Name)
		for _, enc := range st.Rows {
			row := make(Row, len(enc))
			for c, v := range enc {
				ct, ok := t.cols[c]
				if !ok {
					return fmt.Errorf("store: restore: %w: %s.%s", ErrBadColumn, s.Name, c)
				}
				dv, err := DecodeValue(ct, v)
				if err != nil {
					return fmt.Errorf("store: restore %s.%s: %w", s.Name, c, err)
				}
				row[c] = dv
			}
			if err := t.Insert(row); err != nil {
				return err
			}
		}
		for _, col := range st.Indexes {
			if err := t.CreateIndex(col); err != nil {
				return err
			}
		}
	}
	return nil
}

// EncodeValue maps a typed store value to its JSON-safe encoding
// (time.Time becomes RFC3339Nano; everything else passes through). The
// snapshot writer and the WAL record encoder share it.
func EncodeValue(v any) any {
	if ts, ok := v.(time.Time); ok {
		return ts.Format(time.RFC3339Nano)
	}
	return v
}

// DecodeValue coerces a JSON-decoded value back to the column's Go
// type — the inverse of EncodeValue, given the schema's column type.
func DecodeValue(ct ColType, v any) (any, error) {
	switch ct {
	case String:
		s, ok := v.(string)
		if !ok {
			return nil, ErrBadType
		}
		return s, nil
	case Int:
		f, ok := v.(float64)
		if !ok {
			return nil, ErrBadType
		}
		return int64(f), nil
	case Bool:
		b, ok := v.(bool)
		if !ok {
			return nil, ErrBadType
		}
		return b, nil
	case Float:
		f, ok := v.(float64)
		if !ok {
			return nil, ErrBadType
		}
		return f, nil
	case Time:
		s, ok := v.(string)
		if !ok {
			return nil, ErrBadType
		}
		ts, err := time.Parse(time.RFC3339Nano, s)
		if err != nil {
			return nil, err
		}
		return ts, nil
	}
	return nil, ErrBadType
}
