// Package tea implements the Tiny Encryption Algorithm of Wheeler and
// Needham (Fast Software Encryption 1994), the cipher the paper's
// calendar prototype uses to seal user credentials on every request
// (§5.4, reference [22]).
//
// TEA operates on 64-bit blocks under a 128-bit key with 32 rounds
// (64 Feistel half-rounds). The paper says "a 32-bit key is used";
// TEA as published has no 32-bit-key variant, so we implement the
// cited algorithm faithfully (see DESIGN.md substitution table).
//
// Beyond the raw block cipher this package provides CBC mode with
// PKCS#7-style padding so variable-length credential strings can be
// sealed, matching the prototype's "encrypted user id and password
// sent as parameters along with every request".
package tea

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
)

// BlockSize is the TEA block size in bytes.
const BlockSize = 8

// KeySize is the TEA key size in bytes.
const KeySize = 16

// delta is the TEA key schedule constant, derived from the golden ratio.
const delta = 0x9e3779b9

// rounds is the number of full TEA rounds.
const rounds = 32

// Cipher is a TEA block cipher instance for a fixed key.
type Cipher struct {
	k [4]uint32
}

// Errors returned by this package.
var (
	ErrKeySize    = errors.New("tea: key must be exactly 16 bytes")
	ErrBlockSize  = errors.New("tea: input not a multiple of the block size")
	ErrBadPadding = errors.New("tea: invalid padding")
	ErrShort      = errors.New("tea: ciphertext too short")
)

// NewCipher creates a Cipher from a 16-byte key.
func NewCipher(key []byte) (*Cipher, error) {
	if len(key) != KeySize {
		return nil, ErrKeySize
	}
	c := new(Cipher)
	for i := 0; i < 4; i++ {
		c.k[i] = binary.BigEndian.Uint32(key[i*4:])
	}
	return c, nil
}

// KeyFromPassphrase derives a 16-byte key from an arbitrary passphrase
// by repeating/folding it. This mirrors the prototype's pragmatic key
// handling; it is NOT a modern KDF and is documented as such.
func KeyFromPassphrase(pass string) []byte {
	key := make([]byte, KeySize)
	if len(pass) == 0 {
		return key
	}
	for i, b := range []byte(pass) {
		key[i%KeySize] ^= b + byte(i)
	}
	return key
}

// EncryptBlock encrypts exactly one 8-byte block src into dst
// (dst and src may overlap).
func (c *Cipher) EncryptBlock(dst, src []byte) {
	if len(src) < BlockSize || len(dst) < BlockSize {
		panic("tea: EncryptBlock on short buffer")
	}
	v0 := binary.BigEndian.Uint32(src[0:4])
	v1 := binary.BigEndian.Uint32(src[4:8])
	var sum uint32
	for i := 0; i < rounds; i++ {
		sum += delta
		v0 += ((v1 << 4) + c.k[0]) ^ (v1 + sum) ^ ((v1 >> 5) + c.k[1])
		v1 += ((v0 << 4) + c.k[2]) ^ (v0 + sum) ^ ((v0 >> 5) + c.k[3])
	}
	binary.BigEndian.PutUint32(dst[0:4], v0)
	binary.BigEndian.PutUint32(dst[4:8], v1)
}

// DecryptBlock decrypts exactly one 8-byte block src into dst.
func (c *Cipher) DecryptBlock(dst, src []byte) {
	if len(src) < BlockSize || len(dst) < BlockSize {
		panic("tea: DecryptBlock on short buffer")
	}
	v0 := binary.BigEndian.Uint32(src[0:4])
	v1 := binary.BigEndian.Uint32(src[4:8])
	var sum uint32
	for i := 0; i < rounds; i++ { // delta*rounds with uint32 wraparound
		sum += delta
	}
	for i := 0; i < rounds; i++ {
		v1 -= ((v0 << 4) + c.k[2]) ^ (v0 + sum) ^ ((v0 >> 5) + c.k[3])
		v0 -= ((v1 << 4) + c.k[0]) ^ (v1 + sum) ^ ((v1 >> 5) + c.k[1])
		sum -= delta
	}
	binary.BigEndian.PutUint32(dst[0:4], v0)
	binary.BigEndian.PutUint32(dst[4:8], v1)
}

// pad applies PKCS#7-style padding up to BlockSize.
func pad(p []byte) []byte {
	n := BlockSize - len(p)%BlockSize
	out := make([]byte, len(p)+n)
	copy(out, p)
	for i := len(p); i < len(out); i++ {
		out[i] = byte(n)
	}
	return out
}

// unpad strips and validates PKCS#7-style padding.
func unpad(p []byte) ([]byte, error) {
	if len(p) == 0 || len(p)%BlockSize != 0 {
		return nil, ErrBadPadding
	}
	n := int(p[len(p)-1])
	if n == 0 || n > BlockSize || n > len(p) {
		return nil, ErrBadPadding
	}
	for _, b := range p[len(p)-n:] {
		if int(b) != n {
			return nil, ErrBadPadding
		}
	}
	return p[:len(p)-n], nil
}

// Seal encrypts plaintext in CBC mode under a fresh random IV and
// returns IV||ciphertext.
func (c *Cipher) Seal(plaintext []byte) ([]byte, error) {
	iv := make([]byte, BlockSize)
	if _, err := rand.Read(iv); err != nil {
		return nil, fmt.Errorf("tea: iv: %w", err)
	}
	return c.SealWithIV(iv, plaintext)
}

// SealWithIV is Seal with a caller-supplied IV (exactly BlockSize
// bytes); used by tests for determinism.
func (c *Cipher) SealWithIV(iv, plaintext []byte) ([]byte, error) {
	if len(iv) != BlockSize {
		return nil, ErrBlockSize
	}
	pt := pad(plaintext)
	out := make([]byte, BlockSize+len(pt))
	copy(out, iv)
	prev := out[:BlockSize]
	for i := 0; i < len(pt); i += BlockSize {
		blk := out[BlockSize+i : BlockSize+i+BlockSize]
		for j := 0; j < BlockSize; j++ {
			blk[j] = pt[i+j] ^ prev[j]
		}
		c.EncryptBlock(blk, blk)
		prev = blk
	}
	return out, nil
}

// Open decrypts IV||ciphertext produced by Seal and returns the
// plaintext.
func (c *Cipher) Open(sealed []byte) ([]byte, error) {
	if len(sealed) < 2*BlockSize {
		return nil, ErrShort
	}
	ct := sealed[BlockSize:]
	if len(ct)%BlockSize != 0 {
		return nil, ErrBlockSize
	}
	out := make([]byte, len(ct))
	prev := sealed[:BlockSize]
	tmp := make([]byte, BlockSize)
	for i := 0; i < len(ct); i += BlockSize {
		c.DecryptBlock(tmp, ct[i:i+BlockSize])
		for j := 0; j < BlockSize; j++ {
			out[i+j] = tmp[j] ^ prev[j]
		}
		prev = ct[i : i+BlockSize]
	}
	return unpad(out)
}
