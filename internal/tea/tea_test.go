package tea

import (
	"bytes"
	"encoding/hex"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustCipher(t testing.TB, key []byte) *Cipher {
	t.Helper()
	c, err := NewCipher(key)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewCipherKeySize(t *testing.T) {
	if _, err := NewCipher(make([]byte, 15)); !errors.Is(err, ErrKeySize) {
		t.Fatalf("15-byte key: err = %v", err)
	}
	if _, err := NewCipher(make([]byte, 17)); !errors.Is(err, ErrKeySize) {
		t.Fatalf("17-byte key: err = %v", err)
	}
	if _, err := NewCipher(make([]byte, 16)); err != nil {
		t.Fatalf("16-byte key: err = %v", err)
	}
}

// TestKnownVector checks the classic TEA all-zeros test vector:
// key=0, plaintext=0 -> 41ea3a0a 94baa940 (the widely published value).
func TestKnownVector(t *testing.T) {
	c := mustCipher(t, make([]byte, 16))
	src := make([]byte, 8)
	dst := make([]byte, 8)
	c.EncryptBlock(dst, src)
	want, _ := hex.DecodeString("41ea3a0a94baa940")
	if !bytes.Equal(dst, want) {
		t.Fatalf("EncryptBlock(0,0) = %x, want %x", dst, want)
	}
	back := make([]byte, 8)
	c.DecryptBlock(back, dst)
	if !bytes.Equal(back, src) {
		t.Fatalf("decrypt(encrypt(0)) = %x", back)
	}
}

func TestBlockRoundTripProperty(t *testing.T) {
	f := func(key [16]byte, block [8]byte) bool {
		c, err := NewCipher(key[:])
		if err != nil {
			return false
		}
		enc := make([]byte, 8)
		c.EncryptBlock(enc, block[:])
		dec := make([]byte, 8)
		c.DecryptBlock(dec, enc)
		return bytes.Equal(dec, block[:])
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestEncryptionChangesData(t *testing.T) {
	c := mustCipher(t, KeyFromPassphrase("syd-secret"))
	src := []byte("ABCDEFGH")
	dst := make([]byte, 8)
	c.EncryptBlock(dst, src)
	if bytes.Equal(dst, src) {
		t.Fatal("ciphertext equals plaintext")
	}
}

func TestSealOpenRoundTrip(t *testing.T) {
	c := mustCipher(t, KeyFromPassphrase("calendar"))
	for _, msg := range []string{"", "x", "phil:hunter2", "a much longer credential string spanning several TEA blocks"} {
		sealed, err := c.Seal([]byte(msg))
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Open(sealed)
		if err != nil {
			t.Fatalf("Open(%q): %v", msg, err)
		}
		if string(got) != msg {
			t.Fatalf("round trip %q -> %q", msg, got)
		}
	}
}

func TestSealRandomizedIV(t *testing.T) {
	c := mustCipher(t, KeyFromPassphrase("calendar"))
	a, err := c.Seal([]byte("phil:hunter2"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Seal([]byte("phil:hunter2"))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, b) {
		t.Fatal("two Seals of the same plaintext produced identical output (IV reuse)")
	}
}

func TestSealWithIVDeterministic(t *testing.T) {
	c := mustCipher(t, KeyFromPassphrase("calendar"))
	iv := []byte("12345678")
	a, err := c.SealWithIV(iv, []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.SealWithIV(iv, []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("SealWithIV not deterministic")
	}
	if _, err := c.SealWithIV([]byte("short"), []byte("p")); !errors.Is(err, ErrBlockSize) {
		t.Fatalf("short IV: err = %v", err)
	}
}

func TestOpenWrongKeyFails(t *testing.T) {
	c1 := mustCipher(t, KeyFromPassphrase("key-one"))
	c2 := mustCipher(t, KeyFromPassphrase("key-two"))
	sealed, err := c1.Seal([]byte("phil:hunter2"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := c2.Open(sealed)
	if err == nil && bytes.Equal(got, []byte("phil:hunter2")) {
		t.Fatal("wrong key decrypted successfully")
	}
}

func TestOpenCorruptedInputs(t *testing.T) {
	c := mustCipher(t, KeyFromPassphrase("calendar"))
	if _, err := c.Open([]byte("short")); !errors.Is(err, ErrShort) {
		t.Fatalf("short: err = %v", err)
	}
	sealed, err := c.Seal([]byte("phil:hunter2"))
	if err != nil {
		t.Fatal(err)
	}
	// Not a multiple of the block size.
	if _, err := c.Open(sealed[:len(sealed)-1]); err == nil {
		t.Fatal("truncated ciphertext opened")
	}
}

func TestSealOpenProperty(t *testing.T) {
	c := mustCipher(t, KeyFromPassphrase("prop"))
	iv := []byte("abcdefgh")
	f := func(msg []byte) bool {
		sealed, err := c.SealWithIV(iv, msg)
		if err != nil {
			return false
		}
		got, err := c.Open(sealed)
		if err != nil {
			return false
		}
		return bytes.Equal(got, msg)
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestKeyFromPassphrase(t *testing.T) {
	a := KeyFromPassphrase("alpha")
	b := KeyFromPassphrase("beta")
	if bytes.Equal(a, b) {
		t.Fatal("distinct passphrases produced equal keys")
	}
	if len(a) != KeySize {
		t.Fatalf("key len %d", len(a))
	}
	if !bytes.Equal(KeyFromPassphrase("alpha"), a) {
		t.Fatal("KeyFromPassphrase not deterministic")
	}
	if !bytes.Equal(KeyFromPassphrase(""), make([]byte, KeySize)) {
		t.Fatal("empty passphrase should map to zero key")
	}
}

func BenchmarkEncryptBlock(b *testing.B) {
	c, _ := NewCipher(KeyFromPassphrase("bench"))
	src := []byte("ABCDEFGH")
	dst := make([]byte, 8)
	b.ReportAllocs()
	b.SetBytes(BlockSize)
	for i := 0; i < b.N; i++ {
		c.EncryptBlock(dst, src)
	}
}

func BenchmarkSealCredential(b *testing.B) {
	c, _ := NewCipher(KeyFromPassphrase("bench"))
	cred := []byte("phil:hunter2")
	iv := []byte("12345678")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.SealWithIV(iv, cred); err != nil {
			b.Fatal(err)
		}
	}
}
