// Package core assembles the SyD kernel for one device: the listener,
// engine, event handler, and links manager of Fig. 3, wired to the
// shared directory and a transport.
//
// A Node is what the paper calls a "SyD device object host": it owns
// the device's embedded database, publishes its services (links.<user>
// and events.<user> are published automatically), heartbeats the
// directory, and runs the periodic link-expiry sweep that the paper
// assigns to the event handler (§4.2 op 6).
package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/auth"
	"repro/internal/clock"
	"repro/internal/directory"
	"repro/internal/engine"
	"repro/internal/event"
	"repro/internal/links"
	"repro/internal/listener"
	"repro/internal/metrics"
	"repro/internal/offline"
	"repro/internal/replication"
	"repro/internal/store"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/wal"
)

// Config describes a node to start.
type Config struct {
	// User is the device owner's SyD user id (required).
	User string
	// Priority is the user's scheduling priority (§6: "each user is
	// assigned a priority").
	Priority int
	// Net is the transport (TCP or sim) shared by the deployment.
	Net transport.Network
	// DirAddr is the directory server's address.
	DirAddr string
	// ControlPlaneAddr, when set, routes directory traffic through the
	// sharded directory published by the control plane at this address
	// (DirAddr is then ignored). The node pulls the epoch-versioned
	// shard map, routes each directory op to the owning shard, and
	// flushes its route caches the moment a response carries a newer
	// epoch.
	ControlPlaneAddr string
	// ListenAddr is the address to bind; empty lets the transport
	// pick ("sim-N" on the simulated network, a free port on TCP).
	ListenAddr string
	// Clock drives heartbeats and expiry sweeps; nil = system clock.
	Clock clock.Clock
	// Auth, when set, enables server-side credential checks for
	// objects that set RequireAuth.
	Auth *auth.Authenticator
	// HeartbeatEvery enables periodic directory heartbeats when > 0.
	HeartbeatEvery time.Duration
	// ExpireEvery enables the periodic link-expiry sweep when > 0.
	ExpireEvery time.Duration
	// DirCacheTTL enables directory lookup caching when > 0.
	DirCacheTTL time.Duration
	// RouteCacheTTL, when > 0, installs the engine's directory route
	// cache so warm invocations skip directory resolution entirely.
	RouteCacheTTL time.Duration
	// Metrics, when set, records per-method client and server metrics
	// through the interceptor/middleware chains.
	Metrics *metrics.Registry
	// Tracer, when set, records distributed trace spans through the
	// interceptor/middleware chains, the links negotiation machinery,
	// and the WAL flusher. When nil and process-wide tracing is on
	// (trace.EnableDefault), a per-node tracer is created and attached
	// to trace.Default() automatically.
	Tracer *trace.Tracer
	// Interceptors are appended to the engine's client chain,
	// outermost first.
	Interceptors []engine.Interceptor
	// Middleware is appended to the listener's server chain,
	// outermost first.
	Middleware []listener.Middleware
	// PublishIntrospection publishes the sys.<user> introspection
	// service (Services/Methods/Metrics) in the directory.
	PublishIntrospection bool
	// DataDir, when set, makes the device database durable: every
	// committed mutation goes through a write-ahead log under this
	// directory, and Start recovers checkpoint + log tail from it (the
	// durability the paper's prototype delegated to Oracle, §5.3).
	DataDir string
	// CheckpointEvery (with DataDir) snapshots the database and trims
	// the log periodically when > 0.
	CheckpointEvery time.Duration
	// WALSync is the log's fsync policy (group commit by default).
	WALSync wal.SyncPolicy
	// WALFlushEvery widens group-commit batches; see wal.Options.
	WALFlushEvery time.Duration
	// LockTTL overrides the negotiation lock table's mark TTL when > 0
	// (how long a phase-1 lock survives without Commit/Abort before it
	// may be stolen).
	LockTTL time.Duration
	// LinkTuning overrides the negotiation recovery schedule (commit
	// retry backoff, attempts, presumed-abort horizon). Zero fields
	// keep the links defaults.
	LinkTuning links.Tuning
	// LeaseTTL, when > 0, turns on replication: the node acquires the
	// directory lease for User at boot (failing Start if a rival holds
	// it — the split-brain check), renews it on a LeaseTTL/3 cadence,
	// fences its own listener when the lease is invalid, and serves
	// WAL shipping under repl.<User>. Requires DataDir.
	LeaseTTL time.Duration
	// Replicas lists follower addresses reported to the directory on
	// every lease renewal — the promotion candidate set.
	Replicas []string
	// LeaseHolder overrides the lease identity (defaults to the bound
	// listen address). A promoted follower passes the holder id it won
	// the lease under so its renewals keep matching.
	LeaseHolder string
	// OfflineMode enables disconnected operation: an offline.Manager
	// with a durable bounded op queue, an engine interceptor that
	// fast-fails remote calls in local mode and feeds partition
	// detection, the published sync.<User> service, and heartbeat-driven
	// reconnect sessions.
	OfflineMode bool
	// OfflineQueueCap bounds the op queue (0 = offline package default).
	OfflineQueueCap int
	// OfflineOverflow selects the queue's at-capacity policy.
	OfflineOverflow offline.Overflow
	// SyncFullPull disables the relevance predicate on served Pulls
	// (full-state baseline; leave false in production).
	SyncFullPull bool
	// OfflineFailureThreshold overrides how many consecutive
	// unavailable sends flip the node to local mode.
	OfflineFailureThreshold int
}

// Option mutates a Config before the node boots — the functional-
// option surface for wiring the interceptor and middleware chains.
type Option func(*Config)

// WithMetrics records client and server metrics into reg.
func WithMetrics(reg *metrics.Registry) Option {
	return func(c *Config) { c.Metrics = reg }
}

// WithTracer records trace spans into t across the node's layers.
func WithTracer(t *trace.Tracer) Option {
	return func(c *Config) { c.Tracer = t }
}

// WithRouteCache enables the engine's directory route cache with ttl.
func WithRouteCache(ttl time.Duration) Option {
	return func(c *Config) { c.RouteCacheTTL = ttl }
}

// WithControlPlane routes directory traffic through the sharded
// directory published by the control plane at addr.
func WithControlPlane(addr string) Option {
	return func(c *Config) { c.ControlPlaneAddr = addr }
}

// WithInterceptors appends client interceptors to the engine chain.
func WithInterceptors(ics ...engine.Interceptor) Option {
	return func(c *Config) { c.Interceptors = append(c.Interceptors, ics...) }
}

// WithMiddleware appends server middleware to the listener chain.
func WithMiddleware(mw ...listener.Middleware) Option {
	return func(c *Config) { c.Middleware = append(c.Middleware, mw...) }
}

// WithIntrospection publishes the sys.<user> introspection service.
func WithIntrospection() Option {
	return func(c *Config) { c.PublishIntrospection = true }
}

// WithDurability stores the device database durably under dataDir with
// the given fsync policy, checkpointing every checkpointEvery (0
// disables periodic checkpoints; Close still takes a final one).
func WithDurability(dataDir string, sync wal.SyncPolicy, checkpointEvery time.Duration) Option {
	return func(c *Config) {
		c.DataDir = dataDir
		c.WALSync = sync
		c.CheckpointEvery = checkpointEvery
	}
}

// WithOfflineMode enables disconnected operation: writes queue in a
// durable bounded op queue while partitioned (capacity queueCap,
// overflow policy at capacity), and reconnect sessions pull
// relevance-filtered state (relevance=false pulls everything — the
// comparative baseline).
func WithOfflineMode(queueCap int, overflow offline.Overflow, relevance bool) Option {
	return func(c *Config) {
		c.OfflineMode = true
		c.OfflineQueueCap = queueCap
		c.OfflineOverflow = overflow
		c.SyncFullPull = !relevance
	}
}

// WithReplication turns on WAL shipping and lease-based failover:
// the node holds the directory lease for its user, renewing every
// leaseTTL/3, and ships its log to the followers at replicas.
func WithReplication(leaseTTL time.Duration, replicas ...string) Option {
	return func(c *Config) {
		c.LeaseTTL = leaseTTL
		c.Replicas = replicas
	}
}

// Node is a running SyD device node.
type Node struct {
	User string

	DB       *store.DB
	Listener *listener.Listener
	Engine   *engine.Engine
	Events   *event.Handler
	Links    *links.Manager
	Dir      *directory.Client
	Clock    clock.Clock
	// Durable is the database's durability layer when Config.DataDir
	// was set (nil otherwise). Node.Close checkpoints and closes it.
	Durable *wal.Durable
	// Repl is the node's replication primary when Config.LeaseTTL was
	// set (nil otherwise).
	Repl *replication.Primary
	// Offline is the disconnected-operation manager when
	// Config.OfflineMode was set (nil otherwise).
	Offline *offline.Manager
	// Tracer is the node's span recorder (nil when tracing is off).
	Tracer *trace.Tracer

	cfg Config
	ln  transport.Listener
}

// Start boots a node: creates its database and kernel modules, binds
// the listener, registers the user with the directory, and publishes
// the kernel services. opts are applied to cfg first, so callers can
// mix a literal Config with functional options for the chains.
func Start(ctx context.Context, cfg Config, opts ...Option) (*Node, error) {
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.User == "" {
		return nil, fmt.Errorf("core: Config.User is required")
	}
	if cfg.Net == nil {
		return nil, fmt.Errorf("core: Config.Net is required")
	}
	clk := cfg.Clock
	if clk == nil {
		clk = clock.System
	}
	tracer := cfg.Tracer
	if tracer == nil {
		if rate, slow, on := trace.DefaultSampling(); on {
			tracer = trace.Default().Tracer(cfg.User,
				trace.WithSampleRate(rate), trace.WithSlowThreshold(slow))
		}
	}

	// The device database: durable (recovered from DataDir) or plain
	// in-memory. Recovery runs before the kernel modules attach, so
	// links/calendar find their tables already populated and their
	// CreateTable calls become no-ops instead of re-logged DDL.
	var durable *wal.Durable
	db := store.NewDB()
	if cfg.DataDir != "" {
		var err error
		durable, err = wal.Open(cfg.DataDir, wal.Options{
			Sync:       cfg.WALSync,
			FlushEvery: cfg.WALFlushEvery,
			Metrics:    cfg.Metrics,
			Tracer:     tracer,
			Clock:      clk,
		})
		if err != nil {
			return nil, fmt.Errorf("core: open data dir: %w", err)
		}
		db = durable.DB
	}
	// closeDurable undoes the open on any failed boot path.
	closeDurable := func() {
		if durable != nil {
			_ = durable.Close()
		}
	}
	// Server chain: metrics outermost (it should observe auth
	// rejections and user-middleware effects), then user middleware,
	// then the listener's stock AuthMiddleware.
	var mw []listener.Middleware
	if cfg.Metrics != nil {
		mw = append(mw, listener.MetricsMiddleware(cfg.Metrics))
	}
	mw = append(mw, cfg.Middleware...)
	lisOpts := []listener.ListenerOption{listener.WithMiddleware(mw...)}
	if tracer != nil {
		lisOpts = append(lisOpts, listener.WithTracer(tracer))
	}
	lis := listener.New(cfg.User, cfg.Auth, lisOpts...)
	addr := cfg.ListenAddr
	if addr == "" {
		addr = "node-" + cfg.User
	}
	ln, err := cfg.Net.Listen(addr, lis)
	if err != nil {
		// Fall back to an auto-assigned address (TCP: ephemeral
		// port; sim: unique name).
		ln, err = cfg.Net.Listen(":0", lis)
		if err != nil {
			closeDurable()
			return nil, fmt.Errorf("core: listen: %w", err)
		}
	}

	dirOpts := []directory.ClientOption{directory.WithCallerID(cfg.User)}
	if cfg.DirCacheTTL > 0 {
		dirOpts = append(dirOpts, directory.WithCacheTTL(cfg.DirCacheTTL))
	}
	var dir *directory.Client
	if cfg.ControlPlaneAddr != "" {
		dir = directory.NewShardedClient(cfg.Net, cfg.ControlPlaneAddr, dirOpts...)
	} else {
		dir = directory.NewClient(cfg.Net, cfg.DirAddr, dirOpts...)
	}
	// Client chain mirrors the server: metrics outermost, then user
	// interceptors, then the engine's stock credential/cache/resolver
	// stages.
	var engOpts []engine.Option
	if cfg.Metrics != nil {
		engOpts = append(engOpts, engine.WithInterceptors(engine.MetricsInterceptor(cfg.Metrics)))
	}
	if len(cfg.Interceptors) > 0 {
		engOpts = append(engOpts, engine.WithInterceptors(cfg.Interceptors...))
	}
	if cfg.RouteCacheTTL > 0 {
		dc := engine.NewDirCache(cfg.RouteCacheTTL)
		if dir.Sharded() {
			// A shard-map epoch bump observed by the directory client
			// invalidates the engine's warm routes immediately — no
			// TTL wait.
			dir.OnEpochChange(dc.SetEpoch)
		}
		engOpts = append(engOpts, engine.WithDirCache(dc))
	}
	if tracer != nil {
		engOpts = append(engOpts, engine.WithTracer(tracer))
	}
	eng := engine.New(cfg.Net, dir, cfg.User, engOpts...)
	events := event.New(cfg.User, cfg.Net, clk)
	lis.SetEventSink(events.Dispatch)

	// Disconnected operation: the manager's interceptor sits innermost
	// in the client chain (metrics and user interceptors still observe
	// the local-mode fast-fails it returns).
	var om *offline.Manager
	if cfg.OfflineMode {
		om, err = offline.NewManager(offline.Config{
			User:             cfg.User,
			DB:               db,
			Engine:           eng,
			Dir:              dir,
			Clock:            clk,
			QueueCap:         cfg.OfflineQueueCap,
			Overflow:         cfg.OfflineOverflow,
			FullPull:         cfg.SyncFullPull,
			FailureThreshold: cfg.OfflineFailureThreshold,
			Metrics:          cfg.Metrics,
			Tracer:           tracer,
		})
		if err != nil {
			ln.Close()
			closeDurable()
			return nil, fmt.Errorf("core: offline mode: %w", err)
		}
		eng.Use(om.Interceptor())
	}

	lm, err := links.NewManager(cfg.User, db, eng, clk)
	if err != nil {
		ln.Close()
		closeDurable()
		return nil, err
	}
	if cfg.Metrics != nil {
		lm.SetMetrics(cfg.Metrics)
	}
	if tracer != nil {
		lm.SetTracer(tracer)
		if durable != nil {
			lm.SetLSNSource(durable.LastLSN)
		}
	}
	if cfg.LockTTL > 0 {
		lm.Locks.SetTTL(cfg.LockTTL)
	}
	if cfg.LinkTuning != (links.Tuning{}) {
		lm.SetTuning(cfg.LinkTuning)
	}

	// Replication: acquire the lease BEFORE registering with the
	// directory. A restarted old primary whose follower was promoted
	// fails right here with a lease conflict — it never re-publishes
	// its address, so clients keep resolving the promoted node.
	var repl *replication.Primary
	if cfg.LeaseTTL > 0 {
		if durable == nil {
			ln.Close()
			return nil, fmt.Errorf("core: replication (LeaseTTL) requires DataDir")
		}
		holder := cfg.LeaseHolder
		if holder == "" {
			holder = ln.Addr()
		}
		repl, err = replication.NewPrimary(replication.PrimaryConfig{
			User:     cfg.User,
			Durable:  durable,
			Dir:      dir,
			Holder:   holder,
			Replicas: cfg.Replicas,
			LeaseTTL: cfg.LeaseTTL,
			Clock:    clk,
			Metrics:  cfg.Metrics,
		})
		if err == nil {
			err = repl.Renew(ctx)
		}
		if err != nil {
			ln.Close()
			closeDurable()
			return nil, fmt.Errorf("core: replication: %w", err)
		}
		lis.Use(repl.FenceMiddleware())
	}

	n := &Node{
		User:     cfg.User,
		DB:       db,
		Listener: lis,
		Engine:   eng,
		Events:   events,
		Links:    lm,
		Dir:      dir,
		Clock:    clk,
		Durable:  durable,
		Repl:     repl,
		Offline:  om,
		Tracer:   tracer,
		cfg:      cfg,
		ln:       ln,
	}

	if err := dir.RegisterUser(ctx, cfg.User, ln.Addr(), cfg.Priority); err != nil {
		ln.Close()
		closeDurable()
		return nil, fmt.Errorf("core: register user: %w", err)
	}
	// Publish the kernel services every node exposes.
	if err := n.RegisterService(ctx, links.ServiceFor(cfg.User), lm.Object()); err != nil {
		ln.Close()
		closeDurable()
		return nil, err
	}
	if err := n.RegisterService(ctx, event.ServiceFor(cfg.User), events.Object()); err != nil {
		ln.Close()
		closeDurable()
		return nil, err
	}
	if om != nil {
		if err := n.RegisterService(ctx, offline.ServiceFor(cfg.User), om.SyncObject()); err != nil {
			ln.Close()
			closeDurable()
			return nil, err
		}
	}
	if cfg.PublishIntrospection {
		if err := n.RegisterService(ctx, IntrospectionService(cfg.User), listener.Introspection(lis, cfg.Metrics, tracer)); err != nil {
			ln.Close()
			closeDurable()
			return nil, err
		}
	}
	if repl != nil {
		if err := n.RegisterService(ctx, replication.ServiceFor(cfg.User), repl.Object()); err != nil {
			ln.Close()
			closeDurable()
			return nil, err
		}
		// Renew well inside the TTL so one dropped renewal does not
		// expire the lease.
		events.Every(cfg.LeaseTTL/3, func(time.Time) {
			rnCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = repl.Renew(rnCtx)
		})
	}

	if cfg.HeartbeatEvery > 0 {
		events.Every(cfg.HeartbeatEvery, func(time.Time) {
			hbCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			// In local mode the heartbeat tick doubles as the reconnect
			// probe: each tick attempts the full sync session, which
			// no-ops fast if the directory is still unreachable.
			if om != nil && om.State() != offline.StateOnline {
				_ = om.TryReconnect(hbCtx)
				return
			}
			if err := dir.Heartbeat(hbCtx, cfg.User); err != nil && om != nil {
				om.NoteFailure()
			}
		})
	}
	if cfg.ExpireEvery > 0 {
		events.Every(cfg.ExpireEvery, func(now time.Time) {
			swCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			_ = lm.ExpireSweep(swCtx, now)
			_ = lm.RetryPendingDeletes(swCtx)
			// Negotiation fault recovery rides the same schedule: re-send
			// journaled commits and resolve in-doubt participant marks.
			_ = lm.FaultSweep(swCtx, now)
		})
	}
	if durable != nil && cfg.CheckpointEvery > 0 {
		events.Every(cfg.CheckpointEvery, func(time.Time) {
			_ = durable.Checkpoint()
		})
	}
	return n, nil
}

// IntrospectionService names the sys.<user> introspection service.
func IntrospectionService(user string) string { return "sys." + user }

// Addr returns the node's bound network address.
func (n *Node) Addr() string { return n.ln.Addr() }

// RegisterService registers obj locally and publishes it globally in
// the directory.
func (n *Node) RegisterService(ctx context.Context, name string, obj *listener.Object) error {
	n.Listener.Register(name, obj)
	if err := n.Listener.PublishGlobal(ctx, n.Dir, name, n.ln.Addr()); err != nil {
		return fmt.Errorf("core: publish %s: %w", name, err)
	}
	return nil
}

// Close marks the node offline in the directory, stops periodic work,
// and closes the listener. The node's data survives in n.DB (a proxy
// can adopt it; the device can Start again); with durability on, Close
// takes a final checkpoint so restart skips log replay.
func (n *Node) Close(ctx context.Context) error {
	_ = n.Dir.SetOffline(ctx, n.User, true)
	n.Events.Close()
	err := n.ln.Close()
	if n.Durable != nil {
		if derr := n.Durable.Close(); err == nil {
			err = derr
		}
	}
	return err
}
