package core_test

import (
	"context"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/directory"
	"repro/internal/event"
	"repro/internal/links"
	"repro/internal/listener"
	"repro/internal/sim"
	"repro/internal/wire"
)

func newDeployment(t *testing.T) (*sim.Net, *clock.Fake) {
	t.Helper()
	net := sim.New(sim.Config{})
	clk := clock.NewFake(time.Date(2003, 4, 22, 9, 0, 0, 0, time.UTC))
	srv := directory.NewServer(directory.WithClock(clk), directory.WithTTL(time.Minute))
	if _, err := net.Listen("dir", srv.Handler()); err != nil {
		t.Fatal(err)
	}
	return net, clk
}

func TestStartValidation(t *testing.T) {
	net, clk := newDeployment(t)
	ctx := context.Background()
	if _, err := core.Start(ctx, core.Config{Net: net, DirAddr: "dir", Clock: clk}); err == nil {
		t.Fatal("missing user accepted")
	}
	if _, err := core.Start(ctx, core.Config{User: "phil", DirAddr: "dir"}); err == nil {
		t.Fatal("missing network accepted")
	}
}

func TestStartPublishesKernelServices(t *testing.T) {
	net, clk := newDeployment(t)
	ctx := context.Background()
	n, err := core.Start(ctx, core.Config{User: "phil", Net: net, DirAddr: "dir", Clock: clk, Priority: 7})
	if err != nil {
		t.Fatal(err)
	}
	u, err := n.Dir.LookupUser(ctx, "phil")
	if err != nil {
		t.Fatal(err)
	}
	if u.Addr != n.Addr() || u.Priority != 7 || !u.Online {
		t.Fatalf("user = %+v addr = %s", u, n.Addr())
	}
	for _, svc := range []string{links.ServiceFor("phil"), event.ServiceFor("phil")} {
		info, err := n.Dir.LookupService(ctx, svc)
		if err != nil {
			t.Fatalf("%s: %v", svc, err)
		}
		if info.Addr != n.Addr() {
			t.Fatalf("%s published at %s, node at %s", svc, info.Addr, n.Addr())
		}
	}
}

func TestNodesInvokeEachOther(t *testing.T) {
	net, clk := newDeployment(t)
	ctx := context.Background()
	a, err := core.Start(ctx, core.Config{User: "a", Net: net, DirAddr: "dir", Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.Start(ctx, core.Config{User: "b", Net: net, DirAddr: "dir", Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	obj := listener.NewObject().Handle("Hello", func(ctx context.Context, call *listener.Call) (any, error) {
		return "hello " + call.Caller, nil
	})
	if err := b.RegisterService(ctx, "greeter.b", obj); err != nil {
		t.Fatal(err)
	}
	var out string
	if err := a.Engine.Invoke(ctx, "greeter.b", "Hello", nil, &out); err != nil {
		t.Fatal(err)
	}
	if out != "hello a" {
		t.Fatalf("out = %q", out)
	}
}

func TestHeartbeatSchedule(t *testing.T) {
	net, clk := newDeployment(t)
	ctx := context.Background()
	n, err := core.Start(ctx, core.Config{
		User: "phil", Net: net, DirAddr: "dir", Clock: clk,
		HeartbeatEvery: 20 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close(ctx)
	// Directory TTL is one minute. Advance in heartbeat-sized steps
	// for 3 minutes; the node must stay online because heartbeats
	// keep firing.
	for i := 0; i < 9; i++ {
		// Let the schedule arm before each advance.
		deadline := time.Now().Add(5 * time.Second)
		for clk.PendingWaiters() == 0 {
			if time.Now().After(deadline) {
				t.Fatal("heartbeat schedule never armed")
			}
			time.Sleep(time.Millisecond)
		}
		clk.Advance(20 * time.Second)
		time.Sleep(5 * time.Millisecond) // let the heartbeat land
	}
	u, err := n.Dir.LookupUser(ctx, "phil")
	if err != nil {
		t.Fatal(err)
	}
	if !u.Online {
		t.Fatal("heartbeats did not keep the node online")
	}
}

func TestExpireSweepSchedule(t *testing.T) {
	net, clk := newDeployment(t)
	ctx := context.Background()
	n, err := core.Start(ctx, core.Config{
		User: "phil", Net: net, DirAddr: "dir", Clock: clk,
		ExpireEvery: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close(ctx)

	l := &links.Link{
		ID: "L-exp", Type: links.Subscription, Subtype: links.Permanent,
		Owner:   links.EntityRef{User: "phil", Entity: "slot9"},
		Expires: clk.Now().Add(30 * time.Second),
	}
	if err := n.Links.AddLink(l); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for clk.PendingWaiters() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("sweep schedule never armed")
		}
		time.Sleep(time.Millisecond)
	}
	clk.Advance(time.Minute)
	deadline = time.Now().Add(5 * time.Second)
	for {
		if _, ok := n.Links.GetLink("L-exp"); !ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("expired link not swept")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestCloseMarksOffline(t *testing.T) {
	net, clk := newDeployment(t)
	ctx := context.Background()
	n, err := core.Start(ctx, core.Config{User: "phil", Net: net, DirAddr: "dir", Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	dir := directory.NewClient(net, "dir")
	if err := n.Close(ctx); err != nil {
		t.Fatal(err)
	}
	u, err := dir.LookupUser(ctx, "phil")
	if err != nil {
		t.Fatal(err)
	}
	if u.Online {
		t.Fatal("closed node still online")
	}
	// The node's address no longer answers.
	e := directory.NewClient(net, "dir")
	_ = e
	if _, err := net.Call(ctx, n.Addr(), &wire.Request{Service: links.ServiceFor("phil"), Method: "LinksOn", Args: wire.Args{"entity": "x"}}); wire.CodeOf(err) != wire.CodeUnavailable {
		t.Fatalf("closed node still answering: %v", err)
	}
}

func TestStartTwiceSameAddrFallsBack(t *testing.T) {
	net, clk := newDeployment(t)
	ctx := context.Background()
	a, err := core.Start(ctx, core.Config{User: "phil", Net: net, DirAddr: "dir", Clock: clk, ListenAddr: "fixed"})
	if err != nil {
		t.Fatal(err)
	}
	// Second node with the same requested address falls back to an
	// auto-assigned one instead of failing.
	b, err := core.Start(ctx, core.Config{User: "phil2", Net: net, DirAddr: "dir", Clock: clk, ListenAddr: "fixed"})
	if err != nil {
		t.Fatal(err)
	}
	if a.Addr() == b.Addr() {
		t.Fatalf("duplicate address %q", a.Addr())
	}
}

func TestDirCacheTTLReducesLookups(t *testing.T) {
	net, clk := newDeployment(t)
	ctx := context.Background()
	target, err := core.Start(ctx, core.Config{User: "target", Net: net, DirAddr: "dir", Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	obj := listener.NewObject().Handle("Ping", func(ctx context.Context, call *listener.Call) (any, error) {
		return "pong", nil
	})
	if err := target.RegisterService(ctx, "svc.target", obj); err != nil {
		t.Fatal(err)
	}

	cached, err := core.Start(ctx, core.Config{
		User: "cached", Net: net, DirAddr: "dir", Clock: clk,
		DirCacheTTL: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	uncached, err := core.Start(ctx, core.Config{User: "uncached", Net: net, DirAddr: "dir", Clock: clk})
	if err != nil {
		t.Fatal(err)
	}

	const calls = 10
	countFor := func(n *core.Node) int64 {
		// Warm once so service publication traffic is excluded.
		if err := n.Engine.Invoke(ctx, "svc.target", "Ping", nil, nil); err != nil {
			t.Fatal(err)
		}
		before := net.Stats().Requests
		for i := 0; i < calls; i++ {
			if err := n.Engine.Invoke(ctx, "svc.target", "Ping", nil, nil); err != nil {
				t.Fatal(err)
			}
		}
		return net.Stats().Requests - before
	}
	withCache := countFor(cached)
	withoutCache := countFor(uncached)
	// Cached node: 10 invocations only. Uncached: 10 lookups + 10
	// invocations.
	if withCache != calls {
		t.Fatalf("cached requests = %d, want %d", withCache, calls)
	}
	if withoutCache != 2*calls {
		t.Fatalf("uncached requests = %d, want %d", withoutCache, 2*calls)
	}
}
