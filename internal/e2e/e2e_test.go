// Package e2e_test builds the actual cmd/ binaries and drives a small
// deployment over real TCP sockets — the closest thing to the paper's
// iPAQ-on-WLAN testbed this repository can run.
package e2e_test

import (
	"bytes"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// buildBinaries compiles the three deployment binaries once per test
// run into a temp dir.
func buildBinaries(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	for _, name := range []string{"syddirectory", "sydnode", "sydcal"} {
		out := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+name)
		cmd.Dir = repoRoot(t)
		if b, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", name, err, b)
		}
	}
	return dir
}

func repoRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	// internal/e2e -> repo root.
	return filepath.Dir(filepath.Dir(wd))
}

// freePort asks the kernel for an available TCP port.
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// start launches a binary and registers cleanup.
func start(t *testing.T, bin string, args ...string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin, args...)
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Start(); err != nil {
		t.Fatalf("start %s: %v", bin, err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
		if t.Failed() {
			t.Logf("%s output:\n%s", filepath.Base(bin), out.String())
		}
	})
	return cmd
}

// waitTCP blocks until addr accepts connections.
func waitTCP(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		c, err := net.DialTimeout("tcp", addr, 200*time.Millisecond)
		if err == nil {
			c.Close()
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s never came up", addr)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// run executes a CLI command and returns its output.
func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	b, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, b)
	}
	return string(b)
}

func TestBinariesEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and spawns real processes")
	}
	bins := buildBinaries(t)
	dirBin := filepath.Join(bins, "syddirectory")
	nodeBin := filepath.Join(bins, "sydnode")
	calBin := filepath.Join(bins, "sydcal")

	statePath := filepath.Join(t.TempDir(), "dir-state.json")
	dirAddr := freePort(t)
	start(t, dirBin, "-addr", dirAddr, "-state", statePath)
	waitTCP(t, dirAddr)

	philAddr := freePort(t)
	andyAddr := freePort(t)
	start(t, nodeBin, "-user", "phil", "-dir", dirAddr, "-addr", philAddr, "-priority", "2")
	start(t, nodeBin, "-user", "andy", "-dir", dirAddr, "-addr", andyAddr)
	waitTCP(t, philAddr)
	waitTCP(t, andyAddr)

	// Give the nodes a moment to publish their services.
	deadline := time.Now().Add(15 * time.Second)
	for {
		out := run(t, calBin, "-dir", dirAddr, "users")
		if strings.Contains(out, "phil") && strings.Contains(out, "andy") {
			if !strings.Contains(out, "online") {
				t.Fatalf("users not online:\n%s", out)
			}
			if !strings.Contains(out, "prio=2") {
				t.Fatalf("priority lost:\n%s", out)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("nodes never registered:\n%s", out)
		}
		time.Sleep(100 * time.Millisecond)
	}

	// Free slots through the CLI.
	out := run(t, calBin, "-dir", dirAddr, "free", "-user", "phil", "-from", "2003-04-21", "-to", "2003-04-21")
	if lines := strings.Count(strings.TrimSpace(out), "\n") + 1; lines != 9 {
		t.Fatalf("free slots = %d lines:\n%s", lines, out)
	}

	// Slot info.
	out = run(t, calBin, "-dir", dirAddr, "slots", "-user", "andy", "-day", "2003-04-21", "-hour", "14")
	if !strings.Contains(out, "free") {
		t.Fatalf("slot info:\n%s", out)
	}

	// Meetings list starts empty.
	out = run(t, calBin, "-dir", dirAddr, "meetings", "-user", "phil")
	if strings.TrimSpace(out) != "" {
		t.Fatalf("unexpected meetings:\n%s", out)
	}

	// Full meeting lifecycle through the CLI: schedule, observe on
	// both devices, cancel (as the initiator), observe the release.
	out = run(t, calBin, "-dir", dirAddr, "schedule",
		"-user", "phil", "-title", "standup",
		"-from", "2003-04-21", "-to", "2003-04-21", "-must", "andy")
	if !strings.Contains(out, "confirmed") {
		t.Fatalf("schedule:\n%s", out)
	}
	fields := strings.Fields(out)
	if len(fields) < 2 {
		t.Fatalf("schedule output shape:\n%s", out)
	}
	meetingID := fields[1]

	for _, u := range []string{"phil", "andy"} {
		out = run(t, calBin, "-dir", dirAddr, "meetings", "-user", u)
		if !strings.Contains(out, meetingID) || !strings.Contains(out, "confirmed") {
			t.Fatalf("%s meetings after schedule:\n%s", u, out)
		}
	}
	out = run(t, calBin, "-dir", dirAddr, "free", "-user", "andy", "-from", "2003-04-21", "-to", "2003-04-21")
	if lines := strings.Count(strings.TrimSpace(out), "\n") + 1; lines != 8 {
		t.Fatalf("andy free slots after schedule = %d lines:\n%s", lines, out)
	}

	// A random caller cannot cancel; the initiator can.
	cmd := exec.Command(calBin, "-dir", dirAddr, "cancel", "-user", "phil", "-as", "mallory", "-id", meetingID)
	if b, err := cmd.CombinedOutput(); err == nil {
		t.Fatalf("mallory cancelled the meeting:\n%s", b)
	}
	out = run(t, calBin, "-dir", dirAddr, "cancel", "-user", "phil", "-as", "phil", "-id", meetingID)
	if !strings.Contains(out, "cancelled") {
		t.Fatalf("cancel:\n%s", out)
	}
	out = run(t, calBin, "-dir", dirAddr, "free", "-user", "andy", "-from", "2003-04-21", "-to", "2003-04-21")
	if lines := strings.Count(strings.TrimSpace(out), "\n") + 1; lines != 9 {
		t.Fatalf("andy free slots after cancel = %d lines:\n%s", lines, out)
	}
}

func TestNodeStatePersistsAcrossRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and spawns real processes")
	}
	bins := buildBinaries(t)
	dirBin := filepath.Join(bins, "syddirectory")
	nodeBin := filepath.Join(bins, "sydnode")
	calBin := filepath.Join(bins, "sydcal")

	dirAddr := freePort(t)
	start(t, dirBin, "-addr", dirAddr, "-ttl", "1h")
	waitTCP(t, dirAddr)

	nodeState := filepath.Join(t.TempDir(), "phil-state.json")
	nodeAddr := freePort(t)
	first := start(t, nodeBin, "-user", "phil", "-dir", dirAddr, "-addr", nodeAddr, "-state", nodeState)
	waitTCP(t, nodeAddr)

	// Wait for registration, then no way to mutate slots via the CLI
	// yet — instead verify an empty then non-empty free count across
	// restart via the snapshot: stop the node (writes empty state),
	// check the state file exists, and confirm the second life serves.
	deadline := time.Now().Add(15 * time.Second)
	for {
		out := run(t, calBin, "-dir", dirAddr, "users")
		if strings.Contains(out, "phil") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("node never registered")
		}
		time.Sleep(100 * time.Millisecond)
	}
	if err := first.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	if _, err := first.Process.Wait(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(nodeState); err != nil {
		t.Fatalf("node state not written: %v", err)
	}

	// Second life: restores without error and serves free slots.
	nodeAddr2 := freePort(t)
	start(t, nodeBin, "-user", "phil", "-dir", dirAddr, "-addr", nodeAddr2, "-state", nodeState)
	waitTCP(t, nodeAddr2)
	deadline = time.Now().Add(15 * time.Second)
	for {
		out := run(t, calBin, "-dir", dirAddr, "users")
		if strings.Contains(out, nodeAddr2) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("restarted node never re-registered")
		}
		time.Sleep(100 * time.Millisecond)
	}
	out := run(t, calBin, "-dir", dirAddr, "free", "-user", "phil", "-from", "2003-04-21", "-to", "2003-04-21")
	if !strings.Contains(out, "2003-04-21") {
		t.Fatalf("restored node does not serve:\n%s", out)
	}
}

func TestDirectoryStatePersistsAcrossRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and spawns real processes")
	}
	bins := buildBinaries(t)
	dirBin := filepath.Join(bins, "syddirectory")
	calBin := filepath.Join(bins, "sydcal")

	statePath := filepath.Join(t.TempDir(), "dir-state.json")
	dirAddr := freePort(t)

	// First life: register a node, then stop the directory gracefully.
	first := start(t, dirBin, "-addr", dirAddr, "-state", statePath, "-ttl", "1h")
	waitTCP(t, dirAddr)
	nodeBin := filepath.Join(bins, "sydnode")
	nodeAddr := freePort(t)
	start(t, nodeBin, "-user", "phil", "-dir", dirAddr, "-addr", nodeAddr)
	deadline := time.Now().Add(15 * time.Second)
	for {
		out := run(t, calBin, "-dir", dirAddr, "users")
		if strings.Contains(out, "phil") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("node never registered:\n%s", out)
		}
		time.Sleep(100 * time.Millisecond)
	}
	if err := first.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	if _, err := first.Process.Wait(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(statePath); err != nil {
		t.Fatalf("state file not written: %v", err)
	}

	// Second life at a fresh port: the registry is still there.
	dirAddr2 := freePort(t)
	start(t, dirBin, "-addr", dirAddr2, "-state", statePath, "-ttl", "1h")
	waitTCP(t, dirAddr2)
	out := run(t, calBin, "-dir", dirAddr2, "users")
	if !strings.Contains(out, "phil") {
		t.Fatalf("registry lost across restart:\n%s", out)
	}
	fmt.Println("restart output:", strings.TrimSpace(out))
}

// TestShardedDirectoryEndToEnd drives the full meeting lifecycle over
// real TCP with syddirectory running 4 shards behind its control
// plane: sydnode and sydcal route every directory op through the
// epoch-versioned shard map instead of a single server.
func TestShardedDirectoryEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and spawns real processes")
	}
	bins := buildBinaries(t)
	dirBin := filepath.Join(bins, "syddirectory")
	nodeBin := filepath.Join(bins, "sydnode")
	calBin := filepath.Join(bins, "sydcal")

	cpAddr := freePort(t)
	shardAddrs := []string{freePort(t), freePort(t), freePort(t), freePort(t)}
	statePath := filepath.Join(t.TempDir(), "dir-state.json")
	start(t, dirBin, "-addr", cpAddr, "-shards", "4",
		"-shard-addrs", strings.Join(shardAddrs, ","), "-state", statePath)
	waitTCP(t, cpAddr)
	for _, a := range shardAddrs {
		waitTCP(t, a)
	}

	philAddr := freePort(t)
	andyAddr := freePort(t)
	start(t, nodeBin, "-user", "phil", "-control-plane", cpAddr, "-addr", philAddr, "-priority", "2")
	start(t, nodeBin, "-user", "andy", "-control-plane", cpAddr, "-addr", andyAddr)
	waitTCP(t, philAddr)
	waitTCP(t, andyAddr)

	cal := func(args ...string) string {
		return run(t, calBin, append([]string{"-control-plane", cpAddr}, args...)...)
	}

	// Registration fans out across shards; the merged user list still
	// shows both devices online through the sharded client.
	deadline := time.Now().Add(15 * time.Second)
	for {
		out := cal("users")
		if strings.Contains(out, "phil") && strings.Contains(out, "andy") {
			if !strings.Contains(out, "online") {
				t.Fatalf("users not online:\n%s", out)
			}
			if !strings.Contains(out, "prio=2") {
				t.Fatalf("priority lost:\n%s", out)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("nodes never registered:\n%s", out)
		}
		time.Sleep(100 * time.Millisecond)
	}

	// The meeting lifecycle crosses shards: cal.phil and cal.andy
	// almost certainly live on different shard servers.
	out := cal("schedule", "-user", "phil", "-title", "standup",
		"-from", "2003-04-21", "-to", "2003-04-21", "-must", "andy")
	if !strings.Contains(out, "confirmed") {
		t.Fatalf("schedule:\n%s", out)
	}
	fields := strings.Fields(out)
	if len(fields) < 2 {
		t.Fatalf("schedule output shape:\n%s", out)
	}
	meetingID := fields[1]
	for _, u := range []string{"phil", "andy"} {
		out = cal("meetings", "-user", u)
		if !strings.Contains(out, meetingID) || !strings.Contains(out, "confirmed") {
			t.Fatalf("%s meetings after schedule:\n%s", u, out)
		}
	}
	out = cal("cancel", "-user", "phil", "-as", "phil", "-id", meetingID)
	if !strings.Contains(out, "cancelled") {
		t.Fatalf("cancel:\n%s", out)
	}
	out = cal("free", "-user", "andy", "-from", "2003-04-21", "-to", "2003-04-21")
	if lines := strings.Count(strings.TrimSpace(out), "\n") + 1; lines != 9 {
		t.Fatalf("andy free slots after cancel = %d lines:\n%s", lines, out)
	}
}
