package offline

import (
	"context"
	"encoding/json"
	"time"

	"repro/internal/listener"
	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/internal/wire"
)

// ServicePrefix prefixes the per-user sync service name.
const ServicePrefix = "sync."

// ServiceFor returns the sync service name of user.
func ServiceFor(user string) string { return ServicePrefix + user }

// EntityDoc is one entity in a Pull response.
type EntityDoc struct {
	Entity  string          `json:"entity"`
	Version int64           `json:"version"`
	Doc     json.RawMessage `json:"doc,omitempty"`
}

// PullResult is the server's answer to a Pull: the relevant entities
// newer than the caller's version vector, plus accounting that shows
// what the relevance predicate and the version filter saved.
type PullResult struct {
	Entities []EntityDoc `json:"entities,omitempty"`
	// Total is how many entities the server holds; Sent how many were
	// shipped; Unchanged how many the caller's version vector skipped;
	// Irrelevant how many the relevance predicate filtered out.
	Total      int `json:"total"`
	Sent       int `json:"sent"`
	Unchanged  int `json:"unchanged"`
	Irrelevant int `json:"irrelevant"`
}

// Source is the application adapter the sync server reads from — the
// calendar implements it over its meeting records.
type Source interface {
	// Relevant reports whether entity concerns requester (the
	// relevance predicate: entities the requester owns, participates
	// in, or subscribes to).
	Relevant(requester, entity string) bool
	// Snapshot returns entity's current document.
	Snapshot(entity string) (json.RawMessage, bool)
}

// Applier applies pulled entity documents on the reconnecting device.
type Applier interface {
	Apply(entity string, version int64, doc json.RawMessage) error
}

// SyncObject builds the sync.<user> RPC object: the server half of a
// reconnect session. Pull is relevance- and version-filtered; State
// exposes the manager for introspection and tests.
func (m *Manager) SyncObject() *listener.Object {
	obj := listener.NewObject()
	obj.Handle("Pull", func(ctx context.Context, call *listener.Call) (any, error) {
		sub := call.Args.String("subscriber")
		if sub == "" {
			return nil, &wire.RemoteError{Code: wire.CodeBadArgs, Msg: "Pull needs a subscriber"}
		}
		have := map[string]int64{}
		if _, ok := call.Args["versions"]; ok {
			if err := call.Args.Decode("versions", &have); err != nil {
				return nil, &wire.RemoteError{Code: wire.CodeBadArgs, Msg: "bad versions vector: " + err.Error()}
			}
		}
		return m.servePull(ctx, sub, have, call.Args.Bool("all")), nil
	})
	obj.Handle("State", func(ctx context.Context, call *listener.Call) (any, error) {
		return map[string]any{
			"state":  string(m.State()),
			"queued": m.Queue().Len(),
		}, nil
	})
	return obj
}

// servePull filters this device's entities for subscriber: the
// relevance predicate drops entities that don't concern it (unless the
// caller asked for everything), and the version vector drops entities
// it already has — those cost zero payload bytes.
func (m *Manager) servePull(ctx context.Context, subscriber string, have map[string]int64, all bool) *PullResult {
	start := m.clock.Now()
	_, span := trace.Start(ctx, "sync.pull.serve")
	res := &PullResult{}
	src := m.getSource()
	for entity, ver := range m.versions.All() {
		res.Total++
		if !all && (src == nil || !src.Relevant(subscriber, entity)) {
			res.Irrelevant++
			continue
		}
		if have[entity] >= ver {
			res.Unchanged++
			continue
		}
		if src == nil {
			continue
		}
		doc, ok := src.Snapshot(entity)
		if !ok {
			continue
		}
		res.Entities = append(res.Entities, EntityDoc{Entity: entity, Version: ver, Doc: doc})
		res.Sent++
	}
	span.Annotate(
		trace.String("subscriber", subscriber),
		trace.Int("sent", res.Sent),
		trace.Int("unchanged", res.Unchanged),
		trace.Int("irrelevant", res.Irrelevant),
	)
	span.Finish()
	m.observe("Pull.serve", "", m.clock.Now().Sub(start))
	return res
}

func (m *Manager) observe(method string, code wire.ErrCode, d time.Duration) {
	if m.met != nil {
		m.met.Observe(metrics.LayerSync, ServiceFor(m.user), method, code, d)
	}
}
