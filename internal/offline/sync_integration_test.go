package offline_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/calendar"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/directory"
	"repro/internal/metrics"
	"repro/internal/offline"
	"repro/internal/sim"
	"repro/internal/wire"
)

// world is a simulated deployment where every device runs with offline
// mode on and its calendar wired into the sync manager.
type world struct {
	net   *sim.Net
	clk   *clock.Fake
	dir   *directory.Client
	met   *metrics.Registry
	nodes map[string]*core.Node
	cals  map[string]*calendar.Calendar
}

func newWorld(t *testing.T, users ...string) *world {
	t.Helper()
	net := sim.New(sim.Config{})
	clk := clock.NewFake(time.Date(2003, 4, 21, 8, 0, 0, 0, time.UTC))
	srv := directory.NewServer(directory.WithClock(clk), directory.WithTTL(time.Hour))
	if _, err := net.Listen("dir", srv.Handler()); err != nil {
		t.Fatal(err)
	}
	w := &world{
		net:   net,
		clk:   clk,
		dir:   directory.NewClient(net, "dir"),
		met:   metrics.NewRegistry(),
		nodes: map[string]*core.Node{},
		cals:  map[string]*calendar.Calendar{},
	}
	for _, u := range users {
		w.addUser(t, u)
	}
	return w
}

func (w *world) addUser(t *testing.T, user string) {
	t.Helper()
	ctx := context.Background()
	n, err := core.Start(ctx, core.Config{
		User: user, Net: w.net, DirAddr: "dir", Clock: w.clk,
		OfflineMode: true, OfflineQueueCap: 128,
	}, core.WithMetrics(w.met))
	if err != nil {
		t.Fatal(err)
	}
	c, err := calendar.New(ctx, n)
	if err != nil {
		t.Fatal(err)
	}
	c.EnableSync(n.Offline)
	w.nodes[user] = n
	w.cals[user] = c
}

// cut severs user from every other device and the directory, both
// directions (sim partitions are keyed caller-user → destination-addr).
func (w *world) cut(user string) {
	w.net.Partition(user, "dir")
	for peer := range w.nodes {
		if peer == user {
			continue
		}
		w.net.Partition(user, "node-"+peer)
		w.net.Partition(peer, "node-"+user)
	}
}

func (w *world) heal(user string) {
	w.net.Heal(user, "dir")
	for peer := range w.nodes {
		if peer == user {
			continue
		}
		w.net.Heal(user, "node-"+peer)
		w.net.Heal(peer, "node-"+user)
	}
}

func pinned(title, day string, hour, prio int, must ...string) calendar.Request {
	return calendar.Request{Title: title, Day: day, Hour: hour, PinSlot: true, Priority: prio, Must: must}
}

func TestReconnectSessionPushesQueuedOpsAndPulls(t *testing.T) {
	w := newWorld(t, "andy", "phil", "mob")
	ctx := context.Background()
	mob, phil, andy := w.cals["mob"], w.cals["phil"], w.cals["andy"]

	// A shared meeting while everyone is online, so andy and phil are
	// both sync peers of mob afterwards.
	if _, err := mob.SetupMeeting(ctx, pinned("kickoff", "2003-04-22", 9, 1, "andy", "phil")); err != nil {
		t.Fatal(err)
	}

	// mob drops off the network.
	w.cut("mob")
	w.nodes["mob"].Offline.GoOffline(ctx)

	// While mob is away, andy schedules a meeting that includes mob.
	am, err := andy.SetupMeeting(ctx, pinned("review", "2003-04-23", 10, 1, "mob"))
	if err != nil {
		t.Fatal(err)
	}
	if am.Satisfied() {
		t.Fatal("andy's meeting should be tentative while mob is unreachable")
	}

	// mob keeps working locally: two bookings and a cancellation of the
	// second, all queued.
	m1, queued, err := mob.ScheduleOrQueue(ctx, pinned("standup", "2003-04-24", 9, 1, "phil"))
	if err != nil || !queued {
		t.Fatalf("ScheduleOrQueue: queued=%v err=%v", queued, err)
	}
	m2, queued, err := mob.ScheduleOrQueue(ctx, pinned("retro", "2003-04-24", 11, 1, "phil"))
	if err != nil || !queued {
		t.Fatalf("ScheduleOrQueue: queued=%v err=%v", queued, err)
	}
	if queued, err := mob.CancelOrQueue(ctx, m2.ID); err != nil || !queued {
		t.Fatalf("CancelOrQueue: queued=%v err=%v", queued, err)
	}
	if got := w.nodes["mob"].Offline.Queue().Len(); got != 3 {
		t.Fatalf("queue len = %d, want 3", got)
	}
	// Local reads keep working in local mode.
	if got, ok := mob.Meeting(m1.ID); !ok || got.Status != calendar.StatusTentative {
		t.Fatalf("local meeting while offline = %+v", got)
	}
	if info := mob.Slot(calendar.Slot{Day: "2003-04-24", Hour: 9}); info.Meeting != m1.ID {
		t.Fatalf("local slot not reserved by offline booking: %+v", info)
	}

	// Reconnect: the session pushes the queue and pulls relevant state.
	w.heal("mob")
	if err := w.nodes["mob"].Offline.TryReconnect(ctx); err != nil {
		t.Fatalf("TryReconnect: %v", err)
	}
	if got := w.nodes["mob"].Offline.State(); got != offline.StateOnline {
		t.Fatalf("state = %s, want online", got)
	}
	if got := w.nodes["mob"].Offline.Queue().Len(); got != 0 {
		t.Fatalf("queue not drained: %d ops left", got)
	}

	// m1 went through the real negotiation path: confirmed, phil holds
	// the slot, and the coordination link exists.
	got, ok := mob.Meeting(m1.ID)
	if !ok || got.Status != calendar.StatusConfirmed || got.LinkID == "" {
		t.Fatalf("replayed meeting = %+v, want confirmed with a link", got)
	}
	if info := phil.Slot(calendar.Slot{Day: "2003-04-24", Hour: 9}); info.Meeting != m1.ID {
		t.Fatalf("phil's slot after replay = %+v, want %s", info, m1.ID)
	}
	// m2 was cancelled before it ever left the device: no trace at phil.
	if info := phil.Slot(calendar.Slot{Day: "2003-04-24", Hour: 11}); info.Meeting != "" {
		t.Fatalf("cancelled-offline meeting leaked to phil: %+v", info)
	}

	// The pull phase brought andy's meeting to mob.
	pulled, ok := mob.Meeting(am.ID)
	if !ok {
		t.Fatalf("andy's meeting not pulled to mob")
	}
	if pulled.Initiator != "andy" || pulled.Title != "review" {
		t.Fatalf("pulled meeting = %+v", pulled)
	}

	// The session recorded sync-layer metrics.
	snap := w.met.Snapshot()
	if e := snap.Find(metrics.LayerSync, offline.ServiceFor("mob"), "Reconnect", ""); e == nil || e.Count != 1 {
		t.Fatalf("Reconnect metric = %+v", e)
	}
	if e := snap.Find(metrics.LayerSync, offline.ServiceFor("mob"), "Push", ""); e == nil {
		t.Fatal("missing Push metric")
	}
	if e := snap.Find(metrics.LayerSync, offline.ServiceFor("mob"), "Pull", ""); e == nil {
		t.Fatal("missing Pull metric")
	}
}

func TestReplayIsIdempotentUnderDuplicateDrain(t *testing.T) {
	w := newWorld(t, "phil", "mob")
	ctx := context.Background()
	mob := w.cals["mob"]

	w.cut("mob")
	w.nodes["mob"].Offline.GoOffline(ctx)
	m, _, err := mob.ScheduleOrQueue(ctx, pinned("standup", "2003-04-24", 9, 1, "phil"))
	if err != nil {
		t.Fatal(err)
	}
	op := w.nodes["mob"].Offline.Queue().Ops()[0]

	w.heal("mob")
	if err := w.nodes["mob"].Offline.TryReconnect(ctx); err != nil {
		t.Fatal(err)
	}
	first, _ := mob.Meeting(m.ID)

	// Simulate a re-delivered drain of the already-pushed op (a crash
	// between replay and ack): the pinned id makes it a no-op.
	if err := mob.ReplayOp(ctx, op); err != nil {
		t.Fatalf("duplicate replay: %v", err)
	}
	second, _ := mob.Meeting(m.ID)
	if second.LinkID != first.LinkID {
		t.Fatalf("duplicate replay rebuilt the meeting: link %s -> %s", first.LinkID, second.LinkID)
	}
	if info := w.cals["phil"].Slot(calendar.Slot{Day: "2003-04-24", Hour: 9}); info.Meeting != m.ID {
		t.Fatalf("phil's slot after duplicate replay = %+v", info)
	}
}

func TestTryReconnectAbortsWhenDirectoryUnreachable(t *testing.T) {
	w := newWorld(t, "phil", "mob")
	ctx := context.Background()

	w.cut("mob")
	w.nodes["mob"].Offline.GoOffline(ctx)
	if err := w.nodes["mob"].Offline.TryReconnect(ctx); err == nil {
		t.Fatal("TryReconnect should fail while the directory is unreachable")
	}
	if got := w.nodes["mob"].Offline.State(); got != offline.StateOffline {
		t.Fatalf("state = %s, want offline after failed reconnect", got)
	}
}

// TestRelevancePullBeatsFullPull is the comparative test: a device
// pulling with the relevance predicate receives only the entities it
// participates in, while the full-state baseline ships everything.
func TestRelevancePullBeatsFullPull(t *testing.T) {
	w := newWorld(t, "andy", "mob")
	ctx := context.Background()
	andy := w.cals["andy"]

	const total, shared = 24, 4
	day := func(i int) string { return fmt.Sprintf("2003-05-%02d", 1+i%28) }
	for i := 0; i < total; i++ {
		req := pinned(fmt.Sprintf("m%02d", i), day(i), 9+i/28, 1)
		if i < shared {
			req.Must = []string{"mob"}
		}
		if _, err := andy.SetupMeeting(ctx, req); err != nil {
			t.Fatal(err)
		}
	}

	pull := func(all bool) offline.PullResult {
		var res offline.PullResult
		err := w.nodes["mob"].Engine.Invoke(ctx, offline.ServiceFor("andy"), "Pull", wire.Args{
			"subscriber": "mob", "all": all,
		}, &res)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	rel := pull(false)
	full := pull(true)
	if full.Sent != total {
		t.Fatalf("full pull sent %d, want %d", full.Sent, total)
	}
	if rel.Sent != shared {
		t.Fatalf("relevance pull sent %d, want %d", rel.Sent, shared)
	}
	if rel.Irrelevant != total-shared {
		t.Fatalf("irrelevant = %d, want %d", rel.Irrelevant, total-shared)
	}
	relBytes, fullBytes := payloadBytes(rel), payloadBytes(full)
	if relBytes*2 >= fullBytes {
		t.Fatalf("relevance pull should be well under half the bytes: %d vs %d", relBytes, fullBytes)
	}

	// Version vector: once mob is caught up, unchanged rows cost zero
	// payload bytes.
	have := map[string]int64{}
	for _, e := range rel.Entities {
		have[e.Entity] = e.Version
	}
	var res offline.PullResult
	if err := w.nodes["mob"].Engine.Invoke(ctx, offline.ServiceFor("andy"), "Pull", wire.Args{
		"subscriber": "mob", "versions": have,
	}, &res); err != nil {
		t.Fatal(err)
	}
	if res.Sent != 0 || res.Unchanged != shared {
		t.Fatalf("caught-up pull = %+v, want 0 sent / %d unchanged", res, shared)
	}
}

func payloadBytes(res offline.PullResult) int {
	n := 0
	for _, e := range res.Entities {
		n += len(e.Doc)
	}
	return n
}
