package offline

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/directory"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/wire"
)

// newTestManager builds a Manager whose directory has no server behind
// it — enough for the state machine, interceptor, and servePull, none
// of which need a live deployment.
func newTestManager(t *testing.T, cfg Config) *Manager {
	t.Helper()
	net := sim.New(sim.Config{})
	cfg.User = "phil"
	cfg.DB = store.NewDB()
	cfg.Dir = directory.NewClient(net, "dir")
	cfg.Engine = engine.New(net, cfg.Dir, "phil")
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewManagerValidatesConfig(t *testing.T) {
	if _, err := NewManager(Config{}); err == nil {
		t.Fatal("want error for missing required config")
	}
}

func TestInterceptorFastFailsInLocalMode(t *testing.T) {
	m := newTestManager(t, Config{})
	calls := 0
	inv := m.Interceptor()(func(ctx context.Context, call *engine.Call, out any) error {
		calls++
		return nil
	})
	call := &engine.Call{Service: "cal.andy", Method: "GetFreeSlots"}

	if err := inv(context.Background(), call, nil); err != nil || calls != 1 {
		t.Fatalf("online invoke: err=%v calls=%d", err, calls)
	}

	m.GoOffline(context.Background())
	if m.State() != StateOffline {
		t.Fatalf("state = %s, want offline", m.State())
	}
	err := inv(context.Background(), call, nil)
	if !IsLocalMode(err) {
		t.Fatalf("local-mode error = %v, want IsLocalMode", err)
	}
	if !strings.Contains(err.Error(), "cal.andy.GetFreeSlots") {
		t.Fatalf("error should name the blocked call: %v", err)
	}
	if calls != 1 {
		t.Fatalf("local mode must not touch the network: calls = %d", calls)
	}
}

func TestIsLocalModeRejectsOtherUnavailable(t *testing.T) {
	if IsLocalMode(&wire.RemoteError{Code: wire.CodeUnavailable, Msg: "partition between a and b"}) {
		t.Fatal("plain unavailable must not look like local mode")
	}
	if IsLocalMode(nil) {
		t.Fatal("nil is not local mode")
	}
}

func TestFailureThresholdFlipsOffline(t *testing.T) {
	var transitions []State
	m := newTestManager(t, Config{
		FailureThreshold: 3,
		OnState:          func(s State) { transitions = append(transitions, s) },
	})
	unavailable := &wire.RemoteError{Code: wire.CodeUnavailable, Msg: "gone"}
	inv := m.Interceptor()(func(ctx context.Context, call *engine.Call, out any) error {
		return unavailable
	})
	call := &engine.Call{Service: "cal.andy", Method: "X"}

	for i := 0; i < 2; i++ {
		inv(context.Background(), call, nil)
	}
	if m.State() != StateOnline {
		t.Fatalf("state after 2 failures = %s, want online", m.State())
	}
	inv(context.Background(), call, nil)
	if m.State() != StateOffline {
		t.Fatalf("state after 3 failures = %s, want offline", m.State())
	}
	if len(transitions) != 1 || transitions[0] != StateOffline {
		t.Fatalf("transitions = %v, want [offline]", transitions)
	}
}

func TestNoteSuccessResetsFailureCount(t *testing.T) {
	m := newTestManager(t, Config{FailureThreshold: 2})
	m.NoteFailure()
	m.NoteSuccess()
	m.NoteFailure()
	if m.State() != StateOnline {
		t.Fatalf("state = %s, want online (success between failures resets the count)", m.State())
	}
	m.NoteFailure()
	if m.State() != StateOffline {
		t.Fatalf("state = %s, want offline", m.State())
	}
}

// mapSource is a fake application adapter: docs keyed by entity, with
// an explicit relevance set per requester.
type mapSource struct {
	docs     map[string]string
	relevant map[string]map[string]bool
}

func (s *mapSource) Relevant(requester, entity string) bool { return s.relevant[requester][entity] }
func (s *mapSource) Snapshot(entity string) (json.RawMessage, bool) {
	d, ok := s.docs[entity]
	return json.RawMessage(d), ok
}

func TestServePullFiltersByRelevanceAndVersion(t *testing.T) {
	met := metrics.NewRegistry()
	m := newTestManager(t, Config{Metrics: met})
	src := &mapSource{
		docs: map[string]string{
			"meeting:m1": `{"id":"m1"}`,
			"meeting:m2": `{"id":"m2"}`,
			"meeting:m3": `{"id":"m3"}`,
		},
		relevant: map[string]map[string]bool{
			"andy": {"meeting:m1": true, "meeting:m2": true},
		},
	}
	m.SetSource(src)
	m.Versions().Bump("meeting:m1")
	m.Versions().Bump("meeting:m2")
	m.Versions().Bump("meeting:m2") // m2 at version 2
	m.Versions().Bump("meeting:m3")

	// First pull: andy has nothing; m3 is not relevant to andy.
	res := m.servePull(context.Background(), "andy", nil, false)
	if res.Total != 3 || res.Sent != 2 || res.Irrelevant != 1 || res.Unchanged != 0 {
		t.Fatalf("first pull = %+v", res)
	}

	// Second pull with an up-to-date vector: zero entities shipped.
	res = m.servePull(context.Background(), "andy", map[string]int64{"meeting:m1": 1, "meeting:m2": 2}, false)
	if res.Sent != 0 || res.Unchanged != 2 {
		t.Fatalf("caught-up pull = %+v, want 0 sent / 2 unchanged", res)
	}

	// A stale entry re-ships only the changed entity.
	res = m.servePull(context.Background(), "andy", map[string]int64{"meeting:m1": 1, "meeting:m2": 1}, false)
	if res.Sent != 1 || res.Entities[0].Entity != "meeting:m2" || res.Entities[0].Version != 2 {
		t.Fatalf("stale pull = %+v, want only meeting:m2@2", res)
	}

	// all=true bypasses relevance: the full-pull baseline ships m3 too.
	res = m.servePull(context.Background(), "andy", nil, true)
	if res.Sent != 3 || res.Irrelevant != 0 {
		t.Fatalf("full pull = %+v, want 3 sent", res)
	}

	if e := met.Snapshot().Find(metrics.LayerSync, ServiceFor("phil"), "Pull.serve", ""); e == nil || e.Count != 4 {
		t.Fatalf("Pull.serve metric = %+v, want count 4", e)
	}
}

func TestSyncObjectPullValidatesArgs(t *testing.T) {
	m := newTestManager(t, Config{})
	obj := m.SyncObject()
	if obj == nil {
		t.Fatal("nil sync object")
	}
	// EnqueueOp feeds the durable queue through the manager.
	if _, err := m.EnqueueOp("schedule", "m1", []byte("{}")); err != nil {
		t.Fatal(err)
	}
	if m.Queue().Len() != 1 {
		t.Fatalf("queue len = %d, want 1", m.Queue().Len())
	}
}
