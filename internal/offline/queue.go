// Package offline implements disconnected operation (paper §5.2, §7):
// a device that loses the network keeps serving local calendar reads
// and keeps *accepting* writes, parking them in a durable outbound op
// queue. On reconnect it runs a two-way sync session over the
// sync.<user> RPC object — replaying queued ops through the normal
// coordination-link machinery (so conflicting bookings reconcile via
// tentative-link priority promotion, not ad-hoc merge code) and pulling
// only the peers' entities that are relevant to it, filtered
// server-side with per-entity version vectors so unchanged rows cost
// zero bytes (the data-relevance sync model of PAPERS.md).
package offline

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/store"
	"repro/internal/wire"
)

// Overflow selects what Enqueue does when the queue is at capacity.
type Overflow string

// Overflow policies.
const (
	// DropOldest evicts the oldest queued op to admit the new one.
	// The device stays writable at the cost of shedding stale intent —
	// the right trade for a PDA that may be gone for days.
	DropOldest Overflow = "drop-oldest"
	// RejectNew refuses the new op with CodeUnavailable, preserving
	// everything already acknowledged into the queue.
	RejectNew Overflow = "reject-new"
)

// opsSchema is the durable op-queue table. It lives in the node's own
// store DB, so with core.WithDurability every enqueue/ack is logged to
// the WAL and the queue survives a crash mid-disconnect.
var opsSchema = store.Schema{
	Name: "SyD_OfflineOps",
	Columns: []store.Column{
		{Name: "seq", Type: store.Int},
		{Name: "id", Type: store.String},
		{Name: "kind", Type: store.String},
		{Name: "payload", Type: store.String},
		{Name: "queued", Type: store.Time},
	},
	Key: []string{"seq"},
}

// Op is one queued outbound operation.
type Op struct {
	// Seq orders ops; assigned by Enqueue.
	Seq int64
	// ID is the op's idempotency key (e.g. a pre-minted meeting id) so
	// a replay interrupted mid-drain can be retried without double
	// effect.
	ID string
	// Kind names the application operation ("schedule", "cancel", ...).
	Kind string
	// Payload is the kind-specific document (JSON).
	Payload []byte
	// Queued is when the op was accepted.
	Queued time.Time
}

// Queue is the durable, bounded outbound op queue. Safe for concurrent
// use.
type Queue struct {
	user string
	t    *store.Table
	met  *metrics.Registry

	mu      sync.Mutex
	nextSeq int64
	cap     int
	policy  Overflow
}

// NewQueue opens (or creates) the op-queue table in db. capacity <= 0
// defaults to 1024; an empty policy defaults to DropOldest. Reopening
// over a recovered DB resumes the sequence after the highest surviving
// op.
func NewQueue(db *store.DB, user string, capacity int, policy Overflow, met *metrics.Registry) (*Queue, error) {
	if capacity <= 0 {
		capacity = 1024
	}
	switch policy {
	case "":
		policy = DropOldest
	case DropOldest, RejectNew:
	default:
		return nil, fmt.Errorf("offline: unknown overflow policy %q", policy)
	}
	t, err := db.Table(opsSchema.Name)
	if err != nil {
		if t, err = db.CreateTable(opsSchema); err != nil {
			return nil, err
		}
	}
	q := &Queue{user: user, t: t, met: met, cap: capacity, policy: policy}
	for _, r := range t.Select(nil) {
		if s := r["seq"].(int64); s >= q.nextSeq {
			q.nextSeq = s + 1
		}
	}
	return q, nil
}

// Cap returns the queue's capacity.
func (q *Queue) Cap() int { return q.cap }

// Enqueue accepts an op, applying the overflow policy at capacity, and
// returns the assigned sequence number.
func (q *Queue) Enqueue(op Op) (int64, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.t.Count() >= q.cap {
		if q.policy == RejectNew {
			q.observe("queue.reject")
			return 0, &wire.RemoteError{Code: wire.CodeUnavailable,
				Msg: fmt.Sprintf("offline: %s op queue full (%d ops)", q.user, q.cap)}
		}
		// DropOldest: evict the lowest sequence number.
		oldest := int64(-1)
		for _, r := range q.t.Select(nil) {
			if s := r["seq"].(int64); oldest < 0 || s < oldest {
				oldest = s
			}
		}
		if oldest >= 0 {
			if err := q.t.Delete(oldest); err != nil {
				return 0, err
			}
			q.observe("queue.drop")
		}
	}
	seq := q.nextSeq
	q.nextSeq++
	err := q.t.Insert(store.Row{
		"seq": seq, "id": op.ID, "kind": op.Kind,
		"payload": string(op.Payload), "queued": op.Queued,
	})
	if err != nil {
		return 0, err
	}
	q.observe("queue.enqueue")
	return seq, nil
}

// Ops returns all queued ops in sequence order.
func (q *Queue) Ops() []Op {
	rows := q.t.Select(nil)
	out := make([]Op, 0, len(rows))
	for _, r := range rows {
		out = append(out, Op{
			Seq:     r["seq"].(int64),
			ID:      r["id"].(string),
			Kind:    r["kind"].(string),
			Payload: []byte(r["payload"].(string)),
			Queued:  r["queued"].(time.Time),
		})
	}
	sortOps(out)
	return out
}

func sortOps(ops []Op) {
	for i := 1; i < len(ops); i++ {
		for j := i; j > 0 && ops[j].Seq < ops[j-1].Seq; j-- {
			ops[j], ops[j-1] = ops[j-1], ops[j]
		}
	}
}

// Ack removes a drained op.
func (q *Queue) Ack(seq int64) error {
	if err := q.t.Delete(seq); err != nil {
		return err
	}
	q.observe("queue.drain")
	return nil
}

// Len returns the number of queued ops.
func (q *Queue) Len() int { return q.t.Count() }

func (q *Queue) observe(what string) {
	if q.met != nil {
		q.met.Observe(metrics.LayerSync, ServiceFor(q.user), what, "", 0)
	}
}
