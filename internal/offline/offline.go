package offline

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/clock"
	"repro/internal/directory"
	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/store"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/wire"
)

// State is the manager's connectivity state.
type State string

// States. The machine is online → offline (send failures or explicit
// GoOffline) → syncing (directory Touch succeeded, session running) →
// online (session complete) — with syncing falling back to offline if
// the partition returns mid-session.
const (
	StateOnline  State = "online"
	StateOffline State = "offline"
	StateSyncing State = "syncing"
)

// localModeMsg prefixes the fast-fail error the interceptor returns for
// remote invocations attempted in local mode.
const localModeMsg = "offline: local mode"

// IsLocalMode reports whether err is the interceptor's local-mode
// fast-fail — the caller's cue to park the operation in the op queue.
func IsLocalMode(err error) bool {
	var re *wire.RemoteError
	return errors.As(err, &re) && re.Code == wire.CodeUnavailable && strings.HasPrefix(re.Msg, localModeMsg)
}

// Config configures a Manager.
type Config struct {
	// User is the device's SyD identity (required).
	User string
	// DB is the node's store; the op queue and version tables live in
	// it, so they are WAL-backed whenever the node runs with
	// durability (required).
	DB *store.DB
	// Engine performs the reconnect session's RPCs (required).
	Engine *engine.Engine
	// Dir is the directory client used for Touch (required).
	Dir *directory.Client
	// Clock defaults to clock.System.
	Clock clock.Clock
	// QueueCap bounds the op queue (default 1024).
	QueueCap int
	// Overflow selects the at-capacity policy (default DropOldest).
	Overflow Overflow
	// FullPull disables the server-side relevance predicate on Pull —
	// the full-state baseline the comparative sync test measures
	// against. Leave false in production.
	FullPull bool
	// FailureThreshold is how many consecutive unavailable sends flip
	// the device to local mode (default 3).
	FailureThreshold int
	// Metrics and Tracer are optional observability sinks.
	Metrics *metrics.Registry
	Tracer  *trace.Tracer
	// OnState is invoked (synchronously) after every state change.
	OnState func(State)
}

// Manager owns a device's disconnected-operation machinery: the state
// machine, the durable op queue, the version tables, and both halves
// of the sync session. Safe for concurrent use.
type Manager struct {
	user      string
	eng       *engine.Engine
	dir       *directory.Client
	clock     clock.Clock
	met       *metrics.Registry
	tracer    *trace.Tracer
	fullPull  bool
	threshold int32
	onState   func(State)

	q        *Queue
	versions *Versions
	peerVers *store.Table

	state        atomic.Value // State
	failures     atomic.Int32
	reconnecting atomic.Bool

	mu      sync.Mutex
	source  Source
	applier Applier
	replay  func(ctx context.Context, op Op) error
	peers   func() []string
}

// NewManager builds a Manager over the node's store.
func NewManager(cfg Config) (*Manager, error) {
	if cfg.User == "" || cfg.DB == nil || cfg.Engine == nil || cfg.Dir == nil {
		return nil, fmt.Errorf("offline: User, DB, Engine, and Dir are required")
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.System
	}
	if cfg.FailureThreshold <= 0 {
		cfg.FailureThreshold = 3
	}
	q, err := NewQueue(cfg.DB, cfg.User, cfg.QueueCap, cfg.Overflow, cfg.Metrics)
	if err != nil {
		return nil, err
	}
	vers, err := NewVersions(cfg.DB)
	if err != nil {
		return nil, err
	}
	pv, err := cfg.DB.Table(peerVersionsSchema.Name)
	if err != nil {
		if pv, err = cfg.DB.CreateTable(peerVersionsSchema); err != nil {
			return nil, err
		}
	}
	m := &Manager{
		user:      cfg.User,
		eng:       cfg.Engine,
		dir:       cfg.Dir,
		clock:     cfg.Clock,
		met:       cfg.Metrics,
		tracer:    cfg.Tracer,
		fullPull:  cfg.FullPull,
		threshold: int32(cfg.FailureThreshold),
		onState:   cfg.OnState,
		q:         q,
		versions:  vers,
		peerVers:  pv,
	}
	m.state.Store(StateOnline)
	return m, nil
}

// State returns the current connectivity state.
func (m *Manager) State() State { return m.state.Load().(State) }

// Queue returns the outbound op queue.
func (m *Manager) Queue() *Queue { return m.q }

// Versions returns the local per-entity version table. The application
// bumps an entity's version on every local mutation.
func (m *Manager) Versions() *Versions { return m.versions }

// SetSource wires the application adapter the sync server reads from.
func (m *Manager) SetSource(s Source) {
	m.mu.Lock()
	m.source = s
	m.mu.Unlock()
}

// SetApplier wires the adapter that applies pulled entities.
func (m *Manager) SetApplier(a Applier) {
	m.mu.Lock()
	m.applier = a
	m.mu.Unlock()
}

// SetReplayer wires the function that replays one queued op during the
// push phase.
func (m *Manager) SetReplayer(f func(ctx context.Context, op Op) error) {
	m.mu.Lock()
	m.replay = f
	m.mu.Unlock()
}

// SetPeers wires the function listing the peers a reconnect session
// pulls from (the users this device shares meetings or links with).
func (m *Manager) SetPeers(f func() []string) {
	m.mu.Lock()
	m.peers = f
	m.mu.Unlock()
}

func (m *Manager) getSource() Source {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.source
}

func (m *Manager) getApplier() Applier {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.applier
}

func (m *Manager) getReplayer() func(ctx context.Context, op Op) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.replay
}

func (m *Manager) getPeers() func() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.peers
}

func (m *Manager) setState(s State) {
	if m.state.Swap(s) == s {
		return
	}
	m.observe("state."+string(s), "", 0)
	if m.onState != nil {
		m.onState(s)
	}
}

// EnqueueOp parks an outbound op in the durable queue.
func (m *Manager) EnqueueOp(kind, id string, payload []byte) (int64, error) {
	return m.q.Enqueue(Op{ID: id, Kind: kind, Payload: payload, Queued: m.clock.Now()})
}

// GoOffline flips the device to local mode explicitly (the deliberate
// half of partition detection). The directory is told best-effort — if
// the network is already gone, liveness TTL expiry covers it.
func (m *Manager) GoOffline(ctx context.Context) {
	m.setState(StateOffline)
	_ = m.dir.SetOffline(ctx, m.user, true)
}

// NoteFailure records one unavailable send. After FailureThreshold
// consecutive failures the device flips to local mode.
func (m *Manager) NoteFailure() {
	if m.failures.Add(1) >= m.threshold && m.State() == StateOnline {
		m.setState(StateOffline)
	}
}

// NoteSuccess records a successful send, resetting failure detection.
func (m *Manager) NoteSuccess() { m.failures.Store(0) }

// Interceptor returns the engine stage that (a) fast-fails remote
// invocations in local mode without touching the network, and (b)
// feeds send outcomes into partition detection.
func (m *Manager) Interceptor() engine.Interceptor {
	return func(next engine.Invoker) engine.Invoker {
		return func(ctx context.Context, call *engine.Call, out any) error {
			if m.State() == StateOffline {
				return &wire.RemoteError{Code: wire.CodeUnavailable,
					Msg: fmt.Sprintf("%s: %s cannot reach %s.%s", localModeMsg, m.user, call.Service, call.Method)}
			}
			err := next(ctx, call, out)
			if err == nil {
				m.NoteSuccess()
			} else if isUnavailable(err) {
				m.NoteFailure()
			}
			return err
		}
	}
}

// TryReconnect probes the directory and, if reachable, runs the full
// two-way sync session: Touch (atomically un-proxies us), drain the
// proxy's update queue, push queued ops, pull relevant state. Single-
// flight: concurrent calls while a session runs are no-ops. Returns
// nil when already online.
func (m *Manager) TryReconnect(ctx context.Context) error {
	if m.State() == StateOnline {
		return nil
	}
	if !m.reconnecting.CompareAndSwap(false, true) {
		return nil
	}
	defer m.reconnecting.Store(false)
	start := m.clock.Now()
	ctx, span := m.tracer.StartSpan(ctx, "offline.reconnect")
	prev, err := m.dir.Touch(ctx, m.user)
	if err != nil {
		span.FinishErr(err)
		m.observe("Reconnect", wire.CodeUnavailable, m.clock.Now().Sub(start))
		return err
	}
	m.setState(StateSyncing)
	if prev.Proxy != "" {
		m.drainProxy(ctx, prev.Proxy)
	}
	if err := m.push(ctx); err != nil {
		m.abortSync(ctx, span, err)
		m.observe("Reconnect", wire.CodeUnavailable, m.clock.Now().Sub(start))
		return err
	}
	if err := m.pull(ctx); err != nil {
		m.abortSync(ctx, span, err)
		m.observe("Reconnect", wire.CodeUnavailable, m.clock.Now().Sub(start))
		return err
	}
	m.failures.Store(0)
	m.setState(StateOnline)
	span.Finish()
	m.observe("Reconnect", "", m.clock.Now().Sub(start))
	return nil
}

// abortSync returns to local mode after a mid-session failure and
// best-effort re-marks the directory record offline (we Touch'd it
// online, but the session did not complete).
func (m *Manager) abortSync(ctx context.Context, span *trace.Span, err error) {
	m.setState(StateOffline)
	_ = m.dir.SetOffline(ctx, m.user, true)
	span.FinishErr(err)
}

// proxyUpdate mirrors the proxy host's queued-update wire shape.
type proxyUpdate struct {
	Service string    `json:"service"`
	Method  string    `json:"method"`
	Args    wire.Args `json:"args,omitempty"`
}

// drainProxy empties the bounded update queue our proxy accumulated
// while covering for us and replays each update through the engine's
// normal invocation path. Touch already re-pointed our services at the
// device, so the updates land exactly as if the peers had delivered
// them directly — same handlers, same reconciliation rules. Best
// effort: a failure here is recoverable (peers re-push meeting docs on
// the next change, and the pull phase re-reads their state).
func (m *Manager) drainProxy(ctx context.Context, proxyAddr string) {
	ctx, span := trace.Start(ctx, "sync.proxy.drain")
	var out struct {
		Updates []proxyUpdate `json:"updates,omitempty"`
		Dropped int64         `json:"dropped"`
	}
	if err := m.eng.InvokeAddr(ctx, proxyAddr, "proxy.control", "DrainUpdates",
		wire.Args{"user": m.user}, &out); err != nil {
		span.FinishErr(err)
		return
	}
	for _, u := range out.Updates {
		_ = m.eng.Invoke(ctx, u.Service, u.Method, u.Args, nil)
	}
	span.Annotate(trace.Int("updates", len(out.Updates)), trace.Int64("dropped", out.Dropped))
	span.Finish()
	m.observe("ProxyDrain", "", 0)
}

// push drains the op queue in sequence order through the application's
// replayer. Each op that lands (or is definitively rejected) is acked
// out of the queue; an unavailable error aborts the session with the
// remaining ops still queued.
func (m *Manager) push(ctx context.Context) error {
	start := m.clock.Now()
	ctx, span := trace.Start(ctx, "sync.push")
	replay := m.getReplayer()
	ops := m.q.Ops()
	span.Annotate(trace.Int("ops", len(ops)))
	rejected := 0
	for _, op := range ops {
		if replay != nil {
			if err := replay(ctx, op); err != nil {
				if isUnavailable(err) {
					span.FinishErr(err)
					m.observe("Push", wire.CodeUnavailable, m.clock.Now().Sub(start))
					return err
				}
				// Definitive rejection: the op can never succeed
				// (malformed, permission). Shed it, but visibly.
				rejected++
				m.observe("queue.rejected", wire.CodeOf(err), 0)
			}
		}
		if err := m.q.Ack(op.Seq); err != nil {
			span.FinishErr(err)
			return err
		}
	}
	span.Annotate(trace.Int("rejected", rejected))
	span.Finish()
	m.observe("Push", "", m.clock.Now().Sub(start))
	return nil
}

// pull fetches relevant newer-than-known entities from every peer and
// applies them locally. A peer that is itself unreachable (or predates
// the sync service) is skipped — the next session covers it.
func (m *Manager) pull(ctx context.Context) error {
	start := m.clock.Now()
	ctx, span := trace.Start(ctx, "sync.pull")
	defer span.Finish()
	var peers []string
	if f := m.getPeers(); f != nil {
		peers = f()
	}
	applier := m.getApplier()
	applied := 0
	for _, p := range peers {
		if p == m.user {
			continue
		}
		var res PullResult
		err := m.eng.Invoke(ctx, ServiceFor(p), "Pull", wire.Args{
			"subscriber": m.user,
			"versions":   m.knownVersions(p),
			"all":        m.fullPull,
		}, &res)
		if err != nil {
			continue
		}
		for _, e := range res.Entities {
			if applier == nil {
				break
			}
			if err := applier.Apply(e.Entity, e.Version, e.Doc); err != nil {
				continue
			}
			m.setKnownVersion(p, e.Entity, e.Version)
			applied++
		}
	}
	span.Annotate(trace.Int("peers", len(peers)), trace.Int("applied", applied))
	m.observe("Pull", "", m.clock.Now().Sub(start))
	return nil
}

// knownVersions returns the version vector this device holds for
// peer's entities.
func (m *Manager) knownVersions(peer string) map[string]int64 {
	out := map[string]int64{}
	for _, r := range m.peerVers.SelectEq("peer", peer) {
		out[r["entity"].(string)] = r["ver"].(int64)
	}
	return out
}

func (m *Manager) setKnownVersion(peer, entity string, ver int64) {
	if _, ok := m.peerVers.Get(peer, entity); ok {
		_ = m.peerVers.Update(store.Row{"ver": ver}, peer, entity)
		return
	}
	_ = m.peerVers.Insert(store.Row{"peer": peer, "entity": entity, "ver": ver})
}

func isUnavailable(err error) bool {
	return errors.Is(err, transport.ErrUnreachable) || wire.CodeOf(err) == wire.CodeUnavailable
}
