package offline_test

import (
	"context"
	"testing"
	"time"

	"repro/internal/calendar"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/directory"
	"repro/internal/metrics"
	"repro/internal/offline"
	"repro/internal/proxy"
	"repro/internal/sim"
)

// TestReconnectDrainsProxyQueue covers the third leg of the reconnect
// session: a proxy absorbed MeetingUpdate notifications for the
// disconnected device, and the session drains them before push/pull.
// The queue is deliberately tiny so some updates drop — those are
// recovered by the relevance pull, which is the point of keeping the
// proxy queue bounded.
func TestReconnectDrainsProxyQueue(t *testing.T) {
	net := sim.New(sim.Config{})
	clk := clock.NewFake(time.Date(2003, 4, 21, 8, 0, 0, 0, time.UTC))
	srv := directory.NewServer(directory.WithClock(clk), directory.WithTTL(time.Hour))
	if _, err := net.Listen("dir", srv.Handler()); err != nil {
		t.Fatal(err)
	}
	met := metrics.NewRegistry()
	ctx := context.Background()

	// The proxy must exist before users register so the directory binds
	// it to them.
	ph, err := proxy.StartHost(ctx, proxy.HostConfig{
		ID: "p1", Net: net, DirAddr: "dir",
		QueueMethods:   []string{"MeetingUpdate"},
		UpdateQueueCap: 2,
		Metrics:        met,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ph.Close()

	w := &world{
		net: net, clk: clk,
		dir:   directory.NewClient(net, "dir"),
		met:   met,
		nodes: map[string]*core.Node{},
		cals:  map[string]*calendar.Calendar{},
	}
	w.addUser(t, "andy")
	w.addUser(t, "mob")
	andy, mob := w.cals["andy"], w.cals["mob"]

	// mob drops off; andy schedules three meetings that include mob.
	// Each schedule pushes a MeetingUpdate at cal.mob, which fails over
	// to the proxy and lands in the bounded queue (cap 2 → one drop).
	w.cut("mob")
	w.nodes["mob"].Offline.GoOffline(ctx)
	days := []string{"2003-04-23", "2003-04-24", "2003-04-25"}
	ids := make([]string, len(days))
	for i, d := range days {
		m, err := andy.SetupMeeting(ctx, pinned("sync", d, 10, 1, "mob"))
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = m.ID
	}
	if got := len(ph.QueuedUpdates("mob")); got != 2 {
		t.Fatalf("proxy queued %d updates, want 2 (cap)", got)
	}
	if e := met.Snapshot().Find(metrics.LayerSync, proxy.ControlServiceFor("p1"), "proxy_queue_dropped", ""); e == nil || e.Count != 1 {
		t.Fatalf("proxy_queue_dropped = %+v, want count 1", e)
	}

	// Reconnect: the session drains the proxy queue, then pulls — so
	// even the dropped update's meeting reaches mob.
	w.heal("mob")
	if err := w.nodes["mob"].Offline.TryReconnect(ctx); err != nil {
		t.Fatalf("TryReconnect: %v", err)
	}
	if got := len(ph.QueuedUpdates("mob")); got != 0 {
		t.Fatalf("proxy queue not drained: %d left", got)
	}
	for _, id := range ids {
		if _, ok := mob.Meeting(id); !ok {
			t.Fatalf("meeting %s missing at mob after reconnect", id)
		}
	}
	if e := met.Snapshot().Find(metrics.LayerSync, offline.ServiceFor("mob"), "ProxyDrain", ""); e == nil || e.Count != 1 {
		t.Fatalf("ProxyDrain metric = %+v, want count 1", e)
	}
}
