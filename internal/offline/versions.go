package offline

import (
	"sync"

	"repro/internal/store"
)

// versionsSchema tracks a per-entity monotonic version counter on the
// serving side: bumped on every local mutation, it is what lets a Pull
// skip unchanged entities entirely.
var versionsSchema = store.Schema{
	Name: "SyD_SyncVersions",
	Columns: []store.Column{
		{Name: "entity", Type: store.String},
		{Name: "ver", Type: store.Int},
	},
	Key: []string{"entity"},
}

// peerVersionsSchema is the puller's side of the version vector: the
// highest version of each remote entity this device has already
// applied, keyed per origin peer. Sending it with Pull makes unchanged
// rows cost zero bytes.
var peerVersionsSchema = store.Schema{
	Name: "SyD_SyncPeerVersions",
	Columns: []store.Column{
		{Name: "peer", Type: store.String},
		{Name: "entity", Type: store.String},
		{Name: "ver", Type: store.Int},
	},
	Key: []string{"peer", "entity"},
}

// Versions is the per-entity version table. Safe for concurrent use;
// durable when the DB is WAL-backed.
type Versions struct {
	mu sync.Mutex
	t  *store.Table
}

// NewVersions opens (or creates) the version table in db.
func NewVersions(db *store.DB) (*Versions, error) {
	t, err := db.Table(versionsSchema.Name)
	if err != nil {
		if t, err = db.CreateTable(versionsSchema); err != nil {
			return nil, err
		}
	}
	return &Versions{t: t}, nil
}

// Bump increments entity's version and returns the new value.
func (v *Versions) Bump(entity string) int64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	if r, ok := v.t.Get(entity); ok {
		next := r["ver"].(int64) + 1
		_ = v.t.Update(store.Row{"ver": next}, entity)
		return next
	}
	_ = v.t.Insert(store.Row{"entity": entity, "ver": int64(1)})
	return 1
}

// Get returns entity's current version (0 when never bumped).
func (v *Versions) Get(entity string) int64 {
	r, ok := v.t.Get(entity)
	if !ok {
		return 0
	}
	return r["ver"].(int64)
}

// All returns a copy of the full entity→version map.
func (v *Versions) All() map[string]int64 {
	rows := v.t.Select(nil)
	out := make(map[string]int64, len(rows))
	for _, r := range rows {
		out[r["entity"].(string)] = r["ver"].(int64)
	}
	return out
}
