package offline

import (
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/store"
	"repro/internal/wal"
	"repro/internal/wire"
)

func TestQueueEnqueueOrderAndAck(t *testing.T) {
	q, err := NewQueue(store.NewDB(), "phil", 10, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if q.Cap() != 10 {
		t.Fatalf("cap = %d, want 10", q.Cap())
	}
	for _, id := range []string{"a", "b", "c"} {
		if _, err := q.Enqueue(Op{ID: id, Kind: "schedule", Payload: []byte("{}"), Queued: time.Now()}); err != nil {
			t.Fatal(err)
		}
	}
	ops := q.Ops()
	if len(ops) != 3 {
		t.Fatalf("len = %d, want 3", len(ops))
	}
	for i, want := range []string{"a", "b", "c"} {
		if ops[i].ID != want || ops[i].Seq != int64(i) {
			t.Fatalf("ops[%d] = %+v, want id %s seq %d", i, ops[i], want, i)
		}
	}
	if err := q.Ack(ops[0].Seq); err != nil {
		t.Fatal(err)
	}
	if q.Len() != 2 {
		t.Fatalf("len after ack = %d, want 2", q.Len())
	}
	if got := q.Ops()[0].ID; got != "b" {
		t.Fatalf("head after ack = %s, want b", got)
	}
}

func TestQueueDropOldestAtCapacity(t *testing.T) {
	met := metrics.NewRegistry()
	q, err := NewQueue(store.NewDB(), "phil", 3, DropOldest, met)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"a", "b", "c", "d", "e"} {
		if _, err := q.Enqueue(Op{ID: id, Kind: "schedule"}); err != nil {
			t.Fatal(err)
		}
	}
	ops := q.Ops()
	if len(ops) != 3 {
		t.Fatalf("len = %d, want 3", len(ops))
	}
	for i, want := range []string{"c", "d", "e"} {
		if ops[i].ID != want {
			t.Fatalf("ops[%d].ID = %s, want %s (oldest should be evicted)", i, ops[i].ID, want)
		}
	}
	e := met.Snapshot().Find(metrics.LayerSync, ServiceFor("phil"), "queue.drop", "")
	if e == nil || e.Count != 2 {
		t.Fatalf("queue.drop metric = %+v, want count 2", e)
	}
}

func TestQueueRejectNewAtCapacity(t *testing.T) {
	q, err := NewQueue(store.NewDB(), "phil", 2, RejectNew, nil)
	if err != nil {
		t.Fatal(err)
	}
	q.Enqueue(Op{ID: "a"})
	q.Enqueue(Op{ID: "b"})
	if _, err := q.Enqueue(Op{ID: "c"}); wire.CodeOf(err) != wire.CodeUnavailable {
		t.Fatalf("overflow error = %v, want CodeUnavailable", err)
	}
	if q.Len() != 2 || q.Ops()[0].ID != "a" {
		t.Fatalf("queue mutated by rejected enqueue: %+v", q.Ops())
	}
}

func TestQueueUnknownPolicyRejected(t *testing.T) {
	if _, err := NewQueue(store.NewDB(), "phil", 2, Overflow("bogus"), nil); err == nil {
		t.Fatal("want error for unknown overflow policy")
	}
}

func TestQueueReopenResumesSequence(t *testing.T) {
	db := store.NewDB()
	q1, err := NewQueue(db, "phil", 10, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	q1.Enqueue(Op{ID: "a"})
	q1.Enqueue(Op{ID: "b"})
	q1.Ack(0)

	q2, err := NewQueue(db, "phil", 10, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := q2.Enqueue(Op{ID: "c"})
	if err != nil {
		t.Fatal(err)
	}
	if seq != 2 {
		t.Fatalf("seq after reopen = %d, want 2 (must not reuse acked sequence numbers)", seq)
	}
}

func TestQueueSurvivesWALRecovery(t *testing.T) {
	dir := t.TempDir()
	d, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	q, err := NewQueue(d.DB, "phil", 10, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	q.Enqueue(Op{ID: "a", Kind: "schedule", Payload: []byte(`{"title":"x"}`), Queued: time.Now()})
	q.Enqueue(Op{ID: "b", Kind: "cancel"})
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	q2, err := NewQueue(d2.DB, "phil", 10, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	ops := q2.Ops()
	if len(ops) != 2 || ops[0].ID != "a" || ops[1].ID != "b" {
		t.Fatalf("recovered ops = %+v, want [a b]", ops)
	}
	if string(ops[0].Payload) != `{"title":"x"}` {
		t.Fatalf("payload lost in recovery: %q", ops[0].Payload)
	}
	if seq, _ := q2.Enqueue(Op{ID: "c"}); seq != 2 {
		t.Fatalf("seq after recovery = %d, want 2", seq)
	}
}

func TestVersions(t *testing.T) {
	db := store.NewDB()
	v, err := NewVersions(db)
	if err != nil {
		t.Fatal(err)
	}
	if got := v.Get("meeting:m1"); got != 0 {
		t.Fatalf("unbumped version = %d, want 0", got)
	}
	if got := v.Bump("meeting:m1"); got != 1 {
		t.Fatalf("first bump = %d, want 1", got)
	}
	if got := v.Bump("meeting:m1"); got != 2 {
		t.Fatalf("second bump = %d, want 2", got)
	}
	v.Bump("meeting:m2")
	all := v.All()
	if len(all) != 2 || all["meeting:m1"] != 2 || all["meeting:m2"] != 1 {
		t.Fatalf("All() = %v", all)
	}

	// A reopened Versions over the same DB sees the same counters.
	v2, err := NewVersions(db)
	if err != nil {
		t.Fatal(err)
	}
	if got := v2.Get("meeting:m1"); got != 2 {
		t.Fatalf("reopened version = %d, want 2", got)
	}
}
