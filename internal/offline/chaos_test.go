package offline_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/calendar"
	"repro/internal/offline"
)

// TestChaosFlappingDeviceConvergence is the disconnected-operation
// chaos proof: three devices negotiate meetings while one of them
// (mob) repeatedly drops off the network, queues work locally, and
// reconnects. Run under -race. After the final reconnect:
//
//   - no acked local op is lost: every offline booking that was not
//     cancelled exists as a fully negotiated meeting,
//   - duplicate drains are absorbed: re-replaying captured ops changes
//     nothing,
//   - conflicting offline bookings converge through tentative-link
//     promotion rather than diverging.
func TestChaosFlappingDeviceConvergence(t *testing.T) {
	w := newWorld(t, "andy", "phil", "mob")
	ctx := context.Background()
	andy, phil, mob := w.cals["andy"], w.cals["phil"], w.cals["mob"]
	mobOff := w.nodes["mob"].Offline

	// A three-way meeting while everyone is online makes andy and phil
	// sync peers of mob: the relevance pull reaches known acquaintances
	// (brand-new peers are covered by the proxy-queue leg instead).
	if _, err := mob.SetupMeeting(ctx, pinned("kickoff", "2003-04-22", 9, 1, "andy", "phil")); err != nil {
		t.Fatal(err)
	}

	// Concurrent reader: a display loop on mob's device keeps reading
	// local state through every partition and reconnect. Under -race
	// this guards the offline read path against sync mutations.
	stopReads := make(chan struct{})
	readsDone := make(chan struct{})
	go func() {
		defer close(readsDone)
		for {
			select {
			case <-stopReads:
				return
			default:
				_ = mob.Meetings()
				_ = mob.Slot(calendar.Slot{Day: "2003-06-01", Hour: 8})
				time.Sleep(time.Millisecond)
			}
		}
	}()
	defer func() { close(stopReads); <-readsDone }()

	type booking struct {
		id        string
		day       string
		hour      int
		withPhil  bool
		cancelled bool
	}
	var acked []booking
	var andyIDs []string
	var savedOps []offline.Op
	totalQueued := 0

	const cycles = 8
	for c := 0; c < cycles; c++ {
		// mob flaps off. Extra sub-second flapping on one peer link
		// runs concurrently with the queuing phase as chaos noise.
		w.cut("mob")
		mobOff.GoOffline(ctx)
		stopFlap := w.net.FlapPartition("mob", "node-phil", time.Millisecond)

		// andy keeps scheduling meetings that include the absent mob.
		am, err := andy.SetupMeeting(ctx, pinned(
			fmt.Sprintf("standup-%d", c), fmt.Sprintf("2003-07-%02d", c+1), 9, 1, "mob"))
		if err != nil {
			t.Fatal(err)
		}
		andyIDs = append(andyIDs, am.ID)

		// mob queues six bookings; every other one includes phil.
		day := fmt.Sprintf("2003-06-%02d", c+1)
		cycleStart := len(acked)
		for i := 0; i < 6; i++ {
			req := pinned(fmt.Sprintf("offline-%d-%d", c, i), day, 8+i, 1)
			withPhil := i%2 == 0
			if withPhil {
				req.Must = []string{"phil"}
			}
			m, queued, err := mob.ScheduleOrQueue(ctx, req)
			if err != nil || !queued {
				t.Fatalf("cycle %d op %d: queued=%v err=%v", c, i, queued, err)
			}
			acked = append(acked, booking{id: m.ID, day: day, hour: 8 + i, withPhil: withPhil})
		}
		// Cancel the last booking of this cycle before it ever syncs,
		// and from cycle 1 on also cancel a meeting confirmed during an
		// earlier reconnect — the replayed-cancel path.
		last := &acked[len(acked)-1]
		if queued, err := mob.CancelOrQueue(ctx, last.id); err != nil || !queued {
			t.Fatalf("cycle %d stub cancel: queued=%v err=%v", c, queued, err)
		}
		last.cancelled = true
		if c > 0 {
			victim := &acked[cycleStart-6] // first booking of the previous cycle
			if queued, err := mob.CancelOrQueue(ctx, victim.id); err != nil || !queued {
				t.Fatalf("cycle %d replay cancel: queued=%v err=%v", c, queued, err)
			}
			victim.cancelled = true
		}

		totalQueued += mobOff.Queue().Len()
		if c == cycles/2 {
			savedOps = append(savedOps, mobOff.Queue().Ops()...)
		}

		stopFlap()
		w.heal("mob")
		if err := mobOff.TryReconnect(ctx); err != nil {
			t.Fatalf("cycle %d reconnect: %v", c, err)
		}
		if got := mobOff.Queue().Len(); got != 0 {
			t.Fatalf("cycle %d: queue not drained, %d left", c, got)
		}
	}

	if totalQueued < 50 {
		t.Fatalf("chaos run queued %d ops, want >= 50", totalQueued)
	}

	// No acked op lost, no phantom bookings.
	for _, b := range acked {
		m, ok := mob.Meeting(b.id)
		if !ok {
			t.Fatalf("acked booking %s lost", b.id)
		}
		if b.cancelled {
			if m.Status != calendar.StatusCancelled {
				t.Fatalf("cancelled booking %s = %s", b.id, m.Status)
			}
			if info := phil.Slot(calendar.Slot{Day: b.day, Hour: b.hour}); info.Meeting == b.id {
				t.Fatalf("cancelled booking %s still holds phil's slot", b.id)
			}
			continue
		}
		if m.Status != calendar.StatusConfirmed || m.LinkID == "" {
			t.Fatalf("booking %s = %s link=%q, want confirmed with link", b.id, m.Status, m.LinkID)
		}
		if b.withPhil {
			if info := phil.Slot(calendar.Slot{Day: b.day, Hour: b.hour}); info.Meeting != b.id {
				t.Fatalf("phil's slot %s/%d = %+v, want %s", b.day, b.hour, info, b.id)
			}
		}
	}
	// Every meeting andy created while mob was away reached mob.
	for _, id := range andyIDs {
		if _, ok := mob.Meeting(id); !ok {
			t.Fatalf("andy's meeting %s never pulled to mob", id)
		}
	}

	// Duplicate drain: replaying the captured mid-run queue again must
	// change nothing (pinned ids + link markers make ops idempotent).
	before := map[string]string{}
	for _, b := range acked {
		m, _ := mob.Meeting(b.id)
		before[b.id] = m.Status + "/" + m.LinkID
	}
	for _, op := range savedOps {
		if err := mob.ReplayOp(ctx, op); err != nil {
			t.Fatalf("duplicate replay of %s: %v", op.ID, err)
		}
	}
	for _, b := range acked {
		m, _ := mob.Meeting(b.id)
		if got := m.Status + "/" + m.LinkID; got != before[b.id] {
			t.Fatalf("duplicate replay changed %s: %s -> %s", b.id, before[b.id], got)
		}
	}

	// Conflict convergence: phil books a slot online while mob is away;
	// mob books the same slot offline. The replayed negotiation finds
	// the slot taken and parks mob's meeting on a tentative link; when
	// phil's meeting is cancelled, promotion confirms mob's.
	pm, err := phil.SetupMeeting(ctx, pinned("phil-wins", "2003-07-20", 9, 1))
	if err != nil {
		t.Fatal(err)
	}
	w.cut("mob")
	mobOff.GoOffline(ctx)
	cm, queued, err := mob.ScheduleOrQueue(ctx, pinned("mob-contends", "2003-07-20", 9, 1, "phil"))
	if err != nil || !queued {
		t.Fatalf("conflict booking: queued=%v err=%v", queued, err)
	}
	w.heal("mob")
	if err := mobOff.TryReconnect(ctx); err != nil {
		t.Fatal(err)
	}
	got, _ := mob.Meeting(cm.ID)
	if got.Satisfied() {
		t.Fatalf("conflicting booking confirmed while phil holds the slot: %+v", got)
	}
	if err := phil.CancelMeeting(ctx, pm.ID); err != nil {
		t.Fatal(err)
	}
	got, _ = mob.Meeting(cm.ID)
	if got.Status != calendar.StatusConfirmed {
		t.Fatalf("conflict did not converge after cancel: %s", got.Status)
	}
	if info := phil.Slot(calendar.Slot{Day: "2003-07-20", Hour: 9}); info.Meeting != cm.ID {
		t.Fatalf("phil's contested slot = %+v, want %s", info, cm.ID)
	}
}
