package calendar

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/engine"
	"repro/internal/links"
	"repro/internal/wire"
)

// reserveArgs builds the negotiation arguments for a meeting's slot
// reservation.
func reserveArgs(m *Meeting, allowBump bool) wire.Args {
	return wire.Args{
		"meeting":   m.ID,
		"priority":  m.Priority,
		"allowBump": allowBump,
		"day":       m.Slot.Day,
		"hour":      m.Slot.Hour,
	}
}

// backLinkTriggers are the ECA rules on a reserved participant's back
// link: any change attempt at their slot consults the initiator (§5:
// "this attempt by D would trigger its back link to A").
func backLinkTriggers(meetingID, user string) []links.Trigger {
	return []links.Trigger{{
		Event: "change", Service: ServicePrefix + "%s", Method: "ParticipantChange",
		Args: wire.Args{"meeting": meetingID, "user": user},
	}}
}

// supervisorTriggers are the rules on a supervisor's subscription back
// link: the supervisor may change at will, A is merely informed (§5).
func supervisorTriggers(meetingID, user string) []links.Trigger {
	return []links.Trigger{{
		Event: "change", Service: ServicePrefix + "%s", Method: "SupervisorChanged",
		Args: wire.Args{"meeting": meetingID, "user": user},
	}}
}

// tentativeTriggers are the rules on a tentative back link queued at an
// unavailable participant: when the link is promoted (blocking link
// deleted) or the slot becomes available, tell the initiator (§5:
// "whenever C becomes available ... informing A of C's availability").
func tentativeTriggers(meetingID, user string) []links.Trigger {
	args := wire.Args{"meeting": meetingID, "user": user}
	return []links.Trigger{
		{Event: "promote", Service: ServicePrefix + "%s", Method: "SlotAvailable", Args: args},
		{Event: "avail", Service: ServicePrefix + "%s", Method: "SlotAvailable", Args: args},
	}
}

// FindCommonSlots implements the §5 slot search: query every
// participant's calendar for free slots in the window, intersect the
// musts' and supervisors' availability, and keep slots where every
// or-group can still meet its quorum.
func (c *Calendar) FindCommonSlots(ctx context.Context, req Request) ([]Slot, error) {
	hours := req.Hours
	if hours == nil {
		hours = DefaultHours
	}
	required := append([]string{}, req.Must...)
	required = append(required, req.Supervisors...)

	freeOf := make(map[string]map[Slot]bool)
	collect := func(user string) error {
		if _, done := freeOf[user]; done {
			return nil
		}
		set := make(map[Slot]bool)
		if user == c.user {
			for _, s := range c.FreeSlots(req.FromDay, req.ToDay, hours) {
				set[s] = true
			}
			freeOf[user] = set
			return nil
		}
		var slots []Slot
		err := c.eng.Invoke(ctx, ServiceFor(user), "GetFreeSlots", wire.Args{
			"from": req.FromDay, "to": req.ToDay, "hours": hours,
		}, &slots)
		if err != nil {
			return fmt.Errorf("calendar: free slots of %s: %w", user, err)
		}
		for _, s := range slots {
			set[s] = true
		}
		freeOf[user] = set
		return nil
	}

	if err := collect(c.user); err != nil {
		return nil, err
	}
	for _, u := range required {
		if err := collect(u); err != nil {
			return nil, err
		}
	}
	// Or-group members are optional per-member; a member we cannot
	// reach simply counts as unavailable.
	for _, g := range req.OrGroups {
		for _, u := range g.Members {
			_ = collect(u)
		}
	}

	var out []Slot
	for _, day := range DaysBetween(req.FromDay, req.ToDay) {
		for _, h := range hours {
			s := Slot{Day: day, Hour: h}
			ok := freeOf[c.user][s]
			for _, u := range required {
				ok = ok && freeOf[u][s]
			}
			if !ok {
				continue
			}
			for _, g := range req.OrGroups {
				free := 0
				for _, u := range g.Members {
					if freeOf[u][s] {
						free++
					}
				}
				if free < g.K {
					ok = false
					break
				}
			}
			if ok {
				out = append(out, s)
			}
		}
	}
	return out, nil
}

// SetupMeeting implements the §5 meeting setup: find (or take) a slot,
// reserve it across participants under the appropriate negotiation
// constraints, install the coordination links, and notify everyone.
// A meeting that cannot reserve all required participants is created
// tentative with tentative back links queued at the unavailable
// participants.
func (c *Calendar) SetupMeeting(ctx context.Context, req Request) (*Meeting, error) {
	id := req.ID
	if id == "" {
		id = newMeetingID()
	}
	m := &Meeting{
		ID:          id,
		Title:       req.Title,
		Initiator:   c.user,
		Priority:    req.Priority,
		Must:        append([]string(nil), req.Must...),
		Supervisors: append([]string(nil), req.Supervisors...),
		OrGroups:    append([]OrGroup(nil), req.OrGroups...),
		LinkID:      links.NewLinkID(),
	}
	// Pick the slot.
	if req.PinSlot || req.Day != "" {
		m.Slot = Slot{Day: req.Day, Hour: req.Hour}
		if !m.Slot.Valid() {
			return nil, &wire.RemoteError{Code: wire.CodeBadArgs, Msg: fmt.Sprintf("calendar: bad slot %v", m.Slot)}
		}
	} else {
		candidates, err := c.FindCommonSlots(ctx, req)
		if err != nil {
			return nil, err
		}
		if len(candidates) == 0 {
			return nil, &wire.RemoteError{Code: wire.CodeConflict, Msg: "calendar: no common free slot in the window"}
		}
		m.Slot = candidates[0]
	}
	args := reserveArgs(m, req.AllowBump)

	// Reserve the initiator's own slot first ("Mark A for change and
	// Lock A"): without it there is no meeting at all.
	_, err := c.lm.Negotiate(ctx, links.Spec{
		Action: ActionReserve, Args: args, Constraint: links.And,
		Local: &links.LocalChange{Entity: m.Slot.Entity(), Action: ActionReserve, Args: args},
	})
	if err != nil {
		return nil, fmt.Errorf("calendar: initiator slot: %w", err)
	}
	m.Reserved = []string{c.user}

	// Reserve musts and supervisors: try them all, keep whoever can
	// be reserved (failures make the meeting tentative, §5).
	others := append(append([]string{}, m.Must...), m.Supervisors...)
	if len(others) > 0 {
		res, nerr := c.lm.Negotiate(ctx, links.Spec{
			Action: ActionReserve, Args: args,
			Targets:    slotRefs(others, m.Slot),
			Constraint: links.Or, K: 1,
		})
		// An in-doubt outcome is not a rejection: the targets in
		// res.Accepted did commit their reservations (only stragglers
		// are still being re-driven), so they count as reserved either
		// way.
		if nerr == nil || links.IsInDoubt(nerr) {
			for _, ref := range res.Accepted {
				m.Reserved = append(m.Reserved, ref.User)
			}
		}
		for _, u := range others {
			if !m.isReserved(u) {
				m.Missing = append(m.Missing, u)
			}
		}
	}

	// Reserve each or-group under its quorum; a group that cannot
	// meet its quorum reserves nobody (atomic k-of-n, §4.3).
	for _, g := range m.OrGroups {
		members := excludeReserved(g.Members, m)
		if len(members) == 0 {
			continue
		}
		res, gerr := c.lm.Negotiate(ctx, links.Spec{
			Action: ActionReserve, Args: args,
			Targets:    slotRefs(members, m.Slot),
			Constraint: links.Or, K: g.K,
		})
		if gerr == nil || links.IsInDoubt(gerr) {
			for _, ref := range res.Accepted {
				m.Reserved = append(m.Reserved, ref.User)
			}
		}
	}

	if m.satisfied() {
		m.Status = StatusConfirmed
	} else {
		m.Status = StatusTentative
	}

	if err := c.installMeetingLinks(ctx, m, req); err != nil {
		return nil, err
	}
	if err := c.putMeeting(m); err != nil {
		return nil, err
	}
	c.pushMeetingUpdate(ctx, m)
	c.notifyParticipants(ctx, m,
		fmt.Sprintf("Meeting %s (%s) %s", m.ID, m.Title, m.Status),
		fmt.Sprintf("%s at %s, initiated by %s.", m.Title, m.Slot, m.Initiator))
	return m, nil
}

// slotRefs maps users to their slot entity refs.
func slotRefs(users []string, s Slot) []links.EntityRef {
	out := make([]links.EntityRef, len(users))
	for i, u := range users {
		out[i] = links.EntityRef{User: u, Entity: s.Entity()}
	}
	return out
}

// excludeReserved filters out users already reserved (a member may be
// in several groups or also a must).
func excludeReserved(users []string, m *Meeting) []string {
	var out []string
	for _, u := range users {
		if !m.isReserved(u) && u != m.Initiator {
			out = append(out, u)
		}
	}
	return out
}

// installMeetingLinks installs the link topology of §5:
//
//   - a forward negotiation-and link at the initiator over every
//     reserved participant's slot;
//   - negotiation back links at reserved musts / or-members;
//   - subscription back links at supervisors;
//   - tentative back links (waiting on whatever blocks the slot) at
//     unreserved participants.
func (c *Calendar) installMeetingLinks(ctx context.Context, m *Meeting, req Request) error {
	aRef := links.EntityRef{User: m.Initiator, Entity: m.Slot.Entity()}
	common := links.Link{
		ID:       m.LinkID,
		Group:    m.ID,
		Priority: m.Priority,
		Expires:  req.Expires,
	}

	// Forward link at the initiator. It targets *every* participant
	// (reserved or still missing) so the §4.4 cancel cascade reaches
	// users who joined after setup (a tentative participant who
	// confirmed later) and clears queued tentative links.
	fwd := common
	fwd.Type = links.Negotiation
	fwd.Subtype = links.Permanent
	fwd.Constraint = links.And
	fwd.Owner = aRef
	for _, u := range m.Participants() {
		if u != m.Initiator {
			fwd.Targets = append(fwd.Targets, links.EntityRef{User: u, Entity: m.Slot.Entity()})
		}
	}
	fwd.Triggers = []links.Trigger{{Event: "change", Action: ActionReserve, Args: reserveArgs(m, false)}}
	if err := c.lm.AddLink(&fwd); err != nil {
		return err
	}

	// Back links at reserved participants.
	for _, u := range m.Reserved {
		if u == m.Initiator {
			continue
		}
		back := common
		back.Owner = links.EntityRef{User: u, Entity: m.Slot.Entity()}
		back.Targets = []links.EntityRef{aRef}
		if containsString(m.Supervisors, u) {
			back.Type = links.Subscription
			back.Subtype = links.Permanent
			back.Triggers = supervisorTriggers(m.ID, u)
		} else {
			back.Type = links.Negotiation
			back.Subtype = links.Permanent
			back.Constraint = links.And
			back.Triggers = backLinkTriggers(m.ID, u)
		}
		if err := c.lm.InstallAt(ctx, u, &back); err != nil {
			return fmt.Errorf("calendar: back link at %s: %w", u, err)
		}
	}

	// Tentative back links at everyone not reserved.
	for _, u := range m.Participants() {
		if m.isReserved(u) {
			continue
		}
		if err := c.installTentativeBackLink(ctx, m, u); err != nil {
			// A disconnected participant cannot host the tentative link
			// yet. The meeting stays tentative with them missing; their
			// reconnect sync pulls the meeting record, and a later
			// TryConfirm renegotiates for real.
			if code := wire.CodeOf(err); code == wire.CodeUnavailable || code == wire.CodeNoService {
				continue
			}
			return fmt.Errorf("calendar: tentative link at %s: %w", u, err)
		}
	}
	return nil
}

// installTentativeBackLink queues a tentative back link at an
// unavailable participant, waiting on whatever permanent link holds
// their slot (or queued at the slot when the conflict is not
// link-managed).
func (c *Calendar) installTentativeBackLink(ctx context.Context, m *Meeting, user string) error {
	aRef := links.EntityRef{User: m.Initiator, Entity: m.Slot.Entity()}
	blocker := c.findBlockingLink(ctx, user, m.Slot.Entity(), m.ID)
	l := links.Link{
		ID:         m.LinkID,
		Group:      m.ID,
		Priority:   m.Priority,
		Type:       links.Negotiation,
		Subtype:    links.Tentative,
		Constraint: links.And,
		Owner:      links.EntityRef{User: user, Entity: m.Slot.Entity()},
		Targets:    []links.EntityRef{aRef},
		WaitingOn:  blocker,
		Triggers:   tentativeTriggers(m.ID, user),
	}
	return c.lm.InstallAt(ctx, user, &l)
}

// findBlockingLink asks user's link manager for a permanent link of a
// different meeting occupying entity; returns "" when none.
func (c *Calendar) findBlockingLink(ctx context.Context, user, entity, excludeGroup string) string {
	var ls []*links.Link
	if user == c.user {
		ls = c.lm.LinksOn(entity)
	} else {
		if err := c.eng.Invoke(ctx, links.ServiceFor(user), "LinksOn", wire.Args{"entity": entity}, &ls); err != nil {
			return ""
		}
	}
	for _, l := range ls {
		if l.Subtype == links.Permanent && l.Group != excludeGroup && l.Group != "" {
			return l.ID
		}
	}
	return ""
}

// pushMeetingUpdate best-effort distributes the meeting record to all
// participants so each device can display it.
func (c *Calendar) pushMeetingUpdate(ctx context.Context, m *Meeting) {
	doc := meetingDoc(m)
	for _, u := range m.Participants() {
		if u == c.user {
			continue
		}
		_ = c.eng.Invoke(ctx, ServiceFor(u), "MeetingUpdate", wire.Args{"meeting": doc}, nil)
	}
}

func meetingDoc(m *Meeting) map[string]any {
	// Round-trip through JSON to get a plain map for wire.Args.
	raw, _ := wireMarshalMeeting(m)
	return raw
}

func wireMarshalMeeting(m *Meeting) (map[string]any, error) {
	b, err := wire.Marshal(m)
	if err != nil {
		return nil, err
	}
	var out map[string]any
	if err := wire.Unmarshal(b, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// CancelMeeting cancels a meeting this user administers (§4.4): the
// link cascade releases every participant's slot and promotes the
// highest-priority tentative meetings waiting on those slots.
func (c *Calendar) CancelMeeting(ctx context.Context, meetingID string) error {
	m, ok := c.Meeting(meetingID)
	if !ok {
		return &wire.RemoteError{Code: wire.CodeNoService, Msg: fmt.Sprintf("calendar: unknown meeting %s", meetingID)}
	}
	return c.cancelMeetingAs(ctx, m, c.user)
}

func (c *Calendar) cancelMeetingAs(ctx context.Context, m *Meeting, byUser string) error {
	defer c.lockMeeting(m.ID)()
	if cur, ok := c.Meeting(m.ID); ok {
		m = cur // re-read under the lock
	}
	if !m.canAdminister(byUser) {
		return &wire.RemoteError{Code: wire.CodeAuth,
			Msg: fmt.Sprintf("calendar: %s may not cancel %s (initiator %s)", byUser, m.ID, m.Initiator)}
	}
	if m.Status == StatusCancelled {
		return nil
	}
	if _, err := c.lm.DeleteLink(ctx, m.LinkID, nil); err != nil {
		return err
	}
	m.Status = StatusCancelled
	m.Reserved = nil
	if err := c.putMeeting(m); err != nil {
		return err
	}
	c.pushMeetingUpdate(ctx, m)
	c.notifyParticipants(ctx, m,
		fmt.Sprintf("Meeting %s (%s) cancelled", m.ID, m.Title),
		fmt.Sprintf("%s at %s was cancelled by %s.", m.Title, m.Slot, byUser))
	return nil
}

// TryConfirm attempts to convert a tentative meeting to confirmed by
// reserving the still-missing participants and or-group shortfalls
// (§5's "another round of negotiations"). Safe to call repeatedly; it
// runs at the initiator.
func (c *Calendar) TryConfirm(ctx context.Context, meetingID string) (*Meeting, error) {
	defer c.lockMeeting(meetingID)()
	m, ok := c.Meeting(meetingID)
	if !ok {
		return nil, &wire.RemoteError{Code: wire.CodeNoService, Msg: fmt.Sprintf("calendar: unknown meeting %s", meetingID)}
	}
	if m.Status == StatusCancelled {
		return m, &wire.RemoteError{Code: wire.CodeConflict, Msg: "calendar: meeting is cancelled"}
	}
	if m.Status == StatusConfirmed && m.satisfied() {
		return m, nil
	}
	args := reserveArgs(m, false)

	// Missing musts/supervisors one by one (each independently
	// useful even if others stay missing).
	still := append([]string(nil), m.Missing...)
	for _, u := range still {
		res, err := c.lm.Negotiate(ctx, links.Spec{
			Action: ActionReserve, Args: args,
			Targets:    slotRefs([]string{u}, m.Slot),
			Constraint: links.And,
		})
		// Only an acknowledged commit counts: a plain failure or an
		// in-doubt outcome whose ack never arrived leaves u missing
		// (a later TryConfirm round retries; the participant side is
		// idempotent, so a retried reserve that already landed acks).
		if err != nil && !links.IsInDoubt(err) {
			continue
		}
		if !res.OK && !containsRef(res.Accepted, u) {
			continue
		}
		m.Missing = removeString(m.Missing, u)
		m.Reserved = append(m.Reserved, u)
		c.solidifyBackLink(ctx, m, u)
	}

	// Or-group shortfalls.
	for gi, short := range m.quorumShortfall() {
		if short == 0 {
			continue
		}
		members := excludeReserved(m.OrGroups[gi].Members, m)
		if len(members) < short {
			continue
		}
		res, err := c.lm.Negotiate(ctx, links.Spec{
			Action: ActionReserve, Args: args,
			Targets:    slotRefs(members, m.Slot),
			Constraint: links.Or, K: short,
		})
		if err != nil {
			continue
		}
		for _, ref := range res.Accepted {
			m.Reserved = append(m.Reserved, ref.User)
			c.solidifyBackLink(ctx, m, ref.User)
		}
	}

	prev := m.Status
	if m.satisfied() {
		m.Status = StatusConfirmed
	} else {
		m.Status = StatusTentative
	}
	if err := c.putMeeting(m); err != nil {
		return m, err
	}
	c.pushMeetingUpdate(ctx, m)
	if prev != m.Status && m.Status == StatusConfirmed {
		c.notifyParticipants(ctx, m,
			fmt.Sprintf("Meeting %s (%s) confirmed", m.ID, m.Title),
			fmt.Sprintf("%s at %s is now confirmed.", m.Title, m.Slot))
	}
	return m, nil
}

// solidifyBackLink converts a participant's tentative back link to a
// permanent negotiation back link after their slot was reserved.
func (c *Calendar) solidifyBackLink(ctx context.Context, m *Meeting, user string) {
	if user == c.user {
		_ = c.lm.PromoteLink(m.LinkID)
		return
	}
	_ = c.eng.Invoke(ctx, links.ServiceFor(user), "PromoteLink", wire.Args{"id": m.LinkID}, nil)
}

// DropOut removes this user from a meeting they participate in: the
// initiator is informed, the slot is released, and tentative meetings
// waiting on the slot promote automatically (§1: "remove oneself from
// a meeting ... resulting in automatic triggers being executed that
// may possibly convert tentative meetings into confirmed ones").
func (c *Calendar) DropOut(ctx context.Context, meetingID string) error {
	m, ok := c.Meeting(meetingID)
	if !ok {
		return &wire.RemoteError{Code: wire.CodeNoService, Msg: fmt.Sprintf("calendar: unknown meeting %s", meetingID)}
	}
	if m.Initiator == c.user {
		return &wire.RemoteError{Code: wire.CodeConflict, Msg: "calendar: the initiator cancels, not drops out"}
	}
	return c.eng.Invoke(ctx, ServiceFor(m.Initiator), "DropOut", wire.Args{
		"meeting": meetingID, "user": c.user,
	}, nil)
}

// dropParticipant runs at the initiator: release user's slot, remove
// their link row (promoting whatever waits on it), and downgrade the
// meeting if constraints no longer hold.
func (c *Calendar) dropParticipant(ctx context.Context, meetingID, user string) error {
	defer c.lockMeeting(meetingID)()
	m, ok := c.Meeting(meetingID)
	if !ok {
		return &wire.RemoteError{Code: wire.CodeNoService, Msg: fmt.Sprintf("calendar: unknown meeting %s", meetingID)}
	}
	if !m.isReserved(user) || user == m.Initiator {
		return &wire.RemoteError{Code: wire.CodeConflict, Msg: fmt.Sprintf("calendar: %s is not a droppable participant of %s", user, meetingID)}
	}

	// Release the slot first so promoted waiters find it free, then
	// remove the participant's link row locally (no cascade).
	relArgs := wire.Args{"meeting": meetingID}
	_ = c.applyAt(ctx, user, m.Slot.Entity(), ActionRelease, relArgs)
	if user == c.user {
		_, _ = c.lm.DeleteLinkLocal(ctx, m.LinkID)
	} else {
		_ = c.eng.Invoke(ctx, links.ServiceFor(user), "DeleteLinkLocal", wire.Args{"id": m.LinkID}, nil)
	}

	m.Reserved = removeString(m.Reserved, user)
	if containsString(m.Must, user) || containsString(m.Supervisors, user) {
		if !containsString(m.Missing, user) {
			m.Missing = append(m.Missing, user)
		}
	}
	prev := m.Status
	if !m.satisfied() {
		m.Status = StatusTentative
		// Queue a tentative back link so the meeting can heal if the
		// dropped participant frees up again.
		_ = c.installTentativeBackLink(ctx, m, user)
	}
	if err := c.putMeeting(m); err != nil {
		return err
	}
	c.pushMeetingUpdate(ctx, m)
	if prev != m.Status {
		c.notifyParticipants(ctx, m,
			fmt.Sprintf("Meeting %s (%s) now tentative", m.ID, m.Title),
			fmt.Sprintf("%s dropped out of %s at %s.", user, m.Title, m.Slot))
	}
	return nil
}

// applyAt runs an unlocked entity action at a (possibly remote) user.
func (c *Calendar) applyAt(ctx context.Context, user, entity, action string, args wire.Args) error {
	if user == c.user {
		// Local: reuse the links service surface for symmetry.
		_, err := c.lm.Negotiate(ctx, links.Spec{
			Action: action, Args: args, Constraint: links.And,
			Local: &links.LocalChange{Entity: entity, Action: action, Args: args},
		})
		return err
	}
	return c.eng.Invoke(ctx, links.ServiceFor(user), "Apply", wire.Args{
		"entity": entity, "action": action, "args": map[string]any(args),
	}, nil)
}

// ChangeMeetingSlot moves a meeting to a new slot: the new slot is
// negotiated with every current participant first; only if all agree
// is the old slot released (§5: "if not all can agree, then D would be
// unable to change the schedule of the meeting").
func (c *Calendar) ChangeMeetingSlot(ctx context.Context, meetingID string, newSlot Slot) error {
	defer c.lockMeeting(meetingID)()
	m, ok := c.Meeting(meetingID)
	if !ok {
		return &wire.RemoteError{Code: wire.CodeNoService, Msg: fmt.Sprintf("calendar: unknown meeting %s", meetingID)}
	}
	if !m.canAdminister(c.user) {
		return &wire.RemoteError{Code: wire.CodeAuth, Msg: fmt.Sprintf("calendar: %s may not change %s", c.user, m.ID)}
	}
	if !newSlot.Valid() {
		return &wire.RemoteError{Code: wire.CodeBadArgs, Msg: fmt.Sprintf("calendar: bad slot %v", newSlot)}
	}
	old := *m
	m.Slot = newSlot
	args := reserveArgs(m, false)

	var others []string
	for _, u := range old.Reserved {
		if u != m.Initiator {
			others = append(others, u)
		}
	}
	sort.Strings(others)
	_, err := c.lm.Negotiate(ctx, links.Spec{
		Action: ActionReserve, Args: args,
		Targets:    slotRefs(others, newSlot),
		Constraint: links.And,
		Local:      &links.LocalChange{Entity: newSlot.Entity(), Action: ActionReserve, Args: args},
	})
	if err != nil {
		return fmt.Errorf("calendar: change to %s rejected: %w", newSlot, err)
	}

	// All agreed: tear down the old link graph (releasing old slots
	// and promoting their waiters) and rebuild on the new slot.
	oldLinkID := m.LinkID
	m.LinkID = links.NewLinkID()
	if _, err := c.lm.DeleteLink(ctx, oldLinkID, nil); err != nil {
		return err
	}
	if err := c.installMeetingLinks(ctx, m, Request{}); err != nil {
		return err
	}
	if m.satisfied() {
		m.Status = StatusConfirmed
	} else {
		m.Status = StatusTentative
	}
	if err := c.putMeeting(m); err != nil {
		return err
	}
	c.pushMeetingUpdate(ctx, m)
	c.notifyParticipants(ctx, m,
		fmt.Sprintf("Meeting %s (%s) moved", m.ID, m.Title),
		fmt.Sprintf("%s moved from %s to %s.", m.Title, old.Slot, newSlot))
	return nil
}

// meetingBumpedLocally records a bump at the initiator: the bumped
// user moves to missing, the meeting turns tentative, everyone is
// told (§6: automatic rescheduling follows when the slot frees up via
// the tentative link queued by the bumping device).
func (c *Calendar) meetingBumpedLocally(ctx context.Context, meetingID, user string) {
	defer c.lockMeeting(meetingID)()
	m, ok := c.Meeting(meetingID)
	if !ok {
		return
	}
	if m.isReserved(user) {
		m.Reserved = removeString(m.Reserved, user)
	}
	if (containsString(m.Must, user) || containsString(m.Supervisors, user) || user == m.Initiator) &&
		!containsString(m.Missing, user) {
		m.Missing = append(m.Missing, user)
	}
	m.Status = StatusTentative
	_ = c.putMeeting(m)
	c.pushMeetingUpdate(ctx, m)
	c.notifyParticipants(ctx, m,
		fmt.Sprintf("Meeting %s (%s) bumped", m.ID, m.Title),
		fmt.Sprintf("%s was bumped off %s by a higher-priority meeting; %s is now tentative.", user, m.Slot, m.Title))
}

// Delegate grants user the right to cancel/change the meeting (§5's
// scheduling-authority transfer).
func (c *Calendar) Delegate(ctx context.Context, meetingID, user string) error {
	defer c.lockMeeting(meetingID)()
	m, ok := c.Meeting(meetingID)
	if !ok {
		return &wire.RemoteError{Code: wire.CodeNoService, Msg: fmt.Sprintf("calendar: unknown meeting %s", meetingID)}
	}
	if m.Initiator != c.user {
		return &wire.RemoteError{Code: wire.CodeAuth, Msg: "calendar: only the initiator delegates"}
	}
	if !containsString(m.Delegates, user) {
		m.Delegates = append(m.Delegates, user)
	}
	if err := c.putMeeting(m); err != nil {
		return err
	}
	c.pushMeetingUpdate(ctx, m)
	return nil
}

// Engine exposes the node engine (experiments).
func (c *Calendar) Engine() *engine.Engine { return c.eng }
