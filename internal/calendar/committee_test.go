package calendar_test

import (
	"testing"

	"repro/internal/calendar"
	"repro/internal/wire"
)

func TestCommitteeNameAndMembers(t *testing.T) {
	w := newWorld(t, "phil", "andy", "suzy")
	cc := calendar.NewCommittee(w.cals["phil"], "andy", "suzy", "andy" /* dup */)
	if got := cc.Name(); got != "Calendars_of_phil+andy+suzy_SyDAppO" {
		t.Fatalf("name = %q", got)
	}
	m := cc.Members()
	if len(m) != 3 || m[0] != "phil" {
		t.Fatalf("members = %v", m)
	}
}

func TestCommitteeFromGroup(t *testing.T) {
	w := newWorld(t, "phil", "andy", "suzy")
	if err := w.cals["phil"].Engine().Directory().CreateGroup(ctxBg(), "committee", []string{"andy", "suzy"}); err != nil {
		t.Fatal(err)
	}
	cc, err := calendar.NewCommitteeFromGroup(ctxBg(), w.cals["phil"], "committee")
	if err != nil {
		t.Fatal(err)
	}
	if len(cc.Members()) != 3 {
		t.Fatalf("members = %v", cc.Members())
	}
	if _, err := calendar.NewCommitteeFromGroup(ctxBg(), w.cals["phil"], "ghost-group"); err == nil {
		t.Fatal("empty group accepted")
	}
}

func TestFindEarliestMeetingTime(t *testing.T) {
	w := newWorld(t, "phil", "andy", "suzy")
	// Block the first candidate hours across the members.
	if err := w.cals["phil"].MarkBusy(slot(day1, 9), "x", 0); err != nil {
		t.Fatal(err)
	}
	if err := w.cals["andy"].MarkBusy(slot(day1, 10), "x", 0); err != nil {
		t.Fatal(err)
	}
	if err := w.cals["suzy"].MarkBusy(slot(day1, 11), "x", 0); err != nil {
		t.Fatal(err)
	}
	cc := calendar.NewCommittee(w.cals["phil"], "andy", "suzy")
	got, err := cc.FindEarliestMeetingTime(ctxBg(), day1, day1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != slot(day1, 12) {
		t.Fatalf("earliest = %v", got)
	}

	// No common slot at all.
	for _, h := range calendar.DefaultHours {
		_ = w.cals["andy"].MarkBusy(slot(day2, h), "x", 0)
	}
	if _, err := cc.FindEarliestMeetingTime(ctxBg(), day2, day2, nil); wire.CodeOf(err) != wire.CodeConflict {
		t.Fatalf("err = %v", err)
	}
}

func TestScheduleEarliestAndChangeToNextAvailable(t *testing.T) {
	w := newWorld(t, "phil", "andy", "suzy")
	cc := calendar.NewCommittee(w.cals["phil"], "andy", "suzy")
	m, err := cc.ScheduleEarliest(ctxBg(), "weekly", day1, day2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Status != calendar.StatusConfirmed || m.Slot != slot(day1, 9) {
		t.Fatalf("m = %+v", m)
	}

	// Andy becomes busy at 10 — the "next available" must skip it.
	if err := w.cals["andy"].MarkBusy(slot(day1, 10), "x", 0); err != nil {
		t.Fatal(err)
	}
	next, err := cc.ChangeMeetingTimeToNextAvailable(ctxBg(), m.ID, 3)
	if err != nil {
		t.Fatal(err)
	}
	if next != slot(day1, 11) {
		t.Fatalf("next = %v", next)
	}
	// The meeting actually moved everywhere, old slot released.
	for _, u := range []string{"phil", "andy", "suzy"} {
		if got := w.slotMeeting(u, next); got != m.ID {
			t.Fatalf("%s new slot = %q", u, got)
		}
		if got := w.slotMeeting(u, slot(day1, 9)); got != "" {
			t.Fatalf("%s old slot = %q", u, got)
		}
	}
	// Unknown meeting errors.
	if _, err := cc.ChangeMeetingTimeToNextAvailable(ctxBg(), "nope", 3); wire.CodeOf(err) != wire.CodeNoService {
		t.Fatalf("err = %v", err)
	}
}

func TestChangeToNextAvailableExhaustedHorizon(t *testing.T) {
	w := newWorld(t, "phil", "andy")
	cc := calendar.NewCommittee(w.cals["phil"], "andy")
	m, err := cc.ScheduleEarliest(ctxBg(), "m", day1, day1, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Andy is busy for every later slot in the horizon.
	for _, day := range calendar.DaysBetween(day1, "2003-04-25") {
		for _, h := range calendar.DefaultHours {
			s := slot(day, h)
			if s == m.Slot {
				continue
			}
			_ = w.cals["andy"].MarkBusy(s, "x", 0)
		}
	}
	if _, err := cc.ChangeMeetingTimeToNextAvailable(ctxBg(), m.ID, 3); wire.CodeOf(err) != wire.CodeConflict {
		t.Fatalf("err = %v", err)
	}
	// Meeting unchanged.
	got, _ := w.cals["phil"].Meeting(m.ID)
	if got.Slot != m.Slot || got.Status != calendar.StatusConfirmed {
		t.Fatalf("meeting moved despite exhausted horizon: %+v", got)
	}
}

func TestFreeBusyMatrix(t *testing.T) {
	w := newWorld(t, "phil", "andy")
	if err := w.cals["andy"].MarkBusy(slot(day1, 9), "x", 0); err != nil {
		t.Fatal(err)
	}
	cc := calendar.NewCommittee(w.cals["phil"], "andy")
	matrix, err := cc.FreeBusyMatrix(ctxBg(), day1, day1, []int{9, 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(matrix["phil"]) != 2 {
		t.Fatalf("phil free = %v", matrix["phil"])
	}
	if len(matrix["andy"]) != 1 || matrix["andy"][0] != slot(day1, 10) {
		t.Fatalf("andy free = %v", matrix["andy"])
	}
}
