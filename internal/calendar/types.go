// Package calendar implements the SyD calendar-of-meetings application
// (paper §3.2, §4.4, §5): independent per-device calendars coordinated
// purely through SyD links — meeting setup over common free slots,
// tentative meetings with automatic confirmation on cancellations,
// priority bumping, supervisor (subscription-only) participants,
// multiple OR-groups with quorums, dropouts, and cancellation cascades.
package calendar

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/links"
)

// Meeting status values.
const (
	StatusConfirmed = "confirmed"
	StatusTentative = "tentative"
	StatusCancelled = "cancelled"
)

// Slot identifies one calendar slot: a day (YYYY-MM-DD) and an hour.
type Slot struct {
	Day  string `json:"day"`
	Hour int    `json:"hour"`
}

// String implements fmt.Stringer.
func (s Slot) String() string { return fmt.Sprintf("%s %02d:00", s.Day, s.Hour) }

// Entity returns the SyD entity id for the slot (the unit the
// coordination links attach to).
func (s Slot) Entity() string { return fmt.Sprintf("slot:%s:%d", s.Day, s.Hour) }

// SlotFromEntity parses a slot entity id.
func SlotFromEntity(entity string) (Slot, error) {
	parts := strings.Split(entity, ":")
	if len(parts) != 3 || parts[0] != "slot" {
		return Slot{}, fmt.Errorf("calendar: bad slot entity %q", entity)
	}
	h, err := strconv.Atoi(parts[2])
	if err != nil {
		return Slot{}, fmt.Errorf("calendar: bad slot hour in %q", entity)
	}
	return Slot{Day: parts[1], Hour: h}, nil
}

// Valid reports whether the slot has a parseable day and a sane hour.
func (s Slot) Valid() bool {
	if s.Hour < 0 || s.Hour > 23 {
		return false
	}
	_, err := time.Parse("2006-01-02", s.Day)
	return err == nil
}

// DaysBetween enumerates the days from fromDay to toDay inclusive
// (both YYYY-MM-DD). Returns nil if the range is malformed or inverted.
func DaysBetween(fromDay, toDay string) []string {
	from, err1 := time.Parse("2006-01-02", fromDay)
	to, err2 := time.Parse("2006-01-02", toDay)
	if err1 != nil || err2 != nil || to.Before(from) {
		return nil
	}
	var out []string
	for d := from; !d.After(to); d = d.AddDate(0, 0, 1) {
		out = append(out, d.Format("2006-01-02"))
	}
	return out
}

// OrGroup is a quorum group: at least K of Members must attend (§5's
// "a quorum of 50% among the faculty of Biology and at least two
// faculties from Physics").
type OrGroup struct {
	Name    string   `json:"name,omitempty"`
	Members []string `json:"members"`
	K       int      `json:"k"`
}

// Request describes a meeting to set up (§5's GUI form: dates, people,
// and design criteria such as "A and B are must-attendees, but one of
// C, D, E would suffice").
type Request struct {
	// ID optionally pins the meeting id. Offline replay pre-mints it
	// when the op is queued, so a drain interrupted mid-push can retry
	// without creating a second meeting.
	ID string `json:"id,omitempty"`

	Title string `json:"title"`

	// Search window used when Day/Hour are not pinned.
	FromDay string `json:"fromDay"`
	ToDay   string `json:"toDay"`
	// Hours restricts candidate hours (nil = 9..17).
	Hours []int `json:"hours,omitempty"`

	// Day/Hour pin an explicit slot, skipping the search.
	Day  string `json:"day,omitempty"`
	Hour int    `json:"hour,omitempty"`
	// PinSlot distinguishes an explicit Hour 0 from "not set".
	PinSlot bool `json:"pinSlot,omitempty"`

	// Must lists required attendees besides the initiator.
	Must []string `json:"must,omitempty"`
	// Supervisors attend but retain the right to change their
	// schedule at will (subscription back links only, §5).
	Supervisors []string `json:"supervisors,omitempty"`
	// OrGroups are quorum groups.
	OrGroups []OrGroup `json:"orGroups,omitempty"`

	// Priority orders meetings; a higher-priority meeting may bump a
	// lower-priority one when AllowBump is set (§6).
	Priority  int  `json:"priority"`
	AllowBump bool `json:"allowBump,omitempty"`

	// Expires optionally bounds the meeting's links (§4.2 op 6).
	Expires time.Time `json:"expires,omitempty"`
}

// Meeting is the meeting record (stored at the initiator; pushed to
// participants for visibility).
type Meeting struct {
	ID        string `json:"id"`
	Title     string `json:"title"`
	Initiator string `json:"initiator"`
	Slot      Slot   `json:"slot"`
	Status    string `json:"status"`
	Priority  int    `json:"priority"`

	Must        []string  `json:"must,omitempty"`
	Supervisors []string  `json:"supervisors,omitempty"`
	OrGroups    []OrGroup `json:"orGroups,omitempty"`
	// Delegates may cancel/change on the initiator's behalf (§5's
	// "an executive may want to delegate the task of scheduling").
	Delegates []string `json:"delegates,omitempty"`

	// Reserved lists participants currently holding the slot;
	// Missing lists must-attendees not yet reserved.
	Reserved []string `json:"reserved,omitempty"`
	Missing  []string `json:"missing,omitempty"`

	// LinkID is the shared coordination-link id across participants.
	LinkID string `json:"linkID,omitempty"`
}

// Participants returns every user involved (initiator, musts,
// supervisors, or-group members), deduplicated, in first-seen order.
func (m *Meeting) Participants() []string {
	seen := map[string]bool{}
	var out []string
	add := func(u string) {
		if u != "" && !seen[u] {
			seen[u] = true
			out = append(out, u)
		}
	}
	add(m.Initiator)
	for _, u := range m.Must {
		add(u)
	}
	for _, u := range m.Supervisors {
		add(u)
	}
	for _, g := range m.OrGroups {
		for _, u := range g.Members {
			add(u)
		}
	}
	return out
}

// isReserved reports whether user currently holds the meeting slot.
func (m *Meeting) isReserved(user string) bool {
	for _, u := range m.Reserved {
		if u == user {
			return true
		}
	}
	return false
}

// quorumShortfall returns, per or-group, how many more members need to
// be reserved to meet K (0 when satisfied).
func (m *Meeting) quorumShortfall() []int {
	out := make([]int, len(m.OrGroups))
	for i, g := range m.OrGroups {
		have := 0
		for _, u := range g.Members {
			if m.isReserved(u) {
				have++
			}
		}
		if g.K > have {
			out[i] = g.K - have
		}
	}
	return out
}

// satisfied reports whether all musts are reserved and every or-group
// meets its quorum.
func (m *Meeting) satisfied() bool {
	if len(m.Missing) > 0 {
		return false
	}
	for _, short := range m.quorumShortfall() {
		if short > 0 {
			return false
		}
	}
	return true
}

// Satisfied reports whether the meeting's constraints are all met —
// every must-attendee reserved and every or-group at quorum.
func (m *Meeting) Satisfied() bool { return m.satisfied() }

// canAdminister reports whether user may cancel/change the meeting:
// the initiator or a delegate (§6: "only the initiator of a meeting
// can cancel that meeting", extended by §5's delegation).
func (m *Meeting) canAdminister(user string) bool {
	if user == m.Initiator {
		return true
	}
	for _, d := range m.Delegates {
		if d == user {
			return true
		}
	}
	return false
}

// containsRef reports whether refs includes an entry for user.
func containsRef(refs []links.EntityRef, user string) bool {
	for _, r := range refs {
		if r.User == user {
			return true
		}
	}
	return false
}

// removeString removes the first occurrence of v from list.
func removeString(list []string, v string) []string {
	for i, s := range list {
		if s == v {
			return append(append([]string(nil), list[:i]...), list[i+1:]...)
		}
	}
	return list
}

// containsString reports membership.
func containsString(list []string, v string) bool {
	for _, s := range list {
		if s == v {
			return true
		}
	}
	return false
}
