package calendar_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/calendar"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/directory"
	"repro/internal/links"
	"repro/internal/notify"
	"repro/internal/sim"
	"repro/internal/wire"
)

const (
	day1 = "2003-04-22"
	day2 = "2003-04-23"
)

type world struct {
	t     *testing.T
	net   *sim.Net
	clk   *clock.Fake
	mail  *notify.Mailbox
	cals  map[string]*calendar.Calendar
	nodes map[string]*core.Node
}

func newWorld(t *testing.T, users ...string) *world {
	t.Helper()
	net := sim.New(sim.Config{})
	clk := clock.NewFake(time.Date(2003, 4, 21, 8, 0, 0, 0, time.UTC))
	srv := directory.NewServer(directory.WithClock(clk), directory.WithTTL(time.Hour))
	if _, err := net.Listen("dir", srv.Handler()); err != nil {
		t.Fatal(err)
	}
	w := &world{
		t: t, net: net, clk: clk, mail: notify.NewMailbox(),
		cals:  map[string]*calendar.Calendar{},
		nodes: map[string]*core.Node{},
	}
	for _, u := range users {
		w.addUser(u, 0)
	}
	return w
}

func (w *world) addUser(user string, priority int) *calendar.Calendar {
	w.t.Helper()
	ctx := context.Background()
	n, err := core.Start(ctx, core.Config{
		User: user, Net: w.net, DirAddr: "dir", Clock: w.clk, Priority: priority,
	})
	if err != nil {
		w.t.Fatal(err)
	}
	c, err := calendar.New(ctx, n, calendar.WithNotifier(w.mail))
	if err != nil {
		w.t.Fatal(err)
	}
	w.cals[user] = c
	w.nodes[user] = n
	return c
}

func (w *world) slotMeeting(user string, s calendar.Slot) string {
	return w.cals[user].Slot(s).Meeting
}

func ctxBg() context.Context { return context.Background() }

func slot(day string, hour int) calendar.Slot { return calendar.Slot{Day: day, Hour: hour} }

// --- basic slot management -----------------------------------------------------

func TestFreeSlotsDefaults(t *testing.T) {
	w := newWorld(t, "phil")
	c := w.cals["phil"]
	free := c.FreeSlots(day1, day1, nil)
	if len(free) != len(calendar.DefaultHours) {
		t.Fatalf("free = %d", len(free))
	}
	if err := c.MarkBusy(slot(day1, 9), "dentist", 0); err != nil {
		t.Fatal(err)
	}
	free = c.FreeSlots(day1, day1, nil)
	if len(free) != len(calendar.DefaultHours)-1 {
		t.Fatalf("free after busy = %d", len(free))
	}
	if err := c.MarkBusy(slot(day1, 9), "double", 0); wire.CodeOf(err) != wire.CodeConflict {
		t.Fatalf("double busy: %v", err)
	}
}

func TestReleaseSlotRules(t *testing.T) {
	w := newWorld(t, "phil", "andy")
	c := w.cals["phil"]
	// Releasing a free slot is a no-op.
	if err := c.ReleaseSlot(ctxBg(), slot(day1, 9)); err != nil {
		t.Fatal(err)
	}
	if err := c.MarkBusy(slot(day1, 9), "x", 0); err != nil {
		t.Fatal(err)
	}
	if err := c.ReleaseSlot(ctxBg(), slot(day1, 9)); err != nil {
		t.Fatal(err)
	}
	if got := c.Slot(slot(day1, 9)).Meeting; got != "" {
		t.Fatalf("slot = %q", got)
	}
	// A coordinated meeting slot refuses ReleaseSlot.
	m, err := c.SetupMeeting(ctxBg(), calendar.Request{
		Title: "standup", FromDay: day1, ToDay: day1, Must: []string{"andy"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.ReleaseSlot(ctxBg(), m.Slot); wire.CodeOf(err) != wire.CodeConflict {
		t.Fatalf("release of meeting slot: %v", err)
	}
}

// --- meeting setup ---------------------------------------------------------------

func TestSetupMeetingAllAvailableConfirms(t *testing.T) {
	w := newWorld(t, "a", "b", "c", "d")
	m, err := w.cals["a"].SetupMeeting(ctxBg(), calendar.Request{
		Title: "review", FromDay: day1, ToDay: day2, Must: []string{"b", "c", "d"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Status != calendar.StatusConfirmed {
		t.Fatalf("status = %s (missing %v)", m.Status, m.Missing)
	}
	if len(m.Reserved) != 4 || len(m.Missing) != 0 {
		t.Fatalf("reserved=%v missing=%v", m.Reserved, m.Missing)
	}
	for _, u := range []string{"a", "b", "c", "d"} {
		if got := w.slotMeeting(u, m.Slot); got != m.ID {
			t.Fatalf("%s slot holds %q", u, got)
		}
		// Everyone has a link row for the meeting.
		if _, ok := w.cals[u].Links().GetLink(m.LinkID); !ok {
			t.Fatalf("%s has no link row", u)
		}
		// Everyone got the meeting record.
		if mm, ok := w.cals[u].Meeting(m.ID); !ok || mm.Status != calendar.StatusConfirmed {
			t.Fatalf("%s meeting record: %+v ok=%v", u, mm, ok)
		}
		// Everyone got an e-mail.
		if w.mail.Count(u) == 0 {
			t.Fatalf("%s got no notification", u)
		}
	}
}

func TestSetupMeetingSkipsBusySlots(t *testing.T) {
	w := newWorld(t, "a", "b")
	// b is busy the whole first day.
	for _, h := range calendar.DefaultHours {
		if err := w.cals["b"].MarkBusy(slot(day1, h), "x", 0); err != nil {
			t.Fatal(err)
		}
	}
	m, err := w.cals["a"].SetupMeeting(ctxBg(), calendar.Request{
		Title: "sync", FromDay: day1, ToDay: day2, Must: []string{"b"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Slot.Day != day2 {
		t.Fatalf("chose %v despite b busy on %s", m.Slot, day1)
	}
	if m.Status != calendar.StatusConfirmed {
		t.Fatalf("status = %s", m.Status)
	}
}

func TestSetupMeetingNoCommonSlot(t *testing.T) {
	w := newWorld(t, "a", "b")
	for _, h := range calendar.DefaultHours {
		if err := w.cals["b"].MarkBusy(slot(day1, h), "x", 0); err != nil {
			t.Fatal(err)
		}
	}
	_, err := w.cals["a"].SetupMeeting(ctxBg(), calendar.Request{
		Title: "sync", FromDay: day1, ToDay: day1, Must: []string{"b"},
	})
	if wire.CodeOf(err) != wire.CodeConflict {
		t.Fatalf("err = %v", err)
	}
}

// TestE2TentativeThenAutoConfirm reproduces the §5 scenario: C is
// unavailable, the meeting is created tentative with a tentative back
// link at C; when C frees the slot, the meeting auto-confirms.
func TestE2TentativeThenAutoConfirm(t *testing.T) {
	w := newWorld(t, "a", "b", "c", "d")
	// C has a personal appointment at every slot of day1.
	for _, h := range calendar.DefaultHours {
		if err := w.cals["c"].MarkBusy(slot(day1, h), "class", 0); err != nil {
			t.Fatal(err)
		}
	}
	// Pin the slot so the search cannot route around C.
	m, err := w.cals["a"].SetupMeeting(ctxBg(), calendar.Request{
		Title: "urgent", Day: day1, Hour: 14, PinSlot: true,
		Must: []string{"b", "c", "d"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Status != calendar.StatusTentative {
		t.Fatalf("status = %s", m.Status)
	}
	if len(m.Missing) != 1 || m.Missing[0] != "c" {
		t.Fatalf("missing = %v", m.Missing)
	}
	// A, B, D hold the slot; C holds the class.
	for _, u := range []string{"a", "b", "d"} {
		if got := w.slotMeeting(u, m.Slot); got != m.ID {
			t.Fatalf("%s slot = %q", u, got)
		}
	}
	if got := w.slotMeeting("c", m.Slot); got != "personal:class" {
		t.Fatalf("c slot = %q", got)
	}
	// C has a tentative back link queued at the slot.
	cl, ok := w.cals["c"].Links().GetLink(m.LinkID)
	if !ok || cl.Subtype != links.Tentative {
		t.Fatalf("c link: %+v ok=%v", cl, ok)
	}

	// C's class is cancelled: the slot frees, the tentative link
	// fires SlotAvailable at A, and the meeting confirms.
	if err := w.cals["c"].ReleaseSlot(ctxBg(), m.Slot); err != nil {
		t.Fatal(err)
	}
	got, ok := w.cals["a"].Meeting(m.ID)
	if !ok || got.Status != calendar.StatusConfirmed {
		t.Fatalf("meeting after release: %+v", got)
	}
	if w.slotMeeting("c", m.Slot) != m.ID {
		t.Fatalf("c slot = %q", w.slotMeeting("c", m.Slot))
	}
}

// TestE1CancelPromotesTentativeMeeting reproduces §4.4: cancelling a
// meeting triggers the cascade that converts the highest-priority
// tentative meeting on the freed slots to confirmed.
func TestE1CancelPromotesTentativeMeeting(t *testing.T) {
	w := newWorld(t, "a", "b", "c", "x")
	// Meeting M1 (a,b,c) confirmed at a pinned slot.
	m1, err := w.cals["a"].SetupMeeting(ctxBg(), calendar.Request{
		Title: "m1", Day: day1, Hour: 10, PinSlot: true, Must: []string{"b", "c"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m1.Status != calendar.StatusConfirmed {
		t.Fatalf("m1 = %s", m1.Status)
	}
	// Meeting M2 (x,b,c) wants the same slot -> tentative, waiting.
	m2, err := w.cals["x"].SetupMeeting(ctxBg(), calendar.Request{
		Title: "m2", Day: day1, Hour: 10, PinSlot: true, Must: []string{"b", "c"}, Priority: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m2.Status != calendar.StatusTentative {
		t.Fatalf("m2 = %s", m2.Status)
	}
	// b and c carry tentative links for m2 waiting on m1's link.
	for _, u := range []string{"b", "c"} {
		l, ok := w.cals[u].Links().GetLink(m2.LinkID)
		if !ok || l.Subtype != links.Tentative || l.WaitingOn != m1.LinkID {
			t.Fatalf("%s m2 link: %+v ok=%v", u, l, ok)
		}
	}

	// Cancel M1: slots free, m2's waiting links promote, m2 confirms.
	if err := w.cals["a"].CancelMeeting(ctxBg(), m1.ID); err != nil {
		t.Fatal(err)
	}
	gotM1, _ := w.cals["a"].Meeting(m1.ID)
	if gotM1.Status != calendar.StatusCancelled {
		t.Fatalf("m1 = %s", gotM1.Status)
	}
	gotM2, _ := w.cals["x"].Meeting(m2.ID)
	if gotM2.Status != calendar.StatusConfirmed {
		t.Fatalf("m2 after cancel = %s (missing %v)", gotM2.Status, gotM2.Missing)
	}
	for _, u := range []string{"b", "c", "x"} {
		if got := w.slotMeeting(u, slot(day1, 10)); got != m2.ID {
			t.Fatalf("%s slot = %q", u, got)
		}
	}
	// a's slot is free again.
	if got := w.slotMeeting("a", slot(day1, 10)); got != "" {
		t.Fatalf("a slot = %q", got)
	}
}

// TestCancelPicksHighestPriorityWaiter: two tentative meetings wait on
// the same slot; the higher-priority one wins when it frees (§4.2 op 3).
func TestCancelPicksHighestPriorityWaiter(t *testing.T) {
	w := newWorld(t, "a", "b", "x", "y")
	m1, err := w.cals["a"].SetupMeeting(ctxBg(), calendar.Request{
		Title: "m1", Day: day1, Hour: 10, PinSlot: true, Must: []string{"b"},
	})
	if err != nil {
		t.Fatal(err)
	}
	mLow, err := w.cals["x"].SetupMeeting(ctxBg(), calendar.Request{
		Title: "low", Day: day1, Hour: 10, PinSlot: true, Must: []string{"b"}, Priority: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	mHigh, err := w.cals["y"].SetupMeeting(ctxBg(), calendar.Request{
		Title: "high", Day: day1, Hour: 10, PinSlot: true, Must: []string{"b"}, Priority: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.cals["a"].CancelMeeting(ctxBg(), m1.ID); err != nil {
		t.Fatal(err)
	}
	gotHigh, _ := w.cals["y"].Meeting(mHigh.ID)
	if gotHigh.Status != calendar.StatusConfirmed {
		t.Fatalf("high-priority waiter = %s", gotHigh.Status)
	}
	gotLow, _ := w.cals["x"].Meeting(mLow.ID)
	if gotLow.Status != calendar.StatusTentative {
		t.Fatalf("low-priority waiter = %s", gotLow.Status)
	}
	if got := w.slotMeeting("b", slot(day1, 10)); got != mHigh.ID {
		t.Fatalf("b slot = %q", got)
	}
}

// TestE5Quorum reproduces the §5 quorum scenario: must-attendees plus
// "50% of Biology" and "at least 2 from Physics".
func TestE5Quorum(t *testing.T) {
	users := []string{"a", "b", "c", "bio1", "bio2", "bio3", "bio4", "phy1", "phy2", "phy3"}
	w := newWorld(t, users...)
	req := calendar.Request{
		Title: "faculty", Day: day1, Hour: 11, PinSlot: true,
		Must: []string{"b", "c"},
		OrGroups: []calendar.OrGroup{
			{Name: "biology", Members: []string{"bio1", "bio2", "bio3", "bio4"}, K: 2},
			{Name: "physics", Members: []string{"phy1", "phy2", "phy3"}, K: 2},
		},
	}
	m, err := w.cals["a"].SetupMeeting(ctxBg(), req)
	if err != nil {
		t.Fatal(err)
	}
	if m.Status != calendar.StatusConfirmed {
		t.Fatalf("status = %s missing=%v", m.Status, m.Missing)
	}
	bio := 0
	phy := 0
	for _, u := range m.Reserved {
		if strings.HasPrefix(u, "bio") {
			bio++
		} else if strings.HasPrefix(u, "phy") {
			phy++
		}
	}
	if bio < 2 || phy < 2 {
		t.Fatalf("quorum not met: bio=%d phy=%d", bio, phy)
	}

	// A biology quorum failure: only 1 of 4 biologists free.
	w2 := newWorld(t, users...)
	for _, u := range []string{"bio1", "bio2", "bio3"} {
		if err := w2.cals[u].MarkBusy(slot(day1, 11), "lab", 0); err != nil {
			t.Fatal(err)
		}
	}
	m2, err := w2.cals["a"].SetupMeeting(ctxBg(), req)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Status != calendar.StatusTentative {
		t.Fatalf("status = %s", m2.Status)
	}
	// The atomic k-of-n abort means no biologist holds the slot.
	for _, u := range []string{"bio1", "bio2", "bio3", "bio4"} {
		if got := w2.slotMeeting(u, slot(day1, 11)); got == m2.ID {
			t.Fatalf("%s reserved despite quorum failure", u)
		}
	}
	// Physics quorum unaffected.
	phy = 0
	for _, u := range m2.Reserved {
		if strings.HasPrefix(u, "phy") {
			phy++
		}
	}
	if phy < 2 {
		t.Fatalf("physics quorum = %d", phy)
	}

	// One biologist frees up -> still short (need 2, bio4 already
	// free but was never reserved because the group aborted).
	if err := w2.cals["bio1"].ReleaseSlot(ctxBg(), slot(day1, 11)); err != nil {
		t.Fatal(err)
	}
	got, _ := w2.cals["a"].Meeting(m2.ID)
	if got.Status != calendar.StatusConfirmed {
		// bio1 freeing re-runs TryConfirm which can now reserve
		// bio1 AND bio4 (both free) -> confirmed.
		t.Fatalf("after bio1 release: %s (reserved %v)", got.Status, got.Reserved)
	}
}

// TestE3DropOutAndVeto reproduces the §5 "D wants to change" scenario:
// a must-attendee cannot unilaterally change a confirmed meeting, but
// can drop out; dropping out makes the meeting tentative and frees the
// slot for waiting meetings.
func TestE3DropOutAndVeto(t *testing.T) {
	w := newWorld(t, "a", "b", "c", "d")
	m, err := w.cals["a"].SetupMeeting(ctxBg(), calendar.Request{
		Title: "m", Day: day1, Hour: 10, PinSlot: true, Must: []string{"b", "c", "d"},
	})
	if err != nil {
		t.Fatal(err)
	}
	// D attempts a unilateral change: the back link vetoes.
	_, err = w.cals["d"].Links().TriggerEntity(ctxBg(), m.Slot.Entity(), "change", nil)
	if err == nil {
		t.Fatal("unilateral change of a confirmed meeting was not vetoed")
	}

	// D drops out properly.
	if err := w.cals["d"].DropOut(ctxBg(), m.ID); err != nil {
		t.Fatal(err)
	}
	got, _ := w.cals["a"].Meeting(m.ID)
	if got.Status != calendar.StatusTentative {
		t.Fatalf("status after dropout = %s", got.Status)
	}
	if !containsStr(got.Missing, "d") || containsStr(got.Reserved, "d") {
		t.Fatalf("reserved=%v missing=%v", got.Reserved, got.Missing)
	}
	if w.slotMeeting("d", m.Slot) != "" {
		t.Fatalf("d slot = %q", w.slotMeeting("d", m.Slot))
	}
	// D frees up again (already free) -> a TryConfirm re-reserves.
	if _, err := w.cals["a"].TryConfirm(ctxBg(), m.ID); err != nil {
		t.Fatal(err)
	}
	got, _ = w.cals["a"].Meeting(m.ID)
	if got.Status != calendar.StatusConfirmed {
		t.Fatalf("status after re-confirm = %s", got.Status)
	}
	// The initiator cannot drop out.
	if err := w.cals["a"].DropOut(ctxBg(), m.ID); wire.CodeOf(err) != wire.CodeConflict {
		t.Fatalf("initiator dropout: %v", err)
	}
}

// TestE4SupervisorSubscriptionLink reproduces the §5 supervisor
// scenario: B is a supervisor with only a subscription back link — B's
// change is never vetoed, the meeting goes tentative and heals when it
// can.
func TestE4SupervisorSubscriptionLink(t *testing.T) {
	w := newWorld(t, "a", "b", "c")
	m, err := w.cals["a"].SetupMeeting(ctxBg(), calendar.Request{
		Title: "m", Day: day1, Hour: 10, PinSlot: true,
		Must: []string{"c"}, Supervisors: []string{"b"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Status != calendar.StatusConfirmed {
		t.Fatalf("status = %s missing=%v", m.Status, m.Missing)
	}
	// B's back link is subscription type.
	bl, ok := w.cals["b"].Links().GetLink(m.LinkID)
	if !ok || bl.Type != links.Subscription {
		t.Fatalf("b link: %+v", bl)
	}
	// B changes his schedule at will: no veto, A is informed, and the
	// meeting immediately renegotiates. B stayed free at that hour so
	// the re-confirmation wins instantly.
	_, err = w.cals["b"].Links().TriggerEntity(ctxBg(), m.Slot.Entity(), "change", nil)
	if err != nil {
		t.Fatalf("supervisor change was vetoed: %v", err)
	}
	got, _ := w.cals["a"].Meeting(m.ID)
	if got.Status != calendar.StatusConfirmed {
		t.Fatalf("status after supervisor change = %s", got.Status)
	}
}

// TestBumping reproduces §6: a higher-priority meeting bumps a
// lower-priority one off its slot; the bumped meeting turns tentative
// and auto-reschedules when the slot frees again.
func TestBumping(t *testing.T) {
	w := newWorld(t, "a", "b", "x")
	mLow, err := w.cals["a"].SetupMeeting(ctxBg(), calendar.Request{
		Title: "low", Day: day1, Hour: 10, PinSlot: true, Must: []string{"b"}, Priority: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// x sets up a high-priority meeting with b on the same slot.
	mHigh, err := w.cals["x"].SetupMeeting(ctxBg(), calendar.Request{
		Title: "high", Day: day1, Hour: 10, PinSlot: true, Must: []string{"b"},
		Priority: 9, AllowBump: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if mHigh.Status != calendar.StatusConfirmed {
		t.Fatalf("high = %s (missing %v)", mHigh.Status, mHigh.Missing)
	}
	if got := w.slotMeeting("b", slot(day1, 10)); got != mHigh.ID {
		t.Fatalf("b slot = %q", got)
	}
	// The bumped meeting is tentative at its initiator.
	gotLow, _ := w.cals["a"].Meeting(mLow.ID)
	if gotLow.Status != calendar.StatusTentative {
		t.Fatalf("low = %s", gotLow.Status)
	}
	// When the high-priority meeting is cancelled, the bumped one
	// auto-reschedules (its tentative link waits on mHigh's link).
	if err := w.cals["x"].CancelMeeting(ctxBg(), mHigh.ID); err != nil {
		t.Fatal(err)
	}
	gotLow, _ = w.cals["a"].Meeting(mLow.ID)
	if gotLow.Status != calendar.StatusConfirmed {
		t.Fatalf("low after high cancel = %s (reserved %v missing %v)", gotLow.Status, gotLow.Reserved, gotLow.Missing)
	}
	if got := w.slotMeeting("b", slot(day1, 10)); got != mLow.ID {
		t.Fatalf("b slot after cancel = %q", got)
	}
}

// TestLowPriorityCannotBump: without the priority edge the reservation
// conflicts normally.
func TestLowPriorityCannotBump(t *testing.T) {
	w := newWorld(t, "a", "b", "x")
	mHigh, err := w.cals["a"].SetupMeeting(ctxBg(), calendar.Request{
		Title: "high", Day: day1, Hour: 10, PinSlot: true, Must: []string{"b"}, Priority: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	mLow, err := w.cals["x"].SetupMeeting(ctxBg(), calendar.Request{
		Title: "low", Day: day1, Hour: 10, PinSlot: true, Must: []string{"b"},
		Priority: 1, AllowBump: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if mLow.Status != calendar.StatusTentative {
		t.Fatalf("low = %s", mLow.Status)
	}
	if got := w.slotMeeting("b", slot(day1, 10)); got != mHigh.ID {
		t.Fatalf("b slot = %q", got)
	}
}

func TestChangeMeetingSlot(t *testing.T) {
	w := newWorld(t, "a", "b", "c")
	m, err := w.cals["a"].SetupMeeting(ctxBg(), calendar.Request{
		Title: "m", Day: day1, Hour: 10, PinSlot: true, Must: []string{"b", "c"},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Move to 14:00 — everyone free, should succeed.
	if err := w.cals["a"].ChangeMeetingSlot(ctxBg(), m.ID, slot(day1, 14)); err != nil {
		t.Fatal(err)
	}
	for _, u := range []string{"a", "b", "c"} {
		if got := w.slotMeeting(u, slot(day1, 14)); got != m.ID {
			t.Fatalf("%s new slot = %q", u, got)
		}
		if got := w.slotMeeting(u, slot(day1, 10)); got != "" {
			t.Fatalf("%s old slot = %q", u, got)
		}
	}
	got, _ := w.cals["a"].Meeting(m.ID)
	if got.Status != calendar.StatusConfirmed || got.Slot.Hour != 14 {
		t.Fatalf("meeting = %+v", got)
	}

	// Move to a slot where c is busy: rejected, nothing changes.
	if err := w.cals["c"].MarkBusy(slot(day1, 16), "x", 0); err != nil {
		t.Fatal(err)
	}
	if err := w.cals["a"].ChangeMeetingSlot(ctxBg(), m.ID, slot(day1, 16)); err == nil {
		t.Fatal("change to busy slot accepted")
	}
	if got := w.slotMeeting("b", slot(day1, 14)); got != m.ID {
		t.Fatalf("b slot after failed change = %q", got)
	}
}

func TestCancelAuthorization(t *testing.T) {
	w := newWorld(t, "a", "b", "c")
	m, err := w.cals["a"].SetupMeeting(ctxBg(), calendar.Request{
		Title: "m", Day: day1, Hour: 10, PinSlot: true, Must: []string{"b", "c"},
	})
	if err != nil {
		t.Fatal(err)
	}
	// b (non-initiator) cannot cancel remotely.
	err = w.cals["b"].Engine().Invoke(ctxBg(), calendar.ServiceFor("a"), "CancelMeeting",
		wire.Args{"meeting": m.ID}, nil)
	if wire.CodeOf(err) != wire.CodeAuth {
		t.Fatalf("unauthorized cancel: %v", err)
	}
	// Delegation transfers the authority (§5's executive/staff).
	if err := w.cals["a"].Delegate(ctxBg(), m.ID, "b"); err != nil {
		t.Fatal(err)
	}
	err = w.cals["b"].Engine().Invoke(ctxBg(), calendar.ServiceFor("a"), "CancelMeeting",
		wire.Args{"meeting": m.ID}, nil)
	if err != nil {
		t.Fatalf("delegated cancel failed: %v", err)
	}
	got, _ := w.cals["a"].Meeting(m.ID)
	if got.Status != calendar.StatusCancelled {
		t.Fatalf("status = %s", got.Status)
	}
}

func TestCancelIsIdempotent(t *testing.T) {
	w := newWorld(t, "a", "b")
	m, err := w.cals["a"].SetupMeeting(ctxBg(), calendar.Request{
		Title: "m", Day: day1, Hour: 10, PinSlot: true, Must: []string{"b"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.cals["a"].CancelMeeting(ctxBg(), m.ID); err != nil {
		t.Fatal(err)
	}
	if err := w.cals["a"].CancelMeeting(ctxBg(), m.ID); err != nil {
		t.Fatalf("second cancel: %v", err)
	}
}

// TestCancelReachesLateJoiner: a participant who confirmed *after*
// setup (via a tentative link) must still be released by the cancel
// cascade — the forward link targets all participants, not just the
// ones reserved at setup time.
func TestCancelReachesLateJoiner(t *testing.T) {
	w := newWorld(t, "a", "b", "c")
	s := slot(day1, 14)
	if err := w.cals["c"].MarkBusy(s, "class", 0); err != nil {
		t.Fatal(err)
	}
	m, err := w.cals["a"].SetupMeeting(ctxBg(), calendar.Request{
		Title: "m", Day: s.Day, Hour: s.Hour, PinSlot: true, Must: []string{"b", "c"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Status != calendar.StatusTentative {
		t.Fatalf("status = %s", m.Status)
	}
	// c joins late.
	if err := w.cals["c"].ReleaseSlot(ctxBg(), s); err != nil {
		t.Fatal(err)
	}
	got, _ := w.cals["a"].Meeting(m.ID)
	if got.Status != calendar.StatusConfirmed {
		t.Fatalf("status after join = %s", got.Status)
	}
	// Cancel must clear c's slot and link too.
	if err := w.cals["a"].CancelMeeting(ctxBg(), m.ID); err != nil {
		t.Fatal(err)
	}
	if got := w.slotMeeting("c", s); got != "" {
		t.Fatalf("late joiner slot = %q after cancel", got)
	}
	if _, ok := w.cals["c"].Links().GetLink(m.LinkID); ok {
		t.Fatal("late joiner link survived cancel")
	}
}

func containsStr(list []string, v string) bool {
	for _, s := range list {
		if s == v {
			return true
		}
	}
	return false
}
