package calendar_test

import (
	"testing"

	"repro/internal/calendar"
	"repro/internal/notify"
	"repro/internal/proxy"
	"repro/internal/wire"
)

// startProxy adds a calendar-aware proxy host to the world.
func (w *world) startProxy(id string) *proxy.Host {
	w.t.Helper()
	h, err := proxy.StartHost(ctxBg(), proxy.HostConfig{
		ID: id, Net: w.net, DirAddr: "dir",
		Adopter: calendar.NewProxyAdopter(w.net, "dir", notify.Discard{}),
	})
	if err != nil {
		w.t.Fatal(err)
	}
	return h
}

func TestCheckpointRestoreRoundTrip(t *testing.T) {
	w := newWorld(t, "phil", "andy")
	c := w.cals["phil"]
	if err := c.MarkBusy(slot(day1, 9), "x", 3); err != nil {
		t.Fatal(err)
	}
	m, err := c.SetupMeeting(ctxBg(), calendar.Request{
		Title: "m", Day: day1, Hour: 10, PinSlot: true, Must: []string{"andy"},
	})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := c.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	// Wipe the slot, then restore: state comes back.
	if err := c.ReleaseSlot(ctxBg(), slot(day1, 9)); err != nil {
		t.Fatal(err)
	}
	if c.Slot(slot(day1, 9)).Meeting != "" {
		t.Fatal("precondition failed")
	}
	if err := c.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if got := c.Slot(slot(day1, 9)).Meeting; got != "personal:x" {
		t.Fatalf("slot = %q", got)
	}
	if got := c.Slot(m.Slot).Meeting; got != m.ID {
		t.Fatalf("meeting slot = %q", got)
	}
	if _, ok := c.Meeting(m.ID); !ok {
		t.Fatal("meeting record lost")
	}
	if _, ok := c.Links().GetLink(m.LinkID); !ok {
		t.Fatal("link row lost")
	}
}

// TestMeetingWithProxiedParticipant: a user goes offline behind a
// proxy; a new meeting is still negotiated with the proxy holding
// their calendar, and the reservation survives the handback.
func TestMeetingWithProxiedParticipant(t *testing.T) {
	w := newWorld(t, "a")
	w.startProxy("p1")
	// b registers after the proxy so it gets assigned.
	w.addUser("b", 0)

	b := w.cals["b"]
	if err := b.MarkBusy(slot(day1, 9), "gym", 0); err != nil {
		t.Fatal(err)
	}
	// b disconnects deliberately.
	bNode := w.nodes["b"]
	if err := b.GoOffline(ctxBg(), w.net, bNode.Dir); err != nil {
		t.Fatal(err)
	}
	w.net.SetDown(bNode.Addr(), true)

	// a sets up a meeting with b: the proxy negotiates for b. The
	// 9:00 slot is busy in the proxied state, so the search must pick
	// 10:00.
	m, err := w.cals["a"].SetupMeeting(ctxBg(), calendar.Request{
		Title: "with-proxied", FromDay: day1, ToDay: day1, Must: []string{"b"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Status != calendar.StatusConfirmed {
		t.Fatalf("status = %s missing=%v", m.Status, m.Missing)
	}
	if m.Slot.Hour == 9 {
		t.Fatal("proxy ignored b's busy slot")
	}

	// b returns and pulls the proxied state: the meeting reservation
	// made through the proxy is now on the device.
	w.net.SetDown(bNode.Addr(), false)
	if err := b.ComeBack(ctxBg(), w.net, bNode.Dir); err != nil {
		t.Fatal(err)
	}
	if got := b.Slot(m.Slot).Meeting; got != m.ID {
		t.Fatalf("b slot after comeback = %q", got)
	}
	if got := b.Slot(slot(day1, 9)).Meeting; got != "personal:gym" {
		t.Fatalf("b gym slot = %q", got)
	}
	// And the device answers directly again.
	var info calendar.SlotInfo
	err = w.cals["a"].Engine().Invoke(ctxBg(), calendar.ServiceFor("b"), "SlotInfo",
		wire.Args{"day": m.Slot.Day, "hour": m.Slot.Hour}, &info)
	if err != nil {
		t.Fatal(err)
	}
	if info.Meeting != m.ID {
		t.Fatalf("direct SlotInfo = %+v", info)
	}
}
