package calendar_test

import (
	"strings"
	"testing"

	"repro/internal/calendar"
	"repro/internal/wire"
)

// invoke is a helper that calls a calendar service method from another
// user's engine.
func invoke(w *world, caller, target, method string, args wire.Args, out any) error {
	return w.cals[caller].Engine().Invoke(ctxBg(), calendar.ServiceFor(target), method, args, out)
}

func TestServiceGetFreeSlotsAndSlotInfo(t *testing.T) {
	w := newWorld(t, "phil", "andy")
	if err := w.cals["phil"].MarkBusy(slot(day1, 9), "x", 3); err != nil {
		t.Fatal(err)
	}
	var slots []calendar.Slot
	if err := invoke(w, "andy", "phil", "GetFreeSlots", wire.Args{"from": day1, "to": day1}, &slots); err != nil {
		t.Fatal(err)
	}
	if len(slots) != len(calendar.DefaultHours)-1 {
		t.Fatalf("slots = %d", len(slots))
	}
	// Restricted hours.
	if err := invoke(w, "andy", "phil", "GetFreeSlots", wire.Args{"from": day1, "to": day1, "hours": []int{9, 10}}, &slots); err != nil {
		t.Fatal(err)
	}
	if len(slots) != 1 || slots[0].Hour != 10 {
		t.Fatalf("restricted slots = %v", slots)
	}
	var info calendar.SlotInfo
	if err := invoke(w, "andy", "phil", "SlotInfo", wire.Args{"day": day1, "hour": 9}, &info); err != nil {
		t.Fatal(err)
	}
	if info.Meeting != "personal:x" || info.Priority != 3 {
		t.Fatalf("info = %+v", info)
	}
	// Bad slot args.
	err := invoke(w, "andy", "phil", "SlotInfo", wire.Args{"day": "garbage", "hour": 9}, nil)
	if wire.CodeOf(err) != wire.CodeBadArgs {
		t.Fatalf("bad slot: %v", err)
	}
}

func TestServiceScheduleRemote(t *testing.T) {
	w := newWorld(t, "phil", "andy", "suzy")
	var m calendar.Meeting
	err := invoke(w, "suzy", "phil", "Schedule", wire.Args{
		"title": "remote", "from": day1, "to": day1, "must": []string{"andy"},
	}, &m)
	if err != nil {
		t.Fatal(err)
	}
	// The meeting is initiated by the node's owner, not the caller.
	if m.Initiator != "phil" || m.Status != calendar.StatusConfirmed {
		t.Fatalf("m = %+v", m)
	}
	if got := w.slotMeeting("andy", m.Slot); got != m.ID {
		t.Fatalf("andy slot = %q", got)
	}
	// Structured request form with priority.
	err = invoke(w, "suzy", "phil", "Schedule", wire.Args{
		"request": map[string]any{
			"title": "structured", "day": day1, "hour": 16, "pinSlot": true,
			"must": []string{"suzy"}, "priority": 5,
		},
	}, &m)
	if err != nil {
		t.Fatal(err)
	}
	if m.Priority != 5 || m.Slot.Hour != 16 {
		t.Fatalf("structured m = %+v", m)
	}
}

func TestServiceGetMeetingAndUpdateValidation(t *testing.T) {
	w := newWorld(t, "phil", "andy")
	m, err := w.cals["phil"].SetupMeeting(ctxBg(), calendar.Request{
		Title: "m", Day: day1, Hour: 10, PinSlot: true, Must: []string{"andy"},
	})
	if err != nil {
		t.Fatal(err)
	}
	var got calendar.Meeting
	if err := invoke(w, "andy", "phil", "GetMeeting", wire.Args{"meeting": m.ID}, &got); err != nil {
		t.Fatal(err)
	}
	if got.ID != m.ID || got.Title != "m" {
		t.Fatalf("got = %+v", got)
	}
	err = invoke(w, "andy", "phil", "GetMeeting", wire.Args{"meeting": "nope"}, nil)
	if wire.CodeOf(err) != wire.CodeNoService {
		t.Fatalf("unknown meeting: %v", err)
	}
	// MeetingUpdate rejects garbage.
	err = invoke(w, "andy", "phil", "MeetingUpdate", wire.Args{"meeting": "not-an-object"}, nil)
	if wire.CodeOf(err) != wire.CodeBadArgs {
		t.Fatalf("garbage update: %v", err)
	}
	err = invoke(w, "andy", "phil", "MeetingUpdate", wire.Args{"meeting": map[string]any{"title": "no id"}}, nil)
	if wire.CodeOf(err) != wire.CodeBadArgs {
		t.Fatalf("update without id: %v", err)
	}
}

func TestServiceNotificationContents(t *testing.T) {
	w := newWorld(t, "phil", "andy")
	m, err := w.cals["phil"].SetupMeeting(ctxBg(), calendar.Request{
		Title: "design review", Day: day1, Hour: 10, PinSlot: true, Must: []string{"andy"},
	})
	if err != nil {
		t.Fatal(err)
	}
	inbox := w.mail.Inbox("andy")
	if len(inbox) != 1 {
		t.Fatalf("inbox = %d", len(inbox))
	}
	msg := inbox[0]
	for _, want := range []string{m.ID, "design review", "confirmed"} {
		if !containsSub(msg.Subject, want) && !containsSub(msg.Body, want) {
			t.Fatalf("notification missing %q: subject=%q body=%q", want, msg.Subject, msg.Body)
		}
	}
	if err := w.cals["phil"].CancelMeeting(ctxBg(), m.ID); err != nil {
		t.Fatal(err)
	}
	inbox = w.mail.Inbox("andy")
	if len(inbox) != 2 || !containsSub(inbox[1].Subject, "cancelled") {
		t.Fatalf("cancel notification: %+v", inbox)
	}
}

func containsSub(haystack, needle string) bool {
	return strings.Contains(haystack, needle)
}
