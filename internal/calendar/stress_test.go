package calendar_test

import (
	"context"
	"sync"
	"testing"

	"repro/internal/calendar"
	"repro/internal/workload"
)

// TestSchedulingStorm runs many concurrent initiators competing for a
// tight slot window and then checks global invariants:
//
//   - every slot on every device is held by at most one meeting (the
//     store enforces this locally; the invariant here is that the
//     holder is a *consistent* meeting — its record exists and lists
//     the device's user as reserved);
//   - no entity locks are leaked after the storm;
//   - confirmed meetings have every must-attendee actually holding
//     the slot on their own device.
func TestSchedulingStorm(t *testing.T) {
	const (
		nUsers    = 10
		nMeetings = 24
		fanout    = 3
	)
	users := workload.Users(nUsers)
	w := newWorld(t, users...)
	plans := workload.MakeMeetingPlans(users, nMeetings, fanout, 77)
	ctx := context.Background()

	var wg sync.WaitGroup
	meetingIDs := make([]string, nMeetings)
	for i, p := range plans {
		wg.Add(1)
		go func(i int, p workload.MeetingPlan) {
			defer wg.Done()
			// One narrow day so the initiators genuinely contend.
			m, err := w.cals[p.Initiator].SetupMeeting(ctx, calendar.Request{
				Title: "storm", FromDay: day1, ToDay: day1,
				Must: p.Participants, Priority: p.Priority,
			})
			if err == nil {
				meetingIDs[i] = m.ID
			}
		}(i, p)
	}
	wg.Wait()

	// Invariant: no leaked locks anywhere.
	for _, u := range users {
		if n := w.cals[u].Links().Locks.Len(); n != 0 {
			t.Fatalf("%s has %d leaked locks", u, n)
		}
	}

	// Invariant: every held slot belongs to a known meeting that
	// lists the holder, and confirmed meetings are fully reserved.
	scheduled := 0
	for i, p := range plans {
		id := meetingIDs[i]
		if id == "" {
			continue // contention loss; fine
		}
		scheduled++
		m, ok := w.cals[p.Initiator].Meeting(id)
		if !ok {
			t.Fatalf("meeting %s vanished", id)
		}
		switch m.Status {
		case calendar.StatusConfirmed:
			for _, u := range append([]string{p.Initiator}, p.Participants...) {
				if got := w.slotMeeting(u, m.Slot); got != m.ID {
					t.Fatalf("confirmed %s: %s slot holds %q", m.ID, u, got)
				}
				if !containsStr(m.Reserved, u) {
					t.Fatalf("confirmed %s: %s not in reserved %v", m.ID, u, m.Reserved)
				}
			}
		case calendar.StatusTentative:
			// Reserved members hold the slot; missing ones don't.
			for _, u := range m.Reserved {
				if got := w.slotMeeting(u, m.Slot); got != m.ID {
					t.Fatalf("tentative %s: reserved %s slot holds %q", m.ID, u, got)
				}
			}
			for _, u := range m.Missing {
				if got := w.slotMeeting(u, m.Slot); got == m.ID {
					t.Fatalf("tentative %s: missing %s still holds the slot", m.ID, u)
				}
			}
		default:
			t.Fatalf("meeting %s in state %s after storm", m.ID, m.Status)
		}
	}
	if scheduled == 0 {
		t.Fatal("storm scheduled nothing")
	}

	// Every occupied slot maps back to a meeting record somewhere.
	for _, u := range users {
		for _, s := range allSlots(day1) {
			holder := w.slotMeeting(u, s)
			if holder == "" || len(holder) >= 9 && holder[:9] == "personal:" {
				continue
			}
			if _, ok := w.cals[u].Meeting(holder); !ok {
				t.Fatalf("%s slot %v held by unknown meeting %q", u, s, holder)
			}
		}
	}

	// And the system still works: cancel everything, slots drain.
	for i, p := range plans {
		if meetingIDs[i] == "" {
			continue
		}
		m, ok := w.cals[p.Initiator].Meeting(meetingIDs[i])
		if !ok || m.Status == calendar.StatusCancelled {
			continue
		}
		if err := w.cals[p.Initiator].CancelMeeting(ctx, m.ID); err != nil {
			t.Fatalf("cancel %s: %v", m.ID, err)
		}
	}
	for _, u := range users {
		for _, s := range allSlots(day1) {
			if got := w.slotMeeting(u, s); got != "" {
				t.Fatalf("%s slot %v still %q after draining", u, s, got)
			}
		}
	}
}

// TestConcurrentMutationsOfOneMeeting hammers a single meeting with
// concurrent dropouts, re-confirms, and delegations; the per-meeting
// lock must keep the record consistent (reserved/missing disjoint, no
// lost participants).
func TestConcurrentMutationsOfOneMeeting(t *testing.T) {
	users := []string{"a", "b", "c", "d", "e"}
	w := newWorld(t, users...)
	ctx := context.Background()
	m, err := w.cals["a"].SetupMeeting(ctx, calendar.Request{
		Title: "contested", Day: day1, Hour: 10, PinSlot: true,
		Must: []string{"b", "c", "d", "e"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Status != calendar.StatusConfirmed {
		t.Fatalf("status = %s", m.Status)
	}

	var wg sync.WaitGroup
	for round := 0; round < 4; round++ {
		for _, u := range []string{"b", "c", "d"} {
			wg.Add(1)
			go func(u string) {
				defer wg.Done()
				_ = w.cals[u].DropOut(ctx, m.ID) // may conflict; fine
			}(u)
		}
		wg.Add(2)
		go func() {
			defer wg.Done()
			_, _ = w.cals["a"].TryConfirm(ctx, m.ID)
		}()
		go func() {
			defer wg.Done()
			_ = w.cals["a"].Delegate(ctx, m.ID, "e")
		}()
		wg.Wait()
	}
	// Converge: one final confirm attempt.
	final, err := w.cals["a"].TryConfirm(ctx, m.ID)
	if err != nil {
		t.Fatal(err)
	}

	// Consistency: reserved and missing are disjoint and cover no
	// duplicates; every reserved user actually holds the slot.
	seen := map[string]int{}
	for _, u := range final.Reserved {
		seen[u]++
	}
	for _, u := range final.Missing {
		seen[u] += 10
	}
	for u, v := range seen {
		if v != 1 && v != 10 {
			t.Fatalf("user %s appears inconsistently (code %d): reserved=%v missing=%v",
				u, v, final.Reserved, final.Missing)
		}
	}
	for _, u := range final.Reserved {
		if got := w.slotMeeting(u, m.Slot); got != m.ID {
			t.Fatalf("reserved %s slot = %q", u, got)
		}
	}
	if final.Status == calendar.StatusConfirmed && !final.Satisfied() {
		t.Fatalf("confirmed but not satisfied: %+v", final)
	}
	if !containsStr(final.Delegates, "e") {
		t.Fatalf("delegation lost: %v", final.Delegates)
	}
	// No lock leaks.
	for _, u := range users {
		if n := w.cals[u].Links().Locks.Len(); n != 0 {
			t.Fatalf("%s leaked %d locks", u, n)
		}
	}
}

func allSlots(day string) []calendar.Slot {
	out := make([]calendar.Slot, 0, len(calendar.DefaultHours))
	for _, h := range calendar.DefaultHours {
		out = append(out, calendar.Slot{Day: day, Hour: h})
	}
	return out
}
