package calendar

import (
	"bytes"
	"context"
	"fmt"

	"repro/internal/clock"
	"repro/internal/directory"
	"repro/internal/engine"
	"repro/internal/links"
	"repro/internal/listener"
	"repro/internal/notify"
	"repro/internal/proxy"
	"repro/internal/store"
	"repro/internal/transport"
)

// Checkpoint serializes the calendar's full device state (slots,
// meetings, and the link database — they live in the same store) for
// transfer to a proxy (§5.2: "the database server could potentially be
// placed on the proxy").
func (c *Calendar) Checkpoint() ([]byte, error) {
	var buf bytes.Buffer
	if err := c.db.Snapshot(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Restore replaces the calendar's state from a checkpoint produced by
// the proxy during adoption. Because store snapshots restore into a
// fresh DB, Restore copies rows table-by-table into the live tables.
func (c *Calendar) Restore(snapshot []byte) error {
	restored := store.NewDB()
	if err := restored.Restore(bytes.NewReader(snapshot)); err != nil {
		return err
	}
	for _, name := range restored.TableNames() {
		src, err := restored.Table(name)
		if err != nil {
			return err
		}
		dst, err := c.db.Table(name)
		if err != nil {
			continue // table this device does not keep
		}
		// Clear and refill.
		for _, r := range dst.Select(nil) {
			keyVals, kerr := keyValsFor(dst, r)
			if kerr != nil {
				return kerr
			}
			if err := dst.Delete(keyVals...); err != nil {
				return err
			}
		}
		for _, r := range src.Select(nil) {
			if err := dst.Insert(r); err != nil {
				return fmt.Errorf("calendar: restore %s: %w", name, err)
			}
		}
	}
	return nil
}

// keyValsFor extracts a row's primary key values in schema order.
func keyValsFor(t *store.Table, r store.Row) ([]any, error) {
	schema := t.Schema()
	out := make([]any, len(schema.Key))
	for i, k := range schema.Key {
		v, ok := r[k]
		if !ok {
			return nil, fmt.Errorf("calendar: row missing key %q", k)
		}
		out[i] = v
	}
	return out, nil
}

// NewProxyAdopter returns a proxy.Adopter that reconstructs a user's
// *full* calendar node from a snapshot: the calendar service AND the
// links service, so negotiations keep working against the proxied user
// ("the proxy and the SyD object act as a single entity", §5.2).
func NewProxyAdopter(net transport.Network, dirAddr string, notifier notify.Notifier) proxy.Adopter {
	if notifier == nil {
		notifier = notify.Discard{}
	}
	return func(user string, snapshot []byte) (map[string]*listener.Object, func() ([]byte, error), error) {
		db := store.NewDB()
		if len(snapshot) > 0 {
			if err := db.Restore(bytes.NewReader(snapshot)); err != nil {
				return nil, nil, fmt.Errorf("calendar adopter: %w", err)
			}
		}
		dir := directory.NewClient(net, dirAddr)
		eng := engine.New(net, dir, user)
		lm, err := links.NewManager(user, db, eng, clock.System)
		if err != nil {
			return nil, nil, err
		}
		cal, err := NewDetached(user, db, lm, eng, WithNotifier(notifier))
		if err != nil {
			return nil, nil, err
		}
		services := map[string]*listener.Object{
			ServiceFor(user):       cal.ServiceObject(),
			links.ServiceFor(user): lm.Object(),
		}
		checkpoint := func() ([]byte, error) { return cal.Checkpoint() }
		return services, checkpoint, nil
	}
}

// GoOffline pushes this calendar's state to the user's assigned proxy
// and marks the user offline — the deliberate-disconnect half of the
// §5.2 mobility story. The caller should then drop the device off the
// network (close the node or power down).
func (c *Calendar) GoOffline(ctx context.Context, net transport.Network, dir *directory.Client) error {
	snap, err := c.Checkpoint()
	if err != nil {
		return err
	}
	if err := proxy.PushToProxy(ctx, net, dir, c.user, snap); err != nil {
		return err
	}
	return dir.SetOffline(ctx, c.user, true)
}

// ComeBack pulls the proxied state into this calendar and marks the
// user online again — "once A comes back up, A takes over the proxy".
func (c *Calendar) ComeBack(ctx context.Context, net transport.Network, dir *directory.Client) error {
	snap, err := proxy.PullFromProxy(ctx, net, dir, c.user)
	if err != nil {
		return err
	}
	if err := c.Restore(snap); err != nil {
		return err
	}
	return dir.SetOffline(ctx, c.user, false)
}
