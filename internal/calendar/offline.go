package calendar

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/offline"
	"repro/internal/wire"
)

// Offline op kinds queued while disconnected and replayed on reconnect.
const (
	opSchedule = "schedule"
	opCancel   = "cancel"
)

// meetingEntity returns the sync entity id of a meeting record.
func meetingEntity(meetingID string) string { return "meeting:" + meetingID }

// EnableSync wires this calendar into the node's disconnected-operation
// manager: the calendar becomes the sync source (meeting docs filtered
// by participation), the applier for pulled docs, and the replayer for
// queued ops — which drain through SetupMeeting/CancelMeeting so that
// conflicting offline bookings reconcile via the normal tentative-link
// promotion machinery rather than an ad-hoc merge.
func (c *Calendar) EnableSync(om *offline.Manager) {
	c.offline = om
	c.syncVers = om.Versions()
	ad := &syncAdapter{c: c}
	om.SetSource(ad)
	om.SetApplier(ad)
	om.SetReplayer(c.ReplayOp)
	om.SetPeers(c.syncPeers)
	// Seed versions for meetings created before sync was enabled, so
	// the first Pull against this device sees them.
	for _, m := range c.Meetings() {
		if c.syncVers.Get(meetingEntity(m.ID)) == 0 {
			c.syncVers.Bump(meetingEntity(m.ID))
		}
	}
}

// syncPeers lists every other user this calendar shares a meeting with
// — the set worth pulling from after a disconnect.
func (c *Calendar) syncPeers() []string {
	seen := map[string]bool{c.user: true}
	var out []string
	for _, m := range c.Meetings() {
		for _, u := range m.Participants() {
			if !seen[u] {
				seen[u] = true
				out = append(out, u)
			}
		}
	}
	sort.Strings(out)
	return out
}

// ScheduleOrQueue sets up a meeting when online. In local mode it
// pre-mints the meeting id, parks the request in the offline op queue,
// and records the meeting locally as tentative (occupying a pinned slot
// so local reads reflect the intent). Returns queued=true when the op
// was deferred.
func (c *Calendar) ScheduleOrQueue(ctx context.Context, req Request) (m *Meeting, queued bool, err error) {
	if c.offline == nil || c.offline.State() == offline.StateOnline {
		m, err = c.SetupMeeting(ctx, req)
		if err == nil || !offline.IsLocalMode(err) {
			return m, false, err
		}
		// The manager flipped to local mode mid-setup; fall through and
		// queue instead.
	}
	if req.ID == "" {
		req.ID = newMeetingID()
	}
	if req.PinSlot || req.Day != "" {
		slot := Slot{Day: req.Day, Hour: req.Hour}
		if !slot.Valid() {
			return nil, false, &wire.RemoteError{Code: wire.CodeBadArgs, Msg: fmt.Sprintf("calendar: bad slot %v", slot)}
		}
		// Local validation: an offline booking may not double-book this
		// device's own calendar.
		if info := c.slotInfo(slot); info.Meeting != "" && info.Meeting != req.ID {
			return nil, false, &wire.RemoteError{Code: wire.CodeConflict,
				Msg: fmt.Sprintf("calendar: %s/%s holds %s", c.user, slot, info.Meeting)}
		}
	}
	payload, err := json.Marshal(req)
	if err != nil {
		return nil, false, err
	}
	if _, err := c.offline.EnqueueOp(opSchedule, req.ID, payload); err != nil {
		return nil, false, err // queue full under RejectNew
	}
	// Record the intent locally: tentative, no LinkID (the replay that
	// runs SetupMeeting stamps one — that is the idempotency marker).
	m = &Meeting{
		ID:          req.ID,
		Title:       req.Title,
		Initiator:   c.user,
		Status:      StatusTentative,
		Priority:    req.Priority,
		Must:        append([]string(nil), req.Must...),
		Supervisors: append([]string(nil), req.Supervisors...),
		OrGroups:    append([]OrGroup(nil), req.OrGroups...),
		Missing:     append([]string(nil), req.Must...),
	}
	if req.PinSlot || req.Day != "" {
		m.Slot = Slot{Day: req.Day, Hour: req.Hour}
		if err := c.setSlot(m.Slot, m.ID, m.Priority); err != nil {
			return nil, false, err
		}
	}
	if err := c.putMeeting(m); err != nil {
		return nil, false, err
	}
	return m, true, nil
}

// CancelOrQueue cancels a meeting when online; in local mode it queues
// the cancellation and marks the local record cancelled (freeing the
// local slot) so disconnected reads see it gone.
func (c *Calendar) CancelOrQueue(ctx context.Context, meetingID string) (queued bool, err error) {
	if c.offline == nil || c.offline.State() == offline.StateOnline {
		err = c.CancelMeeting(ctx, meetingID)
		if err == nil || !offline.IsLocalMode(err) {
			return false, err
		}
	}
	m, ok := c.Meeting(meetingID)
	if !ok {
		return false, &wire.RemoteError{Code: wire.CodeNoService, Msg: fmt.Sprintf("calendar: unknown meeting %s", meetingID)}
	}
	if _, err := c.offline.EnqueueOp(opCancel, meetingID, nil); err != nil {
		return false, err
	}
	if info := c.slotInfo(m.Slot); info.Meeting == meetingID {
		_ = c.setSlot(m.Slot, "", 0)
	}
	m.Status = StatusCancelled
	m.Reserved = nil
	if err := c.putMeeting(m); err != nil {
		return true, err
	}
	return true, nil
}

// ReplayOp drains one queued op during the reconnect push phase (the
// manager's replayer; exported so a re-delivered drain can be tested
// directly).
func (c *Calendar) ReplayOp(ctx context.Context, op offline.Op) error {
	switch op.Kind {
	case opSchedule:
		// Idempotency: the local offline stub has no LinkID; a meeting
		// that already carries one was set up by an earlier (interrupted)
		// drain of this same op.
		if m, ok := c.Meeting(op.ID); ok {
			if m.LinkID != "" {
				return nil
			}
			if m.Status == StatusCancelled {
				return nil // cancelled while still offline; nothing to push
			}
		}
		var req Request
		if err := json.Unmarshal(op.Payload, &req); err != nil {
			return err
		}
		req.ID = op.ID
		_, err := c.SetupMeeting(ctx, req)
		return err
	case opCancel:
		m, ok := c.Meeting(op.ID)
		if !ok {
			return nil // never materialized; nothing to cancel anywhere
		}
		if m.LinkID == "" {
			return nil // offline-only stub: cancelled before it was ever pushed
		}
		// The local record is already StatusCancelled (CancelOrQueue), so
		// cancelMeetingAs would return before the cascade. Run the remote
		// teardown directly: deleting the coordination link releases every
		// participant's slot and promotes waiting tentative meetings, and
		// the doc push propagates the cancelled record. DeleteLink is
		// idempotent, so a duplicate drain is safe.
		if _, err := c.lm.DeleteLink(ctx, m.LinkID, nil); err != nil {
			return err
		}
		c.pushMeetingUpdate(ctx, m)
		c.notifyParticipants(ctx, m,
			fmt.Sprintf("Meeting %s (%s) cancelled", m.ID, m.Title),
			fmt.Sprintf("%s at %s was cancelled by %s.", m.Title, m.Slot, c.user))
		return nil
	default:
		return fmt.Errorf("calendar: unknown offline op kind %q", op.Kind)
	}
}

// syncAdapter adapts the calendar's meeting table to the offline
// package's Source/Applier interfaces.
type syncAdapter struct{ c *Calendar }

// Relevant implements the relevance predicate: a meeting concerns the
// requester iff they participate in it (initiator, must, supervisor, or
// or-group member). Everything else never leaves this device.
func (a *syncAdapter) Relevant(requester, entity string) bool {
	id, ok := strings.CutPrefix(entity, "meeting:")
	if !ok {
		return false
	}
	m, ok := a.c.Meeting(id)
	if !ok {
		return false
	}
	return containsString(m.Participants(), requester)
}

// Snapshot returns the meeting's current document.
func (a *syncAdapter) Snapshot(entity string) (json.RawMessage, bool) {
	id, ok := strings.CutPrefix(entity, "meeting:")
	if !ok {
		return nil, false
	}
	r, ok := a.c.meetings.Get(id)
	if !ok {
		return nil, false
	}
	return json.RawMessage(r["doc"].(string)), true
}

// Apply lands a pulled meeting doc. The initiator's record is
// authoritative (same trust model as the MeetingUpdate push), so a
// pulled doc simply replaces the local copy — and releases/occupies the
// local slot to match, as linkHook would have done had we been online.
func (a *syncAdapter) Apply(entity string, _ int64, doc json.RawMessage) error {
	id, ok := strings.CutPrefix(entity, "meeting:")
	if !ok {
		return fmt.Errorf("calendar: bad sync entity %q", entity)
	}
	var m Meeting
	if err := json.Unmarshal(doc, &m); err != nil || m.ID == "" || m.ID != id {
		return fmt.Errorf("calendar: bad meeting doc for %q", entity)
	}
	if m.Initiator == a.c.user {
		// Our own meetings are authoritative locally; a peer's stale
		// copy must not roll back what the push phase just negotiated.
		return nil
	}
	if m.Status == StatusCancelled {
		if info := a.c.slotInfo(m.Slot); info.Meeting == m.ID {
			_ = a.c.setSlot(m.Slot, "", 0)
		}
	}
	return a.c.putMeeting(&m)
}
