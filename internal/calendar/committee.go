package calendar

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/wire"
)

// Committee is the SyD application object of the paper's §3.2: the
// class it calls Calendars_of_committee_SyDAppC, instantiated as e.g.
// Calendars_of_phil+andy+suzy_SyDAppO. It aggregates the calendar
// device objects of a member set and offers the composite methods the
// paper names — Find_earliest_meeting_time() and
// Change_meeting_time_to_next_available() — implemented purely on top
// of the groupware (no member-local code).
//
// A Committee is bound to one local Calendar (the coordinator, whose
// engine and links are used) plus the remote members.
type Committee struct {
	cal     *Calendar
	members []string // always includes the coordinator
}

// NewCommittee builds the app object for the coordinator's calendar
// plus the other members. Member order is preserved (minus
// duplicates); the coordinator is always included.
func NewCommittee(cal *Calendar, others ...string) *Committee {
	seen := map[string]bool{cal.User(): true}
	members := []string{cal.User()}
	for _, m := range others {
		if !seen[m] {
			seen[m] = true
			members = append(members, m)
		}
	}
	return &Committee{cal: cal, members: members}
}

// NewCommitteeFromGroup resolves a SyDDirectory group into a Committee
// (the "formation and maintenance of dynamic groups" of the abstract).
func NewCommitteeFromGroup(ctx context.Context, cal *Calendar, group string) (*Committee, error) {
	members, err := cal.Engine().Directory().GroupMembers(ctx, group)
	if err != nil {
		return nil, err
	}
	if len(members) == 0 {
		return nil, &wire.RemoteError{Code: wire.CodeNoService, Msg: fmt.Sprintf("calendar: group %q is empty or unknown", group)}
	}
	return NewCommittee(cal, members...), nil
}

// Members returns the committee membership (coordinator first).
func (cc *Committee) Members() []string {
	return append([]string(nil), cc.members...)
}

// Name renders the paper's SyDAppO naming convention, e.g.
// "Calendars_of_phil+andy+suzy_SyDAppO".
func (cc *Committee) Name() string {
	joined := ""
	for i, m := range cc.members {
		if i > 0 {
			joined += "+"
		}
		joined += m
	}
	return "Calendars_of_" + joined + "_SyDAppO"
}

// others returns the non-coordinator members.
func (cc *Committee) others() []string {
	var out []string
	for _, m := range cc.members {
		if m != cc.cal.User() {
			out = append(out, m)
		}
	}
	return out
}

// FindEarliestMeetingTime is the paper's
// Find_earliest_meeting_time(): the first slot in the window at which
// every committee member is free.
func (cc *Committee) FindEarliestMeetingTime(ctx context.Context, fromDay, toDay string, hours []int) (Slot, error) {
	slots, err := cc.cal.FindCommonSlots(ctx, Request{
		FromDay: fromDay, ToDay: toDay, Hours: hours, Must: cc.others(),
	})
	if err != nil {
		return Slot{}, err
	}
	if len(slots) == 0 {
		return Slot{}, &wire.RemoteError{Code: wire.CodeConflict, Msg: "calendar: committee has no common free slot in the window"}
	}
	return slots[0], nil
}

// ScheduleEarliest sets up a committee meeting at the earliest common
// slot.
func (cc *Committee) ScheduleEarliest(ctx context.Context, title, fromDay, toDay string, priority int) (*Meeting, error) {
	return cc.cal.SetupMeeting(ctx, Request{
		Title: title, FromDay: fromDay, ToDay: toDay,
		Must: cc.others(), Priority: priority,
	})
}

// ChangeMeetingTimeToNextAvailable is the paper's
// Change_meeting_time_to_next_available(): move an existing committee
// meeting to the next slot (strictly after the current one, within
// horizonDays) at which every current participant is free. The move
// itself is the atomic negotiation of ChangeMeetingSlot — if anyone's
// status changed since the search, the change is rejected and the
// meeting stays where it was.
func (cc *Committee) ChangeMeetingTimeToNextAvailable(ctx context.Context, meetingID string, horizonDays int) (Slot, error) {
	m, ok := cc.cal.Meeting(meetingID)
	if !ok {
		return Slot{}, &wire.RemoteError{Code: wire.CodeNoService, Msg: fmt.Sprintf("calendar: unknown meeting %s", meetingID)}
	}
	if horizonDays <= 0 {
		horizonDays = 7
	}
	toDay := addDays(m.Slot.Day, horizonDays)
	candidates, err := cc.cal.FindCommonSlots(ctx, Request{
		FromDay: m.Slot.Day, ToDay: toDay, Must: cc.others(),
	})
	if err != nil {
		return Slot{}, err
	}
	sort.Slice(candidates, func(i, j int) bool {
		if candidates[i].Day != candidates[j].Day {
			return candidates[i].Day < candidates[j].Day
		}
		return candidates[i].Hour < candidates[j].Hour
	})
	for _, s := range candidates {
		if s.Day == m.Slot.Day && s.Hour <= m.Slot.Hour {
			continue // only strictly later slots
		}
		if err := cc.cal.ChangeMeetingSlot(ctx, meetingID, s); err != nil {
			continue // raced with a change; try the next slot
		}
		return s, nil
	}
	return Slot{}, &wire.RemoteError{Code: wire.CodeConflict, Msg: "calendar: no later common slot within the horizon"}
}

// FreeBusyMatrix returns, per member, the free slots in the window —
// the aggregated committee view a GUI would render (§5's "a list of
// open slots common to all the participants appears").
func (cc *Committee) FreeBusyMatrix(ctx context.Context, fromDay, toDay string, hours []int) (map[string][]Slot, error) {
	out := make(map[string][]Slot, len(cc.members))
	for _, u := range cc.members {
		if u == cc.cal.User() {
			out[u] = cc.cal.FreeSlots(fromDay, toDay, hours)
			continue
		}
		var slots []Slot
		err := cc.cal.Engine().Invoke(ctx, ServiceFor(u), "GetFreeSlots", wire.Args{
			"from": fromDay, "to": toDay, "hours": hours,
		}, &slots)
		if err != nil {
			return nil, fmt.Errorf("calendar: free/busy of %s: %w", u, err)
		}
		out[u] = slots
	}
	return out, nil
}

// addDays shifts a YYYY-MM-DD day string by n days (returns the input
// unchanged if it does not parse).
func addDays(day string, n int) string {
	t, err := time.Parse("2006-01-02", day)
	if err != nil {
		return day
	}
	return t.AddDate(0, 0, n).Format("2006-01-02")
}
