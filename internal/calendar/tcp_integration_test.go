package calendar_test

import (
	"context"
	"testing"
	"time"

	"repro/internal/auth"
	"repro/internal/calendar"
	"repro/internal/core"
	"repro/internal/directory"
	"repro/internal/transport"
	"repro/internal/wire"
)

// TestTCPEndToEnd runs the full stack over real TCP sockets — the
// deployment path of the cmd/ binaries — and drives a meeting
// lifecycle through it: transport-agnosticism is a design decision
// (DESIGN.md §5.3) and this is its proof.
func TestTCPEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("real sockets")
	}
	net := transport.NewTCP()
	defer net.Close()
	srv := directory.NewServer(directory.WithTTL(time.Hour))
	dirLn, err := net.Listen("127.0.0.1:0", srv.Handler())
	if err != nil {
		t.Fatal(err)
	}
	defer dirLn.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	cals := map[string]*calendar.Calendar{}
	for _, user := range []string{"phil", "andy", "suzy"} {
		node, err := core.Start(ctx, core.Config{
			User: user, Net: net, DirAddr: dirLn.Addr(),
			ListenAddr: "127.0.0.1:0",
		})
		if err != nil {
			t.Fatal(err)
		}
		defer node.Close(context.Background())
		c, err := calendar.New(ctx, node)
		if err != nil {
			t.Fatal(err)
		}
		cals[user] = c
	}

	if err := cals["andy"].MarkBusy(calendar.Slot{Day: "2003-04-22", Hour: 9}, "x", 0); err != nil {
		t.Fatal(err)
	}
	m, err := cals["phil"].SetupMeeting(ctx, calendar.Request{
		Title: "tcp", FromDay: "2003-04-22", ToDay: "2003-04-22",
		Must: []string{"andy", "suzy"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Status != calendar.StatusConfirmed {
		t.Fatalf("status = %s missing=%v", m.Status, m.Missing)
	}
	if m.Slot.Hour == 9 {
		t.Fatal("busy slot chosen over TCP")
	}
	for _, c := range cals {
		if got := c.Slot(m.Slot).Meeting; got != m.ID {
			t.Fatalf("%s slot = %q", c.User(), got)
		}
	}
	if err := cals["phil"].CancelMeeting(ctx, m.ID); err != nil {
		t.Fatal(err)
	}
	for _, c := range cals {
		if got := c.Slot(m.Slot).Meeting; got != "" {
			t.Fatalf("%s slot after cancel = %q", c.User(), got)
		}
	}
}

// TestTCPMixedCodecFleet runs the full stack over real sockets with a
// mixed-codec fleet: phil and andy prefer wire codec v3, suzy and the
// directory speak only JSON. This is the rolling-upgrade shape — v3
// pairs latch to the binary codec while every v3↔JSON pair stays on
// JSON — and a full meeting lifecycle must come out byte-for-byte
// equivalent to a uniform fleet's.
func TestTCPMixedCodecFleet(t *testing.T) {
	if testing.Short() {
		t.Skip("real sockets")
	}
	netV3 := transport.NewTCP(transport.WithWireCodec(wire.CodecV3))
	defer netV3.Close()
	netJSON := transport.NewTCP()
	defer netJSON.Close()

	srv := directory.NewServer(directory.WithTTL(time.Hour))
	dirLn, err := netJSON.Listen("127.0.0.1:0", srv.Handler())
	if err != nil {
		t.Fatal(err)
	}
	defer dirLn.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	fleets := map[string]*transport.TCP{
		"phil": netV3, "andy": netV3, "suzy": netJSON,
	}
	cals := map[string]*calendar.Calendar{}
	for _, user := range []string{"phil", "andy", "suzy"} {
		node, err := core.Start(ctx, core.Config{
			User: user, Net: fleets[user], DirAddr: dirLn.Addr(),
			ListenAddr: "127.0.0.1:0",
		})
		if err != nil {
			t.Fatal(err)
		}
		defer node.Close(context.Background())
		c, err := calendar.New(ctx, node)
		if err != nil {
			t.Fatal(err)
		}
		cals[user] = c
	}

	if err := cals["andy"].MarkBusy(calendar.Slot{Day: "2003-04-22", Hour: 9}, "x", 0); err != nil {
		t.Fatal(err)
	}
	m, err := cals["phil"].SetupMeeting(ctx, calendar.Request{
		Title: "mixed", FromDay: "2003-04-22", ToDay: "2003-04-22",
		Must: []string{"andy", "suzy"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Status != calendar.StatusConfirmed {
		t.Fatalf("status = %s missing=%v", m.Status, m.Missing)
	}
	if m.Slot.Hour == 9 {
		t.Fatal("busy slot chosen across the codec boundary")
	}
	for _, c := range cals {
		if got := c.Slot(m.Slot).Meeting; got != m.ID {
			t.Fatalf("%s slot = %q", c.User(), got)
		}
	}
	if err := cals["phil"].CancelMeeting(ctx, m.ID); err != nil {
		t.Fatal(err)
	}
	for _, c := range cals {
		if got := c.Slot(m.Slot).Meeting; got != "" {
			t.Fatalf("%s slot after cancel = %q", c.User(), got)
		}
	}
}

// TestTCPAuthenticatedService exercises the §5.4 auth path over real
// sockets.
func TestTCPAuthenticatedService(t *testing.T) {
	if testing.Short() {
		t.Skip("real sockets")
	}
	net := transport.NewTCP()
	defer net.Close()
	srv := directory.NewServer(directory.WithTTL(time.Hour))
	dirLn, err := net.Listen("127.0.0.1:0", srv.Handler())
	if err != nil {
		t.Fatal(err)
	}
	defer dirLn.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	an := auth.NewAuthenticator("tcp-deploy-key")
	an.Table.Add("andy", "pw")
	node, err := core.Start(ctx, core.Config{
		User: "phil", Net: net, DirAddr: dirLn.Addr(),
		ListenAddr: "127.0.0.1:0", Auth: an,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close(context.Background())
	c, err := calendar.New(ctx, node)
	if err != nil {
		t.Fatal(err)
	}
	// Lock down the calendar service.
	obj := c.ServiceObject()
	obj.RequireAuth = true
	if err := node.RegisterService(ctx, calendar.ServiceFor("phil"), obj); err != nil {
		t.Fatal(err)
	}

	caller, err := core.Start(ctx, core.Config{
		User: "andy", Net: net, DirAddr: dirLn.Addr(), ListenAddr: "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer caller.Close(context.Background())

	err = caller.Engine.Invoke(ctx, calendar.ServiceFor("phil"), "ListMeetings", nil, nil)
	if wire.CodeOf(err) != wire.CodeAuth {
		t.Fatalf("unauthenticated call: %v", err)
	}
	if err := caller.Engine.SetCredential(an.Sealer, "andy", "pw"); err != nil {
		t.Fatal(err)
	}
	if err := caller.Engine.Invoke(ctx, calendar.ServiceFor("phil"), "ListMeetings", nil, nil); err != nil {
		t.Fatalf("authenticated call: %v", err)
	}
}
