package calendar

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/links"
	"repro/internal/notify"
	"repro/internal/offline"
	"repro/internal/store"
	"repro/internal/wire"
)

// ServicePrefix prefixes the calendar service name.
const ServicePrefix = "cal."

// ServiceFor returns the calendar service name for a user.
func ServiceFor(user string) string { return ServicePrefix + user }

// Entity action names registered with the links manager.
const (
	ActionReserve = "cal.reserve"
	ActionRelease = "cal.release"
)

// DefaultHours is the candidate meeting-hour window when a Request
// does not specify one.
var DefaultHours = []int{9, 10, 11, 12, 13, 14, 15, 16, 17}

// Calendar is one user's calendar application instance. Each user
// stores only their own slots and meeting records (§6: "each user's
// local machine stores only that particular user's information").
//
// A Calendar normally rides on a core.Node (New); the proxy subsystem
// builds detached instances over a restored snapshot (NewDetached).
type Calendar struct {
	user     string
	db       *store.DB
	lm       *links.Manager
	eng      *engine.Engine
	notifier notify.Notifier

	slots    *store.Table
	meetings *store.Table

	// offline/syncVers are set by EnableSync (before any concurrent
	// use): the disconnected-operation manager and the per-entity
	// version counters bumped on every meeting mutation.
	offline  *offline.Manager
	syncVers *offline.Versions

	// meetMu serializes read-modify-write sequences on one meeting
	// record (TryConfirm racing a dropout racing a bump). Keyed by
	// meeting id; values are *sync.Mutex.
	meetMu sync.Map
}

// lockMeeting serializes mutations of one meeting record and returns
// the unlock function.
func (c *Calendar) lockMeeting(id string) func() {
	mi, _ := c.meetMu.LoadOrStore(id, &sync.Mutex{})
	mu := mi.(*sync.Mutex)
	mu.Lock()
	return mu.Unlock
}

// Option configures a Calendar.
type Option func(*Calendar)

// WithNotifier sets the e-mail notifier (§5.1). Default: discard.
func WithNotifier(n notify.Notifier) Option {
	return func(c *Calendar) { c.notifier = n }
}

// New attaches a calendar application to node: creates the calendar
// tables in the node's database, registers the slot actions with the
// links manager, installs the link-lifecycle hook, and publishes the
// cal.<user> service.
func New(ctx context.Context, node *core.Node, opts ...Option) (*Calendar, error) {
	c, err := NewDetached(node.User, node.DB, node.Links, node.Engine, opts...)
	if err != nil {
		return nil, err
	}
	if err := node.RegisterService(ctx, ServiceFor(node.User), c.ServiceObject()); err != nil {
		return nil, err
	}
	return c, nil
}

// NewDetached builds a calendar over explicit kernel parts without
// publishing its service (the caller registers ServiceObject where it
// sees fit — a proxy host, or a test listener).
func NewDetached(user string, db *store.DB, lm *links.Manager, eng *engine.Engine, opts ...Option) (*Calendar, error) {
	c := &Calendar{user: user, db: db, lm: lm, eng: eng, notifier: notify.Discard{}}
	for _, o := range opts {
		o(c)
	}
	var err error
	c.slots, err = getOrCreate(db, store.Schema{
		Name: "cal_slots",
		Columns: []store.Column{
			{Name: "day", Type: store.String},
			{Name: "hour", Type: store.Int},
			{Name: "meeting", Type: store.String},
			{Name: "priority", Type: store.Int},
		},
		Key: []string{"day", "hour"},
	})
	if err != nil {
		return nil, err
	}
	if err := c.slots.CreateIndex("meeting"); err != nil {
		return nil, err
	}
	c.meetings, err = getOrCreate(db, store.Schema{
		Name: "cal_meetings",
		Columns: []store.Column{
			{Name: "id", Type: store.String},
			{Name: "doc", Type: store.String}, // JSON Meeting
		},
		Key: []string{"id"},
	})
	if err != nil {
		return nil, err
	}

	c.registerActions()
	lm.SetEventHook(c.linkHook)
	return c, nil
}

// getOrCreate fetches an existing table (snapshot-restored) or creates
// it fresh.
func getOrCreate(db *store.DB, s store.Schema) (*store.Table, error) {
	if t, err := db.Table(s.Name); err == nil {
		return t, nil
	}
	return db.CreateTable(s)
}

// User returns the calendar owner's user id.
func (c *Calendar) User() string { return c.user }

// Links exposes the underlying link manager (tests, diagnostics).
func (c *Calendar) Links() *links.Manager { return c.lm }

// Meeting ids follow the links id scheme: a random per-process prefix
// for cross-device uniqueness plus a zero-padded counter so ids sort
// in mint order — meeting ids are store keys, and deterministic
// iteration order keeps same-seed simulation runs reproducible.
var (
	meetingPrefix  = newMeetingPrefix()
	meetingCounter atomic.Uint64
)

func newMeetingPrefix() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("calendar: rand: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}

// newMeetingID mints a meeting id.
func newMeetingID() string {
	return fmt.Sprintf("M-%s-%012d", meetingPrefix, meetingCounter.Add(1))
}

// --- slot state --------------------------------------------------------------

// SlotInfo is a slot's occupancy.
type SlotInfo struct {
	Slot     Slot   `json:"slot"`
	Meeting  string `json:"meeting,omitempty"`
	Priority int    `json:"priority,omitempty"`
}

// slotInfo reads a slot row ("" meeting = free).
func (c *Calendar) slotInfo(s Slot) SlotInfo {
	info := SlotInfo{Slot: s}
	// View, not Get: slot probes run inside every negotiation check and
	// free-slot scan, and cloning the row just to read two columns is
	// measurable there.
	c.slots.View(func(r store.Row) {
		info.Meeting = r["meeting"].(string)
		info.Priority = int(r["priority"].(int64))
	}, s.Day, int64(s.Hour))
	return info
}

// Slot reports the occupancy of one slot.
func (c *Calendar) Slot(s Slot) SlotInfo { return c.slotInfo(s) }

// setSlot writes slot occupancy (meeting "" frees the slot).
func (c *Calendar) setSlot(s Slot, meeting string, priority int) error {
	if meeting == "" {
		if c.slots.Has(s.Day, int64(s.Hour)) {
			return c.slots.Delete(s.Day, int64(s.Hour))
		}
		return nil
	}
	if c.slots.Has(s.Day, int64(s.Hour)) {
		return c.slots.Update(store.Row{"meeting": meeting, "priority": int64(priority)}, s.Day, int64(s.Hour))
	}
	return c.slots.Insert(store.Row{"day": s.Day, "hour": int64(s.Hour), "meeting": meeting, "priority": int64(priority)})
}

// FreeSlots lists this user's free slots in [fromDay, toDay] at the
// given hours (nil = DefaultHours), sorted by day then hour.
func (c *Calendar) FreeSlots(fromDay, toDay string, hours []int) []Slot {
	if hours == nil {
		hours = append([]int(nil), DefaultHours...)
	}
	sort.Ints(hours)
	var out []Slot
	for _, day := range DaysBetween(fromDay, toDay) {
		for _, h := range hours {
			s := Slot{Day: day, Hour: h}
			if c.slotInfo(s).Meeting == "" {
				out = append(out, s)
			}
		}
	}
	return out
}

// SlotCount reports how many slot rows this user stores — their own
// occupancy only, never replicas of other users (§6's storage claim).
func (c *Calendar) SlotCount() int { return c.slots.Count() }

// MarkBusy reserves a slot for a personal appointment (no meeting
// coordination). label defaults to "busy".
func (c *Calendar) MarkBusy(s Slot, label string, priority int) error {
	if label == "" {
		label = "busy"
	}
	if info := c.slotInfo(s); info.Meeting != "" {
		return &wire.RemoteError{Code: wire.CodeConflict, Msg: fmt.Sprintf("calendar: %s already holds %s", s, info.Meeting)}
	}
	return c.setSlot(s, "personal:"+label, priority)
}

// isPersonal reports whether a slot occupancy is a personal
// appointment rather than a coordinated meeting.
func isPersonal(meeting string) bool {
	return len(meeting) >= 9 && meeting[:9] == "personal:"
}

// ReleaseSlot frees a slot the user holds for a personal appointment
// and wakes any tentative links queued on it (§5: "whenever C becomes
// available ... it will get triggered"). It refuses to release a slot
// held by a coordinated meeting — use DropOut or CancelMeeting there.
func (c *Calendar) ReleaseSlot(ctx context.Context, s Slot) error {
	info := c.slotInfo(s)
	if info.Meeting == "" {
		return nil
	}
	if !isPersonal(info.Meeting) {
		return &wire.RemoteError{Code: wire.CodeConflict,
			Msg: fmt.Sprintf("calendar: %s is held by meeting %s; use DropOut or CancelMeeting", s, info.Meeting)}
	}
	if err := c.setSlot(s, "", 0); err != nil {
		return err
	}
	// Fire availability triggers: the highest-priority tentative
	// back link queued at this slot informs its meeting's initiator.
	_, err := c.lm.TriggerEntity(ctx, s.Entity(), "avail", wire.Args{
		"user": c.user, "day": s.Day, "hour": s.Hour,
	})
	return err
}

// --- meeting records -----------------------------------------------------------

// putMeeting upserts a meeting record.
func (c *Calendar) putMeeting(m *Meeting) error {
	doc, err := json.Marshal(m)
	if err != nil {
		return err
	}
	if _, ok := c.meetings.Get(m.ID); ok {
		err = c.meetings.Update(store.Row{"doc": string(doc)}, m.ID)
	} else {
		err = c.meetings.Insert(store.Row{"id": m.ID, "doc": string(doc)})
	}
	if err == nil && c.syncVers != nil {
		c.syncVers.Bump(meetingEntity(m.ID))
	}
	return err
}

// Meeting fetches a meeting record by id.
func (c *Calendar) Meeting(id string) (*Meeting, bool) {
	r, ok := c.meetings.Get(id)
	if !ok {
		return nil, false
	}
	var m Meeting
	if err := json.Unmarshal([]byte(r["doc"].(string)), &m); err != nil {
		return nil, false
	}
	return &m, true
}

// Meetings lists all locally known meetings sorted by id.
func (c *Calendar) Meetings() []*Meeting {
	rows := c.meetings.Select(nil)
	out := make([]*Meeting, 0, len(rows))
	for _, r := range rows {
		var m Meeting
		if json.Unmarshal([]byte(r["doc"].(string)), &m) == nil {
			out = append(out, &m)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// --- entity actions -------------------------------------------------------------

// registerActions installs the slot actions the coordination links
// negotiate with.
func (c *Calendar) registerActions() {
	c.lm.RegisterAction(ActionReserve, links.Action{
		Check: func(entity string, args wire.Args) error {
			s, err := SlotFromEntity(entity)
			if err != nil {
				return err
			}
			meeting := args.String("meeting")
			info := c.slotInfo(s)
			switch {
			case info.Meeting == "" || info.Meeting == meeting:
				return nil
			case args.Bool("allowBump") && args.Int("priority") > info.Priority:
				return nil // higher priority may bump (§6)
			default:
				return &wire.RemoteError{Code: wire.CodeConflict,
					Msg: fmt.Sprintf("calendar: %s/%s holds %s (prio %d)", c.user, s, info.Meeting, info.Priority)}
			}
		},
		Apply: func(entity string, args wire.Args) error {
			s, err := SlotFromEntity(entity)
			if err != nil {
				return err
			}
			meeting := args.String("meeting")
			prio := args.Int("priority")
			info := c.slotInfo(s)
			bumped := ""
			if info.Meeting != "" && info.Meeting != meeting {
				bumped = info.Meeting
			}
			if err := c.setSlot(s, meeting, prio); err != nil {
				return err
			}
			if bumped != "" {
				c.handleBumpedMeeting(bumped, s, meeting)
			}
			return nil
		},
	})
	c.lm.RegisterAction(ActionRelease, links.Action{
		Apply: func(entity string, args wire.Args) error {
			s, err := SlotFromEntity(entity)
			if err != nil {
				return err
			}
			meeting := args.String("meeting")
			info := c.slotInfo(s)
			if meeting != "" && info.Meeting != meeting {
				return nil // slot has moved on; nothing to release
			}
			return c.setSlot(s, "", 0)
		},
	})
}

// linkHook reacts to link lifecycle events on this node. Link groups
// carry the meeting id, so a deleted link means "this meeting released
// my slot" and a promoted link means "my tentative reservation may
// become real".
func (c *Calendar) linkHook(kind string, l *links.Link, _ wire.Args) {
	meetingID := l.Group
	if meetingID == "" {
		return
	}
	switch kind {
	case "delete", "expire":
		s, err := SlotFromEntity(l.Owner.Entity)
		if err != nil {
			return
		}
		freed := false
		if info := c.slotInfo(s); info.Meeting == meetingID {
			_ = c.setSlot(s, "", 0)
			freed = true
		}
		if m, ok := c.Meeting(meetingID); ok && m.Status != StatusCancelled {
			m.Status = StatusCancelled
			_ = c.putMeeting(m)
		}
		if freed {
			// Wake tentative links queued at the freed slot that are
			// not tracked by the waiting table (their blocker was
			// unknown when they were queued — e.g. bump re-queues).
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			_, _ = c.lm.TriggerEntity(ctx, l.Owner.Entity, "avail", wire.Args{
				"user": c.user, "day": s.Day, "hour": s.Hour,
			})
		}
	case "promote":
		s, err := SlotFromEntity(l.Owner.Entity)
		if err != nil {
			return
		}
		if info := c.slotInfo(s); info.Meeting == "" {
			prio := l.Priority
			if m, ok := c.Meeting(meetingID); ok {
				prio = m.Priority
			}
			_ = c.setSlot(s, meetingID, prio)
		}
	}
}

// handleBumpedMeeting runs on the device whose slot was just taken by
// a higher-priority meeting: re-queue a tentative back link for the
// bumped meeting and tell its initiator (§6: "a low priority meeting
// can be bumped ... and is then automatically rescheduled").
func (c *Calendar) handleBumpedMeeting(bumpedMeeting string, s Slot, byMeeting string) {
	if isPersonal(bumpedMeeting) {
		return // personal appointments are simply overwritten
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	initiator := ""
	if m, ok := c.Meeting(bumpedMeeting); ok {
		initiator = m.Initiator
	}
	// Replace the bumped meeting's back link (if any) with a
	// tentative one waiting on the bumping meeting's link.
	var blockerID string
	for _, l := range c.lm.LinksOn(s.Entity()) {
		if l.Group == byMeeting && l.Subtype == links.Permanent {
			blockerID = l.ID
		}
	}
	for _, l := range c.lm.LinksOn(s.Entity()) {
		if l.Group != bumpedMeeting {
			continue
		}
		if initiator == "" && len(l.Targets) > 0 {
			initiator = l.Targets[0].User
		}
		nl := *l
		nl.Subtype = links.Tentative
		nl.WaitingOn = blockerID
		nl.Triggers = tentativeTriggers(bumpedMeeting, c.user)
		_, _ = c.lm.DeleteLinkLocal(ctx, l.ID)
		_ = c.lm.AddLink(&nl)
	}
	// The delete hook marks the local meeting record cancelled; the
	// meeting is only bumped, so restore it to tentative.
	if m, ok := c.Meeting(bumpedMeeting); ok && m.Status == StatusCancelled {
		m.Status = StatusTentative
		_ = c.putMeeting(m)
	}
	// The initiator notification runs inline inside the bumping
	// negotiation's commit. This cannot deadlock against the meeting
	// locks: any holder of the bumped meeting's lock only ever
	// *try-locks* entities, so it fails fast instead of waiting on
	// the bumping negotiation's entity locks.
	if initiator != "" && initiator != c.user {
		_ = c.eng.Invoke(ctx, ServiceFor(initiator), "MeetingBumped", wire.Args{
			"meeting": bumpedMeeting, "user": c.user, "by": byMeeting,
		}, nil)
	} else if initiator == c.user {
		c.meetingBumpedLocally(ctx, bumpedMeeting, c.user)
	}
}

// notifyParticipants sends the §5.1 e-mail notification.
func (c *Calendar) notifyParticipants(ctx context.Context, m *Meeting, subject, body string) {
	_ = c.notifier.Notify(ctx, notify.Message{
		To:      m.Participants(),
		Subject: subject,
		Body:    body,
	})
}
