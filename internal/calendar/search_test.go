package calendar_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/calendar"
)

// TestFindCommonSlotsProperty checks the §5 slot search against a
// brute-force oracle for random busy patterns: a slot is returned iff
// the initiator and every must-attendee are free AND every or-group
// has at least K free members.
func TestFindCommonSlotsProperty(t *testing.T) {
	users := []string{"a", "b", "c", "g1", "g2", "g3"}
	f := func(busyBits uint32, k uint8) bool {
		w := newWorld(t, users...)
		hours := []int{9, 10, 11, 12}
		// Assign one bit per (user, hour).
		busy := map[string]map[int]bool{}
		bit := 0
		for _, u := range users {
			busy[u] = map[int]bool{}
			for _, h := range hours {
				if busyBits&(1<<bit) != 0 {
					busy[u][h] = true
					if err := w.cals[u].MarkBusy(slot(day1, h), "x", 0); err != nil {
						return false
					}
				}
				bit++
			}
		}
		kk := int(k%3) + 1 // 1..3
		req := calendar.Request{
			FromDay: day1, ToDay: day1, Hours: hours,
			Must: []string{"b", "c"},
			OrGroups: []calendar.OrGroup{
				{Members: []string{"g1", "g2", "g3"}, K: kk},
			},
		}
		got, err := w.cals["a"].FindCommonSlots(ctxBg(), req)
		if err != nil {
			return false
		}
		gotSet := map[calendar.Slot]bool{}
		for _, s := range got {
			gotSet[s] = true
		}
		// Oracle.
		for _, h := range hours {
			want := !busy["a"][h] && !busy["b"][h] && !busy["c"][h]
			free := 0
			for _, g := range []string{"g1", "g2", "g3"} {
				if !busy[g][h] {
					free++
				}
			}
			want = want && free >= kk
			if gotSet[slot(day1, h)] != want {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(53))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestFindCommonSlotsUnreachableMust: a must-attendee that cannot be
// reached fails the search (rather than silently scheduling without
// them); an unreachable or-group member merely counts as busy.
func TestFindCommonSlotsUnreachableMust(t *testing.T) {
	w := newWorld(t, "a", "b", "g1", "g2")
	w.net.SetDown("node-b", true)
	_, err := w.cals["a"].FindCommonSlots(ctxBg(), calendar.Request{
		FromDay: day1, ToDay: day1, Must: []string{"b"},
	})
	if err == nil {
		t.Fatal("unreachable must-attendee did not fail the search")
	}

	w.net.SetDown("node-b", false)
	w.net.SetDown("node-g2", true)
	got, err := w.cals["a"].FindCommonSlots(ctxBg(), calendar.Request{
		FromDay: day1, ToDay: day1, Must: []string{"b"},
		OrGroups: []calendar.OrGroup{{Members: []string{"g1", "g2"}, K: 1}},
	})
	if err != nil {
		t.Fatalf("unreachable group member failed the search: %v", err)
	}
	if len(got) != len(calendar.DefaultHours) {
		t.Fatalf("slots = %d", len(got))
	}
	// But if the group needs both members, no slot qualifies.
	got, err = w.cals["a"].FindCommonSlots(ctxBg(), calendar.Request{
		FromDay: day1, ToDay: day1, Must: []string{"b"},
		OrGroups: []calendar.OrGroup{{Members: []string{"g1", "g2"}, K: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("slots with unreachable quorum member = %d", len(got))
	}
}

func TestSlotHelpers(t *testing.T) {
	s := calendar.Slot{Day: "2003-04-22", Hour: 14}
	if s.Entity() != "slot:2003-04-22:14" {
		t.Fatalf("entity = %q", s.Entity())
	}
	back, err := calendar.SlotFromEntity(s.Entity())
	if err != nil || back != s {
		t.Fatalf("round trip: %v %v", back, err)
	}
	for _, bad := range []string{"", "slot:x", "slot:2003-04-22:notanhour", "other:2003-04-22:9"} {
		if _, err := calendar.SlotFromEntity(bad); err == nil {
			t.Errorf("SlotFromEntity(%q) succeeded", bad)
		}
	}
	if !s.Valid() {
		t.Fatal("valid slot rejected")
	}
	for _, bad := range []calendar.Slot{
		{Day: "2003-04-22", Hour: -1},
		{Day: "2003-04-22", Hour: 24},
		{Day: "not-a-day", Hour: 9},
		{Day: "", Hour: 9},
	} {
		if bad.Valid() {
			t.Errorf("invalid slot %v accepted", bad)
		}
	}
	if s.String() != "2003-04-22 14:00" {
		t.Fatalf("String = %q", s.String())
	}
}

func TestDaysBetween(t *testing.T) {
	got := calendar.DaysBetween("2003-04-30", "2003-05-02")
	want := []string{"2003-04-30", "2003-05-01", "2003-05-02"}
	if len(got) != 3 || got[0] != want[0] || got[2] != want[2] {
		t.Fatalf("days = %v", got)
	}
	if calendar.DaysBetween("2003-05-02", "2003-04-30") != nil {
		t.Fatal("inverted range returned days")
	}
	if calendar.DaysBetween("garbage", "2003-05-02") != nil {
		t.Fatal("garbage range returned days")
	}
	if got := calendar.DaysBetween("2003-04-22", "2003-04-22"); len(got) != 1 {
		t.Fatalf("single day = %v", got)
	}
}
