package calendar

import (
	"context"
	"encoding/json"
	"fmt"

	"repro/internal/listener"
	"repro/internal/wire"
)

// ServiceObject returns the cal.<user> device object: the calendar's
// remote surface, covering both the data queries of §5 ("query each
// table for free slots") and the coordination callbacks the link
// triggers invoke.
func (c *Calendar) ServiceObject() *listener.Object {
	obj := listener.NewObject()

	obj.Handle("GetFreeSlots", func(ctx context.Context, call *listener.Call) (any, error) {
		var hours []int
		if raw, ok := call.Args["hours"]; ok && raw != nil {
			if err := call.Args.Decode("hours", &hours); err != nil {
				return nil, &wire.RemoteError{Code: wire.CodeBadArgs, Msg: "bad hours"}
			}
		}
		return c.FreeSlots(call.Args.String("from"), call.Args.String("to"), hours), nil
	})

	obj.Handle("SlotInfo", func(ctx context.Context, call *listener.Call) (any, error) {
		s := Slot{Day: call.Args.String("day"), Hour: call.Args.Int("hour")}
		if !s.Valid() {
			return nil, &wire.RemoteError{Code: wire.CodeBadArgs, Msg: fmt.Sprintf("bad slot %v", s)}
		}
		return c.slotInfo(s), nil
	})

	obj.Handle("ListMeetings", func(ctx context.Context, call *listener.Call) (any, error) {
		return c.Meetings(), nil
	})

	obj.Handle("GetMeeting", func(ctx context.Context, call *listener.Call) (any, error) {
		m, ok := c.Meeting(call.Args.String("meeting"))
		if !ok {
			return nil, &wire.RemoteError{Code: wire.CodeNoService, Msg: "unknown meeting"}
		}
		return m, nil
	})

	// Schedule: set up a meeting with this node's user as initiator —
	// the remote surface behind the sydcal CLI (the paper's split of
	// client interface vs server application, §3.1).
	obj.Handle("Schedule", func(ctx context.Context, call *listener.Call) (any, error) {
		var req Request
		if raw, ok := call.Args["request"]; ok && raw != nil {
			if err := call.Args.Decode("request", &req); err != nil {
				return nil, &wire.RemoteError{Code: wire.CodeBadArgs, Msg: fmt.Sprintf("bad request: %v", err)}
			}
		} else {
			req = Request{
				Title:   call.Args.String("title"),
				FromDay: call.Args.String("from"),
				ToDay:   call.Args.String("to"),
				Must:    call.Args.Strings("must"),
			}
		}
		m, err := c.SetupMeeting(ctx, req)
		if err != nil {
			return nil, err
		}
		return m, nil
	})

	// MeetingUpdate: the initiator pushes the authoritative meeting
	// record to participants.
	obj.Handle("MeetingUpdate", func(ctx context.Context, call *listener.Call) (any, error) {
		raw, err := json.Marshal(call.Args["meeting"])
		if err != nil {
			return nil, &wire.RemoteError{Code: wire.CodeBadArgs, Msg: "bad meeting"}
		}
		var m Meeting
		if err := json.Unmarshal(raw, &m); err != nil || m.ID == "" {
			return nil, &wire.RemoteError{Code: wire.CodeBadArgs, Msg: "bad meeting"}
		}
		if err := c.putMeeting(&m); err != nil {
			return nil, err
		}
		return true, nil
	})

	// SlotAvailable: a tentative participant's slot freed up — try to
	// confirm the meeting (fired by tentative back-link triggers).
	obj.Handle("SlotAvailable", func(ctx context.Context, call *listener.Call) (any, error) {
		meetingID := call.Args.String("meeting")
		m, err := c.TryConfirm(ctx, meetingID)
		if err != nil {
			return nil, err
		}
		return map[string]string{"status": m.Status}, nil
	})

	// ParticipantChange: a reserved must-attendee attempts to change
	// their slot. A confirmed meeting vetoes unilateral changes (§5:
	// "D would be unable to change the schedule of the meeting").
	obj.Handle("ParticipantChange", func(ctx context.Context, call *listener.Call) (any, error) {
		meetingID := call.Args.String("meeting")
		user := call.Args.String("user")
		m, ok := c.Meeting(meetingID)
		if !ok {
			return nil, &wire.RemoteError{Code: wire.CodeNoService, Msg: "unknown meeting"}
		}
		if m.Status == StatusConfirmed && (containsString(m.Must, user) || user == m.Initiator) {
			return nil, &wire.RemoteError{Code: wire.CodeConflict,
				Msg: fmt.Sprintf("calendar: %s is a must-attendee of confirmed meeting %s", user, meetingID)}
		}
		return true, nil
	})

	// SupervisorChanged: a supervisor changed their schedule at will;
	// the meeting loses them and goes tentative until renegotiated
	// (§5's supervisor scenario).
	obj.Handle("SupervisorChanged", func(ctx context.Context, call *listener.Call) (any, error) {
		meetingID := call.Args.String("meeting")
		user := call.Args.String("user")
		// Mutate under the meeting lock, release, then re-confirm
		// (TryConfirm takes the same lock).
		err := func() error {
			defer c.lockMeeting(meetingID)()
			m, ok := c.Meeting(meetingID)
			if !ok {
				return &wire.RemoteError{Code: wire.CodeNoService, Msg: "unknown meeting"}
			}
			if m.isReserved(user) {
				m.Reserved = removeString(m.Reserved, user)
			}
			if !containsString(m.Missing, user) {
				m.Missing = append(m.Missing, user)
			}
			m.Status = StatusTentative
			if err := c.putMeeting(m); err != nil {
				return err
			}
			c.pushMeetingUpdate(ctx, m)
			return nil
		}()
		if err != nil {
			return nil, err
		}
		// Immediately try to re-confirm (the supervisor may only
		// have moved within the same free window).
		if _, err := c.TryConfirm(ctx, meetingID); err != nil {
			return nil, err
		}
		return true, nil
	})

	// MeetingBumped: a participant's device reports its slot was
	// taken by a higher-priority meeting.
	obj.Handle("MeetingBumped", func(ctx context.Context, call *listener.Call) (any, error) {
		c.meetingBumpedLocally(ctx, call.Args.String("meeting"), call.Args.String("user"))
		return true, nil
	})

	// DropOut: a participant leaves the meeting.
	obj.Handle("DropOut", func(ctx context.Context, call *listener.Call) (any, error) {
		if err := c.dropParticipant(ctx, call.Args.String("meeting"), call.Args.String("user")); err != nil {
			return nil, err
		}
		return true, nil
	})

	// CancelMeeting: remote cancellation by the initiator or a
	// delegate (checked against the claimed caller identity; with
	// RequireAuth the listener substitutes the authenticated one).
	obj.Handle("CancelMeeting", func(ctx context.Context, call *listener.Call) (any, error) {
		m, ok := c.Meeting(call.Args.String("meeting"))
		if !ok {
			return nil, &wire.RemoteError{Code: wire.CodeNoService, Msg: "unknown meeting"}
		}
		if err := c.cancelMeetingAs(ctx, m, call.Caller); err != nil {
			return nil, err
		}
		return true, nil
	})

	return obj
}
