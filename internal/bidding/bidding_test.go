package bidding_test

import (
	"context"
	"reflect"
	"testing"
	"time"

	"repro/internal/bidding"
	"repro/internal/core"
	"repro/internal/directory"
	"repro/internal/sim"
)

type world struct {
	t       *testing.T
	net     *sim.Net
	host    *bidding.Host
	players map[string]*bidding.Player
}

func fixedBid(amount int) bidding.Strategy {
	return func(int) int { return amount }
}

func newWorld(t *testing.T, inventory int, bids map[string]int, wallets map[string]int) *world {
	t.Helper()
	net := sim.New(sim.Config{})
	srv := directory.NewServer(directory.WithTTL(time.Hour))
	if _, err := net.Listen("dir", srv.Handler()); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	hostNode, err := core.Start(ctx, core.Config{User: "host", Net: net, DirAddr: "dir"})
	if err != nil {
		t.Fatal(err)
	}
	w := &world{t: t, net: net, host: bidding.NewHost(hostNode, inventory), players: map[string]*bidding.Player{}}
	for id, amount := range bids {
		node, err := core.Start(ctx, core.Config{User: id, Net: net, DirAddr: "dir"})
		if err != nil {
			t.Fatal(err)
		}
		wallet := 1000
		if wl, ok := wallets[id]; ok {
			wallet = wl
		}
		p, err := bidding.NewPlayer(ctx, node, wallet, fixedBid(amount))
		if err != nil {
			t.Fatal(err)
		}
		w.players[id] = p
	}
	return w
}

func playerIDs(w *world) []string {
	var ids []string
	for id := range w.players {
		ids = append(ids, id)
	}
	return ids
}

func TestClosestWithoutGoingOverWins(t *testing.T) {
	w := newWorld(t, 1, map[string]int{"ana": 90, "ben": 99, "eva": 101}, nil)
	res := w.host.PlayRound(context.Background(), []string{"ana", "ben", "eva"}, 100)
	if !res.Complete || res.Winner != "ben" || res.Price != 99 {
		t.Fatalf("res = %+v", res)
	}
	if w.players["ben"].Wallet() != 1000-99 {
		t.Fatalf("ben wallet = %d", w.players["ben"].Wallet())
	}
	if w.players["ana"].Wallet() != 1000 {
		t.Fatal("loser was charged")
	}
	if w.host.Inventory() != 0 {
		t.Fatalf("inventory = %d", w.host.Inventory())
	}
	if got := w.players["ben"].Wins(); !reflect.DeepEqual(got, []int{99}) {
		t.Fatalf("wins = %v", got)
	}
}

func TestEveryoneOverbids(t *testing.T) {
	w := newWorld(t, 1, map[string]int{"ana": 150, "ben": 120}, nil)
	res := w.host.PlayRound(context.Background(), []string{"ana", "ben"}, 100)
	if res.Complete || res.Winner != "" {
		t.Fatalf("res = %+v", res)
	}
	if w.host.Inventory() != 1 {
		t.Fatal("inventory changed without a sale")
	}
}

func TestSaleIsAtomicWhenWinnerCannotPay(t *testing.T) {
	w := newWorld(t, 1, map[string]int{"ana": 99, "ben": 50}, map[string]int{"ana": 10})
	res := w.host.PlayRound(context.Background(), []string{"ana", "ben"}, 100)
	// ana wins the bid but cannot pay: the negotiation-and aborts and
	// NOTHING changes — inventory intact, no wallet debited.
	if res.Complete || res.SaleErr == nil {
		t.Fatalf("res = %+v", res)
	}
	if w.host.Inventory() != 1 {
		t.Fatalf("inventory = %d after failed sale", w.host.Inventory())
	}
	if w.players["ana"].Wallet() != 10 || w.players["ben"].Wallet() != 1000 {
		t.Fatal("wallet changed despite failed sale")
	}
}

func TestSoldOut(t *testing.T) {
	w := newWorld(t, 1, map[string]int{"ana": 90}, nil)
	ctx := context.Background()
	first := w.host.PlayRound(ctx, []string{"ana"}, 100)
	if !first.Complete {
		t.Fatalf("first round = %+v", first)
	}
	second := w.host.PlayRound(ctx, []string{"ana"}, 100)
	if second.Complete || second.SaleErr == nil {
		t.Fatalf("second round = %+v", second)
	}
	if w.players["ana"].Wallet() != 1000-90 {
		t.Fatal("player charged for sold-out item")
	}
}

func TestUnreachablePlayerMissesRound(t *testing.T) {
	w := newWorld(t, 1, map[string]int{"ana": 99, "ben": 90}, nil)
	w.net.SetDown("node-ana", true)
	res := w.host.PlayRound(context.Background(), []string{"ana", "ben"}, 100)
	if !res.Complete || res.Winner != "ben" {
		t.Fatalf("res = %+v", res)
	}
	for _, b := range res.Bids {
		if b.Player == "ana" && b.Err == nil {
			t.Fatal("down player produced a bid")
		}
	}
}

func TestLeaderboard(t *testing.T) {
	w := newWorld(t, 2, map[string]int{"ana": 90, "ben": 80}, nil)
	ctx := context.Background()
	w.host.PlayRound(ctx, playerIDs(w), 100) // ana wins at 90
	got := bidding.Leaderboard(w.players)
	if !reflect.DeepEqual(got, []string{"ben", "ana"}) {
		t.Fatalf("leaderboard = %v", got)
	}
}
