// Package bidding implements the price-is-right game, the third
// sample application the paper names in Fig. 2 ("a price-is-right
// bidding game suitable to be played at an airport or a mall").
//
// Each player is an independent SyD device publishing a Bid method;
// the host collects a round of bids with one group invocation, picks
// the closest bid not exceeding the list price, and commits the sale
// atomically with a negotiation-and link: the winner's wallet debit
// and the host's inventory decrement happen together or not at all —
// the "group transactions across independent data stores" of the
// paper's abstract.
package bidding

import (
	"context"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/links"
	"repro/internal/listener"
	"repro/internal/wire"
)

// ServicePrefix prefixes a player's bidding service name.
const ServicePrefix = "bid."

// ServiceFor returns the bidding service name for a player.
func ServiceFor(player string) string { return ServicePrefix + player }

// debitAction / shipAction are the entity actions of the atomic sale.
const (
	debitAction = "bid.debit"
	shipAction  = "bid.shipItem"
)

// Strategy maps a list price to this player's bid.
type Strategy func(listPrice int) int

// Player is one contestant's device object.
type Player struct {
	ID   string
	node *core.Node

	mu     sync.Mutex
	wallet int
	won    []int // purchase prices
}

// NewPlayer attaches the bidding application to a kernel node.
func NewPlayer(ctx context.Context, node *core.Node, wallet int, strategy Strategy) (*Player, error) {
	p := &Player{ID: node.User, node: node, wallet: wallet}

	obj := listener.NewObject()
	obj.Handle("Bid", func(ctx context.Context, call *listener.Call) (any, error) {
		return strategy(call.Args.Int("listPrice")), nil
	})
	if err := node.RegisterService(ctx, ServiceFor(p.ID), obj); err != nil {
		return nil, err
	}

	node.Links.RegisterAction(debitAction, links.Action{
		Check: func(entity string, args wire.Args) error {
			p.mu.Lock()
			defer p.mu.Unlock()
			if p.wallet < args.Int("amount") {
				return &wire.RemoteError{Code: wire.CodeConflict, Msg: p.ID + " has insufficient funds"}
			}
			return nil
		},
		Apply: func(entity string, args wire.Args) error {
			p.mu.Lock()
			defer p.mu.Unlock()
			p.wallet -= args.Int("amount")
			p.won = append(p.won, args.Int("amount"))
			return nil
		},
	})
	return p, nil
}

// Wallet returns the player's balance.
func (p *Player) Wallet() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.wallet
}

// Wins returns the purchase prices of the player's wins.
func (p *Player) Wins() []int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]int(nil), p.won...)
}

// Host runs the game.
type Host struct {
	node *core.Node

	mu        sync.Mutex
	inventory int
}

// NewHost attaches the host application to a kernel node with an
// initial item inventory.
func NewHost(node *core.Node, inventory int) *Host {
	h := &Host{node: node, inventory: inventory}
	node.Links.RegisterAction(shipAction, links.Action{
		Check: func(entity string, args wire.Args) error {
			h.mu.Lock()
			defer h.mu.Unlock()
			if h.inventory == 0 {
				return &wire.RemoteError{Code: wire.CodeConflict, Msg: "bidding: sold out"}
			}
			return nil
		},
		Apply: func(entity string, args wire.Args) error {
			h.mu.Lock()
			defer h.mu.Unlock()
			h.inventory--
			return nil
		},
	})
	return h
}

// Inventory returns the remaining items.
func (h *Host) Inventory() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.inventory
}

// Bid is one player's answer in a round.
type Bid struct {
	Player string
	Amount int
	Err    error
}

// RoundResult is the outcome of one round.
type RoundResult struct {
	ListPrice int
	Bids      []Bid
	// Winner is empty when every bid overshot or the sale failed.
	Winner   string
	Price    int
	SaleErr  error // why the sale failed, if it did
	Complete bool  // a sale happened
}

// PlayRound collects bids from the players (one group invocation),
// picks the closest-without-going-over winner, and commits the sale
// atomically. Unreachable players simply miss the round.
func (h *Host) PlayRound(ctx context.Context, players []string, listPrice int) *RoundResult {
	res := &RoundResult{ListPrice: listPrice}
	services := make([]string, len(players))
	for i, p := range players {
		services[i] = ServiceFor(p)
	}
	results := h.node.Engine.GroupInvoke(ctx, services, "Bid", wire.Args{"listPrice": listPrice})

	best := -1
	for i, r := range results {
		b := Bid{Player: players[i], Err: r.Err}
		if r.Err == nil {
			if err := r.Decode(&b.Amount); err != nil {
				b.Err = err
			}
		}
		res.Bids = append(res.Bids, b)
		if b.Err == nil && b.Amount <= listPrice && b.Amount > best {
			best = b.Amount
			res.Winner = b.Player
		}
	}
	if res.Winner == "" {
		return res // everyone overbid or was unreachable
	}
	res.Price = best

	// Atomic sale: wallet debit at the winner + inventory decrement
	// here, under one negotiation-and.
	_, err := h.node.Links.Negotiate(ctx, links.Spec{
		Action:     debitAction,
		Args:       wire.Args{"amount": best},
		Targets:    []links.EntityRef{{User: res.Winner, Entity: "wallet"}},
		Constraint: links.And,
		Local:      &links.LocalChange{Entity: "inventory", Action: shipAction},
	})
	if err != nil {
		res.SaleErr = err
		res.Winner = ""
		res.Price = 0
		return res
	}
	res.Complete = true
	return res
}

// Leaderboard orders players by remaining wallet, descending.
func Leaderboard(players map[string]*Player) []string {
	ids := make([]string, 0, len(players))
	for id := range players {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		wi, wj := players[ids[i]].Wallet(), players[ids[j]].Wallet()
		if wi != wj {
			return wi > wj
		}
		return ids[i] < ids[j]
	})
	return ids
}
