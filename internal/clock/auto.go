package clock

import (
	"container/heap"
	"context"
	"sync"
	"time"
)

// FakeAuto is a deterministic auto-advancing clock: the scale harness's
// time compressor (the NewFakeClockAuto pattern — a fake clock that
// advances automatically when every registered goroutine is blocked
// waiting on it). Simulated hours elapse in wall-clock microseconds
// because the clock jumps straight to the next deadline instead of
// waiting it out.
//
// The contract that makes runs reproducible:
//
//   - Every goroutine that blocks on the clock (After/Sleep) must be
//     registered via RegisterGoroutine, and must hold at most one
//     outstanding wait at a time. The harness's device drivers and the
//     kernel's periodic loops (event.Handler.Every, clock.Loop) do this
//     automatically when they detect an AutoRegistrar clock.
//   - The clock advances one waiter at a time, in (deadline, creation
//     order) order, and only while ALL registered goroutines are parked
//     on it. A woken goroutine therefore runs alone: no two waiters'
//     work ever overlaps, so shared state is touched in a deterministic
//     sequence (single-stepped discrete-event execution).
//   - Waiters with equal deadlines fire in the order their After calls
//     happened, which is only deterministic if those calls were
//     themselves single-stepped. Order-sensitive work must use distinct
//     deadlines (the scale harness offsets every device's schedule by a
//     per-device epsilon for exactly this reason).
//
// A FakeAuto starts paused so a harness can boot a fleet without
// virtual time running away; call Resume once the drivers are
// registered, and Pause again before tearing the fleet down (otherwise
// the periodic loops left sleeping would spin virtual time forever).
type FakeAuto struct {
	mu   sync.Mutex
	cond *sync.Cond

	now        time.Time
	seq        uint64
	wq         waiterHeap
	registered int
	paused     bool
	stopped    bool
	fired      uint64
}

// autoWaiter is one pending After/Sleep deadline.
type autoWaiter struct {
	deadline time.Time
	seq      uint64
	ch       chan time.Time
}

// waiterHeap orders waiters by (deadline, seq).
type waiterHeap []*autoWaiter

func (h waiterHeap) Len() int { return len(h) }
func (h waiterHeap) Less(i, j int) bool {
	if !h[i].deadline.Equal(h[j].deadline) {
		return h[i].deadline.Before(h[j].deadline)
	}
	return h[i].seq < h[j].seq
}
func (h waiterHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *waiterHeap) Push(x any)   { *h = append(*h, x.(*autoWaiter)) }
func (h *waiterHeap) Pop() any {
	old := *h
	n := len(old)
	w := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return w
}

// AutoRegistrar is implemented by clocks that auto-advance when all
// registered goroutines are blocked on them. Periodic loops check for
// it so a FakeAuto-driven deployment single-steps deterministically.
type AutoRegistrar interface {
	// RegisterGoroutine declares the calling goroutine as a clock
	// participant: the clock will not advance while it is runnable.
	RegisterGoroutine()
	// UnregisterGoroutine withdraws the goroutine. Any still-pending
	// wait channels it created must be passed so the clock can drop
	// them (a stale waiter would otherwise wedge or skew the gate).
	UnregisterGoroutine(pending ...<-chan time.Time)
}

// NewFakeAuto returns a paused auto-advancing clock starting at start.
// Call Resume to let virtual time move; call Stop when done with the
// clock to release its advancer goroutine.
func NewFakeAuto(start time.Time) *FakeAuto {
	f := &FakeAuto{now: start, paused: true}
	f.cond = sync.NewCond(&f.mu)
	go f.run()
	return f
}

// run is the advancer: it fires exactly one waiter whenever the gate
// holds (not paused, at least one registered goroutine, and every
// registered goroutine parked on the clock), then re-evaluates. The
// fired goroutine's waiter is consumed before delivery, so the gate
// stays closed until it blocks on the clock again — single-stepping.
func (f *FakeAuto) run() {
	f.mu.Lock()
	defer f.mu.Unlock()
	for {
		if f.stopped {
			return
		}
		if !f.paused && f.registered > 0 && f.wq.Len() >= f.registered {
			w := heap.Pop(&f.wq).(*autoWaiter)
			if w.deadline.After(f.now) {
				f.now = w.deadline
			}
			w.ch <- f.now // buffered: never blocks, survives an abandoned waiter
			f.fired++
			continue
		}
		f.cond.Wait()
	}
}

// Now implements Clock.
func (f *FakeAuto) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

// After implements Clock. The returned channel fires when the advancer
// reaches the deadline (immediately for d <= 0).
func (f *FakeAuto) After(d time.Duration) <-chan time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	ch := make(chan time.Time, 1)
	if d <= 0 {
		ch <- f.now
		return ch
	}
	f.seq++
	heap.Push(&f.wq, &autoWaiter{deadline: f.now.Add(d), seq: f.seq, ch: ch})
	f.cond.Broadcast()
	return ch
}

// Sleep implements Clock; it parks the goroutine until the advancer
// reaches the deadline.
func (f *FakeAuto) Sleep(d time.Duration) {
	<-f.After(d)
}

// RegisterGoroutine implements AutoRegistrar.
func (f *FakeAuto) RegisterGoroutine() {
	f.mu.Lock()
	f.registered++
	f.cond.Broadcast()
	f.mu.Unlock()
}

// UnregisterGoroutine implements AutoRegistrar. Pending wait channels
// created by the leaving goroutine are removed from the queue (a
// channel the advancer already fired is simply not found — that is
// fine).
func (f *FakeAuto) UnregisterGoroutine(pending ...<-chan time.Time) {
	f.mu.Lock()
	for _, ch := range pending {
		for i, w := range f.wq {
			if w.ch == ch {
				heap.Remove(&f.wq, i)
				break
			}
		}
	}
	f.registered--
	f.cond.Broadcast()
	f.mu.Unlock()
}

// Pause halts auto-advancement (boot and teardown windows). Now keeps
// answering; waiters queue but do not fire.
func (f *FakeAuto) Pause() {
	f.mu.Lock()
	f.paused = true
	f.mu.Unlock()
}

// Resume lets the advancer run.
func (f *FakeAuto) Resume() {
	f.mu.Lock()
	f.paused = false
	f.cond.Broadcast()
	f.mu.Unlock()
}

// Stop terminates the advancer goroutine. The clock is dead afterwards:
// waiters never fire and Resume has no effect.
func (f *FakeAuto) Stop() {
	f.mu.Lock()
	f.stopped = true
	f.cond.Broadcast()
	f.mu.Unlock()
}

// PendingWaiters reports how many After/Sleep callers are queued.
func (f *FakeAuto) PendingWaiters() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.wq.Len()
}

// Registered reports how many goroutines are registered.
func (f *FakeAuto) Registered() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.registered
}

// Fired reports how many waiters the advancer has delivered — a cheap
// progress probe for harness diagnostics.
func (f *FakeAuto) Fired() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.fired
}

// Loop runs fn every interval until ctx is done, timing the waits
// through clk (first run one interval after Loop starts). It is the
// clock-aware replacement for a time.NewTicker goroutine: on an
// AutoRegistrar clock the loop registers itself so virtual time can
// advance deterministically through its waits. Loop blocks; callers
// run it in a goroutine.
func Loop(ctx context.Context, clk Clock, interval time.Duration, fn func(context.Context)) {
	if clk == nil {
		clk = System
	}
	ar, auto := clk.(AutoRegistrar)
	if auto {
		ar.RegisterGoroutine()
	}
	loopRun(ctx, clk, interval, fn, ar, auto)
}

// LoopGo spawns Loop in its own goroutine, registering it with an
// AutoRegistrar clock *before* launch. Registration must be synchronous
// with the spawn site: a paused FakeAuto gate counts registered
// goroutines, and a loop that registered only after the scheduler got
// around to it would let the gate open early — the clock could jump
// past the loop's first interval before the loop even queued a waiter.
// done, if non-nil, runs when the loop exits (a WaitGroup hook).
func LoopGo(ctx context.Context, clk Clock, interval time.Duration, fn func(context.Context), done func()) {
	if clk == nil {
		clk = System
	}
	ar, auto := clk.(AutoRegistrar)
	if auto {
		ar.RegisterGoroutine()
	}
	go func() {
		if done != nil {
			defer done()
		}
		loopRun(ctx, clk, interval, fn, ar, auto)
	}()
}

func loopRun(ctx context.Context, clk Clock, interval time.Duration, fn func(context.Context), ar AutoRegistrar, auto bool) {
	for {
		ch := clk.After(interval)
		select {
		case <-ctx.Done():
			if auto {
				ar.UnregisterGoroutine(ch)
			}
			return
		case <-ch:
			if ctx.Err() != nil {
				if auto {
					ar.UnregisterGoroutine()
				}
				return
			}
			fn(ctx)
		}
	}
}
