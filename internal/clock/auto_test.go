package clock

import (
	"context"
	"sync"
	"testing"
	"time"
)

var autoStart = time.Date(2003, 4, 21, 8, 0, 0, 0, time.UTC)

// TestFakeAutoSingleSleeper: one registered goroutine sleeping an hour
// wakes immediately in wall time with virtual time advanced.
func TestFakeAutoSingleSleeper(t *testing.T) {
	clk := NewFakeAuto(autoStart)
	defer clk.Stop()
	done := make(chan time.Time, 1)
	clk.RegisterGoroutine()
	go func() {
		defer clk.UnregisterGoroutine()
		clk.Sleep(time.Hour)
		done <- clk.Now()
	}()
	clk.Resume()
	select {
	case woke := <-done:
		if want := autoStart.Add(time.Hour); !woke.Equal(want) {
			t.Fatalf("woke at %v, want %v", woke, want)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("sleeper never woke: auto-advance did not fire")
	}
}

// TestFakeAutoDeadlineOrder: waiters fire strictly in deadline order,
// one at a time, regardless of the order the sleeps were issued.
func TestFakeAutoDeadlineOrder(t *testing.T) {
	clk := NewFakeAuto(autoStart)
	defer clk.Stop()
	var mu sync.Mutex
	var order []time.Duration
	var wg sync.WaitGroup
	durations := []time.Duration{5 * time.Minute, time.Minute, 3 * time.Minute, 10 * time.Minute}
	ready := make(chan struct{}, len(durations))
	for _, d := range durations {
		wg.Add(1)
		clk.RegisterGoroutine()
		go func(d time.Duration) {
			defer wg.Done()
			defer clk.UnregisterGoroutine()
			ready <- struct{}{}
			clk.Sleep(d)
			mu.Lock()
			order = append(order, d)
			mu.Unlock()
		}(d)
	}
	for range durations {
		<-ready
	}
	clk.Resume()
	wg.Wait()
	want := []time.Duration{time.Minute, 3 * time.Minute, 5 * time.Minute, 10 * time.Minute}
	for i, d := range want {
		if order[i] != d {
			t.Fatalf("wake order %v, want %v", order, want)
		}
	}
	if now, want := clk.Now(), autoStart.Add(10*time.Minute); !now.Equal(want) {
		t.Fatalf("clock at %v, want %v", now, want)
	}
}

// TestFakeAutoSingleStepping: while a woken goroutine works, the clock
// must not advance past other waiters — only when it parks again.
func TestFakeAutoSingleStepping(t *testing.T) {
	clk := NewFakeAuto(autoStart)
	defer clk.Stop()
	var mu sync.Mutex
	var events []string
	log := func(s string) { mu.Lock(); events = append(events, s); mu.Unlock() }
	var wg sync.WaitGroup
	wg.Add(2)
	started := make(chan struct{}, 2)
	clk.RegisterGoroutine()
	go func() { // wakes first, then sleeps again before B's deadline
		defer wg.Done()
		defer clk.UnregisterGoroutine()
		started <- struct{}{}
		clk.Sleep(time.Minute)
		log("A1")
		clk.Sleep(time.Minute) // deadline +2m, before B's +3m
		log("A2")
	}()
	clk.RegisterGoroutine()
	go func() {
		defer wg.Done()
		defer clk.UnregisterGoroutine()
		started <- struct{}{}
		clk.Sleep(3 * time.Minute)
		log("B")
	}()
	<-started
	<-started
	clk.Resume()
	wg.Wait()
	want := []string{"A1", "A2", "B"}
	for i, s := range want {
		if events[i] != s {
			t.Fatalf("event order %v, want %v", events, want)
		}
	}
}

// TestFakeAutoPauseResume: a paused clock queues waiters without
// firing them.
func TestFakeAutoPauseResume(t *testing.T) {
	clk := NewFakeAuto(autoStart)
	defer clk.Stop()
	done := make(chan struct{})
	clk.RegisterGoroutine()
	go func() {
		defer clk.UnregisterGoroutine()
		clk.Sleep(time.Second)
		close(done)
	}()
	for clk.PendingWaiters() == 0 {
		time.Sleep(time.Millisecond)
	}
	select {
	case <-done:
		t.Fatal("waiter fired while paused")
	case <-time.After(20 * time.Millisecond):
	}
	clk.Resume()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("waiter never fired after Resume")
	}
	if clk.Fired() == 0 {
		t.Fatal("Fired() did not count the delivery")
	}
}

// TestFakeAutoUnregisterDropsPending: a goroutine leaving with a
// pending waiter must not wedge the gate for the survivors.
func TestFakeAutoUnregisterDropsPending(t *testing.T) {
	clk := NewFakeAuto(autoStart)
	defer clk.Stop()
	// Leaver parks a far-future waiter, then abandons it.
	clk.RegisterGoroutine()
	ch := clk.After(100 * time.Hour)
	clk.UnregisterGoroutine(ch)
	if n := clk.PendingWaiters(); n != 0 {
		t.Fatalf("stale waiter not dropped: %d pending", n)
	}
	done := make(chan struct{})
	clk.RegisterGoroutine()
	go func() {
		defer clk.UnregisterGoroutine()
		clk.Sleep(time.Second)
		close(done)
	}()
	clk.Resume()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("survivor never woke after leaver dropped out")
	}
	if clk.Registered() != 0 {
		t.Fatalf("registered = %d, want 0", clk.Registered())
	}
}

// TestFakeAutoZeroAfter fires immediately without a waiter.
func TestFakeAutoZeroAfter(t *testing.T) {
	clk := NewFakeAuto(autoStart)
	defer clk.Stop()
	select {
	case now := <-clk.After(0):
		if !now.Equal(autoStart) {
			t.Fatalf("zero After delivered %v, want %v", now, autoStart)
		}
	default:
		t.Fatal("zero-duration After did not fire immediately")
	}
	if clk.PendingWaiters() != 0 {
		t.Fatal("zero After queued a waiter")
	}
}

// TestLoopOnFakeAuto: the LoopGo helper registers at the spawn site —
// before the controller below can possibly open the gate — runs its
// body once per interval in virtual time, and exits on cancel dropping
// its pending waiter.
func TestLoopOnFakeAuto(t *testing.T) {
	clk := NewFakeAuto(autoStart)
	defer clk.Stop()
	ctx, cancel := context.WithCancel(context.Background())
	var mu sync.Mutex
	ticks := 0
	loopDone := make(chan struct{})
	LoopGo(ctx, clk, time.Minute, func(context.Context) {
		mu.Lock()
		ticks++
		mu.Unlock()
	}, func() { close(loopDone) })
	// A controller sleeping to a fixed horizon bounds the loop: when it
	// wakes, exactly horizon/interval ticks have fired.
	// Pausing inside the controller, before it unregisters, keeps the
	// gate closed so no sixth tick can sneak in during teardown.
	horizon := make(chan struct{})
	clk.RegisterGoroutine()
	go func() {
		defer clk.UnregisterGoroutine()
		clk.Sleep(5*time.Minute + 30*time.Second)
		clk.Pause()
		close(horizon)
	}()
	clk.Resume()
	<-horizon
	mu.Lock()
	got := ticks
	mu.Unlock()
	if got != 5 {
		t.Fatalf("loop ticked %d times in 5.5 virtual minutes, want 5", got)
	}
	cancel()
	select {
	case <-loopDone:
	case <-time.After(5 * time.Second):
		t.Fatal("Loop did not exit on cancel")
	}
	if n := clk.Registered(); n != 0 {
		t.Fatalf("loop left %d registrations behind", n)
	}
}

// TestLoopOnRealClock exercises the System-clock path.
func TestLoopOnRealClock(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	fired := make(chan struct{})
	var once sync.Once
	done := make(chan struct{})
	go func() {
		defer close(done)
		Loop(ctx, nil, time.Millisecond, func(context.Context) {
			once.Do(func() { close(fired) })
		})
	}()
	select {
	case <-fired:
	case <-time.After(5 * time.Second):
		t.Fatal("loop never fired on the real clock")
	}
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Loop did not exit on cancel")
	}
}
