package clock

import (
	"sync"
	"testing"
	"time"
)

func TestRealNow(t *testing.T) {
	c := Real{}
	before := time.Now()
	got := c.Now()
	after := time.Now()
	if got.Before(before) || got.After(after) {
		t.Fatalf("Real.Now %v outside [%v, %v]", got, before, after)
	}
}

func TestRealAfterFires(t *testing.T) {
	c := Real{}
	select {
	case <-c.After(time.Millisecond):
	case <-time.After(5 * time.Second):
		t.Fatal("Real.After never fired")
	}
}

func TestFakeNowStable(t *testing.T) {
	start := time.Date(2003, 4, 22, 9, 0, 0, 0, time.UTC)
	f := NewFake(start)
	if !f.Now().Equal(start) {
		t.Fatalf("Now = %v, want %v", f.Now(), start)
	}
	if !f.Now().Equal(start) {
		t.Fatal("Now drifted without Advance")
	}
}

func TestFakeAdvanceMovesNow(t *testing.T) {
	start := time.Date(2003, 4, 22, 9, 0, 0, 0, time.UTC)
	f := NewFake(start)
	f.Advance(90 * time.Minute)
	want := start.Add(90 * time.Minute)
	if !f.Now().Equal(want) {
		t.Fatalf("Now = %v, want %v", f.Now(), want)
	}
}

func TestFakeAfterFiresOnAdvance(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	ch := f.After(time.Hour)
	select {
	case <-ch:
		t.Fatal("After fired before Advance")
	default:
	}
	f.Advance(59 * time.Minute)
	select {
	case <-ch:
		t.Fatal("After fired too early")
	default:
	}
	f.Advance(time.Minute)
	select {
	case got := <-ch:
		if !got.Equal(time.Unix(0, 0).Add(time.Hour)) {
			t.Fatalf("fired with %v", got)
		}
	default:
		t.Fatal("After did not fire at deadline")
	}
}

func TestFakeAfterNonPositiveFiresImmediately(t *testing.T) {
	f := NewFake(time.Unix(100, 0))
	select {
	case <-f.After(0):
	default:
		t.Fatal("After(0) should fire immediately")
	}
	select {
	case <-f.After(-time.Second):
	default:
		t.Fatal("After(negative) should fire immediately")
	}
}

func TestFakeSleepUnblocks(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		f.Sleep(time.Minute)
		close(done)
	}()
	// Wait until the sleeper has registered.
	for i := 0; i < 1000 && f.PendingWaiters() == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	if f.PendingWaiters() != 1 {
		t.Fatal("sleeper never registered")
	}
	f.Advance(time.Minute)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Sleep never returned after Advance")
	}
	wg.Wait()
}

func TestFakeMultipleWaitersFireInOrder(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	a := f.After(time.Second)
	b := f.After(2 * time.Second)
	c := f.After(3 * time.Second)
	f.Advance(10 * time.Second)
	for name, ch := range map[string]<-chan time.Time{"a": a, "b": b, "c": c} {
		select {
		case <-ch:
		default:
			t.Fatalf("waiter %s did not fire", name)
		}
	}
	if f.PendingWaiters() != 0 {
		t.Fatalf("PendingWaiters = %d, want 0", f.PendingWaiters())
	}
}

func TestFakeSetForwards(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	target := time.Unix(3600, 0)
	ch := f.After(30 * time.Minute)
	f.Set(target)
	if !f.Now().Equal(target) {
		t.Fatalf("Now = %v, want %v", f.Now(), target)
	}
	select {
	case <-ch:
	default:
		t.Fatal("Set did not fire due waiter")
	}
}

func TestFakeSetBackwardsPanics(t *testing.T) {
	f := NewFake(time.Unix(100, 0))
	defer func() {
		if recover() == nil {
			t.Fatal("Set backwards did not panic")
		}
	}()
	f.Set(time.Unix(0, 0))
}
