// Package clock abstracts time so that link expiry, heartbeats, and the
// benchmark harness can run against either the wall clock or a
// deterministic fake clock.
//
// The SyD event handler (paper §4.2, operation 6) periodically sweeps
// expired links; reproducing that behaviour in tests requires a clock
// that can be advanced manually, which is what Fake provides.
package clock

import (
	"sort"
	"sync"
	"time"
)

// Clock is the minimal time surface the SyD kernel needs.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// After returns a channel that delivers the (then-current) time
	// after d has elapsed.
	After(d time.Duration) <-chan time.Time
	// Sleep blocks the calling goroutine for d.
	Sleep(d time.Duration)
}

// Real is a Clock backed by the system wall clock.
type Real struct{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// After implements Clock.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// System is the shared real clock used by default throughout the kernel.
var System Clock = Real{}

// Fake is a manually advanced Clock. The zero value is not usable; call
// NewFake. Fake is safe for concurrent use.
type Fake struct {
	mu      sync.Mutex
	now     time.Time
	waiters []*fakeWaiter
}

type fakeWaiter struct {
	deadline time.Time
	ch       chan time.Time
}

// NewFake returns a Fake clock starting at start.
func NewFake(start time.Time) *Fake {
	return &Fake{now: start}
}

// Now implements Clock.
func (f *Fake) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

// After implements Clock. The returned channel fires when Advance moves
// the clock to or past the deadline.
func (f *Fake) After(d time.Duration) <-chan time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	ch := make(chan time.Time, 1)
	w := &fakeWaiter{deadline: f.now.Add(d), ch: ch}
	if d <= 0 {
		ch <- f.now
		return ch
	}
	f.waiters = append(f.waiters, w)
	return ch
}

// Sleep implements Clock; it blocks until Advance passes the deadline.
func (f *Fake) Sleep(d time.Duration) {
	<-f.After(d)
}

// Advance moves the fake clock forward by d, firing any waiters whose
// deadlines are reached, in deadline order.
func (f *Fake) Advance(d time.Duration) {
	f.mu.Lock()
	f.now = f.now.Add(d)
	now := f.now
	var due, rest []*fakeWaiter
	for _, w := range f.waiters {
		if !w.deadline.After(now) {
			due = append(due, w)
		} else {
			rest = append(rest, w)
		}
	}
	f.waiters = rest
	f.mu.Unlock()

	sort.Slice(due, func(i, j int) bool { return due[i].deadline.Before(due[j].deadline) })
	for _, w := range due {
		w.ch <- now
	}
}

// Set jumps the fake clock to t (which must not be earlier than the
// current fake time) and fires due waiters.
func (f *Fake) Set(t time.Time) {
	f.mu.Lock()
	d := t.Sub(f.now)
	f.mu.Unlock()
	if d < 0 {
		panic("clock: Set would move the fake clock backwards")
	}
	f.Advance(d)
}

// PendingWaiters reports how many After/Sleep callers are still blocked.
func (f *Fake) PendingWaiters() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.waiters)
}
