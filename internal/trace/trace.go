// Package trace is the SyD stack's distributed tracing subsystem: a
// zero-dependency span model whose context rides the existing
// wire.Metadata alongside the request id, so one logical operation —
// a group invocation fanning out to eight devices, a two-phase
// negotiation spanning coordinator, directory, and participants — is
// visible as a single causal tree across nodes.
//
// The design follows the same hot-path discipline as internal/metrics:
//
//   - When no tracer is installed (the default) every instrumentation
//     point is a nil check — zero allocations on the RPC hot path.
//   - A tracer samples at the root: the decision propagates to every
//     child, local and remote, via the trace-sampled metadata flag.
//   - Unsampled traces are not discarded immediately. Their spans are
//     parked in a small per-trace tail buffer until the trace quiesces
//     on this node; if any span turned out slow (>= the tracer's slow
//     threshold) or ended in doubt (wire.CodeInDoubt, or an explicit
//     Keep), the whole local segment is promoted into the ring. Slow
//     and in-doubt traces are therefore always retained, whatever the
//     sample rate — the property the negotiation recovery machinery
//     depends on.
//   - Finished spans land in a lock-sharded bounded ring buffer per
//     node; old spans are overwritten, never accumulated.
package trace

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"math"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/wire"
)

// Metadata keys carrying span context on the wire, next to
// wire.MetaRequestID.
const (
	// MetaTraceID identifies the whole causal tree.
	MetaTraceID = "trace-id"
	// MetaSpanID is the sender's span id — the parent of whatever span
	// the receiver opens for the request.
	MetaSpanID = "span-id"
	// MetaParentSpanID is the sender's own parent, so a collector can
	// stitch around a node whose spans were lost or never exported.
	MetaParentSpanID = "parent-span-id"
	// MetaSampled marks the trace as head-sampled; receivers record
	// its spans unconditionally instead of tail-buffering them.
	MetaSampled = "trace-sampled"
)

// Attr is one key=value annotation on a span or event.
type Attr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// String builds a string attr.
func String(key, value string) Attr { return Attr{Key: key, Value: value} }

// Int builds an integer attr.
func Int(key string, v int) Attr { return Attr{Key: key, Value: strconv.Itoa(v)} }

// Int64 builds a 64-bit integer attr.
func Int64(key string, v int64) Attr { return Attr{Key: key, Value: strconv.FormatInt(v, 10)} }

// Bool builds a boolean attr.
func Bool(key string, v bool) Attr { return Attr{Key: key, Value: strconv.FormatBool(v)} }

// Event is a timestamped point annotation inside a span (a journal
// write, a decided token, a coalesced flush).
type Event struct {
	At    time.Time `json:"at"`
	Name  string    `json:"name"`
	Attrs []Attr    `json:"attrs,omitempty"`
}

// Span is one timed operation in a trace. Fields are exported for the
// JSONL exporter and the introspection service; mutate spans only
// through the methods, which are safe for concurrent use.
type Span struct {
	TraceID  string       `json:"trace"`
	SpanID   string       `json:"span"`
	ParentID string       `json:"parent,omitempty"`
	Node     string       `json:"node"`
	Name     string       `json:"name"`
	Start    time.Time    `json:"start"`
	End      time.Time    `json:"end"`
	Code     wire.ErrCode `json:"code,omitempty"`
	Err      string       `json:"err,omitempty"`
	Attrs    []Attr       `json:"attrs,omitempty"`
	Events   []Event      `json:"events,omitempty"`

	tracer   *Tracer
	mu       sync.Mutex
	sampled  bool
	keep     bool
	finished bool
}

// Duration returns the span's wall-clock duration (0 while open).
func (s *Span) Duration() time.Duration {
	if s == nil || s.End.IsZero() {
		return 0
	}
	return s.End.Sub(s.Start)
}

// Annotate attaches attrs to the span. Nil-safe.
func (s *Span) Annotate(attrs ...Attr) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.Attrs = append(s.Attrs, attrs...)
	s.mu.Unlock()
}

// AddEvent records a timestamped point annotation. Nil-safe.
func (s *Span) AddEvent(name string, attrs ...Attr) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.Events = append(s.Events, Event{At: time.Now(), Name: name, Attrs: attrs})
	s.mu.Unlock()
}

// SetError records err's message and wire code on the span. A
// wire.CodeInDoubt error forces retention of the whole local trace
// segment, whatever the sample rate. Nil-safe; a nil err is a no-op.
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	code := wire.CodeOf(err)
	if code == wire.CodeInternal {
		// Errors outside the RPC path (e.g. the links package's
		// InDoubtError) expose their code directly rather than as a
		// *wire.RemoteError.
		var coded interface{ Code() wire.ErrCode }
		if errors.As(err, &coded) {
			code = coded.Code()
		}
	}
	s.mu.Lock()
	s.Err = err.Error()
	s.Code = code
	if code == wire.CodeInDoubt {
		s.keep = true
	}
	s.mu.Unlock()
}

// Keep forces retention of this span's trace segment on this node even
// if unsampled and fast — recovery spans (journal redrive, in-doubt
// resolution) use it so the post-mortem is never sampled away.
func (s *Span) Keep() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.keep = true
	s.mu.Unlock()
}

// Inject stamps the span's context onto outbound request metadata.
// Nil-safe: without a span the metadata is left untouched.
func (s *Span) Inject(md wire.Metadata) {
	if s == nil || md == nil {
		return
	}
	md[MetaTraceID] = s.TraceID
	md[MetaSpanID] = s.SpanID
	if s.ParentID != "" {
		md[MetaParentSpanID] = s.ParentID
	}
	if s.sampled {
		md[MetaSampled] = "1"
	}
}

// Finish closes the span and hands it to its tracer for recording.
// Nil-safe; double Finish is a no-op.
func (s *Span) Finish() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.finished {
		s.mu.Unlock()
		return
	}
	s.finished = true
	s.End = time.Now()
	s.mu.Unlock()
	s.tracer.record(s)
}

// FinishErr records err (if any) and finishes, the common tail of an
// instrumented call. Nil-safe.
func (s *Span) FinishErr(err error) {
	if s == nil {
		return
	}
	s.SetError(err)
	s.Finish()
}

// --- context plumbing -------------------------------------------------------

type spanCtxKey struct{}

// ContextWithSpan attaches s to ctx.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// FromContext returns the span attached to ctx, or nil.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// Start opens a child of the span in ctx, using that span's tracer.
// With no span in ctx it is a no-op returning (ctx, nil) — packages
// below the kernel (directory, transport, store) instrument through
// this so they need no tracer handle of their own.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	parent := FromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	return parent.tracer.StartSpan(ctx, name)
}

// EventCtx records a point annotation on the span in ctx, if any.
func EventCtx(ctx context.Context, name string, attrs ...Attr) {
	FromContext(ctx).AddEvent(name, attrs...)
}

// AnnotateCtx attaches attrs to the span in ctx, if any.
func AnnotateCtx(ctx context.Context, attrs ...Attr) {
	FromContext(ctx).Annotate(attrs...)
}

// --- tracer -----------------------------------------------------------------

// ring sizing: shards * shardCap spans retained per node.
const (
	ringShards      = 8
	defaultCapacity = 4096
	// tail buffer bounds: unsampled open traces parked per node, and
	// spans parked per trace, before new spans are dropped (counted).
	maxPendingTraces    = 256
	maxPendingSpanCount = 512
)

type ringShard struct {
	mu   sync.Mutex
	buf  []*Span
	next int
}

// Tracer records spans for one node. Safe for concurrent use.
type Tracer struct {
	node string

	rateBits atomic.Uint64 // math.Float64bits of the sample rate
	slowNs   atomic.Int64  // slow-trace retention threshold
	rng      atomic.Uint64 // xorshift64 state for ids + sampling

	shards   [ringShards]ringShard
	shardCap int

	pendMu  sync.Mutex
	pending map[string]*pendingTrace // traceID -> unsampled open segment

	dropped atomic.Int64 // spans lost to tail-buffer overflow
}

// pendingTrace is an unsampled trace's local segment awaiting its
// keep-or-drop verdict.
type pendingTrace struct {
	active int // open spans of this trace on this node
	keep   bool
	spans  []*Span
}

// Option configures a Tracer.
type Option func(*Tracer)

// WithSampleRate head-samples root spans at rate (0..1).
func WithSampleRate(rate float64) Option {
	return func(t *Tracer) { t.SetSampleRate(rate) }
}

// WithSlowThreshold retains any trace segment containing a span at
// least d long, regardless of the sample rate (0 disables).
func WithSlowThreshold(d time.Duration) Option {
	return func(t *Tracer) { t.slowNs.Store(int64(d)) }
}

// WithCapacity sets the node's span ring capacity (rounded up to a
// multiple of the shard count).
func WithCapacity(n int) Option {
	return func(t *Tracer) {
		if n > 0 {
			t.shardCap = (n + ringShards - 1) / ringShards
		}
	}
}

// New creates a tracer for the named node.
func New(node string, opts ...Option) *Tracer {
	t := &Tracer{
		node:     node,
		shardCap: defaultCapacity / ringShards,
		pending:  make(map[string]*pendingTrace),
	}
	var seed [8]byte
	if _, err := rand.Read(seed[:]); err != nil {
		panic("trace: rand: " + err.Error())
	}
	t.rng.Store(binary.LittleEndian.Uint64(seed[:]) | 1)
	for _, o := range opts {
		o(t)
	}
	return t
}

// Node returns the tracer's node name.
func (t *Tracer) Node() string {
	if t == nil {
		return ""
	}
	return t.node
}

// SetSampleRate updates the head-sampling rate at runtime.
func (t *Tracer) SetSampleRate(rate float64) {
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	t.rateBits.Store(math.Float64bits(rate))
}

// SampleRate returns the current head-sampling rate.
func (t *Tracer) SampleRate() float64 {
	if t == nil {
		return 0
	}
	return math.Float64frombits(t.rateBits.Load())
}

// SetSlowThreshold updates the slow-trace retention threshold.
func (t *Tracer) SetSlowThreshold(d time.Duration) { t.slowNs.Store(int64(d)) }

// SlowThreshold returns the slow-trace retention threshold.
func (t *Tracer) SlowThreshold() time.Duration {
	if t == nil {
		return 0
	}
	return time.Duration(t.slowNs.Load())
}

// Dropped reports spans lost to tail-buffer overflow.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// next64 steps the tracer's xorshift64 state. Cheaper than crypto/rand
// per span; ids only need uniqueness, not unpredictability.
func (t *Tracer) next64() uint64 {
	for {
		old := t.rng.Load()
		x := old
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		if t.rng.CompareAndSwap(old, x) {
			return x
		}
	}
}

const hexDigits = "0123456789abcdef"

// hex16 formats v as 16 lowercase hex digits with one allocation.
func hex16(v uint64) string {
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = hexDigits[v&0xf]
		v >>= 4
	}
	return string(b[:])
}

// newID mints a 64-bit hex id.
func (t *Tracer) newID() string { return hex16(t.next64()) }

// sample draws the head-sampling decision for a new root.
func (t *Tracer) sample() bool {
	rate := math.Float64frombits(t.rateBits.Load())
	if rate <= 0 {
		return false
	}
	if rate >= 1 {
		return true
	}
	// Top 53 bits -> uniform [0,1).
	return float64(t.next64()>>11)/(1<<53) < rate
}

// StartSpan opens a span named name. If ctx carries a span the new one
// is its child (same trace, same sampling verdict); otherwise it is a
// new root and the head-sampling decision is drawn. Nil-safe: a nil
// tracer returns (ctx, nil), and every Span method no-ops on nil.
func (t *Tracer) StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	s := &Span{
		tracer: t,
		SpanID: t.newID(),
		Node:   t.node,
		Name:   name,
		Start:  time.Now(),
	}
	if parent := FromContext(ctx); parent != nil {
		s.TraceID = parent.TraceID
		s.ParentID = parent.SpanID
		s.sampled = parent.sampled
	} else {
		s.TraceID = t.newID()
		s.sampled = t.sample()
	}
	t.noteOpen(s)
	return ContextWithSpan(ctx, s), s
}

// StartRemote opens the server-side span for an inbound request whose
// metadata may carry trace context. Without inbound context it behaves
// like a root StartSpan.
func (t *Tracer) StartRemote(ctx context.Context, name string, md wire.Metadata) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	tid := md.Get(MetaTraceID)
	if tid == "" {
		return t.StartSpan(ctx, name)
	}
	s := &Span{
		tracer:   t,
		TraceID:  tid,
		SpanID:   t.newID(),
		ParentID: md.Get(MetaSpanID),
		Node:     t.node,
		Name:     name,
		Start:    time.Now(),
		sampled:  md.Get(MetaSampled) != "",
	}
	t.noteOpen(s)
	return ContextWithSpan(ctx, s), s
}

// JoinTrace opens a span attached to an already-known trace — the
// recovery path (journal redrive, in-doubt resolution) uses it to put
// post-mortem work into the trace of the negotiation that spawned it,
// minutes after the original spans closed. Joined spans are always
// retained (Keep), since recovery only runs when something went wrong.
func (t *Tracer) JoinTrace(traceID, parentID, name string) *Span {
	if t == nil {
		return nil
	}
	if traceID == "" {
		traceID = t.newID()
	}
	s := &Span{
		tracer:   t,
		TraceID:  traceID,
		SpanID:   t.newID(),
		ParentID: parentID,
		Node:     t.node,
		Name:     name,
		Start:    time.Now(),
		keep:     true,
	}
	t.noteOpen(s)
	return s
}

// noteOpen registers an unsampled span in its trace's tail buffer.
// Sampled spans skip the buffer entirely — they go straight to the
// ring at Finish.
func (t *Tracer) noteOpen(s *Span) {
	if s.sampled {
		return
	}
	t.pendMu.Lock()
	p := t.pending[s.TraceID]
	if p == nil {
		if len(t.pending) >= maxPendingTraces {
			// Too many open unsampled traces: this one loses tail
			// retention (it can still be kept explicitly via Keep —
			// record() checks the flag directly).
			t.pendMu.Unlock()
			t.dropped.Add(1)
			return
		}
		p = &pendingTrace{}
		t.pending[s.TraceID] = p
	}
	p.active++
	t.pendMu.Unlock()
}

// record routes a finished span to the ring (sampled or kept) or its
// trace's tail buffer (unsampled, verdict pending).
func (t *Tracer) record(s *Span) {
	slow := t.slowNs.Load()
	isSlow := slow > 0 && s.End.Sub(s.Start) >= time.Duration(slow)
	s.mu.Lock()
	kept := s.keep
	s.mu.Unlock()
	if s.sampled {
		t.push(s)
		return
	}

	t.pendMu.Lock()
	p := t.pending[s.TraceID]
	if p == nil {
		// The trace overflowed the tail buffer at open time (or the
		// span finished after its segment was flushed): keep it only
		// on explicit merit.
		t.pendMu.Unlock()
		if kept || isSlow {
			t.push(s)
		}
		return
	}
	p.active--
	if kept || isSlow {
		p.keep = true
	}
	if len(p.spans) < maxPendingSpanCount {
		p.spans = append(p.spans, s)
	} else {
		t.dropped.Add(1)
	}
	if p.active > 0 {
		t.pendMu.Unlock()
		return
	}
	// The trace quiesced on this node: verdict time.
	delete(t.pending, s.TraceID)
	keep, spans := p.keep, p.spans
	t.pendMu.Unlock()
	if keep {
		for _, sp := range spans {
			t.push(sp)
		}
	}
}

// push writes a finished span into its ring shard.
func (t *Tracer) push(s *Span) {
	sh := &t.shards[shardOf(s.TraceID)]
	sh.mu.Lock()
	if sh.buf == nil {
		sh.buf = make([]*Span, t.shardCap)
	}
	sh.buf[sh.next] = s
	sh.next = (sh.next + 1) % len(sh.buf)
	sh.mu.Unlock()
}

// shardOf hashes a trace id to a ring shard (FNV-1a over the string),
// keeping one trace's spans in one shard.
func shardOf(traceID string) int {
	h := uint32(2166136261)
	for i := 0; i < len(traceID); i++ {
		h ^= uint32(traceID[i])
		h *= 16777619
	}
	return int(h % ringShards)
}

// Snapshot copies the retained spans out of the ring, oldest first
// within each shard. Open and tail-buffered spans are not included.
func (t *Tracer) Snapshot() []*Span {
	if t == nil {
		return nil
	}
	var out []*Span
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		n := len(sh.buf)
		for j := 0; j < n; j++ {
			if s := sh.buf[(sh.next+j)%n]; s != nil {
				out = append(out, s)
			}
		}
		sh.mu.Unlock()
	}
	return out
}

// Reset drops every retained and tail-buffered span (tests, and the
// sydbench harness between experiments).
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		sh.buf = nil
		sh.next = 0
		sh.mu.Unlock()
	}
	t.pendMu.Lock()
	t.pending = make(map[string]*pendingTrace)
	t.pendMu.Unlock()
}
