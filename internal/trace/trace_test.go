package trace

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/wire"
)

func TestNilTracerAndSpanAreNoOps(t *testing.T) {
	var tr *Tracer
	ctx, s := tr.StartSpan(context.Background(), "x")
	if s != nil {
		t.Fatal("nil tracer must return nil span")
	}
	// Every method must be nil-safe.
	s.Annotate(String("a", "b"))
	s.AddEvent("e")
	s.SetError(errors.New("boom"))
	s.Keep()
	s.Inject(wire.Metadata{})
	s.Finish()
	s.FinishErr(nil)
	if got := FromContext(ctx); got != nil {
		t.Fatal("no span should be attached")
	}
	if _, s2 := Start(ctx, "child"); s2 != nil {
		t.Fatal("Start without a ctx span must be a no-op")
	}
	EventCtx(ctx, "nothing")
	AnnotateCtx(ctx, String("k", "v"))
}

func TestSampledRootRecordsTree(t *testing.T) {
	tr := New("n1", WithSampleRate(1))
	ctx, root := tr.StartSpan(context.Background(), "root")
	_, child := tr.StartSpan(ctx, "child")
	child.Annotate(String("k", "v"))
	child.Finish()
	root.Finish()

	spans := tr.Snapshot()
	if len(spans) != 2 {
		t.Fatalf("want 2 spans, got %d", len(spans))
	}
	trees := Stitch(spans)
	if len(trees) != 1 {
		t.Fatalf("want 1 trace, got %d", len(trees))
	}
	tree := trees[0]
	if len(tree.Roots) != 1 || tree.Roots[0].Span.Name != "root" {
		t.Fatalf("bad roots: %+v", tree.Roots)
	}
	if len(tree.Roots[0].Children) != 1 || tree.Roots[0].Children[0].Span.Name != "child" {
		t.Fatalf("child not stitched under root")
	}
	if tree.Roots[0].Children[0].Span.ParentID != tree.Roots[0].Span.SpanID {
		t.Fatal("parent edge wrong")
	}
}

func TestUnsampledFastTraceIsDropped(t *testing.T) {
	tr := New("n1", WithSampleRate(0), WithSlowThreshold(time.Hour))
	ctx, root := tr.StartSpan(context.Background(), "root")
	_, child := tr.StartSpan(ctx, "child")
	child.Finish()
	root.Finish()
	if got := len(tr.Snapshot()); got != 0 {
		t.Fatalf("fast unsampled trace must be dropped, got %d spans", got)
	}
}

func TestSlowTraceRetainedAtRateZero(t *testing.T) {
	tr := New("n1", WithSampleRate(0), WithSlowThreshold(time.Nanosecond))
	ctx, root := tr.StartSpan(context.Background(), "root")
	_, child := tr.StartSpan(ctx, "fast-child")
	child.Finish()
	time.Sleep(time.Millisecond)
	root.Finish()
	spans := tr.Snapshot()
	// The slow root promotes the whole segment, including the fast
	// child that finished first.
	if len(spans) != 2 {
		t.Fatalf("slow trace must retain both spans, got %d", len(spans))
	}
}

func TestInDoubtTraceRetainedAtRateZero(t *testing.T) {
	tr := New("n1", WithSampleRate(0), WithSlowThreshold(time.Hour))
	ctx, root := tr.StartSpan(context.Background(), "negotiate")
	_, child := tr.StartSpan(ctx, "commit")
	child.FinishErr(&wire.RemoteError{Code: wire.CodeUnavailable, Msg: "lost"})
	root.FinishErr(&wire.RemoteError{Code: wire.CodeInDoubt, Msg: "diverged"})
	spans := tr.Snapshot()
	if len(spans) != 2 {
		t.Fatalf("in-doubt trace must be retained, got %d spans", len(spans))
	}
	tree := Stitch(spans)[0]
	if !tree.InDoubt {
		t.Fatal("tree must be flagged in-doubt")
	}
}

func TestInjectAndStartRemote(t *testing.T) {
	a := New("a", WithSampleRate(1))
	b := New("b", WithSampleRate(0))
	ctx, client := a.StartSpan(context.Background(), "rpc.client")
	md := make(wire.Metadata)
	client.Inject(md)
	if md[MetaTraceID] != client.TraceID || md[MetaSpanID] != client.SpanID {
		t.Fatalf("inject wrote %v", md)
	}
	if md[MetaSampled] != "1" {
		t.Fatal("sampled flag must propagate")
	}
	_, server := b.StartRemote(context.Background(), "rpc.server", md)
	server.Finish()
	client.Finish()
	_ = ctx

	// The server span joined the client's trace and — because the
	// sampled flag propagated — was recorded on b despite rate 0.
	if server.TraceID != client.TraceID || server.ParentID != client.SpanID {
		t.Fatalf("server span not stitched: %+v", server)
	}
	if got := len(b.Snapshot()); got != 1 {
		t.Fatalf("remote sampled span must be recorded, got %d", got)
	}
}

func TestJoinTraceAlwaysKept(t *testing.T) {
	tr := New("n1") // rate 0, no slow threshold
	s := tr.JoinTrace("deadbeefdeadbeef", "cafe", "links.Redrive")
	s.Finish()
	spans := tr.Snapshot()
	if len(spans) != 1 || spans[0].TraceID != "deadbeefdeadbeef" || spans[0].ParentID != "cafe" {
		t.Fatalf("joined span not retained: %+v", spans)
	}
}

func TestRingBounded(t *testing.T) {
	tr := New("n1", WithSampleRate(1), WithCapacity(64))
	for i := 0; i < 1000; i++ {
		_, s := tr.StartSpan(context.Background(), "s")
		s.Finish()
	}
	if got := len(tr.Snapshot()); got > 64 {
		t.Fatalf("ring must be bounded at 64, got %d", got)
	}
}

func TestPendingTraceBufferBounded(t *testing.T) {
	tr := New("n1", WithSlowThreshold(time.Hour)) // active, rate 0
	// Open (and never finish) more traces than the buffer holds.
	var spans []*Span
	for i := 0; i < maxPendingTraces+10; i++ {
		_, s := tr.StartSpan(context.Background(), "open")
		spans = append(spans, s)
	}
	if tr.Dropped() == 0 {
		t.Fatal("overflow must be counted")
	}
	for _, s := range spans {
		s.Finish()
	}
	if got := len(tr.Snapshot()); got != 0 {
		t.Fatalf("fast unsampled spans must not be retained, got %d", got)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	tr := New("n1", WithSampleRate(1))
	ctx, root := tr.StartSpan(context.Background(), "root")
	root.Annotate(String("svc", "cal.phil"), Int("n", 3))
	root.AddEvent("journal.begin", String("nid", "N-1"))
	_, child := tr.StartSpan(ctx, "child")
	child.FinishErr(&wire.RemoteError{Code: wire.CodeConflict, Msg: "locked"})
	root.Finish()

	var buf bytes.Buffer
	if err := WriteJSONL(&buf, tr.Snapshot()); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Fatalf("want 2 spans back, got %d", len(back))
	}
	tree := Stitch(back)[0]
	if tree.Spans != 2 || len(tree.Roots) != 1 {
		t.Fatalf("round-tripped spans must stitch: %+v", tree)
	}
}

func TestRenderFlameTree(t *testing.T) {
	tr := New("n1", WithSampleRate(1))
	ctx, root := tr.StartSpan(context.Background(), "links.Negotiate")
	root.Annotate(String("nid", "N-42"))
	_, child := tr.StartSpan(ctx, "links.Commit")
	child.FinishErr(&wire.RemoteError{Code: wire.CodeUnavailable, Msg: "down"})
	root.FinishErr(&wire.RemoteError{Code: wire.CodeInDoubt, Msg: "diverged"})

	c := NewCollector()
	c.Attach(tr)
	out := c.RenderSlowest(5)
	for _, want := range []string{"IN-DOUBT", "links.Negotiate", "links.Commit", "nid=N-42", "code=unavailable", "└─"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q in:\n%s", want, out)
		}
	}
}

func TestSampleRateBounds(t *testing.T) {
	tr := New("n1")
	tr.SetSampleRate(2)
	if tr.SampleRate() != 1 {
		t.Fatal("rate must clamp to 1")
	}
	tr.SetSampleRate(-1)
	if tr.SampleRate() != 0 {
		t.Fatal("rate must clamp to 0")
	}
	hits := 0
	tr.SetSampleRate(0.5)
	for i := 0; i < 2000; i++ {
		if tr.sample() {
			hits++
		}
	}
	if hits < 700 || hits > 1300 {
		t.Fatalf("rate 0.5 sampled %d/2000", hits)
	}
}

func TestResetAndConcurrency(t *testing.T) {
	tr := New("n1", WithSampleRate(1), WithCapacity(256))
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				ctx, root := tr.StartSpan(context.Background(), "r")
				_, c := tr.StartSpan(ctx, "c")
				c.AddEvent("e", Int("i", i))
				c.Finish()
				root.Finish()
			}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if len(tr.Snapshot()) == 0 {
		t.Fatal("spans must be recorded")
	}
	tr.Reset()
	if len(tr.Snapshot()) != 0 {
		t.Fatal("reset must clear the ring")
	}
}
