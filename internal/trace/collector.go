package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/wire"
)

// Collector aggregates the rings of several tracers — one per node in
// a deployment or a sim-network test — and stitches their spans into
// whole-trace trees. It is the in-process equivalent of a tracing
// backend: tests assert on its trees, sydbench -trace renders them.
type Collector struct {
	mu      sync.Mutex
	tracers []*Tracer
}

// NewCollector creates an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Tracer creates a node tracer registered with the collector.
func (c *Collector) Tracer(node string, opts ...Option) *Tracer {
	t := New(node, opts...)
	c.Attach(t)
	return t
}

// Attach registers an existing tracer with the collector.
func (c *Collector) Attach(t *Tracer) {
	if c == nil || t == nil {
		return
	}
	c.mu.Lock()
	c.tracers = append(c.tracers, t)
	c.mu.Unlock()
}

// Spans snapshots every attached tracer's ring.
func (c *Collector) Spans() []*Span {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	tracers := append([]*Tracer(nil), c.tracers...)
	c.mu.Unlock()
	var out []*Span
	for _, t := range tracers {
		out = append(out, t.Snapshot()...)
	}
	return out
}

// Reset clears every attached tracer.
func (c *Collector) Reset() {
	if c == nil {
		return
	}
	c.mu.Lock()
	tracers := append([]*Tracer(nil), c.tracers...)
	c.mu.Unlock()
	for _, t := range tracers {
		t.Reset()
	}
}

// --- stitching --------------------------------------------------------------

// Node is one span plus its resolved children, ordered by start time.
type Node struct {
	Span     *Span
	Children []*Node
}

// Tree is one stitched trace: its roots (usually one; several when the
// true root's span was lost) and summary figures.
type Tree struct {
	TraceID string
	Roots   []*Node
	Spans   int
	Nodes   int // distinct SyD nodes that contributed spans
	// Start and Duration cover the whole tree (earliest start to
	// latest end across every span).
	Start    time.Time
	Duration time.Duration
	// InDoubt reports whether any span ended with wire.CodeInDoubt.
	InDoubt bool
}

// Stitch groups spans by trace id and links parents to children. Spans
// whose parent is absent (lost, unsampled elsewhere, or a true root)
// become roots of the tree.
func Stitch(spans []*Span) []*Tree {
	byTrace := make(map[string][]*Span)
	for _, s := range spans {
		byTrace[s.TraceID] = append(byTrace[s.TraceID], s)
	}
	out := make([]*Tree, 0, len(byTrace))
	for tid, ss := range byTrace {
		nodes := make(map[string]*Node, len(ss))
		for _, s := range ss {
			nodes[s.SpanID] = &Node{Span: s}
		}
		t := &Tree{TraceID: tid, Spans: len(ss)}
		seen := make(map[string]bool)
		var maxEnd time.Time
		for _, s := range ss {
			if !seen[s.Node] {
				seen[s.Node] = true
				t.Nodes++
			}
			if s.Code == wire.CodeInDoubt {
				t.InDoubt = true
			}
			if t.Start.IsZero() || s.Start.Before(t.Start) {
				t.Start = s.Start
			}
			if s.End.After(maxEnd) {
				maxEnd = s.End
			}
			n := nodes[s.SpanID]
			if p, ok := nodes[s.ParentID]; ok && s.ParentID != s.SpanID {
				p.Children = append(p.Children, n)
			} else {
				t.Roots = append(t.Roots, n)
			}
		}
		if !maxEnd.IsZero() {
			t.Duration = maxEnd.Sub(t.Start)
		}
		for _, n := range nodes {
			sortNodes(n.Children)
		}
		sortNodes(t.Roots)
		out = append(out, t)
	}
	// Slowest first — the order an operator wants them in.
	sort.Slice(out, func(i, j int) bool {
		if out[i].Duration != out[j].Duration {
			return out[i].Duration > out[j].Duration
		}
		return out[i].TraceID < out[j].TraceID
	})
	return out
}

func sortNodes(ns []*Node) {
	sort.Slice(ns, func(i, j int) bool {
		if !ns[i].Span.Start.Equal(ns[j].Span.Start) {
			return ns[i].Span.Start.Before(ns[j].Span.Start)
		}
		return ns[i].Span.SpanID < ns[j].Span.SpanID
	})
}

// Trees stitches the collector's current spans.
func (c *Collector) Trees() []*Tree { return Stitch(c.Spans()) }

// Find returns the stitched tree for one trace id, or nil.
func (c *Collector) Find(traceID string) *Tree {
	for _, t := range c.Trees() {
		if t.TraceID == traceID {
			return t
		}
	}
	return nil
}

// --- rendering --------------------------------------------------------------

// Render draws the tree as a text flame tree, one span per line:
//
//	trace 9c00f5… 14.2ms spans=9 nodes=4 IN-DOUBT
//	└─ links.Negotiate 14.2ms @u00 code=in-doubt nid=N-…
//	   ├─ links.Mark 1.1ms @u00 target=u01/slot…
//	   │  └─ rpc.server 0.6ms @u01 service=links.u01 method=Mark
//	   └─ links.Commit 2.0ms @u00 target=u01/slot… code=unavailable
func (t *Tree) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s %s spans=%d nodes=%d", t.TraceID, fmtDur(t.Duration), t.Spans, t.Nodes)
	if t.InDoubt {
		b.WriteString(" IN-DOUBT")
	}
	b.WriteByte('\n')
	for i, r := range t.Roots {
		renderNode(&b, r, "", i == len(t.Roots)-1)
	}
	return b.String()
}

func renderNode(b *strings.Builder, n *Node, prefix string, last bool) {
	branch, childPrefix := "├─ ", prefix+"│  "
	if last {
		branch, childPrefix = "└─ ", prefix+"   "
	}
	s := n.Span
	fmt.Fprintf(b, "%s%s%s %s @%s", prefix, branch, s.Name, fmtDur(s.Duration()), s.Node)
	if s.Code != "" {
		fmt.Fprintf(b, " code=%s", s.Code)
	}
	for _, a := range s.Attrs {
		fmt.Fprintf(b, " %s=%s", a.Key, a.Value)
	}
	for _, ev := range s.Events {
		fmt.Fprintf(b, " [%s", ev.Name)
		for _, a := range ev.Attrs {
			fmt.Fprintf(b, " %s=%s", a.Key, a.Value)
		}
		b.WriteByte(']')
	}
	b.WriteByte('\n')
	for i, c := range n.Children {
		renderNode(b, c, childPrefix, i == len(n.Children)-1)
	}
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

// RenderSlowest renders the n slowest stitched traces, slowest first.
func (c *Collector) RenderSlowest(n int) string {
	trees := c.Trees()
	if n > 0 && len(trees) > n {
		trees = trees[:n]
	}
	var b strings.Builder
	for _, t := range trees {
		b.WriteString(t.Render())
	}
	return b.String()
}

// --- JSONL export -----------------------------------------------------------

// WriteJSONL writes one JSON object per span — the exchange format for
// offline analysis (jq, a spreadsheet, a real tracing backend).
func WriteJSONL(w io.Writer, spans []*Span) error {
	enc := json.NewEncoder(w)
	for _, s := range spans {
		s.mu.Lock()
		err := enc.Encode(s)
		s.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// ReadJSONL decodes spans written by WriteJSONL.
func ReadJSONL(r io.Reader) ([]*Span, error) {
	dec := json.NewDecoder(r)
	var out []*Span
	for {
		s := new(Span)
		if err := dec.Decode(s); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return out, err
		}
		out = append(out, s)
	}
}

// --- process-global default -------------------------------------------------

// The default collector mirrors metrics.Default(): harnesses that
// construct nodes deep inside library code (the experiments World, the
// sydbench trajectory suite) flip tracing on process-wide and every
// subsequently started node attaches a tracer automatically.

var (
	defMu        sync.Mutex
	defCollector = NewCollector()
	defRate      float64
	defSlow      time.Duration
)

// Default returns the process-global collector.
func Default() *Collector { return defCollector }

// EnableDefault turns on process-wide tracing for nodes started after
// the call: each gets a tracer with the given sample rate and slow
// threshold, attached to Default().
func EnableDefault(rate float64, slow time.Duration) {
	defMu.Lock()
	defRate, defSlow = rate, slow
	defMu.Unlock()
}

// DefaultSampling reports the process-wide tracing config; enabled is
// false when EnableDefault was never called (or rates are zero).
func DefaultSampling() (rate float64, slow time.Duration, enabled bool) {
	defMu.Lock()
	defer defMu.Unlock()
	return defRate, defSlow, defRate > 0 || defSlow > 0
}
