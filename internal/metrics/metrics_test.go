package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/wire"
)

func TestObserveAndSnapshot(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < 4; i++ {
		r.Observe(LayerClient, "cal.phil", "WhoAmI", "", 2*time.Millisecond)
	}
	r.Observe(LayerClient, "cal.phil", "WhoAmI", wire.CodeConflict, 8*time.Millisecond)
	r.Observe(LayerServer, "cal.phil", "WhoAmI", "", time.Millisecond)

	snap := r.Snapshot()
	if len(snap.Entries) != 3 {
		t.Fatalf("entries = %d, want 3 (layer and code split series)", len(snap.Entries))
	}
	ok := snap.Find(LayerClient, "cal.phil", "WhoAmI", "")
	if ok == nil || ok.Count != 4 {
		t.Fatalf("client ok series = %+v", ok)
	}
	if ok.AvgMs < 1.9 || ok.AvgMs > 2.1 {
		t.Fatalf("avg = %v, want ~2ms", ok.AvgMs)
	}
	if ok.MaxMs < 1.9 || ok.MaxMs > 2.1 {
		t.Fatalf("max = %v, want ~2ms", ok.MaxMs)
	}
	if srv := snap.Find(LayerServer, "cal.phil", "WhoAmI", ""); srv == nil || srv.Count != 1 {
		t.Fatalf("server series = %+v", srv)
	}
	if snap.TotalCount() != 6 {
		t.Fatalf("total = %d", snap.TotalCount())
	}
	if snap.Find(LayerClient, "cal.phil", "WhoAmI", wire.CodeUnavailable) != nil {
		t.Fatal("Find matched a code never observed")
	}
}

func TestPercentilesSeparateFastAndSlow(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < 90; i++ {
		r.Observe(LayerClient, "s", "m", "", time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		r.Observe(LayerClient, "s", "m", "", 100*time.Millisecond)
	}
	e := r.Snapshot().Find(LayerClient, "s", "m", "")
	if e == nil {
		t.Fatal("series missing")
	}
	// Buckets are power-of-two upper bounds: fast lands in (≤1.024ms),
	// slow in (≤131.072ms). p50 must report the fast bucket, p95/p99
	// the slow one.
	if e.P50Ms > 2 {
		t.Fatalf("p50 = %v, want ~1ms bucket", e.P50Ms)
	}
	if e.P95Ms < 100 || e.P99Ms < 100 {
		t.Fatalf("p95 = %v p99 = %v, want slow bucket", e.P95Ms, e.P99Ms)
	}
}

func TestBucketOfEdges(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{-time.Second, 0}, // clamped in observe, but bucketOf must not panic
		{time.Microsecond, 0},
		{2 * time.Microsecond, 1},
		{time.Hour, numBuckets - 1}, // overflow bucket
	}
	for _, c := range cases {
		if got := bucketOf(c.d); got != c.want {
			t.Fatalf("bucketOf(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestResetDropsSeries(t *testing.T) {
	r := NewRegistry()
	r.Observe(LayerClient, "s", "m", "", time.Millisecond)
	r.Reset()
	if n := len(r.Snapshot().Entries); n != 0 {
		t.Fatalf("entries after reset = %d", n)
	}
}

func TestRenderTable(t *testing.T) {
	r := NewRegistry()
	if got := r.Snapshot().Render(); !strings.Contains(got, "no metrics") {
		t.Fatalf("empty render = %q", got)
	}
	r.Observe(LayerServer, "cal.phil", "WhoAmI", "", time.Millisecond)
	r.Observe(LayerClient, "cal.phil", "WhoAmI", wire.CodeAuth, time.Millisecond)
	out := r.Snapshot().Render()
	for _, want := range []string{"layer", "service", "server", "client", "cal.phil", "WhoAmI", "ok", string(wire.CodeAuth)} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	r.Observe(LayerClient, "s", "m", "", time.Millisecond) // must not panic
	if len(r.Snapshot().Entries) != 0 {
		t.Fatal("nil registry produced entries")
	}
}

func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	const goroutines = 8
	const iters = 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r.Observe(LayerClient, "s", "m", "", time.Duration(i)*time.Microsecond)
				if i%50 == 0 {
					_ = r.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	e := r.Snapshot().Find(LayerClient, "s", "m", "")
	if e == nil || e.Count != goroutines*iters {
		t.Fatalf("count = %+v, want %d", e, goroutines*iters)
	}
}
