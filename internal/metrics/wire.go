package metrics

import (
	"fmt"
	"sync/atomic"
)

// WireStats counts frame-level traffic on the real socket transport:
// frames and bytes in each direction, plus write-coalescing behavior
// (how many flush syscalls were issued and how many frames each one
// carried). All methods are safe for concurrent use; counting is a
// handful of atomic adds per frame, cheap enough to leave on.
type WireStats struct {
	framesSent atomic.Int64
	bytesSent  atomic.Int64
	framesRecv atomic.Int64
	bytesRecv  atomic.Int64
	flushes    atomic.Int64
	batchMax   atomic.Int64
}

// defaultWire is the process-wide transport counter set.
var defaultWire = &WireStats{}

// Wire returns the process-wide transport frame counters.
func Wire() *WireStats { return defaultWire }

// RecordSend accounts frames queued for the wire (bytes include the
// 4-byte length prefixes).
func (w *WireStats) RecordSend(frames, bytes int) {
	if w == nil {
		return
	}
	w.framesSent.Add(int64(frames))
	w.bytesSent.Add(int64(bytes))
}

// RecordRecv accounts frames read off the wire.
func (w *WireStats) RecordRecv(frames, bytes int) {
	if w == nil {
		return
	}
	w.framesRecv.Add(int64(frames))
	w.bytesRecv.Add(int64(bytes))
}

// RecordFlush accounts one coalesced flush syscall that drained the
// given number of frames.
func (w *WireStats) RecordFlush(frames int) {
	if w == nil {
		return
	}
	w.flushes.Add(1)
	n := int64(frames)
	for {
		cur := w.batchMax.Load()
		if n <= cur || w.batchMax.CompareAndSwap(cur, n) {
			return
		}
	}
}

// WireSnapshot is a point-in-time copy of WireStats.
type WireSnapshot struct {
	FramesSent int64 `json:"framesSent"`
	BytesSent  int64 `json:"bytesSent"`
	FramesRecv int64 `json:"framesRecv"`
	BytesRecv  int64 `json:"bytesRecv"`
	Flushes    int64 `json:"flushes"`
	// BatchMax is the largest number of frames a single flush drained.
	BatchMax int64 `json:"batchMax"`
	// BatchAvg is FramesSent/Flushes: the mean coalescing factor.
	BatchAvg float64 `json:"batchAvg"`
}

// Snapshot copies the counters.
func (w *WireStats) Snapshot() WireSnapshot {
	s := WireSnapshot{
		FramesSent: w.framesSent.Load(),
		BytesSent:  w.bytesSent.Load(),
		FramesRecv: w.framesRecv.Load(),
		BytesRecv:  w.bytesRecv.Load(),
		Flushes:    w.flushes.Load(),
		BatchMax:   w.batchMax.Load(),
	}
	if s.Flushes > 0 {
		s.BatchAvg = float64(s.FramesSent) / float64(s.Flushes)
	}
	return s
}

// Reset zeroes the counters.
func (w *WireStats) Reset() {
	w.framesSent.Store(0)
	w.bytesSent.Store(0)
	w.framesRecv.Store(0)
	w.bytesRecv.Store(0)
	w.flushes.Store(0)
	w.batchMax.Store(0)
}

// Render formats the snapshot as one line for sydbench -metrics.
func (s WireSnapshot) Render() string {
	return fmt.Sprintf(
		"frames out=%d (%d B)  in=%d (%d B)  flushes=%d  batch avg=%.2f max=%d\n",
		s.FramesSent, s.BytesSent, s.FramesRecv, s.BytesRecv,
		s.Flushes, s.BatchAvg, s.BatchMax,
	)
}
