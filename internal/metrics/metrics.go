// Package metrics is the per-layer observability surface of the
// interceptor pipeline: lock-light counters and latency histograms
// keyed by (service, method, error code). The engine's client
// interceptor and the listener's server middleware both feed a
// Registry; cmd/sydbench and the sys.<user> introspection service
// expose its Snapshot.
//
// Recording is designed for the hot path: one RLock'd map probe plus a
// handful of atomic adds per observation (a miss takes the write lock
// once per new series). Histograms use power-of-two microsecond
// buckets, so percentiles are upper-bound estimates with ≤2x
// resolution — plenty for spotting a slow method, cheap enough to
// leave on in production.
package metrics

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/wire"
)

// numBuckets covers 1µs .. ~33s in power-of-two steps, plus a final
// overflow bucket.
const numBuckets = 26

// bucketOf maps a duration to its histogram bucket: bucket i holds
// observations with d <= 1µs << i.
func bucketOf(d time.Duration) int {
	us := int64(d / time.Microsecond)
	if us <= 1 {
		return 0
	}
	b := bits.Len64(uint64(us - 1)) // ceil(log2(us))
	if b >= numBuckets {
		return numBuckets - 1
	}
	return b
}

// bucketUpperUs is bucket i's inclusive upper bound in microseconds.
func bucketUpperUs(i int) float64 {
	return float64(int64(1) << i)
}

// Layer identifies which side of an RPC produced an observation.
type Layer string

// Layers.
const (
	LayerClient Layer = "client" // engine interceptor (includes transport time)
	LayerServer Layer = "server" // listener middleware (handler time only)
	LayerWAL    Layer = "wal"    // durability subsystem (internal/wal): commit, fsync, batch, recovery, checkpoint
	LayerLinks  Layer = "links"  // negotiation protocol: outcomes, commit retries, journal expiry, participant resolution
	LayerRepl   Layer = "repl"   // replication: WAL shipping, snapshot bootstrap, lease renewal, promotion
	LayerSync   Layer = "sync"   // disconnected operation: offline queue, reconnect push/pull sessions, proxy update queue
)

type seriesKey struct {
	Layer   Layer
	Service string
	Method  string
	Code    wire.ErrCode
}

type series struct {
	count   atomic.Int64
	sumNs   atomic.Int64
	maxNs   atomic.Int64
	buckets [numBuckets]atomic.Int64
}

func (s *series) observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	s.count.Add(1)
	s.sumNs.Add(int64(d))
	for {
		cur := s.maxNs.Load()
		if int64(d) <= cur || s.maxNs.CompareAndSwap(cur, int64(d)) {
			break
		}
	}
	s.buckets[bucketOf(d)].Add(1)
}

// Registry aggregates observations. The zero value is NOT ready; use
// NewRegistry. Safe for concurrent use.
type Registry struct {
	mu     sync.RWMutex
	series map[seriesKey]*series
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{series: make(map[seriesKey]*series)}
}

// defaultRegistry is the process-wide registry used when callers do
// not wire their own (cmd/sydbench, experiments.World).
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// Observe records one completed invocation of service.method at the
// given layer that finished with code after duration d.
func (r *Registry) Observe(layer Layer, service, method string, code wire.ErrCode, d time.Duration) {
	if r == nil {
		return
	}
	key := seriesKey{Layer: layer, Service: service, Method: method, Code: code}
	r.mu.RLock()
	s := r.series[key]
	r.mu.RUnlock()
	if s == nil {
		r.mu.Lock()
		if s = r.series[key]; s == nil {
			s = &series{}
			r.series[key] = s
		}
		r.mu.Unlock()
	}
	s.observe(d)
}

// Reset drops every series (tests, or between sydbench runs).
func (r *Registry) Reset() {
	r.mu.Lock()
	r.series = make(map[seriesKey]*series)
	r.mu.Unlock()
}

// Entry is one (service, method, code) series in a Snapshot.
type Entry struct {
	Layer   Layer        `json:"layer"`
	Service string       `json:"service"`
	Method  string       `json:"method"`
	Code    wire.ErrCode `json:"code,omitempty"`
	Count   int64        `json:"count"`
	AvgMs   float64      `json:"avgMs"`
	P50Ms   float64      `json:"p50Ms"`
	P95Ms   float64      `json:"p95Ms"`
	P99Ms   float64      `json:"p99Ms"`
	MaxMs   float64      `json:"maxMs"`
}

// Snapshot is a point-in-time copy of a Registry, sorted by service,
// method, then code.
type Snapshot struct {
	Entries []Entry `json:"entries"`
}

// percentile returns the upper bound (ms) of the bucket holding the
// q-th quantile observation.
func percentile(buckets *[numBuckets]int64, total int64, q float64) float64 {
	if total == 0 {
		return 0
	}
	rank := int64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := 0; i < numBuckets; i++ {
		cum += buckets[i]
		if cum >= rank {
			return bucketUpperUs(i) / 1000
		}
	}
	return bucketUpperUs(numBuckets-1) / 1000
}

// Snapshot copies the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.RLock()
	keys := make([]seriesKey, 0, len(r.series))
	refs := make([]*series, 0, len(r.series))
	for k, s := range r.series {
		keys = append(keys, k)
		refs = append(refs, s)
	}
	r.mu.RUnlock()

	snap := Snapshot{Entries: make([]Entry, 0, len(keys))}
	for i, k := range keys {
		s := refs[i]
		count := s.count.Load()
		if count == 0 {
			continue
		}
		var buckets [numBuckets]int64
		for b := 0; b < numBuckets; b++ {
			buckets[b] = s.buckets[b].Load()
		}
		snap.Entries = append(snap.Entries, Entry{
			Layer:   k.Layer,
			Service: k.Service,
			Method:  k.Method,
			Code:    k.Code,
			Count:   count,
			AvgMs:   float64(s.sumNs.Load()) / float64(count) / 1e6,
			P50Ms:   percentile(&buckets, count, 0.50),
			P95Ms:   percentile(&buckets, count, 0.95),
			P99Ms:   percentile(&buckets, count, 0.99),
			MaxMs:   float64(s.maxNs.Load()) / 1e6,
		})
	}
	sort.Slice(snap.Entries, func(i, j int) bool {
		a, b := snap.Entries[i], snap.Entries[j]
		if a.Service != b.Service {
			return a.Service < b.Service
		}
		if a.Method != b.Method {
			return a.Method < b.Method
		}
		if a.Layer != b.Layer {
			return a.Layer < b.Layer
		}
		return a.Code < b.Code
	})
	return snap
}

// Find returns the entry for (layer, service, method, code), or nil.
func (s Snapshot) Find(layer Layer, service, method string, code wire.ErrCode) *Entry {
	for i := range s.Entries {
		e := &s.Entries[i]
		if e.Layer == layer && e.Service == service && e.Method == method && e.Code == code {
			return e
		}
	}
	return nil
}

// TotalCount sums Count across all entries.
func (s Snapshot) TotalCount() int64 {
	var n int64
	for i := range s.Entries {
		n += s.Entries[i].Count
	}
	return n
}

// Render formats the snapshot as an aligned text table.
func (s Snapshot) Render() string {
	if len(s.Entries) == 0 {
		return "(no metrics recorded)\n"
	}
	var b strings.Builder
	rows := make([][]string, 0, len(s.Entries)+1)
	rows = append(rows, []string{"layer", "service", "method", "code", "count", "avg-ms", "p50-ms", "p95-ms", "p99-ms", "max-ms"})
	for _, e := range s.Entries {
		code := string(e.Code)
		if code == "" {
			code = "ok"
		}
		rows = append(rows, []string{
			string(e.Layer), e.Service, e.Method, code,
			fmt.Sprintf("%d", e.Count),
			fmt.Sprintf("%.3f", e.AvgMs),
			fmt.Sprintf("%.3f", e.P50Ms),
			fmt.Sprintf("%.3f", e.P95Ms),
			fmt.Sprintf("%.3f", e.P99Ms),
			fmt.Sprintf("%.3f", e.MaxMs),
		})
	}
	widths := make([]int, len(rows[0]))
	for _, row := range rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	for _, row := range rows {
		for i, c := range row {
			fmt.Fprintf(&b, "%-*s  ", widths[i], c)
		}
		b.WriteString("\n")
	}
	return b.String()
}
