package replication_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/controlplane"
	"repro/internal/core"
	"repro/internal/directory"
	"repro/internal/links"
	"repro/internal/replication"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/transport"
	"repro/internal/wire"
)

// The failover proof: a 3-node replica set (primary x + two
// followers) embedded in a live deployment — sharded directory behind
// the control plane, coordinator nodes racing negotiations through x.
// The primary is killed mid-two-phase-commit; the test then asserts
// the whole recovery chain: a follower promotes within one lease TTL,
// the directory re-points x in one RPC (epoch bump observed by the
// other nodes), the coordinator's journal redrive completes every
// in-flight negotiation against the promoted backup, and no acked
// commit is lost.

const leaseTTL = 30 * time.Second

type fixture struct {
	t   *testing.T
	net *sim.Net
	clk *clock.Fake
	ctl *controlplane.Controller
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	const shards = 4
	net := sim.New(sim.Config{})
	clk := clock.NewFake(time.Date(2003, 4, 22, 9, 0, 0, 0, time.UTC))
	list := make([]controlplane.Shard, shards)
	servers := make([]*directory.Server, shards)
	for i := 0; i < shards; i++ {
		id := fmt.Sprintf("shard%d", i)
		srv := directory.NewServer(directory.WithClock(clk), directory.WithTTL(100*time.Hour), directory.WithShard(id))
		ln, err := net.Listen(fmt.Sprintf("dir%d", i), srv.Handler())
		if err != nil {
			t.Fatal(err)
		}
		list[i] = controlplane.Shard{ID: id, Addr: ln.Addr()}
		servers[i] = srv
	}
	ctl := controlplane.NewController(list)
	for _, srv := range servers {
		ctl.Subscribe(srv.SetTable)
	}
	if _, err := net.Listen("cp", ctl.Handler()); err != nil {
		t.Fatal(err)
	}
	return &fixture{t: t, net: net, clk: clk, ctl: ctl}
}

// dirClient returns a fresh sharded directory client (followers and
// assertions each get their own, like real processes would).
func (fx *fixture) dirClient() *directory.Client {
	return directory.NewShardedClient(fx.net, "cp")
}

// addNode boots a plain (or, with extra options, replicated) node and
// registers the store-backed slot actions on it.
func (fx *fixture) addNode(user string, opts ...core.Option) *core.Node {
	fx.t.Helper()
	n, err := core.Start(context.Background(), core.Config{
		User:             user,
		Net:              fx.net,
		ControlPlaneAddr: "cp",
		Clock:            fx.clk,
	}, opts...)
	if err != nil {
		fx.t.Fatal(err)
	}
	registerSlotActions(n)
	return n
}

// registerSlotActions gives a node a replicable slot table: unlike the
// in-memory maps of the links tests, the slots live in the node's own
// database, so on a durable node every reserve/release rides the WAL
// to the followers. Table creation tolerates ErrDupTable — on a
// promoted follower the replicated state already has it.
func registerSlotActions(n *core.Node) {
	_, err := n.DB.CreateTable(store.Schema{
		Name: "slots",
		Columns: []store.Column{
			{Name: "entity", Type: store.String},
			{Name: "holder", Type: store.String},
		},
		Key: []string{"entity"},
	})
	if err != nil && !errors.Is(err, store.ErrDupTable) {
		panic(err)
	}
	get := func(entity string) string {
		t, err := n.DB.Table("slots")
		if err != nil {
			return ""
		}
		if r, ok := t.Get(entity); ok {
			return r["holder"].(string)
		}
		return ""
	}
	set := func(entity, holder string) error {
		t, err := n.DB.Table("slots")
		if err != nil {
			return err
		}
		if _, ok := t.Get(entity); ok {
			return t.Update(store.Row{"holder": holder}, entity)
		}
		return t.Insert(store.Row{"entity": entity, "holder": holder})
	}
	n.Links.RegisterAction("reserve", links.Action{
		Check: func(entity string, args wire.Args) error {
			meeting := args.String("meeting")
			if cur := get(entity); cur != "" && cur != meeting {
				return &wire.RemoteError{Code: wire.CodeConflict, Msg: fmt.Sprintf("%s/%s already reserved for %s", n.User, entity, cur)}
			}
			return nil
		},
		Apply: func(entity string, args wire.Args) error {
			return set(entity, args.String("meeting"))
		},
	})
	n.Links.RegisterAction("release", links.Action{
		Apply: func(entity string, args wire.Args) error {
			return set(entity, "")
		},
	})
}

// slotOn reads the slot table directly.
func slotOn(t *testing.T, n *core.Node, entity string) string {
	t.Helper()
	tab, err := n.DB.Table("slots")
	if err != nil {
		t.Fatal(err)
	}
	if r, ok := tab.Get(entity); ok {
		return r["holder"].(string)
	}
	return ""
}

// startFollower boots a standby for x at addr whose PromoteFunc boots
// a full node over the follower's directory and reports it on the
// promoted channel.
func (fx *fixture) startFollower(addr, dataDir string, promoted chan *core.Node) *replication.Follower {
	fx.t.Helper()
	f, err := replication.StartFollower(context.Background(), replication.FollowerConfig{
		User:             "x",
		Net:              fx.net,
		Dir:              fx.dirClient(),
		DataDir:          dataDir,
		ListenAddr:       addr,
		LeaseTTL:         leaseTTL,
		ControlPlaneAddr: "cp",
		Clock:            fx.clk,
		Promote: func(ctx context.Context, holder string) (string, error) {
			n, err := core.Start(ctx, core.Config{
				User:             "x",
				Net:              fx.net,
				ControlPlaneAddr: "cp",
				Clock:            fx.clk,
				DataDir:          dataDir,
				LeaseTTL:         leaseTTL,
				LeaseHolder:      holder,
			})
			if err != nil {
				return "", err
			}
			registerSlotActions(n)
			promoted <- n
			return n.Addr(), nil
		},
	})
	if err != nil {
		fx.t.Fatal(err)
	}
	return f
}

// drainFollowers pulls both followers until they reach the primary's
// log tail.
func drainFollowers(t *testing.T, x *core.Node, fs ...*replication.Follower) {
	t.Helper()
	ctx := context.Background()
	tail := x.Durable.LastLSN()
	for _, f := range fs {
		for i := 0; f.AppliedLSN() < tail; i++ {
			if i > 100 {
				t.Fatalf("follower %s stuck at %d, tail %d", f.Addr(), f.AppliedLSN(), tail)
			}
			if err := f.PullOnce(ctx); err != nil {
				t.Fatalf("pull: %v", err)
			}
		}
	}
}

func TestFailoverRecoversAckedCommits(t *testing.T) {
	fx := newFixture(t)
	ctx := context.Background()

	a := fx.addNode("a")
	b := fx.addNode("b")
	y := fx.addNode("y")
	tun := links.Tuning{RetryBase: 100 * time.Millisecond, PresumeAbortAfter: 30 * time.Second}
	for _, n := range []*core.Node{a, b, y} {
		n.Links.SetTuning(tun)
	}

	x := fx.addNode("x",
		core.WithDurability(t.TempDir(), 0, 0),
		core.WithReplication(leaseTTL, "repl-x-1", "repl-x-2"))
	x.Links.SetTuning(tun)

	promoted := make(chan *core.Node, 2)
	f1 := fx.startFollower("repl-x-1", t.TempDir(), promoted)
	f2 := fx.startFollower("repl-x-2", t.TempDir(), promoted)

	// Acked baseline: a clean negotiation through x and y, replicated
	// to both followers before the fault.
	if _, err := a.Links.Negotiate(ctx, links.Spec{
		Action: "reserve", Args: wire.Args{"meeting": "M0"},
		Targets:    []links.EntityRef{{User: "x", Entity: "s0"}, {User: "y", Entity: "s0"}},
		Constraint: links.And,
	}); err != nil {
		t.Fatal(err)
	}

	// Mid-two-phase-commit: two negotiations race through x
	// concurrently. Coordinator a's Commit to x fails (the crash is
	// about to take x down), so its decided-commit stays journaled;
	// coordinator b's negotiation on another slot completes cleanly.
	a.Links.SetCommitFault(func(nid string, ref links.EntityRef) error {
		if ref.User == "x" {
			return &wire.RemoteError{Code: wire.CodeUnavailable, Msg: "chaos: primary dying"}
		}
		return nil
	})
	var wg sync.WaitGroup
	var errA, errB error
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, errA = a.Links.Negotiate(ctx, links.Spec{
			Action: "reserve", Args: wire.Args{"meeting": "MF"},
			Targets:    []links.EntityRef{{User: "x", Entity: "s1"}, {User: "y", Entity: "s1"}},
			Constraint: links.And,
		})
	}()
	go func() {
		defer wg.Done()
		_, errB = b.Links.Negotiate(ctx, links.Spec{
			Action: "reserve", Args: wire.Args{"meeting": "MB"},
			Targets:    []links.EntityRef{{User: "x", Entity: "s2"}, {User: "y", Entity: "s2"}},
			Constraint: links.And,
		})
	}()
	wg.Wait()
	var inDoubt *links.InDoubtError
	if !errors.As(errA, &inDoubt) {
		t.Fatalf("errA = %v, want in-doubt (commit to x faulted)", errA)
	}
	if errB != nil {
		t.Fatalf("errB = %v", errB)
	}
	if got := len(a.Links.JournalPending()); got == 0 {
		t.Fatal("coordinator a should hold a pending journal row for x")
	}

	// Everything acked-and-durable on x is on the followers before the
	// crash (shipping had caught up; the in-flight commit to x never
	// reached it, so there is nothing newer to ship).
	drainFollowers(t, x, f1, f2)

	// Kill x abruptly: no more renewals, unreachable to everyone. The
	// injected fault has done its job (the commit never reached x);
	// from here the real outage takes over.
	x.Events.Close()
	fx.net.SetDown("node-x", true)
	a.Links.SetCommitFault(nil)
	epoch0 := a.Dir.Epoch()

	// One lease TTL later the followers notice. Both check; the lease
	// check-and-set plus the LSN/address tie-break admit exactly one.
	fx.clk.Advance(leaseTTL + time.Second)
	did2, err := f2.CheckLease(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if did2 {
		t.Fatal("f2 promoted despite f1 being an equal candidate with the lower address")
	}
	did1, err := f1.CheckLease(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !did1 {
		t.Fatal("f1 did not promote")
	}
	x2 := <-promoted

	// The slot state the old x acked is all there: zero acked commits
	// lost, byte-for-byte through the shipped WAL.
	if got := slotOn(t, x2, "s0"); got != "M0" {
		t.Fatalf("s0 on promoted x = %q, want M0", got)
	}
	if got := slotOn(t, x2, "s2"); got != "MB" {
		t.Fatalf("s2 on promoted x = %q, want MB", got)
	}

	// Directory re-pointed in one RPC + epoch bump observed by peers.
	if info, err := a.Dir.LookupUser(ctx, "x"); err != nil || info.Addr != x2.Addr() {
		t.Fatalf("directory points x at %+v (err=%v), want %s", info, err, x2.Addr())
	}
	if e := a.Dir.Epoch(); e <= epoch0 {
		t.Fatalf("epoch = %d, want > %d (bump after promotion)", e, epoch0)
	}

	// Journal redrive: coordinator a's sweeps now reach the promoted
	// backup and drive the in-flight negotiation to a definitive
	// commit (the late-commit path re-locks and re-checks on x2).
	drained := false
	for i := 0; i < 120 && !drained; i++ {
		fx.clk.Advance(time.Second)
		_ = x2.Repl.Renew(ctx)
		drained = true
		for _, n := range []*core.Node{a, b, y, x2} {
			n.Links.FaultSweep(ctx, fx.clk.Now())
			if len(n.Links.JournalPending()) > 0 || n.Links.PendingMarks() > 0 {
				drained = false
			}
		}
	}
	if !drained {
		t.Fatalf("journals/marks did not drain against the promoted backup: a=%v", a.Links.JournalPending())
	}
	sx, sy := slotOn(t, x2, "s1"), slotOn(t, y, "s1")
	if sx != "MF" || sy != "MF" {
		t.Fatalf("in-flight negotiation not driven to commit: x=%q y=%q", sx, sy)
	}

	// Split-brain check: the dead primary's host cannot boot back into
	// the primary role — its lease acquisition hits the promoted
	// holder and Start fails before it re-registers anything.
	fx.net.SetDown("node-x", false)
	_, err = core.Start(ctx, core.Config{
		User: "x", Net: fx.net, ControlPlaneAddr: "cp", Clock: fx.clk,
		DataDir: t.TempDir(), LeaseTTL: leaseTTL,
	})
	if !errors.Is(err, replication.ErrFenced) {
		t.Fatalf("old primary restart err = %v, want ErrFenced (lease conflict)", err)
	}
	if info, err := a.Dir.LookupUser(ctx, "x"); err != nil || info.Addr != x2.Addr() {
		t.Fatalf("restart attempt moved the binding: %+v (err=%v)", info, err)
	}
}

// TestFailoverSweeperPromotesBestFollower drives the control-plane
// path: no follower self-checks; the health sweeper diagnoses the
// dead primary and promotes the follower with the highest applied
// LSN, not the one with the lowest address.
func TestFailoverSweeperPromotesBestFollower(t *testing.T) {
	fx := newFixture(t)
	ctx := context.Background()
	y := fx.addNode("y")

	x := fx.addNode("x",
		core.WithDurability(t.TempDir(), 0, 0),
		core.WithReplication(leaseTTL, "repl-x-1", "repl-x-2"))

	promoted := make(chan *core.Node, 2)
	f1 := fx.startFollower("repl-x-1", t.TempDir(), promoted)
	f2 := fx.startFollower("repl-x-2", t.TempDir(), promoted)

	if _, err := x.Links.Negotiate(ctx, links.Spec{
		Action: "reserve", Args: wire.Args{"meeting": "M1"},
		Targets:    []links.EntityRef{{User: "y", Entity: "s0"}},
		Constraint: links.And,
		Local:      &links.LocalChange{Entity: "s0", Action: "reserve", Args: wire.Args{"meeting": "M1"}},
	}); err != nil {
		t.Fatal(err)
	}
	_ = y

	// Only f2 catches up: it must win promotion despite its higher
	// address.
	drainFollowers(t, x, f2)
	if f2.AppliedLSN() <= f1.AppliedLSN() {
		t.Fatalf("setup: f2 (%d) should be ahead of f1 (%d)", f2.AppliedLSN(), f1.AppliedLSN())
	}

	x.Events.Close()
	fx.net.SetDown("node-x", true)

	sweeper, err := replication.NewSweeper(replication.SweeperConfig{
		Net: fx.net, Dir: fx.dirClient(), Clock: fx.clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Lease still live: the sweep must not touch a healthy replica set.
	if err := sweeper.Sweep(ctx); err != nil {
		t.Fatal(err)
	}
	select {
	case <-promoted:
		t.Fatal("sweeper promoted while the lease was live")
	default:
	}

	fx.clk.Advance(leaseTTL + time.Second)
	if err := sweeper.Sweep(ctx); err != nil {
		t.Fatal(err)
	}
	x2 := <-promoted
	if got := slotOn(t, x2, "s0"); got != "M1" {
		t.Fatalf("promoted node slot = %q, want M1", got)
	}
	lease, err := fx.dirClient().GetLease(ctx, "x")
	if err != nil {
		t.Fatal(err)
	}
	if lease.Holder != "repl-x-2" {
		t.Fatalf("lease holder = %q, want repl-x-2 (the caught-up follower)", lease.Holder)
	}
	if f1.Status().Role != replication.RoleFollower {
		t.Fatal("f1 should still be a follower")
	}
}

// TestFenceRejectsWritesAfterLeaseLoss: once the lease lapses, the
// primary's own conservative window fences every non-replication
// service; a rival acquisition makes the fence permanent.
func TestFenceRejectsWritesAfterLeaseLoss(t *testing.T) {
	fx := newFixture(t)
	ctx := context.Background()

	x := fx.addNode("x",
		core.WithDurability(t.TempDir(), 0, 0),
		core.WithReplication(leaseTTL))
	if !x.Repl.LeaseValid() {
		t.Fatal("fresh primary should hold a valid lease")
	}
	rawCall := func(service, method string, args wire.Args) *transport.Response {
		t.Helper()
		resp, err := fx.net.Call(ctx, "node-x", &transport.Request{Service: service, Method: method, Args: args})
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Serving normally while the lease is good.
	if resp := rawCall(links.ServiceFor("x"), "IsAvailable", wire.Args{"entity": "s0", "action": "reserve"}); !resp.OK {
		t.Fatalf("pre-expiry call: %+v", resp)
	}

	fx.clk.Advance(leaseTTL + time.Second)
	if x.Repl.LeaseValid() {
		t.Fatal("lease should have lapsed locally")
	}
	if resp := rawCall(links.ServiceFor("x"), "IsAvailable", wire.Args{"entity": "s0", "action": "reserve"}); resp.OK || resp.Code != wire.CodeUnavailable {
		t.Fatalf("post-expiry call = %+v, want fenced (unavailable)", resp)
	}
	// Replication traffic still flows: a promoter drains the fenced
	// primary through exactly this path.
	if resp := rawCall(replication.ServiceFor("x"), "Status", wire.Args{}); !resp.OK {
		t.Fatalf("repl status through fence: %+v", resp)
	}

	// A rival takes the expired lease; the old primary's next renewal
	// fences it for good.
	if _, err := fx.dirClient().RenewLease(ctx, "x", "rival", leaseTTL, nil); err != nil {
		t.Fatal(err)
	}
	if err := x.Repl.Renew(ctx); !errors.Is(err, replication.ErrFenced) {
		t.Fatalf("renew after rival takeover = %v, want ErrFenced", err)
	}
	if !x.Repl.Fenced() {
		t.Fatal("primary should be permanently fenced")
	}
	if !strings.Contains(x.Repl.Status().Holder, "node-x") {
		t.Fatalf("status holder = %q", x.Repl.Status().Holder)
	}
}
