package replication_test

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/directory"
	"repro/internal/listener"
	"repro/internal/replication"
	"repro/internal/store"
	"repro/internal/wal"
)

// rawPrimary serves a hand-built Primary (no core node) so tests can
// control the WAL layout — small segments force snapshot bootstrap.
func rawPrimary(t *testing.T, fx *fixture, user string, d *wal.Durable) (*replication.Primary, *directory.Client) {
	t.Helper()
	ctx := context.Background()
	dir := fx.dirClient()
	prim, err := replication.NewPrimary(replication.PrimaryConfig{
		User: user, Durable: d, Dir: dir, Holder: "node-" + user,
		LeaseTTL: leaseTTL, Clock: fx.clk,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := prim.Renew(ctx); err != nil {
		t.Fatal(err)
	}
	lis := listener.New(user, nil)
	lis.Register(replication.ServiceFor(user), prim.Object())
	ln, err := fx.net.Listen("node-"+user, lis)
	if err != nil {
		t.Fatal(err)
	}
	if err := dir.RegisterUser(ctx, user, ln.Addr(), 0); err != nil {
		t.Fatal(err)
	}
	return prim, dir
}

// TestFollowerSnapshotBootstrap: a follower joining after the primary
// has checkpointed away the early log must bootstrap from a snapshot,
// then catch up the tail incrementally.
func TestFollowerSnapshotBootstrap(t *testing.T) {
	fx := newFixture(t)
	ctx := context.Background()

	d, err := wal.Open(t.TempDir(), wal.Options{Sync: wal.SyncNone, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	tbl := d.DB.MustCreateTable(store.Schema{
		Name:    "slots",
		Columns: []store.Column{{Name: "entity", Type: store.String}, {Name: "holder", Type: store.String}},
		Key:     []string{"entity"},
	})
	insert := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			if err := tbl.Insert(store.Row{"entity": fmt.Sprintf("e%d-%d", d.LastLSN(), i), "holder": "m"}); err != nil {
				t.Fatal(err)
			}
		}
	}
	insert(50)
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	insert(50)
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	insert(5)

	_, _ = rawPrimary(t, fx, "p", d)
	f, err := replication.StartFollower(ctx, replication.FollowerConfig{
		User: "p", Net: fx.net, Dir: fx.dirClient(), DataDir: t.TempDir(),
		ListenAddr: "repl-p-1", LeaseTTL: leaseTTL, Clock: fx.clk,
		Promote: func(context.Context, string) (string, error) {
			t.Error("unexpected promotion")
			return "", nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// First pull cannot read from LSN 1 (trimmed) — it must take the
	// snapshot path, then tail pulls finish the job.
	for i := 0; f.AppliedLSN() < d.LastLSN(); i++ {
		if i > 50 {
			t.Fatalf("stuck at %d, tail %d", f.AppliedLSN(), d.LastLSN())
		}
		if err := f.PullOnce(ctx); err != nil {
			t.Fatal(err)
		}
	}
	st := f.Status()
	if st.Snapshots != 1 {
		t.Fatalf("snapshots = %d, want exactly one bootstrap", st.Snapshots)
	}
	if st.Role != replication.RoleFollower || st.User != "p" {
		t.Fatalf("status = %+v", st)
	}

	// Byte-identical store state: every row the primary holds.
	want, err := d.DB.Table("slots")
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.Receiver().DB().Table("slots")
	if err != nil {
		t.Fatal(err)
	}
	if wr, gr := want.Count(), got.Count(); wr != gr {
		t.Fatalf("follower has %d rows, primary %d", gr, wr)
	}

	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}

// TestFollowerSelfDrivenLoops: PullEvery/LeaseCheckEvery run the
// follower's own loops (the sydnode -replica-of mode). The loops wait
// on the injected clock, so the test pumps the fake clock to tick them.
func TestFollowerSelfDrivenLoops(t *testing.T) {
	fx := newFixture(t)
	d, err := wal.Open(t.TempDir(), wal.Options{Sync: wal.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	tbl := d.DB.MustCreateTable(store.Schema{
		Name:    "slots",
		Columns: []store.Column{{Name: "entity", Type: store.String}, {Name: "holder", Type: store.String}},
		Key:     []string{"entity"},
	})
	if err := tbl.Insert(store.Row{"entity": "s0", "holder": "m"}); err != nil {
		t.Fatal(err)
	}
	rawPrimary(t, fx, "p", d)

	f, err := replication.StartFollower(context.Background(), replication.FollowerConfig{
		User: "p", Net: fx.net, Dir: fx.dirClient(), DataDir: t.TempDir(),
		LeaseTTL: leaseTTL, Clock: fx.clk,
		PullEvery: time.Millisecond, LeaseCheckEvery: time.Millisecond,
		Promote: func(context.Context, string) (string, error) {
			t.Error("unexpected promotion (lease is live)")
			return "", nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if f.Addr() == "" {
		t.Fatal("follower should have a bound address")
	}
	deadline := time.Now().Add(5 * time.Second)
	for f.AppliedLSN() < d.LastLSN() {
		if time.Now().After(deadline) {
			t.Fatalf("pull loop never caught up: %d < %d", f.AppliedLSN(), d.LastLSN())
		}
		fx.clk.Advance(time.Millisecond) // tick the pull loop
		time.Sleep(time.Millisecond)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestFollowerSelfDrivenPromotion: promotion fired from the follower's
// own lease-watch loop (the sydnode -replica-of mode). Regression: the
// loop hands CheckLease its loop context, which PromoteNow cancels
// mid-promotion — the boot must run on a detached context or the
// promoted node dies before it starts.
func TestFollowerSelfDrivenPromotion(t *testing.T) {
	fx := newFixture(t)
	d, err := wal.Open(t.TempDir(), wal.Options{Sync: wal.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	rawPrimary(t, fx, "p", d)

	booted := make(chan string, 1)
	f, err := replication.StartFollower(context.Background(), replication.FollowerConfig{
		User: "p", Net: fx.net, Dir: fx.dirClient(), DataDir: t.TempDir(),
		ListenAddr: "repl-p-1", LeaseTTL: leaseTTL, Clock: fx.clk,
		PullEvery: time.Millisecond, LeaseCheckEvery: time.Millisecond,
		Logf: t.Logf,
		Promote: func(ctx context.Context, holder string) (string, error) {
			// The real PromoteFunc boots core.Start, whose directory
			// RPCs fail instantly on a dead context.
			if err := ctx.Err(); err != nil {
				return "", fmt.Errorf("promotion ran on a dead context: %w", err)
			}
			if err := fx.dirClient().RegisterUser(ctx, "p", "node-p2", 0); err != nil {
				return "", err
			}
			booted <- holder
			return "node-p2", nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	// Expire the lease, then keep ticking the fake clock so the
	// lease-watch loop (which waits on it) observes the expiry.
	fx.clk.Advance(leaseTTL + time.Second)
	var holder string
	deadline := time.Now().Add(5 * time.Second)
waitBoot:
	for {
		select {
		case holder = <-booted:
			break waitBoot
		default:
			if time.Now().After(deadline) {
				t.Fatal("lease-watch loop never promoted")
			}
			fx.clk.Advance(time.Millisecond)
			time.Sleep(time.Millisecond)
		}
	}
	if holder != "repl-p-1" {
		t.Fatalf("promoted under holder %q, want repl-p-1", holder)
	}
	info, err := fx.dirClient().LookupUser(context.Background(), "p")
	if err != nil {
		t.Fatal(err)
	}
	if info.Addr != "node-p2" {
		t.Fatalf("directory points at %q after promotion, want node-p2", info.Addr)
	}
}

// TestCheckLeaseBranches: no lease registered → no-op; live lease →
// no-op; grace window defers promotion by one observation.
func TestCheckLeaseBranches(t *testing.T) {
	fx := newFixture(t)
	ctx := context.Background()
	grace := 5 * time.Second

	d, err := wal.Open(t.TempDir(), wal.Options{Sync: wal.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	promoted := 0
	f, err := replication.StartFollower(ctx, replication.FollowerConfig{
		User: "p", Net: fx.net, Dir: fx.dirClient(), DataDir: t.TempDir(),
		ListenAddr: "repl-p-1", LeaseTTL: leaseTTL, Clock: fx.clk, Grace: grace,
		Promote: func(context.Context, string) (string, error) {
			promoted++
			return "node-p2", nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// No lease in the directory at all: nothing to do.
	if did, err := f.CheckLease(ctx); err != nil || did {
		t.Fatalf("no-lease check = (%v, %v), want (false, nil)", did, err)
	}

	rawPrimary(t, fx, "p", d)
	if did, err := f.CheckLease(ctx); err != nil || did {
		t.Fatalf("live-lease check = (%v, %v), want (false, nil)", did, err)
	}

	// Expired, but inside the grace window: first observation arms the
	// timer, promotion waits.
	fx.clk.Advance(leaseTTL + time.Second)
	if did, err := f.CheckLease(ctx); err != nil || did {
		t.Fatalf("grace-window check = (%v, %v), want (false, nil)", did, err)
	}
	fx.clk.Advance(grace + time.Second)
	did, err := f.CheckLease(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !did || promoted != 1 {
		t.Fatalf("post-grace check = %v (promotions %d), want promotion", did, promoted)
	}
	// Already promoted: further checks are no-ops.
	if did, err := f.CheckLease(ctx); err != nil || did {
		t.Fatalf("post-promotion check = (%v, %v), want (false, nil)", did, err)
	}
}

// TestSweeperEdges: a live lease resets grace tracking; an expired
// lease with no recorded replicas is a loud per-user error; Start runs
// the loop until canceled.
func TestSweeperEdges(t *testing.T) {
	fx := newFixture(t)
	ctx := context.Background()
	dir := fx.dirClient()

	// An expired lease with no replicas: remediation cannot help.
	if _, err := dir.RenewLease(ctx, "solo", "node-solo", leaseTTL, nil); err != nil {
		t.Fatal(err)
	}
	sweeper, err := replication.NewSweeper(replication.SweeperConfig{
		Net: fx.net, Dir: dir, Clock: fx.clk, Grace: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sweeper.Sweep(ctx); err != nil {
		t.Fatalf("live lease should sweep clean: %v", err)
	}
	fx.clk.Advance(leaseTTL + time.Second)
	// First expired observation arms the grace timer.
	if err := sweeper.Sweep(ctx); err != nil {
		t.Fatalf("grace window should defer remediation: %v", err)
	}
	fx.clk.Advance(3 * time.Second)
	err = sweeper.Sweep(ctx)
	if err == nil || !strings.Contains(err.Error(), "no replicas") {
		t.Fatalf("sweep = %v, want a no-replicas error for solo", err)
	}

	// Start/cancel wiring.
	lctx, cancel := context.WithCancel(ctx)
	sweeper.Start(lctx, time.Millisecond)
	time.Sleep(5 * time.Millisecond)
	cancel()
}

// TestConfigValidation covers the constructor guard rails.
func TestConfigValidation(t *testing.T) {
	fx := newFixture(t)
	dir := fx.dirClient()
	d, err := wal.Open(t.TempDir(), wal.Options{Sync: wal.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	primaryCases := []replication.PrimaryConfig{
		{},
		{User: "p"},
		{User: "p", Durable: d},
		{User: "p", Durable: d, Dir: dir},
		{User: "p", Durable: d, Dir: dir, LeaseTTL: time.Second},
	}
	for i, cfg := range primaryCases {
		if _, err := replication.NewPrimary(cfg); err == nil {
			t.Errorf("NewPrimary case %d: expected a validation error", i)
		}
	}
	if _, err := replication.NewSweeper(replication.SweeperConfig{}); err == nil {
		t.Error("NewSweeper without Net should fail")
	}
	if _, err := replication.NewSweeper(replication.SweeperConfig{Net: fx.net}); err == nil {
		t.Error("NewSweeper without Dir should fail")
	}
	followerCases := []replication.FollowerConfig{
		{},
		{User: "p"},
		{User: "p", Net: fx.net},
		{User: "p", Net: fx.net, Dir: dir},
		{User: "p", Net: fx.net, Dir: dir, DataDir: "x"},
		{User: "p", Net: fx.net, Dir: dir, DataDir: "x", LeaseTTL: time.Second},
	}
	for i, cfg := range followerCases {
		if _, err := replication.StartFollower(context.Background(), cfg); err == nil {
			t.Errorf("StartFollower case %d: expected a validation error", i)
		}
	}
}
