package replication

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/controlplane"
	"repro/internal/directory"
	"repro/internal/listener"
	"repro/internal/metrics"
	"repro/internal/transport"
	"repro/internal/wal"
	"repro/internal/wire"
)

// DefaultCheckpointBytes is the follower checkpoint threshold.
const DefaultCheckpointBytes = 4 << 20

// PromoteFunc boots this follower's data directory as a full serving
// node and returns its bound address. holder is the lease identity
// the follower won promotion under — the booted node must renew with
// the same holder id (core.Config.LeaseHolder) or it will fence
// itself on its own lease.
type PromoteFunc func(ctx context.Context, holder string) (addr string, err error)

// FollowerConfig describes one warm standby.
type FollowerConfig struct {
	// User is the replicated identity this follower shadows (required).
	User string
	// Net is the deployment transport (required).
	Net transport.Network
	// Dir reads the lease and looks up the primary (required).
	Dir *directory.Client
	// DataDir is the follower's WAL directory (required). On promotion
	// it becomes the new primary's DataDir.
	DataDir string
	// ListenAddr is the address to serve Status/Promote on; it must be
	// the address the primary lists in Replicas. Empty lets the
	// transport pick.
	ListenAddr string
	// LeaseTTL is the lease duration used when promoting (required > 0).
	LeaseTTL time.Duration
	// Promote boots the promoted node (required).
	Promote PromoteFunc
	// ControlPlaneAddr, when set, bumps the shard-map epoch after a
	// promotion re-points the directory, so every client flushes its
	// warm route caches immediately instead of waiting out TTLs.
	ControlPlaneAddr string
	// Clock drives loops; nil = system clock.
	Clock clock.Clock
	// Metrics, when set, records shipping observations under LayerRepl.
	Metrics *metrics.Registry
	// PullMaxBytes is the per-pull byte budget (DefaultPullMaxBytes
	// when 0).
	PullMaxBytes int
	// CheckpointBytes is the follower checkpoint threshold
	// (DefaultCheckpointBytes when 0).
	CheckpointBytes int64
	// PullEvery and LeaseCheckEvery, when > 0, run the pull and
	// lease-watch loops, timed through Clock. Tests leave them 0 and
	// drive PullOnce/CheckLease by hand.
	PullEvery       time.Duration
	LeaseCheckEvery time.Duration
	// Grace delays promotion past lease expiry (0 = promote as soon as
	// the lease is seen expired).
	Grace time.Duration
	// Logf, when set, reports background-loop failures (lease-check and
	// promotion errors that would otherwise be invisible to operators).
	Logf func(format string, args ...any)
}

// Follower is a warm standby: it pulls WAL frames from the primary,
// applies them to its own durable copy, and promotes itself when the
// primary's lease expires and it is the best-caught-up candidate.
type Follower struct {
	cfg FollowerConfig
	clk clock.Clock
	r   *wal.Receiver
	ln  transport.Listener
	cp  *controlplane.Client // nil without ControlPlaneAddr

	mu         sync.Mutex
	shippedLSN uint64 // primary tail as of last pull
	lagBytes   int64
	pulls      uint64
	snapshots  uint64
	badBatches uint64
	expiredAt  time.Time // first observation of the expired lease (grace timer)
	promoted   bool
	closed     bool

	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// StartFollower opens (or resumes) the follower's data directory and
// starts serving Status/Promote at cfg.ListenAddr. With PullEvery and
// LeaseCheckEvery set it drives itself; otherwise the caller drives
// PullOnce/CheckLease.
func StartFollower(ctx context.Context, cfg FollowerConfig) (*Follower, error) {
	switch {
	case cfg.User == "":
		return nil, fmt.Errorf("replication: FollowerConfig.User is required")
	case cfg.Net == nil:
		return nil, fmt.Errorf("replication: FollowerConfig.Net is required")
	case cfg.Dir == nil:
		return nil, fmt.Errorf("replication: FollowerConfig.Dir is required")
	case cfg.DataDir == "":
		return nil, fmt.Errorf("replication: FollowerConfig.DataDir is required")
	case cfg.LeaseTTL <= 0:
		return nil, fmt.Errorf("replication: FollowerConfig.LeaseTTL must be positive")
	case cfg.Promote == nil:
		return nil, fmt.Errorf("replication: FollowerConfig.Promote is required")
	}
	if cfg.PullMaxBytes <= 0 {
		cfg.PullMaxBytes = DefaultPullMaxBytes
	}
	if cfg.CheckpointBytes <= 0 {
		cfg.CheckpointBytes = DefaultCheckpointBytes
	}
	clk := cfg.Clock
	if clk == nil {
		clk = clock.System
	}
	r, err := wal.OpenReceiver(cfg.DataDir)
	if err != nil {
		return nil, err
	}
	f := &Follower{cfg: cfg, clk: clk, r: r}
	if cfg.ControlPlaneAddr != "" {
		f.cp = controlplane.NewClient(cfg.Net, cfg.ControlPlaneAddr)
	}

	lis := listener.New(cfg.User+"+follower", nil)
	lis.Register(ServiceFor(cfg.User), f.object())
	addr := cfg.ListenAddr
	if addr == "" {
		addr = ":0"
	}
	ln, err := cfg.Net.Listen(addr, lis)
	if err != nil {
		r.Close()
		return nil, fmt.Errorf("replication: follower listen: %w", err)
	}
	f.ln = ln

	if cfg.PullEvery > 0 || cfg.LeaseCheckEvery > 0 {
		loopCtx, cancel := context.WithCancel(context.Background())
		f.cancel = cancel
		if cfg.PullEvery > 0 {
			f.loop(loopCtx, cfg.PullEvery, func(c context.Context) { _ = f.PullOnce(c) })
		}
		if cfg.LeaseCheckEvery > 0 {
			f.loop(loopCtx, cfg.LeaseCheckEvery, func(c context.Context) {
				if _, err := f.CheckLease(c); err != nil {
					f.logf("replication: %s lease check: %v", f.cfg.User, err)
				}
			})
		}
	}
	return f, nil
}

// logf reports a background failure through cfg.Logf, if set.
func (f *Follower) logf(format string, args ...any) {
	if f.cfg.Logf != nil {
		f.cfg.Logf(format, args...)
	}
}

// loop runs fn every interval until ctx is done, timing the waits
// through the follower's clock so a fake (or auto-advancing) clock
// compresses pull/lease cadences in simulation.
func (f *Follower) loop(ctx context.Context, every time.Duration, fn func(context.Context)) {
	f.wg.Add(1)
	clock.LoopGo(ctx, f.clk, every, fn, f.wg.Done)
}

// Addr returns the follower's bound address — the identity the
// primary should list in Replicas.
func (f *Follower) Addr() string { return f.ln.Addr() }

// AppliedLSN reports the highest LSN durably applied locally.
func (f *Follower) AppliedLSN() uint64 { return f.r.AppliedLSN() }

// Receiver exposes the underlying WAL receiver (read-mostly: tests
// inspect the replicated database through it).
func (f *Follower) Receiver() *wal.Receiver { return f.r }

// Status snapshots the follower's replication state.
func (f *Follower) Status() Status {
	f.mu.Lock()
	defer f.mu.Unlock()
	return Status{
		User:       f.cfg.User,
		Role:       RoleFollower,
		Holder:     f.holder(),
		ShippedLSN: f.shippedLSN,
		AppliedLSN: f.r.AppliedLSN(),
		LagBytes:   f.lagBytes,
		Pulls:      f.pulls,
		Snapshots:  f.snapshots,
		BadBatches: f.badBatches,
	}
}

// holder is the lease identity this follower promotes under.
func (f *Follower) holder() string { return f.ln.Addr() }

// object serves the follower side of repl.<user>: Status for peer
// comparison and the sweeper, Promote for sweeper-initiated failover.
func (f *Follower) object() *listener.Object {
	obj := listener.NewObject()
	obj.Handle("Status", func(ctx context.Context, call *listener.Call) (any, error) {
		return f.Status(), nil
	})
	obj.Handle("Promote", func(ctx context.Context, call *listener.Call) (any, error) {
		if err := f.PromoteNow(ctx); err != nil {
			return nil, err
		}
		return true, nil
	})
	return obj
}

// PullOnce performs one shipping round: ask the primary for frames
// above the local applied LSN, append-and-apply them, and fall back
// to snapshot bootstrap when the primary has already trimmed that
// far. A verification failure (torn/corrupt/out-of-sequence batch)
// rejects the whole batch and leaves the applied LSN unchanged — the
// next round simply re-requests the same range.
func (f *Follower) PullOnce(ctx context.Context) error {
	primaryAddr, err := f.primaryAddr(ctx)
	if err != nil {
		return err
	}
	from := f.r.AppliedLSN() + 1
	start := time.Now()
	var reply pullReply
	err = call(ctx, f.cfg.Net, primaryAddr, f.cfg.User, "Pull",
		wire.Args{"from": int64(from), "max": f.cfg.PullMaxBytes}, &reply)
	if err != nil {
		f.observe("pull", wire.CodeOf(err), time.Since(start))
		return err
	}
	f.mu.Lock()
	f.pulls++
	f.shippedLSN = reply.TailLSN
	f.mu.Unlock()

	if reply.Snapshot {
		return f.bootstrap(ctx, primaryAddr)
	}
	if len(reply.Frames) > 0 {
		if _, err := f.r.AppendFrames(reply.Frames); err != nil {
			if errors.Is(err, wal.ErrBadFrames) {
				f.mu.Lock()
				f.badBatches++
				f.mu.Unlock()
				f.observe("apply", wire.CodeBadArgs, time.Since(start))
			}
			return err
		}
	}
	f.mu.Lock()
	f.lagBytes = reply.Remaining
	f.mu.Unlock()
	f.observe("pull", wire.CodeOK, time.Since(start))
	if _, err := f.r.MaybeCheckpoint(f.cfg.CheckpointBytes); err != nil {
		return err
	}
	return nil
}

// bootstrap replaces local state with a primary snapshot; the next
// pull resumes from its LSN.
func (f *Follower) bootstrap(ctx context.Context, primaryAddr string) error {
	start := time.Now()
	var reply snapshotReply
	if err := call(ctx, f.cfg.Net, primaryAddr, f.cfg.User, "Snapshot", wire.Args{}, &reply); err != nil {
		f.observe("snapshot", wire.CodeOf(err), time.Since(start))
		return err
	}
	if err := f.r.InstallSnapshot(reply.Data, reply.LSN); err != nil {
		f.observe("snapshot", wire.CodeInternal, time.Since(start))
		return err
	}
	f.mu.Lock()
	f.snapshots++
	f.mu.Unlock()
	f.observe("snapshot", wire.CodeOK, time.Since(start))
	return nil
}

// primaryAddr resolves the current primary's address.
func (f *Follower) primaryAddr(ctx context.Context) (string, error) {
	info, err := f.cfg.Dir.LookupUser(ctx, f.cfg.User)
	if err != nil {
		return "", fmt.Errorf("replication: resolve primary: %w", err)
	}
	return info.Addr, nil
}

// CheckLease reads the lease and promotes this follower if the lease
// is expired (past Grace) and no better-caught-up peer exists.
// Returns whether promotion ran.
func (f *Follower) CheckLease(ctx context.Context) (bool, error) {
	f.mu.Lock()
	if f.promoted || f.closed {
		f.mu.Unlock()
		return false, nil
	}
	f.mu.Unlock()

	lease, err := f.cfg.Dir.GetLease(ctx, f.cfg.User)
	if wire.CodeOf(err) == wire.CodeNoService {
		return false, nil // not replicated (yet); nothing to watch
	}
	if err != nil {
		return false, err
	}
	if !lease.Expired {
		f.mu.Lock()
		f.expiredAt = time.Time{}
		f.mu.Unlock()
		return false, nil
	}
	if f.cfg.Grace > 0 {
		now := f.clk.Now()
		f.mu.Lock()
		if f.expiredAt.IsZero() {
			f.expiredAt = now
		}
		wait := now.Sub(f.expiredAt) < f.cfg.Grace
		f.mu.Unlock()
		if wait {
			return false, nil
		}
	}
	if !f.bestCandidate(ctx, lease.Replicas) {
		return false, nil
	}
	if err := f.PromoteNow(ctx); err != nil {
		return false, err
	}
	return true, nil
}

// bestCandidate compares this follower's applied LSN against the
// other replicas in the lease record. Highest applied LSN wins;
// ties break to the lexicographically lowest address; an unreachable
// peer is never better.
func (f *Follower) bestCandidate(ctx context.Context, replicas []string) bool {
	self := f.ln.Addr()
	mine := f.r.AppliedLSN()
	peers := append([]string(nil), replicas...)
	sort.Strings(peers)
	for _, addr := range peers {
		if addr == self {
			continue
		}
		st, err := peerStatus(ctx, f.cfg.Net, addr, f.cfg.User)
		if err != nil {
			continue // unreachable peer cannot outrank us
		}
		if st.AppliedLSN > mine || (st.AppliedLSN == mine && addr < self) {
			return false
		}
	}
	return true
}

// PromoteNow promotes this follower: win the expired lease (the
// single safety gate — losing the race aborts), drain any frames the
// fenced primary can still serve, seal the local WAL directory, and
// boot it as the new serving node. The directory is then re-pointed
// in one RPC so clients resolve the new primary immediately.
func (f *Follower) PromoteNow(ctx context.Context) error {
	f.mu.Lock()
	if f.promoted {
		f.mu.Unlock()
		return nil
	}
	if f.closed {
		f.mu.Unlock()
		return fmt.Errorf("replication: follower closed")
	}
	f.mu.Unlock()

	holder := f.holder()
	start := time.Now()
	if _, err := f.cfg.Dir.RenewLease(ctx, f.cfg.User, holder, f.cfg.LeaseTTL, nil); err != nil {
		f.observe("promote", wire.CodeOf(err), time.Since(start))
		return fmt.Errorf("replication: promotion lease: %w", err)
	}

	// Best-effort final drain: the old primary (now fenced by our
	// lease) still serves Pull, so any acked frames it wrote reach us
	// before we seal the directory. Errors are expected — it may
	// simply be dead.
	_ = f.PullOnce(ctx)

	// Past this point promotion must run to completion: the lease-watch
	// loop invokes CheckLease with its own loop context, which f.cancel
	// below cancels — and a half-promoted follower (lease won, WAL
	// sealed) cannot resume following. Detach from any caller cancel.
	ctx = context.WithoutCancel(ctx)

	f.mu.Lock()
	f.promoted = true
	f.closed = true
	f.mu.Unlock()
	if err := f.r.Close(); err != nil {
		return fmt.Errorf("replication: seal follower wal: %w", err)
	}
	if f.cancel != nil {
		f.cancel()
	}
	_ = f.ln.Close()

	addr, err := f.cfg.Promote(ctx, holder)
	if err != nil {
		f.observe("promote", wire.CodeInternal, time.Since(start))
		// The WAL is sealed and the lease is won: this follower cannot
		// resume following. Say so loudly — restarting the process over
		// the same data directory is the recovery path.
		f.logf("replication: %s promotion failed after winning the lease; restart this follower: %v", f.cfg.User, err)
		return fmt.Errorf("replication: boot promoted node: %w", err)
	}
	// One RPC re-points the user record and every service it owns —
	// no waiting out directory TTLs (the promoted node's own
	// registrations cover its kernel services; this covers the rest).
	if err := f.cfg.Dir.Repoint(ctx, f.cfg.User, addr); err != nil {
		return fmt.Errorf("replication: repoint: %w", err)
	}
	// Epoch bump: every client's next directory response flushes its
	// route caches, so warm routes to the dead primary die now. Best
	// effort — TTLs still converge without it.
	if f.cp != nil {
		_, _ = f.cp.Bump(ctx)
	}
	f.observe("promote", wire.CodeOK, time.Since(start))
	return nil
}

// Close stops the loops and seals the follower's WAL directory.
// Idempotent; a promoted follower is already closed.
func (f *Follower) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		f.wg.Wait()
		return nil
	}
	f.closed = true
	f.mu.Unlock()
	if f.cancel != nil {
		f.cancel()
	}
	_ = f.ln.Close()
	err := f.r.Close()
	f.wg.Wait()
	return err
}

// observe records one replication observation when metrics are wired.
func (f *Follower) observe(method string, code wire.ErrCode, d time.Duration) {
	if f.cfg.Metrics != nil {
		f.cfg.Metrics.Observe(metrics.LayerRepl, "repl", method, code, d)
	}
}
