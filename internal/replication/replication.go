// Package replication adds warm standbys to a SyD node: the primary
// streams its committed WAL frames (and bootstrap snapshots) to
// followers, a directory-arbitrated lease decides who may act as
// primary, and a health sweeper promotes the best-caught-up follower
// when a primary dies. The paper's prototype leaned on Oracle for
// durability and availability (§5.3); this package supplies the
// availability half on top of the repo's own WAL.
//
// Safety argument, in brief:
//
//   - The directory is the single lease arbiter and expiry is computed
//     on ITS clock — holders never compare their own clocks to the
//     deadline, they only observe renewal success or CodeConflict.
//   - The primary stamps its local validity window from the clock
//     reading taken BEFORE each renewal RPC is sent, so its local
//     fence always trips no later than the directory-side expiry.
//   - A follower promotes only by winning the expired lease
//     (check-and-set on the directory), and a restarted old primary
//     cannot boot past its initial synchronous renewal while another
//     node holds the lease.
package replication

import (
	"context"
	"time"

	"repro/internal/transport"
	"repro/internal/wire"
)

// ServicePrefix namespaces replication device objects.
const ServicePrefix = "repl."

// ServiceFor names the replication service of user's node. The
// primary serves Pull/Snapshot/Status under it; a follower serves
// Status/Promote under the same name at its own address.
func ServiceFor(user string) string { return ServicePrefix + user }

// Role is a node's position in a replica set.
type Role string

// Roles.
const (
	RolePrimary  Role = "primary"
	RoleFollower Role = "follower"
)

// Status is one node's replication state — served over the Status
// RPC, the /replication debug endpoint, and follower peer comparison
// during promotion.
type Status struct {
	User   string `json:"user"`
	Role   Role   `json:"role"`
	Holder string `json:"holder"`
	// LeaseGoodUntil is the primary's conservative local validity
	// window (zero on followers).
	LeaseGoodUntil time.Time `json:"leaseGoodUntil,omitempty"`
	// LeaseValid reports whether the primary may serve (always false
	// once fenced); on followers it is false.
	LeaseValid bool `json:"leaseValid"`
	// Fenced is set once the primary has lost its lease for good.
	Fenced bool `json:"fenced,omitempty"`
	// ShippedLSN is the primary's log tail: its own LastLSN on a
	// primary, the tail last reported by Pull on a follower.
	ShippedLSN uint64 `json:"shippedLSN"`
	// AppliedLSN is the highest LSN durably applied locally (equals
	// ShippedLSN on a primary).
	AppliedLSN uint64 `json:"appliedLSN"`
	// LagBytes is the follower's byte lag behind the primary's tail as
	// of its last pull (0 on a primary).
	LagBytes int64 `json:"lagBytes"`
	// Pulls, Snapshots, BadBatches count follower pull traffic
	// (served-pull count on a primary).
	Pulls      uint64 `json:"pulls"`
	Snapshots  uint64 `json:"snapshots"`
	BadBatches uint64 `json:"badBatches"`
}

// pullReply is the wire shape of the Pull RPC result.
type pullReply struct {
	// Frames holds raw WAL frames [from..Last], byte-identical to the
	// primary's segments. Empty when the follower is caught up.
	Frames []byte `json:"frames,omitempty"`
	// Last is the LSN of the last shipped frame (from-1 when none).
	Last uint64 `json:"last"`
	// TailLSN is the primary's current log tail, for lag reporting.
	TailLSN uint64 `json:"tailLSN"`
	// Remaining counts complete-frame bytes above Last still on the
	// primary's disk.
	Remaining int64 `json:"remaining"`
	// Snapshot reports that from is already trimmed: the follower must
	// bootstrap via the Snapshot RPC instead.
	Snapshot bool `json:"snapshot,omitempty"`
}

// snapshotReply is the wire shape of the Snapshot RPC result.
type snapshotReply struct {
	Data []byte `json:"data"`
	LSN  uint64 `json:"lsn"`
}

// call performs one raw replication RPC against addr (followers and
// the sweeper address peers directly — replica addresses come from
// the lease record, not from directory resolution).
func call(ctx context.Context, net transport.Network, addr, user, method string, args wire.Args, out any) error {
	resp, err := net.Call(ctx, addr, &transport.Request{
		Service: ServiceFor(user),
		Method:  method,
		Args:    args,
	})
	if err != nil {
		return err
	}
	if !resp.OK {
		return &wire.RemoteError{Code: resp.Code, Service: ServiceFor(user), Method: method, Msg: resp.Error}
	}
	if out != nil {
		return wire.Unmarshal(resp.Result, out)
	}
	return nil
}

// peerStatus fetches the replication status served at addr.
func peerStatus(ctx context.Context, net transport.Network, addr, user string) (Status, error) {
	var st Status
	err := call(ctx, net, addr, user, "Status", wire.Args{}, &st)
	return st, err
}
