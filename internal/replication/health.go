package replication

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/directory"
	"repro/internal/transport"
	"repro/internal/wire"
)

// SweeperConfig describes the control-plane health sweep.
type SweeperConfig struct {
	// Net is the deployment transport (required).
	Net transport.Network
	// Dir lists leases and resolves primaries (required).
	Dir *directory.Client
	// Clock times the grace window; nil = system clock.
	Clock clock.Clock
	// Grace delays remediation past lease expiry, giving a slow-but-
	// alive primary one more renewal window before the sweeper forces
	// a promotion (0 = remediate immediately).
	Grace time.Duration
	// Logf, when set, reports sweep failures from the Start loop (a
	// dead replica set that cannot be remediated is operator news).
	Logf func(format string, args ...any)
}

// Sweeper watches every replication lease from the control plane
// side: when a lease has expired and the recorded primary is
// unreachable, it picks the best-caught-up follower and tells it to
// promote. Followers also self-promote via their own lease watch —
// the sweeper is the backstop for follower sets whose watchers died
// with the primary's network segment, and the lease check-and-set
// makes the two paths race-safe.
type Sweeper struct {
	cfg SweeperConfig
	clk clock.Clock

	mu        sync.Mutex
	expiredAt map[string]time.Time // user → first expiry observation
}

// NewSweeper validates cfg and builds a sweeper.
func NewSweeper(cfg SweeperConfig) (*Sweeper, error) {
	if cfg.Net == nil {
		return nil, fmt.Errorf("replication: SweeperConfig.Net is required")
	}
	if cfg.Dir == nil {
		return nil, fmt.Errorf("replication: SweeperConfig.Dir is required")
	}
	clk := cfg.Clock
	if clk == nil {
		clk = clock.System
	}
	return &Sweeper{cfg: cfg, clk: clk, expiredAt: make(map[string]time.Time)}, nil
}

// Sweep makes one pass over every lease, remediating each expired one
// whose primary is truly gone. Per-lease failures are joined, not
// fatal — one dead replica set must not shadow another's recovery.
func (s *Sweeper) Sweep(ctx context.Context) error {
	leases, err := s.cfg.Dir.ListLeases(ctx)
	if err != nil {
		return fmt.Errorf("replication: sweep: %w", err)
	}
	var errs []error
	now := s.clk.Now()
	for _, lease := range leases {
		if !lease.Expired {
			s.mu.Lock()
			delete(s.expiredAt, lease.User)
			s.mu.Unlock()
			continue
		}
		if s.cfg.Grace > 0 {
			s.mu.Lock()
			first, seen := s.expiredAt[lease.User]
			if !seen {
				s.expiredAt[lease.User] = now
			}
			s.mu.Unlock()
			if !seen || now.Sub(first) < s.cfg.Grace {
				continue
			}
		}
		if err := s.remediate(ctx, lease); err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", lease.User, err))
		}
	}
	return errors.Join(errs...)
}

// remediate handles one expired lease: skip if the recorded primary
// still answers (it will renew on its own or fence itself), otherwise
// promote the best-caught-up reachable follower.
func (s *Sweeper) remediate(ctx context.Context, lease directory.LeaseInfo) error {
	// Diagnose: is the registered primary actually gone?
	if info, err := s.cfg.Dir.LookupUser(ctx, lease.User); err == nil {
		if st, err := peerStatus(ctx, s.cfg.Net, info.Addr, lease.User); err == nil && st.Role == RolePrimary && !st.Fenced {
			return nil // alive; renewal is its problem, not ours
		}
	}
	if len(lease.Replicas) == 0 {
		return fmt.Errorf("lease expired and no replicas recorded")
	}

	// Pick the best candidate: highest applied LSN, ties to the
	// lowest address. Unreachable followers are out.
	type candidate struct {
		addr    string
		applied uint64
	}
	var cands []candidate
	for _, addr := range lease.Replicas {
		st, err := peerStatus(ctx, s.cfg.Net, addr, lease.User)
		if err != nil || st.Role != RoleFollower {
			continue
		}
		cands = append(cands, candidate{addr: addr, applied: st.AppliedLSN})
	}
	if len(cands) == 0 {
		return fmt.Errorf("lease expired and no follower reachable")
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].applied != cands[j].applied {
			return cands[i].applied > cands[j].applied
		}
		return cands[i].addr < cands[j].addr
	})

	// The follower re-verifies by winning the lease; two sweepers (or
	// a sweeper racing a self-promoting follower) converge on one
	// winner.
	if err := call(ctx, s.cfg.Net, cands[0].addr, lease.User, "Promote", wire.Args{}, nil); err != nil {
		return fmt.Errorf("promote %s: %w", cands[0].addr, err)
	}
	s.mu.Lock()
	delete(s.expiredAt, lease.User)
	s.mu.Unlock()
	return nil
}

// Start runs Sweep every interval until ctx is done (the
// syddirectory -health-sweep loop). Waits are timed through the
// sweeper's clock, so a fake clock compresses the sweep cadence.
func (s *Sweeper) Start(ctx context.Context, every time.Duration) {
	clock.LoopGo(ctx, s.clk, every, func(c context.Context) {
		sctx, cancel := context.WithTimeout(c, every)
		if err := s.Sweep(sctx); err != nil && s.cfg.Logf != nil {
			s.cfg.Logf("replication: health sweep: %v", err)
		}
		cancel()
	}, nil)
}
