package replication

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/directory"
	"repro/internal/listener"
	"repro/internal/metrics"
	"repro/internal/wal"
	"repro/internal/wire"
)

// DefaultPullMaxBytes bounds the frame bytes served per Pull.
const DefaultPullMaxBytes = 1 << 20

// PrimaryConfig describes the replication role of a serving node.
type PrimaryConfig struct {
	// User is the replicated identity (required).
	User string
	// Durable is the node's WAL-backed database (required — there is
	// nothing to ship without one).
	Durable *wal.Durable
	// Dir renews the lease (required).
	Dir *directory.Client
	// Holder identifies this node in the lease record; a promoted
	// follower passes the holder id it won the lease under so renewals
	// keep matching.
	Holder string
	// Replicas lists follower addresses, reported to the directory on
	// every renewal — the promotion candidate set.
	Replicas []string
	// LeaseTTL is the lease duration requested on each renewal
	// (required > 0).
	LeaseTTL time.Duration
	// Clock drives the local validity window; nil = system clock.
	Clock clock.Clock
	// Metrics, when set, records lease and shipping observations under
	// LayerRepl.
	Metrics *metrics.Registry
	// OnFenced, when set, runs once when the primary loses its lease
	// for good (a rival holds it).
	OnFenced func()
	// PullMaxBytes bounds frame bytes per Pull (DefaultPullMaxBytes
	// when 0).
	PullMaxBytes int
}

// Primary is the serving side of a replica set: it ships WAL frames
// to followers and keeps the lease alive. Create with NewPrimary,
// call Renew once synchronously at boot (acquisition doubles as the
// split-brain check), then keep renewing on a sub-TTL cadence.
type Primary struct {
	cfg PrimaryConfig
	clk clock.Clock

	mu        sync.Mutex
	goodUntil time.Time // local validity window; conservative vs directory deadline
	fenced    bool
	pulls     uint64
	snapshots uint64
}

// NewPrimary validates cfg and builds the primary-side state.
func NewPrimary(cfg PrimaryConfig) (*Primary, error) {
	if cfg.User == "" {
		return nil, fmt.Errorf("replication: PrimaryConfig.User is required")
	}
	if cfg.Durable == nil {
		return nil, fmt.Errorf("replication: replication requires a durable (WAL-backed) database")
	}
	if cfg.Dir == nil {
		return nil, fmt.Errorf("replication: PrimaryConfig.Dir is required")
	}
	if cfg.LeaseTTL <= 0 {
		return nil, fmt.Errorf("replication: PrimaryConfig.LeaseTTL must be positive")
	}
	if cfg.Holder == "" {
		return nil, fmt.Errorf("replication: PrimaryConfig.Holder is required")
	}
	if cfg.PullMaxBytes <= 0 {
		cfg.PullMaxBytes = DefaultPullMaxBytes
	}
	clk := cfg.Clock
	if clk == nil {
		clk = clock.System
	}
	return &Primary{cfg: cfg, clk: clk}, nil
}

// ErrFenced reports that this node has lost the lease and must stop
// serving as primary.
var ErrFenced = errors.New("replication: lease lost; primary is fenced")

// Renew acquires or extends the lease. The local validity window is
// stamped from the clock reading taken BEFORE the RPC goes out: the
// directory computes its deadline later (receive time + TTL), so the
// local window always closes no later than the directory's — the
// fence trips first, never after a rival could have been promoted.
// A CodeConflict reply means a rival holds the lease: the primary
// fences itself permanently.
func (p *Primary) Renew(ctx context.Context) error {
	p.mu.Lock()
	if p.fenced {
		p.mu.Unlock()
		return ErrFenced
	}
	p.mu.Unlock()

	sentAt := p.clk.Now()
	start := time.Now()
	_, err := p.cfg.Dir.RenewLease(ctx, p.cfg.User, p.cfg.Holder, p.cfg.LeaseTTL, p.cfg.Replicas)
	p.observe("lease-renew", wire.CodeOf(err), time.Since(start))
	if wire.CodeOf(err) == wire.CodeConflict {
		p.fence()
		return fmt.Errorf("%w: %v", ErrFenced, err)
	}
	if err != nil {
		// Transient (directory unreachable): the window simply keeps
		// running out; when it does, LeaseValid goes false on its own.
		return err
	}
	p.mu.Lock()
	p.goodUntil = sentAt.Add(p.cfg.LeaseTTL)
	p.mu.Unlock()
	return nil
}

// fence marks the primary permanently invalid and fires OnFenced once.
func (p *Primary) fence() {
	p.mu.Lock()
	already := p.fenced
	p.fenced = true
	p.mu.Unlock()
	if !already && p.cfg.OnFenced != nil {
		p.cfg.OnFenced()
	}
}

// LeaseValid reports whether this node may serve as primary right
// now: not fenced, and inside the conservative local window.
func (p *Primary) LeaseValid() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return !p.fenced && p.clk.Now().Before(p.goodUntil)
}

// Fenced reports whether the primary has lost its lease for good.
func (p *Primary) Fenced() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.fenced
}

// Status snapshots the primary's replication state.
func (p *Primary) Status() Status {
	p.mu.Lock()
	defer p.mu.Unlock()
	tail := p.cfg.Durable.LastLSN()
	return Status{
		User:           p.cfg.User,
		Role:           RolePrimary,
		Holder:         p.cfg.Holder,
		LeaseGoodUntil: p.goodUntil,
		LeaseValid:     !p.fenced && p.clk.Now().Before(p.goodUntil),
		Fenced:         p.fenced,
		ShippedLSN:     tail,
		AppliedLSN:     tail,
		Pulls:          p.pulls,
		Snapshots:      p.snapshots,
	}
}

// Object builds the repl.<user> device object: Pull and Snapshot for
// followers, Status for operators and the health sweeper.
func (p *Primary) Object() *listener.Object {
	obj := listener.NewObject()
	obj.Handle("Pull", func(ctx context.Context, call *listener.Call) (any, error) {
		from := uint64(call.Args.Int64("from"))
		max := call.Args.Int("max")
		if max <= 0 || max > p.cfg.PullMaxBytes {
			max = p.cfg.PullMaxBytes
		}
		start := time.Now()
		batch, err := p.cfg.Durable.ReadFrames(from, max)
		p.mu.Lock()
		p.pulls++
		p.mu.Unlock()
		if errors.Is(err, wal.ErrSnapshotNeeded) {
			p.observe("pull", wire.CodeOK, time.Since(start))
			return pullReply{Last: batch.Last, TailLSN: p.cfg.Durable.LastLSN(), Snapshot: true}, nil
		}
		if err != nil {
			p.observe("pull", wire.CodeInternal, time.Since(start))
			return nil, err
		}
		p.observe("pull", wire.CodeOK, time.Since(start))
		return pullReply{
			Frames:    batch.Frames,
			Last:      batch.Last,
			TailLSN:   p.cfg.Durable.LastLSN(),
			Remaining: batch.Remaining,
		}, nil
	})
	obj.Handle("Snapshot", func(ctx context.Context, call *listener.Call) (any, error) {
		start := time.Now()
		data, lsn, err := p.cfg.Durable.SnapshotAt()
		if err != nil {
			p.observe("snapshot", wire.CodeInternal, time.Since(start))
			return nil, err
		}
		p.mu.Lock()
		p.snapshots++
		p.mu.Unlock()
		p.observe("snapshot", wire.CodeOK, time.Since(start))
		return snapshotReply{Data: data, LSN: lsn}, nil
	})
	obj.Handle("Status", func(ctx context.Context, call *listener.Call) (any, error) {
		return p.Status(), nil
	})
	return obj
}

// FenceMiddleware rejects every request except replication and
// introspection traffic while the lease is invalid: an expired or
// fenced primary must not accept mutations a promoted rival will
// never see. Followers may still Pull (draining a fenced primary is
// how a promoter catches up to the last acked commit) and operators
// may still inspect sys.*.
func (p *Primary) FenceMiddleware() listener.Middleware {
	return func(next listener.Method) listener.Method {
		return func(ctx context.Context, call *listener.Call) (any, error) {
			if len(call.Service) >= len(ServicePrefix) && call.Service[:len(ServicePrefix)] == ServicePrefix {
				return next(ctx, call)
			}
			if len(call.Service) >= 4 && call.Service[:4] == "sys." {
				return next(ctx, call)
			}
			if !p.LeaseValid() {
				return nil, &wire.RemoteError{
					Code: wire.CodeUnavailable,
					Msg:  fmt.Sprintf("replication: %s is not a valid primary (lease expired or lost)", p.cfg.User),
				}
			}
			return next(ctx, call)
		}
	}
}

// observe records one replication observation when metrics are wired.
func (p *Primary) observe(method string, code wire.ErrCode, d time.Duration) {
	if p.cfg.Metrics != nil {
		p.cfg.Metrics.Observe(metrics.LayerRepl, "repl", method, code, d)
	}
}
