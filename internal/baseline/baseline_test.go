package baseline

import (
	"testing"
)

func users(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = string(rune('a' + i))
	}
	return out
}

func candidates(day string, hours ...int) []Slot {
	out := make([]Slot, len(hours))
	for i, h := range hours {
		out[i] = Slot{Day: day, Hour: h}
	}
	return out
}

func TestScheduleHappyPath(t *testing.T) {
	s := New(users(4), false) // a,b,c,d
	m, rounds := s.ScheduleMeeting("a", []string{"b", "c", "d"}, candidates("d1", 9, 10))
	if m == nil || !m.Confirmed || rounds != 1 {
		t.Fatalf("m=%+v rounds=%d", m, rounds)
	}
	st := s.Stats()
	// 3 invites + 3 accepts + replication: 4 users each replicate to
	// 3 others = 12. Total 18.
	if st.Messages != 18 {
		t.Fatalf("messages = %d", st.Messages)
	}
	// Every participant manually accepted.
	if st.Interventions != 3 {
		t.Fatalf("interventions = %d", st.Interventions)
	}
	// Everyone's truth folder holds the slot.
	for _, u := range []string{"a", "b", "c", "d"} {
		if s.freeInTruth(u, m.Slot) {
			t.Fatalf("%s slot not reserved", u)
		}
	}
}

func TestScheduleSkipsBusyReplica(t *testing.T) {
	s := New(users(2), false)
	s.MarkBusy("b", Slot{Day: "d1", Hour: 9}, "gym")
	m, _ := s.ScheduleMeeting("a", []string{"b"}, candidates("d1", 9, 10))
	if m == nil || m.Slot.Hour != 10 {
		t.Fatalf("m = %+v", m)
	}
}

func TestStaleReplicaCausesDeclineAndRetry(t *testing.T) {
	s := New(users(2), true) // replication lag on
	// b gets busy at 9 but the update never reaches a's replica.
	s.MarkBusy("b", Slot{Day: "d1", Hour: 9}, "gym")
	s.ResetStats()
	m, rounds := s.ScheduleMeeting("a", []string{"b"}, candidates("d1", 9, 10))
	if m == nil || m.Slot.Hour != 10 {
		t.Fatalf("m = %+v", m)
	}
	if rounds != 2 {
		t.Fatalf("rounds = %d", rounds)
	}
	st := s.Stats()
	if st.Retries != 1 {
		t.Fatalf("retries = %d", st.Retries)
	}
	// Interventions: b's decline (1) + a's manual re-pick (1) + b's
	// accept (1) = 3.
	if st.Interventions != 3 {
		t.Fatalf("interventions = %d", st.Interventions)
	}
}

func TestScheduleExhaustsWindow(t *testing.T) {
	s := New(users(2), false)
	s.MarkBusy("b", Slot{Day: "d1", Hour: 9}, "x")
	s.MarkBusy("b", Slot{Day: "d1", Hour: 10}, "y")
	m, _ := s.ScheduleMeeting("a", []string{"b"}, candidates("d1", 9, 10))
	if m != nil {
		t.Fatalf("m = %+v", m)
	}
}

func TestCancelIsManualEverywhere(t *testing.T) {
	s := New(users(3), false)
	m, _ := s.ScheduleMeeting("a", []string{"b", "c"}, candidates("d1", 9))
	if m == nil {
		t.Fatal("schedule failed")
	}
	s.ResetStats()
	if !s.CancelMeeting(m.ID) {
		t.Fatal("cancel failed")
	}
	st := s.Stats()
	// 2 cancellation e-mails + 2 manual removals (+ replication).
	if st.Interventions != 2 {
		t.Fatalf("interventions = %d", st.Interventions)
	}
	if st.Messages < 2 {
		t.Fatalf("messages = %d", st.Messages)
	}
	for _, u := range []string{"a", "b", "c"} {
		if !s.freeInTruth(u, m.Slot) {
			t.Fatalf("%s slot not released", u)
		}
	}
	if s.CancelMeeting(m.ID) {
		t.Fatal("double cancel succeeded")
	}
	if s.CancelMeeting("nope") {
		t.Fatal("cancel of unknown meeting succeeded")
	}
}

func TestStorageGrowsWithPopulation(t *testing.T) {
	// §6's storage claim: baseline per-user storage ~ sum of ALL
	// calendars; doubling the population (with the same per-user
	// load) roughly doubles per-user storage.
	perUser := func(n int) int {
		s := New(users(n), false)
		for _, u := range s.Users() {
			for h := 9; h < 14; h++ {
				s.MarkBusy(u, Slot{Day: "d1", Hour: h}, "x")
			}
		}
		return s.StorageBytes(s.Users()[0], 64)
	}
	small, large := perUser(4), perUser(8)
	if large < small*18/10 {
		t.Fatalf("storage did not scale with population: %d -> %d", small, large)
	}
}

func TestPropagateAllHealsStaleness(t *testing.T) {
	s := New(users(2), true)
	s.MarkBusy("b", Slot{Day: "d1", Hour: 9}, "gym")
	s.PropagateAll()
	// Now a's replica knows; scheduling goes straight to 10.
	m, rounds := s.ScheduleMeeting("a", []string{"b"}, candidates("d1", 9, 10))
	if m == nil || m.Slot.Hour != 10 || rounds != 1 {
		t.Fatalf("m=%+v rounds=%d", m, rounds)
	}
}
