// Package baseline models the "existing calendar applications" of the
// paper's §6 comparison (Outlook / GroupWise / Lotus Notes as the
// paper describes them):
//
//   - "each user stores a copy of every member's folder on his local
//     machine" — full folder replication;
//   - "each time a meeting needs to be set up, the initiator sends an
//     email to the required participants. The recipients then manually
//     have to accept this meeting" — e-mail invitations and manual
//     accepts;
//   - "there is no concept of priority ... only the initiator of a
//     meeting can cancel ... no option of automatic rescheduling of
//     meetings cancelled due to attendee unavailability" — every
//     repair is a human action;
//   - "there is also no authentication of users".
//
// The model counts exactly what the T1 experiment compares against
// SyD: replicated storage bytes, messages exchanged, and human
// interventions per scheduled / cancelled / rescheduled meeting.
package baseline

import (
	"fmt"
	"sort"
)

// Slot mirrors calendar.Slot without importing it (the baseline is an
// independent system).
type Slot struct {
	Day  string
	Hour int
}

// entry is one slot occupancy inside a folder.
type entry struct {
	Meeting string
}

// folder is one user's calendar: slot -> entry.
type folder map[Slot]entry

// Meeting is a scheduled baseline meeting.
type Meeting struct {
	ID           string
	Initiator    string
	Participants []string
	Slot         Slot
	Confirmed    bool
}

// Stats aggregates the §6 cost counters.
type Stats struct {
	// Messages counts e-mails and replication updates sent.
	Messages int
	// Interventions counts manual human actions (accepts, declines,
	// manual reschedules, manual removals).
	Interventions int
	// Retries counts scheduling rounds beyond the first, caused by
	// stale replicas.
	Retries int
}

// System is a deployment of the baseline calendar for a fixed user
// population.
type System struct {
	users []string
	// replicas[holder][owner] is holder's copy of owner's folder.
	replicas map[string]map[string]folder
	// truth[owner] is the owner's real folder (what accepts mutate).
	truth map[string]folder
	// lag, when true, stops automatic replication: replicas go stale
	// until PropagateAll, producing the decline/re-schedule cycles
	// real deployments see.
	lag bool

	meetings map[string]*Meeting
	nextID   int
	stats    Stats
}

// New creates a baseline system for users; every user immediately
// replicates every other user's (empty) folder.
func New(users []string, replicationLag bool) *System {
	s := &System{
		users:    append([]string(nil), users...),
		replicas: make(map[string]map[string]folder),
		truth:    make(map[string]folder),
		lag:      replicationLag,
		meetings: make(map[string]*Meeting),
	}
	for _, u := range users {
		s.truth[u] = make(folder)
		s.replicas[u] = make(map[string]folder)
		for _, o := range users {
			s.replicas[u][o] = make(folder)
		}
	}
	return s
}

// Stats returns the accumulated counters.
func (s *System) Stats() Stats { return s.stats }

// ResetStats zeroes the counters (storage is recomputed on demand).
func (s *System) ResetStats() { s.stats = Stats{} }

// MarkBusy sets a personal appointment in the owner's real folder and
// replicates it.
func (s *System) MarkBusy(user string, slot Slot, label string) {
	s.truth[user][slot] = entry{Meeting: "personal:" + label}
	s.replicate(user)
}

// replicate pushes owner's folder to every other user's replica
// (N-1 messages), unless lag is enabled.
func (s *System) replicate(owner string) {
	if s.lag {
		return
	}
	s.forceReplicate(owner)
}

func (s *System) forceReplicate(owner string) {
	for _, holder := range s.users {
		if holder == owner {
			continue
		}
		cp := make(folder, len(s.truth[owner]))
		for k, v := range s.truth[owner] {
			cp[k] = v
		}
		s.replicas[holder][owner] = cp
		s.stats.Messages++
	}
}

// PropagateAll flushes every folder to every replica (the overnight
// sync of a lagged deployment).
func (s *System) PropagateAll() {
	for _, u := range s.users {
		s.forceReplicate(u)
	}
}

// freeInReplica reports whether, according to initiator's replicas,
// the slot is free for all participants.
func (s *System) freeInReplica(initiator string, participants []string, slot Slot) bool {
	for _, p := range participants {
		var f folder
		if p == initiator {
			f = s.truth[p]
		} else {
			f = s.replicas[initiator][p]
		}
		if _, busy := f[slot]; busy {
			return false
		}
	}
	return true
}

// freeInTruth is the ground truth check used when a participant
// decides whether to accept.
func (s *System) freeInTruth(user string, slot Slot) bool {
	_, busy := s.truth[user][slot]
	return !busy
}

// ScheduleMeeting runs the §6 manual workflow: the initiator picks the
// first slot that looks free in their replicas, e-mails everyone, and
// each participant manually accepts or declines against their real
// calendar; any decline forces the initiator to manually pick another
// slot and start over. Returns the meeting (nil if the window is
// exhausted) and the number of rounds it took.
func (s *System) ScheduleMeeting(initiator string, participants []string, candidates []Slot) (*Meeting, int) {
	all := append([]string{initiator}, participants...)
	rounds := 0
	for _, slot := range candidates {
		if !s.freeInReplica(initiator, all, slot) {
			continue
		}
		rounds++
		if rounds > 1 {
			// Picking a new slot after declines is a manual act.
			s.stats.Interventions++
			s.stats.Retries++
		}
		// Invitation e-mails.
		s.stats.Messages += len(participants)
		accepted := true
		for _, p := range participants {
			// Reading and answering the invite is manual.
			s.stats.Interventions++
			if !s.freeInTruth(p, slot) {
				// Decline e-mail back to the initiator.
				s.stats.Messages++
				accepted = false
				break
			}
			// Accept e-mail back.
			s.stats.Messages++
		}
		if !accepted {
			continue
		}
		s.nextID++
		m := &Meeting{
			ID:           fmt.Sprintf("BM-%d", s.nextID),
			Initiator:    initiator,
			Participants: append([]string(nil), all...),
			Slot:         slot,
			Confirmed:    true,
		}
		for _, p := range all {
			s.truth[p][slot] = entry{Meeting: m.ID}
			s.replicate(p)
		}
		s.meetings[m.ID] = m
		return m, rounds
	}
	return nil, rounds
}

// CancelMeeting runs the manual cancellation: cancellation e-mails go
// out and every participant manually removes the entry. Nothing is
// auto-rescheduled — any meeting that wanted this slot must be
// re-scheduled by a human from scratch (counted by the caller running
// ScheduleMeeting again).
func (s *System) CancelMeeting(id string) bool {
	m, ok := s.meetings[id]
	if !ok || !m.Confirmed {
		return false
	}
	m.Confirmed = false
	s.stats.Messages += len(m.Participants) - 1 // cancellation e-mails
	for _, p := range m.Participants {
		if p != m.Initiator {
			s.stats.Interventions++ // manual removal
		}
		delete(s.truth[p], m.Slot)
		s.replicate(p)
	}
	return true
}

// Meeting fetches a baseline meeting.
func (s *System) Meeting(id string) (*Meeting, bool) {
	m, ok := s.meetings[id]
	return m, ok
}

// StorageBytes estimates per-user storage: every slot entry in every
// replica (and the user's own folder) costs entrySize bytes. The §6
// point is the shape: baseline storage grows with the sum of all
// users' calendars, SyD storage only with the user's own.
func (s *System) StorageBytes(user string, entrySize int) int {
	total := len(s.truth[user]) * entrySize
	for _, f := range s.replicas[user] {
		total += len(f) * entrySize
	}
	return total
}

// TotalStorageBytes sums StorageBytes over all users.
func (s *System) TotalStorageBytes(entrySize int) int {
	total := 0
	for _, u := range s.users {
		total += s.StorageBytes(u, entrySize)
	}
	return total
}

// Users returns the population, sorted.
func (s *System) Users() []string {
	out := append([]string(nil), s.users...)
	sort.Strings(out)
	return out
}
