package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/store"
)

// Durable is a store.DB with a write-ahead log under it: every
// committed mutation is appended (and fsynced per the sync policy)
// before the mutating call returns, and Open recovers the database
// from the newest valid checkpoint snapshot plus the log tail.
//
// Data directory layout:
//
//	<dir>/wal-<firstLSN:016x>.log        log segments
//	<dir>/checkpoint-<lsn:016x>.snap     checkpoint snapshots
//
// The two newest checkpoints are kept (the older is the fallback when
// the newest turns out corrupt), and log segments are trimmed only
// below the OLDER retained checkpoint — so whichever retained
// checkpoint recovery restores, the log still reaches from its LSN to
// the tail.
type Durable struct {
	// DB is the live database. Use it exactly like a plain store.DB —
	// the log rides on the store's MutationLogger hook.
	DB *store.DB

	dir string
	wal *WAL

	// cpMu serializes checkpoints (timer vs shutdown).
	cpMu sync.Mutex
}

// Open recovers (or initializes) the data directory and returns a
// durable database: restore the newest valid checkpoint, replay the
// log tail above it skipping incomplete trailing records, then attach
// the log so new mutations append.
func Open(dir string, opt Options) (*Durable, error) {
	if dir == "" {
		return nil, fmt.Errorf("wal: data directory required")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	start := time.Now()
	db := store.NewDB()
	cpLSN, err := restoreNewestCheckpoint(dir, db)
	if err != nil {
		return nil, err
	}
	res, err := Replay(dir, db, cpLSN)
	if err != nil {
		return nil, err
	}
	w, err := openWAL(dir, opt, res.LastLSN+1)
	if err != nil {
		return nil, err
	}
	w.recov = Stats{
		ReplayedRecords:  uint64(res.Records),
		ReplayedTxs:      uint64(res.Txs),
		TornTail:         res.TornTail,
		SkippedTailBytes: uint64(res.SkippedBytes),
		RecoveryDuration: time.Since(start),
		CheckpointLSN:    cpLSN,
	}
	if opt.Metrics != nil {
		opt.Metrics.Observe(metrics.LayerWAL, walService, "recovery", okCode, w.recov.RecoveryDuration)
	}
	d := &Durable{DB: db, dir: dir, wal: w}
	db.SetLogger(d)
	return d, nil
}

// LogDDLTable implements store.MutationLogger.
func (d *Durable) LogDDLTable(s store.Schema) store.Ack {
	return store.Ack(d.wal.append(record{Kind: kindTable, Schema: schemaToDoc(s)}))
}

// LogDDLIndex implements store.MutationLogger.
func (d *Durable) LogDDLIndex(table, col string) store.Ack {
	return store.Ack(d.wal.append(record{Kind: kindIndex, Table: table, Col: col}))
}

// LogTx implements store.MutationLogger.
func (d *Durable) LogTx(ops []store.LoggedOp) store.Ack {
	rec := record{Kind: kindTx, Ops: make([]opDoc, 0, len(ops))}
	for _, op := range ops {
		rec.Ops = append(rec.Ops, opToDoc(op))
	}
	return store.Ack(d.wal.append(rec))
}

// checkpointName returns the snapshot file name for lsn.
func checkpointName(lsn uint64) string {
	return fmt.Sprintf("checkpoint-%016x.snap", lsn)
}

// parseCheckpointName extracts the LSN from a checkpoint file name.
func parseCheckpointName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "checkpoint-") || !strings.HasSuffix(name, ".snap") {
		return 0, false
	}
	lsn, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "checkpoint-"), ".snap"), 16, 64)
	if err != nil {
		return 0, false
	}
	return lsn, true
}

// listCheckpoints returns checkpoint files sorted newest-first.
func listCheckpoints(dir string) ([]segmentInfo, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("wal: %w", err)
	}
	var cps []segmentInfo
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if lsn, ok := parseCheckpointName(e.Name()); ok {
			cps = append(cps, segmentInfo{first: lsn, path: filepath.Join(dir, e.Name())})
		}
	}
	sort.Slice(cps, func(i, j int) bool { return cps[i].first > cps[j].first })
	return cps, nil
}

// writeCheckpointFile writes a checkpoint snapshot atomically (tmp +
// fsync + rename + dir sync).
func writeCheckpointFile(dir string, data []byte, cpLSN uint64) error {
	final := filepath.Join(dir, checkpointName(cpLSN))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: checkpoint: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("wal: checkpoint write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("wal: checkpoint sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: checkpoint close: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("wal: checkpoint rename: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return fmt.Errorf("wal: checkpoint dir sync: %w", err)
	}
	return nil
}

// pruneCheckpoints keeps the checkpoint at cpLSN plus its newest
// predecessor (the corrupt-newest fallback), deletes older ones, and
// returns the oldest retained LSN — segments below keepLSN+1 are safe
// to trim.
func pruneCheckpoints(dir string, cpLSN uint64) (keepLSN uint64, err error) {
	cps, err := listCheckpoints(dir)
	if err != nil {
		return 0, err
	}
	keepLSN = cpLSN
	for _, cp := range cps {
		switch {
		case cp.first >= cpLSN:
			// The checkpoint just written (or a stray newer name).
		case keepLSN == cpLSN:
			keepLSN = cp.first // newest predecessor: the fallback
		default:
			_ = os.Remove(cp.path)
		}
	}
	return keepLSN, nil
}

// restoreNewestCheckpoint loads the newest checkpoint that restores
// cleanly into db and returns its LSN (0 when none). A corrupt newer
// checkpoint is skipped — store.Restore rolls back its partial tables,
// so trying the next-older one starts from a clean DB.
func restoreNewestCheckpoint(dir string, db *store.DB) (uint64, error) {
	cps, err := listCheckpoints(dir)
	if err != nil {
		return 0, err
	}
	for _, cp := range cps {
		data, err := os.ReadFile(cp.path)
		if err != nil {
			continue
		}
		if err := db.Restore(bytes.NewReader(data)); err != nil {
			continue // rolled back; try an older checkpoint
		}
		return cp.first, nil
	}
	return 0, nil
}

// Checkpoint writes a snapshot of the current database, fsyncs it into
// place, keeps the previous checkpoint as a fallback (deleting older
// ones), and trims log segments below the older retained checkpoint so
// a fallback restore still finds its log tail. Concurrent mutations
// are safe: every mutation visible in the snapshot is already enqueued
// in the log (Tx applies and enqueues under its table locks), and the
// snapshot may include effects of records above its LSN, which replay
// tolerates.
func (d *Durable) Checkpoint() error {
	d.cpMu.Lock()
	defer d.cpMu.Unlock()
	start := time.Now()
	cpLSN := d.wal.LastLSN()

	var buf bytes.Buffer
	if err := d.DB.Snapshot(&buf); err != nil {
		return fmt.Errorf("wal: checkpoint snapshot: %w", err)
	}
	if err := writeCheckpointFile(d.dir, buf.Bytes(), cpLSN); err != nil {
		return err
	}
	// The checkpoint is durable. Keep the previous checkpoint as the
	// fallback for a corrupt newest, drop anything older, and trim only
	// the log segments no retained checkpoint needs: the fallback must
	// still be able to replay from its own LSN up to the tail.
	keepLSN, err := pruneCheckpoints(d.dir, cpLSN)
	if err != nil {
		return err
	}
	if err := d.wal.trimBelow(keepLSN + 1); err != nil {
		return err
	}
	d.wal.stats.checkpoints.Add(1)
	if d.wal.opt.Metrics != nil {
		d.wal.opt.Metrics.Observe(metrics.LayerWAL, walService, "checkpoint", okCode, time.Since(start))
	}
	return nil
}

// Stats snapshots the log's counters.
func (d *Durable) Stats() Stats { return d.wal.Stats() }

// LastLSN reports the log's highest assigned LSN — trace events use it
// to tie a negotiation's journal writes to the durability stream.
func (d *Durable) LastLSN() uint64 { return d.wal.LastLSN() }

// Close checkpoints (best effort — the log alone already carries every
// committed mutation) and closes the log. The DB stays readable.
func (d *Durable) Close() error {
	d.DB.SetLogger(nil)
	cpErr := d.Checkpoint()
	if err := d.wal.Close(); err != nil {
		return err
	}
	return cpErr
}
