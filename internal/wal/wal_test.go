package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/store"
)

func testSchema(name string) store.Schema {
	return store.Schema{
		Name: name,
		Columns: []store.Column{
			{Name: "id", Type: store.Int},
			{Name: "val", Type: store.String},
			{Name: "ts", Type: store.Time},
		},
		Key: []string{"id"},
	}
}

func mustOpen(t *testing.T, dir string, opt Options) *Durable {
	t.Helper()
	d, err := Open(dir, opt)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return d
}

// crash closes the log without checkpointing — what a power cut leaves
// behind, minus the torn tail (tests that want one truncate the file).
func crash(t *testing.T, d *Durable) {
	t.Helper()
	d.DB.SetLogger(nil)
	if err := d.wal.Close(); err != nil {
		t.Fatalf("crash close: %v", err)
	}
}

func snapshotOf(t *testing.T, db *store.DB) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := db.Snapshot(&buf); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	return buf.Bytes()
}

func TestFrameRoundTripAndTear(t *testing.T) {
	var buf []byte
	payloads := [][]byte{[]byte("one"), []byte("twotwo"), []byte(`{"x":3}`)}
	for _, p := range payloads {
		buf = appendFrame(buf, p)
	}
	off := 0
	for i, want := range payloads {
		got, n, err := nextFrame(buf[off:])
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d: got %q want %q", i, got, want)
		}
		off += n
	}
	if _, _, err := nextFrame(buf[off:]); err == nil || err.Error() != "EOF" {
		t.Fatalf("clean end: want io.EOF, got %v", err)
	}
	// Every possible truncation of the valid log is a tear or a clean
	// prefix — never an error, never a bogus frame.
	for cut := 0; cut < len(buf); cut++ {
		data := buf[:cut]
		o := 0
		for {
			_, n, err := nextFrame(data[o:])
			if err != nil {
				break
			}
			o += n
		}
		if o > cut {
			t.Fatalf("cut %d: consumed %d past the cut", cut, o)
		}
	}
	// A flipped byte must fail the checksum of its frame.
	bad := append([]byte(nil), buf...)
	bad[frameHeader+1] ^= 0xff
	if _, _, err := nextFrame(bad); err != errTorn {
		t.Fatalf("corrupt payload: want errTorn, got %v", err)
	}
}

func TestDurableRestartCleanAndCrash(t *testing.T) {
	dir := t.TempDir()
	d := mustOpen(t, dir, Options{})
	tab, err := d.DB.CreateTable(testSchema("t"))
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.CreateIndex("val"); err != nil {
		t.Fatal(err)
	}
	ts := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	for i := int64(0); i < 10; i++ {
		if err := tab.Insert(store.Row{"id": i, "val": "v", "ts": ts}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tab.Update(store.Row{"val": "updated"}, int64(3)); err != nil {
		t.Fatal(err)
	}
	if err := tab.Delete(int64(7)); err != nil {
		t.Fatal(err)
	}
	want := snapshotOf(t, d.DB)

	// Clean close: checkpoint + trimmed log.
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2 := mustOpen(t, dir, Options{})
	if got := snapshotOf(t, d2.DB); !bytes.Equal(got, want) {
		t.Fatalf("clean restart: snapshot mismatch\ngot  %s\nwant %s", got, want)
	}

	// Crash (no checkpoint): mutations after the last checkpoint come
	// back from the log alone.
	tab2, err := d2.DB.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	if err := tab2.Insert(store.Row{"id": int64(100), "val": "post-checkpoint", "ts": ts}); err != nil {
		t.Fatal(err)
	}
	want2 := snapshotOf(t, d2.DB)
	crash(t, d2)

	d3 := mustOpen(t, dir, Options{})
	defer d3.Close()
	if got := snapshotOf(t, d3.DB); !bytes.Equal(got, want2) {
		t.Fatalf("crash restart: snapshot mismatch\ngot  %s\nwant %s", got, want2)
	}
	st := d3.Stats()
	if st.ReplayedRecords == 0 {
		t.Fatalf("crash restart: expected replayed records, got %+v", st)
	}
}

func TestTxUnitIsAtomicAcrossCrash(t *testing.T) {
	dir := t.TempDir()
	d := mustOpen(t, dir, Options{Sync: SyncPerCommit})
	if _, err := d.DB.CreateTable(testSchema("t")); err != nil {
		t.Fatal(err)
	}
	ts := time.Now().UTC()
	tx := d.DB.Begin()
	if err := tx.Insert("t", store.Row{"id": int64(1), "val": "a", "ts": ts}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert("t", store.Row{"id": int64(2), "val": "b", "ts": ts}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, segmentName(1))
	full, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	crash(t, d)

	// Chop the last byte: the tx record is torn, so NEITHER row may
	// survive — multi-row transactions are one atomic unit.
	if err := os.Truncate(seg, full.Size()-1); err != nil {
		t.Fatal(err)
	}
	d2 := mustOpen(t, dir, Options{})
	defer d2.Close()
	tab, err := d2.DB.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	if n := tab.Count(); n != 0 {
		t.Fatalf("torn tx replayed partially: %d rows", n)
	}
	if st := d2.Stats(); !st.TornTail {
		t.Fatalf("expected torn tail in stats, got %+v", st)
	}
}

func TestRollbackIsNotLogged(t *testing.T) {
	dir := t.TempDir()
	d := mustOpen(t, dir, Options{Sync: SyncPerCommit})
	if _, err := d.DB.CreateTable(testSchema("t")); err != nil {
		t.Fatal(err)
	}
	tx := d.DB.Begin()
	if err := tx.Insert("t", store.Row{"id": int64(1), "val": "x", "ts": time.Now().UTC()}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	crash(t, d)
	d2 := mustOpen(t, dir, Options{})
	defer d2.Close()
	tab, err := d2.DB.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	if n := tab.Count(); n != 0 {
		t.Fatalf("rolled-back tx resurfaced after recovery: %d rows", n)
	}
}

// TestDoubleCrashKeepsAckedCommits is the double-crash regression: a
// torn tail, a recovery, new fsync-acked commits, and a second crash.
// Recovery must truncate the first tear and append after it, so the
// second recovery still sees every post-first-crash commit — the old
// code opened (and O_TRUNCed) a fresh segment that a tear in an
// earlier segment then made unreachable.
func TestDoubleCrashKeepsAckedCommits(t *testing.T) {
	dir := t.TempDir()
	d := mustOpen(t, dir, Options{Sync: SyncPerCommit})
	tab, err := d.DB.CreateTable(testSchema("t"))
	if err != nil {
		t.Fatal(err)
	}
	ts := time.Unix(0, 0).UTC()
	for i := int64(0); i < 5; i++ {
		if err := tab.Insert(store.Row{"id": i, "val": "first", "ts": ts}); err != nil {
			t.Fatal(err)
		}
	}
	crash(t, d)
	// First crash: tear the last record.
	seg := filepath.Join(dir, segmentName(1))
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	d2 := mustOpen(t, dir, Options{Sync: SyncPerCommit})
	if st := d2.Stats(); !st.TornTail {
		t.Fatalf("first recovery saw no torn tail: %+v", st)
	}
	tab2, err := d2.DB.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	if n := tab2.Count(); n != 4 {
		t.Fatalf("first recovery: %d rows, want 4", n)
	}
	// New acked commits after the first recovery.
	for i := int64(10); i < 13; i++ {
		if err := tab2.Insert(store.Row{"id": i, "val": "second", "ts": ts}); err != nil {
			t.Fatal(err)
		}
	}
	want := snapshotOf(t, d2.DB)
	crash(t, d2) // second crash, no checkpoint

	d3 := mustOpen(t, dir, Options{})
	defer d3.Close()
	if got := snapshotOf(t, d3.DB); !bytes.Equal(got, want) {
		t.Fatalf("second recovery lost acked commits\ngot  %s\nwant %s", got, want)
	}
}

// frameBounds returns the end offset of every valid frame in data.
func frameBounds(t *testing.T, data []byte) []int {
	t.Helper()
	var bounds []int
	off := 0
	for {
		_, n, err := nextFrame(data[off:])
		if err != nil {
			return bounds
		}
		off += n
		bounds = append(bounds, off)
	}
}

// TestHealedTearInEarlierSegment covers directories written by the
// pre-fix code: a tear in a NON-last segment followed by a later
// segment holding acked records (an earlier recovery continued there).
// Replay must truncate the tear and keep going — only a tear in the
// physically last segment is terminal.
func TestHealedTearInEarlierSegment(t *testing.T) {
	dir := t.TempDir()
	d := mustOpen(t, dir, Options{Sync: SyncPerCommit})
	tab, err := d.DB.CreateTable(testSchema("t"))
	if err != nil {
		t.Fatal(err)
	}
	ts := time.Unix(0, 0).UTC()
	for i := int64(0); i < 5; i++ {
		if err := tab.Insert(store.Row{"id": i, "val": "v", "ts": ts}); err != nil {
			t.Fatal(err)
		}
	}
	want := snapshotOf(t, d.DB)
	crash(t, d)

	// Rebuild the old-code layout: segment 1 = frames [1..k] plus a
	// garbage tail, segment k+1 = the remaining frames (records are
	// LSN-sequential from 1, so frame k ends record k).
	seg1 := filepath.Join(dir, segmentName(1))
	data, err := os.ReadFile(seg1)
	if err != nil {
		t.Fatal(err)
	}
	bounds := frameBounds(t, data)
	if len(bounds) != 6 { // DDL + 5 inserts
		t.Fatalf("expected 6 frames, got %d", len(bounds))
	}
	k := 3
	head := append(append([]byte(nil), data[:bounds[k-1]]...), "torn garbage"...)
	tail := append([]byte(nil), data[bounds[k-1]:]...)
	if err := os.WriteFile(seg1, head, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, segmentName(uint64(k+1))), tail, 0o644); err != nil {
		t.Fatal(err)
	}

	d2 := mustOpen(t, dir, Options{})
	defer d2.Close()
	if got := snapshotOf(t, d2.DB); !bytes.Equal(got, want) {
		t.Fatalf("healed-tear recovery lost the later segment\ngot  %s\nwant %s", got, want)
	}
	st := d2.Stats()
	if st.TornTail {
		t.Fatalf("healed mid-log tear reported as terminal: %+v", st)
	}
	if st.SkippedTailBytes == 0 {
		t.Fatalf("expected truncated garbage to be counted: %+v", st)
	}
}

// TestCheckpointFallbackKeepsLogTail: when the newest checkpoint is
// corrupt, recovery falls back to the previous one — which must still
// find log segments covering everything above its LSN, so the node
// comes back with the LATEST committed state, not a stale or empty DB.
func TestCheckpointFallbackKeepsLogTail(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments so checkpoint trimming actually deletes files.
	d := mustOpen(t, dir, Options{SegmentBytes: 128, Sync: SyncNone})
	tab, err := d.DB.CreateTable(testSchema("t"))
	if err != nil {
		t.Fatal(err)
	}
	ts := time.Unix(0, 0).UTC()
	insert := func(lo, hi int64) {
		t.Helper()
		for i := lo; i < hi; i++ {
			if err := tab.Insert(store.Row{"id": i, "val": "v", "ts": ts}); err != nil {
				t.Fatal(err)
			}
		}
	}
	insert(0, 20)
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	insert(20, 40)
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	insert(40, 50)
	want := snapshotOf(t, d.DB)
	crash(t, d)

	// Corrupt the newest checkpoint in place.
	cps, err := listCheckpoints(dir)
	if err != nil || len(cps) < 2 {
		t.Fatalf("want >=2 retained checkpoints, got %d (%v)", len(cps), err)
	}
	if err := os.WriteFile(cps[0].path, []byte("{corrupt"), 0o644); err != nil {
		t.Fatal(err)
	}

	d2 := mustOpen(t, dir, Options{})
	defer d2.Close()
	if got := snapshotOf(t, d2.DB); !bytes.Equal(got, want) {
		t.Fatalf("fallback recovery is stale\ngot  %s\nwant %s", got, want)
	}
	if st := d2.Stats(); st.CheckpointLSN != cps[1].first {
		t.Fatalf("recovered from checkpoint %d, want fallback %d", st.CheckpointLSN, cps[1].first)
	}
}

// TestOpenFailsLoudOnMissingSegments: when the log no longer reaches
// back to the replay start (segments deleted or misnamed), Open must
// refuse rather than silently present stale data as current.
func TestOpenFailsLoudOnMissingSegments(t *testing.T) {
	dir := t.TempDir()
	d := mustOpen(t, dir, Options{})
	tab, err := d.DB.CreateTable(testSchema("t"))
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.Insert(store.Row{"id": int64(1), "val": "v", "ts": time.Unix(0, 0).UTC()}); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil { // checkpoint at LSN 2
		t.Fatal(err)
	}
	// Fake a gap: the only segment now claims to start above the
	// checkpoint's replay start.
	if err := os.Rename(filepath.Join(dir, segmentName(1)), filepath.Join(dir, segmentName(10))); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open succeeded over a log gap")
	}
}

// TestCheckpointExcludesOpenTxState: a checkpoint taken while a tx is
// open must not capture its uncommitted (later rolled back) ops — the
// store buffers tx mutations until Commit, so recovery can never
// resurrect them.
func TestCheckpointExcludesOpenTxState(t *testing.T) {
	dir := t.TempDir()
	d := mustOpen(t, dir, Options{Sync: SyncPerCommit})
	tab, err := d.DB.CreateTable(testSchema("t"))
	if err != nil {
		t.Fatal(err)
	}
	ts := time.Unix(0, 0).UTC()
	if err := tab.Insert(store.Row{"id": int64(1), "val": "committed", "ts": ts}); err != nil {
		t.Fatal(err)
	}
	want := snapshotOf(t, d.DB)

	tx := d.DB.Begin()
	if err := tx.Insert("t", store.Row{"id": int64(2), "val": "uncommitted", "ts": ts}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Update("t", store.Row{"val": "dirty"}, int64(1)); err != nil {
		t.Fatal(err)
	}
	if err := d.Checkpoint(); err != nil { // mid-tx checkpoint
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	crash(t, d)

	d2 := mustOpen(t, dir, Options{})
	defer d2.Close()
	if got := snapshotOf(t, d2.DB); !bytes.Equal(got, want) {
		t.Fatalf("checkpoint captured open-tx state\ngot  %s\nwant %s", got, want)
	}
}

func TestGroupCommitConcurrent(t *testing.T) {
	dir := t.TempDir()
	d := mustOpen(t, dir, Options{Sync: SyncGroup})
	tab, err := d.DB.CreateTable(testSchema("t"))
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 8, 50
	var wg sync.WaitGroup
	for wr := 0; wr < writers; wr++ {
		wg.Add(1)
		go func(wr int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				id := int64(wr*perWriter + i)
				if err := tab.Insert(store.Row{"id": id, "val": "v", "ts": time.Unix(0, 0).UTC()}); err != nil {
					t.Errorf("insert %d: %v", id, err)
				}
			}
		}(wr)
	}
	wg.Wait()
	st := d.Stats()
	if st.Appends < writers*perWriter {
		t.Fatalf("appends %d < %d", st.Appends, writers*perWriter)
	}
	if st.Fsyncs >= st.Appends {
		t.Fatalf("group commit did not batch: %d fsyncs for %d appends", st.Fsyncs, st.Appends)
	}
	crash(t, d)
	d2 := mustOpen(t, dir, Options{})
	defer d2.Close()
	tab2, err := d2.DB.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	if n := tab2.Count(); n != writers*perWriter {
		t.Fatalf("recovered %d rows, want %d", n, writers*perWriter)
	}
}

func TestSegmentRotationAndCheckpointTrim(t *testing.T) {
	dir := t.TempDir()
	d := mustOpen(t, dir, Options{SegmentBytes: 512, Sync: SyncNone})
	tab, err := d.DB.CreateTable(testSchema("t"))
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 200; i++ {
		if err := tab.Insert(store.Row{"id": i, "val": "rotate-me-please", "ts": time.Unix(0, 0).UTC()}); err != nil {
			t.Fatal(err)
		}
	}
	if st := d.Stats(); st.Rotations == 0 {
		t.Fatalf("no rotations at 512-byte segments: %+v", st)
	}
	segsBefore, _ := listSegments(dir)
	if len(segsBefore) < 3 {
		t.Fatalf("want several segments, got %d", len(segsBefore))
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	segsAfter, _ := listSegments(dir)
	if len(segsAfter) >= len(segsBefore) {
		t.Fatalf("checkpoint trimmed nothing: %d -> %d segments", len(segsBefore), len(segsAfter))
	}
	want := snapshotOf(t, d.DB)
	crash(t, d)
	d2 := mustOpen(t, dir, Options{})
	defer d2.Close()
	if got := snapshotOf(t, d2.DB); !bytes.Equal(got, want) {
		t.Fatalf("post-trim recovery mismatch")
	}
}

func TestCorruptNewestCheckpointFallsBack(t *testing.T) {
	dir := t.TempDir()
	d := mustOpen(t, dir, Options{})
	tab, err := d.DB.CreateTable(testSchema("t"))
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.Insert(store.Row{"id": int64(1), "val": "keep", "ts": time.Unix(0, 0).UTC()}); err != nil {
		t.Fatal(err)
	}
	want := snapshotOf(t, d.DB)
	if err := d.Close(); err != nil { // real checkpoint
		t.Fatal(err)
	}
	// A corrupt "newer" checkpoint must be skipped, not trusted.
	if err := os.WriteFile(filepath.Join(dir, checkpointName(1<<40)), []byte("{garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	d2 := mustOpen(t, dir, Options{})
	defer d2.Close()
	if got := snapshotOf(t, d2.DB); !bytes.Equal(got, want) {
		t.Fatalf("fallback recovery mismatch\ngot  %s\nwant %s", got, want)
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for in, want := range map[string]SyncPolicy{
		"group": SyncGroup, "": SyncGroup,
		"always": SyncPerCommit, "per-commit": SyncPerCommit,
		"none": SyncNone, "off": SyncNone,
	} {
		got, err := ParseSyncPolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseSyncPolicy("bogus"); err == nil {
		t.Fatal("ParseSyncPolicy(bogus): want error")
	}
}
