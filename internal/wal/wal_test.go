package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/store"
)

func testSchema(name string) store.Schema {
	return store.Schema{
		Name: name,
		Columns: []store.Column{
			{Name: "id", Type: store.Int},
			{Name: "val", Type: store.String},
			{Name: "ts", Type: store.Time},
		},
		Key: []string{"id"},
	}
}

func mustOpen(t *testing.T, dir string, opt Options) *Durable {
	t.Helper()
	d, err := Open(dir, opt)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return d
}

// crash closes the log without checkpointing — what a power cut leaves
// behind, minus the torn tail (tests that want one truncate the file).
func crash(t *testing.T, d *Durable) {
	t.Helper()
	d.DB.SetLogger(nil)
	if err := d.wal.Close(); err != nil {
		t.Fatalf("crash close: %v", err)
	}
}

func snapshotOf(t *testing.T, db *store.DB) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := db.Snapshot(&buf); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	return buf.Bytes()
}

func TestFrameRoundTripAndTear(t *testing.T) {
	var buf []byte
	payloads := [][]byte{[]byte("one"), []byte("twotwo"), []byte(`{"x":3}`)}
	for _, p := range payloads {
		buf = appendFrame(buf, p)
	}
	off := 0
	for i, want := range payloads {
		got, n, err := nextFrame(buf[off:])
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d: got %q want %q", i, got, want)
		}
		off += n
	}
	if _, _, err := nextFrame(buf[off:]); err == nil || err.Error() != "EOF" {
		t.Fatalf("clean end: want io.EOF, got %v", err)
	}
	// Every possible truncation of the valid log is a tear or a clean
	// prefix — never an error, never a bogus frame.
	for cut := 0; cut < len(buf); cut++ {
		data := buf[:cut]
		o := 0
		for {
			_, n, err := nextFrame(data[o:])
			if err != nil {
				break
			}
			o += n
		}
		if o > cut {
			t.Fatalf("cut %d: consumed %d past the cut", cut, o)
		}
	}
	// A flipped byte must fail the checksum of its frame.
	bad := append([]byte(nil), buf...)
	bad[frameHeader+1] ^= 0xff
	if _, _, err := nextFrame(bad); err != errTorn {
		t.Fatalf("corrupt payload: want errTorn, got %v", err)
	}
}

func TestDurableRestartCleanAndCrash(t *testing.T) {
	dir := t.TempDir()
	d := mustOpen(t, dir, Options{})
	tab, err := d.DB.CreateTable(testSchema("t"))
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.CreateIndex("val"); err != nil {
		t.Fatal(err)
	}
	ts := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	for i := int64(0); i < 10; i++ {
		if err := tab.Insert(store.Row{"id": i, "val": "v", "ts": ts}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tab.Update(store.Row{"val": "updated"}, int64(3)); err != nil {
		t.Fatal(err)
	}
	if err := tab.Delete(int64(7)); err != nil {
		t.Fatal(err)
	}
	want := snapshotOf(t, d.DB)

	// Clean close: checkpoint + trimmed log.
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2 := mustOpen(t, dir, Options{})
	if got := snapshotOf(t, d2.DB); !bytes.Equal(got, want) {
		t.Fatalf("clean restart: snapshot mismatch\ngot  %s\nwant %s", got, want)
	}

	// Crash (no checkpoint): mutations after the last checkpoint come
	// back from the log alone.
	tab2, err := d2.DB.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	if err := tab2.Insert(store.Row{"id": int64(100), "val": "post-checkpoint", "ts": ts}); err != nil {
		t.Fatal(err)
	}
	want2 := snapshotOf(t, d2.DB)
	crash(t, d2)

	d3 := mustOpen(t, dir, Options{})
	defer d3.Close()
	if got := snapshotOf(t, d3.DB); !bytes.Equal(got, want2) {
		t.Fatalf("crash restart: snapshot mismatch\ngot  %s\nwant %s", got, want2)
	}
	st := d3.Stats()
	if st.ReplayedRecords == 0 {
		t.Fatalf("crash restart: expected replayed records, got %+v", st)
	}
}

func TestTxUnitIsAtomicAcrossCrash(t *testing.T) {
	dir := t.TempDir()
	d := mustOpen(t, dir, Options{Sync: SyncPerCommit})
	if _, err := d.DB.CreateTable(testSchema("t")); err != nil {
		t.Fatal(err)
	}
	ts := time.Now().UTC()
	tx := d.DB.Begin()
	if err := tx.Insert("t", store.Row{"id": int64(1), "val": "a", "ts": ts}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Insert("t", store.Row{"id": int64(2), "val": "b", "ts": ts}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, segmentName(1))
	full, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	crash(t, d)

	// Chop the last byte: the tx record is torn, so NEITHER row may
	// survive — multi-row transactions are one atomic unit.
	if err := os.Truncate(seg, full.Size()-1); err != nil {
		t.Fatal(err)
	}
	d2 := mustOpen(t, dir, Options{})
	defer d2.Close()
	tab, err := d2.DB.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	if n := tab.Count(); n != 0 {
		t.Fatalf("torn tx replayed partially: %d rows", n)
	}
	if st := d2.Stats(); !st.TornTail {
		t.Fatalf("expected torn tail in stats, got %+v", st)
	}
}

func TestRollbackIsNotLogged(t *testing.T) {
	dir := t.TempDir()
	d := mustOpen(t, dir, Options{Sync: SyncPerCommit})
	if _, err := d.DB.CreateTable(testSchema("t")); err != nil {
		t.Fatal(err)
	}
	tx := d.DB.Begin()
	if err := tx.Insert("t", store.Row{"id": int64(1), "val": "x", "ts": time.Now().UTC()}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	crash(t, d)
	d2 := mustOpen(t, dir, Options{})
	defer d2.Close()
	tab, err := d2.DB.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	if n := tab.Count(); n != 0 {
		t.Fatalf("rolled-back tx resurfaced after recovery: %d rows", n)
	}
}

func TestGroupCommitConcurrent(t *testing.T) {
	dir := t.TempDir()
	d := mustOpen(t, dir, Options{Sync: SyncGroup})
	tab, err := d.DB.CreateTable(testSchema("t"))
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 8, 50
	var wg sync.WaitGroup
	for wr := 0; wr < writers; wr++ {
		wg.Add(1)
		go func(wr int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				id := int64(wr*perWriter + i)
				if err := tab.Insert(store.Row{"id": id, "val": "v", "ts": time.Unix(0, 0).UTC()}); err != nil {
					t.Errorf("insert %d: %v", id, err)
				}
			}
		}(wr)
	}
	wg.Wait()
	st := d.Stats()
	if st.Appends < writers*perWriter {
		t.Fatalf("appends %d < %d", st.Appends, writers*perWriter)
	}
	if st.Fsyncs >= st.Appends {
		t.Fatalf("group commit did not batch: %d fsyncs for %d appends", st.Fsyncs, st.Appends)
	}
	crash(t, d)
	d2 := mustOpen(t, dir, Options{})
	defer d2.Close()
	tab2, err := d2.DB.Table("t")
	if err != nil {
		t.Fatal(err)
	}
	if n := tab2.Count(); n != writers*perWriter {
		t.Fatalf("recovered %d rows, want %d", n, writers*perWriter)
	}
}

func TestSegmentRotationAndCheckpointTrim(t *testing.T) {
	dir := t.TempDir()
	d := mustOpen(t, dir, Options{SegmentBytes: 512, Sync: SyncNone})
	tab, err := d.DB.CreateTable(testSchema("t"))
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 200; i++ {
		if err := tab.Insert(store.Row{"id": i, "val": "rotate-me-please", "ts": time.Unix(0, 0).UTC()}); err != nil {
			t.Fatal(err)
		}
	}
	if st := d.Stats(); st.Rotations == 0 {
		t.Fatalf("no rotations at 512-byte segments: %+v", st)
	}
	segsBefore, _ := listSegments(dir)
	if len(segsBefore) < 3 {
		t.Fatalf("want several segments, got %d", len(segsBefore))
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	segsAfter, _ := listSegments(dir)
	if len(segsAfter) >= len(segsBefore) {
		t.Fatalf("checkpoint trimmed nothing: %d -> %d segments", len(segsBefore), len(segsAfter))
	}
	want := snapshotOf(t, d.DB)
	crash(t, d)
	d2 := mustOpen(t, dir, Options{})
	defer d2.Close()
	if got := snapshotOf(t, d2.DB); !bytes.Equal(got, want) {
		t.Fatalf("post-trim recovery mismatch")
	}
}

func TestCorruptNewestCheckpointFallsBack(t *testing.T) {
	dir := t.TempDir()
	d := mustOpen(t, dir, Options{})
	tab, err := d.DB.CreateTable(testSchema("t"))
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.Insert(store.Row{"id": int64(1), "val": "keep", "ts": time.Unix(0, 0).UTC()}); err != nil {
		t.Fatal(err)
	}
	want := snapshotOf(t, d.DB)
	if err := d.Close(); err != nil { // real checkpoint
		t.Fatal(err)
	}
	// A corrupt "newer" checkpoint must be skipped, not trusted.
	if err := os.WriteFile(filepath.Join(dir, checkpointName(1<<40)), []byte("{garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	d2 := mustOpen(t, dir, Options{})
	defer d2.Close()
	if got := snapshotOf(t, d2.DB); !bytes.Equal(got, want) {
		t.Fatalf("fallback recovery mismatch\ngot  %s\nwant %s", got, want)
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for in, want := range map[string]SyncPolicy{
		"group": SyncGroup, "": SyncGroup,
		"always": SyncPerCommit, "per-commit": SyncPerCommit,
		"none": SyncNone, "off": SyncNone,
	} {
		got, err := ParseSyncPolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseSyncPolicy("bogus"); err == nil {
		t.Fatal("ParseSyncPolicy(bogus): want error")
	}
}
