package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/store"
)

// ErrBadFrames reports a shipped batch that failed verification (torn
// or corrupt frame, or an LSN out of sequence). The whole batch is
// rejected — nothing is written or applied — so the follower simply
// re-requests from its unchanged applied LSN.
var ErrBadFrames = errors.New("wal: shipped batch torn, corrupt, or out of sequence")

// Receiver is the follower side of WAL shipping: it appends shipped
// frames to its own segment files (same layout and naming as the
// primary's log, byte-identical frames) and applies each record to its
// database through the replay path. A Receiver's data directory is a
// valid WAL directory — promotion closes the Receiver and boots a full
// node with wal.Open over the same directory.
//
// A Receiver is not safe for concurrent use; the follower's pull loop
// is its single writer.
type Receiver struct {
	dir      string
	segBytes int64

	mu       sync.Mutex
	db       *store.DB
	f        *os.File // current segment (nil until first append)
	segSize  int64
	segFirst uint64
	applied  uint64
	// bytesSinceCheckpoint triggers periodic follower checkpoints so
	// promotion replay and disk usage stay bounded.
	bytesSinceCheckpoint int64
	closed               bool
}

// OpenReceiver recovers (or initializes) a follower data directory:
// restore the newest checkpoint, replay the log tail above it (torn
// tails truncated exactly as Open does), and resume appending where
// the last shipped record left off — a restarted follower re-requests
// from its applied LSN, mid-segment.
func OpenReceiver(dir string) (*Receiver, error) {
	if dir == "" {
		return nil, fmt.Errorf("wal: receiver data directory required")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	db := store.NewDB()
	cpLSN, err := restoreNewestCheckpoint(dir, db)
	if err != nil {
		return nil, err
	}
	res, err := Replay(dir, db, cpLSN)
	if err != nil {
		return nil, err
	}
	r := &Receiver{dir: dir, segBytes: 4 << 20, db: db, applied: res.LastLSN}
	if err := r.openTail(); err != nil {
		return nil, err
	}
	return r, nil
}

// openTail opens the newest non-empty segment for appending (removing
// empty trailing segments, mirroring openWAL's invariant that a
// segment's name is the first LSN it holds).
func (r *Receiver) openTail() error {
	segs, err := listSegments(r.dir)
	if err != nil {
		return err
	}
	first, size := r.applied+1, int64(0)
	for len(segs) > 0 {
		last := segs[len(segs)-1]
		fi, err := os.Stat(last.path)
		if err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		if fi.Size() > 0 {
			first, size = last.first, fi.Size()
			break
		}
		if err := os.Remove(last.path); err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		segs = segs[:len(segs)-1]
	}
	f, err := os.OpenFile(filepath.Join(r.dir, segmentName(first)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	r.f = f
	r.segSize = size
	r.segFirst = first
	return syncDir(r.dir)
}

// DB returns the follower's live database. The pointer changes after
// InstallSnapshot.
func (r *Receiver) DB() *store.DB {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.db
}

// AppliedLSN reports the highest LSN durably applied.
func (r *Receiver) AppliedLSN() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.applied
}

// AppendFrames verifies, persists, and applies one shipped batch. The
// whole batch is verified first — every frame's CRC, every LSN
// contiguous from applied+1 (an already-applied prefix from a
// duplicated delivery is skipped) — and any defect rejects the entire
// batch with ErrBadFrames before a byte is written. On success the new
// frames are appended to the follower's segment files byte-identically,
// fsynced once, then applied to the database. Returns the number of
// records applied.
func (r *Receiver) AppendFrames(frames []byte) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return 0, ErrClosed
	}

	// Pass 1: verify the whole batch.
	var recs []record
	start := -1 // byte offset where new (unapplied) frames begin
	off := 0
	want := r.applied + 1
	for off < len(frames) {
		payload, n, ferr := nextFrame(frames[off:])
		if ferr != nil {
			return 0, fmt.Errorf("%w: frame at offset %d", ErrBadFrames, off)
		}
		rec, derr := decodeRecord(payload)
		if derr != nil {
			return 0, fmt.Errorf("%w: %v", ErrBadFrames, derr)
		}
		switch {
		case rec.LSN < want:
			// Duplicate delivery of an already-applied prefix.
		case rec.LSN == want:
			if start < 0 {
				start = off
			}
			recs = append(recs, rec)
			want++
		default:
			return 0, fmt.Errorf("%w: LSN gap: got %d, want %d", ErrBadFrames, rec.LSN, want)
		}
		off += n
	}
	if len(recs) == 0 {
		return 0, nil
	}

	// Pass 2: persist. Rotation at batch boundaries, like group commit.
	buf := frames[start:]
	if r.segSize >= r.segBytes {
		if err := r.rotate(recs[0].LSN); err != nil {
			return 0, err
		}
	}
	if _, err := r.f.Write(buf); err != nil {
		return 0, fmt.Errorf("wal: receiver write: %w", err)
	}
	if err := r.f.Sync(); err != nil {
		return 0, fmt.Errorf("wal: receiver sync: %w", err)
	}
	r.segSize += int64(len(buf))
	r.bytesSinceCheckpoint += int64(len(buf))

	// Pass 3: apply in order. A failure here is fatal to the follower —
	// disk and memory have diverged — so surface it loudly.
	for _, rec := range recs {
		if err := applyRecord(r.db, rec); err != nil {
			return 0, fmt.Errorf("wal: receiver apply %d: %w", rec.LSN, err)
		}
		r.applied = rec.LSN
	}
	return len(recs), nil
}

// rotate closes the current segment and starts a new one whose name is
// the first LSN it will hold.
func (r *Receiver) rotate(nextLSN uint64) error {
	if err := r.f.Sync(); err != nil {
		return fmt.Errorf("wal: receiver rotate sync: %w", err)
	}
	if err := r.f.Close(); err != nil {
		return fmt.Errorf("wal: receiver rotate close: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(r.dir, segmentName(nextLSN)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: receiver rotate: %w", err)
	}
	r.f = f
	r.segSize = 0
	r.segFirst = nextLSN
	return syncDir(r.dir)
}

// InstallSnapshot replaces the follower's state wholesale with a
// bootstrap snapshot at lsn: all prior segments and checkpoints are
// superseded, the snapshot becomes the follower's checkpoint, and
// shipping resumes at lsn+1.
func (r *Receiver) InstallSnapshot(data []byte, lsn uint64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return ErrClosed
	}
	db := store.NewDB()
	if err := db.Restore(bytes.NewReader(data)); err != nil {
		return fmt.Errorf("wal: install snapshot: %w", err)
	}
	// Persist the new checkpoint first, then drop the superseded
	// history: a crash in between leaves both and recovery restores the
	// newest checkpoint, which is the one just written.
	if err := writeCheckpointFile(r.dir, data, lsn); err != nil {
		return err
	}
	segs, err := listSegments(r.dir)
	if err != nil {
		return err
	}
	if r.f != nil {
		r.f.Close()
		r.f = nil
	}
	for _, seg := range segs {
		if err := os.Remove(seg.path); err != nil {
			return fmt.Errorf("wal: install snapshot: %w", err)
		}
	}
	cps, err := listCheckpoints(r.dir)
	if err != nil {
		return err
	}
	for _, cp := range cps {
		if cp.first != lsn {
			_ = os.Remove(cp.path)
		}
	}
	if err := syncDir(r.dir); err != nil {
		return fmt.Errorf("wal: install snapshot: %w", err)
	}
	r.db = db
	r.applied = lsn
	r.bytesSinceCheckpoint = 0
	return r.openTail()
}

// MaybeCheckpoint writes a follower checkpoint once thresholdBytes of
// shipped frames have accumulated since the last one, pruning old
// checkpoints and trimming fully-covered segments. Returns whether a
// checkpoint was taken.
func (r *Receiver) MaybeCheckpoint(thresholdBytes int64) (bool, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed || r.bytesSinceCheckpoint < thresholdBytes {
		return false, nil
	}
	return true, r.checkpointLocked()
}

// Checkpoint writes a follower checkpoint unconditionally.
func (r *Receiver) Checkpoint() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return ErrClosed
	}
	return r.checkpointLocked()
}

func (r *Receiver) checkpointLocked() error {
	var buf bytes.Buffer
	if err := r.db.Snapshot(&buf); err != nil {
		return fmt.Errorf("wal: receiver checkpoint: %w", err)
	}
	if err := writeCheckpointFile(r.dir, buf.Bytes(), r.applied); err != nil {
		return err
	}
	keepLSN, err := pruneCheckpoints(r.dir, r.applied)
	if err != nil {
		return err
	}
	if _, err := trimSegmentsBelow(r.dir, keepLSN+1, r.segFirst); err != nil {
		return err
	}
	r.bytesSinceCheckpoint = 0
	return nil
}

// Close fsyncs and closes the current segment. The database stays
// readable; the directory is ready for wal.Open (promotion).
func (r *Receiver) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil
	}
	r.closed = true
	if r.f == nil {
		return nil
	}
	if err := r.f.Sync(); err != nil {
		r.f.Close()
		return fmt.Errorf("wal: receiver close sync: %w", err)
	}
	return r.f.Close()
}
