package wal

import (
	"errors"
	"fmt"
	"os"

	"repro/internal/store"
)

// ReplayResult describes what a log replay did.
type ReplayResult struct {
	// LastLSN is the highest LSN applied (or skipped as already
	// covered); 0 when the log was empty.
	LastLSN uint64
	// Records and Txs count applied records / tx units.
	Records, Txs int
	// TornTail is true when the physically last segment ended in an
	// incomplete or corrupt record (the expected shape of a crash);
	// SkippedBytes is how much garbage replay truncated away, across
	// all segments.
	TornTail     bool
	SkippedBytes int64
}

// Replay applies every complete log record with LSN > after to db, in
// order. A torn or corrupt frame is physically truncated off its
// segment so the valid prefix stays appendable and a later recovery
// never re-reads the garbage. A tear is terminal only in the
// physically LAST segment (the normal crash shape); a tear in an
// earlier segment is the healed remnant of a previous crash whose
// recovery continued in the next segment, so replay proceeds there —
// the fsync-acked records it holds must not be lost. Replay fails
// loudly when the segments cannot reach the replay start or leave an
// LSN gap after a tear: silently skipping a gap would present stale
// data as current. Mutations are applied without firing triggers or
// re-logging.
//
// Replay is tolerant of a checkpoint snapshot that is slightly ahead
// of its recorded LSN (a mutation can reach the in-memory store just
// before its record is assigned): an insert over an existing row
// overwrites it, and an update/delete of a missing row is skipped —
// the later records that explain the mismatch are in the tail and
// replay in order.
func Replay(dir string, db *store.DB, after uint64) (ReplayResult, error) {
	var res ReplayResult
	res.LastLSN = after
	segs, err := listSegments(dir)
	if err != nil {
		return res, err
	}
	if len(segs) > 0 && segs[0].first > after+1 {
		return res, fmt.Errorf("wal: log starts at LSN %d but replay must start at %d: segments missing", segs[0].first, after+1)
	}
	for i, seg := range segs {
		// Skip segments that end at or below the checkpoint.
		if i+1 < len(segs) && segs[i+1].first <= after+1 {
			continue
		}
		data, err := os.ReadFile(seg.path)
		if err != nil {
			return res, fmt.Errorf("wal: replay %s: %w", seg.path, err)
		}
		off := 0
		torn := false
		for {
			payload, n, ferr := nextFrame(data[off:])
			if ferr != nil {
				torn = errors.Is(ferr, errTorn)
				break // torn, or io.EOF: clean end of segment
			}
			rec, derr := decodeRecord(payload)
			if derr != nil || (res.LastLSN > 0 && rec.LSN <= res.LastLSN && rec.LSN > after) {
				// Undecodable, or a replayed-duplicate LSN: an artifact
				// of a half-finished earlier recovery. Treat as a tear.
				torn = true
				break
			}
			if res.LastLSN > 0 && rec.LSN > res.LastLSN+1 {
				// A checksummed record ABOVE the expected LSN means
				// acked records are missing; truncating cannot repair
				// that, so refuse to come up with a silent hole.
				return res, fmt.Errorf("wal: replay %s: LSN gap: got record %d, want %d", seg.path, rec.LSN, res.LastLSN+1)
			}
			off += n
			if rec.LSN <= after {
				continue
			}
			if err := applyRecord(db, rec); err != nil {
				return res, err
			}
			res.LastLSN = rec.LSN
			res.Records++
			if rec.Kind == kindTx {
				res.Txs++
			}
		}
		if !torn {
			continue
		}
		res.SkippedBytes += int64(len(data) - off)
		if err := truncateTear(seg.path, int64(off)); err != nil {
			return res, err
		}
		if i+1 == len(segs) {
			res.TornTail = true
			return res, nil
		}
		if segs[i+1].first != res.LastLSN+1 {
			return res, fmt.Errorf("wal: tear in %s after LSN %d but next segment starts at %d: log gap", seg.path, res.LastLSN, segs[i+1].first)
		}
	}
	return res, nil
}

// truncateTear cuts a torn tail off a segment, keeping the first keep
// bytes (the valid frame prefix), and syncs the result.
func truncateTear(path string, keep int64) error {
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return fmt.Errorf("wal: truncate tear: %w", err)
	}
	defer f.Close()
	if err := f.Truncate(keep); err != nil {
		return fmt.Errorf("wal: truncate tear: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("wal: truncate tear: %w", err)
	}
	return nil
}

// applyRecord applies one record to db with upsert/skip tolerance (see
// Replay).
func applyRecord(db *store.DB, rec record) error {
	switch rec.Kind {
	case kindTable:
		if rec.Schema == nil {
			return fmt.Errorf("wal: record %d: table record without schema", rec.LSN)
		}
		err := db.ApplyDDLTable(docToSchema(rec.Schema))
		if errors.Is(err, store.ErrDupTable) {
			return nil // snapshot already has it
		}
		return err
	case kindIndex:
		return db.ApplyDDLIndex(rec.Table, rec.Col) // CreateIndex is idempotent
	case kindTx:
		for _, doc := range rec.Ops {
			op, err := docToOp(db, doc)
			if err != nil {
				return fmt.Errorf("wal: record %d: %w", rec.LSN, err)
			}
			if err := applyOp(db, op); err != nil {
				return fmt.Errorf("wal: record %d: %w", rec.LSN, err)
			}
		}
		return nil
	}
	return fmt.Errorf("wal: record %d: unknown kind %q", rec.LSN, rec.Kind)
}

// applyOp applies one op tolerantly: insert upserts, update/delete of
// a missing row is a no-op.
func applyOp(db *store.DB, op store.LoggedOp) error {
	err := db.ApplyLogged([]store.LoggedOp{op})
	switch {
	case err == nil:
		return nil
	case op.Op == store.OpInsert && errors.Is(err, store.ErrDupKey):
		// Upsert: replace the existing row with the logged one.
		t, terr := db.Table(op.Table)
		if terr != nil {
			return terr
		}
		var key []any
		for _, k := range t.Schema().Key {
			key = append(key, op.Row[k])
		}
		del := store.LoggedOp{Table: op.Table, Op: store.OpDelete, Key: key}
		if err := db.ApplyLogged([]store.LoggedOp{del, op}); err != nil {
			return err
		}
		return nil
	case op.Op != store.OpInsert && errors.Is(err, store.ErrNoRow):
		return nil
	}
	return err
}
