package wal

import (
	"errors"
	"fmt"
	"os"

	"repro/internal/store"
)

// ReplayResult describes what a log replay did.
type ReplayResult struct {
	// LastLSN is the highest LSN applied (or skipped as already
	// covered); 0 when the log was empty.
	LastLSN uint64
	// Records and Txs count applied records / tx units.
	Records, Txs int
	// TornTail is true when replay stopped at an incomplete or corrupt
	// record; SkippedBytes is how much of the log it discarded.
	TornTail     bool
	SkippedBytes int64
}

// Replay applies every complete log record with LSN > after to db, in
// order, stopping at the first torn or corrupt record (everything
// after a tear is untrusted, including later segments). Mutations are
// applied without firing triggers or re-logging.
//
// Replay is tolerant of a checkpoint snapshot that is slightly ahead
// of its recorded LSN (a mutation can reach the in-memory store just
// before its record is assigned): an insert over an existing row
// overwrites it, and an update/delete of a missing row is skipped —
// the later records that explain the mismatch are in the tail and
// replay in order.
func Replay(dir string, db *store.DB, after uint64) (ReplayResult, error) {
	var res ReplayResult
	res.LastLSN = after
	segs, err := listSegments(dir)
	if err != nil {
		return res, err
	}
	for i, seg := range segs {
		// Skip segments that end at or below the checkpoint.
		if i+1 < len(segs) && segs[i+1].first <= after+1 {
			continue
		}
		data, err := os.ReadFile(seg.path)
		if err != nil {
			return res, fmt.Errorf("wal: replay %s: %w", seg.path, err)
		}
		off := 0
		for {
			payload, n, err := nextFrame(data[off:])
			if err != nil {
				if errors.Is(err, errTorn) {
					res.TornTail = true
					res.SkippedBytes += tailBytes(segs, i, int64(len(data)-off))
					return res, nil
				}
				break // io.EOF: clean end of segment
			}
			rec, derr := decodeRecord(payload)
			if derr != nil || (res.LastLSN > 0 && rec.LSN != res.LastLSN+1 && rec.LSN > after) {
				// Undecodable or out-of-sequence: treat like a tear.
				res.TornTail = true
				res.SkippedBytes += tailBytes(segs, i, int64(len(data)-off))
				return res, nil
			}
			off += n
			if rec.LSN <= after {
				continue
			}
			if err := applyRecord(db, rec); err != nil {
				return res, err
			}
			res.LastLSN = rec.LSN
			res.Records++
			if rec.Kind == kindTx {
				res.Txs++
			}
		}
	}
	return res, nil
}

// tailBytes sums the discarded remainder of the current segment plus
// every later segment (untrusted once a tear is seen).
func tailBytes(segs []segmentInfo, i int, rest int64) int64 {
	total := rest
	for _, s := range segs[i+1:] {
		if fi, err := os.Stat(s.path); err == nil {
			total += fi.Size()
		}
	}
	return total
}

// applyRecord applies one record to db with upsert/skip tolerance (see
// Replay).
func applyRecord(db *store.DB, rec record) error {
	switch rec.Kind {
	case kindTable:
		if rec.Schema == nil {
			return fmt.Errorf("wal: record %d: table record without schema", rec.LSN)
		}
		err := db.ApplyDDLTable(docToSchema(rec.Schema))
		if errors.Is(err, store.ErrDupTable) {
			return nil // snapshot already has it
		}
		return err
	case kindIndex:
		return db.ApplyDDLIndex(rec.Table, rec.Col) // CreateIndex is idempotent
	case kindTx:
		for _, doc := range rec.Ops {
			op, err := docToOp(db, doc)
			if err != nil {
				return fmt.Errorf("wal: record %d: %w", rec.LSN, err)
			}
			if err := applyOp(db, op); err != nil {
				return fmt.Errorf("wal: record %d: %w", rec.LSN, err)
			}
		}
		return nil
	}
	return fmt.Errorf("wal: record %d: unknown kind %q", rec.LSN, rec.Kind)
}

// applyOp applies one op tolerantly: insert upserts, update/delete of
// a missing row is a no-op.
func applyOp(db *store.DB, op store.LoggedOp) error {
	err := db.ApplyLogged([]store.LoggedOp{op})
	switch {
	case err == nil:
		return nil
	case op.Op == store.OpInsert && errors.Is(err, store.ErrDupKey):
		// Upsert: replace the existing row with the logged one.
		t, terr := db.Table(op.Table)
		if terr != nil {
			return terr
		}
		var key []any
		for _, k := range t.Schema().Key {
			key = append(key, op.Row[k])
		}
		del := store.LoggedOp{Table: op.Table, Op: store.OpDelete, Key: key}
		if err := db.ApplyLogged([]store.LoggedOp{del, op}); err != nil {
			return err
		}
		return nil
	case op.Op != store.OpInsert && errors.Is(err, store.ErrNoRow):
		return nil
	}
	return err
}
