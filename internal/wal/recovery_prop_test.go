package wal

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/store"
)

// The crash-recovery property: apply a random mutation script through
// a Durable, crash at a random byte offset (truncate or corrupt the
// log tail), recover, and the recovered DB must equal a reference DB
// that replayed exactly the completed atomic units — no more, no less.

// scriptUnit is one atomic unit of the script: it appends exactly one
// WAL record, and applies identically to a plain reference DB.
type scriptUnit struct {
	name  string
	apply func(db *store.DB) error
}

// genScript builds a deterministic random script. The generator tracks
// live keys per table so every op is valid when replayed in order.
func genScript(rng *rand.Rand, nops int) []scriptUnit {
	base := time.Date(2026, 8, 6, 9, 0, 0, 0, time.UTC)
	units := []scriptUnit{
		{name: "ddl t1", apply: func(db *store.DB) error {
			_, err := db.CreateTable(testSchema("t1"))
			return err
		}},
		{name: "ddl t2", apply: func(db *store.DB) error {
			_, err := db.CreateTable(store.Schema{
				Name: "t2",
				Columns: []store.Column{
					{Name: "k", Type: store.String},
					{Name: "n", Type: store.Int},
					{Name: "on", Type: store.Bool},
				},
				Key: []string{"k"},
			})
			return err
		}},
		{name: "idx t1.val", apply: func(db *store.DB) error {
			t, err := db.Table("t1")
			if err != nil {
				return err
			}
			return t.CreateIndex("val")
		}},
	}

	var nextID int64
	live1 := []int64{} // live keys in t1
	live2 := []string{}
	type op struct {
		table string
		kind  store.Op
		id    int64
		key   string
		val   string
		n     int64
	}
	// makeOp draws one valid op and updates the key model.
	makeOp := func() op {
		for {
			switch rng.Intn(6) {
			case 0, 1: // insert t1
				id := nextID
				nextID++
				live1 = append(live1, id)
				return op{table: "t1", kind: store.OpInsert, id: id, val: fmt.Sprintf("v%d", rng.Intn(1000))}
			case 2: // update t1
				if len(live1) == 0 {
					continue
				}
				return op{table: "t1", kind: store.OpUpdate, id: live1[rng.Intn(len(live1))], val: fmt.Sprintf("u%d", rng.Intn(1000))}
			case 3: // delete t1
				if len(live1) == 0 {
					continue
				}
				i := rng.Intn(len(live1))
				id := live1[i]
				live1 = append(live1[:i], live1[i+1:]...)
				return op{table: "t1", kind: store.OpDelete, id: id}
			case 4: // insert t2
				k := fmt.Sprintf("k%d", nextID)
				nextID++
				live2 = append(live2, k)
				return op{table: "t2", kind: store.OpInsert, key: k, n: rng.Int63n(100)}
			default: // update t2
				if len(live2) == 0 {
					continue
				}
				return op{table: "t2", kind: store.OpUpdate, key: live2[rng.Intn(len(live2))], n: rng.Int63n(100)}
			}
		}
	}
	applyOne := func(db *store.DB, o op, via *store.Tx) error {
		row1 := func(o op) store.Row {
			return store.Row{"id": o.id, "val": o.val, "ts": base.Add(time.Duration(o.id) * time.Minute)}
		}
		switch {
		case o.table == "t1" && o.kind == store.OpInsert:
			if via != nil {
				return via.Insert("t1", row1(o))
			}
			t, _ := db.Table("t1")
			return t.Insert(row1(o))
		case o.table == "t1" && o.kind == store.OpUpdate:
			if via != nil {
				return via.Update("t1", store.Row{"val": o.val}, o.id)
			}
			t, _ := db.Table("t1")
			return t.Update(store.Row{"val": o.val}, o.id)
		case o.table == "t1" && o.kind == store.OpDelete:
			if via != nil {
				return via.Delete("t1", o.id)
			}
			t, _ := db.Table("t1")
			return t.Delete(o.id)
		case o.table == "t2" && o.kind == store.OpInsert:
			r := store.Row{"k": o.key, "n": o.n, "on": o.n%2 == 0}
			if via != nil {
				return via.Insert("t2", r)
			}
			t, _ := db.Table("t2")
			return t.Insert(r)
		default:
			if via != nil {
				return via.Update("t2", store.Row{"n": o.n}, o.key)
			}
			t, _ := db.Table("t2")
			return t.Update(store.Row{"n": o.n}, o.key)
		}
	}

	for len(units) < nops {
		if rng.Intn(4) == 0 {
			// Multi-op transaction: 2-4 ops, one atomic record.
			k := 2 + rng.Intn(3)
			ops := make([]op, 0, k)
			for j := 0; j < k; j++ {
				ops = append(ops, makeOp())
			}
			units = append(units, scriptUnit{
				name: fmt.Sprintf("tx(%d)", k),
				apply: func(db *store.DB) error {
					tx := db.Begin()
					for _, o := range ops {
						if err := applyOne(db, o, tx); err != nil {
							tx.Rollback()
							return err
						}
					}
					return tx.Commit()
				},
			})
			continue
		}
		o := makeOp()
		units = append(units, scriptUnit{
			name:  fmt.Sprintf("%s %v", o.table, o.kind),
			apply: func(db *store.DB) error { return applyOne(db, o, nil) },
		})
	}
	return units
}

// secondCycleUnits builds a post-recovery workload that is valid no
// matter where the first crash cut: it touches only fresh high-id rows
// (plus an ensure-table unit, since the first cut may even precede the
// DDL record).
func secondCycleUnits(rng *rand.Rand) []scriptUnit {
	base := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	units := []scriptUnit{{name: "c2 ensure t1", apply: func(db *store.DB) error {
		if _, err := db.Table("t1"); err == nil {
			return nil
		}
		_, err := db.CreateTable(testSchema("t1"))
		return err
	}}}
	next := int64(10_000 + rng.Intn(100))
	row := func(id int64, val string) store.Row {
		return store.Row{"id": id, "val": val, "ts": base}
	}
	for i := 0; i < 8; i++ {
		id := next
		next++
		if i%3 != 2 {
			units = append(units, scriptUnit{
				name: fmt.Sprintf("c2 insert %d", id),
				apply: func(db *store.DB) error {
					t, err := db.Table("t1")
					if err != nil {
						return err
					}
					return t.Insert(row(id, "c2"))
				},
			})
			continue
		}
		id2 := next
		next++
		units = append(units, scriptUnit{
			name: fmt.Sprintf("c2 tx %d", id),
			apply: func(db *store.DB) error {
				tx := db.Begin()
				if err := tx.Insert("t1", row(id, "a")); err != nil {
					tx.Rollback()
					return err
				}
				if err := tx.Insert("t1", row(id2, "b")); err != nil {
					tx.Rollback()
					return err
				}
				if err := tx.Update("t1", store.Row{"val": "c"}, id); err != nil {
					tx.Rollback()
					return err
				}
				return tx.Commit()
			},
		})
	}
	return units
}

func TestCrashRecoveryProperty(t *testing.T) {
	const seeds = 12
	for seed := int64(0); seed < seeds; seed++ {
		for _, mode := range []string{"truncate", "corrupt"} {
			t.Run(fmt.Sprintf("seed%d/%s", seed, mode), func(t *testing.T) {
				rng := rand.New(rand.NewSource(seed))
				units := genScript(rng, 30+rng.Intn(20))

				dir := t.TempDir()
				// SyncPerCommit: each unit is fully on disk when its
				// call returns, so the file size after each unit is
				// that unit's log boundary.
				d := mustOpen(t, dir, Options{Sync: SyncPerCommit, SegmentBytes: 1 << 30})
				seg := filepath.Join(dir, segmentName(1))
				boundaries := make([]int64, 0, len(units))
				for _, u := range units {
					if err := u.apply(d.DB); err != nil {
						t.Fatalf("unit %q: %v", u.name, err)
					}
					fi, err := os.Stat(seg)
					if err != nil {
						t.Fatalf("stat after %q: %v", u.name, err)
					}
					boundaries = append(boundaries, fi.Size())
				}
				crash(t, d)

				total := boundaries[len(boundaries)-1]
				cut := rng.Int63n(total + 1)
				switch mode {
				case "truncate":
					if err := os.Truncate(seg, cut); err != nil {
						t.Fatal(err)
					}
				case "corrupt":
					if cut == total {
						cut = total - 1
					}
					data, err := os.ReadFile(seg)
					if err != nil {
						t.Fatal(err)
					}
					data[cut] ^= 0x5a
					if err := os.WriteFile(seg, data, 0o644); err != nil {
						t.Fatal(err)
					}
				}
				// Units wholly at or below the cut survive; the unit
				// containing the cut (and everything after) must not.
				completed := 0
				for _, b := range boundaries {
					if b <= cut {
						completed++
					}
				}

				ref := store.NewDB()
				for _, u := range units[:completed] {
					if err := u.apply(ref); err != nil {
						t.Fatalf("reference unit %q: %v", u.name, err)
					}
				}

				d2 := mustOpen(t, dir, Options{Sync: SyncPerCommit, SegmentBytes: 1 << 30})
				got := snapshotOf(t, d2.DB)
				want := snapshotOf(t, ref)
				if !bytes.Equal(got, want) {
					t.Fatalf("recovered state diverges after %s at %d/%d (%d/%d units complete)\ngot  %s\nwant %s",
						mode, cut, total, completed, len(units), got, want)
				}

				// Second crash cycle: recovery truncated the tear and
				// appends after it, so another workload + another tear
				// must again lose exactly the incomplete tail — and
				// nothing recovered or committed before it.
				fi, err := os.Stat(seg)
				if err != nil {
					t.Fatal(err)
				}
				valid := fi.Size() // post-truncation prefix
				units2 := secondCycleUnits(rng)
				boundaries2 := make([]int64, 0, len(units2))
				for _, u := range units2 {
					if err := u.apply(d2.DB); err != nil {
						t.Fatalf("cycle2 unit %q: %v", u.name, err)
					}
					fi, err := os.Stat(seg)
					if err != nil {
						t.Fatal(err)
					}
					boundaries2 = append(boundaries2, fi.Size())
				}
				crash(t, d2)
				total2 := boundaries2[len(boundaries2)-1]
				cut2 := valid + rng.Int63n(total2-valid+1)
				if mode == "corrupt" && cut2 == total2 {
					cut2 = total2 - 1
				}
				switch mode {
				case "truncate":
					if err := os.Truncate(seg, cut2); err != nil {
						t.Fatal(err)
					}
				case "corrupt":
					data, err := os.ReadFile(seg)
					if err != nil {
						t.Fatal(err)
					}
					data[cut2] ^= 0x5a
					if err := os.WriteFile(seg, data, 0o644); err != nil {
						t.Fatal(err)
					}
				}
				completed2 := 0
				for _, b := range boundaries2 {
					if b <= cut2 {
						completed2++
					}
				}
				for _, u := range units2[:completed2] {
					if err := u.apply(ref); err != nil {
						t.Fatalf("cycle2 reference unit %q: %v", u.name, err)
					}
				}
				d3 := mustOpen(t, dir, Options{})
				defer d3.Close()
				got = snapshotOf(t, d3.DB)
				want = snapshotOf(t, ref)
				if !bytes.Equal(got, want) {
					t.Fatalf("second-crash state diverges after %s at %d/%d (%d/%d units complete)\ngot  %s\nwant %s",
						mode, cut2, total2, completed2, len(units2), got, want)
				}
			})
		}
	}
}
