// Package wal is the durability subsystem of the SyD device store: a
// segmented, CRC32-checksummed, length-prefixed append-only log with
// group commit, checkpointing, and torn-tail-tolerant crash recovery.
//
// The paper's prototype delegated durability of the calendar and link
// databases to Oracle 8i (§5.3); our portable substitution
// (internal/store) is in-memory, so without this package a device
// crash loses every committed meeting, link, and waiting-link row —
// exactly the state the two-phase mark-and-lock protocol (§4.3) works
// to keep consistent. A wal.Durable wraps a store.DB: every committed
// mutation (DDL and row changes, multi-row transactions framed as one
// atomic record) is appended to the log before the mutating call
// returns, a checkpoint writes the store's deterministic snapshot and
// trims log segments below it, and Open replays snapshot + log tail
// after a crash, skipping incomplete trailing records.
package wal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/store"
)

// Record kinds.
const (
	kindTable = "table" // CreateTable DDL
	kindIndex = "index" // CreateIndex DDL
	kindTx    = "tx"    // one atomic unit of row mutations
)

// record is one log entry. A record is the unit of atomicity: it is
// either fully on disk with a valid checksum or it is (part of) the
// torn tail and recovery discards it.
type record struct {
	LSN  uint64 `json:"lsn"`
	Kind string `json:"kind"`

	// kindTable
	Schema *schemaDoc `json:"schema,omitempty"`
	// kindIndex
	Table string `json:"table,omitempty"`
	Col   string `json:"col,omitempty"`
	// kindTx
	Ops []opDoc `json:"ops,omitempty"`
}

type schemaDoc struct {
	Name    string      `json:"name"`
	Columns []columnDoc `json:"columns"`
	Key     []string    `json:"key"`
}

type columnDoc struct {
	Name string `json:"name"`
	Type int    `json:"type"`
}

type opDoc struct {
	Table string         `json:"table"`
	Op    int            `json:"op"`
	Row   map[string]any `json:"row,omitempty"`
	Key   []any          `json:"key,omitempty"`
}

func schemaToDoc(s store.Schema) *schemaDoc {
	doc := &schemaDoc{Name: s.Name, Key: append([]string(nil), s.Key...)}
	for _, c := range s.Columns {
		doc.Columns = append(doc.Columns, columnDoc{Name: c.Name, Type: int(c.Type)})
	}
	return doc
}

func docToSchema(doc *schemaDoc) store.Schema {
	s := store.Schema{Name: doc.Name, Key: append([]string(nil), doc.Key...)}
	for _, c := range doc.Columns {
		s.Columns = append(s.Columns, store.Column{Name: c.Name, Type: store.ColType(c.Type)})
	}
	return s
}

// opToDoc encodes a committed mutation with JSON-safe values.
func opToDoc(op store.LoggedOp) opDoc {
	doc := opDoc{Table: op.Table, Op: int(op.Op)}
	if op.Row != nil {
		doc.Row = make(map[string]any, len(op.Row))
		for c, v := range op.Row {
			doc.Row[c] = store.EncodeValue(v)
		}
	}
	for _, v := range op.Key {
		doc.Key = append(doc.Key, store.EncodeValue(v))
	}
	return doc
}

// docToOp decodes a mutation against the schemas in db (the table must
// exist by the time its ops replay — its DDL record or the checkpoint
// snapshot precedes them in the log).
func docToOp(db *store.DB, doc opDoc) (store.LoggedOp, error) {
	t, err := db.Table(doc.Table)
	if err != nil {
		return store.LoggedOp{}, err
	}
	sch := t.Schema()
	cols := make(map[string]store.ColType, len(sch.Columns))
	for _, c := range sch.Columns {
		cols[c.Name] = c.Type
	}
	op := store.LoggedOp{Table: doc.Table, Op: store.Op(doc.Op)}
	if doc.Row != nil {
		op.Row = make(store.Row, len(doc.Row))
		for c, v := range doc.Row {
			ct, ok := cols[c]
			if !ok {
				return store.LoggedOp{}, fmt.Errorf("wal: replay %s: %w: %q", doc.Table, store.ErrBadColumn, c)
			}
			dv, err := store.DecodeValue(ct, v)
			if err != nil {
				return store.LoggedOp{}, fmt.Errorf("wal: replay %s.%s: %w", doc.Table, c, err)
			}
			op.Row[c] = dv
		}
	}
	if len(doc.Key) > 0 {
		if len(doc.Key) != len(sch.Key) {
			return store.LoggedOp{}, fmt.Errorf("wal: replay %s: got %d key values, schema wants %d", doc.Table, len(doc.Key), len(sch.Key))
		}
		for i, v := range doc.Key {
			ct := cols[sch.Key[i]]
			dv, err := store.DecodeValue(ct, v)
			if err != nil {
				return store.LoggedOp{}, fmt.Errorf("wal: replay %s key %s: %w", doc.Table, sch.Key[i], err)
			}
			op.Key = append(op.Key, dv)
		}
	}
	return op, nil
}

// Framing: every record is [4B big-endian payload length][4B IEEE
// CRC32 of payload][payload]. A reader stops at the first frame that
// is short, oversized, or fails its checksum — that is the torn tail.

const (
	frameHeader = 8
	// maxPayload rejects garbage lengths in corrupt headers before any
	// allocation happens.
	maxPayload = 16 << 20
)

// errTorn marks the end of the valid log prefix. It is internal: scan
// reports it via the torn flag, never to callers.
var errTorn = errors.New("wal: torn or corrupt record")

// appendFrame appends the framed payload to buf and returns it.
func appendFrame(buf, payload []byte) []byte {
	var hdr [frameHeader]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// nextFrame parses one frame from data. It returns the payload and the
// total bytes consumed, io.EOF at a clean end, or errTorn when the
// remaining bytes do not form a complete valid frame.
func nextFrame(data []byte) (payload []byte, n int, err error) {
	if len(data) == 0 {
		return nil, 0, io.EOF
	}
	if len(data) < frameHeader {
		return nil, 0, errTorn
	}
	size := binary.BigEndian.Uint32(data[0:4])
	if size == 0 || size > maxPayload {
		return nil, 0, errTorn
	}
	end := frameHeader + int(size)
	if len(data) < end {
		return nil, 0, errTorn
	}
	payload = data[frameHeader:end]
	if crc32.ChecksumIEEE(payload) != binary.BigEndian.Uint32(data[4:8]) {
		return nil, 0, errTorn
	}
	return payload, end, nil
}

// encodeRecord marshals a record payload.
func encodeRecord(r record) ([]byte, error) {
	return json.Marshal(r)
}

// decodeRecord unmarshals a record payload.
func decodeRecord(payload []byte) (record, error) {
	var r record
	if err := json.Unmarshal(payload, &r); err != nil {
		return record{}, fmt.Errorf("wal: decode record: %w", err)
	}
	return r, nil
}
