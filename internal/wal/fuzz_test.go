package wal

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/store"
)

// FuzzWALReplay feeds arbitrary bytes to the replayer as a log segment:
// whatever the bytes, recovery must neither panic nor error on torn or
// corrupt input — it stops at the tear and reports what it kept.
func FuzzWALReplay(f *testing.F) {
	// Seed with a real log: DDL, inserts, an update, a delete, a tx.
	seedDir := f.TempDir()
	d, err := Open(seedDir, Options{Sync: SyncPerCommit})
	if err != nil {
		f.Fatal(err)
	}
	tab, err := d.DB.CreateTable(store.Schema{
		Name: "t",
		Columns: []store.Column{
			{Name: "id", Type: store.Int},
			{Name: "val", Type: store.String},
			{Name: "ts", Type: store.Time},
		},
		Key: []string{"id"},
	})
	if err != nil {
		f.Fatal(err)
	}
	ts := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	for i := int64(0); i < 4; i++ {
		if err := tab.Insert(store.Row{"id": i, "val": "seed", "ts": ts}); err != nil {
			f.Fatal(err)
		}
	}
	if err := tab.Update(store.Row{"val": "u"}, int64(1)); err != nil {
		f.Fatal(err)
	}
	if err := tab.Delete(int64(2)); err != nil {
		f.Fatal(err)
	}
	tx := d.DB.Begin()
	_ = tx.Insert("t", store.Row{"id": int64(9), "val": "tx", "ts": ts})
	_ = tx.Commit()
	d.DB.SetLogger(nil)
	if err := d.wal.Close(); err != nil {
		f.Fatal(err)
	}
	valid, err := os.ReadFile(filepath.Join(seedDir, segmentName(1)))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-3])              // torn tail
	f.Add([]byte{})                          // empty log
	f.Add([]byte("not a log at all"))        // garbage
	f.Add(append([]byte{0, 0, 0, 0}, 1))     // zero-length frame
	f.Add(append([]byte(nil), valid[8:]...)) // decapitated first frame

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segmentName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		db := store.NewDB()
		res, err := Replay(dir, db, 0)
		if err != nil {
			// Replay errors only on I/O or genuinely undecodable-but-
			// checksummed state; fuzz bytes with valid CRCs decode to
			// records we must either apply or reject as a tear, so an
			// error here means the frame passed CRC but broke apply —
			// acceptable only if it did not panic. Record and move on.
			t.Logf("replay error (no panic): %v", err)
			return
		}
		// A full Open over the same bytes must also recover.
		d, err := Open(dir, Options{})
		if err != nil {
			t.Logf("open error (no panic): %v", err)
			return
		}
		defer d.Close()
		_ = res
	})
}
