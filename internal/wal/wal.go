package wal

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/internal/wire"
)

// Metric series identifiers: the WAL reports under its own layer with
// a fixed pseudo-service, methods commit/fsync/batch/recovery/
// checkpoint.
const walService = "wal"

var (
	okCode  = wire.CodeOK
	errCode = wire.ErrCode("io")
)

// SyncPolicy says when appended records are fsynced.
type SyncPolicy int

// Sync policies.
const (
	// SyncGroup (default) is group commit: a background flusher writes
	// every queued record in one write(2) and covers the whole batch
	// with a single fsync; all committers in the batch share it.
	SyncGroup SyncPolicy = iota
	// SyncPerCommit writes and fsyncs every record individually — the
	// classic slow-but-simple policy, kept as the benchmark baseline.
	SyncPerCommit
	// SyncNone never fsyncs; the OS flushes when it pleases. Fastest,
	// loses the last few seconds on a machine crash (not on a process
	// crash — the write(2) still happened).
	SyncNone
)

// String implements fmt.Stringer.
func (p SyncPolicy) String() string {
	switch p {
	case SyncGroup:
		return "group"
	case SyncPerCommit:
		return "always"
	case SyncNone:
		return "none"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// ParseSyncPolicy parses the -fsync flag values.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "group", "":
		return SyncGroup, nil
	case "always", "percommit", "per-commit":
		return SyncPerCommit, nil
	case "none", "off":
		return SyncNone, nil
	}
	return SyncGroup, fmt.Errorf("wal: unknown fsync policy %q (want group, always, or none)", s)
}

// Options tune the log. The zero value is usable.
type Options struct {
	// SegmentBytes rotates to a new segment file once the current one
	// reaches this size. Default 4 MiB.
	SegmentBytes int64
	// FlushEvery, when > 0 under SyncGroup, waits this long after the
	// first enqueue before flushing, trading commit latency for larger
	// fsync batches. 0 flushes as soon as the flusher is free (batches
	// still form naturally while an fsync is in flight).
	FlushEvery time.Duration
	// Sync is the fsync policy.
	Sync SyncPolicy
	// Metrics, when set, receives wal-layer commit/fsync/batch series.
	Metrics *metrics.Registry
	// Tracer, when set, records one "wal.flush" span per group-commit
	// flush (batch size and LSN range annotated).
	Tracer *trace.Tracer
	// Clock times the FlushEvery batching wait; nil = system clock. A
	// fake clock lets a simulated deployment compress group-commit
	// windows along with the rest of its timers.
	Clock clock.Clock
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	if o.Clock == nil {
		o.Clock = clock.System
	}
	return o
}

// ErrClosed is returned by appends after Close.
var ErrClosed = errors.New("wal: closed")

// Stats are the log's cumulative counters. Histogram-shaped series
// (commit latency, fsync latency, batch size) go to Options.Metrics;
// these are the cheap always-on counters.
type Stats struct {
	Appends      uint64 // records appended (acked or pending)
	Fsyncs       uint64 // fsync(2) calls
	Batches      uint64 // flusher batches written
	MaxBatch     uint64 // largest records-per-fsync batch seen
	BytesWritten uint64 // framed bytes written
	Rotations    uint64 // segment rotations
	Trims        uint64 // segments deleted by checkpoints
	LastLSN      uint64 // highest assigned LSN

	// Recovery-side (filled by Open).
	ReplayedRecords  uint64
	ReplayedTxs      uint64
	TornTail         bool
	SkippedTailBytes uint64
	RecoveryDuration time.Duration
	CheckpointLSN    uint64 // LSN of the checkpoint recovery started from
	Checkpoints      uint64 // checkpoints taken since open
}

type statCounters struct {
	appends, fsyncs, batches, maxBatch, bytes, rotations, trims atomic.Uint64
	checkpoints                                                 atomic.Uint64
}

// pending is one enqueued record waiting for the flusher.
type pending struct {
	lsn     uint64
	payload []byte
	start   time.Time
	done    chan error
}

// WAL is the append-only log. Appends may come from any goroutine; a
// single flusher goroutine owns the file.
type WAL struct {
	dir string
	opt Options

	// mu guards the enqueue side: LSN assignment, the queue, closed.
	mu      sync.Mutex
	queue   []*pending
	nextLSN uint64
	closed  bool

	// ioMu guards the file side: current segment, rotation, trimming.
	ioMu     sync.Mutex
	f        *os.File
	segSize  int64
	segFirst uint64

	kick    chan struct{}
	closeCh chan struct{}
	wg      sync.WaitGroup

	stats statCounters
	recov Stats // recovery-side stats copied in by Open
}

// openWAL opens the log for appending; nextLSN is the first LSN it
// will assign (recovery has already replayed — and truncated any torn
// tail off — everything below). Writing continues in the newest
// non-empty segment: an existing segment is never truncated, so
// fsync-acked records survive any number of crash/recover cycles.
func openWAL(dir string, opt Options, nextLSN uint64) (*WAL, error) {
	opt = opt.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	w := &WAL{
		dir:     dir,
		opt:     opt,
		nextLSN: nextLSN,
		kick:    make(chan struct{}, 1),
		closeCh: make(chan struct{}),
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	// The current segment is the newest one still holding records.
	// Empty trailing segments (fully-torn tails truncated by replay)
	// are removed: appending into a file whose name promises a
	// different first LSN would break the naming invariant.
	first, size := nextLSN, int64(0)
	for len(segs) > 0 {
		last := segs[len(segs)-1]
		fi, err := os.Stat(last.path)
		if err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		if fi.Size() > 0 {
			first, size = last.first, fi.Size()
			break
		}
		if err := os.Remove(last.path); err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		segs = segs[:len(segs)-1]
	}
	if err := w.openSegment(first, size); err != nil {
		return nil, err
	}
	w.wg.Add(1)
	go w.flushLoop()
	return w, nil
}

// segmentName returns the file name of the segment starting at lsn.
func segmentName(lsn uint64) string {
	return fmt.Sprintf("wal-%016x.log", lsn)
}

// parseSegmentName extracts the first LSN from a segment file name.
func parseSegmentName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
		return 0, false
	}
	lsn, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log"), 16, 64)
	if err != nil {
		return 0, false
	}
	return lsn, true
}

// listSegments returns the directory's segment files sorted by first
// LSN.
func listSegments(dir string) ([]segmentInfo, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("wal: %w", err)
	}
	var segs []segmentInfo
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if lsn, ok := parseSegmentName(e.Name()); ok {
			segs = append(segs, segmentInfo{first: lsn, path: filepath.Join(dir, e.Name())})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].first < segs[j].first })
	return segs, nil
}

type segmentInfo struct {
	first uint64
	path  string
}

// openSegment opens (creating if absent, NEVER truncating) the segment
// starting at first, in append mode, and makes it current. size is the
// segment's existing valid length. Caller must not hold ioMu.
func (w *WAL) openSegment(first uint64, size int64) error {
	f, err := os.OpenFile(filepath.Join(w.dir, segmentName(first)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	w.ioMu.Lock()
	w.f = f
	w.segSize = size
	w.segFirst = first
	w.ioMu.Unlock()
	return syncDir(w.dir)
}

// syncDir fsyncs the directory so newly created/renamed files survive
// a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// append enqueues one record and returns an ack that blocks until it
// is durable per the sync policy. It never blocks on I/O itself, so it
// is safe to call under store locks.
func (w *WAL) append(rec record) func() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return func() error { return ErrClosed }
	}
	rec.LSN = w.nextLSN
	w.nextLSN++
	payload, err := encodeRecord(rec)
	if err != nil {
		w.mu.Unlock()
		return func() error { return err }
	}
	p := &pending{lsn: rec.LSN, payload: payload, start: time.Now(), done: make(chan error, 1)}
	w.queue = append(w.queue, p)
	w.mu.Unlock()
	w.stats.appends.Add(1)
	select {
	case w.kick <- struct{}{}:
	default:
	}
	return func() error {
		err := <-p.done
		if w.opt.Metrics != nil {
			code := okCode
			if err != nil {
				code = errCode
			}
			w.opt.Metrics.Observe(metrics.LayerWAL, walService, "commit", code, time.Since(p.start))
		}
		return err
	}
}

// LastLSN reports the highest assigned LSN.
func (w *WAL) LastLSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nextLSN - 1
}

// flushLoop is the single writer: it drains the queue into the current
// segment, rotating and fsyncing per policy.
func (w *WAL) flushLoop() {
	defer w.wg.Done()
	for {
		select {
		case <-w.kick:
		case <-w.closeCh:
			w.flushOnce() // final drain
			return
		}
		if w.opt.Sync == SyncGroup && w.opt.FlushEvery > 0 {
			w.opt.Clock.Sleep(w.opt.FlushEvery) // widen the batch
		}
		w.flushOnce()
	}
}

// flushOnce writes and syncs everything currently queued.
func (w *WAL) flushOnce() {
	w.mu.Lock()
	batch := w.queue
	w.queue = nil
	w.mu.Unlock()
	if len(batch) == 0 {
		return
	}
	// The flusher runs off any request path, so the flush span is a
	// root of its own: retained when sampled or slower than the
	// tracer's threshold (a stalled fsync is exactly what -trace-slow
	// is for).
	_, span := w.opt.Tracer.StartSpan(context.Background(), "wal.flush")
	if span != nil {
		span.Annotate(
			trace.Int("records", len(batch)),
			trace.Int64("lsn-first", int64(batch[0].lsn)),
			trace.Int64("lsn-last", int64(batch[len(batch)-1].lsn)),
		)
	}
	w.ioMu.Lock()
	err := w.writeBatchLocked(batch)
	w.ioMu.Unlock()
	span.FinishErr(err)
	if err != nil {
		// writeBatchLocked acked everything it finished; whatever is
		// left gets the error.
		for _, p := range batch {
			select {
			case p.done <- err:
			default:
			}
		}
	}
}

// writeBatchLocked writes the batch per the sync policy. On success
// every pending is acked nil; on error, records written before the
// failure are acked per policy and the caller propagates the error to
// the rest.
func (w *WAL) writeBatchLocked(batch []*pending) error {
	w.stats.batches.Add(1)
	if n := uint64(len(batch)); n > w.stats.maxBatch.Load() {
		w.stats.maxBatch.Store(n) // approximate under races; fine for stats
	}
	if w.opt.Metrics != nil {
		// The batch series abuses the microsecond buckets as a record
		// count: 1µs == 1 record per fsync batch.
		w.opt.Metrics.Observe(metrics.LayerWAL, walService, "batch", okCode, time.Duration(len(batch))*time.Microsecond)
	}

	if w.opt.Sync == SyncPerCommit {
		for _, p := range batch {
			if err := w.rotateIfNeededLocked(p.lsn); err != nil {
				return err
			}
			frame := appendFrame(nil, p.payload)
			if _, err := w.f.Write(frame); err != nil {
				return fmt.Errorf("wal: write: %w", err)
			}
			w.segSize += int64(len(frame))
			w.stats.bytes.Add(uint64(len(frame)))
			if err := w.fsync(); err != nil {
				return err
			}
			p.done <- nil
		}
		return nil
	}

	// Group / none: one buffer, one write, at most one fsync. Rotation
	// happens at batch boundaries (check against the first record) so
	// the whole batch lands in one segment.
	if err := w.rotateIfNeededLocked(batch[0].lsn); err != nil {
		return err
	}
	var buf []byte
	for _, p := range batch {
		buf = appendFrame(buf, p.payload)
	}
	if _, err := w.f.Write(buf); err != nil {
		return fmt.Errorf("wal: write: %w", err)
	}
	w.segSize += int64(len(buf))
	w.stats.bytes.Add(uint64(len(buf)))
	if w.opt.Sync == SyncGroup {
		if err := w.fsync(); err != nil {
			return err
		}
	}
	for _, p := range batch {
		p.done <- nil
	}
	return nil
}

// fsync syncs the current segment, recording latency.
func (w *WAL) fsync() error {
	start := time.Now()
	err := w.f.Sync()
	w.stats.fsyncs.Add(1)
	if w.opt.Metrics != nil {
		code := okCode
		if err != nil {
			code = errCode
		}
		w.opt.Metrics.Observe(metrics.LayerWAL, walService, "fsync", code, time.Since(start))
	}
	if err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	return nil
}

// rotateIfNeededLocked starts a new segment (named by nextLSN, the
// first record it will hold) once the current one is full.
func (w *WAL) rotateIfNeededLocked(nextLSN uint64) error {
	if w.segSize < w.opt.SegmentBytes {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("wal: rotate sync: %w", err)
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("wal: rotate close: %w", err)
	}
	// nextLSN is above every record ever written, so this name can only
	// collide with an empty leftover file; append mode keeps even that
	// case safe from truncating anything.
	f, err := os.OpenFile(filepath.Join(w.dir, segmentName(nextLSN)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: rotate: %w", err)
	}
	w.f = f
	w.segSize = 0
	w.segFirst = nextLSN
	w.stats.rotations.Add(1)
	return syncDir(w.dir)
}

// trimBelow deletes whole segments every record of which is below
// keepLSN (covered by a checkpoint). The current segment is never
// deleted.
func (w *WAL) trimBelow(keepLSN uint64) error {
	w.ioMu.Lock()
	defer w.ioMu.Unlock()
	removed, err := trimSegmentsBelow(w.dir, keepLSN, w.segFirst)
	if removed > 0 {
		w.stats.trims.Add(uint64(removed))
	}
	return err
}

// trimSegmentsBelow deletes whole segments every record of which is
// below keepLSN; the segment starting at curFirst (the live one) and
// anything after it is never touched. Shared by the primary's WAL and
// the follower's Receiver.
func trimSegmentsBelow(dir string, keepLSN, curFirst uint64) (int, error) {
	segs, err := listSegments(dir)
	if err != nil {
		return 0, err
	}
	removed := 0
	for i, s := range segs {
		if s.first >= curFirst {
			break // current or future segment
		}
		// Records in segs[i] span [s.first, next.first): deletable only
		// if the whole span is below keepLSN.
		next := curFirst
		if i+1 < len(segs) {
			next = segs[i+1].first
		}
		if next > keepLSN {
			break
		}
		if err := os.Remove(s.path); err != nil {
			return removed, fmt.Errorf("wal: trim: %w", err)
		}
		removed++
	}
	if removed > 0 {
		return removed, syncDir(dir)
	}
	return 0, nil
}

// Close drains the queue, syncs, and closes the current segment.
func (w *WAL) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	w.mu.Unlock()
	close(w.closeCh)
	w.wg.Wait()
	w.ioMu.Lock()
	defer w.ioMu.Unlock()
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return fmt.Errorf("wal: close sync: %w", err)
	}
	return w.f.Close()
}

// Stats snapshots the counters.
func (w *WAL) Stats() Stats {
	s := w.recov
	s.Appends = w.stats.appends.Load()
	s.Fsyncs = w.stats.fsyncs.Load()
	s.Batches = w.stats.batches.Load()
	s.MaxBatch = w.stats.maxBatch.Load()
	s.BytesWritten = w.stats.bytes.Load()
	s.Rotations = w.stats.rotations.Load()
	s.Trims = w.stats.trims.Load()
	s.Checkpoints = w.stats.checkpoints.Load()
	s.LastLSN = w.LastLSN()
	return s
}
