package wal

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/store"
)

// shipSrc is a primary with a logged table and a helper to commit rows.
type shipSrc struct {
	t *testing.T
	d *Durable
	n int
}

func newShipSrc(t *testing.T, dir string, opt Options) *shipSrc {
	t.Helper()
	d := mustOpen(t, dir, opt)
	if _, err := d.DB.CreateTable(testSchema("events")); err != nil && !errors.Is(err, store.ErrDupTable) {
		t.Fatal(err)
	}
	return &shipSrc{t: t, d: d}
}

func (s *shipSrc) commit(rows int) {
	s.t.Helper()
	tbl, err := s.d.DB.Table("events")
	if err != nil {
		s.t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		s.n++
		if err := tbl.Insert(store.Row{"id": int64(s.n), "val": fmt.Sprintf("v%04d", s.n), "ts": shipTime}); err != nil {
			s.t.Fatal(err)
		}
	}
}

// ship pulls everything outstanding from the primary into the receiver,
// asserting every batch verifies.
func ship(t *testing.T, d *Durable, r *Receiver, maxBytes int) {
	t.Helper()
	for {
		batch, err := d.ReadFrames(r.AppliedLSN()+1, maxBytes)
		if err != nil {
			t.Fatalf("ReadFrames: %v", err)
		}
		if len(batch.Frames) == 0 {
			return
		}
		if _, err := r.AppendFrames(batch.Frames); err != nil {
			t.Fatalf("AppendFrames: %v", err)
		}
		if batch.Last != r.AppliedLSN() {
			t.Fatalf("applied %d != shipped last %d", r.AppliedLSN(), batch.Last)
		}
	}
}

func TestShipCatchUpByteIdentical(t *testing.T) {
	src := newShipSrc(t, t.TempDir(), Options{Sync: SyncNone})
	src.commit(40)
	fdir := t.TempDir()
	r, err := OpenReceiver(fdir)
	if err != nil {
		t.Fatal(err)
	}
	ship(t, src.d, r, 1<<20)
	if got, want := snapshotOf(t, r.DB()), snapshotOf(t, src.d.DB); !bytes.Equal(got, want) {
		t.Fatal("follower snapshot differs from primary after catch-up")
	}
	if r.AppliedLSN() != src.d.LastLSN() {
		t.Fatalf("applied %d, primary last %d", r.AppliedLSN(), src.d.LastLSN())
	}
	// More commits ship incrementally and in small pages.
	src.commit(25)
	ship(t, src.d, r, 200) // force multiple pages
	if got, want := snapshotOf(t, r.DB()), snapshotOf(t, src.d.DB); !bytes.Equal(got, want) {
		t.Fatal("follower snapshot differs after incremental ship")
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestShipRemainingReportsLag(t *testing.T) {
	src := newShipSrc(t, t.TempDir(), Options{Sync: SyncNone})
	src.commit(30)
	batch, err := src.d.ReadFrames(1, 300)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Frames) == 0 || batch.Remaining == 0 {
		t.Fatalf("want partial batch with remaining lag, got %d frame bytes, remaining %d", len(batch.Frames), batch.Remaining)
	}
	rest, err := src.d.ReadFrames(batch.Last+1, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(rest.Frames)) != batch.Remaining {
		t.Fatalf("remaining %d != actual tail bytes %d", batch.Remaining, len(rest.Frames))
	}
	if rest.Remaining != 0 {
		t.Fatalf("full read still reports remaining %d", rest.Remaining)
	}
}

// TestShipFollowerRestartMidSegment is the satellite edge case: a
// follower that restarts mid-segment resumes from its applied LSN —
// no re-bootstrap, no duplicate application.
func TestShipFollowerRestartMidSegment(t *testing.T) {
	src := newShipSrc(t, t.TempDir(), Options{Sync: SyncNone})
	src.commit(20)
	fdir := t.TempDir()
	r, err := OpenReceiver(fdir)
	if err != nil {
		t.Fatal(err)
	}
	// Ship only part of the log, then "crash" the follower.
	batch, err := src.d.ReadFrames(1, 500)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.AppendFrames(batch.Frames); err != nil {
		t.Fatal(err)
	}
	mid := r.AppliedLSN()
	if mid == 0 || mid == src.d.LastLSN() {
		t.Fatalf("want a mid-stream applied LSN, got %d of %d", mid, src.d.LastLSN())
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	r2, err := OpenReceiver(fdir)
	if err != nil {
		t.Fatal(err)
	}
	if r2.AppliedLSN() != mid {
		t.Fatalf("restarted follower applied %d, want %d", r2.AppliedLSN(), mid)
	}
	src.commit(10)
	ship(t, src.d, r2, 1<<20)
	if got, want := snapshotOf(t, r2.DB()), snapshotOf(t, src.d.DB); !bytes.Equal(got, want) {
		t.Fatal("follower snapshot differs after restart + catch-up")
	}
}

// TestShipCorruptBatchRejected is the satellite edge case: a torn or
// corrupt batch from the primary is rejected whole — applied LSN does
// not move, nothing hits disk — and the re-requested clean batch then
// applies.
func TestShipCorruptBatchRejected(t *testing.T) {
	src := newShipSrc(t, t.TempDir(), Options{Sync: SyncNone})
	src.commit(10)
	r, err := OpenReceiver(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	batch, err := src.d.ReadFrames(1, 1<<20)
	if err != nil {
		t.Fatal(err)
	}

	// Bit flip mid-batch: CRC catches it, whole batch rejected.
	bad := append([]byte(nil), batch.Frames...)
	bad[len(bad)/2] ^= 0x40
	if _, err := r.AppendFrames(bad); !errors.Is(err, ErrBadFrames) {
		t.Fatalf("corrupt batch: got %v, want ErrBadFrames", err)
	}
	if r.AppliedLSN() != 0 {
		t.Fatalf("applied moved to %d on a rejected batch", r.AppliedLSN())
	}

	// Torn tail: the batch cut mid-frame is rejected whole too.
	if _, err := r.AppendFrames(batch.Frames[:len(batch.Frames)-3]); !errors.Is(err, ErrBadFrames) {
		t.Fatalf("torn batch: got %v, want ErrBadFrames", err)
	}

	// An LSN gap (first frame skipped) is rejected.
	_, n, err := nextFrame(batch.Frames)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.AppendFrames(batch.Frames[n:]); !errors.Is(err, ErrBadFrames) {
		t.Fatalf("gapped batch: got %v, want ErrBadFrames", err)
	}

	// The re-request (same range, clean bytes) applies.
	if applied, err := r.AppendFrames(batch.Frames); err != nil || applied == 0 {
		t.Fatalf("clean re-request: applied=%d err=%v", applied, err)
	}
	if got, want := snapshotOf(t, r.DB()), snapshotOf(t, src.d.DB); !bytes.Equal(got, want) {
		t.Fatal("follower snapshot differs after recovery from corrupt batch")
	}
}

func TestShipDuplicatePrefixSkipped(t *testing.T) {
	src := newShipSrc(t, t.TempDir(), Options{Sync: SyncNone})
	src.commit(8)
	r, err := OpenReceiver(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	batch, err := src.d.ReadFrames(1, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.AppendFrames(batch.Frames); err != nil {
		t.Fatal(err)
	}
	// The whole batch redelivered: every frame already applied, no-op.
	if applied, err := r.AppendFrames(batch.Frames); err != nil || applied != 0 {
		t.Fatalf("duplicate delivery: applied=%d err=%v", applied, err)
	}
	if got, want := snapshotOf(t, r.DB()), snapshotOf(t, src.d.DB); !bytes.Equal(got, want) {
		t.Fatal("duplicate delivery changed follower state")
	}
}

// TestShipSnapshotBootstrap is the satellite edge case: a follower too
// far behind a trimmed log bootstraps from a snapshot, then catches up
// from the tail, ending byte-identical to the primary.
func TestShipSnapshotBootstrap(t *testing.T) {
	src := newShipSrc(t, t.TempDir(), Options{Sync: SyncNone, SegmentBytes: 256})
	src.commit(50)
	// Two checkpoints trim the early segments, so LSN 1 is gone.
	if err := src.d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	src.commit(50)
	if err := src.d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	src.commit(5)

	if _, err := src.d.ReadFrames(1, 1<<20); !errors.Is(err, ErrSnapshotNeeded) {
		t.Fatalf("trimmed log from LSN 1: got %v, want ErrSnapshotNeeded", err)
	}

	r, err := OpenReceiver(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	data, lsn, err := src.d.SnapshotAt()
	if err != nil {
		t.Fatal(err)
	}
	if err := r.InstallSnapshot(data, lsn); err != nil {
		t.Fatal(err)
	}
	if r.AppliedLSN() != lsn {
		t.Fatalf("applied %d after snapshot at %d", r.AppliedLSN(), lsn)
	}
	// Tail catch-up after bootstrap.
	src.commit(12)
	ship(t, src.d, r, 1<<20)
	if got, want := snapshotOf(t, r.DB()), snapshotOf(t, src.d.DB); !bytes.Equal(got, want) {
		t.Fatal("follower snapshot differs after bootstrap + tail catch-up")
	}
}

// TestShipPromotionOpensFollowerDir proves the promotion contract: a
// follower's data directory is a valid WAL directory, so closing the
// receiver and running full recovery over it yields a primary with
// byte-identical state that can append new records.
func TestShipPromotionOpensFollowerDir(t *testing.T) {
	src := newShipSrc(t, t.TempDir(), Options{Sync: SyncNone, SegmentBytes: 512})
	src.commit(60) // several segments on the follower too
	fdir := t.TempDir()
	r, err := OpenReceiver(fdir)
	if err != nil {
		t.Fatal(err)
	}
	ship(t, src.d, r, 700)
	if _, err := r.MaybeCheckpoint(1); err != nil { // force a follower checkpoint
		t.Fatal(err)
	}
	src.commit(10)
	ship(t, src.d, r, 700)
	want := snapshotOf(t, src.d.DB)
	lastLSN := r.AppliedLSN()
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	// Promote: full recovery over the follower's directory.
	promoted := mustOpen(t, fdir, Options{Sync: SyncNone})
	defer promoted.Close()
	if got := snapshotOf(t, promoted.DB); !bytes.Equal(got, want) {
		t.Fatal("promoted state differs from primary")
	}
	if promoted.LastLSN() != lastLSN {
		t.Fatalf("promoted LastLSN %d, want %d", promoted.LastLSN(), lastLSN)
	}
	// The promoted node appends at the next LSN like any primary.
	tbl, err := promoted.DB.Table("events")
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert(store.Row{"id": int64(9999), "val": "post-promotion", "ts": shipTime}); err != nil {
		t.Fatal(err)
	}
	if promoted.LastLSN() != lastLSN+1 {
		t.Fatalf("post-promotion append LSN %d, want %d", promoted.LastLSN(), lastLSN+1)
	}
}

// TestShipReceiverSegmentsRotate checks the follower writes the same
// multi-segment layout a primary would and survives reopen across the
// rotation boundary.
func TestShipReceiverSegmentsRotate(t *testing.T) {
	src := newShipSrc(t, t.TempDir(), Options{Sync: SyncNone})
	src.commit(100)
	fdir := t.TempDir()
	r, err := OpenReceiver(fdir)
	if err != nil {
		t.Fatal(err)
	}
	r.segBytes = 300 // tiny segments to force rotations
	ship(t, src.d, r, 250)
	segs, err := listSegments(fdir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("want rotated segments on the follower, got %d", len(segs))
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	r2, err := OpenReceiver(fdir)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := snapshotOf(t, r2.DB()), snapshotOf(t, src.d.DB); !bytes.Equal(got, want) {
		t.Fatal("rotated follower state differs after reopen")
	}
}

var shipTime = time.Date(2003, 4, 22, 9, 0, 0, 0, time.UTC)
