package wal

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
)

// WAL shipping: the primary side of replication reads raw framed
// records back off the segment files so they can be streamed to a
// follower byte-identically. The follower appends the same frames to
// its own segment files (wal.Receiver), so a promoted follower's data
// directory is a valid WAL directory that Open recovers like any
// other.

// ErrSnapshotNeeded reports that the requested LSN has been trimmed by
// a checkpoint: the follower is too far behind to catch up from the
// log and must bootstrap from a snapshot instead.
var ErrSnapshotNeeded = errors.New("wal: requested LSN already trimmed; snapshot bootstrap needed")

// ShipBatch is one contiguous run of raw framed records read for
// shipping.
type ShipBatch struct {
	// Frames holds complete frames for LSNs [from, Last], byte-identical
	// to the primary's segment contents. Empty when the log has nothing
	// at or above from.
	Frames []byte
	// Last is the LSN of the last frame included (from-1 when Frames is
	// empty).
	Last uint64
	// Remaining counts bytes of complete frames above Last still on
	// disk — the follower's lag once this batch is applied.
	Remaining int64
}

// lsnOf decodes just the LSN from a record payload.
func lsnOf(payload []byte) (uint64, error) {
	var rec struct {
		LSN uint64 `json:"lsn"`
	}
	if err := json.Unmarshal(payload, &rec); err != nil {
		return 0, fmt.Errorf("wal: ship decode: %w", err)
	}
	return rec.LSN, nil
}

// ReadFrames reads complete frames with LSN >= from, in order, until
// roughly maxBytes are collected. An in-flight (torn) tail frame is
// never shipped — only frames whose CRC verifies. The scan continues
// past maxBytes summing sizes only, so Remaining reports the
// follower's true byte lag. Concurrent appends are safe (frames are
// written sequentially and CRC-framed); a segment trimmed between
// listing and reading surfaces as ErrSnapshotNeeded unless frames were
// already collected.
func ReadFrames(dir string, from uint64, maxBytes int) (ShipBatch, error) {
	if from == 0 {
		from = 1
	}
	batch := ShipBatch{Last: from - 1}
	segs, err := listSegments(dir)
	if err != nil {
		return batch, err
	}
	if len(segs) > 0 && from < segs[0].first {
		return batch, ErrSnapshotNeeded
	}
	for i, seg := range segs {
		// Skip segments entirely below from.
		if i+1 < len(segs) && segs[i+1].first <= from {
			continue
		}
		data, err := os.ReadFile(seg.path)
		if err != nil {
			if os.IsNotExist(err) {
				// Trimmed between listing and reading. Whatever was
				// collected is still contiguous; with nothing collected
				// the follower needs a snapshot.
				if len(batch.Frames) == 0 {
					return batch, ErrSnapshotNeeded
				}
				return batch, nil
			}
			return batch, fmt.Errorf("wal: ship read %s: %w", seg.path, err)
		}
		off := 0
		for {
			payload, n, ferr := nextFrame(data[off:])
			if ferr != nil {
				// io.EOF: clean end of segment. errTorn: the in-flight
				// tail of the live segment — stop, never ship it.
				break
			}
			lsn, lerr := lsnOf(payload)
			if lerr != nil {
				return batch, lerr
			}
			if lsn >= from {
				if len(batch.Frames) < maxBytes {
					batch.Frames = append(batch.Frames, data[off:off+n]...)
					batch.Last = lsn
				} else {
					batch.Remaining += int64(n)
				}
			}
			off += n
		}
	}
	return batch, nil
}

// ReadFrames ships committed records starting at from; see the
// package-level ReadFrames.
func (d *Durable) ReadFrames(from uint64, maxBytes int) (ShipBatch, error) {
	return ReadFrames(d.dir, from, maxBytes)
}

// SnapshotAt captures a bootstrap snapshot for a lagging follower: the
// database serialized at (or slightly ahead of — replay tolerates
// that, exactly as it does for checkpoints) the returned LSN.
func (d *Durable) SnapshotAt() ([]byte, uint64, error) {
	lsn := d.wal.LastLSN()
	var buf bytes.Buffer
	if err := d.DB.Snapshot(&buf); err != nil {
		return nil, 0, fmt.Errorf("wal: ship snapshot: %w", err)
	}
	return buf.Bytes(), lsn, nil
}
