// Package wire defines the SyD wire protocol: the frame format and the
// request/response/event message types exchanged between SyD kernel
// modules over any transport.
//
// The paper's prototype used "TCP Sockets for small foot-print and
// maximum flexibility" (§3.1). We keep the same spirit: a frame is a
// 4-byte big-endian length followed by a JSON-encoded message. JSON is
// the only stdlib codec that is self-describing enough for the
// heterogeneous argument maps SyD services exchange.
package wire

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// MaxFrameSize bounds a single frame to keep a malicious or corrupted
// peer from forcing unbounded allocation. 16 MiB is far beyond any SyD
// message.
const MaxFrameSize = 16 << 20

// Frame errors.
var (
	ErrFrameTooLarge = errors.New("wire: frame exceeds MaxFrameSize")
	ErrShortFrame    = errors.New("wire: short frame")
)

// Kind discriminates top-level messages.
type Kind string

// Message kinds.
const (
	KindRequest  Kind = "request"
	KindResponse Kind = "response"
	KindEvent    Kind = "event"
)

// Args is the argument map carried by a request or event. Values are
// anything JSON can represent; typed helpers live on Args.
type Args map[string]any

// Envelope is the single top-level frame payload. Exactly one of
// Request, Response, or Event is set, according to Kind.
type Envelope struct {
	Kind     Kind      `json:"kind"`
	Request  *Request  `json:"request,omitempty"`
	Response *Response `json:"response,omitempty"`
	Event    *Event    `json:"event,omitempty"`
}

// Request is a remote method invocation on a published SyD service.
type Request struct {
	// ID correlates the response on a multiplexed connection.
	ID uint64 `json:"id"`
	// Service is the published SyD object name (e.g. "cal.phil").
	Service string `json:"service"`
	// Method is the method name registered with the listener.
	Method string `json:"method"`
	// Args carries the named arguments.
	Args Args `json:"args,omitempty"`
	// Caller identifies the invoking SyD user (may be empty for
	// anonymous infrastructure calls such as directory lookups).
	Caller string `json:"caller,omitempty"`
	// Credential is the TEA-sealed userid:password blob (§5.4),
	// hex-encoded. Empty when the target service does not require
	// authentication.
	Credential string `json:"credential,omitempty"`
	// Meta carries typed request metadata (request id, hop count,
	// deadline hint, ...) end-to-end through the interceptor
	// pipeline; see Metadata for the well-known keys.
	Meta Metadata `json:"meta,omitempty"`
}

// Response answers a Request.
type Response struct {
	ID     uint64          `json:"id"`
	OK     bool            `json:"ok"`
	Error  string          `json:"error,omitempty"`
	Code   ErrCode         `json:"code,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
	// Meta echoes response metadata (at minimum the request id, so
	// clients can correlate responses to logical requests).
	Meta Metadata `json:"meta,omitempty"`
}

// Event is a one-way notification used by the SyDEventHandler for
// global events (no response expected).
type Event struct {
	Name   string `json:"name"`
	Source string `json:"source,omitempty"`
	Args   Args   `json:"args,omitempty"`
}

// ErrCode classifies remote failures so callers can make retry /
// failover decisions without string matching.
type ErrCode string

// Error codes.
const (
	CodeOK          ErrCode = ""
	CodeNoService   ErrCode = "no-service"  // unknown service name
	CodeNoMethod    ErrCode = "no-method"   // unknown method on service
	CodeBadArgs     ErrCode = "bad-args"    // argument decode/validation failed
	CodeAuth        ErrCode = "auth"        // authentication rejected
	CodeConflict    ErrCode = "conflict"    // negotiation/lock conflict
	CodeUnavailable ErrCode = "unavailable" // device down / unreachable
	CodeInternal    ErrCode = "internal"    // handler error
	CodeInDoubt     ErrCode = "in-doubt"    // commit phase diverged; recovery sweeper is resolving
	CodeWrongShard  ErrCode = "wrong-shard" // directory op routed to a shard that does not own the key
)

// RemoteError is the error type surfaced to engine callers for a
// non-OK Response.
type RemoteError struct {
	Code    ErrCode
	Service string
	Method  string
	Msg     string
}

// Error implements error.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("syd: remote %s.%s: %s (%s)", e.Service, e.Method, e.Msg, e.Code)
}

// Is allows errors.Is matching on code-only sentinel values.
func (e *RemoteError) Is(target error) bool {
	t, ok := target.(*RemoteError)
	if !ok {
		return false
	}
	return t.Code == e.Code && (t.Service == "" || t.Service == e.Service)
}

// CodeOf extracts the ErrCode from err if it wraps a RemoteError, and
// CodeInternal otherwise (nil maps to CodeOK).
func CodeOf(err error) ErrCode {
	if err == nil {
		return CodeOK
	}
	var re *RemoteError
	if errors.As(err, &re) {
		return re.Code
	}
	return CodeInternal
}

// WriteFrame encodes env as JSON and writes a length-prefixed frame.
// The prefix and body go out in a single Write (one syscall on a raw
// socket) via a pooled encode buffer; transports that coalesce
// concurrent writers use EncodeFrame directly.
func WriteFrame(w io.Writer, env *Envelope) error {
	f, err := EncodeFrame(env)
	if err != nil {
		return err
	}
	_, err = w.Write(f.Bytes())
	f.Release()
	return err
}

// ReadFrame reads one length-prefixed frame and decodes it.
func ReadFrame(r io.Reader) (*Envelope, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameSize {
		return nil, ErrFrameTooLarge
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, ErrShortFrame
		}
		return nil, err
	}
	if n > 0 && body[0] == magicV3 {
		return decodeV3(body)
	}
	env := new(Envelope)
	if err := json.Unmarshal(body, env); err != nil {
		return nil, fmt.Errorf("wire: unmarshal: %w", err)
	}
	return env, nil
}

// Marshal encodes v into a json.RawMessage for a Response result.
func Marshal(v any) (json.RawMessage, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("wire: marshal result: %w", err)
	}
	return b, nil
}

// Unmarshal decodes a Response result into v. Decoding into a
// *json.RawMessage is a plain copy (no validity scan): results come
// from our own encoder, and GroupInvoke takes this path once per
// member, so the aggregation fan-in stays allocation-lean.
func Unmarshal(raw json.RawMessage, v any) error {
	if len(raw) == 0 {
		return nil
	}
	if rm, ok := v.(*json.RawMessage); ok {
		*rm = append((*rm)[:0], raw...)
		return nil
	}
	return json.Unmarshal(raw, v)
}

// Clone returns a shallow copy of the args map (nil stays usable as an
// empty map).
func (a Args) Clone() Args {
	out := make(Args, len(a)+4)
	for k, v := range a {
		out[k] = v
	}
	return out
}

// --- typed Args accessors -------------------------------------------------

// String returns the string at key, or "" if absent or not a string.
func (a Args) String(key string) string {
	s, _ := a[key].(string)
	return s
}

// Int returns the integer at key. JSON numbers decode as float64, so
// both float64 and int are accepted.
func (a Args) Int(key string) int {
	switch v := a[key].(type) {
	case float64:
		return int(v)
	case int:
		return v
	case int64:
		return int(v)
	case json.Number:
		n, _ := v.Int64()
		return int(n)
	}
	return 0
}

// Int64 is Int for 64-bit values.
func (a Args) Int64(key string) int64 {
	switch v := a[key].(type) {
	case float64:
		return int64(v)
	case int:
		return int64(v)
	case int64:
		return v
	case json.Number:
		n, _ := v.Int64()
		return n
	}
	return 0
}

// Bool returns the bool at key, or false.
func (a Args) Bool(key string) bool {
	b, _ := a[key].(bool)
	return b
}

// Strings returns the []string at key; JSON arrays decode as []any.
func (a Args) Strings(key string) []string {
	switch v := a[key].(type) {
	case []string:
		return v
	case []any:
		out := make([]string, 0, len(v))
		for _, e := range v {
			if s, ok := e.(string); ok {
				out = append(out, s)
			}
		}
		return out
	}
	return nil
}

// Decode re-marshals the value at key into dst — used for structured
// arguments (e.g. a slot descriptor) carried inside Args.
func (a Args) Decode(key string, dst any) error {
	v, ok := a[key]
	if !ok {
		return fmt.Errorf("wire: missing arg %q", key)
	}
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return json.Unmarshal(b, dst)
}
