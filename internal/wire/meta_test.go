package wire

import (
	"context"
	"encoding/json"
	"testing"
	"time"
)

func TestMetadataNilSafety(t *testing.T) {
	var m Metadata
	if m.Get(MetaCaller) != "" {
		t.Fatal("Get on nil metadata")
	}
	if m.Hops() != 0 {
		t.Fatal("Hops on nil metadata")
	}
	if m.Deadline() != 0 {
		t.Fatal("Deadline on nil metadata")
	}
	if c := m.Clone(); c == nil {
		t.Fatal("Clone of nil metadata must be usable")
	}
}

func TestMetadataCloneIsIndependent(t *testing.T) {
	m := Metadata{MetaCaller: "andy"}
	c := m.Clone()
	c[MetaCaller] = "phil"
	if m.Get(MetaCaller) != "andy" {
		t.Fatal("Clone shares storage with the original")
	}
}

func TestMetadataHopsRoundTrip(t *testing.T) {
	m := Metadata{}
	if m.Hops() != 0 {
		t.Fatalf("fresh hops = %d", m.Hops())
	}
	m.SetHops(3)
	if m.Hops() != 3 {
		t.Fatalf("hops = %d", m.Hops())
	}
	m[MetaHops] = "not-a-number"
	if m.Hops() != 0 {
		t.Fatal("malformed hops must read as 0")
	}
}

func TestMetadataDeadlineRoundsUp(t *testing.T) {
	m := Metadata{}
	m.SetDeadline(1500 * time.Microsecond)
	if got := m.Deadline(); got != 2*time.Millisecond {
		t.Fatalf("deadline = %v, want 2ms (rounded up)", got)
	}
	m.SetDeadline(250 * time.Microsecond)
	if got := m.Deadline(); got != time.Millisecond {
		t.Fatalf("sub-millisecond budget = %v, want 1ms (never 0)", got)
	}
	m[MetaDeadline] = "-5"
	if m.Deadline() != 0 {
		t.Fatal("negative deadline must read as 0")
	}
}

func TestFullMetaMergesIdentityFields(t *testing.T) {
	r := &Request{
		Caller:     "andy",
		Credential: "sealed-blob",
		Meta:       Metadata{MetaRequestID: "andy-7", MetaHops: "2"},
	}
	m := r.FullMeta()
	if m.Get(MetaCaller) != "andy" || m.Get(MetaCredential) != "sealed-blob" {
		t.Fatalf("identity fields not merged: %v", m)
	}
	if m.Get(MetaRequestID) != "andy-7" || m.Hops() != 2 {
		t.Fatalf("envelope metadata lost: %v", m)
	}
	// FullMeta is a copy: mutating it must not write through.
	m[MetaCaller] = "mallory"
	if r.Caller != "andy" || r.Meta.Get(MetaCaller) != "" {
		t.Fatal("FullMeta aliases the request")
	}
}

func TestMetadataSurvivesJSONEnvelope(t *testing.T) {
	req := &Request{
		ID: 1, Service: "cal.phil", Method: "WhoAmI",
		Meta: Metadata{MetaRequestID: "andy-1", MetaHops: "1", MetaDeadline: "250"},
	}
	raw, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	var back Request
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Meta.Get(MetaRequestID) != "andy-1" || back.Meta.Hops() != 1 || back.Meta.Deadline() != 250*time.Millisecond {
		t.Fatalf("metadata mangled in transit: %v", back.Meta)
	}
	// Empty metadata stays off the wire entirely.
	raw, err = json.Marshal(&Request{ID: 2, Service: "s", Method: "m"})
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != "" && containsKey(raw, "meta") {
		t.Fatalf("empty meta serialized: %s", raw)
	}
}

func containsKey(raw []byte, key string) bool {
	var m map[string]json.RawMessage
	if err := json.Unmarshal(raw, &m); err != nil {
		return false
	}
	_, ok := m[key]
	return ok
}

func TestMetadataContextRoundTrip(t *testing.T) {
	if FromContext(context.Background()) != nil {
		t.Fatal("fresh context carries metadata")
	}
	md := Metadata{MetaRequestID: "r-1"}
	ctx := WithContext(context.Background(), md)
	if got := FromContext(ctx); got.Get(MetaRequestID) != "r-1" {
		t.Fatalf("FromContext = %v", got)
	}
}
