package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

func testEnvelope(i int) *Envelope {
	return &Envelope{Kind: KindRequest, Request: &Request{
		ID: uint64(i), Service: "cal.phil", Method: "ListMeetings",
		Args:   Args{"day": "2003-04-21", "hour": i},
		Caller: "andy",
		Meta:   Metadata{MetaRequestID: "andy-1", MetaHops: "1"},
	}}
}

func TestEncodeFrameMatchesWriteFrame(t *testing.T) {
	env := testEnvelope(7)
	f, err := EncodeFrame(env)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Release()

	b := f.Bytes()
	if len(b) < 4 {
		t.Fatalf("frame too short: %d", len(b))
	}
	n := binary.BigEndian.Uint32(b[:4])
	if int(n) != len(b)-4 {
		t.Fatalf("length prefix %d, body %d", n, len(b)-4)
	}
	// The body must decode through the v1 reader: same wire format.
	got, err := ReadFrame(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != KindRequest || got.Request.Service != "cal.phil" || got.Request.Args.Int("hour") != 7 {
		t.Fatalf("round trip mismatch: %+v", got.Request)
	}
}

func TestFrameReaderRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	const n = 50
	for i := 0; i < n; i++ {
		if err := WriteFrame(&buf, testEnvelope(i)); err != nil {
			t.Fatal(err)
		}
	}
	fr := NewFrameReader(&buf)
	for i := 0; i < n; i++ {
		env, err := fr.Read()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if env.Request.ID != uint64(i) || env.Request.Args.Int("hour") != i {
			t.Fatalf("frame %d decoded as %+v", i, env.Request)
		}
	}
	if _, err := fr.Read(); !errors.Is(err, io.EOF) {
		t.Fatalf("want EOF after %d frames, got %v", n, err)
	}
	if fr.Frames != n || fr.Bytes <= 0 {
		t.Fatalf("counters: frames=%d bytes=%d", fr.Frames, fr.Bytes)
	}
}

// TestFrameReaderEnvelopeSurvivesNextRead pins the no-aliasing
// guarantee: a decoded envelope must stay intact after the scratch
// buffer is reused by the next Read.
func TestFrameReaderEnvelopeSurvivesNextRead(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 2; i++ {
		if err := WriteFrame(&buf, testEnvelope(i)); err != nil {
			t.Fatal(err)
		}
	}
	fr := NewFrameReader(&buf)
	first, err := fr.Read()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fr.Read(); err != nil {
		t.Fatal(err)
	}
	if first.Request.ID != 0 || first.Request.Args.String("day") != "2003-04-21" {
		t.Fatalf("first envelope corrupted by second read: %+v", first.Request)
	}
}

func TestFrameReaderRejectsOversizedFrame(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrameSize+1)
	fr := NewFrameReader(bytes.NewReader(hdr[:]))
	if _, err := fr.Read(); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestFrameReaderShortBody(t *testing.T) {
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 100)
	buf.Write(hdr[:])
	buf.WriteString("{}") // far fewer than 100 bytes
	fr := NewFrameReader(&buf)
	if _, err := fr.Read(); !errors.Is(err, ErrShortFrame) {
		t.Fatalf("err = %v, want ErrShortFrame", err)
	}
}

func TestFrameBufferReleaseReuse(t *testing.T) {
	f1, err := EncodeFrame(testEnvelope(1))
	if err != nil {
		t.Fatal(err)
	}
	b1 := append([]byte(nil), f1.Bytes()...)
	f1.Release()
	f2, err := EncodeFrame(testEnvelope(1))
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Release()
	if !bytes.Equal(b1, f2.Bytes()) {
		t.Fatal("pooled buffer reuse changed the encoding")
	}
}

func BenchmarkEncodeFrame(b *testing.B) {
	env := testEnvelope(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f, err := EncodeFrame(env)
		if err != nil {
			b.Fatal(err)
		}
		f.Release()
	}
}

func BenchmarkFrameReader(b *testing.B) {
	var one bytes.Buffer
	if err := WriteFrame(&one, testEnvelope(1)); err != nil {
		b.Fatal(err)
	}
	frame := one.Bytes()
	big := bytes.Repeat(frame, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	var fr *FrameReader
	for i := 0; i < b.N; i++ {
		if i%1000 == 0 {
			fr = NewFrameReader(bytes.NewReader(big))
		}
		if _, err := fr.Read(); err != nil {
			b.Fatal(err)
		}
	}
}
