package wire

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
)

// Frame path v2 (see DESIGN.md §wire, "frame path v2"): the v1 codec
// paid a full json.Marshal allocation per frame, two conn.Write calls
// (header, then body), and a fresh body buffer per read. V2 keeps the
// wire format byte-identical — 4-byte big-endian length, JSON body —
// but encodes prefix and body into one pooled buffer so a frame is a
// single Write, and reads through a per-connection FrameReader that
// reuses its scratch buffer. Transports coalesce the encoded frames
// of concurrent callers into one syscall (internal/transport).

// poolBufCap caps the capacity of buffers returned to the pools so a
// single huge frame (a bulk snapshot, a big group result) does not pin
// megabytes inside the pool forever.
const poolBufCap = 64 << 10

// FrameBuffer is a pooled, encoded frame: length prefix and JSON body
// in one contiguous byte slice, ready for a single Write. Obtain with
// EncodeFrame, hand Bytes to the socket, then Release.
type FrameBuffer struct {
	buf []byte
}

// Bytes returns the full encoded frame (prefix + body).
func (f *FrameBuffer) Bytes() []byte { return f.buf }

// Len returns the encoded frame size in bytes.
func (f *FrameBuffer) Len() int { return len(f.buf) }

// Release returns the buffer to the encode pool. The caller must not
// touch Bytes afterwards.
func (f *FrameBuffer) Release() {
	if cap(f.buf) > poolBufCap {
		// Oversized one-off: let the GC have it instead of bloating
		// the pool.
		f.buf = nil
	}
	f.buf = f.buf[:0]
	framePool.Put(f)
}

var framePool = sync.Pool{New: func() any { return new(FrameBuffer) }}

// frameWriter adapts a FrameBuffer to io.Writer for json.Encoder.
type frameWriter FrameBuffer

func (w *frameWriter) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	return len(p), nil
}

// EncodeFrame marshals env into a pooled FrameBuffer: the 4-byte
// length prefix followed by the JSON body, as one contiguous slice.
// The JSON encoder writes straight into the pooled buffer, so a warm
// pool encodes without heap allocation beyond what encoding/json
// itself needs.
func EncodeFrame(env *Envelope) (*FrameBuffer, error) {
	f := framePool.Get().(*FrameBuffer)
	f.buf = append(f.buf[:0], 0, 0, 0, 0) // length backpatched below
	enc := json.NewEncoder((*frameWriter)(f))
	if err := enc.Encode(env); err != nil {
		f.Release()
		return nil, fmt.Errorf("wire: marshal: %w", err)
	}
	n := len(f.buf) - 4
	if n > MaxFrameSize {
		f.Release()
		return nil, ErrFrameTooLarge
	}
	binary.BigEndian.PutUint32(f.buf[:4], uint32(n))
	return f, nil
}

// FrameReader decodes length-prefixed frames from one connection,
// reusing an internal scratch buffer between reads (v1 ReadFrame
// allocated a fresh body buffer per frame). Bind one FrameReader per
// connection; it is not safe for concurrent use.
type FrameReader struct {
	r       *bufio.Reader
	scratch []byte

	// Frames and Bytes count everything successfully read; the
	// transport layer feeds them into metrics.
	Frames int64
	Bytes  int64
	// LastCodec reports the body encoding of the most recent
	// successful Read. A received CodecV3 frame is the transport
	// layer's evidence that the peer speaks v3 (see codec
	// negotiation in internal/transport).
	LastCodec Codec
}

// NewFrameReader creates a FrameReader over r. If r is already a
// *bufio.Reader it is used directly.
func NewFrameReader(r io.Reader) *FrameReader {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, 32<<10)
	}
	return &FrameReader{r: br}
}

// Read decodes the next frame. The returned Envelope does not alias
// the scratch buffer (JSON decoding copies what it keeps), so it
// remains valid across subsequent Reads.
func (fr *FrameReader) Read() (*Envelope, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(fr.r, hdr[:]); err != nil {
		return nil, err
	}
	n := int(binary.BigEndian.Uint32(hdr[:]))
	if n > MaxFrameSize {
		return nil, ErrFrameTooLarge
	}
	if cap(fr.scratch) < n {
		fr.scratch = make([]byte, n)
	}
	body := fr.scratch[:n]
	if _, err := io.ReadFull(fr.r, body); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, ErrShortFrame
		}
		return nil, err
	}
	if cap(fr.scratch) > poolBufCap {
		// Do not let one oversized frame pin its capacity for the
		// connection's lifetime: shrink back to the pool cap so
		// subsequent normal-sized reads are still allocation-free.
		// body keeps the old array alive until the decode below
		// copies what it needs.
		fr.scratch = make([]byte, poolBufCap)
	}
	var env *Envelope
	if n > 0 && body[0] == magicV3 {
		// v3 binary body — auto-detected per frame, no connection
		// state needed (a JSON body always starts with '{').
		var err error
		env, err = decodeV3(body)
		if err != nil {
			return nil, err
		}
		fr.LastCodec = CodecV3
	} else {
		fr.LastCodec = CodecJSON
		env = new(Envelope)
		if err := json.Unmarshal(body, env); err != nil {
			return nil, fmt.Errorf("wire: unmarshal: %w", err)
		}
	}
	fr.Frames++
	fr.Bytes += int64(4 + n)
	return env, nil
}
