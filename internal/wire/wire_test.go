package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestRoundTripRequest(t *testing.T) {
	env := &Envelope{
		Kind: KindRequest,
		Request: &Request{
			ID:      42,
			Service: "cal.phil",
			Method:  "GetFreeSlots",
			Args:    Args{"from": "2003-04-22", "to": "2003-04-29", "n": float64(3)},
			Caller:  "andy",
		},
	}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, env); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, env) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got.Request, env.Request)
	}
}

func TestRoundTripResponse(t *testing.T) {
	res, err := Marshal(map[string]int{"slots": 7})
	if err != nil {
		t.Fatal(err)
	}
	env := &Envelope{
		Kind:     KindResponse,
		Response: &Response{ID: 42, OK: true, Result: res},
	}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, env); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]int
	if err := Unmarshal(got.Response.Result, &out); err != nil {
		t.Fatal(err)
	}
	if out["slots"] != 7 {
		t.Fatalf("result = %v", out)
	}
}

func TestRoundTripEvent(t *testing.T) {
	env := &Envelope{
		Kind:  KindEvent,
		Event: &Event{Name: "link.expired", Source: "phil", Args: Args{"link": "L1"}},
	}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, env); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Event.Name != "link.expired" || got.Event.Args.String("link") != "L1" {
		t.Fatalf("event mismatch: %+v", got.Event)
	}
}

func TestMultipleFramesSequential(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 10; i++ {
		env := &Envelope{Kind: KindRequest, Request: &Request{ID: uint64(i), Service: "s", Method: "m"}}
		if err := WriteFrame(&buf, env); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		env, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if env.Request.ID != uint64(i) {
			t.Fatalf("frame %d has ID %d", i, env.Request.ID)
		}
	}
	if _, err := ReadFrame(&buf); !errors.Is(err, io.EOF) {
		t.Fatalf("expected EOF after last frame, got %v", err)
	}
}

func TestReadFrameTooLarge(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrameSize+1)
	_, err := ReadFrame(bytes.NewReader(hdr[:]))
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestReadFrameTruncatedBody(t *testing.T) {
	var buf bytes.Buffer
	env := &Envelope{Kind: KindRequest, Request: &Request{ID: 1, Service: "s", Method: "m"}}
	if err := WriteFrame(&buf, env); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-3]
	_, err := ReadFrame(bytes.NewReader(trunc))
	if !errors.Is(err, ErrShortFrame) {
		t.Fatalf("err = %v, want ErrShortFrame", err)
	}
}

func TestReadFrameGarbageJSON(t *testing.T) {
	body := []byte("{not json")
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	buf.Write(hdr[:])
	buf.Write(body)
	if _, err := ReadFrame(&buf); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestRemoteErrorIs(t *testing.T) {
	err := &RemoteError{Code: CodeConflict, Service: "cal.phil", Method: "ReserveSlot", Msg: "slot taken"}
	if !errors.Is(err, &RemoteError{Code: CodeConflict}) {
		t.Fatal("code-only match failed")
	}
	if errors.Is(err, &RemoteError{Code: CodeAuth}) {
		t.Fatal("matched wrong code")
	}
	if !errors.Is(err, &RemoteError{Code: CodeConflict, Service: "cal.phil"}) {
		t.Fatal("code+service match failed")
	}
	if errors.Is(err, &RemoteError{Code: CodeConflict, Service: "cal.andy"}) {
		t.Fatal("matched wrong service")
	}
	if !strings.Contains(err.Error(), "slot taken") {
		t.Fatalf("Error() = %q", err.Error())
	}
}

func TestCodeOf(t *testing.T) {
	if got := CodeOf(nil); got != CodeOK {
		t.Fatalf("CodeOf(nil) = %q", got)
	}
	if got := CodeOf(errors.New("plain")); got != CodeInternal {
		t.Fatalf("CodeOf(plain) = %q", got)
	}
	wrapped := &RemoteError{Code: CodeUnavailable, Msg: "down"}
	if got := CodeOf(wrapped); got != CodeUnavailable {
		t.Fatalf("CodeOf(remote) = %q", got)
	}
}

func TestArgsAccessors(t *testing.T) {
	a := Args{
		"s":    "hello",
		"f":    float64(9),
		"i":    7,
		"i64":  int64(11),
		"b":    true,
		"list": []any{"x", "y", 3},
		"strs": []string{"p", "q"},
	}
	if a.String("s") != "hello" || a.String("missing") != "" || a.String("f") != "" {
		t.Fatal("String accessor wrong")
	}
	if a.Int("f") != 9 || a.Int("i") != 7 || a.Int("missing") != 0 {
		t.Fatal("Int accessor wrong")
	}
	if a.Int64("i64") != 11 || a.Int64("f") != 9 {
		t.Fatal("Int64 accessor wrong")
	}
	if !a.Bool("b") || a.Bool("s") {
		t.Fatal("Bool accessor wrong")
	}
	if got := a.Strings("list"); !reflect.DeepEqual(got, []string{"x", "y"}) {
		t.Fatalf("Strings(list) = %v", got)
	}
	if got := a.Strings("strs"); !reflect.DeepEqual(got, []string{"p", "q"}) {
		t.Fatalf("Strings(strs) = %v", got)
	}
	if a.Strings("missing") != nil {
		t.Fatal("Strings(missing) should be nil")
	}
}

func TestArgsDecode(t *testing.T) {
	type slot struct {
		Day  string `json:"day"`
		Hour int    `json:"hour"`
	}
	a := Args{"slot": map[string]any{"day": "2003-04-22", "hour": 14}}
	var s slot
	if err := a.Decode("slot", &s); err != nil {
		t.Fatal(err)
	}
	if s.Day != "2003-04-22" || s.Hour != 14 {
		t.Fatalf("decoded %+v", s)
	}
	if err := a.Decode("absent", &s); err == nil {
		t.Fatal("expected error for missing key")
	}
}

// TestFrameRoundTripProperty checks that any string payload survives a
// frame round trip intact.
func TestFrameRoundTripProperty(t *testing.T) {
	f := func(service, method, caller string, id uint64) bool {
		env := &Envelope{Kind: KindRequest, Request: &Request{
			ID: id, Service: service, Method: method, Caller: caller,
		}}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, env); err != nil {
			return false
		}
		got, err := ReadFrame(&buf)
		if err != nil {
			return false
		}
		r := got.Request
		return r.ID == id && r.Service == service && r.Method == method && r.Caller == caller
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFrameRoundTrip(b *testing.B) {
	env := &Envelope{
		Kind: KindRequest,
		Request: &Request{
			ID: 1, Service: "cal.phil", Method: "GetFreeSlots",
			Args: Args{"from": "2003-04-22", "to": "2003-04-29"},
		},
	}
	b.ReportAllocs()
	var buf bytes.Buffer
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := WriteFrame(&buf, env); err != nil {
			b.Fatal(err)
		}
		if _, err := ReadFrame(&buf); err != nil {
			b.Fatal(err)
		}
	}
}
