package wire

import (
	"context"
	"strconv"
	"time"
)

// Metadata is the typed request-metadata map carried end-to-end on
// every Request and Response. It is the envelope-level home for the
// cross-cutting concerns the interceptor pipeline manages (request
// correlation, caller identity, credential, hop accounting, deadline
// propagation) so that no layer has to invent a side channel.
//
// Caller and Credential remain dedicated Request fields on the wire
// (they predate Metadata and auth depends on them); FullMeta merges
// them back into one view on the receiving side.
type Metadata map[string]string

// Well-known metadata keys.
const (
	// MetaRequestID correlates one logical invocation across retries,
	// failover attempts, and downstream fan-out (handlers that invoke
	// other services propagate it via context).
	MetaRequestID = "request-id"
	// MetaCaller is the invoking SyD user id.
	MetaCaller = "caller"
	// MetaCredential is the TEA-sealed credential blob (§5.4).
	MetaCredential = "credential"
	// MetaHops counts engine-to-listener forwarding steps, so a
	// cascade (device → proxy → device) is visible at the far end.
	MetaHops = "hops"
	// MetaDeadline is the caller's remaining deadline budget in
	// milliseconds at send time; servers without context propagation
	// (real TCP) re-arm a local deadline from it.
	MetaDeadline = "deadline-ms"
)

// Get returns the value at key, or "" (nil-safe).
func (m Metadata) Get(key string) string {
	if m == nil {
		return ""
	}
	return m[key]
}

// Clone returns a mutable copy of m (never nil).
func (m Metadata) Clone() Metadata {
	out := make(Metadata, len(m)+4)
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Hops returns the hop counter, 0 when absent or malformed.
func (m Metadata) Hops() int {
	s := m.Get(MetaHops)
	if s == "" {
		return 0 // fast path: no error allocation for the common case
	}
	n, _ := strconv.Atoi(s)
	return n
}

// SetHops stores the hop counter.
func (m Metadata) SetHops(n int) {
	m[MetaHops] = strconv.Itoa(n)
}

// Deadline returns the deadline hint as a duration, 0 when absent.
func (m Metadata) Deadline() time.Duration {
	s := m.Get(MetaDeadline)
	if s == "" {
		return 0 // fast path: no error allocation for the common case
	}
	ms, err := strconv.ParseInt(s, 10, 64)
	if err != nil || ms <= 0 {
		return 0
	}
	return time.Duration(ms) * time.Millisecond
}

// SetDeadline stores a deadline hint (rounded up to a whole
// millisecond so a short positive budget never encodes as 0).
func (m Metadata) SetDeadline(d time.Duration) {
	ms := (d + time.Millisecond - 1) / time.Millisecond
	m[MetaDeadline] = strconv.FormatInt(int64(ms), 10)
}

// FullMeta merges the request's dedicated identity fields into its
// metadata map, giving server-side middleware one uniform view. The
// returned map is a copy; mutating it does not alter the request.
func (r *Request) FullMeta() Metadata {
	m := r.Meta.Clone()
	if r.Caller != "" {
		m[MetaCaller] = r.Caller
	}
	if r.Credential != "" {
		m[MetaCredential] = r.Credential
	}
	return m
}

// --- context propagation --------------------------------------------------

type metaCtxKey struct{}

// WithContext attaches md to ctx so downstream invocations (an engine
// call made from inside a handler) inherit the request id and hop
// count. The listener does this automatically for every dispatch.
func WithContext(ctx context.Context, md Metadata) context.Context {
	return context.WithValue(ctx, metaCtxKey{}, md)
}

// FromContext returns the Metadata attached to ctx, or nil.
func FromContext(ctx context.Context) Metadata {
	md, _ := ctx.Value(metaCtxKey{}).(Metadata)
	return md
}
