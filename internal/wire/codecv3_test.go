package wire

import (
	"bytes"
	"encoding/json"
	"testing"
)

func testEnvelopeV3(i int) *Envelope {
	return &Envelope{Kind: KindRequest, Request: &Request{
		ID: uint64(i), Service: "links.phil", Method: "Mark",
		Args: Args{
			"entity": "cal.phil/ev42",
			"action": "book",
			"args":   map[string]any{"day": "2003-04-21", "hour": i, "ok": true},
			"nid":    "abc123",
			"prio":   1.5,
			"who":    []string{"phil", "andy"},
			"mixed":  []any{"x", int64(7), false, nil},
		},
		Caller:     "andy",
		Credential: "deadbeef",
		Meta:       Metadata{MetaRequestID: "andy-1", MetaHops: "1"},
	}}
}

// canonical re-encodes a decoded envelope as JSON: map keys sort, and
// both int64 (v3 decode) and float64 (JSON decode) of the same integer
// print identically, so two semantically equal envelopes canonicalize
// to the same bytes.
func canonical(t testing.TB, env *Envelope) []byte {
	t.Helper()
	b, err := json.Marshal(env)
	if err != nil {
		t.Fatalf("canonical: %v", err)
	}
	// Normalize escaping through a generic round trip: a replacement
	// rune prints as "�" when the encoder coerces invalid UTF-8
	// but as raw bytes when the string already holds U+FFFD — the
	// same character either way.
	var v any
	if err := json.Unmarshal(b, &v); err != nil {
		t.Fatalf("canonical reparse: %v", err)
	}
	b, err = json.Marshal(v)
	if err != nil {
		t.Fatalf("canonical re-marshal: %v", err)
	}
	return b
}

func decodeOneFrame(t testing.TB, frame []byte) *Envelope {
	t.Helper()
	env, err := NewFrameReader(bytes.NewReader(frame)).Read()
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	return env
}

func TestCodecV3RoundTripRequest(t *testing.T) {
	env := testEnvelopeV3(7)
	f, err := EncodeFrameV3(env)
	if err != nil {
		t.Fatal(err)
	}
	frame := append([]byte(nil), f.Bytes()...)
	f.Release()
	if frame[4] != magicV3 {
		t.Fatalf("body starts with %#x, want magic %#x", frame[4], magicV3)
	}
	got := decodeOneFrame(t, frame)
	r := got.Request
	if r == nil || r.ID != 7 || r.Service != "links.phil" || r.Method != "Mark" ||
		r.Caller != "andy" || r.Credential != "deadbeef" {
		t.Fatalf("round trip: %+v", r)
	}
	if r.Args.String("entity") != "cal.phil/ev42" || r.Meta.Get(MetaRequestID) != "andy-1" {
		t.Fatalf("args/meta: %+v %+v", r.Args, r.Meta)
	}
	inner, ok := r.Args["args"].(map[string]any)
	if !ok || inner["day"] != "2003-04-21" || Args(inner).Int("hour") != 7 || inner["ok"] != true {
		t.Fatalf("nested args: %#v", r.Args["args"])
	}
	if got := r.Args.Strings("who"); len(got) != 2 || got[0] != "phil" {
		t.Fatalf("[]string: %#v", got)
	}
}

func TestCodecV3RoundTripResponse(t *testing.T) {
	env := &Envelope{Kind: KindResponse, Response: &Response{
		ID: 99, OK: false, Error: "locked by someone", Code: CodeConflict,
		Result: json.RawMessage(`{"holder":"andy"}`),
		Meta:   Metadata{MetaRequestID: "phil-4"},
	}}
	f, err := EncodeFrameV3(env)
	if err != nil {
		t.Fatal(err)
	}
	frame := append([]byte(nil), f.Bytes()...)
	f.Release()
	got := decodeOneFrame(t, frame).Response
	if got == nil || got.ID != 99 || got.OK || got.Code != CodeConflict ||
		got.Error != "locked by someone" || string(got.Result) != `{"holder":"andy"}` ||
		got.Meta.Get(MetaRequestID) != "phil-4" {
		t.Fatalf("round trip: %+v", got)
	}
}

func TestCodecV3RoundTripEvent(t *testing.T) {
	env := &Envelope{Kind: KindEvent, Event: &Event{
		Name: "cal.changed", Source: "phil", Args: Args{"entity": "ev1"},
	}}
	f, err := EncodeFrameV3(env)
	if err != nil {
		t.Fatal(err)
	}
	frame := append([]byte(nil), f.Bytes()...)
	f.Release()
	got := decodeOneFrame(t, frame).Event
	if got == nil || got.Name != "cal.changed" || got.Source != "phil" || got.Args.String("entity") != "ev1" {
		t.Fatalf("round trip: %+v", got)
	}
}

// TestCodecV3EquivalentToJSON pins semantic equivalence: the same
// envelope decoded from a v3 frame and from a JSON frame canonicalizes
// to identical JSON.
func TestCodecV3EquivalentToJSON(t *testing.T) {
	envs := []*Envelope{
		testEnvelopeV3(3),
		{Kind: KindResponse, Response: &Response{ID: 1, OK: true, Result: json.RawMessage(`[1,2,3]`)}},
		{Kind: KindResponse, Response: &Response{ID: 2, Error: "x", Code: CodeUnavailable}},
		{Kind: KindEvent, Event: &Event{Name: "e", Args: Args{"n": nil, "f": 2.25, "neg": -12}}},
		{Kind: KindRequest, Request: &Request{ID: 0, Service: "s", Method: "m"}}, // all-empty fields
	}
	for i, env := range envs {
		jf, err := EncodeFrame(env)
		if err != nil {
			t.Fatalf("env %d: json encode: %v", i, err)
		}
		jframe := append([]byte(nil), jf.Bytes()...)
		jf.Release()
		vf, err := EncodeFrameV3(env)
		if err != nil {
			t.Fatalf("env %d: v3 encode: %v", i, err)
		}
		vframe := append([]byte(nil), vf.Bytes()...)
		vf.Release()
		fromJSON := canonical(t, decodeOneFrame(t, jframe))
		fromV3 := canonical(t, decodeOneFrame(t, vframe))
		if !bytes.Equal(fromJSON, fromV3) {
			t.Fatalf("env %d: codecs diverge:\n json: %s\n   v3: %s", i, fromJSON, fromV3)
		}
	}
}

// TestFrameReaderMixedCodecs interleaves JSON and v3 frames on one
// connection: the reader must auto-detect per frame, which is what
// keeps mixed-version fleets byte-compatible mid-negotiation.
func TestFrameReaderMixedCodecs(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 20; i++ {
		codec := CodecJSON
		if i%2 == 1 {
			codec = CodecV3
		}
		f, err := EncodeFrameCodec(testEnvelopeV3(i), codec)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(f.Bytes())
		f.Release()
	}
	fr := NewFrameReader(&buf)
	for i := 0; i < 20; i++ {
		env, err := fr.Read()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if env.Request.ID != uint64(i) {
			t.Fatalf("frame %d decoded id %d", i, env.Request.ID)
		}
	}
}

// TestFrameReaderScratchShrinksAfterLargeFrame pins the fix for the
// scratch-growth bug: one oversized frame must not pin a large buffer
// on the connection, and the retained buffer must shrink back to the
// pool cap (not to zero, which would force reallocation on the next
// ordinary read).
func TestFrameReaderScratchShrinksAfterLargeFrame(t *testing.T) {
	big := &Envelope{Kind: KindRequest, Request: &Request{
		ID: 1, Service: "s", Method: "m",
		Args: Args{"blob": string(bytes.Repeat([]byte("x"), 4*poolBufCap))},
	}}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, big); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&buf, testEnvelopeV3(2)); err != nil {
		t.Fatal(err)
	}
	fr := NewFrameReader(&buf)
	env, err := fr.Read()
	if err != nil {
		t.Fatal(err)
	}
	if len(env.Request.Args.String("blob")) != 4*poolBufCap {
		t.Fatalf("big frame truncated: %d", len(env.Request.Args.String("blob")))
	}
	if cap(fr.scratch) > poolBufCap {
		t.Fatalf("scratch cap %d still pinned above poolBufCap %d", cap(fr.scratch), poolBufCap)
	}
	if cap(fr.scratch) == 0 {
		t.Fatal("scratch dropped to zero; next ordinary read reallocates")
	}
	if env, err = fr.Read(); err != nil || env.Request.ID != 2 {
		t.Fatalf("read after shrink: %+v %v", env, err)
	}
}

func TestDecodeV3RejectsTruncated(t *testing.T) {
	f, err := EncodeFrameV3(testEnvelopeV3(1))
	if err != nil {
		t.Fatal(err)
	}
	body := append([]byte(nil), f.Bytes()[4:]...)
	f.Release()
	for n := 0; n < len(body); n++ {
		if _, err := decodeV3(body[:n]); err == nil {
			t.Fatalf("truncated body of %d bytes decoded without error", n)
		}
	}
	// Trailing garbage must be rejected too.
	if _, err := decodeV3(append(body, 0xFF)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}

func FuzzCodecV3Roundtrip(f *testing.F) {
	f.Add("cal.phil", "Book", "andy", "k", "v", int64(42), 1.5, true, uint64(7))
	f.Add("", "", "", "", "", int64(-1), -0.0, false, uint64(0))
	f.Add("links.u\x80ser", "M\xffark", "a", "\x00", "\xfe\xfd", int64(1<<40), 3.14159, true, uint64(1<<63))
	f.Fuzz(func(t *testing.T, service, method, caller, key, sval string, ival int64, fval float64, bval bool, id uint64) {
		env := &Envelope{Kind: KindRequest, Request: &Request{
			ID: id, Service: service, Method: method, Caller: caller,
			Args: Args{
				key:    sval,
				"i":    ival,
				"f":    fval,
				"b":    bval,
				"deep": map[string]any{"s": sval, "list": []any{ival, sval, bval}},
				"ss":   []string{sval, key},
			},
			Meta: Metadata{MetaRequestID: sval, key: caller},
		}}
		jf, err := EncodeFrame(env)
		if err != nil {
			t.Skip() // value JSON cannot carry (NaN/Inf); v3 equivalence is defined over JSON-encodable envelopes
		}
		jframe := append([]byte(nil), jf.Bytes()...)
		jf.Release()
		vf, err := EncodeFrameV3(env)
		if err != nil {
			t.Fatalf("v3 encode failed where json succeeded: %v", err)
		}
		vframe := append([]byte(nil), vf.Bytes()...)
		vf.Release()

		fromJSON := decodeOneFrame(t, jframe)
		fromV3 := decodeOneFrame(t, vframe)
		cj, cv := canonical(t, fromJSON), canonical(t, fromV3)
		if !bytes.Equal(cj, cv) {
			t.Fatalf("codecs diverge:\n json: %s\n   v3: %s", cj, cv)
		}

		// Re-encode the decoded envelope through v3 again: must be
		// stable (decode→encode→decode is a fixed point).
		vf2, err := EncodeFrameV3(fromV3)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		vframe2 := append([]byte(nil), vf2.Bytes()...)
		vf2.Release()
		again := decodeOneFrame(t, vframe2)
		if c2 := canonical(t, again); !bytes.Equal(cv, c2) {
			t.Fatalf("v3 re-encode unstable:\n first: %s\nsecond: %s", cv, c2)
		}

		// Every truncation of the v3 body must fail cleanly, never
		// panic: a torn frame is a decode error, not a crash.
		body := vframe[4:]
		for n := 0; n < len(body); n++ {
			if _, err := decodeV3(body[:n]); err == nil {
				t.Fatalf("truncated v3 body (%d/%d bytes) decoded without error", n, len(body))
			}
		}
	})
}

func BenchmarkEncodeFrameV3(b *testing.B) {
	env := testEnvelopeV3(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f, err := EncodeFrameV3(env)
		if err != nil {
			b.Fatal(err)
		}
		f.Release()
	}
}

func BenchmarkFrameReaderV3(b *testing.B) {
	f, err := EncodeFrameV3(testEnvelopeV3(1))
	if err != nil {
		b.Fatal(err)
	}
	frame := append([]byte(nil), f.Bytes()...)
	f.Release()
	big := bytes.Repeat(frame, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	var fr *FrameReader
	for i := 0; i < b.N; i++ {
		if i%1000 == 0 {
			fr = NewFrameReader(bytes.NewReader(big))
		}
		if _, err := fr.Read(); err != nil {
			b.Fatal(err)
		}
	}
}
